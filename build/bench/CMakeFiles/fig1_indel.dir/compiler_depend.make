# Empty compiler generated dependencies file for fig1_indel.
# This may be replaced when dependencies are built.
