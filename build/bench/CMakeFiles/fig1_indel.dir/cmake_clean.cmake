file(REMOVE_RECURSE
  "CMakeFiles/fig1_indel.dir/fig1_indel.cpp.o"
  "CMakeFiles/fig1_indel.dir/fig1_indel.cpp.o.d"
  "fig1_indel"
  "fig1_indel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_indel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
