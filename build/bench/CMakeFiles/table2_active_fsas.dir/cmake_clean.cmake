file(REMOVE_RECURSE
  "CMakeFiles/table2_active_fsas.dir/table2_active_fsas.cpp.o"
  "CMakeFiles/table2_active_fsas.dir/table2_active_fsas.cpp.o.d"
  "table2_active_fsas"
  "table2_active_fsas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_active_fsas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
