# Empty compiler generated dependencies file for table2_active_fsas.
# This may be replaced when dependencies are built.
