file(REMOVE_RECURSE
  "CMakeFiles/abl_prefilter.dir/abl_prefilter.cpp.o"
  "CMakeFiles/abl_prefilter.dir/abl_prefilter.cpp.o.d"
  "abl_prefilter"
  "abl_prefilter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_prefilter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
