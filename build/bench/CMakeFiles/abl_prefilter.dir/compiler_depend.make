# Empty compiler generated dependencies file for abl_prefilter.
# This may be replaced when dependencies are built.
