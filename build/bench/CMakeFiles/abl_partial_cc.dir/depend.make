# Empty dependencies file for abl_partial_cc.
# This may be replaced when dependencies are built.
