file(REMOVE_RECURSE
  "CMakeFiles/abl_partial_cc.dir/abl_partial_cc.cpp.o"
  "CMakeFiles/abl_partial_cc.dir/abl_partial_cc.cpp.o.d"
  "abl_partial_cc"
  "abl_partial_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_partial_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
