# Empty compiler generated dependencies file for abl_engine_variants.
# This may be replaced when dependencies are built.
