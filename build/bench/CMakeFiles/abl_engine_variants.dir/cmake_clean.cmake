file(REMOVE_RECURSE
  "CMakeFiles/abl_engine_variants.dir/abl_engine_variants.cpp.o"
  "CMakeFiles/abl_engine_variants.dir/abl_engine_variants.cpp.o.d"
  "abl_engine_variants"
  "abl_engine_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_engine_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
