file(REMOVE_RECURSE
  "CMakeFiles/fig9_single_thread.dir/fig9_single_thread.cpp.o"
  "CMakeFiles/fig9_single_thread.dir/fig9_single_thread.cpp.o.d"
  "fig9_single_thread"
  "fig9_single_thread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_single_thread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
