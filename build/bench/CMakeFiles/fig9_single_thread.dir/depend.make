# Empty dependencies file for fig9_single_thread.
# This may be replaced when dependencies are built.
