# Empty dependencies file for abl_merge_complexity.
# This may be replaced when dependencies are built.
