file(REMOVE_RECURSE
  "CMakeFiles/abl_merge_complexity.dir/abl_merge_complexity.cpp.o"
  "CMakeFiles/abl_merge_complexity.dir/abl_merge_complexity.cpp.o.d"
  "abl_merge_complexity"
  "abl_merge_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_merge_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
