# Empty dependencies file for fig10_multi_thread.
# This may be replaced when dependencies are built.
