file(REMOVE_RECURSE
  "CMakeFiles/fig10_multi_thread.dir/fig10_multi_thread.cpp.o"
  "CMakeFiles/fig10_multi_thread.dir/fig10_multi_thread.cpp.o.d"
  "fig10_multi_thread"
  "fig10_multi_thread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_multi_thread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
