# Empty dependencies file for abl_dfa_baseline.
# This may be replaced when dependencies are built.
