file(REMOVE_RECURSE
  "CMakeFiles/abl_dfa_baseline.dir/abl_dfa_baseline.cpp.o"
  "CMakeFiles/abl_dfa_baseline.dir/abl_dfa_baseline.cpp.o.d"
  "abl_dfa_baseline"
  "abl_dfa_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dfa_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
