# Empty dependencies file for abl_clustering.
# This may be replaced when dependencies are built.
