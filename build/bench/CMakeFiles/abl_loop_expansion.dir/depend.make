# Empty dependencies file for abl_loop_expansion.
# This may be replaced when dependencies are built.
