file(REMOVE_RECURSE
  "CMakeFiles/abl_loop_expansion.dir/abl_loop_expansion.cpp.o"
  "CMakeFiles/abl_loop_expansion.dir/abl_loop_expansion.cpp.o.d"
  "abl_loop_expansion"
  "abl_loop_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_loop_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
