file(REMOVE_RECURSE
  "CMakeFiles/abl_multistride.dir/abl_multistride.cpp.o"
  "CMakeFiles/abl_multistride.dir/abl_multistride.cpp.o.d"
  "abl_multistride"
  "abl_multistride.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_multistride.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
