# Empty dependencies file for abl_multistride.
# This may be replaced when dependencies are built.
