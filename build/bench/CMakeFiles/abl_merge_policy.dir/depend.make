# Empty dependencies file for abl_merge_policy.
# This may be replaced when dependencies are built.
