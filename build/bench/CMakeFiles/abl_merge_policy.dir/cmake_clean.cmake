file(REMOVE_RECURSE
  "CMakeFiles/abl_merge_policy.dir/abl_merge_policy.cpp.o"
  "CMakeFiles/abl_merge_policy.dir/abl_merge_policy.cpp.o.d"
  "abl_merge_policy"
  "abl_merge_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_merge_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
