file(REMOVE_RECURSE
  "CMakeFiles/fig7_compression.dir/fig7_compression.cpp.o"
  "CMakeFiles/fig7_compression.dir/fig7_compression.cpp.o.d"
  "fig7_compression"
  "fig7_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
