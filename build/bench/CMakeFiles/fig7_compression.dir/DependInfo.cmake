
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_compression.cpp" "bench/CMakeFiles/fig7_compression.dir/fig7_compression.cpp.o" "gcc" "bench/CMakeFiles/fig7_compression.dir/fig7_compression.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compiler/CMakeFiles/mfsa_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/mfsa_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/anml/CMakeFiles/mfsa_anml.dir/DependInfo.cmake"
  "/root/repo/build/src/mfsa/CMakeFiles/mfsa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fsa/CMakeFiles/mfsa_fsa.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/mfsa_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mfsa_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mfsa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
