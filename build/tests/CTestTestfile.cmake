# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_regex[1]_include.cmake")
include("/root/repo/build/tests/test_fsa[1]_include.cmake")
include("/root/repo/build/tests/test_mfsa[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_anml[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_prefilter[1]_include.cmake")
include("/root/repo/build/tests/test_streaming[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_coverage[1]_include.cmake")
