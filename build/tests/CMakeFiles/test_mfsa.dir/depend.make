# Empty dependencies file for test_mfsa.
# This may be replaced when dependencies are built.
