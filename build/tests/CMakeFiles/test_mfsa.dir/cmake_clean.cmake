file(REMOVE_RECURSE
  "CMakeFiles/test_mfsa.dir/MfsaTest.cpp.o"
  "CMakeFiles/test_mfsa.dir/MfsaTest.cpp.o.d"
  "test_mfsa"
  "test_mfsa.pdb"
  "test_mfsa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mfsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
