file(REMOVE_RECURSE
  "CMakeFiles/test_fsa.dir/FsaTest.cpp.o"
  "CMakeFiles/test_fsa.dir/FsaTest.cpp.o.d"
  "test_fsa"
  "test_fsa.pdb"
  "test_fsa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
