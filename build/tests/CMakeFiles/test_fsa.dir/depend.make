# Empty dependencies file for test_fsa.
# This may be replaced when dependencies are built.
