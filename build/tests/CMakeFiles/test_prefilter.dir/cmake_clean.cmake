file(REMOVE_RECURSE
  "CMakeFiles/test_prefilter.dir/PrefilterTest.cpp.o"
  "CMakeFiles/test_prefilter.dir/PrefilterTest.cpp.o.d"
  "test_prefilter"
  "test_prefilter.pdb"
  "test_prefilter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefilter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
