# Empty dependencies file for test_prefilter.
# This may be replaced when dependencies are built.
