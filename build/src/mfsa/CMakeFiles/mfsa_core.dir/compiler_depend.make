# Empty compiler generated dependencies file for mfsa_core.
# This may be replaced when dependencies are built.
