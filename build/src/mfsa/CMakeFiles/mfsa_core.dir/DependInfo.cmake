
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mfsa/Merge.cpp" "src/mfsa/CMakeFiles/mfsa_core.dir/Merge.cpp.o" "gcc" "src/mfsa/CMakeFiles/mfsa_core.dir/Merge.cpp.o.d"
  "/root/repo/src/mfsa/Mfsa.cpp" "src/mfsa/CMakeFiles/mfsa_core.dir/Mfsa.cpp.o" "gcc" "src/mfsa/CMakeFiles/mfsa_core.dir/Mfsa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fsa/CMakeFiles/mfsa_fsa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mfsa_support.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/mfsa_regex.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
