file(REMOVE_RECURSE
  "libmfsa_core.a"
)
