file(REMOVE_RECURSE
  "CMakeFiles/mfsa_core.dir/Merge.cpp.o"
  "CMakeFiles/mfsa_core.dir/Merge.cpp.o.d"
  "CMakeFiles/mfsa_core.dir/Mfsa.cpp.o"
  "CMakeFiles/mfsa_core.dir/Mfsa.cpp.o.d"
  "libmfsa_core.a"
  "libmfsa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfsa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
