# Empty compiler generated dependencies file for mfsa_compiler.
# This may be replaced when dependencies are built.
