file(REMOVE_RECURSE
  "CMakeFiles/mfsa_compiler.dir/Pipeline.cpp.o"
  "CMakeFiles/mfsa_compiler.dir/Pipeline.cpp.o.d"
  "libmfsa_compiler.a"
  "libmfsa_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfsa_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
