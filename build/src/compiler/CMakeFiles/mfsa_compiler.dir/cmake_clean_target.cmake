file(REMOVE_RECURSE
  "libmfsa_compiler.a"
)
