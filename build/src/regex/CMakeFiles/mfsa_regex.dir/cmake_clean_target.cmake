file(REMOVE_RECURSE
  "libmfsa_regex.a"
)
