# Empty dependencies file for mfsa_regex.
# This may be replaced when dependencies are built.
