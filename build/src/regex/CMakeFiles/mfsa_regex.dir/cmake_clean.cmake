file(REMOVE_RECURSE
  "CMakeFiles/mfsa_regex.dir/Ast.cpp.o"
  "CMakeFiles/mfsa_regex.dir/Ast.cpp.o.d"
  "CMakeFiles/mfsa_regex.dir/Lexer.cpp.o"
  "CMakeFiles/mfsa_regex.dir/Lexer.cpp.o.d"
  "CMakeFiles/mfsa_regex.dir/Parser.cpp.o"
  "CMakeFiles/mfsa_regex.dir/Parser.cpp.o.d"
  "libmfsa_regex.a"
  "libmfsa_regex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfsa_regex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
