file(REMOVE_RECURSE
  "libmfsa_support.a"
)
