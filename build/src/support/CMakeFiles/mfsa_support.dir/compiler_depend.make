# Empty compiler generated dependencies file for mfsa_support.
# This may be replaced when dependencies are built.
