file(REMOVE_RECURSE
  "CMakeFiles/mfsa_support.dir/StringUtil.cpp.o"
  "CMakeFiles/mfsa_support.dir/StringUtil.cpp.o.d"
  "CMakeFiles/mfsa_support.dir/SymbolSet.cpp.o"
  "CMakeFiles/mfsa_support.dir/SymbolSet.cpp.o.d"
  "CMakeFiles/mfsa_support.dir/ThreadPool.cpp.o"
  "CMakeFiles/mfsa_support.dir/ThreadPool.cpp.o.d"
  "libmfsa_support.a"
  "libmfsa_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfsa_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
