
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/Clustering.cpp" "src/workload/CMakeFiles/mfsa_workload.dir/Clustering.cpp.o" "gcc" "src/workload/CMakeFiles/mfsa_workload.dir/Clustering.cpp.o.d"
  "/root/repo/src/workload/Datasets.cpp" "src/workload/CMakeFiles/mfsa_workload.dir/Datasets.cpp.o" "gcc" "src/workload/CMakeFiles/mfsa_workload.dir/Datasets.cpp.o.d"
  "/root/repo/src/workload/Indel.cpp" "src/workload/CMakeFiles/mfsa_workload.dir/Indel.cpp.o" "gcc" "src/workload/CMakeFiles/mfsa_workload.dir/Indel.cpp.o.d"
  "/root/repo/src/workload/Sampler.cpp" "src/workload/CMakeFiles/mfsa_workload.dir/Sampler.cpp.o" "gcc" "src/workload/CMakeFiles/mfsa_workload.dir/Sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/regex/CMakeFiles/mfsa_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mfsa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
