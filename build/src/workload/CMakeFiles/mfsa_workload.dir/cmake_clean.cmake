file(REMOVE_RECURSE
  "CMakeFiles/mfsa_workload.dir/Clustering.cpp.o"
  "CMakeFiles/mfsa_workload.dir/Clustering.cpp.o.d"
  "CMakeFiles/mfsa_workload.dir/Datasets.cpp.o"
  "CMakeFiles/mfsa_workload.dir/Datasets.cpp.o.d"
  "CMakeFiles/mfsa_workload.dir/Indel.cpp.o"
  "CMakeFiles/mfsa_workload.dir/Indel.cpp.o.d"
  "CMakeFiles/mfsa_workload.dir/Sampler.cpp.o"
  "CMakeFiles/mfsa_workload.dir/Sampler.cpp.o.d"
  "libmfsa_workload.a"
  "libmfsa_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfsa_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
