# Empty compiler generated dependencies file for mfsa_workload.
# This may be replaced when dependencies are built.
