file(REMOVE_RECURSE
  "libmfsa_workload.a"
)
