
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fsa/AlphabetPartition.cpp" "src/fsa/CMakeFiles/mfsa_fsa.dir/AlphabetPartition.cpp.o" "gcc" "src/fsa/CMakeFiles/mfsa_fsa.dir/AlphabetPartition.cpp.o.d"
  "/root/repo/src/fsa/Builder.cpp" "src/fsa/CMakeFiles/mfsa_fsa.dir/Builder.cpp.o" "gcc" "src/fsa/CMakeFiles/mfsa_fsa.dir/Builder.cpp.o.d"
  "/root/repo/src/fsa/Determinize.cpp" "src/fsa/CMakeFiles/mfsa_fsa.dir/Determinize.cpp.o" "gcc" "src/fsa/CMakeFiles/mfsa_fsa.dir/Determinize.cpp.o.d"
  "/root/repo/src/fsa/LiteralAnalysis.cpp" "src/fsa/CMakeFiles/mfsa_fsa.dir/LiteralAnalysis.cpp.o" "gcc" "src/fsa/CMakeFiles/mfsa_fsa.dir/LiteralAnalysis.cpp.o.d"
  "/root/repo/src/fsa/Nfa.cpp" "src/fsa/CMakeFiles/mfsa_fsa.dir/Nfa.cpp.o" "gcc" "src/fsa/CMakeFiles/mfsa_fsa.dir/Nfa.cpp.o.d"
  "/root/repo/src/fsa/Passes.cpp" "src/fsa/CMakeFiles/mfsa_fsa.dir/Passes.cpp.o" "gcc" "src/fsa/CMakeFiles/mfsa_fsa.dir/Passes.cpp.o.d"
  "/root/repo/src/fsa/Reference.cpp" "src/fsa/CMakeFiles/mfsa_fsa.dir/Reference.cpp.o" "gcc" "src/fsa/CMakeFiles/mfsa_fsa.dir/Reference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/regex/CMakeFiles/mfsa_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mfsa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
