file(REMOVE_RECURSE
  "libmfsa_fsa.a"
)
