# Empty compiler generated dependencies file for mfsa_fsa.
# This may be replaced when dependencies are built.
