file(REMOVE_RECURSE
  "CMakeFiles/mfsa_fsa.dir/AlphabetPartition.cpp.o"
  "CMakeFiles/mfsa_fsa.dir/AlphabetPartition.cpp.o.d"
  "CMakeFiles/mfsa_fsa.dir/Builder.cpp.o"
  "CMakeFiles/mfsa_fsa.dir/Builder.cpp.o.d"
  "CMakeFiles/mfsa_fsa.dir/Determinize.cpp.o"
  "CMakeFiles/mfsa_fsa.dir/Determinize.cpp.o.d"
  "CMakeFiles/mfsa_fsa.dir/LiteralAnalysis.cpp.o"
  "CMakeFiles/mfsa_fsa.dir/LiteralAnalysis.cpp.o.d"
  "CMakeFiles/mfsa_fsa.dir/Nfa.cpp.o"
  "CMakeFiles/mfsa_fsa.dir/Nfa.cpp.o.d"
  "CMakeFiles/mfsa_fsa.dir/Passes.cpp.o"
  "CMakeFiles/mfsa_fsa.dir/Passes.cpp.o.d"
  "CMakeFiles/mfsa_fsa.dir/Reference.cpp.o"
  "CMakeFiles/mfsa_fsa.dir/Reference.cpp.o.d"
  "libmfsa_fsa.a"
  "libmfsa_fsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfsa_fsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
