# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mfsa_anml.
