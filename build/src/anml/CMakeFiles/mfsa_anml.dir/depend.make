# Empty dependencies file for mfsa_anml.
# This may be replaced when dependencies are built.
