file(REMOVE_RECURSE
  "CMakeFiles/mfsa_anml.dir/Anml.cpp.o"
  "CMakeFiles/mfsa_anml.dir/Anml.cpp.o.d"
  "libmfsa_anml.a"
  "libmfsa_anml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfsa_anml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
