file(REMOVE_RECURSE
  "libmfsa_anml.a"
)
