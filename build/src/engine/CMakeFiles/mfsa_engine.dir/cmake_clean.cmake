file(REMOVE_RECURSE
  "CMakeFiles/mfsa_engine.dir/AhoCorasick.cpp.o"
  "CMakeFiles/mfsa_engine.dir/AhoCorasick.cpp.o.d"
  "CMakeFiles/mfsa_engine.dir/DfaEngine.cpp.o"
  "CMakeFiles/mfsa_engine.dir/DfaEngine.cpp.o.d"
  "CMakeFiles/mfsa_engine.dir/Imfant.cpp.o"
  "CMakeFiles/mfsa_engine.dir/Imfant.cpp.o.d"
  "CMakeFiles/mfsa_engine.dir/MultiStride.cpp.o"
  "CMakeFiles/mfsa_engine.dir/MultiStride.cpp.o.d"
  "CMakeFiles/mfsa_engine.dir/Parallel.cpp.o"
  "CMakeFiles/mfsa_engine.dir/Parallel.cpp.o.d"
  "CMakeFiles/mfsa_engine.dir/Prefilter.cpp.o"
  "CMakeFiles/mfsa_engine.dir/Prefilter.cpp.o.d"
  "CMakeFiles/mfsa_engine.dir/SparseImfant.cpp.o"
  "CMakeFiles/mfsa_engine.dir/SparseImfant.cpp.o.d"
  "CMakeFiles/mfsa_engine.dir/Trace.cpp.o"
  "CMakeFiles/mfsa_engine.dir/Trace.cpp.o.d"
  "libmfsa_engine.a"
  "libmfsa_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfsa_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
