file(REMOVE_RECURSE
  "libmfsa_engine.a"
)
