# Empty dependencies file for mfsa_engine.
# This may be replaced when dependencies are built.
