
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/AhoCorasick.cpp" "src/engine/CMakeFiles/mfsa_engine.dir/AhoCorasick.cpp.o" "gcc" "src/engine/CMakeFiles/mfsa_engine.dir/AhoCorasick.cpp.o.d"
  "/root/repo/src/engine/DfaEngine.cpp" "src/engine/CMakeFiles/mfsa_engine.dir/DfaEngine.cpp.o" "gcc" "src/engine/CMakeFiles/mfsa_engine.dir/DfaEngine.cpp.o.d"
  "/root/repo/src/engine/Imfant.cpp" "src/engine/CMakeFiles/mfsa_engine.dir/Imfant.cpp.o" "gcc" "src/engine/CMakeFiles/mfsa_engine.dir/Imfant.cpp.o.d"
  "/root/repo/src/engine/MultiStride.cpp" "src/engine/CMakeFiles/mfsa_engine.dir/MultiStride.cpp.o" "gcc" "src/engine/CMakeFiles/mfsa_engine.dir/MultiStride.cpp.o.d"
  "/root/repo/src/engine/Parallel.cpp" "src/engine/CMakeFiles/mfsa_engine.dir/Parallel.cpp.o" "gcc" "src/engine/CMakeFiles/mfsa_engine.dir/Parallel.cpp.o.d"
  "/root/repo/src/engine/Prefilter.cpp" "src/engine/CMakeFiles/mfsa_engine.dir/Prefilter.cpp.o" "gcc" "src/engine/CMakeFiles/mfsa_engine.dir/Prefilter.cpp.o.d"
  "/root/repo/src/engine/SparseImfant.cpp" "src/engine/CMakeFiles/mfsa_engine.dir/SparseImfant.cpp.o" "gcc" "src/engine/CMakeFiles/mfsa_engine.dir/SparseImfant.cpp.o.d"
  "/root/repo/src/engine/Trace.cpp" "src/engine/CMakeFiles/mfsa_engine.dir/Trace.cpp.o" "gcc" "src/engine/CMakeFiles/mfsa_engine.dir/Trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mfsa/CMakeFiles/mfsa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mfsa_support.dir/DependInfo.cmake"
  "/root/repo/build/src/fsa/CMakeFiles/mfsa_fsa.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/mfsa_regex.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
