# Empty dependencies file for packet_inspection.
# This may be replaced when dependencies are built.
