file(REMOVE_RECURSE
  "CMakeFiles/packet_inspection.dir/packet_inspection.cpp.o"
  "CMakeFiles/packet_inspection.dir/packet_inspection.cpp.o.d"
  "packet_inspection"
  "packet_inspection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_inspection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
