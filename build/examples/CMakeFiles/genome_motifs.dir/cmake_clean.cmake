file(REMOVE_RECURSE
  "CMakeFiles/genome_motifs.dir/genome_motifs.cpp.o"
  "CMakeFiles/genome_motifs.dir/genome_motifs.cpp.o.d"
  "genome_motifs"
  "genome_motifs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genome_motifs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
