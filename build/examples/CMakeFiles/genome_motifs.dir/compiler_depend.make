# Empty compiler generated dependencies file for genome_motifs.
# This may be replaced when dependencies are built.
