file(REMOVE_RECURSE
  "CMakeFiles/activation_trace.dir/activation_trace.cpp.o"
  "CMakeFiles/activation_trace.dir/activation_trace.cpp.o.d"
  "activation_trace"
  "activation_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/activation_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
