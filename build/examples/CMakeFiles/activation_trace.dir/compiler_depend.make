# Empty compiler generated dependencies file for activation_trace.
# This may be replaced when dependencies are built.
