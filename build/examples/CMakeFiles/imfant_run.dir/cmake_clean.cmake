file(REMOVE_RECURSE
  "CMakeFiles/imfant_run.dir/imfant_run.cpp.o"
  "CMakeFiles/imfant_run.dir/imfant_run.cpp.o.d"
  "imfant_run"
  "imfant_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imfant_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
