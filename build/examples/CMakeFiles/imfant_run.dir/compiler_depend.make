# Empty compiler generated dependencies file for imfant_run.
# This may be replaced when dependencies are built.
