# Empty dependencies file for mfsac.
# This may be replaced when dependencies are built.
