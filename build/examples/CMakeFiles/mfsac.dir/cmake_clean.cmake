file(REMOVE_RECURSE
  "CMakeFiles/mfsac.dir/mfsac.cpp.o"
  "CMakeFiles/mfsac.dir/mfsac.cpp.o.d"
  "mfsac"
  "mfsac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfsac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
