# Empty dependencies file for mfsa_grep.
# This may be replaced when dependencies are built.
