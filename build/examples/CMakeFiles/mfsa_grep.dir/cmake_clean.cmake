file(REMOVE_RECURSE
  "CMakeFiles/mfsa_grep.dir/mfsa_grep.cpp.o"
  "CMakeFiles/mfsa_grep.dir/mfsa_grep.cpp.o.d"
  "mfsa_grep"
  "mfsa_grep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfsa_grep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
