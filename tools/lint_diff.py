#!/usr/bin/env python3
"""Diff-aware clang-tidy runner.

Full-tree clang-tidy over this repo takes minutes; a pull request usually
touches a handful of files. This runner lints exactly the translation units
a change can affect:

  - every changed .cpp under src/ is linted directly;
  - every changed .h under src/ is mapped to the .cpp files that include it
    (by include spelling relative to src/, the repo convention), and those
    TUs are linted.

Usage:
    tools/lint_diff.py [--base REF] [--build-dir build] [--all] [files...]

With explicit file arguments the git diff is skipped and those paths are
used as the change set. --all lints every TU (what the push builds run).
Requires a compile_commands.json in the build dir (CMake exports it; the
setup-build action symlinks it to the repo root).

Exit status: clang-tidy's own (nonzero on error-level findings), 2 on
usage errors, 0 when the change set maps to zero TUs.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.M)


def run(cmd, **kwargs):
    return subprocess.run(cmd, capture_output=True, text=True, **kwargs)


def changed_files(base):
    merge_base = run(["git", "merge-base", base, "HEAD"])
    ref = merge_base.stdout.strip() if merge_base.returncode == 0 else base
    diff = run(["git", "diff", "--name-only", ref, "HEAD"])
    if diff.returncode != 0:
        print(f"lint_diff: git diff against {ref!r} failed: "
              f"{diff.stderr.strip()}", file=sys.stderr)
        sys.exit(2)
    files = [f for f in diff.stdout.splitlines() if f]
    # Uncommitted work counts too (local runs before commit).
    working = run(["git", "diff", "--name-only", "HEAD"])
    files += [f for f in working.stdout.splitlines() if f]
    return sorted(set(files))


def all_tus(root):
    tus = []
    for dirpath, _dirs, names in os.walk(os.path.join(root, "src")):
        for name in sorted(names):
            if name.endswith(".cpp"):
                tus.append(os.path.relpath(os.path.join(dirpath, name), root))
    return tus


def include_map(root):
    """Maps each src-relative header spelling to the TUs that include it,
    transitively (a header including a changed header dirties its users)."""
    direct = {}   # tu or header path -> set of include spellings
    for dirpath, _dirs, names in os.walk(os.path.join(root, "src")):
        for name in sorted(names):
            if not name.endswith((".h", ".cpp")):
                continue
            path = os.path.relpath(os.path.join(dirpath, name), root)
            with open(os.path.join(root, path), encoding="utf-8") as fh:
                direct[path] = set(INCLUDE_RE.findall(fh.read()))

    # Resolve include spellings ("service/Server.h") to repo paths.
    def resolve(spelling):
        cand = os.path.join("src", spelling)
        return cand if cand in direct else None

    users = {}    # header repo-path -> set of TU repo-paths
    def visit(tu, node, seen):
        for spelling in direct.get(node, ()):
            header = resolve(spelling)
            if header and header not in seen:
                seen.add(header)
                users.setdefault(header, set()).add(tu)
                visit(tu, header, seen)

    for path in direct:
        if path.endswith(".cpp"):
            users.setdefault(path, set()).add(path)
            visit(path, path, {path})
    return users


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--base", default="origin/main",
                        help="ref to diff against (default origin/main)")
    parser.add_argument("--build-dir", default="build",
                        help="build dir holding compile_commands.json")
    parser.add_argument("--all", action="store_true",
                        help="lint every TU instead of the diff")
    parser.add_argument("files", nargs="*",
                        help="explicit change set (skips git diff)")
    args = parser.parse_args()

    root = os.getcwd()
    tidy = shutil.which("clang-tidy")
    if not tidy:
        for ver in range(20, 13, -1):
            tidy = shutil.which(f"clang-tidy-{ver}")
            if tidy:
                break
    if not tidy:
        print("lint_diff: no clang-tidy on PATH", file=sys.stderr)
        return 2
    if not os.path.exists(os.path.join(args.build_dir,
                                       "compile_commands.json")):
        print(f"lint_diff: {args.build_dir}/compile_commands.json missing; "
              f"configure with CMake first", file=sys.stderr)
        return 2

    if args.all:
        tus = all_tus(root)
    else:
        changed = args.files or changed_files(args.base)
        changed = [f for f in changed
                   if f.startswith("src/") and f.endswith((".h", ".cpp"))]
        if not changed:
            print("lint_diff: no C++ changes under src/; nothing to lint")
            return 0
        users = include_map(root)
        tus = sorted({tu for f in changed for tu in users.get(f, ())})
        if not tus:
            print("lint_diff: changed files map to no translation units")
            return 0

    print(f"lint_diff: {len(tus)} TU(s): " + " ".join(tus))
    proc = subprocess.run([tidy, "-p", args.build_dir, "--quiet"] + tus)
    return proc.returncode


if __name__ == "__main__":
    sys.exit(main())
