#!/usr/bin/env python3
"""Perf-regression gate comparing fresh BENCH_*.json reports to baselines.

Pairs each baseline report under --baseline-dir with the same-named file
under --fresh-dir and compares the headline "results" rows by (bench,
row-name) key. --fresh-dir may repeat: the comparison then uses the
direction-aware best of each row across the runs (fastest time, highest
throughput), which suppresses the additive scheduling noise of short smoke
runs — generate baselines the same way via --write-merged. Only rows whose
unit states a wall-clock or throughput direction are gated:

  - lower-is-better : units s / ms / us / ns (elapsed time);
  - higher-is-better: units containing "/s" (throughput).

Rows in any other unit (ratios, rule counts, table-growth factors, ...) are
structural measurements, not performance, and are reported but never gate.
A gated row fails when it is worse than the baseline by more than
--threshold (default 0.15 = 15%). For time rows the tolerated delta is
threshold * max(baseline, --floor): scheduling jitter on a millisecond-scale
smoke row is a fixed cost, not a fraction, so rows below the floor
(default 0.05 s) get a floor-scaled absolute allowance instead of flapping. Baseline rows missing from the fresh
report, fresh rows with no baseline, and whole files on either side without
a counterpart are warnings, not failures — they mean the bench matrix
changed and the baselines need a refresh, which is a review decision.

Schema-v2 provenance (toolchain / build_type / simd_level) is compared when
both sides carry it: a mismatch is a warning by default because the numbers
are still the best available signal, or an error under --strict-provenance.

Pure stdlib. Exit 0 = no regression, 1 = regression or usage error.
Baselines are refreshed by re-running the bench set and copying the fresh
JSONs over bench/baselines/ (see docs/performance.md).
"""

import argparse
import glob
import json
import os
import sys

LOWER_BETTER_UNITS = {"s", "ms", "us", "ns"}
SECONDS_PER_UNIT = {"s": 1.0, "ms": 1e-3, "us": 1e-6, "ns": 1e-9}
PROVENANCE_KEYS = ("toolchain", "build_type", "simd_level")


def direction(unit):
    """'lower', 'higher', or None when the unit does not gate."""
    if unit in LOWER_BETTER_UNITS:
        return "lower"
    if "/s" in unit:
        return "higher"
    return None


def load(path):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def rows_by_name(doc):
    return {row["name"]: row for row in doc.get("results", [])}


def merge_best(docs):
    """One doc whose gated rows are the best across \p docs; the first doc
    supplies everything else (provenance, config, non-gated rows)."""
    merged = json.loads(json.dumps(docs[0]))  # deep copy
    best = rows_by_name(merged)
    for other in docs[1:]:
        for name, row in rows_by_name(other).items():
            if name not in best or best[name].get("unit") != row.get("unit"):
                continue
            sense = direction(row.get("unit", ""))
            if sense == "lower" and row["value"] < best[name]["value"]:
                best[name]["value"] = row["value"]
            elif sense == "higher" and row["value"] > best[name]["value"]:
                best[name]["value"] = row["value"]
    return merged


def compare_file(name, base_doc, fresh_doc, threshold, floor, warnings,
                 failures):
    for key in PROVENANCE_KEYS:
        base_val, fresh_val = base_doc.get(key), fresh_doc.get(key)
        if base_val is not None and fresh_val is not None \
                and base_val != fresh_val:
            warnings.append(
                f"{name}: {key} mismatch (baseline {base_val!r}, "
                f"fresh {fresh_val!r})")

    base_rows, fresh_rows = rows_by_name(base_doc), rows_by_name(fresh_doc)
    for row_name in sorted(set(base_rows) - set(fresh_rows)):
        warnings.append(f"{name}: baseline row '{row_name}' missing from "
                        "fresh report")
    for row_name in sorted(set(fresh_rows) - set(base_rows)):
        warnings.append(f"{name}: new row '{row_name}' has no baseline")

    gated = skipped = 0
    for row_name in sorted(set(base_rows) & set(fresh_rows)):
        base, fresh = base_rows[row_name], fresh_rows[row_name]
        if base.get("unit") != fresh.get("unit"):
            warnings.append(
                f"{name}: {row_name} unit changed "
                f"({base.get('unit')!r} -> {fresh.get('unit')!r})")
            continue
        sense = direction(base.get("unit", ""))
        if sense is None:
            skipped += 1
            continue
        base_val, fresh_val = base["value"], fresh["value"]
        if base_val <= 0:
            warnings.append(f"{name}: {row_name} baseline value "
                            f"{base_val} not positive; skipping")
            continue
        gated += 1
        change = fresh_val / base_val - 1.0
        if sense == "lower":
            floor_units = floor / SECONDS_PER_UNIT[base["unit"]]
            worse = fresh_val - base_val > threshold * max(base_val,
                                                           floor_units)
        else:
            worse = -change > threshold
        line = (f"{name}: {row_name}: {base_val:g} -> {fresh_val:g} "
                f"{base['unit']} ({change:+.1%}, {sense} is better)")
        if worse:
            failures.append(line)
        else:
            print(f"  ok    {line}")
    print(f"{name}: {gated} gated rows, {skipped} non-perf rows skipped")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", required=True,
                        help="directory of committed BENCH_*.json baselines")
    parser.add_argument("--fresh-dir", required=True, action="append",
                        help="directory of freshly produced BENCH_*.json; "
                        "repeat to gate on the best row across runs")
    parser.add_argument("--write-merged", metavar="DIR",
                        help="also write the merged best-of fresh reports "
                        "to DIR (how baselines are produced)")
    parser.add_argument("--threshold", type=float, default=0.15,
                        metavar="FRACTION",
                        help="max tolerated relative regression "
                        "(default 0.15)")
    parser.add_argument("--floor", type=float, default=0.05,
                        metavar="SECONDS",
                        help="time rows below this get a floor-scaled "
                        "absolute allowance instead (default 0.05)")
    parser.add_argument("--strict-provenance", action="store_true",
                        help="treat toolchain/build_type/simd_level "
                        "mismatches as failures")
    args = parser.parse_args()

    base_files = {os.path.basename(p): p for p in sorted(
        glob.glob(os.path.join(args.baseline_dir, "BENCH_*.json")))}
    fresh_files = {}  # name -> list of paths, one per --fresh-dir
    for fresh_dir in args.fresh_dir:
        for path in sorted(glob.glob(os.path.join(fresh_dir,
                                                  "BENCH_*.json"))):
            fresh_files.setdefault(os.path.basename(path), []).append(path)
    if not base_files:
        print(f"error: no BENCH_*.json under {args.baseline_dir}",
              file=sys.stderr)
        return 1

    warnings, failures = [], []
    for name in sorted(set(base_files) - set(fresh_files)):
        warnings.append(f"{name}: baseline has no fresh counterpart")
    for name in sorted(set(fresh_files) - set(base_files)):
        warnings.append(f"{name}: fresh report has no baseline "
                        "(new bench? refresh bench/baselines/)")

    if args.write_merged:
        os.makedirs(args.write_merged, exist_ok=True)

    for name in sorted(set(base_files) & set(fresh_files)):
        try:
            base_doc = load(base_files[name])
            fresh_doc = merge_best([load(p) for p in fresh_files[name]])
        except (OSError, json.JSONDecodeError) as err:
            failures.append(f"{name}: unreadable: {err}")
            continue
        if args.write_merged:
            with open(os.path.join(args.write_merged, name), "w",
                      encoding="utf-8") as handle:
                json.dump(fresh_doc, handle, indent=2)
                handle.write("\n")
        provenance_before = len(warnings)
        compare_file(name, base_doc, fresh_doc, args.threshold, args.floor,
                     warnings, failures)
        if args.strict_provenance:
            moved = [w for w in warnings[provenance_before:]
                     if "mismatch" in w and any(
                         k in w for k in PROVENANCE_KEYS)]
            for line in moved:
                warnings.remove(line)
                failures.append(line)

    for line in warnings:
        print(f"  warn  {line}")
    for line in failures:
        print(f"  FAIL  {line}", file=sys.stderr)
    print(f"\n{len(failures)} regression(s), {len(warnings)} warning(s), "
          f"threshold {args.threshold:.0%}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
