//===- thread_safety_negative.cpp - analysis spot-check fixtures ----------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Proves the thread-safety gate actually gates. CI compiles this file with
// clang++ -fsyntax-only under the same -Werror=thread-safety flags as the
// tree, once per MFSA_NEGATIVE_CASE value:
//
//   0  well-annotated code            -> must COMPILE (the fixture itself
//                                        is valid; failures mean the flags
//                                        or Sync.h broke)
//   1  guarded field without the lock -> must FAIL (-Wthread-safety says a
//                                        deleted MFSA_GUARDED_BY would have
//                                        been caught)
//   2  acquisition against a declared -> must FAIL under beta (says an
//      ACQUIRED_BEFORE order             inverted MFSA_ACQUIRED_BEFORE
//                                        would have been caught)
//
// Keep this file free of repo includes other than Sync.h: it must stay
// compilable with plain `clang++ -Isrc -fsyntax-only`, no build dir needed.
//
//===----------------------------------------------------------------------===//

#include "support/Sync.h"

#ifndef MFSA_NEGATIVE_CASE
#define MFSA_NEGATIVE_CASE 0
#endif

namespace {

class Fixture {
public:
  void wellLocked() MFSA_EXCLUDES(OuterMutex) {
    mfsa::sync::MutexLock Lock(OuterMutex);
    ++Guarded;
  }

  void orderedAcquisition() MFSA_EXCLUDES(OuterMutex, InnerMutex) {
    mfsa::sync::MutexLock Outer(OuterMutex);
    mfsa::sync::MutexLock Inner(InnerMutex);
    ++Guarded;
    ++InnerGuarded;
  }

#if MFSA_NEGATIVE_CASE == 1
  // A read of Guarded with no lock held: exactly what deleting the
  // MFSA_GUARDED_BY attribute would silently allow.
  int unguardedRead() { return Guarded; }
#endif

#if MFSA_NEGATIVE_CASE == 2
  // Inner before Outer, against the declared ACQUIRED_BEFORE edge: exactly
  // what inverting the attribute (or adding a backwards call path) allows.
  void invertedAcquisition() MFSA_EXCLUDES(OuterMutex, InnerMutex) {
    mfsa::sync::MutexLock Inner(InnerMutex);
    mfsa::sync::MutexLock Outer(OuterMutex);
    ++Guarded;
    ++InnerGuarded;
  }
#endif

private:
  mfsa::sync::Mutex OuterMutex MFSA_ACQUIRED_BEFORE(InnerMutex);
  mfsa::sync::Mutex InnerMutex;
  int Guarded MFSA_GUARDED_BY(OuterMutex) = 0;
  int InnerGuarded MFSA_GUARDED_BY(InnerMutex) = 0;
};

} // namespace

int main() {
  Fixture F;
  F.wellLocked();
  F.orderedAcquisition();
#if MFSA_NEGATIVE_CASE == 1
  return F.unguardedRead();
#elif MFSA_NEGATIVE_CASE == 2
  F.invertedAcquisition();
  return 0;
#else
  return 0;
#endif
}
