#!/usr/bin/env python3
"""Sync-layer lint: raw-primitive ban + lock-rank deadlock check.

Two gates, run over src/**/*.{h,cpp}:

1. Raw-primitive ban. Outside src/support/Sync.h (and an explicit
   allowlist), no file may name std::mutex, std::condition_variable,
   std::lock_guard, std::unique_lock, std::scoped_lock, std::shared_mutex,
   std::shared_lock, std::recursive_mutex, or include <mutex>,
   <condition_variable>, <shared_mutex>. All synchronization goes through
   sync::Mutex / sync::MutexLock / sync::CondVar so Clang's thread-safety
   analysis sees every acquisition.

2. Lock-rank discipline. Every `sync::Mutex` declaration must carry an
   MFSA_LOCK_RANK(N) marker with a globally unique field name. The
   acquisition-order graph is assembled from two sources:
     - `// LOCK-ORDER: A -> B` lines (the global table in Sync.h, plus any
       other file that declares an edge), and
     - MFSA_ACQUIRED_BEFORE(...) / MFSA_ACQUIRED_AFTER(...) attributes on
       the declarations themselves.
   Every edge must climb strictly upward in rank, and the whole graph must
   be acyclic (rank monotonicity implies acyclicity, but the cycle check
   also covers edges between mutexes that erroneously share a rank).

Exit status 0 = clean, 1 = findings (printed one per line, greppable),
2 = usage / internal error. `--self-test` runs the embedded fixtures that
prove the lint still catches each class of violation.
"""

import argparse
import os
import re
import sys

# Files whose raw std primitives are the implementation of the sync layer
# itself, not a bypass of it.
ALLOWLIST = {
    "src/support/Sync.h",
}

RAW_TOKENS = [
    "std::mutex",
    "std::recursive_mutex",
    "std::timed_mutex",
    "std::shared_mutex",
    "std::condition_variable",
    "std::lock_guard",
    "std::unique_lock",
    "std::scoped_lock",
    "std::shared_lock",
    "<mutex>",
    "<condition_variable>",
    "<shared_mutex>",
]

DECL_RE = re.compile(
    r"sync::Mutex\s+(\w+)\s*(MFSA_LOCK_RANK\((\d+)\))?"
    r"(?:\s*(MFSA_ACQUIRED_(?:BEFORE|AFTER))\(([^)]*)\))?"
)
ORDER_RE = re.compile(r"//\s*LOCK-ORDER:\s*(\w+)\s*->\s*(\w+)")


def strip_comments(line):
    """Drops // comments so commented-out code cannot trip the raw ban.
    LOCK-ORDER lines are parsed before this runs."""
    return line.split("//", 1)[0]


def scan_tree(root):
    """Yields (relpath, text) for every C++ file under root/src."""
    for dirpath, _dirnames, filenames in os.walk(os.path.join(root, "src")):
        for name in sorted(filenames):
            if not name.endswith((".h", ".cpp")):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            with open(path, encoding="utf-8") as fh:
                yield rel, fh.read()


def lint_files(files):
    """files: iterable of (relpath, text). Returns a list of findings."""
    findings = []
    ranks = {}       # mutex field name -> (rank, declsite)
    edges = []       # (holder, acquired, site)

    for rel, text in files:
        allowed = rel in ALLOWLIST
        # Multi-line declarations: attributes often wrap; fold continuation
        # lines (a decl line with no `;` joined with the next) for parsing.
        lines = text.splitlines()
        folded = []
        for i, line in enumerate(lines):
            folded.append((i + 1, line))
            if "sync::Mutex" in line and ";" not in line and i + 1 < len(lines):
                folded[-1] = (i + 1, line + " " + lines[i + 1].strip())

        for lineno, line in folded:
            for m in ORDER_RE.finditer(line):
                edges.append((m.group(1), m.group(2), f"{rel}:{lineno}"))

            code = strip_comments(line)
            if not allowed:
                for tok in RAW_TOKENS:
                    if tok in code:
                        findings.append(
                            f"{rel}:{lineno}: raw primitive {tok!r} outside "
                            f"the sync layer; use support/Sync.h"
                        )

            m = DECL_RE.search(code)
            if not m:
                continue
            name, rank_marker, rank, attr, attr_args = m.groups()
            site = f"{rel}:{lineno}"
            if not rank_marker:
                findings.append(
                    f"{site}: sync::Mutex {name} has no MFSA_LOCK_RANK(N) "
                    f"marker (see the table in support/Sync.h)"
                )
                continue
            if name in ranks:
                findings.append(
                    f"{site}: mutex field name {name} reused (first declared "
                    f"at {ranks[name][1]}); names must be globally unique so "
                    f"LOCK-ORDER lines are unambiguous"
                )
                continue
            ranks[name] = (int(rank), site)
            if attr:
                for other in [a.strip() for a in attr_args.split(",") if a.strip()]:
                    if attr == "MFSA_ACQUIRED_BEFORE":
                        edges.append((name, other, site))
                    else:
                        edges.append((other, name, site))

    # Rank monotonicity: every declared edge must climb strictly upward.
    graph = {}
    for holder, acquired, site in edges:
        for end in (holder, acquired):
            if end not in ranks:
                findings.append(
                    f"{site}: LOCK-ORDER edge names unknown mutex {end!r} "
                    f"(no MFSA_LOCK_RANK declaration found)"
                )
                break
        else:
            if ranks[holder][0] >= ranks[acquired][0]:
                findings.append(
                    f"{site}: edge {holder}({ranks[holder][0]}) -> "
                    f"{acquired}({ranks[acquired][0]}) does not climb ranks; "
                    f"renumber or restructure the acquisition"
                )
            graph.setdefault(holder, set()).add(acquired)

    # Cycle check over the declared graph (covers equal-rank mistakes).
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {n: WHITE for n in set(graph) | {v for vs in graph.values() for v in vs}}

    def dfs(node, path):
        color[node] = GRAY
        for nxt in sorted(graph.get(node, ())):
            if color[nxt] == GRAY:
                cycle = path[path.index(nxt):] + [nxt] if nxt in path else [node, nxt]
                findings.append(
                    "lock-order cycle: " + " -> ".join(cycle + [cycle[0]])
                )
            elif color[nxt] == WHITE:
                dfs(nxt, path + [nxt])
        color[node] = BLACK

    for node in sorted(color):
        if color[node] == WHITE:
            dfs(node, [node])

    return findings


def self_test():
    """Embedded fixtures: each must produce exactly the expected finding."""
    cases = [
        (
            "raw mutex outside the sync layer",
            [("src/engine/Foo.cpp", "std::mutex M;\n")],
            "raw primitive",
        ),
        (
            "raw include outside the sync layer",
            [("src/engine/Foo.h", "#include <mutex>\n")],
            "raw primitive",
        ),
        (
            "missing rank marker",
            [("src/engine/Foo.h", "sync::Mutex BareMutex;\n")],
            "no MFSA_LOCK_RANK",
        ),
        (
            "duplicate mutex name",
            [(
                "src/engine/Foo.h",
                "sync::Mutex DupMutex MFSA_LOCK_RANK(10);\n"
                "sync::Mutex DupMutex MFSA_LOCK_RANK(20);\n",
            )],
            "reused",
        ),
        (
            "non-monotone LOCK-ORDER edge",
            [(
                "src/engine/Foo.h",
                "sync::Mutex LowMutex MFSA_LOCK_RANK(10);\n"
                "sync::Mutex HighMutex MFSA_LOCK_RANK(20);\n"
                "// LOCK-ORDER: HighMutex -> LowMutex\n",
            )],
            "does not climb ranks",
        ),
        (
            "equal-rank cycle",
            [(
                "src/engine/Foo.h",
                "sync::Mutex AMutex MFSA_LOCK_RANK(10);\n"
                "sync::Mutex BMutex MFSA_LOCK_RANK(10);\n"
                "// LOCK-ORDER: AMutex -> BMutex\n"
                "// LOCK-ORDER: BMutex -> AMutex\n",
            )],
            "lock-order cycle",
        ),
        (
            "inverted ACQUIRED_BEFORE",
            [(
                "src/engine/Foo.h",
                "sync::Mutex FirstMutex MFSA_LOCK_RANK(30);\n"
                "sync::Mutex SecondMutex MFSA_LOCK_RANK(40) "
                "MFSA_ACQUIRED_BEFORE(FirstMutex);\n",
            )],
            "does not climb ranks",
        ),
        (
            "edge to unknown mutex",
            [(
                "src/engine/Foo.h",
                "sync::Mutex RealMutex MFSA_LOCK_RANK(10);\n"
                "// LOCK-ORDER: RealMutex -> GhostMutex\n",
            )],
            "unknown mutex",
        ),
        (
            "clean fixture stays clean",
            [(
                "src/engine/Foo.h",
                "sync::Mutex OuterMutex MFSA_LOCK_RANK(10);\n"
                "sync::Mutex InnerMutex MFSA_LOCK_RANK(20);\n"
                "// LOCK-ORDER: OuterMutex -> InnerMutex\n",
            )],
            None,
        ),
    ]
    failed = 0
    for title, files, expect in cases:
        findings = lint_files(files)
        if expect is None:
            ok = not findings
        else:
            ok = any(expect in f for f in findings)
        print(f"{'PASS' if ok else 'FAIL'}: {title}")
        if not ok:
            for f in findings:
                print(f"    got: {f}")
            failed += 1
    return failed == 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded violation fixtures")
    args = parser.parse_args()

    if args.self_test:
        return 0 if self_test() else 1

    findings = lint_files(scan_tree(args.root))
    for f in findings:
        print(f)
    if findings:
        print(f"\n{len(findings)} finding(s). See src/support/Sync.h for the "
              f"locking rules and the rank table.")
        return 1
    print("sync annotations clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
