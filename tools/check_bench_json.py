#!/usr/bin/env python3
"""Schema checker for the BENCH_*.json reports the bench harness emits.

Validates every file against the BenchReport contract (schema_version 1
or 2, see docs/observability.md):

  - top-level: schema_version in {1, 2}, bench, paper_ref, config, results,
    metrics; v2 additionally requires the provenance fields toolchain,
    build_type, and simd_level (one of scalar / sse42 / avx2);
  - config: stream_bytes / reps / max_threads / metrics_compiled_in;
  - results: a list of {name, value, unit} rows with numeric values;
  - metrics: the registry export with counters (non-negative integers),
    gauges (integers), and histograms whose counts arrays are consistent
    (len(counts) == len(bounds) + 1, sum(counts) == count);
  - every metric named *_ns, *_us, or *_ms is a non-negative wall-clock
    reading;
  - plans (optional, v2): planner decision traces keyed by dataset, each an
    EnginePlan::explainJson() document with engine / merging_factor /
    stride / candidates, every candidate carrying per-engine estimates
    with feasibility verdicts.

`--require NAME` (repeatable) additionally asserts that a metric with that
name exists somewhere across the checked files — CI uses it to prove the
instrumented build actually reported occupancy, transitions/byte, and
per-stage compile times. `--require-result NAME` (repeatable) does the
same for headline result rows — the service-soak job uses it to prove the
load generator reported its p99 latency and divergence count rather than
silently dropping them. `--require-plans` asserts at least one checked
file embeds a non-empty plans object (the planner-ablation job uses it so
a bench that silently stops tracing fails loudly). Pure stdlib; exit 0 =
all files pass, 1 = any violation.
"""

import argparse
import json
import numbers
import sys


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    return 1


def check_histogram(path, name, hist):
    errors = 0
    for key in ("bounds", "counts", "count", "sum", "max", "mean"):
        if key not in hist:
            errors += fail(path, f"histogram {name} lacks '{key}'")
    if errors:
        return errors
    bounds, counts = hist["bounds"], hist["counts"]
    if len(counts) != len(bounds) + 1:
        errors += fail(
            path,
            f"histogram {name}: {len(counts)} counts for "
            f"{len(bounds)} bounds (want bounds + overflow)",
        )
    if bounds != sorted(set(bounds)):
        errors += fail(path, f"histogram {name}: bounds not increasing")
    if sum(counts) != hist["count"]:
        errors += fail(
            path,
            f"histogram {name}: counts sum {sum(counts)} != "
            f"count {hist['count']}",
        )
    if any(c < 0 for c in counts) or hist["sum"] < 0 or hist["max"] < 0:
        errors += fail(path, f"histogram {name}: negative statistic")
    return errors


def check_timing(path, name, value):
    if name.endswith(("_ns", "_us", "_ms")) and value < 0:
        return fail(path, f"timing metric {name} is negative: {value}")
    return 0


ENGINE_NAMES = {"auto", "dense", "sparse", "dfa", "stride2", "prefilter"}


def check_plan(path, key, plan):
    """One EnginePlan::explainJson() document under the 'plans' object."""
    errors = 0
    if not isinstance(plan, dict):
        return fail(path, f"plan {key} is not an object")
    for field in ("engine", "merging_factor", "stride", "plan_wall_ms",
                  "candidates"):
        if field not in plan:
            errors += fail(path, f"plan {key} lacks '{field}'")
    if errors:
        return errors
    if plan["engine"] not in ENGINE_NAMES - {"auto"}:
        errors += fail(
            path, f"plan {key}: chosen engine {plan['engine']!r} is not a "
            "concrete engine")
    if not isinstance(plan["merging_factor"], int) or plan["merging_factor"] < 0:
        errors += fail(path, f"plan {key}: bad merging_factor")
    if plan["stride"] not in (1, 2):
        errors += fail(path, f"plan {key}: stride {plan['stride']} not 1 or 2")
    if not isinstance(plan["candidates"], list) or not plan["candidates"]:
        return errors + fail(path, f"plan {key}: empty candidates list")
    for cand in plan["candidates"]:
        for field in ("merging_factor", "num_groups", "analyzed_groups",
                      "width", "dfa", "table", "literals", "engines", "best",
                      "best_ns_per_byte"):
            if field not in cand:
                errors += fail(
                    path, f"plan {key}: candidate lacks '{field}'")
        for est in cand.get("engines", []):
            if sorted(est) != ["engine", "feasible", "ns_per_byte", "why"]:
                errors += fail(
                    path, f"plan {key}: malformed engine estimate: {est}")
            elif est["engine"] not in ENGINE_NAMES - {"auto"}:
                errors += fail(
                    path,
                    f"plan {key}: unknown engine {est['engine']!r}")
            elif est["feasible"] and est["ns_per_byte"] < 0:
                errors += fail(
                    path, f"plan {key}: negative estimate for "
                    f"{est['engine']}")
    return errors


def check_file(path, seen_metrics, seen_results, plan_files):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        return fail(path, f"unreadable or invalid JSON: {err}")

    errors = 0
    for key in ("schema_version", "bench", "paper_ref", "config", "results",
                "metrics"):
        if key not in doc:
            errors += fail(path, f"missing top-level '{key}'")
    if errors:
        return errors
    version = doc["schema_version"]
    if version not in (1, 2):
        errors += fail(path, f"schema_version {version} not in (1, 2)")
    if not doc["bench"] or not isinstance(doc["bench"], str):
        errors += fail(path, "empty bench name")
    if version == 2:
        for key in ("toolchain", "build_type", "simd_level"):
            if key not in doc or not isinstance(doc[key], str):
                errors += fail(path, f"schema v2 requires string '{key}'")
        if doc.get("simd_level") not in ("scalar", "sse42", "avx2"):
            errors += fail(
                path, f"simd_level {doc.get('simd_level')!r} not one of "
                "scalar/sse42/avx2")

    for key in ("stream_bytes", "reps", "max_threads", "metrics_compiled_in"):
        if key not in doc["config"]:
            errors += fail(path, f"config lacks '{key}'")

    if not isinstance(doc["results"], list):
        errors += fail(path, "results is not a list")
    else:
        for row in doc["results"]:
            if sorted(row) != ["name", "unit", "value"]:
                errors += fail(path, f"malformed result row: {row}")
            elif not isinstance(row["value"], numbers.Real):
                errors += fail(
                    path, f"result {row['name']} value is not numeric")
            else:
                errors += check_timing(path, row["name"], row["value"])
                seen_results.add(row["name"])

    if "plans" in doc:
        if not isinstance(doc["plans"], dict):
            errors += fail(path, "plans is not an object")
        else:
            for key, plan in doc["plans"].items():
                errors += check_plan(path, key, plan)
            if doc["plans"]:
                plan_files.add(path)

    metrics = doc["metrics"]
    seen = set()
    for section in ("counters", "gauges", "histograms"):
        if section not in metrics or not isinstance(metrics[section], dict):
            errors += fail(path, f"metrics lacks '{section}' object")
            continue
        seen.update(metrics[section])
    for name, value in metrics.get("counters", {}).items():
        if not isinstance(value, int) or value < 0:
            errors += fail(path, f"counter {name} not a non-negative int")
        else:
            errors += check_timing(path, name, value)
    for name, value in metrics.get("gauges", {}).items():
        if not isinstance(value, int):
            errors += fail(path, f"gauge {name} not an int")
        else:
            errors += check_timing(path, name, value)
    for name, hist in metrics.get("histograms", {}).items():
        if not isinstance(hist, dict):
            errors += fail(path, f"histogram {name} not an object")
        else:
            errors += check_histogram(path, name, hist)

    seen_metrics.update(seen)
    if not errors:
        print(f"{path}: ok ({len(doc['results'])} results, "
              f"{len(seen)} metrics, {len(doc.get('plans', {}))} plans)")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", help="BENCH_*.json files")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="assert this metric name is present in some file (repeatable)",
    )
    parser.add_argument(
        "--require-result",
        action="append",
        default=[],
        metavar="NAME",
        help="assert a result row with this name is present in some file "
        "(repeatable)",
    )
    parser.add_argument(
        "--require-plans",
        action="store_true",
        help="assert at least one checked file embeds planner traces",
    )
    args = parser.parse_args()
    seen_metrics = set()
    seen_results = set()
    plan_files = set()
    errors = sum(
        check_file(path, seen_metrics, seen_results, plan_files)
        for path in args.files)
    for name in args.require:
        if name not in seen_metrics:
            errors += fail("<required>", f"metric '{name}' not reported by "
                           "any checked file")
    for name in args.require_result:
        if name not in seen_results:
            errors += fail("<required>", f"result row '{name}' not reported "
                           "by any checked file")
    if args.require_plans and not plan_files:
        errors += fail("<required>", "no checked file embeds a non-empty "
                       "'plans' object")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
