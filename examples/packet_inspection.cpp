//===- packet_inspection.cpp - deep-packet-inspection scenario ----------------===//
//
// Part of the mfsa project. MIT License.
//
// The paper's motivating application (§I): scanning a network stream against
// hundreds of IDS signatures at once. This example generates the Bro217-like
// ruleset, builds both the naive per-rule engines (M = 1) and a single
// merged MFSA (M = all), scans the same traffic with both, verifies they
// agree, and reports the throughput advantage — the Fig. 9 story on one
// workload.
//
//   $ ./packet_inspection [stream-bytes]
//
//===----------------------------------------------------------------------===//

#include "compiler/Pipeline.h"
#include "engine/Imfant.h"
#include "mfsa/Merge.h"
#include "support/Timer.h"
#include "workload/Datasets.h"

#include <cstdio>
#include <cstdlib>

using namespace mfsa;

int main(int argc, char **argv) {
  size_t StreamBytes = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                : (size_t(1) << 18);

  const DatasetSpec &Spec = *findDataset("BRO");
  std::vector<std::string> Rules = generateRuleset(Spec);
  std::printf("ruleset: %s (%zu signatures)\n", Spec.Name.c_str(),
              Rules.size());

  CompileOptions Options;
  Options.MergingFactor = 1;
  Options.EmitAnml = false;
  Result<CompileArtifacts> Artifacts = compileRuleset(Rules, Options);
  if (!Artifacts.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 Artifacts.diag().render().c_str());
    return 1;
  }

  std::string Traffic = generateStream(Spec, Rules, StreamBytes);
  std::printf("traffic: %zu bytes with planted signatures\n", Traffic.size());

  // Naive approach: one iNFAnt engine per signature.
  std::vector<ImfantEngine> PerRule;
  for (const Mfsa &Z : Artifacts->Mfsas)
    PerRule.emplace_back(Z);
  Timer NaiveTimer;
  uint64_t NaiveMatches = 0;
  std::vector<uint64_t> NaivePerRule(Rules.size(), 0);
  for (size_t I = 0; I < PerRule.size(); ++I) {
    MatchRecorder Recorder;
    PerRule[I].run(Traffic, Recorder);
    NaiveMatches += Recorder.total();
    for (size_t R = 0; R < Recorder.perRule().size(); ++R)
      NaivePerRule[R] += Recorder.perRule()[R];
  }
  double NaiveSec = NaiveTimer.elapsedSec();

  // Merged approach: one MFSA for the whole ruleset.
  Timer MergeTimer;
  std::vector<Mfsa> Merged = mergeInGroups(Artifacts->OptimizedFsas, 0);
  double MergeSec = MergeTimer.elapsedSec();
  ImfantEngine MergedEngine(Merged[0]);
  Timer MergedTimer;
  MatchRecorder MergedRecorder;
  MergedEngine.run(Traffic, MergedRecorder);
  double MergedSec = MergedTimer.elapsedSec();

  // The two approaches must agree match-for-match.
  bool Agree = MergedRecorder.total() == NaiveMatches;
  for (size_t R = 0; Agree && R < Rules.size(); ++R) {
    uint64_t MergedCount = R < MergedRecorder.perRule().size()
                               ? MergedRecorder.perRule()[R]
                               : 0;
    Agree = MergedCount == NaivePerRule[R];
  }

  std::printf("\n%-28s %10s %12s\n", "", "time [s]", "matches");
  std::printf("%-28s %10.3f %12lu\n", "per-signature engines (M=1)", NaiveSec,
              static_cast<unsigned long>(NaiveMatches));
  std::printf("%-28s %10.3f %12lu\n", "merged MFSA (M=all)", MergedSec,
              static_cast<unsigned long>(MergedRecorder.total()));
  std::printf("\nmerge build time: %.3fs (one-off, amortized across scans)\n",
              MergeSec);
  std::printf("throughput improvement: %.2fx\n", NaiveSec / MergedSec);
  std::printf("match agreement: %s\n", Agree ? "IDENTICAL" : "MISMATCH");
  return Agree ? 0 : 1;
}
