//===- mfsa_grep.cpp - multi-pattern grep over files ---------------------------===//
//
// Part of the mfsa project. MIT License.
//
// A grep-like utility scanning files against many patterns at once with a
// single merged MFSA — the "one automaton to rule them all" user story:
//
//   $ ./mfsa_grep -e 'error' -e 'warn(ing)?' -e 'fail(ed|ure)' log.txt
//
// Prints `file:line: pattern` for every line containing a match. Lines are
// scanned as independent streams so `^`/`$` anchor to line boundaries.
//
//===----------------------------------------------------------------------===//

#include "compiler/Pipeline.h"
#include "engine/Imfant.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace mfsa;

static void usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s -e pattern [-e pattern ...] [-c] file [...]\n"
               "  -e pattern  POSIX ERE to search for (repeatable)\n"
               "  -c          print per-pattern match counts only\n",
               Prog);
}

int main(int argc, char **argv) {
  std::vector<std::string> Patterns;
  std::vector<std::string> Files;
  bool CountOnly = false;

  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "-e") && I + 1 < argc)
      Patterns.push_back(argv[++I]);
    else if (!std::strcmp(argv[I], "-c"))
      CountOnly = true;
    else if (argv[I][0] == '-') {
      usage(argv[0]);
      return 2;
    } else
      Files.push_back(argv[I]);
  }
  if (Patterns.empty() || Files.empty()) {
    usage(argv[0]);
    return 2;
  }

  CompileOptions Options;
  Options.MergingFactor = 0;
  Options.EmitAnml = false;
  Result<CompileArtifacts> Artifacts = compileRuleset(Patterns, Options);
  if (!Artifacts.ok()) {
    std::fprintf(stderr, "%s: bad pattern: %s\n", argv[0],
                 Artifacts.diag().render().c_str());
    return 2;
  }
  ImfantEngine Engine(Artifacts->Mfsas[0]);

  std::vector<uint64_t> Counts(Patterns.size(), 0);
  bool AnyMatch = false;
  for (const std::string &Path : Files) {
    std::ifstream Stream(Path);
    if (!Stream) {
      std::fprintf(stderr, "%s: cannot open %s\n", argv[0], Path.c_str());
      return 2;
    }
    std::string Line;
    size_t LineNo = 0;
    while (std::getline(Stream, Line)) {
      ++LineNo;
      MatchRecorder Recorder;
      Engine.run(Line, Recorder);
      if (Recorder.total() == 0)
        continue;
      AnyMatch = true;
      for (size_t P = 0; P < Patterns.size(); ++P) {
        uint64_t N = P < Recorder.perRule().size() ? Recorder.perRule()[P] : 0;
        if (N == 0)
          continue;
        Counts[P] += N;
        if (!CountOnly)
          std::printf("%s:%zu: %s\n", Path.c_str(), LineNo,
                      Patterns[P].c_str());
      }
    }
  }
  if (CountOnly)
    for (size_t P = 0; P < Patterns.size(); ++P)
      std::printf("%8lu  %s\n", static_cast<unsigned long>(Counts[P]),
                  Patterns[P].c_str());
  return AnyMatch ? 0 : 1;
}
