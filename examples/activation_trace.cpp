//===- activation_trace.cpp - the paper's Fig. 3 / Fig. 6 walkthroughs --------===//
//
// Part of the mfsa project. MIT License.
//
// Renders the activation-function traces the paper narrates: Fig. 3 (merge
// of bcdegh and def against "degh" and "bcdef") and Fig. 6 (merge of
// (ad|cb)ab and a(b|c) against "acbab", yielding the three matches the
// paper enumerates). Run it with your own ruleset and input to debug a
// merged MFSA:
//
//   $ ./activation_trace                    # the paper's examples
//   $ ./activation_trace 'ab+' 'a.c' -- xabbc
//
//===----------------------------------------------------------------------===//

#include "compiler/Pipeline.h"
#include "engine/Trace.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace mfsa;

static int traceRuleset(const std::vector<std::string> &Rules,
                        const std::string &Input, const char *Title) {
  CompileOptions Options;
  Options.MergingFactor = 0;
  Options.EmitAnml = false;
  Result<CompileArtifacts> Artifacts = compileRuleset(Rules, Options);
  if (!Artifacts.ok()) {
    std::fprintf(stderr, "error: %s\n", Artifacts.diag().render().c_str());
    return 1;
  }
  const Mfsa &Z = Artifacts->Mfsas[0];
  std::printf("%s\n", Title);
  for (size_t I = 0; I < Rules.size(); ++I)
    std::printf("  rule %zu: %s\n", I, Rules[I].c_str());
  std::printf("  merged: %u states, %u transitions\n  input: \"%s\"\n\n",
              Z.numStates(), Z.numTransitions(), Input.c_str());
  std::printf("%s\n", formatTrace(Z, Input).c_str());
  return 0;
}

int main(int argc, char **argv) {
  if (argc > 1) {
    // Custom mode: patterns... -- input
    std::vector<std::string> Rules;
    std::string Input;
    bool AfterSeparator = false;
    for (int I = 1; I < argc; ++I) {
      if (!std::strcmp(argv[I], "--")) {
        AfterSeparator = true;
        continue;
      }
      if (AfterSeparator)
        Input = argv[I];
      else
        Rules.emplace_back(argv[I]);
    }
    if (Rules.empty() || Input.empty()) {
      std::fprintf(stderr, "usage: %s [pattern... -- input]\n", argv[0]);
      return 2;
    }
    return traceRuleset(Rules, Input, "custom ruleset:");
  }

  // Fig. 3: a1 = bcdegh, a2 = def. s1 = degh dies at 'g'; s2 = bcdef
  // matches def only.
  int Status = 0;
  Status |= traceRuleset({"bcdegh", "def"}, "degh",
                         "paper Fig. 3 (s1 = degh: a2 activates, dies at "
                         "g, no matches):");
  Status |= traceRuleset({"bcdegh", "def"}, "bcdef",
                         "paper Fig. 3 (s2 = bcdef: a2 matches def at 5):");
  // Fig. 6: acbab yields ac and ab for a2, cbab for a1 — three matches.
  Status |= traceRuleset({"(ad|cb)ab", "a(b|c)"}, "acbab",
                         "paper Fig. 6 (acbab: ac/ab for rule 1, cbab for "
                         "rule 0):");
  return Status;
}
