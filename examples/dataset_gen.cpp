//===- dataset_gen.cpp - synthetic Table I dataset emitter ---------------------===//
//
// Part of the mfsa project. MIT License.
//
// Materializes one of the calibrated Table I stand-in datasets
// (workload/Datasets.h) onto disk, so shell-level consumers — the CI
// artifact round-trip job, the cli robustness tests, ad-hoc benchmarking —
// can drive mfsac and imfant_run with realistic inputs without linking the
// library:
//
//   $ ./dataset_gen -n 64 -b 65536 -o outdir BRO
//
// writes outdir/bro.rules (one RE per line) and outdir/bro.stream (binary,
// with matches planted at the dataset's density). Generation is seeded and
// deterministic: same flags, same bytes.
//
//===----------------------------------------------------------------------===//

#include "anml/Anml.h"
#include "workload/Datasets.h"

#include "CliInput.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace mfsa;

static void usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [-n rules] [-b bytes] [-o outdir] ABBREV\n"
               "  ABBREV      dataset abbreviation: BRO, DOT, POW, PRO, "
               "RAN, TCP\n"
               "  -n rules    cap the ruleset at this many rules "
               "(default: full calibrated size)\n"
               "  -b bytes    stream size in bytes (default 65536)\n"
               "  -o outdir   output directory (default .)\n"
               "writes <outdir>/<abbrev>.rules and <outdir>/<abbrev>.stream\n",
               Prog);
}

int main(int argc, char **argv) {
  uint32_t NumRules = 0;
  size_t StreamBytes = 65536;
  std::string OutDir = ".";
  std::string Abbrev;

  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "-n") && I + 1 < argc)
      NumRules = static_cast<uint32_t>(std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "-b") && I + 1 < argc)
      StreamBytes = static_cast<size_t>(std::atoll(argv[++I]));
    else if (!std::strcmp(argv[I], "-o") && I + 1 < argc)
      OutDir = argv[++I];
    else if (argv[I][0] == '-') {
      usage(argv[0]);
      return cli::kExitUsage;
    } else
      Abbrev = argv[I];
  }
  if (Abbrev.empty() || StreamBytes == 0) {
    usage(argv[0]);
    return cli::kExitUsage;
  }

  const DatasetSpec *Spec = findDataset(Abbrev);
  if (!Spec) {
    std::fprintf(stderr, "error: unknown dataset %s\n", Abbrev.c_str());
    return cli::kExitUsage;
  }

  DatasetSpec Sized = *Spec;
  if (NumRules != 0)
    Sized.NumRes = std::min(Sized.NumRes, NumRules);
  std::vector<std::string> Patterns = generateRuleset(Sized);
  std::string Stream = generateStream(Sized, Patterns, StreamBytes);

  std::string Stem = Sized.Abbrev;
  std::transform(Stem.begin(), Stem.end(), Stem.begin(),
                 [](unsigned char C) { return std::tolower(C); });
  const std::string RulesPath = OutDir + "/" + Stem + ".rules";
  const std::string StreamPath = OutDir + "/" + Stem + ".stream";

  std::string RulesText;
  for (const std::string &P : Patterns) {
    RulesText += P;
    RulesText += '\n';
  }
  if (!saveFile(RulesPath, RulesText)) {
    std::fprintf(stderr, "error: cannot write %s\n", RulesPath.c_str());
    return cli::kExitRuntime;
  }
  if (!saveFile(StreamPath, Stream)) {
    std::fprintf(stderr, "error: cannot write %s\n", StreamPath.c_str());
    return cli::kExitRuntime;
  }
  std::printf("%s: %zu rules -> %s, %zu stream bytes -> %s\n",
              Sized.Name.c_str(), Patterns.size(), RulesPath.c_str(),
              Stream.size(), StreamPath.c_str());
  return 0;
}
