//===- scan_service.cpp - the scan service daemon -------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived scan server: listens on a Unix-domain socket and/or
/// loopback TCP, multiplexes tenants' input streams over shared compiled
/// rulesets (src/service/), and shuts down cleanly on SIGINT/SIGTERM. The
/// protocol and operational semantics are specified in docs/service.md.
///
/// Exit codes: 0 clean shutdown, 1 startup failure, 2 usage error.
///
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "service/Server.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace mfsa;
using namespace mfsa::service;

namespace {

// The signal handler only touches this pointer; requestStop() is
// async-signal-safe (one self-pipe write).
ScanServer *TheServer = nullptr;

void onSignal(int) {
  if (TheServer)
    TheServer->requestStop();
}

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--uds PATH] [--tcp [PORT]] [--cache-dir DIR]\n"
      "          [--workers N] [--max-streams N] [--max-queued-bytes N]\n"
      "          [--max-rules-bytes N] [--compile-deadline-ms MS]\n"
      "          [--write-timeout-ms MS] [--no-shutdown-frame] [--metrics]\n"
      "\n"
      "Serves the scan protocol (docs/service.md) until SIGINT/SIGTERM or a\n"
      "client Shutdown frame. At least one of --uds / --tcp is required.\n"
      "--cache-dir enables the on-disk compiled-ruleset artifact cache (the\n"
      "directory must exist). --metrics dumps the metrics registry on exit.\n",
      Argv0);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  ServerOptions Opts;
  bool DumpMetrics = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto NextValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Flag);
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--uds") {
      Opts.UdsPath = NextValue("--uds");
    } else if (Arg == "--tcp") {
      Opts.Tcp = true;
      if (I + 1 < Argc && Argv[I + 1][0] != '-')
        Opts.TcpPort = static_cast<uint16_t>(std::strtoul(Argv[++I], nullptr, 10));
    } else if (Arg == "--cache-dir") {
      Opts.Cache.CacheDir = NextValue("--cache-dir");
    } else if (Arg == "--workers") {
      Opts.Workers =
          static_cast<unsigned>(std::strtoul(NextValue("--workers"), nullptr, 10));
    } else if (Arg == "--max-streams") {
      Opts.Budget.MaxStreams = static_cast<uint32_t>(
          std::strtoul(NextValue("--max-streams"), nullptr, 10));
    } else if (Arg == "--max-queued-bytes") {
      Opts.Budget.MaxQueuedBytes =
          std::strtoull(NextValue("--max-queued-bytes"), nullptr, 10);
    } else if (Arg == "--max-rules-bytes") {
      Opts.Budget.MaxRulesBytes =
          std::strtoull(NextValue("--max-rules-bytes"), nullptr, 10);
    } else if (Arg == "--compile-deadline-ms") {
      Opts.Budget.CompileDeadlineMs =
          std::strtod(NextValue("--compile-deadline-ms"), nullptr);
    } else if (Arg == "--write-timeout-ms") {
      Opts.WriteTimeoutMs = static_cast<uint32_t>(
          std::strtoul(NextValue("--write-timeout-ms"), nullptr, 10));
    } else if (Arg == "--no-shutdown-frame") {
      Opts.AllowShutdownFrame = false;
    } else if (Arg == "--metrics") {
      DumpMetrics = true;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", Arg.c_str());
      return usage(Argv[0]);
    }
  }
  if (Opts.UdsPath.empty() && !Opts.Tcp)
    return usage(Argv[0]);

  Result<std::unique_ptr<ScanServer>> Server = ScanServer::start(Opts);
  if (!Server.ok()) {
    std::fprintf(stderr, "error: %s\n", Server.diag().render().c_str());
    return 1;
  }
  TheServer = Server->get();

  struct sigaction Action {};
  Action.sa_handler = onSignal;
  ::sigaction(SIGINT, &Action, nullptr);
  ::sigaction(SIGTERM, &Action, nullptr);

  std::printf("scan_service listening:");
  if (!Opts.UdsPath.empty())
    std::printf(" uds=%s", Opts.UdsPath.c_str());
  if (Opts.Tcp)
    std::printf(" tcp=127.0.0.1:%u", (*Server)->tcpPort());
  std::printf("\n");
  std::fflush(stdout);

  (*Server)->waitStopped();
  if (DumpMetrics)
    std::printf("%s\n", (*Server)->metrics().toText().c_str());
  TheServer = nullptr;
  Server->reset(); // Joins every thread; after this nothing is live.
  std::printf("clean shutdown\n");
  return 0;
}
