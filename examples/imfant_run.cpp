//===- imfant_run.cpp - the iMFAnt matcher driver ------------------------------===//
//
// Part of the mfsa project. MIT License.
//
// Command-line matcher, the analogue of the artifact's multithreaded_imfant:
//
//   $ ./imfant_run -t 4 -r 15 stream.bin out.anml [more.anml ...]
//   $ ./imfant_run --load-artifact rules.mfsa stream.bin
//
// loads extended-ANML automata — or a compiled binary artifact (mfsac
// --emit-artifact) with corruption-hardened validation and optional
// recompile fallback — scans the stream with T worker threads pulling
// automata from a shared queue (paper §VI-C2), and prints the best matching
// time over R repetitions (the artifact's -DREPS) and per-automaton match
// counts.
//
//===----------------------------------------------------------------------===//

#include "anml/Anml.h"
#include "artifact/Reader.h"
#include "engine/Imfant.h"
#include "engine/Parallel.h"
#include "engine/PlannedEngine.h"
#include "obs/Metrics.h"
#include "support/Timer.h"

#include "CliInput.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace mfsa;

static void usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [-t threads] [-r reps] [-v] stream.bin "
               "mfsa.anml [...]\n"
               "       %s [options] --load-artifact rules.mfsa stream.bin\n"
               "  -t threads  worker threads, one automaton each (default "
               "1)\n"
               "  --input-threads n  split the ONE input stream into n "
               "chunks\n"
               "              scanned in parallel with frontier-set "
               "boundary\n"
               "              stitching (byte-identical output; with "
               "--engine\n"
               "              auto the planner may decline and scan "
               "sequentially)\n"
               "  -r reps     timed repetitions, best-of (default 1)\n"
               "  -v          print every (rule, offset) match pair\n"
               "  --load-artifact path  load compiled MFSAs from a binary\n"
               "              artifact (validated end to end before use)\n"
               "  --fallback-rules file  if the artifact is rejected,\n"
               "              recompile these rules instead of failing\n"
               "  --spot-check  also prove sampled artifact rules' languages\n"
               "              against a fresh compile of the embedded "
               "patterns\n"
               "  --engine e  execution engine: auto|dense|sparse|dfa|\n"
               "              stride2|prefilter (default dense; auto asks\n"
               "              the static cost planner)\n"
               "  --explain-plan  with --engine auto, print the planner's\n"
               "              JSON decision trace before running\n"
               "  --metrics   dump scan instrumentation after the run "
               "(text; --metrics=json for JSON; counters need a build "
               "with MFSA_METRICS=1 or asserts)\n"
               "exit codes: 0 ok, 1 error, 2 usage, 3 missing/unreadable "
               "input,\n"
               "            4 empty input, 5 artifact rejected with no "
               "usable fallback\n",
               Prog, Prog);
}

int main(int argc, char **argv) {
  unsigned Threads = 1;
  unsigned Reps = 1;
  bool Verbose = false;
  bool Metrics = false;
  bool MetricsJson = false;
  bool SpotCheck = false;
  bool ExplainPlan = false;
  Engine EngineChoice = Engine::ImfantDense;
  std::string ArtifactPath;
  std::string FallbackRulesPath;
  std::vector<std::string> Paths;

  unsigned InputThreads = 1;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "-t") && I + 1 < argc)
      Threads = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--input-threads") && I + 1 < argc)
      InputThreads = static_cast<unsigned>(std::max(1, std::atoi(argv[++I])));
    else if (!std::strcmp(argv[I], "-r") && I + 1 < argc)
      Reps = std::max(1, std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "-v"))
      Verbose = true;
    else if (!std::strcmp(argv[I], "--load-artifact") && I + 1 < argc)
      ArtifactPath = argv[++I];
    else if (!std::strcmp(argv[I], "--fallback-rules") && I + 1 < argc)
      FallbackRulesPath = argv[++I];
    else if (!std::strcmp(argv[I], "--spot-check"))
      SpotCheck = true;
    else if (!std::strcmp(argv[I], "--engine") && I + 1 < argc) {
      if (int Rc = cli::parseEngineFlag(argv[++I], EngineChoice))
        return Rc;
    } else if (!std::strcmp(argv[I], "--explain-plan"))
      ExplainPlan = true;
    else if (!std::strcmp(argv[I], "--metrics"))
      Metrics = true;
    else if (!std::strcmp(argv[I], "--metrics=json"))
      Metrics = MetricsJson = true;
    else if (argv[I][0] == '-') {
      usage(argv[0]);
      return cli::kExitUsage;
    } else
      Paths.push_back(argv[I]);
  }
  const size_t WantPaths = ArtifactPath.empty() ? 2 : 1;
  if (Paths.size() < WantPaths ||
      (!ArtifactPath.empty() && Paths.size() != 1)) {
    usage(argv[0]);
    return cli::kExitUsage;
  }

  std::string Stream;
  if (int Rc = cli::readInputFile(Paths[0], "input stream", Stream))
    return Rc;

  // The registry exists unconditionally so the artifact loader's
  // `artifact.load.*` / `artifact.fallback.*` metrics are counted whether or
  // not --metrics later dumps them.
  obs::MetricsRegistry Registry;

  // Both input paths produce merged MFSAs (plus, when the artifact embeds
  // them, the original patterns) so every engine choice shares one setup.
  std::vector<Mfsa> Mfsas;
  std::vector<std::string> MfsaNames;
  std::vector<std::string> RulePatterns;
  if (!ArtifactPath.empty()) {
    std::vector<std::string> FallbackRules;
    if (!FallbackRulesPath.empty())
      if (int Rc = cli::readRulesFile(FallbackRulesPath, FallbackRules))
        return Rc;
    artifact::LoadOptions LoadOptions;
    LoadOptions.SpotCheckValidate = SpotCheck;
    Result<artifact::RecoveredRuleset> Recovered =
        artifact::loadArtifactOrRecompile(ArtifactPath, FallbackRules, {},
                                          LoadOptions, &Registry);
    if (!Recovered.ok()) {
      std::fprintf(stderr, "error: %s\n", Recovered.diag().render().c_str());
      return FallbackRules.empty() ? cli::kExitArtifactRejected
                                   : cli::kExitRuntime;
    }
    if (!Recovered->FromArtifact)
      std::fprintf(stderr,
                   "warning: artifact rejected, recompiled %zu fallback "
                   "rule(s): %s\n",
                   FallbackRules.size(), Recovered->FallbackReason.c_str());
    RulePatterns = std::move(Recovered->Patterns);
    Mfsas = std::move(Recovered->Mfsas);
    for (size_t I = 0; I < Mfsas.size(); ++I)
      MfsaNames.push_back(ArtifactPath + "[" + std::to_string(I) + "]");
  } else {
    for (size_t I = 1; I < Paths.size(); ++I) {
      std::string Doc;
      if (int Rc = cli::readInputFile(Paths[I], "ANML file", Doc))
        return Rc;
      Result<Mfsa> Z = readAnml(Doc);
      if (!Z.ok()) {
        std::fprintf(stderr, "error: %s: %s\n", Paths[I].c_str(),
                     Z.diag().render().c_str());
        return cli::kExitRuntime;
      }
      Mfsas.push_back(std::move(*Z));
      MfsaNames.push_back(Paths[I]);
    }
  }

  // Resolve --engine auto through the static cost planner, then run any
  // non-dense choice — or any --input-threads request — through the uniform
  // PlannedEngineSet driver (group-sequential). The plain dense default
  // keeps the historical multithreaded runParallel path below.
  bool InputParallel = InputThreads > 1;
  if (EngineChoice != Engine::ImfantDense || InputParallel) {
    EnginePlan Plan;
    if (EngineChoice == Engine::Auto) {
      PlannerOptions PO;
      PO.AllowPrefilter = !RulePatterns.empty();
      PO.InputThreads = InputThreads;
      Plan = planMfsas(Mfsas, RulePatterns, 0, PO);
      if (ExplainPlan)
        std::printf("%s\n", Plan.explainJson().c_str());
      if (Metrics)
        Plan.recordTo(Registry);
      EngineChoice = Plan.Choice;
      if (InputParallel && !Plan.ParallelInput) {
        std::fprintf(stderr,
                     "note: planner declined input-parallel scan (%s); "
                     "scanning sequentially\n",
                     Plan.ParallelInputWhy.c_str());
        InputParallel = false;
      }
    }
    // Explicitly forced engines skip the planner; the sparse/prefilter
    // fallback inside runInputParallel would be silent, so say it here.
    if (InputParallel && (EngineChoice == Engine::ImfantSparse ||
                          EngineChoice == Engine::Prefilter)) {
      std::fprintf(stderr,
                   "note: %s engine has no input-parallel executor; "
                   "scanning sequentially\n",
                   engineName(EngineChoice));
      InputParallel = false;
    }
    Result<PlannedEngineSet> Set =
        PlannedEngineSet::create(EngineChoice, Mfsas, RulePatterns);
    if (!Set.ok()) {
      std::fprintf(stderr,
                   "warning: %s engine unavailable (%s); falling back to "
                   "dense\n",
                   engineName(EngineChoice), Set.diag().render().c_str());
      EngineChoice = Engine::ImfantDense;
    } else {
      InputParallelOptions ParOpts;
      ParOpts.Threads = InputThreads;
      ParOpts.UseThreadPool = true;
      MatchRecorder Recorder(Verbose ? MatchRecorder::Mode::Collect
                                     : MatchRecorder::Mode::CountOnly);
      InputParallelStats ParStats;
      Timer Clock;
      if (InputParallel)
        Set->runInputParallel(Stream, Recorder, ParOpts, &ParStats);
      else
        Set->run(Stream, Recorder);
      double Best = Clock.elapsedNs() * 1e-9;
      for (unsigned Rep = 1; Rep < Reps; ++Rep) {
        MatchRecorder Again(MatchRecorder::Mode::CountOnly);
        Clock.reset();
        if (InputParallel)
          Set->runInputParallel(Stream, Again, ParOpts);
        else
          Set->run(Stream, Again);
        Best = std::min(Best, Clock.elapsedNs() * 1e-9);
      }
      std::printf("scanned %zu bytes with the %s engine (%zu group(s))\n",
                  Stream.size(), engineName(EngineChoice), Set->numGroups());
      if (InputParallel) {
        std::printf("input-parallel: %lu chunk(s), %lu table, %lu dead, "
                    "%lu re-scanned, %lu overlap byte(s)\n",
                    static_cast<unsigned long>(ParStats.Chunks),
                    static_cast<unsigned long>(ParStats.SpecTableChunks),
                    static_cast<unsigned long>(ParStats.SpecDeadChunks),
                    static_cast<unsigned long>(ParStats.RescanFallbackChunks),
                    static_cast<unsigned long>(ParStats.OverlapBytes));
        if (Metrics)
          recordInputParallelStats(ParStats, Registry);
      }
      std::printf("matching time: %.6f s (%.2f MB/s)\n", Best,
                  static_cast<double>(Stream.size()) / (Best * 1e6));
      std::printf("total matches: %lu\n",
                  static_cast<unsigned long>(Recorder.total()));
      if (Verbose)
        for (const auto &[Rule, End] : Recorder.matches())
          std::printf("    rule %u @ %lu\n", Rule,
                      static_cast<unsigned long>(End));
      if (Metrics)
        std::printf("%s", MetricsJson ? Registry.toJson().c_str()
                                      : Registry.toText().c_str());
      return 0;
    }
  }

  std::vector<ImfantEngine> Engines;
  std::vector<std::string> EngineNames;
  for (size_t I = 0; I < Mfsas.size(); ++I) {
    Engines.emplace_back(Mfsas[I]);
    EngineNames.push_back(MfsaNames[I]);
  }

  if (Metrics)
    for (ImfantEngine &Engine : Engines)
      Engine.setMetrics(&Registry);

  std::vector<MatchRecorder> Recorders;
  Recorders.reserve(Engines.size());
  for (size_t I = 0; I < Engines.size(); ++I)
    Recorders.emplace_back(Verbose ? MatchRecorder::Mode::Collect
                                   : MatchRecorder::Mode::CountOnly);

  ParallelRunResult Result = runParallel(Engines, Stream, Threads, &Recorders);
  for (unsigned Rep = 1; Rep < Reps; ++Rep) {
    ParallelRunResult Again = runParallel(Engines, Stream, Threads);
    if (Again.WallSeconds < Result.WallSeconds)
      Result.WallSeconds = Again.WallSeconds;
  }

  std::printf("scanned %zu bytes with %zu automaton/automata on %u "
              "thread(s)\n",
              Stream.size(), Engines.size(), Threads);
  std::printf("matching time: %.6f s (%.2f MB/s aggregate)\n",
              Result.WallSeconds,
              static_cast<double>(Stream.size()) * Engines.size() /
                  (Result.WallSeconds * 1e6));
  std::printf("total matches: %lu\n",
              static_cast<unsigned long>(Result.TotalMatches));
  for (size_t I = 0; I < Recorders.size(); ++I) {
    std::printf("  %s: %lu matches\n", EngineNames[I].c_str(),
                static_cast<unsigned long>(Recorders[I].total()));
    if (Verbose)
      for (const auto &[Rule, End] : Recorders[I].matches())
        std::printf("    rule %u @ %lu\n", Rule,
                    static_cast<unsigned long>(End));
  }
  if (Metrics)
    std::printf("%s", MetricsJson ? Registry.toJson().c_str()
                                  : Registry.toText().c_str());
  return 0;
}
