//===- imfant_run.cpp - the iMFAnt matcher driver ------------------------------===//
//
// Part of the mfsa project. MIT License.
//
// Command-line matcher, the analogue of the artifact's multithreaded_imfant:
//
//   $ ./imfant_run -t 4 -r 15 stream.bin out.anml [more.anml ...]
//
// loads extended-ANML automata, scans the stream with T worker threads
// pulling automata from a shared queue (paper §VI-C2), and prints the best
// matching time over R repetitions (the artifact's -DREPS) and per-automaton
// match counts.
//
//===----------------------------------------------------------------------===//

#include "anml/Anml.h"
#include "engine/Imfant.h"
#include "engine/Parallel.h"
#include "obs/Metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace mfsa;

static void usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [-t threads] [-r reps] [-v] stream.bin "
               "mfsa.anml [...]\n"
               "  -t threads  worker threads (default 1)\n"
               "  -r reps     timed repetitions, best-of (default 1)\n"
               "  -v          print every (rule, offset) match pair\n"
               "  --metrics   dump scan instrumentation after the run "
               "(text; --metrics=json for JSON; counters need a build "
               "with MFSA_METRICS=1 or asserts)\n",
               Prog);
}

int main(int argc, char **argv) {
  unsigned Threads = 1;
  unsigned Reps = 1;
  bool Verbose = false;
  bool Metrics = false;
  bool MetricsJson = false;
  std::vector<std::string> Paths;

  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "-t") && I + 1 < argc)
      Threads = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "-r") && I + 1 < argc)
      Reps = std::max(1, std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "-v"))
      Verbose = true;
    else if (!std::strcmp(argv[I], "--metrics"))
      Metrics = true;
    else if (!std::strcmp(argv[I], "--metrics=json"))
      Metrics = MetricsJson = true;
    else if (argv[I][0] == '-') {
      usage(argv[0]);
      return 2;
    } else
      Paths.push_back(argv[I]);
  }
  if (Paths.size() < 2) {
    usage(argv[0]);
    return 2;
  }

  Result<std::string> Stream = loadFile(Paths[0]);
  if (!Stream.ok()) {
    std::fprintf(stderr, "error: %s\n", Stream.diag().render().c_str());
    return 1;
  }

  std::vector<ImfantEngine> Engines;
  for (size_t I = 1; I < Paths.size(); ++I) {
    Result<std::string> Doc = loadFile(Paths[I]);
    if (!Doc.ok()) {
      std::fprintf(stderr, "error: %s\n", Doc.diag().render().c_str());
      return 1;
    }
    Result<Mfsa> Z = readAnml(*Doc);
    if (!Z.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", Paths[I].c_str(),
                   Z.diag().render().c_str());
      return 1;
    }
    Engines.emplace_back(*Z);
  }

  obs::MetricsRegistry Registry;
  if (Metrics)
    for (ImfantEngine &Engine : Engines)
      Engine.setMetrics(&Registry);

  std::vector<MatchRecorder> Recorders;
  Recorders.reserve(Engines.size());
  for (size_t I = 0; I < Engines.size(); ++I)
    Recorders.emplace_back(Verbose ? MatchRecorder::Mode::Collect
                                   : MatchRecorder::Mode::CountOnly);

  ParallelRunResult Result =
      runParallel(Engines, *Stream, Threads, &Recorders);
  for (unsigned Rep = 1; Rep < Reps; ++Rep) {
    ParallelRunResult Again = runParallel(Engines, *Stream, Threads);
    if (Again.WallSeconds < Result.WallSeconds)
      Result.WallSeconds = Again.WallSeconds;
  }

  std::printf("scanned %zu bytes with %zu automaton/automata on %u "
              "thread(s)\n",
              Stream->size(), Engines.size(), Threads);
  std::printf("matching time: %.6f s (%.2f MB/s aggregate)\n",
              Result.WallSeconds,
              static_cast<double>(Stream->size()) * Engines.size() /
                  (Result.WallSeconds * 1e6));
  std::printf("total matches: %lu\n",
              static_cast<unsigned long>(Result.TotalMatches));
  for (size_t I = 0; I < Recorders.size(); ++I) {
    std::printf("  %s: %lu matches\n", Paths[I + 1].c_str(),
                static_cast<unsigned long>(Recorders[I].total()));
    if (Verbose)
      for (const auto &[Rule, End] : Recorders[I].matches())
        std::printf("    rule %u @ %lu\n", Rule,
                    static_cast<unsigned long>(End));
  }
  if (Metrics)
    std::printf("%s", MetricsJson ? Registry.toJson().c_str()
                                  : Registry.toText().c_str());
  return 0;
}
