//===- genome_motifs.cpp - protein-motif scanning scenario --------------------===//
//
// Part of the mfsa project. MIT License.
//
// The paper's second motivating domain (§I): genome/proteome analysis.
// Protomata-style motifs — short patterns dominated by wide amino-acid
// character classes — are merged into a single MFSA and used to scan a
// synthetic protein database. Demonstrates character-class merging (§III-A
// set Y), the activation-pressure statistics of Table II, and per-motif
// match accounting.
//
//   $ ./genome_motifs [sequence-bytes]
//
//===----------------------------------------------------------------------===//

#include "compiler/Pipeline.h"
#include "engine/Imfant.h"
#include "workload/Datasets.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace mfsa;

int main(int argc, char **argv) {
  size_t SequenceBytes = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                  : (size_t(1) << 17);

  const DatasetSpec &Spec = *findDataset("PRO");
  std::vector<std::string> Motifs = generateRuleset(Spec);
  std::printf("motif set: %s (%zu motifs over the 20-letter amino-acid "
              "alphabet)\n",
              Spec.Name.c_str(), Motifs.size());
  std::printf("example motifs:\n");
  for (int I = 0; I < 3; ++I)
    std::printf("  %s\n", Motifs[I].c_str());

  CompileOptions Options;
  Options.MergingFactor = 0; // one MFSA for the whole motif set
  Options.EmitAnml = false;
  Result<CompileArtifacts> Artifacts = compileRuleset(Motifs, Options);
  if (!Artifacts.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 Artifacts.diag().render().c_str());
    return 1;
  }

  uint64_t SingleStates = 0;
  for (const Nfa &A : Artifacts->OptimizedFsas)
    SingleStates += A.numStates();
  const Mfsa &Z = Artifacts->Mfsas[0];
  std::printf("\nmerged automaton: %u states, %u transitions (%.1f%% state "
              "compression; wide classes merge only on exact equality)\n",
              Z.numStates(), Z.numTransitions(),
              compressionPercent(SingleStates, Z.numStates()));

  // Scan a synthetic proteome with planted motif instances.
  std::string Proteome = generateStream(Spec, Motifs, SequenceBytes);
  ImfantEngine Engine(Z);
  MatchRecorder Recorder;
  RunStats Stats;
  Engine.run(Proteome, Recorder, &Stats);

  std::printf("\nscanned %zu residues: %lu motif hits\n", Proteome.size(),
              static_cast<unsigned long>(Recorder.total()));
  std::printf("activation pressure (Table II metric): avg %.1f, peak %u "
              "simultaneously-active motifs\n",
              Stats.AvgActiveRules, Stats.MaxActiveRules);

  // Top motifs by hit count.
  std::vector<std::pair<uint64_t, uint32_t>> Ranked;
  for (uint32_t R = 0; R < Recorder.perRule().size(); ++R)
    if (Recorder.perRule()[R] > 0)
      Ranked.emplace_back(Recorder.perRule()[R], R);
  std::sort(Ranked.rbegin(), Ranked.rend());
  std::printf("\ntop motifs by hits:\n");
  for (size_t I = 0; I < std::min<size_t>(5, Ranked.size()); ++I)
    std::printf("  %6lu  %s\n",
                static_cast<unsigned long>(Ranked[I].first),
                Motifs[Ranked[I].second].c_str());
  return 0;
}
