//===- quickstart.cpp - minimal end-to-end walkthrough ------------------------===//
//
// Part of the mfsa project. MIT License.
//
// The five-minute tour of the public API: parse a tiny ruleset, compile it
// through the multi-level pipeline into one MFSA, inspect the compression,
// serialize to extended ANML, and scan an input with the iMFAnt engine.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "anml/Anml.h"
#include "compiler/Pipeline.h"
#include "engine/Imfant.h"

#include <cstdio>

using namespace mfsa;

int main() {
  // 1. A small ruleset with overlapping structure (shared "user=" prefix).
  std::vector<std::string> Rules = {
      "user=admin",
      "user=[a-z]+[0-9]{1,3}",
      "user=root",
      "passwd=[0-9a-f]{4,8}",
  };

  // 2. Compile: front-end -> FSAs -> optimization -> merging -> ANML.
  //    MergingFactor 0 merges the whole ruleset into a single MFSA.
  CompileOptions Options;
  Options.MergingFactor = 0;
  Result<CompileArtifacts> Artifacts = compileRuleset(Rules, Options);
  if (!Artifacts.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 Artifacts.diag().render().c_str());
    return 1;
  }

  // 3. Compression achieved by the merge (paper Fig. 7 metric).
  uint64_t SingleStates = 0;
  for (const Nfa &A : Artifacts->OptimizedFsas)
    SingleStates += A.numStates();
  const Mfsa &Z = Artifacts->Mfsas[0];
  std::printf("merged %zu rules: %lu FSA states -> %u MFSA states "
              "(%.1f%% compression)\n",
              Rules.size(), static_cast<unsigned long>(SingleStates),
              Z.numStates(),
              compressionPercent(SingleStates, Z.numStates()));

  // 4. The extended-ANML document is ready for storage or transfer.
  std::printf("ANML document: %zu bytes (see Anml.h for the dialect)\n",
              Artifacts->AnmlDocs[0].size());

  // 5. Scan an input stream; matches report (rule, end offset).
  ImfantEngine Engine(Z);
  std::string Input = "GET /?user=admin&user=bob42;passwd=deadbeef";
  MatchRecorder Recorder(MatchRecorder::Mode::Collect);
  Engine.run(Input, Recorder);

  std::printf("input: %s\n", Input.c_str());
  for (const auto &[Rule, End] : Recorder.matches())
    std::printf("  rule %u (%s) matches ending at offset %lu\n", Rule,
                Rules[Rule].c_str(), static_cast<unsigned long>(End));
  std::printf("total matches: %lu\n",
              static_cast<unsigned long>(Recorder.total()));
  return 0;
}
