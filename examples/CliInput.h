//===- CliInput.h - hardened input-file handling for the CLIs ---*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared input handling for the example drivers. Every tool distinguishes
/// its failure modes with documented exit codes so scripts and CI can react
/// without parsing stderr:
///
///   0  success
///   1  runtime error (bad rule, unwritable output, engine failure, ...)
///   2  usage error
///   3  input file missing, unreadable, or not a regular file
///   4  input file exists but is empty (or holds no usable records)
///   5  artifact rejected and no fallback ruleset available (imfant_run)
///
/// Diagnostics are one line on stderr, prefixed "error: ".
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_EXAMPLES_CLIINPUT_H
#define MFSA_EXAMPLES_CLIINPUT_H

#include "analysis/Planner.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <vector>

namespace mfsa::cli {

inline constexpr int kExitOk = 0;
inline constexpr int kExitRuntime = 1;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitMissingInput = 3;
inline constexpr int kExitEmptyInput = 4;
inline constexpr int kExitArtifactRejected = 5;

/// Reads \p Path into \p Out. \p What labels the file in diagnostics
/// ("rules file", "input stream"). Returns kExitOk, or prints one
/// "error: ..." line and returns kExitMissingInput / kExitEmptyInput.
inline int readInputFile(const std::string &Path, const char *What,
                         std::string &Out) {
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0) {
    std::fprintf(stderr, "error: cannot open %s %s: %s\n", What, Path.c_str(),
                 std::strerror(errno));
    return kExitMissingInput;
  }
  if (!S_ISREG(St.st_mode)) {
    std::fprintf(stderr, "error: %s %s is not a regular file\n", What,
                 Path.c_str());
    return kExitMissingInput;
  }
  if (St.st_size == 0) {
    std::fprintf(stderr, "error: %s %s is empty\n", What, Path.c_str());
    return kExitEmptyInput;
  }
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s %s: %s\n", What, Path.c_str(),
                 std::strerror(errno));
    return kExitMissingInput;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  if (!In.good() && !In.eof()) {
    std::fprintf(stderr, "error: cannot read %s %s\n", What, Path.c_str());
    return kExitMissingInput;
  }
  Out = Buf.str();
  return kExitOk;
}

/// readInputFile + line splitting with the rules-file conventions (blank
/// lines and #-comments skipped). Returns kExitOk with at least one rule in
/// \p Rules, or kExitMissingInput / kExitEmptyInput ("no rules" counts as
/// empty: the file cannot drive a compile).
inline int readRulesFile(const std::string &Path,
                         std::vector<std::string> &Rules) {
  std::string Text;
  if (int Rc = readInputFile(Path, "rules file", Text))
    return Rc;
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (Line.empty() || Line[0] == '#')
      continue;
    Rules.push_back(Line);
  }
  if (Rules.empty()) {
    std::fprintf(stderr, "error: no rules in %s\n", Path.c_str());
    return kExitEmptyInput;
  }
  return kExitOk;
}

/// Parses an `--engine <name>` value shared by imfant_run, mfsac, and the
/// benches. Returns kExitOk with \p Out set, or prints the one canonical
/// "error: ..." line and returns kExitUsage.
inline int parseEngineFlag(const char *Value, Engine &Out) {
  if (Value && engineFromName(Value, Out))
    return kExitOk;
  std::fprintf(stderr,
               "error: unknown engine '%s' (expected "
               "auto|dense|sparse|dfa|stride2|prefilter)\n",
               Value ? Value : "");
  return kExitUsage;
}

} // namespace mfsa::cli

#endif // MFSA_EXAMPLES_CLIINPUT_H
