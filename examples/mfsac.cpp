//===- mfsac.cpp - the MFSA compiler driver ------------------------------------===//
//
// Part of the mfsa project. MIT License.
//
// Command-line front door to the compilation framework (paper §IV), the
// analogue of the artifact's compiler + merging.py workflow:
//
//   $ ./mfsac -M 50 -o outdir rules.txt
//
// reads one POSIX ERE per line (blank lines and #-comments skipped),
// compiles with merging factor M (0 = all), writes one extended-ANML file
// per MFSA into outdir, and prints the stage-time and compression summary.
// `--cluster` groups rules by INDEL similarity instead of file order
// (§VIII future work); `-i` folds case rule-wide.
//
//===----------------------------------------------------------------------===//

#include "anml/Anml.h"
#include "artifact/Writer.h"
#include "compiler/Pipeline.h"
#include "obs/Metrics.h"
#include "workload/Clustering.h"

#include "CliInput.h"

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

using namespace mfsa;

static void usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [-M factor] [-o outdir] [--no-anml] [--cluster] "
               "[-i] rules.txt\n"
               "  -M factor   merging factor (default 0 = merge all)\n"
               "  -o outdir   directory for the .anml outputs (default .)\n"
               "  --emit-artifact path  also write the compiled MFSAs as one\n"
               "              mmap-able binary artifact (crash-safe atomic "
               "replace;\n"
               "              docs/artifact-format.md)\n"
               "  --no-anml   skip ANML emission (compression study only)\n"
               "  --cluster   group rules by similarity, not file order\n"
               "  -i          case-insensitive matching\n"
               "  --dot       also write Graphviz .dot files per MFSA\n"
               "  --isolate   quarantine broken/over-budget rules and keep "
               "going\n"
               "  --verify-each  run the IR verifier after every pipeline "
               "stage\n"
               "  --validate-passes  prove L(after) == L(before) for every "
               "optimization pass\n"
               "              and every rule's MFSA belonging-set projection "
               "(Eq. 10)\n"
               "  --no-validate  force translation validation off (overrides "
               "MFSA_VALIDATE\n"
               "              and the Debug-build default)\n"
               "  --plan      run the static cost planner over the compiled\n"
               "              ruleset (trial merges at K=1, 50, all) and "
               "print\n"
               "              the chosen engine/merging factor\n"
               "  --explain-plan  like --plan, plus the full JSON decision "
               "trace\n"
               "  --engine e  pin the planned engine: auto|dense|sparse|dfa|\n"
               "              stride2|prefilter (default auto = let the\n"
               "              planner choose)\n"
               "  --metrics   dump per-stage compile telemetry (text; "
               "--metrics=json for JSON)\n"
               "exit codes: 0 ok, 1 error, 2 usage, 3 missing/unreadable "
               "input, 4 empty input\n",
               Prog);
}

int main(int argc, char **argv) {
  uint32_t MergingFactor = 0;
  std::string OutDir = ".";
  std::string ArtifactPath;
  std::string RulesPath;
  bool EmitAnml = true;
  bool Cluster = false;
  bool CaseInsensitive = false;
  bool EmitDot = false;
  bool Isolate = false;
  bool VerifyEach = false;
  bool ValidatePasses = false;
  bool NoValidate = false;
  bool Metrics = false;
  bool MetricsJson = false;
  bool Plan = false;
  bool ExplainPlan = false;
  Engine EngineChoice = Engine::Auto;

  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "-M") && I + 1 < argc)
      MergingFactor = static_cast<uint32_t>(std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "-o") && I + 1 < argc)
      OutDir = argv[++I];
    else if (!std::strcmp(argv[I], "--emit-artifact") && I + 1 < argc)
      ArtifactPath = argv[++I];
    else if (!std::strcmp(argv[I], "--no-anml"))
      EmitAnml = false;
    else if (!std::strcmp(argv[I], "--cluster"))
      Cluster = true;
    else if (!std::strcmp(argv[I], "-i"))
      CaseInsensitive = true;
    else if (!std::strcmp(argv[I], "--dot"))
      EmitDot = true;
    else if (!std::strcmp(argv[I], "--isolate"))
      Isolate = true;
    else if (!std::strcmp(argv[I], "--verify-each"))
      VerifyEach = true;
    else if (!std::strcmp(argv[I], "--validate-passes"))
      ValidatePasses = true;
    else if (!std::strcmp(argv[I], "--no-validate"))
      NoValidate = true;
    else if (!std::strcmp(argv[I], "--metrics"))
      Metrics = true;
    else if (!std::strcmp(argv[I], "--metrics=json"))
      Metrics = MetricsJson = true;
    else if (!std::strcmp(argv[I], "--plan"))
      Plan = true;
    else if (!std::strcmp(argv[I], "--explain-plan"))
      Plan = ExplainPlan = true;
    else if (!std::strcmp(argv[I], "--engine") && I + 1 < argc) {
      if (int Rc = cli::parseEngineFlag(argv[++I], EngineChoice))
        return Rc;
    } else if (argv[I][0] == '-') {
      usage(argv[0]);
      return 2;
    } else
      RulesPath = argv[I];
  }
  if (RulesPath.empty()) {
    usage(argv[0]);
    return cli::kExitUsage;
  }

  std::vector<std::string> Rules;
  if (int Rc = cli::readRulesFile(RulesPath, Rules))
    return Rc;

  if (Isolate && Cluster) {
    // Clustering regroups by position in the original rule list; mixing it
    // with quarantine holes is a recipe for mislabeled rules.
    std::fprintf(stderr, "error: --isolate and --cluster are exclusive\n");
    return 2;
  }

  CompileOptions Options;
  Options.MergingFactor = MergingFactor;
  Options.EmitAnml = EmitAnml && !Cluster;
  Options.Parse.CaseInsensitive = CaseInsensitive;
  if (Isolate)
    Options.Policy = FailurePolicy::Isolate;
  if (VerifyEach)
    Options.VerifyEach = true;
  if (ValidatePasses && NoValidate) {
    std::fprintf(stderr,
                 "error: --validate-passes and --no-validate are exclusive\n");
    return 2;
  }
  if (ValidatePasses)
    Options.Validate = ValidateMode::On;
  else if (NoValidate)
    Options.Validate = ValidateMode::Off;
  Result<CompileArtifacts> Artifacts = compileRuleset(Rules, Options);
  if (!Artifacts.ok()) {
    std::fprintf(stderr, "error: %s\n", Artifacts.diag().render().c_str());
    return 1;
  }
  for (const QuarantinedRule &Q : Artifacts->Quarantined)
    std::fprintf(stderr, "warning: rule %u quarantined at %s: %s\n",
                 Q.RuleIndex, stageName(Q.Stage), Q.Reason.Message.c_str());
  if (Artifacts->CompiledRuleIds.empty()) {
    std::fprintf(stderr, "error: every rule was quarantined\n");
    return 1;
  }

  if (Cluster) {
    // Regroup by similarity and redo the merge + ANML from the optimized
    // FSAs the pipeline already produced.
    auto Groups = clusterBySimilarity(Rules, MergingFactor);
    Artifacts->Mfsas =
        mergeWithGrouping(Artifacts->OptimizedFsas, Groups, Options.Merge);
    Artifacts->AnmlDocs.clear();
    if (EmitAnml)
      for (size_t I = 0; I < Artifacts->Mfsas.size(); ++I)
        Artifacts->AnmlDocs.push_back(
            writeAnml(Artifacts->Mfsas[I], "mfsa-" + std::to_string(I)));
  }

  uint64_t SingleStates = 0, SingleTrans = 0;
  for (const Nfa &A : Artifacts->OptimizedFsas) {
    SingleStates += A.numStates();
    SingleTrans += A.numTransitions();
  }
  MfsaSetStats Merged = computeSetStats(Artifacts->Mfsas);

  std::printf("compiled %zu/%zu rules -> %zu MFSA(s) at M=%s\n",
              Artifacts->CompiledRuleIds.size(), Rules.size(),
              Artifacts->Mfsas.size(),
              MergingFactor == 0 ? "all" : std::to_string(MergingFactor).c_str());
  std::printf("states: %lu -> %lu (%.2f%%)  transitions: %lu -> %lu "
              "(%.2f%%)\n",
              static_cast<unsigned long>(SingleStates),
              static_cast<unsigned long>(Merged.TotalStates),
              compressionPercent(SingleStates, Merged.TotalStates),
              static_cast<unsigned long>(SingleTrans),
              static_cast<unsigned long>(Merged.TotalTransitions),
              compressionPercent(SingleTrans, Merged.TotalTransitions));
  std::printf("stages [ms]: FE %.2f | AST-to-FSA %.2f | ME-single %.2f | "
              "ME-merging %.2f | BE %.2f\n",
              Artifacts->Times.FrontEndMs, Artifacts->Times.AstToFsaMs,
              Artifacts->Times.SingleOptMs, Artifacts->Times.MergingMs,
              Artifacts->Times.BackEndMs);

  if (ValidatePasses) {
    const ValidateStats &V = Artifacts->Telemetry.Validation;
    std::printf("validation: %lu pass/merge proofs, %lu failed, "
                "%lu inconclusive, %lu skipped (%.2f ms)\n",
                static_cast<unsigned long>(V.Proofs),
                static_cast<unsigned long>(V.Failures),
                static_cast<unsigned long>(V.Inconclusive),
                static_cast<unsigned long>(V.Skipped), V.WallMs);
  }

  // Static cost planning (analysis/Planner.h): trial-merge the optimized
  // FSAs at each candidate factor and pick (engine, K, stride). Runs over
  // the pipeline's stage-3 outputs so quarantined rules are already gone.
  std::optional<EnginePlan> RulesetPlan;
  if (Plan) {
    PlannerOptions PO;
    PO.Force = EngineChoice;
    PO.Merge = Options.Merge;
    RulesetPlan = planRuleset(Artifacts->OptimizedFsas,
                              Artifacts->CompiledRuleIds, Rules, PO);
    const CandidatePlan *Chosen = RulesetPlan->chosen();
    std::printf("plan: engine %s at M=%s (stride %u, est %.2f ns/byte, "
                "planned in %.2f ms)\n",
                engineName(RulesetPlan->Choice),
                RulesetPlan->MergingFactor == 0
                    ? "all"
                    : std::to_string(RulesetPlan->MergingFactor).c_str(),
                RulesetPlan->Stride, Chosen ? Chosen->BestNsPerByte : 0.0,
                RulesetPlan->PlanWallMs);
    if (ExplainPlan)
      std::printf("%s\n", RulesetPlan->explainJson().c_str());
  }

  if (Metrics) {
    obs::MetricsRegistry Registry;
    Artifacts->Telemetry.recordTo(Registry);
    if (RulesetPlan)
      RulesetPlan->recordTo(Registry);
    std::printf("%s", MetricsJson ? Registry.toJson().c_str()
                                  : Registry.toText().c_str());
  }

  if (EmitAnml) {
    for (size_t I = 0; I < Artifacts->AnmlDocs.size(); ++I) {
      std::string Path = OutDir + "/mfsa_" + std::to_string(I) + ".anml";
      if (!saveFile(Path, Artifacts->AnmlDocs[I])) {
        std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
        return 1;
      }
    }
    std::printf("wrote %zu ANML file(s) to %s\n",
                Artifacts->AnmlDocs.size(), OutDir.c_str());
  }
  if (EmitDot) {
    for (size_t I = 0; I < Artifacts->Mfsas.size(); ++I) {
      std::string Path = OutDir + "/mfsa_" + std::to_string(I) + ".dot";
      if (!saveFile(Path,
                    Artifacts->Mfsas[I].writeDot("mfsa_" + std::to_string(I)))) {
        std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
        return 1;
      }
    }
    std::printf("wrote %zu DOT file(s) to %s\n", Artifacts->Mfsas.size(),
                OutDir.c_str());
  }
  if (!ArtifactPath.empty()) {
    artifact::ArtifactWriteOptions WriteOptions;
    WriteOptions.CaseInsensitive = CaseInsensitive;
    WriteOptions.SplitCcByAtoms = Options.SplitCcByAtoms;
    WriteOptions.MergingFactor = MergingFactor;
    // Rules (the full original list) is what GlobalIds index, also under
    // --isolate where some rules were quarantined out of the MFSAs.
    Result<uint64_t> Written = artifact::writeArtifactFile(
        ArtifactPath, Artifacts->Mfsas, Rules, WriteOptions);
    if (!Written.ok()) {
      std::fprintf(stderr, "error: cannot write artifact %s: %s\n",
                   ArtifactPath.c_str(), Written.diag().render().c_str());
      return cli::kExitRuntime;
    }
    std::printf("wrote artifact %s (%lu bytes, %zu MFSA(s))\n",
                ArtifactPath.c_str(), static_cast<unsigned long>(*Written),
                Artifacts->Mfsas.size());
  }
  return 0;
}
