//===- mfsalint.cpp - the ruleset analyzer driver ------------------------------===//
//
// Part of the mfsa project. MIT License.
//
// Static-analysis front door (docs/static-analysis.md):
//
//   $ ./mfsalint rules.txt
//   $ ./mfsalint --format=json rules.txt
//
// reads one POSIX ERE per line (same file format as mfsac), lints every
// rule for ReDoS-prone ambiguity, expansion blowups, empty/universal
// languages and duplicate/subsumed rules, then — unless --no-merge —
// compiles the ruleset (quarantining broken rules) with the stage-by-stage
// IR verifier enabled and runs the post-merge belonging-set analysis over
// every resulting MFSA.
//
// Exit codes: 0 = clean, 1 = findings (any severity), 2 = usage/IO error.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "compiler/Pipeline.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace mfsa;

static void usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [options] rules.txt\n"
               "  --format=text|json  report format (default text)\n"
               "  --no-merge          lint rules only; skip compiling and the\n"
               "                      post-merge belonging-set analysis\n"
               "  --no-pairwise       skip duplicate/subsumption checks\n"
               "  --exact-states N    decide duplicate/subsumption pairs with\n"
               "                      the antichain inclusion prover when both\n"
               "                      automata have <= N states (default 512;\n"
               "                      0 = heuristic oracle only)\n"
               "  -M factor           merging factor for the post-merge pass\n"
               "                      (default 0 = merge all)\n"
               "  --cost              also run the cost-model passes over each\n"
               "                      merged MFSA (lint.cost.*: activation-\n"
               "                      width hotspots, DFA blowup, prefilter-\n"
               "                      defeating rules); implies merging\n"
               "  --cost-width-rules N  width-hotspot warning threshold in\n"
               "                      simultaneously-active rules (default "
               "32)\n"
               "  -i                  case-insensitive matching\n",
               Prog);
}

int main(int argc, char **argv) {
  std::string RulesPath;
  bool Json = false;
  bool Merge = true;
  bool Cost = false;
  uint32_t MergingFactor = 0;
  LintOptions Options;

  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--format=json"))
      Json = true;
    else if (!std::strcmp(argv[I], "--format=text"))
      Json = false;
    else if (!std::strcmp(argv[I], "--no-merge"))
      Merge = false;
    else if (!std::strcmp(argv[I], "--no-pairwise"))
      Options.CheckDuplicates = Options.CheckSubsumption = false;
    else if (!std::strcmp(argv[I], "--exact-states") && I + 1 < argc)
      Options.ExactCheckMaxStates = static_cast<uint32_t>(std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "-M") && I + 1 < argc)
      MergingFactor = static_cast<uint32_t>(std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--cost"))
      Cost = Merge = true;
    else if (!std::strcmp(argv[I], "--cost-width-rules") && I + 1 < argc)
      Options.CostWidthWarnRules = static_cast<uint32_t>(std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "-i"))
      Options.Parse.CaseInsensitive = true;
    else if (argv[I][0] == '-') {
      usage(argv[0]);
      return 2;
    } else
      RulesPath = argv[I];
  }
  if (RulesPath.empty()) {
    usage(argv[0]);
    return 2;
  }

  std::ifstream RulesFile(RulesPath);
  if (!RulesFile) {
    std::fprintf(stderr, "error: cannot open %s\n", RulesPath.c_str());
    return 2;
  }
  std::vector<std::string> Rules;
  std::string Line;
  while (std::getline(RulesFile, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    Rules.push_back(Line);
  }
  if (Rules.empty()) {
    std::fprintf(stderr, "error: no rules in %s\n", RulesPath.c_str());
    return 2;
  }

  DiagnosticEngine Diags;
  LintSummary Summary = lintRuleset(Rules, Options, Diags);

  if (Merge) {
    // Compile under quarantine so the rules lintRuleset just flagged as
    // broken don't block the belonging-set analysis of the healthy rest,
    // and with the stage-by-stage verifier on: a compiler invariant break
    // surfaces here as a finding, not a crash downstream.
    CompileOptions Compile;
    Compile.MergingFactor = MergingFactor;
    Compile.EmitAnml = false;
    Compile.Parse = Options.Parse;
    Compile.Policy = FailurePolicy::Isolate;
    Compile.VerifyEach = true;
    Result<CompileArtifacts> Artifacts = compileRuleset(Rules, Compile);
    if (!Artifacts.ok())
      Diags.report(Severity::Error, "lint.merge.compile-failed",
                   "ruleset compilation failed: " +
                       Artifacts.diag().render());
    else
      for (const Mfsa &Z : Artifacts->Mfsas) {
        lintMfsa(Z, Options, Diags);
        if (Cost)
          lintCost(Z, Rules, Options, Diags);
      }
  }

  if (Json) {
    std::fputs(Diags.renderJson().c_str(), stdout);
    std::fputc('\n', stdout);
  } else {
    std::fputs(Diags.renderText().c_str(), stdout);
    std::printf("%zu finding(s) (%zu error(s), %zu warning(s)) in %u/%zu "
                "rule(s)\n",
                Diags.findings().size(), Diags.numErrors(),
                Diags.numWarnings(), Summary.RulesAnalyzed, Rules.size());
  }
  return Diags.empty() ? 0 : 1;
}
