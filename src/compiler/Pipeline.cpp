//===- Pipeline.cpp - multi-level compilation framework ----------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "compiler/Pipeline.h"

#include "anml/Anml.h"
#include "fsa/AlphabetPartition.h"
#include "fsa/Passes.h"

using namespace mfsa;

Result<CompileArtifacts>
mfsa::compileRuleset(const std::vector<std::string> &Patterns,
                     const CompileOptions &Options) {
  CompileArtifacts Artifacts;
  Timer Stage;

  // Stage 1 — Front-End: lexical and syntactic analyses (§IV-A).
  Stage.reset();
  Artifacts.Asts.reserve(Patterns.size());
  for (size_t I = 0; I < Patterns.size(); ++I) {
    Result<Regex> Re = parseRegex(Patterns[I], Options.Parse);
    if (!Re)
      return Diag("rule " + std::to_string(I) + ": " + Re.diag().Message,
                  Re.diag().Offset);
    Artifacts.Asts.push_back(Re.take());
  }
  Artifacts.Times.FrontEndMs = Stage.elapsedMs();

  // Stage 2 — AST to FSA: Thompson-like construction (§IV-B), bounded loops
  // expanded per §IV-C (2).
  Stage.reset();
  Artifacts.RawFsas.reserve(Patterns.size());
  for (size_t I = 0; I < Artifacts.Asts.size(); ++I) {
    Result<Nfa> A = buildNfa(Artifacts.Asts[I], Options.Build);
    if (!A)
      return Diag("rule " + std::to_string(I) + ": " + A.diag().Message,
                  A.diag().Offset);
    Artifacts.RawFsas.push_back(A.take());
  }
  Artifacts.Times.AstToFsaMs = Stage.elapsedMs();

  // Stage 3 — single-FSA optimization: ε-removal, multiplicity folding,
  // compaction (§IV-C (1) and (3)).
  Stage.reset();
  Artifacts.OptimizedFsas.reserve(Artifacts.RawFsas.size());
  for (const Nfa &Raw : Artifacts.RawFsas)
    Artifacts.OptimizedFsas.push_back(optimizeForMerging(Raw));
  if (Options.SplitCcByAtoms)
    Artifacts.OptimizedFsas = splitAllByAtoms(Artifacts.OptimizedFsas);
  Artifacts.Times.SingleOptMs = Stage.elapsedMs();

  // Stage 4 — merging into ⌈N/M⌉ MFSAs (§III, Algorithm 1).
  Stage.reset();
  Artifacts.Mfsas = mergeInGroups(Artifacts.OptimizedFsas,
                                  Options.MergingFactor, Options.Merge,
                                  &Artifacts.Merging);
  Artifacts.Times.MergingMs = Stage.elapsedMs();

  // Stage 5 — Back-End: extended-ANML generation (§IV-E).
  if (Options.EmitAnml) {
    Stage.reset();
    Artifacts.AnmlDocs.reserve(Artifacts.Mfsas.size());
    for (size_t I = 0; I < Artifacts.Mfsas.size(); ++I)
      Artifacts.AnmlDocs.push_back(
          writeAnml(Artifacts.Mfsas[I], "mfsa-" + std::to_string(I)));
    Artifacts.Times.BackEndMs = Stage.elapsedMs();
  }

  return Artifacts;
}
