//===- Pipeline.cpp - multi-level compilation framework ----------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Fault-isolation notes.
//
// Under FailurePolicy::Isolate every per-rule stage filters its input: a
// rule that fails (malformed, over budget, past the stage deadline, or hit
// by the fault-injection hook) is appended to Artifacts.Quarantined and the
// stage vectors are compacted so Asts/RawFsas/OptimizedFsas stay parallel to
// the surviving-rule list. The logical→original remap (CompiledRuleIds) is
// what the merger receives as GlobalIds, so `bel` reports and engine matches
// always carry original input indices no matter how many rules fell out.
//
// Deadlines guarantee progress: they are checked only after at least one
// rule of the stage (or one automaton of a merge) has been processed, so a
// too-tight deadline degrades the batch to a smaller one instead of
// livelocking or emptying it.
//
//===----------------------------------------------------------------------===//

#include "compiler/Pipeline.h"

#include "analysis/Verifier.h"
#include "anml/Anml.h"
#include "fsa/AlphabetPartition.h"
#include "fsa/Passes.h"
#include "obs/Metrics.h"
#include "support/FaultInject.h"

#include <algorithm>
#include <cstdlib>
#include <optional>

using namespace mfsa;

const char *mfsa::stageName(CompileStage Stage) {
  switch (Stage) {
  case CompileStage::FrontEnd:
    return "front-end";
  case CompileStage::AstToFsa:
    return "ast-to-fsa";
  case CompileStage::SingleOpt:
    return "single-fsa-opt";
  case CompileStage::Merging:
    return "merging";
  case CompileStage::BackEnd:
    return "back-end";
  }
  return "unknown";
}

namespace {

/// Maps a pipeline stage to its MFSA_FAULT_STAGE injection point (stage 5
/// has no injection point; the hook predates it and nothing needs one).
FaultPoint toFaultPoint(CompileStage Stage) {
  switch (Stage) {
  case CompileStage::FrontEnd:
    return FaultPoint::Parse;
  case CompileStage::AstToFsa:
    return FaultPoint::Build;
  case CompileStage::SingleOpt:
    return FaultPoint::Opt;
  case CompileStage::Merging:
  case CompileStage::BackEnd:
    return FaultPoint::Merge;
  }
  return FaultPoint::Parse;
}

/// MFSA_VALIDATE environment override: 1 = force on, 0 = force off,
/// unset/unrecognized = no override.
enum class ValidateEnv : uint8_t { Unset, ForceOn, ForceOff };

ValidateEnv readValidateEnv() {
  const char *Env = std::getenv("MFSA_VALIDATE");
  if (!Env || !*Env)
    return ValidateEnv::Unset;
  const std::string Text(Env);
  if (Text == "1" || Text == "on" || Text == "true")
    return ValidateEnv::ForceOn;
  if (Text == "0" || Text == "off" || Text == "false")
    return ValidateEnv::ForceOff;
  return ValidateEnv::Unset;
}

/// Combines the user's per-rule cap with the budget's absolute and
/// pattern-relative caps (0 = unlimited throughout).
uint32_t effectiveFsaStateCap(uint32_t UserCap, const CompileBudget &Budget,
                              size_t PatternBytes) {
  uint64_t Cap = UserCap;
  auto Tighten = [&](uint64_t Other) {
    if (Other != 0)
      Cap = Cap == 0 ? Other : std::min(Cap, Other);
  };
  Tighten(Budget.MaxFsaStates);
  if (Budget.MaxLoopExpansionFactor != 0)
    Tighten(static_cast<uint64_t>(Budget.MaxLoopExpansionFactor) *
            std::max<size_t>(PatternBytes, 1));
  return static_cast<uint32_t>(std::min<uint64_t>(Cap, UINT32_MAX));
}

} // namespace

bool mfsa::validatePassesEnabled(ValidateMode Mode, size_t NumRules,
                                 uint32_t AutoMaxRules) {
  if (Mode == ValidateMode::On)
    return true;
  if (Mode == ValidateMode::Off)
    return false;
  switch (readValidateEnv()) {
  case ValidateEnv::ForceOn:
    return true;
  case ValidateEnv::ForceOff:
    return false;
  case ValidateEnv::Unset:
    break;
  }
  return kValidatePassesDefault && NumRules <= AutoMaxRules;
}

void CompileTelemetry::recordTo(obs::MetricsRegistry &Registry) const {
  static const char *const Names[5] = {"front_end", "ast_to_fsa",
                                       "single_opt", "merging", "back_end"};
  for (size_t I = 0; I < 5; ++I) {
    const std::string Prefix = std::string("compile.") + Names[I] + ".";
    const StageTelemetry &S = Stages[I];
    Registry.counter(Prefix + "rules_in").add(S.RulesIn);
    Registry.counter(Prefix + "rules_out").add(S.RulesOut);
    Registry.counter(Prefix + "states_out").add(S.StatesOut);
    Registry.counter(Prefix + "transitions_out").add(S.TransitionsOut);
    // Timing is nondeterministic, so it lives under the `_ns` suffix the
    // golden tests mask; nanoseconds keep integral gauges precise for
    // sub-millisecond stages.
    Registry.gauge(Prefix + "wall_ns")
        .set(static_cast<int64_t>(S.WallMs * 1e6));
  }
  Registry.counter("compile.quarantined_rules").add(QuarantinedRules);
  Registry.gauge("compile.peak.rule_states")
      .set(static_cast<int64_t>(PeakRuleStates));
  Registry.gauge("compile.peak.rule_transitions")
      .set(static_cast<int64_t>(PeakRuleTransitions));
  Registry.gauge("compile.peak.merged_states")
      .set(static_cast<int64_t>(PeakMergedStates));
  Registry.gauge("compile.peak.merged_transitions")
      .set(static_cast<int64_t>(PeakMergedTransitions));
  Registry.gauge("compile.budget.max_fsa_states")
      .set(static_cast<int64_t>(BudgetMaxFsaStates));
  Registry.gauge("compile.budget.max_fsa_transitions")
      .set(static_cast<int64_t>(BudgetMaxFsaTransitions));
  Registry.gauge("compile.budget.max_merged_states")
      .set(static_cast<int64_t>(BudgetMaxMergedStates));
  Registry.gauge("compile.budget.max_merged_transitions")
      .set(static_cast<int64_t>(BudgetMaxMergedTransitions));
  // Translation-validation proof cost (ValidateMode; zeros when off). Wall
  // time is a `_ns` gauge like the stage timings so goldens mask it.
  Registry.counter("analysis.inclusion.proofs").add(Validation.Proofs);
  Registry.counter("analysis.inclusion.failures").add(Validation.Failures);
  Registry.counter("analysis.inclusion.inconclusive")
      .add(Validation.Inconclusive);
  Registry.counter("analysis.inclusion.skipped").add(Validation.Skipped);
  Registry.counter("analysis.inclusion.macrostates")
      .add(Validation.MacrostatesExplored);
  Registry.gauge("analysis.inclusion.antichain_peak")
      .set(static_cast<int64_t>(Validation.AntichainPeak));
  Registry.gauge("analysis.inclusion.wall_ns")
      .set(static_cast<int64_t>(Validation.WallMs * 1e6));
}

Result<CompileArtifacts>
mfsa::compileRuleset(const std::vector<std::string> &Patterns,
                     const CompileOptions &Options) {
  CompileArtifacts Artifacts;
  Timer Stage;
  const CompileBudget &Budget = Options.Budget;
  const bool Isolate = Options.Policy == FailurePolicy::Isolate;
  const FaultSpec Fault = readFaultSpec();
  const bool Validate = validatePassesEnabled(
      Options.Validate, Patterns.size(), Options.ValidateAutoMaxRules);

  auto Injected = [&](CompileStage S, uint32_t OriginalId) {
    return Fault.at(toFaultPoint(S), OriginalId);
  };

  // Quarantines under Isolate; under Strict stores the batch-failing
  // diagnostic ("rule N: ..." like the fail-fast pipeline always reported)
  // and returns true so stage loops can abort.
  std::optional<Diag> Failure;
  auto Fail = [&](uint32_t OriginalId, CompileStage At, Diag Reason) {
    if (Isolate) {
      Artifacts.Quarantined.push_back(
          QuarantinedRule{OriginalId, At, std::move(Reason)});
      return false;
    }
    Failure = Result<CompileArtifacts>(std::move(Reason))
                  .withContext("rule " + std::to_string(OriginalId))
                  .takeDiag();
    return true;
  };

  auto StageExpired = [&] {
    return Budget.StageDeadlineMs > 0 &&
           Stage.elapsedMs() > Budget.StageDeadlineMs;
  };
  auto DeadlineDiag = [&](CompileStage At) {
    return Diag(std::string("stage deadline exceeded (") + stageName(At) +
                    ", budget " + std::to_string(Budget.StageDeadlineMs) +
                    " ms)",
                static_cast<size_t>(-1));
  };

  // Logical index -> original index in Patterns, parallel to the per-rule
  // artifact vectors; compacted after every stage that drops rules.
  std::vector<uint32_t> Alive;

  // Telemetry aggregation (always on; a handful of adds per stage).
  CompileTelemetry &Tel = Artifacts.Telemetry;
  Tel.BudgetMaxFsaStates = Budget.MaxFsaStates;
  Tel.BudgetMaxFsaTransitions = Budget.MaxFsaTransitions;
  Tel.BudgetMaxMergedStates = Budget.MaxMergedStates;
  Tel.BudgetMaxMergedTransitions = Budget.MaxMergedTransitions;
  auto StageTel = [&](CompileStage S) -> StageTelemetry & {
    return Tel.Stages[static_cast<size_t>(S)];
  };
  auto SumNfas = [](const std::vector<Nfa> &Fsas, uint64_t &States,
                    uint64_t &Transitions, uint64_t &PeakStates,
                    uint64_t &PeakTransitions) {
    for (const Nfa &A : Fsas) {
      States += A.numStates();
      Transitions += A.numTransitions();
      PeakStates = std::max<uint64_t>(PeakStates, A.numStates());
      PeakTransitions = std::max<uint64_t>(PeakTransitions,
                                           A.numTransitions());
    }
  };

  // Stage 1 — Front-End: lexical and syntactic analyses (§IV-A).
  Stage.reset();
  Artifacts.Asts.reserve(Patterns.size());
  for (uint32_t I = 0; I < Patterns.size(); ++I) {
    if (I > 0 && StageExpired()) {
      if (Fail(I, CompileStage::FrontEnd, DeadlineDiag(CompileStage::FrontEnd)))
        return std::move(*Failure);
      continue;
    }
    Result<Regex> Re = Injected(CompileStage::FrontEnd, I)
                           ? Result<Regex>(injectedFault())
                           : parseRegex(Patterns[I], Options.Parse);
    if (!Re.ok()) {
      if (Fail(I, CompileStage::FrontEnd, Re.takeDiag()))
        return std::move(*Failure);
      continue;
    }
    Artifacts.Asts.push_back(Re.take());
    Alive.push_back(I);
  }
  Artifacts.Times.FrontEndMs = Stage.elapsedMs();
  {
    StageTelemetry &S = StageTel(CompileStage::FrontEnd);
    S.WallMs = Artifacts.Times.FrontEndMs;
    S.RulesIn = Patterns.size();
    S.RulesOut = Artifacts.Asts.size();
  }

  // Stage 2 — AST to FSA: Thompson-like construction (§IV-B), bounded loops
  // expanded per §IV-C (2) under the per-rule state budget.
  Stage.reset();
  {
    std::vector<Regex> KeptAsts;
    std::vector<uint32_t> NextAlive;
    Artifacts.RawFsas.reserve(Alive.size());
    for (size_t L = 0; L < Alive.size(); ++L) {
      const uint32_t Id = Alive[L];
      if (L > 0 && StageExpired()) {
        if (Fail(Id, CompileStage::AstToFsa,
                 DeadlineDiag(CompileStage::AstToFsa)))
          return std::move(*Failure);
        continue;
      }
      BuildOptions Build = Options.Build;
      Build.MaxStates =
          effectiveFsaStateCap(Build.MaxStates, Budget, Patterns[Id].size());
      Result<Nfa> A = Injected(CompileStage::AstToFsa, Id)
                          ? Result<Nfa>(injectedFault())
                          : buildNfa(Artifacts.Asts[L], Build);
      if (!A.ok()) {
        if (Fail(Id, CompileStage::AstToFsa, A.takeDiag()))
          return std::move(*Failure);
        continue;
      }
      if (Options.VerifyEach) {
        std::string Violation = verifyNfaError(*A, IrLevel::RawNfa);
        if (!Violation.empty()) {
          if (Fail(Id, CompileStage::AstToFsa,
                   Diag("stage-2 verifier: " + Violation,
                        static_cast<size_t>(-1))))
            return std::move(*Failure);
          continue;
        }
      }
      Artifacts.RawFsas.push_back(A.take());
      KeptAsts.push_back(std::move(Artifacts.Asts[L]));
      NextAlive.push_back(Id);
    }
    Artifacts.Asts = std::move(KeptAsts);
    Alive = std::move(NextAlive);
  }
  Artifacts.Times.AstToFsaMs = Stage.elapsedMs();
  {
    StageTelemetry &S = StageTel(CompileStage::AstToFsa);
    S.WallMs = Artifacts.Times.AstToFsaMs;
    S.RulesIn = StageTel(CompileStage::FrontEnd).RulesOut;
    S.RulesOut = Artifacts.RawFsas.size();
    SumNfas(Artifacts.RawFsas, S.StatesOut, S.TransitionsOut,
            Tel.PeakRuleStates, Tel.PeakRuleTransitions);
  }

  // Stage 3 — single-FSA optimization: ε-removal, multiplicity folding,
  // compaction (§IV-C (1) and (3)), budgeted because ε-removal may grow the
  // transition set quadratically.
  Stage.reset();
  {
    std::vector<Regex> KeptAsts;
    std::vector<Nfa> KeptRaw;
    std::vector<uint32_t> NextAlive;
    Artifacts.OptimizedFsas.reserve(Alive.size());
    for (size_t L = 0; L < Alive.size(); ++L) {
      const uint32_t Id = Alive[L];
      if (L > 0 && StageExpired()) {
        if (Fail(Id, CompileStage::SingleOpt,
                 DeadlineDiag(CompileStage::SingleOpt)))
          return std::move(*Failure);
        continue;
      }
      // Translation validation binds the per-pass hook: each individual
      // pass application must prove L(after) == L(before) or the rule
      // fails this stage with the counterexample in its diagnostic.
      PassValidator PassCheck;
      if (Validate)
        PassCheck = [&](const char *PassName, const Nfa &Before,
                        const Nfa &After) {
          return validatePassEquivalenceError(Before, After, PassName,
                                              Options.Validation,
                                              &Tel.Validation);
        };
      Result<Nfa> Optimized =
          Injected(CompileStage::SingleOpt, Id)
              ? Result<Nfa>(injectedFault())
              : optimizeForMergingBudgeted(Artifacts.RawFsas[L],
                                           Budget.MaxFsaStates,
                                           Budget.MaxFsaTransitions,
                                           PassCheck);
      if (!Optimized.ok()) {
        if (Fail(Id, CompileStage::SingleOpt, Optimized.takeDiag()))
          return std::move(*Failure);
        continue;
      }
      if (Options.VerifyEach) {
        std::string Violation =
            verifyNfaError(*Optimized, IrLevel::OptimizedFsa);
        if (!Violation.empty()) {
          if (Fail(Id, CompileStage::SingleOpt,
                   Diag("stage-3 verifier: " + Violation,
                        static_cast<size_t>(-1))))
            return std::move(*Failure);
          continue;
        }
      }
      Artifacts.OptimizedFsas.push_back(Optimized.take());
      KeptAsts.push_back(std::move(Artifacts.Asts[L]));
      KeptRaw.push_back(std::move(Artifacts.RawFsas[L]));
      NextAlive.push_back(Id);
    }
    Artifacts.Asts = std::move(KeptAsts);
    Artifacts.RawFsas = std::move(KeptRaw);
    Alive = std::move(NextAlive);
  }
  if (Options.SplitCcByAtoms) {
    std::vector<Nfa> PreSplit;
    if (Validate)
      PreSplit = Artifacts.OptimizedFsas;
    Artifacts.OptimizedFsas = splitAllByAtoms(Artifacts.OptimizedFsas);
    // Re-verify after the whole-ruleset label refinement: a violation here
    // is a splitter bug, so no single rule is at fault and the batch fails.
    if (Options.VerifyEach)
      for (size_t L = 0; L < Artifacts.OptimizedFsas.size(); ++L) {
        std::string Violation = verifyNfaError(Artifacts.OptimizedFsas[L],
                                               IrLevel::OptimizedFsa);
        if (!Violation.empty())
          return Result<CompileArtifacts>::error(
              "atom-split verifier: rule " + std::to_string(Alive[L]) +
              ": " + Violation);
      }
    // Atom splitting must be language-neutral too; like the verifier, a
    // refutation here is a splitter bug, so the batch fails either way.
    if (Validate)
      for (size_t L = 0; L < Artifacts.OptimizedFsas.size(); ++L) {
        std::string Violation = validatePassEquivalenceError(
            PreSplit[L], Artifacts.OptimizedFsas[L], "split-cc-by-atoms",
            Options.Validation, &Tel.Validation);
        if (!Violation.empty())
          return Result<CompileArtifacts>::error(
              "translation validation: rule " + std::to_string(Alive[L]) +
              ": " + Violation);
      }
  }
  Artifacts.Times.SingleOptMs = Stage.elapsedMs();
  {
    StageTelemetry &S = StageTel(CompileStage::SingleOpt);
    S.WallMs = Artifacts.Times.SingleOptMs;
    S.RulesIn = StageTel(CompileStage::AstToFsa).RulesOut;
    S.RulesOut = Artifacts.OptimizedFsas.size();
    SumNfas(Artifacts.OptimizedFsas, S.StatesOut, S.TransitionsOut,
            Tel.PeakRuleStates, Tel.PeakRuleTransitions);
  }

  // Stage 4 — merging into ⌈N/M⌉ MFSAs (§III, Algorithm 1). Groups are
  // formed over the surviving logical sequence; a budget overrun quarantines
  // exactly the offending rule and re-merges the group without it, while a
  // deadline overrun abandons the group's unmerged tail.
  Stage.reset();
  {
    const uint32_t N = static_cast<uint32_t>(Artifacts.OptimizedFsas.size());
    uint32_t M = Options.MergingFactor;
    if (M == 0 || M > N)
      M = N;
    std::vector<bool> MergedOut(N, false); // logical ids dropped in stage 4

    for (uint32_t Begin = 0; Begin < N; Begin += M) {
      std::vector<uint32_t> Group; // logical indices
      for (uint32_t L = Begin; L < std::min(Begin + M, N); ++L)
        Group.push_back(L);

      while (!Group.empty()) {
        std::vector<Nfa> Members;
        std::vector<uint32_t> Ids;
        Members.reserve(Group.size());
        Ids.reserve(Group.size());
        for (uint32_t L : Group) {
          Members.push_back(Artifacts.OptimizedFsas[L]);
          Ids.push_back(Alive[L]);
        }

        Result<Mfsa> Z = Diag();
        size_t InjectAt = Ids.size();
        for (size_t K = 0; K < Ids.size(); ++K)
          if (Injected(CompileStage::Merging, Ids[K]))
            InjectAt = K;
        MergeReport Attempt;
        if (InjectAt < Ids.size()) {
          Diag Injection = injectedFault();
          Injection.Offset = InjectAt;
          Z = std::move(Injection);
        } else {
          MergeBudget MB;
          MB.MaxStates = Budget.MaxMergedStates;
          MB.MaxTransitions = Budget.MaxMergedTransitions;
          if (Budget.StageDeadlineMs > 0)
            MB.DeadlineMs = std::max(Budget.StageDeadlineMs -
                                         Stage.elapsedMs(),
                                     1e-9);
          Z = mergeFsasWithBudget(Members, Ids, Options.Merge, MB, &Attempt);
        }

        if (Z.ok()) {
          // A merged MFSA failing verification is a compiler bug (the merge
          // relabeling corrupted a rule's sub-automaton), not an input
          // fault: fail the batch under either policy rather than silently
          // executing a wrong automaton.
          if (Options.VerifyEach) {
            std::string Violation = verifyMfsaError(*Z);
            if (!Violation.empty())
              return Result<CompileArtifacts>::error("stage-4 verifier: " +
                                                     Violation);
          }
          // Translation validation of Eq. 10: every rule's belonging-set
          // projection must accept exactly the language of the optimized
          // FSA that went into the merge. A refutation is a merger bug
          // (the counterexample word names the divergence), so the batch
          // fails under either policy, like a stage-4 verifier failure.
          if (Validate) {
            std::string Violation = validateMergeProjectionError(
                *Z, Members, Options.Validation, &Tel.Validation);
            if (!Violation.empty())
              return Result<CompileArtifacts>::error(
                  "translation validation: " + Violation);
          }
          Artifacts.Merging += Attempt;
          Artifacts.Mfsas.push_back(Z.take());
          break;
        }

        Diag Reason = Z.takeDiag();
        // The diagnostic's Offset indexes into this merge attempt's members.
        size_t Offender =
            std::min<size_t>(Reason.Offset, Group.size() - 1);
        // Past the stage deadline no single rule is at fault: abandon the
        // whole unmerged tail in one step. Otherwise drop the offender only
        // and retry the rest of the group.
        const size_t DropEnd = StageExpired() ? Group.size() : Offender + 1;
        for (size_t K = Offender; K < DropEnd; ++K) {
          Diag RuleReason = Reason;
          RuleReason.Offset = static_cast<size_t>(-1);
          MergedOut[Group[K]] = true;
          if (Fail(Alive[Group[K]], CompileStage::Merging,
                   std::move(RuleReason)))
            return std::move(*Failure);
        }
        Group.erase(Group.begin() + static_cast<ptrdiff_t>(Offender),
                    Group.begin() + static_cast<ptrdiff_t>(DropEnd));
      }
    }

    // Compact the per-rule artifacts so CompiledRuleIds and Quarantined stay
    // a partition of the input ruleset.
    if (std::find(MergedOut.begin(), MergedOut.end(), true) !=
        MergedOut.end()) {
      std::vector<Regex> KeptAsts;
      std::vector<Nfa> KeptRaw, KeptOpt;
      std::vector<uint32_t> NextAlive;
      for (uint32_t L = 0; L < N; ++L) {
        if (MergedOut[L])
          continue;
        KeptAsts.push_back(std::move(Artifacts.Asts[L]));
        KeptRaw.push_back(std::move(Artifacts.RawFsas[L]));
        KeptOpt.push_back(std::move(Artifacts.OptimizedFsas[L]));
        NextAlive.push_back(Alive[L]);
      }
      Artifacts.Asts = std::move(KeptAsts);
      Artifacts.RawFsas = std::move(KeptRaw);
      Artifacts.OptimizedFsas = std::move(KeptOpt);
      Alive = std::move(NextAlive);
    }
  }
  Artifacts.Times.MergingMs = Stage.elapsedMs();
  {
    StageTelemetry &S = StageTel(CompileStage::Merging);
    S.WallMs = Artifacts.Times.MergingMs;
    S.RulesIn = StageTel(CompileStage::SingleOpt).RulesOut;
    S.RulesOut = Alive.size();
    for (const Mfsa &Z : Artifacts.Mfsas) {
      S.StatesOut += Z.numStates();
      S.TransitionsOut += Z.transitions().size();
      Tel.PeakMergedStates =
          std::max<uint64_t>(Tel.PeakMergedStates, Z.numStates());
      Tel.PeakMergedTransitions = std::max<uint64_t>(
          Tel.PeakMergedTransitions, Z.transitions().size());
    }
  }

  // Stage 5 — Back-End: extended-ANML generation (§IV-E).
  if (Options.EmitAnml) {
    Stage.reset();
    Artifacts.AnmlDocs.reserve(Artifacts.Mfsas.size());
    for (size_t I = 0; I < Artifacts.Mfsas.size(); ++I)
      Artifacts.AnmlDocs.push_back(
          writeAnml(Artifacts.Mfsas[I], "mfsa-" + std::to_string(I)));
    Artifacts.Times.BackEndMs = Stage.elapsedMs();
    StageTelemetry &S = StageTel(CompileStage::BackEnd);
    S.WallMs = Artifacts.Times.BackEndMs;
    S.RulesIn = Artifacts.Mfsas.size();
    S.RulesOut = Artifacts.AnmlDocs.size();
    for (const std::string &Doc : Artifacts.AnmlDocs)
      S.StatesOut += Doc.size(); // document bytes; see StageTelemetry doc
  }

  Tel.QuarantinedRules = Artifacts.Quarantined.size();
  Artifacts.CompiledRuleIds = std::move(Alive);

  // Post-pipeline: static cost analysis over the stage-4 MFSAs. The plan is
  // computed at this compile's own merging factor; `mfsac --plan` runs the
  // K-sweep over OptimizedFsas separately.
  if (Options.EmitPlan) {
    PlannerOptions PO = Options.Planner;
    PO.Force = Options.Engine;
    Artifacts.Plan =
        planMfsas(Artifacts.Mfsas, Patterns, Options.MergingFactor, PO);
  }
  return Artifacts;
}
