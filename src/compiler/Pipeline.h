//===- Pipeline.h - multi-level compilation framework -----------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares the five-stage compilation framework of the paper's §IV and
/// Fig. 4:
///
///   Front-End    (1) lexical + syntactic analyses         -> ASTs
///   Middle-End   (2) AST-to-FSA Thompson-like conversion  -> ε-NFAs
///                (3) single-FSA optimization (ε-removal, multiplicity
///                    folding, compaction)                 -> optimized FSAs
///                (4) merging with factor M                -> K=⌈N/M⌉ MFSAs
///   Back-End     (5) extended-ANML generation             -> documents
///
/// compileRuleset() runs all stages, recording per-stage wall time
/// (StageTimes, Fig. 8). Stage outputs are all retained in the artifacts so
/// tests and benches can inspect any level.
///
/// On top of the paper's pipeline this header defines the fault-isolation
/// layer: a FailurePolicy choosing between fail-fast (Strict) and
/// quarantine-and-continue (Isolate) semantics, and a CompileBudget bounding
/// per-rule state growth, merged-MFSA size, and per-stage wall clock so one
/// pathological rule cannot take down a large batch. See DESIGN.md
/// "Degraded-mode semantics".
///
/// One deviation from the paper's stage accounting, documented here and in
/// DESIGN.md: loop expansion (§IV-C optimization (2)) executes inside the
/// Thompson construction — expansion is how counter-less automata realize
/// bounded repetition — so its time lands in stage (2) rather than (3).
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_COMPILER_PIPELINE_H
#define MFSA_COMPILER_PIPELINE_H

#include "analysis/Planner.h"
#include "analysis/TranslationValidate.h"
#include "fsa/Builder.h"
#include "mfsa/Merge.h"
#include "regex/Parser.h"
#include "support/Result.h"
#include "support/Timer.h"

#include <optional>
#include <string>
#include <vector>

namespace mfsa {

namespace obs {
class MetricsRegistry;
} // namespace obs

/// How compileRuleset reacts to a rule that fails a stage.
enum class FailurePolicy : uint8_t {
  /// Fail the whole batch on the first malformed or budget-busting rule,
  /// with a "rule N: ..." diagnostic. The historical behavior; right for
  /// interactive use where the ruleset author can fix the rule.
  Strict,
  /// Quarantine the offending rule — recording its index, stage, and
  /// diagnostic in CompileArtifacts::Quarantined — and keep compiling the
  /// healthy rest. The right default for services compiling third-party
  /// rulesets: the batch always produces every MFSA it can.
  Isolate,
};

/// The pipeline stage a quarantined rule fell out of.
enum class CompileStage : uint8_t {
  FrontEnd,  ///< Stage 1: lexical + syntactic analysis.
  AstToFsa,  ///< Stage 2: Thompson construction (incl. loop expansion).
  SingleOpt, ///< Stage 3: per-FSA optimization.
  Merging,   ///< Stage 4: Algorithm-1 merging.
  BackEnd,   ///< Stage 5: ANML generation.
};

/// Human-readable stage name ("front-end", "ast-to-fsa", ...).
const char *stageName(CompileStage Stage);

/// Resource budget enforced throughout the pipeline. Every field accepts 0
/// for "unlimited"; the defaults are far above anything a legitimate rule
/// needs but low enough that an expansion bomb (`a{1000}{1000}` is ~10^6
/// states before optimization even starts) or a runaway merge is caught
/// before it exhausts memory.
struct CompileBudget {
  /// Cap on one rule's NFA states during Thompson construction (stage 2).
  uint32_t MaxFsaStates = 1u << 20;

  /// Additional stage-2 cap relative to the rule's size: a rule may allocate
  /// at most MaxLoopExpansionFactor states per pattern byte. Catches small
  /// patterns whose nested bounded repeats multiply into huge automata while
  /// leaving long literal rules (which grow linearly) untouched.
  uint32_t MaxLoopExpansionFactor = 4096;

  /// Cap on one rule's transitions after stage-3 optimization (ε-removal can
  /// grow the transition set quadratically).
  uint64_t MaxFsaTransitions = 1u << 22;

  /// Caps on each merged MFSA's size (stage 4, Algorithm 1).
  uint64_t MaxMergedStates = 1u << 22;
  uint64_t MaxMergedTransitions = 1u << 23;

  /// Per-stage wall-clock deadline in milliseconds (0 = none). Checked after
  /// each processed rule, so every stage always completes at least one rule:
  /// an expired deadline degrades the batch, it never livelocks it.
  double StageDeadlineMs = 0.0;
};

/// Default for CompileOptions::VerifyEach: on in debug configurations
/// (CMake defines MFSA_VERIFY_EACH_DEFAULT for Debug builds), off
/// otherwise — the LLVM -verify-each convention.
#ifdef MFSA_VERIFY_EACH_DEFAULT
inline constexpr bool kVerifyEachDefault = true;
#else
inline constexpr bool kVerifyEachDefault = false;
#endif

/// Default for ValidateMode::Auto resolution: Debug builds (CMake defines
/// MFSA_VALIDATE_DEFAULT) validate small rulesets by default, mirroring the
/// VerifyEach convention; release builds keep validation opt-in.
#ifdef MFSA_VALIDATE_DEFAULT
inline constexpr bool kValidatePassesDefault = true;
#else
inline constexpr bool kValidatePassesDefault = false;
#endif

/// Whether compileRuleset proves language preservation (translation
/// validation, analysis/TranslationValidate.h) after every optimization
/// pass and the merge.
enum class ValidateMode : uint8_t {
  /// Resolve from the environment: MFSA_VALIDATE=1/on/true forces On,
  /// =0/off/false forces Off; otherwise on iff this is a Debug build
  /// (kValidatePassesDefault) and the ruleset has at most
  /// CompileOptions::ValidateAutoMaxRules rules.
  Auto,
  On,
  Off,
};

/// Resolves \p Mode against the MFSA_VALIDATE environment variable, the
/// build-type default, and the ruleset size (see ValidateMode::Auto).
bool validatePassesEnabled(ValidateMode Mode, size_t NumRules,
                           uint32_t AutoMaxRules);

/// End-to-end compilation knobs.
struct CompileOptions {
  ParseOptions Parse;
  BuildOptions Build;
  MergeOptions Merge;

  /// Failure semantics; see FailurePolicy.
  FailurePolicy Policy = FailurePolicy::Strict;

  /// Resource budget; see CompileBudget.
  CompileBudget Budget;

  /// The paper's merging factor M: rules are merged in sequential groups of
  /// this size; 0 means "all" (a single MFSA).
  uint32_t MergingFactor = 0;

  /// Skip stage (5) when the ANML documents are not needed (saves time in
  /// compression-only studies).
  bool EmitAnml = true;

  /// Run the IR verifier (analysis/Verifier.h) on every stage's output:
  /// each stage-2 ε-NFA, each stage-3 optimized FSA, and each stage-4 MFSA.
  /// A rule whose automaton fails verification is treated exactly like a
  /// malformed rule (fail-fast under Strict, quarantined under Isolate); a
  /// merged MFSA failing verification always fails the batch, since no
  /// single input rule is at fault — that is a compiler bug surfacing.
  /// Exposed on the mfsac CLI as `--verify-each`.
  bool VerifyEach = kVerifyEachDefault;

  /// Translation validation (`mfsac --validate-passes`): prove, with the
  /// antichain inclusion checker, that every stage-3 pass application and
  /// the stage-4 merge preserved each rule's language. A refuted per-rule
  /// pass proof is treated like a malformed rule (fail-fast under Strict,
  /// quarantined under Isolate); a refuted merge-projection proof always
  /// fails the batch — like a stage-4 verifier failure, it is a compiler
  /// bug, not an input fault.
  ValidateMode Validate = ValidateMode::Auto;

  /// Auto-mode ruleset-size threshold: Debug builds validate by default
  /// only when the ruleset has at most this many rules (proofs are
  /// per-pass per-rule, so the default keeps test-suite latency sane).
  uint32_t ValidateAutoMaxRules = 64;

  /// Proof resource knobs (cutoffs, counterexample replay).
  ValidateOptions Validation;

  /// Enables the paper's proposed partial character-class merging (§VI-A):
  /// after single-FSA optimization, every transition label is split into
  /// the alphabet-partition atoms induced by the whole ruleset
  /// (fsa/AlphabetPartition.h), so overlapping classes share exactly their
  /// common sub-classes during merging. Costs transitions, wins states;
  /// measured by bench/abl_partial_cc.
  bool SplitCcByAtoms = false;

  /// Which execution engine the caller intends to run the compiled MFSAs
  /// on. The pipeline itself always produces the same artifacts; the value
  /// is carried so downstream consumers (imfant_run, benches) and the
  /// planner agree on one source of truth. Engine::Auto defers the choice
  /// to the static cost analyzer (analysis/Planner.h).
  mfsa::Engine Engine = mfsa::Engine::Auto;

  /// Run the static cost analyzer over the stage-4 MFSAs and store the
  /// resulting EnginePlan in CompileArtifacts::Plan. The plan is computed at
  /// the compile's own MergingFactor (no K-sweep; `mfsac --plan` does the
  /// sweep over OptimizedFsas instead). Exposed as `mfsac --plan`.
  bool EmitPlan = false;

  /// Analyzer/coefficient knobs used when EmitPlan is set (or when the
  /// caller resolves Engine::Auto itself).
  PlannerOptions Planner;
};

/// Aggregate measurements for one pipeline stage: wall time plus the rule
/// and automaton populations flowing through it. StatesOut/TransitionsOut
/// sum the stage's surviving outputs (ASTs have no states, so stage 1
/// reports zeros there; stage 5 reports ANML bytes in StatesOut).
struct StageTelemetry {
  double WallMs = 0;
  uint64_t RulesIn = 0;
  uint64_t RulesOut = 0;
  uint64_t StatesOut = 0;
  uint64_t TransitionsOut = 0;
};

/// Per-compilation telemetry, filled on every compileRuleset() call (the
/// aggregation is a handful of adds per stage, so it is unconditional).
/// recordTo() publishes it into a MetricsRegistry under `compile.*` names;
/// the budget caps ride along so a JSON dump shows consumption against
/// limit (PR 1's CompileBudget) without cross-referencing the options.
struct CompileTelemetry {
  StageTelemetry Stages[5]; ///< Indexed by CompileStage.
  uint64_t QuarantinedRules = 0;

  /// Peak single-rule automaton size observed (stages 2-3) and peak merged
  /// MFSA size (stage 4), against the corresponding CompileBudget caps
  /// (0 = unlimited).
  uint64_t PeakRuleStates = 0;
  uint64_t PeakRuleTransitions = 0;
  uint64_t PeakMergedStates = 0;
  uint64_t PeakMergedTransitions = 0;
  uint64_t BudgetMaxFsaStates = 0;
  uint64_t BudgetMaxFsaTransitions = 0;
  uint64_t BudgetMaxMergedStates = 0;
  uint64_t BudgetMaxMergedTransitions = 0;

  /// Translation-validation proof accounting (zero when validation was off);
  /// recordTo publishes it under `analysis.inclusion.*`.
  ValidateStats Validation;

  const StageTelemetry &stage(CompileStage S) const {
    return Stages[static_cast<size_t>(S)];
  }

  /// Publishes counters/gauges (`compile.<stage>.*`, `compile.budget.*`,
  /// timing gauges `compile.<stage>.wall_ms`) into \p Registry.
  void recordTo(obs::MetricsRegistry &Registry) const;
};

/// One rule the Isolate policy dropped, with full provenance for reporting.
struct QuarantinedRule {
  uint32_t RuleIndex = 0;                   ///< Index into the input Patterns.
  CompileStage Stage = CompileStage::FrontEnd; ///< Stage it fell out of.
  Diag Reason;                              ///< Why (positions refer to the rule).
};

/// Everything the pipeline produced, one level per stage. Under
/// FailurePolicy::Isolate the per-rule vectors (Asts, RawFsas,
/// OptimizedFsas) hold the surviving rules only, in input order;
/// CompiledRuleIds maps each logical index back to the rule's index in the
/// input Patterns, and the MFSAs carry the same original index as each
/// rule's RuleInfo::GlobalId, so engine match reports and `bel` belonging
/// sets always reference original rule ids.
struct CompileArtifacts {
  std::vector<Regex> Asts;           ///< Stage 1, one per surviving rule.
  std::vector<Nfa> RawFsas;          ///< Stage 2, ε-NFAs.
  std::vector<Nfa> OptimizedFsas;    ///< Stage 3, merge-ready FSAs.
  std::vector<Mfsa> Mfsas;           ///< Stage 4, ⌈N/M⌉ automata.
  std::vector<std::string> AnmlDocs; ///< Stage 5, one per MFSA.

  /// Logical rule index -> original index in Patterns (identity when nothing
  /// was quarantined). Disjoint from Quarantined: together they partition
  /// the input ruleset.
  std::vector<uint32_t> CompiledRuleIds;

  /// Rules dropped under FailurePolicy::Isolate; empty under Strict.
  std::vector<QuarantinedRule> Quarantined;

  StageTimes Times;
  MergeReport Merging;
  CompileTelemetry Telemetry;

  /// Engine plan over the stage-4 MFSAs, present iff
  /// CompileOptions::EmitPlan was set.
  std::optional<EnginePlan> Plan;
};

/// Compiles \p Patterns end to end. Under FailurePolicy::Strict (default)
/// it fails with a positioned diagnostic (prefixed by the offending rule's
/// index) on the first malformed or over-budget RE; under Isolate it
/// quarantines offenders and compiles the rest.
///
/// Deterministic fault injection (tests only): setting the environment
/// variable MFSA_FAULT_STAGE="<stage>:<rule>" with stage one of
/// parse|build|opt|merge makes that original rule index fail at that stage
/// as if it were malformed, so the isolation paths are exercisable without
/// crafting pathological REs. The same hook covers the artifact path with
/// the serialize|load stages (support/FaultInject.h has the full catalog).
Result<CompileArtifacts> compileRuleset(const std::vector<std::string> &Patterns,
                                        const CompileOptions &Options = {});

} // namespace mfsa

#endif // MFSA_COMPILER_PIPELINE_H
