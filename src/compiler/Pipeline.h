//===- Pipeline.h - multi-level compilation framework -----------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares the five-stage compilation framework of the paper's §IV and
/// Fig. 4:
///
///   Front-End    (1) lexical + syntactic analyses         -> ASTs
///   Middle-End   (2) AST-to-FSA Thompson-like conversion  -> ε-NFAs
///                (3) single-FSA optimization (ε-removal, multiplicity
///                    folding, compaction)                 -> optimized FSAs
///                (4) merging with factor M                -> K=⌈N/M⌉ MFSAs
///   Back-End     (5) extended-ANML generation             -> documents
///
/// compileRuleset() runs all stages, recording per-stage wall time
/// (StageTimes, Fig. 8). Stage outputs are all retained in the artifacts so
/// tests and benches can inspect any level.
///
/// One deviation from the paper's stage accounting, documented here and in
/// DESIGN.md: loop expansion (§IV-C optimization (2)) executes inside the
/// Thompson construction — expansion is how counter-less automata realize
/// bounded repetition — so its time lands in stage (2) rather than (3).
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_COMPILER_PIPELINE_H
#define MFSA_COMPILER_PIPELINE_H

#include "fsa/Builder.h"
#include "mfsa/Merge.h"
#include "regex/Parser.h"
#include "support/Result.h"
#include "support/Timer.h"

#include <string>
#include <vector>

namespace mfsa {

/// End-to-end compilation knobs.
struct CompileOptions {
  ParseOptions Parse;
  BuildOptions Build;
  MergeOptions Merge;

  /// The paper's merging factor M: rules are merged in sequential groups of
  /// this size; 0 means "all" (a single MFSA).
  uint32_t MergingFactor = 0;

  /// Skip stage (5) when the ANML documents are not needed (saves time in
  /// compression-only studies).
  bool EmitAnml = true;

  /// Enables the paper's proposed partial character-class merging (§VI-A):
  /// after single-FSA optimization, every transition label is split into
  /// the alphabet-partition atoms induced by the whole ruleset
  /// (fsa/AlphabetPartition.h), so overlapping classes share exactly their
  /// common sub-classes during merging. Costs transitions, wins states;
  /// measured by bench/abl_partial_cc.
  bool SplitCcByAtoms = false;
};

/// Everything the pipeline produced, one level per stage.
struct CompileArtifacts {
  std::vector<Regex> Asts;           ///< Stage 1, one per rule.
  std::vector<Nfa> RawFsas;          ///< Stage 2, ε-NFAs.
  std::vector<Nfa> OptimizedFsas;    ///< Stage 3, merge-ready FSAs.
  std::vector<Mfsa> Mfsas;           ///< Stage 4, ⌈N/M⌉ automata.
  std::vector<std::string> AnmlDocs; ///< Stage 5, one per MFSA.
  StageTimes Times;
  MergeReport Merging;
};

/// Compiles \p Patterns end to end. Fails with a positioned diagnostic
/// (prefixed by the offending rule's index) on the first malformed RE.
Result<CompileArtifacts> compileRuleset(const std::vector<std::string> &Patterns,
                                        const CompileOptions &Options = {});

} // namespace mfsa

#endif // MFSA_COMPILER_PIPELINE_H
