//===- Anml.cpp - extended ANML serialization -------------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "anml/Anml.h"

#include "support/StringUtil.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

using namespace mfsa;

//===----------------------------------------------------------------------===//
// Writing
//===----------------------------------------------------------------------===//

/// Encodes a SymbolSet as space-separated inclusive hex ranges ("61-66 6a").
static std::string encodeSymbols(const SymbolSet &Set) {
  std::string Out;
  unsigned C = 0;
  char Buffer[16];
  while (C < SymbolSet::NumSymbols) {
    if (!Set.contains(static_cast<unsigned char>(C))) {
      ++C;
      continue;
    }
    unsigned Hi = C;
    while (Hi + 1 < SymbolSet::NumSymbols &&
           Set.contains(static_cast<unsigned char>(Hi + 1)))
      ++Hi;
    if (!Out.empty())
      Out.push_back(' ');
    if (Hi == C)
      std::snprintf(Buffer, sizeof(Buffer), "%02x", C);
    else
      std::snprintf(Buffer, sizeof(Buffer), "%02x-%02x", C, Hi);
    Out += Buffer;
    C = Hi + 1;
  }
  return Out;
}

/// Encodes a state list or a belonging set as space-separated decimals.
static std::string encodeList(const std::vector<StateId> &Ids) {
  std::string Out;
  for (StateId Id : Ids) {
    if (!Out.empty())
      Out.push_back(' ');
    Out += std::to_string(Id);
  }
  return Out;
}

static std::string encodeBel(const DynamicBitset &Bel) {
  std::string Out;
  Bel.forEach([&](unsigned Rule) {
    if (!Out.empty())
      Out.push_back(' ');
    Out += std::to_string(Rule);
  });
  return Out;
}

std::string mfsa::writeAnml(const Mfsa &Z, const std::string &Name) {
  std::string Out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  Out += "<mfsa-network name=\"" + xmlEscape(Name) + "\" states=\"" +
         std::to_string(Z.numStates()) + "\" rules=\"" +
         std::to_string(Z.numRules()) + "\">\n";

  for (RuleId Id = 0; Id < Z.numRules(); ++Id) {
    const Mfsa::RuleInfo &Info = Z.rule(Id);
    std::vector<StateId> Finals = Info.Finals;
    std::sort(Finals.begin(), Finals.end());
    Out += "  <rule id=\"" + std::to_string(Id) + "\" global-id=\"" +
           std::to_string(Info.GlobalId) + "\" initial=\"" +
           std::to_string(Info.Initial) + "\" finals=\"" +
           encodeList(Finals) + "\" anchored-start=\"" +
           (Info.AnchoredStart ? "1" : "0") + "\" anchored-end=\"" +
           (Info.AnchoredEnd ? "1" : "0") + "\"/>\n";
  }

  // Canonical transition order for reproducible output and round-trips.
  std::vector<uint32_t> Order(Z.numTransitions());
  for (uint32_t I = 0; I < Z.numTransitions(); ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(), [&](uint32_t A, uint32_t B) {
    const MfsaTransition &TA = Z.transitions()[A];
    const MfsaTransition &TB = Z.transitions()[B];
    if (TA.From != TB.From)
      return TA.From < TB.From;
    if (TA.To != TB.To)
      return TA.To < TB.To;
    return TA.Label < TB.Label;
  });

  for (uint32_t I : Order) {
    const MfsaTransition &T = Z.transitions()[I];
    Out += "  <transition from=\"" + std::to_string(T.From) + "\" to=\"" +
           std::to_string(T.To) + "\" symbols=\"" + encodeSymbols(T.Label) +
           "\" belongs=\"" + encodeBel(T.Bel) + "\"/>\n";
  }
  Out += "</mfsa-network>\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// Reading
//===----------------------------------------------------------------------===//

namespace {

/// A parsed XML element: tag name plus attribute key/value pairs. The reader
/// only needs the flat element stream of the dialect, not a full DOM.
struct XmlElement {
  std::string Tag;
  std::map<std::string, std::string> Attributes;
  bool SelfClosing = false;
  bool Closing = false;
  size_t Offset = 0;

  /// Fetches an attribute; \returns false if absent.
  bool get(const std::string &Key, std::string &Out) const {
    auto It = Attributes.find(Key);
    if (It == Attributes.end())
      return false;
    Out = It->second;
    return true;
  }
};

/// Minimal forward-only scanner for the dialect's XML subset: prolog,
/// comments, and elements with double-quoted attributes.
class XmlScanner {
public:
  explicit XmlScanner(const std::string &Text) : Text(Text) {}

  /// Scans the next element; \returns false at end of input, or an error
  /// Result via LastError on malformed syntax.
  Result<bool> next(XmlElement &Out);

private:
  void skipWhitespace() {
    while (Cursor < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Cursor])))
      ++Cursor;
  }

  const std::string &Text;
  size_t Cursor = 0;
};

} // namespace

Result<bool> XmlScanner::next(XmlElement &Out) {
  for (;;) {
    skipWhitespace();
    if (Cursor >= Text.size())
      return false;
    if (Text[Cursor] != '<')
      return Result<bool>::error("expected '<'", Cursor);
    // Prolog and comments are skipped.
    if (startsWith(Text.substr(Cursor, 2), "<?")) {
      size_t End = Text.find("?>", Cursor);
      if (End == std::string::npos)
        return Result<bool>::error("unterminated XML prolog", Cursor);
      Cursor = End + 2;
      continue;
    }
    if (startsWith(Text.substr(Cursor, 4), "<!--")) {
      size_t End = Text.find("-->", Cursor);
      if (End == std::string::npos)
        return Result<bool>::error("unterminated comment", Cursor);
      Cursor = End + 3;
      continue;
    }
    break;
  }

  Out = XmlElement();
  Out.Offset = Cursor;
  ++Cursor; // consume '<'
  if (Cursor < Text.size() && Text[Cursor] == '/') {
    Out.Closing = true;
    ++Cursor;
  }

  size_t NameBegin = Cursor;
  while (Cursor < Text.size() &&
         (std::isalnum(static_cast<unsigned char>(Text[Cursor])) ||
          Text[Cursor] == '-' || Text[Cursor] == '_'))
    ++Cursor;
  Out.Tag = Text.substr(NameBegin, Cursor - NameBegin);
  if (Out.Tag.empty())
    return Result<bool>::error("missing element name", NameBegin);

  for (;;) {
    skipWhitespace();
    if (Cursor >= Text.size())
      return Result<bool>::error("unterminated element", Out.Offset);
    if (Text[Cursor] == '/') {
      Out.SelfClosing = true;
      ++Cursor;
      continue;
    }
    if (Text[Cursor] == '>') {
      ++Cursor;
      return true;
    }
    // Attribute: name="value"
    size_t KeyBegin = Cursor;
    while (Cursor < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[Cursor])) ||
            Text[Cursor] == '-' || Text[Cursor] == '_'))
      ++Cursor;
    std::string Key = Text.substr(KeyBegin, Cursor - KeyBegin);
    if (Key.empty())
      return Result<bool>::error("malformed attribute", Cursor);
    skipWhitespace();
    if (Cursor >= Text.size() || Text[Cursor] != '=')
      return Result<bool>::error("expected '=' after attribute name", Cursor);
    ++Cursor;
    skipWhitespace();
    if (Cursor >= Text.size() || Text[Cursor] != '"')
      return Result<bool>::error("expected '\"' opening attribute value",
                                 Cursor);
    ++Cursor;
    size_t ValueBegin = Cursor;
    while (Cursor < Text.size() && Text[Cursor] != '"')
      ++Cursor;
    if (Cursor >= Text.size())
      return Result<bool>::error("unterminated attribute value", ValueBegin);
    Out.Attributes[Key] =
        xmlUnescape(Text.substr(ValueBegin, Cursor - ValueBegin));
    ++Cursor; // closing quote
  }
}

/// Parses a non-negative decimal; \returns false on malformed input.
static bool parseUint(const std::string &Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  uint64_t Value = 0;
  for (char C : Text) {
    if (!std::isdigit(static_cast<unsigned char>(C)))
      return false;
    Value = Value * 10 + static_cast<uint64_t>(C - '0');
    if (Value > UINT32_MAX)
      return false;
  }
  Out = Value;
  return true;
}

/// Parses a space-separated decimal list.
static bool parseUintList(const std::string &Text,
                          std::vector<uint32_t> &Out) {
  for (const std::string &Field : splitString(trimString(Text), ' ')) {
    if (Field.empty())
      continue;
    uint64_t Value;
    if (!parseUint(Field, Value))
      return false;
    Out.push_back(static_cast<uint32_t>(Value));
  }
  return true;
}

/// Parses the hex-range symbols encoding ("61-66 6a").
static bool parseSymbols(const std::string &Text, SymbolSet &Out) {
  Out = SymbolSet();
  for (const std::string &Field : splitString(trimString(Text), ' ')) {
    if (Field.empty())
      continue;
    unsigned Lo, Hi;
    if (std::sscanf(Field.c_str(), "%x-%x", &Lo, &Hi) == 2) {
      if (Lo > 255 || Hi > 255 || Lo > Hi)
        return false;
      Out |= SymbolSet::range(static_cast<unsigned char>(Lo),
                              static_cast<unsigned char>(Hi));
    } else if (std::sscanf(Field.c_str(), "%x", &Lo) == 1) {
      if (Lo > 255)
        return false;
      Out.insert(static_cast<unsigned char>(Lo));
    } else {
      return false;
    }
  }
  return !Out.empty();
}

Result<Mfsa> mfsa::readAnml(const std::string &Document,
                            const AnmlLimits &Limits) {
  if (Document.size() > Limits.MaxDocumentBytes)
    return Result<Mfsa>::error(
        "document exceeds size cap (" + std::to_string(Document.size()) +
            " bytes, cap " + std::to_string(Limits.MaxDocumentBytes) + ")",
        Limits.MaxDocumentBytes);

  XmlScanner Scanner(Document);
  XmlElement Element;

  // Header: <mfsa-network states=... rules=...>
  Result<bool> Scan = Scanner.next(Element);
  if (!Scan)
    return Scan.withContext("malformed ANML").takeDiag();
  if (!*Scan || Element.Tag != "mfsa-network" || Element.Closing)
    return Result<Mfsa>::error("expected <mfsa-network> root element");
  std::string StatesText, RulesText;
  uint64_t NumStates = 0, NumRules = 0;
  if (!Element.get("states", StatesText) ||
      !parseUint(StatesText, NumStates) || !Element.get("rules", RulesText) ||
      !parseUint(RulesText, NumRules))
    return Result<Mfsa>::error("missing or malformed states/rules attributes",
                               Element.Offset);
  // Declared-size caps come before any proportional allocation.
  if (NumStates > Limits.MaxStates)
    return Result<Mfsa>::error("declared states exceed cap (" +
                                   std::to_string(NumStates) + " > " +
                                   std::to_string(Limits.MaxStates) + ")",
                               Element.Offset);
  if (NumRules > Limits.MaxRules)
    return Result<Mfsa>::error("declared rules exceed cap (" +
                                   std::to_string(NumRules) + " > " +
                                   std::to_string(Limits.MaxRules) + ")",
                               Element.Offset);

  Mfsa Z(static_cast<uint32_t>(NumRules));
  for (uint64_t I = 0; I < NumStates; ++I)
    Z.addState();
  std::vector<bool> RuleSeen(NumRules, false);
  uint64_t NumTransitions = 0;
  unsigned OpenDepth = 1; // the root element

  for (;;) {
    Scan = Scanner.next(Element);
    if (!Scan)
      return Scan.withContext("malformed ANML").takeDiag();
    if (!*Scan)
      return Result<Mfsa>::error("missing </mfsa-network> close tag");
    if (Element.Closing) {
      if (Element.Tag != "mfsa-network")
        return Result<Mfsa>::error("unexpected close tag </" + Element.Tag +
                                       ">",
                                   Element.Offset);
      break;
    }
    // The dialect's elements are self-closing; tolerate open forms but bound
    // how deep unclosed elements may pile up (hostile-nesting guard).
    if (!Element.SelfClosing && ++OpenDepth > Limits.MaxElementDepth)
      return Result<Mfsa>::error("element nesting exceeds depth cap (" +
                                     std::to_string(Limits.MaxElementDepth) +
                                     ")",
                                 Element.Offset);

    if (Element.Tag == "rule") {
      std::string IdText, InitialText, FinalsText, Text;
      uint64_t Id = 0, Initial = 0;
      if (!Element.get("id", IdText) || !parseUint(IdText, Id) ||
          Id >= NumRules)
        return Result<Mfsa>::error("malformed rule id", Element.Offset);
      if (RuleSeen[Id])
        return Result<Mfsa>::error("duplicate rule id", Element.Offset);
      RuleSeen[Id] = true;
      Mfsa::RuleInfo &Info = Z.rule(static_cast<RuleId>(Id));
      if (!Element.get("initial", InitialText) ||
          !parseUint(InitialText, Initial) || Initial >= NumStates)
        return Result<Mfsa>::error("malformed rule initial state",
                                   Element.Offset);
      Info.Initial = static_cast<StateId>(Initial);
      std::vector<uint32_t> Finals;
      if (!Element.get("finals", FinalsText) ||
          !parseUintList(FinalsText, Finals))
        return Result<Mfsa>::error("malformed rule finals", Element.Offset);
      if (Finals.size() > Limits.MaxListItems)
        return Result<Mfsa>::error("rule finals list exceeds cardinality cap (" +
                                       std::to_string(Limits.MaxListItems) +
                                       ")",
                                   Element.Offset);
      for (uint32_t F : Finals) {
        if (F >= NumStates)
          return Result<Mfsa>::error("rule final state out of range",
                                     Element.Offset);
        Info.Finals.push_back(F);
      }
      if (Element.get("global-id", Text)) {
        uint64_t GlobalId;
        if (!parseUint(Text, GlobalId))
          return Result<Mfsa>::error("malformed global-id", Element.Offset);
        Info.GlobalId = static_cast<uint32_t>(GlobalId);
      }
      if (Element.get("anchored-start", Text))
        Info.AnchoredStart = (Text == "1");
      if (Element.get("anchored-end", Text))
        Info.AnchoredEnd = (Text == "1");
      continue;
    }

    if (Element.Tag == "transition") {
      if (++NumTransitions > Limits.MaxTransitions)
        return Result<Mfsa>::error("transition count exceeds cap (" +
                                       std::to_string(Limits.MaxTransitions) +
                                       ")",
                                   Element.Offset);
      std::string FromText, ToText, SymbolsText, BelongsText;
      uint64_t From = 0, To = 0;
      if (!Element.get("from", FromText) || !parseUint(FromText, From) ||
          From >= NumStates || !Element.get("to", ToText) ||
          !parseUint(ToText, To) || To >= NumStates)
        return Result<Mfsa>::error("malformed transition endpoints",
                                   Element.Offset);
      SymbolSet Label;
      if (!Element.get("symbols", SymbolsText) ||
          !parseSymbols(SymbolsText, Label))
        return Result<Mfsa>::error("malformed transition symbols",
                                   Element.Offset);
      std::vector<uint32_t> Belongs;
      if (!Element.get("belongs", BelongsText) ||
          !parseUintList(BelongsText, Belongs) || Belongs.empty())
        return Result<Mfsa>::error("malformed transition belongs",
                                   Element.Offset);
      if (Belongs.size() > Limits.MaxListItems)
        return Result<Mfsa>::error(
            "belonging set exceeds cardinality cap (" +
                std::to_string(Limits.MaxListItems) + ")",
            Element.Offset);
      DynamicBitset Bel(static_cast<unsigned>(NumRules));
      for (uint32_t Rule : Belongs) {
        if (Rule >= NumRules)
          return Result<Mfsa>::error("belongs rule id out of range",
                                     Element.Offset);
        Bel.set(Rule);
      }
      Z.addTransition(static_cast<StateId>(From), static_cast<StateId>(To),
                      Label, std::move(Bel));
      continue;
    }

    return Result<Mfsa>::error("unknown element <" + Element.Tag + ">",
                               Element.Offset);
  }

  for (uint64_t Id = 0; Id < NumRules; ++Id)
    if (!RuleSeen[Id])
      return Result<Mfsa>::error("missing <rule> element for rule " +
                                 std::to_string(Id));
  std::string Violation = Z.verify();
  if (!Violation.empty())
    return Result<Mfsa>::error("invalid MFSA: " + Violation);
  return Z;
}

//===----------------------------------------------------------------------===//
// File helpers
//===----------------------------------------------------------------------===//

bool mfsa::saveFile(const std::string &Path, const std::string &Document) {
  std::ofstream Stream(Path, std::ios::binary);
  if (!Stream)
    return false;
  Stream.write(Document.data(),
               static_cast<std::streamsize>(Document.size()));
  return static_cast<bool>(Stream);
}

Result<std::string> mfsa::loadFile(const std::string &Path) {
  std::ifstream Stream(Path, std::ios::binary);
  if (!Stream)
    return Result<std::string>::error("cannot open " + Path);
  std::ostringstream Buffer;
  Buffer << Stream.rdbuf();
  return Buffer.str();
}
