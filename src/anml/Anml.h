//===- Anml.h - extended ANML serialization ---------------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares the back-end (paper §IV-E): lowering MFSAs to an Automata
/// Network Markup Language representation "extended ... to include the REs
/// each transition belongs to". Standard ANML is homogeneous/state-centric;
/// the paper's extension is unpublished, so this library defines its own
/// documented transition-centric dialect carrying the same information:
///
/// \code
///   <?xml version="1.0" encoding="UTF-8"?>
///   <mfsa-network name="..." states="N" rules="M">
///     <rule id="0" global-id="17" initial="3" finals="5 6"
///           anchored-start="0" anchored-end="0"/>
///     <transition from="0" to="1" symbols="61-66 6a" belongs="0 2"/>
///   </mfsa-network>
/// \endcode
///
/// `symbols` is a list of inclusive hex byte ranges (lo-hi, or a single
/// byte); `belongs` is the transition's belonging set; per-rule elements
/// carry the activation-function anchors (initial state, final states).
/// The format round-trips losslessly: readAnml(writeAnml(Z)) == Z up to
/// transition order, which writeAnml makes canonical.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_ANML_ANML_H
#define MFSA_ANML_ANML_H

#include "mfsa/Mfsa.h"
#include "support/Result.h"

#include <string>

namespace mfsa {

/// Serializes \p Z into the extended-ANML dialect with canonical
/// (from, to, label) transition order.
std::string writeAnml(const Mfsa &Z, const std::string &Name);

/// Caps shielding readAnml from hostile documents. The reader allocates
/// proportionally to the *declared* sizes (RuleSeen is NumRules wide, every
/// transition carries a NumRules-wide belonging set), so a tiny document
/// declaring states="4000000000" would otherwise commit gigabytes before the
/// first real element is parsed. Every field is a hard limit; exceeding one
/// is a positioned Diag, never an allocation.
struct AnmlLimits {
  size_t MaxDocumentBytes = size_t(64) << 20; ///< Whole-document size cap.
  uint64_t MaxStates = 1u << 22;              ///< Declared states cap.
  uint64_t MaxRules = 1u << 20;               ///< Declared rules cap.
  uint64_t MaxTransitions = 1u << 23;         ///< Transition element cap.
  size_t MaxListItems = size_t(1) << 20; ///< finals/belongs cardinality cap.
  unsigned MaxElementDepth = 8; ///< Unclosed (non-self-closing) element cap.
};

/// Parses an extended-ANML document back into an Mfsa, validating index
/// ranges and belonging-set widths and enforcing \p Limits.
Result<Mfsa> readAnml(const std::string &Document,
                      const AnmlLimits &Limits = {});

/// Writes \p Document to \p Path; \returns false on I/O failure.
bool saveFile(const std::string &Path, const std::string &Document);

/// Reads the whole file at \p Path.
Result<std::string> loadFile(const std::string &Path);

} // namespace mfsa

#endif // MFSA_ANML_ANML_H
