//===- Planner.h - Engine::Auto selection planner ---------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares the adaptive engine planner the ROADMAP's "Adaptive engine
/// planner" item asks for: convert the static facts of analysis/CostModel.h
/// plus cost coefficients fitted to the committed `bench/baselines/`
/// numbers into an EnginePlan — which of the five engines to run, at what
/// merging factor K, and at what stride — with a JSON explain trace of
/// every candidate evaluated and why the winner won (Hyperscan-style
/// hybrid dispatch, grounded in our own baselines rather than guesswork).
///
/// The planner is pure analysis: it never constructs an engine, so it lives
/// in the analysis layer and everything above (pipeline, CLIs, benches,
/// engine/PlannedEngine.h) can consume the plan.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_ANALYSIS_PLANNER_H
#define MFSA_ANALYSIS_PLANNER_H

#include "analysis/CostModel.h"
#include "fsa/Nfa.h"
#include "mfsa/Merge.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mfsa {

namespace obs {
class MetricsRegistry;
} // namespace obs

/// The engine-selection axis (CompileOptions::Engine): the five concrete
/// execution strategies the benches compare, plus Auto ("let the planner
/// decide").
enum class Engine : uint8_t {
  Auto,         ///< Resolve via the planner.
  ImfantDense,  ///< Symbol-major iMFAnt (engine/Imfant.h).
  ImfantSparse, ///< State-major CSR iMFAnt (engine/SparseImfant.h).
  Dfa,          ///< Scanning subset-construction DFA (engine/DfaEngine.h).
  StridedDfa,   ///< Stride-2 DFA (engine/MultiStride.h).
  Prefilter,    ///< AC literal prefilter + confirm (engine/Prefilter.h).
};

/// Stable CLI/JSON name: auto, dense, sparse, dfa, stride2, prefilter.
const char *engineName(Engine E);

/// Parses an engineName() string. \returns false on an unknown name.
bool engineFromName(std::string_view Name, Engine &Out);

/// Per-unit cost constants, in nanoseconds, fitted to the committed
/// bench/baselines/BENCH_*.json numbers (docs/performance.md shows the
/// derivation). They only need to get *ratios* right: the planner compares
/// candidate engines against each other, never against the wall clock.
struct CostCoefficients {
  /// Dense iMFAnt: per per-symbol table entry evaluated per input byte
  /// (BENCH_engine_throughput dense rows / avg table row).
  double DenseNsPerEntry = 1.2;
  /// Sparse iMFAnt: per (active state × out edge) touched per byte; higher
  /// than the dense constant because the CSR walk is branchy.
  double SparseNsPerEdge = 2.0;
  /// Both iMFAnt engines: per 64-bit belonging word combined per entry.
  double BitsetNsPerWord = 0.4;
  /// DFA: one table lookup + accept probe per byte.
  double DfaNsPerByte = 1.0;
  /// Stride-2 DFA: one lookup per byte *pair*.
  double Stride2NsPerStep = 1.3;
  /// AC prefilter: literal-scan cost per byte (root-skip fast path).
  double PrefilterNsPerByte = 0.6;
  /// Residual (non-prefilterable) rules scan every byte with a dense
  /// engine; this scales that engine's estimate by the residual fraction.
  /// Fitted at ~2×: the baselines show the prefilter's residual path
  /// costing about twice the tuned dense engine per residual rule share
  /// (abl_planner: prefilter/dense ≈ 2.0-3.3 × (1 - prefilterable
  /// fraction) across the Table I datasets), which flips literal-poor
  /// rulesets (DS9) back to dense while keeping literal-heavy ones
  /// (PEN/RG1/TCP) on the prefilter.
  double ResidualPenalty = 2.0;
  /// Confirm-window cost: a prefilter hit reruns an automaton over the
  /// window, and hit probability rises steeply as the mandatory literal
  /// shortens. This charges the prefilterable share of the dense cost
  /// inversely to the average literal length (abl_planner: PRO's 4.4-byte
  /// average literal makes its prefilter slower than plain dense, while
  /// BRO's 11-byte literals keep the confirm path cold).
  double ConfirmPenalty = 1.0;
  /// Tables larger than this spill the last-level working set; their
  /// estimate is multiplied by CacheSpillFactor (baselines show the dense
  /// engine degrading ~2-3× once the table leaves L2).
  double CacheBytes = 1.5e6;
  double CacheSpillFactor = 2.5;
};

/// One engine's evaluated cost for a candidate configuration.
struct EngineCostEstimate {
  Engine E = Engine::ImfantDense;
  double NsPerByte = 0.0;
  bool Feasible = false;
  std::string Why; ///< Infeasibility reason or dominant cost driver.
};

/// One candidate merging factor's full evaluation.
struct CandidatePlan {
  uint32_t MergingFactor = 0; ///< The paper's M (0 = all rules, one MFSA).
  uint32_t NumGroups = 0;     ///< K = ⌈N/M⌉ MFSAs.
  /// Group reports the estimates aggregate over (group-sequential
  /// execution sums costs).
  std::vector<CostReport> Groups;
  std::vector<EngineCostEstimate> Engines;
  Engine Best = Engine::ImfantDense;
  double BestNsPerByte = 0.0;
};

/// The planner's decision plus its full trace.
struct EnginePlan {
  Engine Choice = Engine::ImfantDense;
  uint32_t MergingFactor = 0;
  uint32_t Stride = 1; ///< 2 iff Choice == StridedDfa.
  /// Input-parallel dimension (engine/InputParallel.h): the chunk count the
  /// caller asked to split each input into (PlannerOptions::InputThreads),
  /// and whether the planner actually recommends it for the chosen engine.
  /// Enabled only when the engine has an input-parallel executor (dense
  /// iMFAnt, DFA, stride-2 DFA) and — for the dense engine — the static
  /// width bound is exact, so the speculation fan-out (the population of
  /// WidthBound::ReachableStates) is a priced, bounded quantity rather than
  /// a guess. ParallelInputWhy records the reason either way.
  unsigned InputThreads = 1;
  bool ParallelInput = false;
  std::string ParallelInputWhy;
  std::vector<CandidatePlan> Candidates; ///< One per merging factor tried.
  double PlanWallMs = 0.0;

  /// The winning candidate's evaluation (always present after planning).
  const CandidatePlan *chosen() const;

  /// The `--explain-plan` JSON document (docs/performance.md documents the
  /// schema): decision, per-candidate cost-model facts, per-engine
  /// estimates with feasibility reasons.
  std::string explainJson() const;

  /// Publishes `analysis.cost.*` metrics: the chosen candidate's report
  /// plus plans/chosen_engine/plan_wall_ms.
  void recordTo(obs::MetricsRegistry &Registry) const;
};

/// Planner knobs.
struct PlannerOptions {
  /// Planning must stay orders of magnitude cheaper than scanning, so the
  /// analyzer budgets default lower here than CostOptions' own defaults:
  /// an exhausted width budget only degrades the sparse estimate to its
  /// pessimistic fallback, and a DFA probe needs few states to *prove* a
  /// blowup (completing under the smaller cap still implies the engine
  /// builder's far larger cap succeeds).
  PlannerOptions() {
    Cost.Width.MaxMacrostates = 1u << 10;
    Cost.Probe.MaxStates = 1u << 12;
  }

  CostCoefficients Coefficients;
  CostOptions Cost;
  /// Merging factors to trial (0 = all). planMfsas ignores this — its K is
  /// fixed by the Mfsas it is given.
  std::vector<uint32_t> CandidateFactors = {1, 50, 0};
  /// Cap on fully-analyzed groups per candidate: beyond it, an evenly
  /// spaced sample is analyzed and the summed cost terms are scaled by the
  /// real group count (a K=300 candidate would otherwise pay 300 width
  /// searches and DFA probes per plan).
  uint32_t MaxAnalyzedGroups = 8;
  /// Merge options for planRuleset's trial merges.
  MergeOptions Merge;
  /// Force a specific engine: the planner still evaluates every candidate
  /// (the explain trace shows what it would have picked) but the plan's
  /// Choice is pinned. Auto means "actually choose".
  Engine Force = Engine::Auto;
  /// Prefilter needs the source patterns at engine-construction time;
  /// callers without them (ANML-only loads) disable the candidate.
  bool AllowPrefilter = true;
  /// Requested input-parallel chunk count (imfant_run --input-threads).
  /// 1 disables the dimension; above 1 the planner decides per plan
  /// whether the chosen engine can speculate profitably (see
  /// EnginePlan::ParallelInput).
  unsigned InputThreads = 1;
};

/// Plans engine + stride for an already-merged ruleset (fixed merging
/// factor \p MergingFactor, purely descriptive). \p Patterns is the
/// original dataset ruleset indexed by GlobalIds; may be empty (disables
/// the prefilter candidate).
EnginePlan planMfsas(const std::vector<Mfsa> &Mfsas,
                     const std::vector<std::string> &Patterns,
                     uint32_t MergingFactor,
                     const PlannerOptions &Options = {});

/// Full plan over merge-ready per-rule FSAs: trial-merges every candidate
/// factor and picks (engine, K, stride). \p GlobalIds parallels
/// \p OptimizedFsas (dataset rule ids, as in CompileArtifacts).
EnginePlan planRuleset(const std::vector<Nfa> &OptimizedFsas,
                       const std::vector<uint32_t> &GlobalIds,
                       const std::vector<std::string> &Patterns,
                       const PlannerOptions &Options = {});

} // namespace mfsa

#endif // MFSA_ANALYSIS_PLANNER_H
