//===- CostModel.h - static cost & activation-width analyzer ----*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares the static analyzer behind the `Engine::Auto` planner
/// (analysis/Planner.h): everything the engine-selection decision needs,
/// computed from a compiled Mfsa before a single input byte is scanned.
///
/// Three facts are extracted, mirroring the three axes the ablation benches
/// show drive the engine crossover points (BENCH_abl_engine_variants):
///
///  (a) A *sound upper bound* on the worst-case simultaneous active-state
///      width (the paper's Table II pressure), via antichain-pruned
///      reachability over the scanning macrostate system — the same
///      fixpoint style as the PR 5 inclusion prover (analysis/Inclusion.h),
///      here searching ⊆-maximal reachable frontiers instead of ⊆-minimal
///      counterexample candidates. Soundness argument: the successor map
///      S ↦ Inject(atom) ∪ post(S, atom) is monotone in S, so pruning any
///      discovered frontier that is ⊆ an already-kept one preserves, by
///      induction, the invariant that every truly reachable frontier is a
///      subset of some kept frontier; max |S| over kept frontiers therefore
///      bounds the engine's observed frontier, and the per-state
///      possible-rule union bounds |∪ J(q)| the same way. The differential
///      harness asserts exactly this against RunStats on every seeded case.
///
///  (b) DFA and stride-2 blowup estimates by *budgeted subset-construction
///      probing*: run the real scanning determinization (fsa/Determinize.h)
///      with a small state budget and record either the exact DFA size or
///      the proven fact that it exceeds the budget ("blowup before budget",
///      the Insomnia/Amnesia taxonomy's state-explosion symptom).
///
///  (c) Literal density / prefilterability scoring for the Aho-Corasick
///      path (fsa/LiteralAnalysis.h): how many rules carry a usable
///      mandatory literal, how long the literals are, and whether the
///      root-skip byte-set scan stays narrow.
///
/// Everything is pure analysis over `Mfsa` + (optionally) the source
/// patterns; no engine is constructed, so the analysis layer keeps its
/// core/fsa/regex-only dependency set.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_ANALYSIS_COSTMODEL_H
#define MFSA_ANALYSIS_COSTMODEL_H

#include "mfsa/Mfsa.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mfsa {

namespace obs {
class MetricsRegistry;
} // namespace obs

/// Resource knobs for the activation-width search.
struct WidthOptions {
  /// Cap on macrostates admitted to the antichain search. When the budget
  /// is exhausted the bound degrades to the trivial (still sound)
  /// all-states/all-rules bound and Exact flips off. 0 means unlimited.
  uint64_t MaxMacrostates = 1u << 12;
};

/// Sound upper bound on worst-case simultaneous activation width.
struct WidthBound {
  /// Max simultaneously active states any input can reach (bounds the
  /// engine's frontier |NextTouched|, RunStats::MaxFrontier).
  uint32_t MaxActiveStates = 0;
  /// Max simultaneously active rules |∪ J(q)| (Table II's peak,
  /// RunStats::MaxActiveRules).
  uint32_t MaxActiveRules = 0;
  /// True when the fixpoint completed within MaxMacrostates: the bound is
  /// the exact maximum of the (over-approximating) macrostate system.
  /// False means the search was cut and the trivial bound was substituted.
  bool Exact = false;
  uint64_t MacrostatesExplored = 0;
  uint64_t AntichainPeak = 0;
  double WallMs = 0.0;
  /// Union of every reachable macrostate (numStates bits): a sound
  /// over-approximation of the states that can ever be active mid-stream.
  /// The input-parallel executor (engine/InputParallel.h) seeds its
  /// speculative chunk frontiers from exactly this set, and the planner
  /// prices the speculation fan-out by its population. When the search was
  /// budgeted, every bit is set (trivially sound).
  DynamicBitset ReachableStates;
};

/// Computes a sound activation-width bound for \p Z (see file comment).
WidthBound boundActivationWidth(const Mfsa &Z, const WidthOptions &Options = {});

/// Resource knobs for the determinization probe.
struct DfaProbeOptions {
  /// Subset-construction state budget. Far below DeterminizeOptions'
  /// default — the probe wants a cheap verdict, not a usable DFA.
  uint32_t MaxStates = 1u << 14;
  /// Stride-2 table ceiling (entries = states × atom-pairs), matching
  /// StrideOptions::MaxTableEntries.
  uint64_t MaxStride2Entries = 1u << 26;
};

/// Outcome of the budgeted determinization probe.
struct DfaEstimate {
  /// True when subset construction finished: DfaStates/NumAtoms are exact.
  /// False is the proven blowup-before-budget fact; DfaStates then holds
  /// the budget floor (the real DFA has at least that many states).
  bool Completed = false;
  uint32_t DfaStates = 0;
  uint32_t NumAtoms = 0;
  /// Estimated stride-2 table entries (DfaStates × NumAtoms²; the real
  /// pair alphabet is never larger).
  uint64_t Stride2Entries = 0;
  bool Stride2Feasible = false;
  double WallMs = 0.0;
};

/// Probes DFA blowup for \p Z by determinizing its extracted per-rule
/// automata under Options.MaxStates.
DfaEstimate probeDfaBlowup(const Mfsa &Z, const DfaProbeOptions &Options = {});

/// Aggregate literal/prefilterability profile of a ruleset.
struct LiteralProfile {
  uint32_t TotalRules = 0;
  uint32_t PrefilterableRules = 0;
  double PrefilterableFraction = 0.0; ///< PrefilterableRules / TotalRules.
  double AvgLiteralLength = 0.0;      ///< Over prefilterable rules only.
  /// Distinct first bytes over the mandatory literals: ≤ 8 keeps the AC
  /// root-skip SIMD scan on its narrow byte-set fast path.
  uint32_t DistinctFirstBytes = 0;
  bool RootSkipViable = false;
  /// Per-rule verdicts indexed like Z's local rules (empty when no
  /// patterns were supplied).
  std::vector<uint8_t> RulePrefilterable;
};

/// Scores the AC-prefilter path for \p Z. \p Patterns is the original
/// dataset ruleset, indexed by the rules' GlobalIds; when empty (e.g. an
/// ANML-only load) the profile reports zero density and the planner
/// disables the prefilter candidate.
LiteralProfile profileLiterals(const Mfsa &Z,
                               const std::vector<std::string> &Patterns,
                               uint32_t MinLiteralLength = 3);

/// Structural size facts the cost formulas consume directly.
struct MfsaShape {
  uint32_t NumStates = 0;
  uint32_t NumRules = 0;
  uint64_t NumTransitions = 0;
  /// Expected per-symbol transition-table row length under a uniform byte
  /// prior: Σ_t |label(t)| / 256 — the dense engine's per-byte work.
  double AvgTableRow = 0.0;
  double AvgOutDegree = 0.0; ///< Transitions / states.
  uint32_t BelWords = 0;     ///< 64-bit words per rule bitset.
};

/// Computes the structural shape of \p Z.
MfsaShape computeShape(const Mfsa &Z);

/// Knobs for the combined analysis.
struct CostOptions {
  WidthOptions Width;
  DfaProbeOptions Probe;
  uint32_t MinLiteralLength = 3;
};

/// The combined static-analysis report for one Mfsa.
struct CostReport {
  MfsaShape Shape;
  WidthBound Width;
  DfaEstimate Dfa;
  LiteralProfile Literals;

  /// Publishes `analysis.cost.*` gauges/counters into \p Registry.
  void recordTo(obs::MetricsRegistry &Registry) const;
};

/// Runs all three analyses over \p Z (see the individual entry points).
CostReport analyzeCost(const Mfsa &Z, const std::vector<std::string> &Patterns,
                       const CostOptions &Options = {});

} // namespace mfsa

#endif // MFSA_ANALYSIS_COSTMODEL_H
