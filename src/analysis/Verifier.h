//===- Verifier.h - multi-level IR verifier ---------------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares the structural verifier for the pipeline's IR levels (paper
/// §IV / Fig. 4). The compiler lowers rulesets through four representations
/// — regex AST, ε-NFA, optimized FSA, merged MFSA — and each lowering
/// promises invariants the next stage (and ultimately the iMFAnt engine)
/// relies on. The verifier checks them cheaply and reports violations as
/// positioned diagnostics, LLVM-verifier style: it never mutates, never
/// crashes on corrupt input, and finds *every* violation rather than
/// stopping at the first.
///
/// Invariants per level (docs/static-analysis.md has the full catalog):
///
///   RawNfa (post Thompson construction, §IV-B)
///     - at least one state; initial state in range
///     - every transition endpoint in range; every final state in range
///     - ε-arcs permitted (removed by stage 3)
///
///   OptimizedFsa (post single-FSA optimization, §IV-C)
///     - all RawNfa checks
///     - ε-freedom: every label non-empty
///     - canonical COO: transitions sorted by (From, To, Label), deduplicated;
///       finals sorted and deduplicated (canonicalize() postcondition)
///     - compaction: every state reachable from the initial state and
///       co-reachable to a final state (empty-language automata collapse to
///       exactly one state with no transitions)
///
///   Mfsa (post Algorithm-1 merging, §III, Eq. 10)
///     - every transition endpoint in range; labels non-empty (ε-free)
///     - every belonging set exactly numRules() wide (bel ⊆ R) and non-empty
///     - parallel (From, To, Label) duplicates coalesced (J-consistency: a
///       duplicate arc would double-count activations)
///     - per-rule initial and final states in range (I/F consistency)
///     - per-rule connectivity: every transition owned by rule j is reachable
///       from j's initial state inside j's own sub-automaton (the Merge
///       relabeling is injective, so a disconnected bel-j arc means the
///       relabel map was corrupted)
///     - per-rule GlobalIds pairwise distinct (match attribution)
///
/// Each checker appends findings to a DiagnosticEngine and returns true when
/// the object is clean. The *Error convenience wrappers return the first
/// error rendered as a string (empty = clean) for Result-style call sites.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_ANALYSIS_VERIFIER_H
#define MFSA_ANALYSIS_VERIFIER_H

#include "analysis/Diagnostics.h"
#include "fsa/Nfa.h"
#include "mfsa/Mfsa.h"

namespace mfsa {

/// Which lowering the automaton claims to have completed; selects the
/// invariant set verifyNfa enforces.
enum class IrLevel : uint8_t {
  RawNfa,       ///< Stage-2 output: ε-arcs allowed, no canonical form.
  OptimizedFsa, ///< Stage-3 output: ε-free, canonical, compacted.
};

/// Human-readable IR level name ("raw-nfa", "optimized-fsa").
const char *irLevelName(IrLevel Level);

/// Verifies \p A against the invariants of \p Level, appending every
/// violation to \p Diags. \p RuleIndex, when not kNoRule, tags findings with
/// the rule the automaton belongs to. \returns true when clean.
bool verifyNfa(const Nfa &A, IrLevel Level, DiagnosticEngine &Diags,
               uint32_t RuleIndex = SourceSpan::kNoRule);

/// Verifies the merged MFSA invariants of Eq. 10 (see file comment),
/// appending every violation to \p Diags. \returns true when clean.
bool verifyMfsa(const Mfsa &Z, DiagnosticEngine &Diags);

/// First-error wrappers: run the checker and return the first error finding
/// rendered as one line, or the empty string when the object verifies.
std::string verifyNfaError(const Nfa &A, IrLevel Level);
std::string verifyMfsaError(const Mfsa &Z);

} // namespace mfsa

#endif // MFSA_ANALYSIS_VERIFIER_H
