//===- TranslationValidate.cpp - per-pass equivalence proofs -----------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/TranslationValidate.h"

#include <cstdio>

using namespace mfsa;

std::string mfsa::renderWord(const std::string &Word) {
  std::string Out = "\"";
  for (unsigned char C : Word) {
    if (C >= 0x20 && C < 0x7f && C != '"' && C != '\\') {
      Out += static_cast<char>(C);
    } else {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\x%02x", C);
      Out += Buf;
    }
  }
  Out += "\"";
  return Out;
}

namespace {

/// Severity-independent helper: builds and reports one validation finding.
void reportFinding(DiagnosticEngine &Diags, Severity Sev, std::string CheckId,
                   std::string Message, SourceSpan Span,
                   const std::string *Counterexample = nullptr,
                   std::string FixHint = {}) {
  Finding F;
  F.Sev = Sev;
  F.CheckId = std::move(CheckId);
  F.Message = std::move(Message);
  F.Span = Span;
  F.FixHint = std::move(FixHint);
  F.Method = "exact";
  if (Counterexample) {
    F.Counterexample = *Counterexample;
    F.HasCounterexample = true;
  }
  Diags.report(std::move(F));
}

/// Shared proof driver for the pass and merge entry points. \p Subject
/// names the transformation in messages ("pass 'remove-epsilons'" /
/// "merge projection of rule 3"); \p FailCheck / \p InconclusiveCheck pick
/// the catalog ids. \returns false iff refuted.
bool validateEquivalence(const Nfa &Before, const Nfa &After,
                         const std::string &Subject,
                         const char *FailCheck, const char *AnchorCheck,
                         const char *InconclusiveCheck, SourceSpan Span,
                         const ValidateOptions &Options,
                         DiagnosticEngine &Diags, ValidateStats *Stats) {
  ValidateStats Local;
  ValidateStats &S = Stats ? *Stats : Local;

  if (Before.anchoredStart() != After.anchoredStart() ||
      Before.anchoredEnd() != After.anchoredEnd()) {
    ++S.Failures;
    reportFinding(Diags, Severity::Error, AnchorCheck,
                  Subject + " changed the anchor flags (before ^" +
                      std::to_string(Before.anchoredStart()) + "$" +
                      std::to_string(Before.anchoredEnd()) + ", after ^" +
                      std::to_string(After.anchoredStart()) + "$" +
                      std::to_string(After.anchoredEnd()) + ")",
                  Span);
    return false;
  }

  if (Options.MaxProofStates != 0 &&
      (Before.numStates() > Options.MaxProofStates ||
       After.numStates() > Options.MaxProofStates)) {
    ++S.Skipped;
    return true; // Not proven wrong; counted so coverage gaps are visible.
  }

  const EquivalenceResult Proof =
      checkEquivalence(Before, After, Options.Inclusion);
  S.absorb(Proof.AInB.Stats);
  S.absorb(Proof.BInA.Stats);

  if (Proof.equal()) {
    ++S.Proofs;
    return true;
  }

  if (!Proof.conclusive()) {
    ++S.Inconclusive;
    reportFinding(Diags, Severity::Note, InconclusiveCheck,
                  Subject + ": equivalence proof hit the macrostate cutoff (" +
                      std::to_string(Options.Inclusion.MaxMacrostates) +
                      "); language preservation is unverified",
                  Span, nullptr,
                  "raise the cutoff or rely on the differential harness for "
                  "this rule");
    return true;
  }

  // Refuted. The witness is accepted by exactly one side according to the
  // prover; replay it through the independent whole-word oracle so the
  // report distinguishes a real miscompile from a prover bug.
  const InclusionResult *Cex = Proof.counterexample();
  const bool WitnessInBefore = Cex == &Proof.AInB; // A=Before ⊆ B=After side.
  const std::string &Word = Cex->Counterexample;

  if (Options.ReplayCounterexamples) {
    const bool InBefore = acceptsWord(Before, Word);
    const bool InAfter = acceptsWord(After, Word);
    const bool Confirmed =
        InBefore != InAfter && InBefore == WitnessInBefore;
    if (!Confirmed) {
      ++S.Failures;
      reportFinding(
          Diags, Severity::Error, "validate.replay.diverged",
          Subject + ": prover found counterexample " + renderWord(Word) +
              " but oracle replay disagrees (oracle: before=" +
              std::to_string(InBefore) + " after=" + std::to_string(InAfter) +
              ") — inclusion checker bug, not a miscompile",
          Span, &Word);
      return false;
    }
  }

  ++S.Failures;
  reportFinding(Diags, Severity::Error, FailCheck,
                Subject + " changed the language: " + renderWord(Word) +
                    (WitnessInBefore ? " is accepted before but not after"
                                     : " is accepted after but not before") +
                    (Options.ReplayCounterexamples
                         ? " (confirmed by oracle replay)"
                         : ""),
                Span, &Word);
  return false;
}

} // namespace

bool mfsa::validatePassEquivalence(const Nfa &Before, const Nfa &After,
                                   const char *PassName, uint32_t RuleIndex,
                                   const ValidateOptions &Options,
                                   DiagnosticEngine &Diags,
                                   ValidateStats *Stats) {
  SourceSpan Span;
  if (RuleIndex != SourceSpan::kNoRule)
    Span = SourceSpan::forRule(RuleIndex);
  return validateEquivalence(Before, After,
                             std::string("pass '") + PassName + "'",
                             "validate.pass.language-changed",
                             "validate.pass.anchor-changed",
                             "validate.pass.inconclusive", Span, Options,
                             Diags, Stats);
}

std::string mfsa::validatePassEquivalenceError(const Nfa &Before,
                                               const Nfa &After,
                                               const char *PassName,
                                               const ValidateOptions &Options,
                                               ValidateStats *Stats) {
  DiagnosticEngine Diags;
  if (validatePassEquivalence(Before, After, PassName, SourceSpan::kNoRule,
                              Options, Diags, Stats))
    return {};
  for (const Finding &F : Diags.findings())
    if (F.Sev == Severity::Error)
      return F.Message + " [" + F.CheckId + "]";
  return "translation validation failed";
}

bool mfsa::validateMergeProjection(const Mfsa &Z,
                                   const std::vector<Nfa> &Inputs,
                                   const ValidateOptions &Options,
                                   DiagnosticEngine &Diags,
                                   ValidateStats *Stats) {
  bool Ok = true;
  const uint32_t NumRules =
      Inputs.size() < Z.numRules() ? static_cast<uint32_t>(Inputs.size())
                                   : Z.numRules();
  for (RuleId Id = 0; Id < NumRules; ++Id) {
    const Nfa Projection = Z.extractRule(Id);
    const uint32_t GlobalId = Z.rule(Id).GlobalId;
    if (!validateEquivalence(
            Inputs[Id], Projection,
            "merge projection of rule " + std::to_string(GlobalId),
            "validate.merge.projection-changed",
            "validate.merge.anchor-changed", "validate.merge.inconclusive",
            SourceSpan::forRule(GlobalId), Options, Diags, Stats))
      Ok = false;
  }
  return Ok;
}

std::string mfsa::validateMergeProjectionError(const Mfsa &Z,
                                               const std::vector<Nfa> &Inputs,
                                               const ValidateOptions &Options,
                                               ValidateStats *Stats) {
  DiagnosticEngine Diags;
  if (validateMergeProjection(Z, Inputs, Options, Diags, Stats))
    return {};
  for (const Finding &F : Diags.findings())
    if (F.Sev == Severity::Error)
      return F.Message + " [" + F.CheckId + "]";
  return "translation validation failed";
}
