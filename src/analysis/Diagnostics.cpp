//===- Diagnostics.cpp - shared static-analysis diagnostics -----------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/Diagnostics.h"

#include <cstdio>

using namespace mfsa;

const char *mfsa::severityName(Severity Sev) {
  switch (Sev) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  return "unknown";
}

std::string SourceSpan::render() const {
  std::string Out;
  if (hasRule())
    Out += "rule " + std::to_string(Rule);
  if (hasOffset()) {
    if (!Out.empty())
      Out += ", ";
    Out += "offset " + std::to_string(Offset);
  }
  if (hasElement()) {
    if (!Out.empty())
      Out += ", ";
    Out += "element " + std::to_string(Element);
  }
  return Out;
}

void DiagnosticEngine::report(Finding F) {
  if (F.Sev == Severity::Error)
    ++NumErrors;
  else if (F.Sev == Severity::Warning)
    ++NumWarnings;
  Findings.push_back(std::move(F));
}

void DiagnosticEngine::report(Severity Sev, std::string CheckId,
                              std::string Message, SourceSpan Span,
                              std::string FixHint) {
  Finding F;
  F.Sev = Sev;
  F.CheckId = std::move(CheckId);
  F.Message = std::move(Message);
  F.Span = Span;
  F.FixHint = std::move(FixHint);
  report(std::move(F));
}

void DiagnosticEngine::clear() {
  Findings.clear();
  NumErrors = 0;
  NumWarnings = 0;
}

std::string DiagnosticEngine::renderText() const {
  std::string Out;
  for (const Finding &F : Findings) {
    Out += severityName(F.Sev);
    Out += ": ";
    std::string Where = F.Span.render();
    if (!Where.empty()) {
      Out += Where;
      Out += ": ";
    }
    Out += F.Message;
    if (!F.FixHint.empty()) {
      Out += " (hint: ";
      Out += F.FixHint;
      Out += ")";
    }
    Out += " [";
    Out += F.CheckId;
    Out += "]\n";
  }
  return Out;
}

std::string mfsa::jsonEscape(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (unsigned char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

std::string DiagnosticEngine::renderJson() const {
  std::string Out = "{\"findings\":[";
  for (size_t I = 0; I < Findings.size(); ++I) {
    const Finding &F = Findings[I];
    if (I)
      Out += ",";
    Out += "{\"severity\":\"";
    Out += severityName(F.Sev);
    Out += "\",\"check\":\"";
    Out += jsonEscape(F.CheckId);
    Out += "\",\"message\":\"";
    Out += jsonEscape(F.Message);
    Out += "\"";
    if (F.Span.hasRule())
      Out += ",\"rule\":" + std::to_string(F.Span.Rule);
    if (F.Span.hasOffset())
      Out += ",\"offset\":" + std::to_string(F.Span.Offset);
    if (F.Span.hasElement())
      Out += ",\"element\":" + std::to_string(F.Span.Element);
    if (!F.Method.empty()) {
      Out += ",\"method\":\"";
      Out += jsonEscape(F.Method);
      Out += "\"";
    }
    if (F.HasCounterexample) {
      Out += ",\"counterexample\":\"";
      Out += jsonEscape(F.Counterexample);
      Out += "\"";
    }
    if (!F.FixHint.empty()) {
      Out += ",\"hint\":\"";
      Out += jsonEscape(F.FixHint);
      Out += "\"";
    }
    Out += "}";
  }
  Out += "],\"errors\":" + std::to_string(NumErrors) +
         ",\"warnings\":" + std::to_string(NumWarnings) + "}";
  return Out;
}
