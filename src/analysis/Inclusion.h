//===- Inclusion.h - antichain language-inclusion prover --------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares an exact language-inclusion decision procedure for the Nfa model,
/// following the antichain algorithm of De Wulf, Doyen, Henzinger & Raskin
/// ("Antichains: A New Algorithm for Checking Universality of Finite
/// Automata", CAV 2006), in the forward formulation the Mata library
/// (Chocholatý et al. 2023) showed practical on exactly this class of NFAs.
///
/// checkInclusion(A, B) decides L(A) ⊆ L(B) by a forward product search of
/// pairs (p, S): p a state of A the spoiler can reach on some word w, S the
/// full macrostate (subset of B's states, as in determinization) reachable
/// on w. A pair with p final and S ∩ F_B = ∅ witnesses a word in L(A)\L(B);
/// if no such pair is reachable the inclusion holds. The antichain insight
/// keeps the search small: a stored pair (p, T) with T ⊆ S makes any new
/// (p, S) redundant — whatever violation S can still reach, the smaller
/// (stronger) macrostate T reaches too — so only ⊆-minimal macrostates per
/// A-state are retained. The alphabet is first reduced to the partition
/// atoms induced by both automata (fsa/AlphabetPartition.h), so the per-pair
/// branching factor is the number of distinct symbol classes, not 256.
///
/// Both operands may contain ε-arcs (the prover closes over them natively),
/// so raw stage-2 Thompson automata are directly comparable against their
/// optimized forms. Anchors are NOT part of the language; callers comparing
/// rule semantics must compare anchor flags separately (translation
/// validation does).
///
/// The search is breadth-first, so the extracted counterexample is a
/// shortest word in the language difference.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_ANALYSIS_INCLUSION_H
#define MFSA_ANALYSIS_INCLUSION_H

#include "fsa/Nfa.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace mfsa {

/// Outcome of one inclusion query.
enum class InclusionStatus : uint8_t {
  Included,      ///< Proven: L(A) ⊆ L(B).
  NotIncluded,   ///< Refuted, with a witness word in L(A) \ L(B).
  ResourceLimit, ///< The antichain search hit MaxMacrostates; undecided.
};

/// Resource knobs for one inclusion query.
struct InclusionOptions {
  /// Cap on (p, S) pairs admitted to the search frontier (after antichain
  /// pruning). The antichain bound is exponential only in pathological
  /// cases; rule-sized automata typically explore a few hundred pairs.
  /// 0 means unlimited.
  uint64_t MaxMacrostates = 1u << 16;
};

/// Cost accounting for one inclusion query, exported through the
/// `analysis.inclusion.*` metrics.
struct InclusionStats {
  uint64_t MacrostatesExplored = 0; ///< (p, S) pairs admitted to the search.
  uint64_t AntichainPeak = 0;       ///< Max ⊆-minimal pairs alive at once.
  double WallMs = 0.0;
};

/// Result of checkInclusion.
struct InclusionResult {
  InclusionStatus Status = InclusionStatus::Included;
  /// A shortest word in L(A) \ L(B); meaningful iff NotIncluded. May be
  /// empty (the ε word) and may contain arbitrary bytes.
  std::string Counterexample;
  InclusionStats Stats;

  bool included() const { return Status == InclusionStatus::Included; }
  bool conclusive() const {
    return Status != InclusionStatus::ResourceLimit;
  }
};

/// Decides L(A) ⊆ L(B). Anchor flags are ignored; ε-arcs are handled.
InclusionResult checkInclusion(const Nfa &A, const Nfa &B,
                               const InclusionOptions &Options = {});

/// Outcome of one equivalence query (both inclusion directions).
enum class EquivalenceStatus : uint8_t {
  Equal,         ///< Proven: L(A) == L(B).
  NotEqual,      ///< Refuted; counterexample() locates the witness.
  ResourceLimit, ///< At least one direction was undecided, neither refuted.
};

/// Result of checkEquivalence. Both directions always run (a refuted
/// direction still leaves the other's verdict meaningful — lint uses
/// one-sided inclusions as exact subsumption evidence).
struct EquivalenceResult {
  EquivalenceStatus Status = EquivalenceStatus::Equal;
  InclusionResult AInB; ///< L(A) ⊆ L(B) query.
  InclusionResult BInA; ///< L(B) ⊆ L(A) query.

  bool equal() const { return Status == EquivalenceStatus::Equal; }
  bool conclusive() const {
    return Status != EquivalenceStatus::ResourceLimit;
  }

  /// The refuted direction's result (AInB preferred when both failed), or
  /// nullptr when no direction was refuted. The witness word is accepted by
  /// exactly one operand: by A if the returned pointer is &AInB, by B if it
  /// is &BInA.
  const InclusionResult *counterexample() const {
    if (AInB.Status == InclusionStatus::NotIncluded)
      return &AInB;
    if (BInA.Status == InclusionStatus::NotIncluded)
      return &BInA;
    return nullptr;
  }
};

/// Decides L(A) == L(B) by proving both inclusions.
EquivalenceResult checkEquivalence(const Nfa &A, const Nfa &B,
                                   const InclusionOptions &Options = {});

/// Whole-word acceptance oracle: true iff \p Word ∈ L(A), by direct
/// ε-closure simulation. Independent of the antichain search, so replaying
/// a counterexample through it confirms a refutation is a real language
/// difference rather than a prover bug. Anchors are ignored, matching the
/// prover's language view.
bool acceptsWord(const Nfa &A, std::string_view Word);

} // namespace mfsa

#endif // MFSA_ANALYSIS_INCLUSION_H
