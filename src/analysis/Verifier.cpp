//===- Verifier.cpp - multi-level IR verifier -------------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Every check is written defensively: a corrupt automaton must produce a
// positioned finding, never an out-of-range access. Index validity is
// therefore established before any derived check (reachability, belonging
// lookups) uses the index; derived checks skip elements whose indices were
// already reported invalid.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"

#include <algorithm>
#include <queue>

using namespace mfsa;

const char *mfsa::irLevelName(IrLevel Level) {
  switch (Level) {
  case IrLevel::RawNfa:
    return "raw-nfa";
  case IrLevel::OptimizedFsa:
    return "optimized-fsa";
  }
  return "unknown";
}

namespace {

/// Forward BFS over in-range transitions from \p Start.
std::vector<bool> reachableFrom(uint32_t NumStates,
                                const std::vector<Transition> &Transitions,
                                StateId Start) {
  std::vector<bool> Seen(NumStates, false);
  if (Start >= NumStates)
    return Seen;
  std::vector<std::vector<StateId>> Out(NumStates);
  for (const Transition &T : Transitions)
    if (T.From < NumStates && T.To < NumStates)
      Out[T.From].push_back(T.To);
  std::queue<StateId> Work;
  Work.push(Start);
  Seen[Start] = true;
  while (!Work.empty()) {
    StateId Q = Work.front();
    Work.pop();
    for (StateId S : Out[Q])
      if (!Seen[S]) {
        Seen[S] = true;
        Work.push(S);
      }
  }
  return Seen;
}

/// Backward BFS from every in-range final state.
std::vector<bool> coReachable(uint32_t NumStates,
                              const std::vector<Transition> &Transitions,
                              const std::vector<StateId> &Finals) {
  std::vector<bool> Seen(NumStates, false);
  std::vector<std::vector<StateId>> In(NumStates);
  for (const Transition &T : Transitions)
    if (T.From < NumStates && T.To < NumStates)
      In[T.To].push_back(T.From);
  std::queue<StateId> Work;
  for (StateId F : Finals)
    if (F < NumStates && !Seen[F]) {
      Seen[F] = true;
      Work.push(F);
    }
  while (!Work.empty()) {
    StateId Q = Work.front();
    Work.pop();
    for (StateId S : In[Q])
      if (!Seen[S]) {
        Seen[S] = true;
        Work.push(S);
      }
  }
  return Seen;
}

} // namespace

bool mfsa::verifyNfa(const Nfa &A, IrLevel Level, DiagnosticEngine &Diags,
                     uint32_t RuleIndex) {
  const size_t Before = Diags.numErrors();
  auto Span = [&](size_t Element) {
    SourceSpan S;
    S.Rule = RuleIndex;
    S.Element = Element;
    return S;
  };
  auto WholeSpan = [&] {
    SourceSpan S;
    S.Rule = RuleIndex;
    return S;
  };
  const uint32_t N = A.numStates();

  if (N == 0) {
    Diags.report(Severity::Error, "verify.nfa.empty",
                 "automaton has no states", WholeSpan(),
                 "every automaton needs at least an initial state");
    return false; // Nothing else is meaningful.
  }

  if (A.initial() >= N)
    Diags.report(Severity::Error, "verify.nfa.initial-range",
                 "initial state " + std::to_string(A.initial()) +
                     " out of range (automaton has " + std::to_string(N) +
                     " states)",
                 WholeSpan());

  bool IndicesOk = A.initial() < N;
  const std::vector<Transition> &Ts = A.transitions();
  for (size_t I = 0; I < Ts.size(); ++I) {
    const Transition &T = Ts[I];
    if (T.From >= N) {
      Diags.report(Severity::Error, "verify.nfa.transition-source",
                   "transition source state " + std::to_string(T.From) +
                       " out of range",
                   Span(I));
      IndicesOk = false;
    }
    if (T.To >= N) {
      Diags.report(Severity::Error, "verify.nfa.transition-target",
                   "transition target state " + std::to_string(T.To) +
                       " out of range (dangling arc)",
                   Span(I));
      IndicesOk = false;
    }
    if (Level == IrLevel::OptimizedFsa && T.Label.empty())
      Diags.report(Severity::Error, "verify.nfa.epsilon",
                   "ε-labeled transition survives single-FSA optimization",
                   Span(I), "run removeEpsilons() before merging");
  }

  for (size_t I = 0; I < A.finals().size(); ++I)
    if (A.finals()[I] >= N) {
      Diags.report(Severity::Error, "verify.nfa.final-range",
                   "final state " + std::to_string(A.finals()[I]) +
                       " out of range",
                   Span(I));
      IndicesOk = false;
    }

  if (Level == IrLevel::OptimizedFsa) {
    // Canonical-form postconditions of Nfa::canonicalize(): the COO triple
    // list strictly sorted (sorted + deduplicated), finals likewise.
    for (size_t I = 1; I < Ts.size(); ++I) {
      if (Ts[I] < Ts[I - 1]) {
        Diags.report(Severity::Error, "verify.nfa.coo-order",
                     "transitions not in canonical (From, To, Label) order",
                     Span(I), "call canonicalize() after mutating");
        break;
      }
      if (Ts[I] == Ts[I - 1]) {
        Diags.report(Severity::Error, "verify.nfa.coo-duplicate",
                     "duplicate transition", Span(I),
                     "call canonicalize() after mutating");
        break;
      }
    }
    for (size_t I = 1; I < A.finals().size(); ++I)
      if (A.finals()[I] <= A.finals()[I - 1]) {
        Diags.report(Severity::Error, "verify.nfa.final-order",
                     "final states not sorted and deduplicated", Span(I));
        break;
      }

    // Compaction: no unreachable and no dead state. compactReachable()
    // collapses an empty-language automaton to one transition-less state, so
    // a final-less automaton is only legal in exactly that shape.
    if (IndicesOk) {
      if (A.finals().empty()) {
        if (N != 1 || !Ts.empty())
          Diags.report(Severity::Error, "verify.nfa.dead-state",
                       "automaton has no final states but is not the "
                       "single-state empty-language form",
                       WholeSpan(), "run compactReachable()");
      } else {
        std::vector<bool> Fwd = reachableFrom(N, Ts, A.initial());
        std::vector<bool> Bwd = coReachable(N, Ts, A.finals());
        for (StateId Q = 0; Q < N; ++Q) {
          if (!Fwd[Q]) {
            Diags.report(Severity::Error, "verify.nfa.unreachable-state",
                         "state " + std::to_string(Q) +
                             " unreachable from the initial state",
                         Span(Q), "run compactReachable()");
          } else if (!Bwd[Q]) {
            Diags.report(Severity::Error, "verify.nfa.dead-state",
                         "state " + std::to_string(Q) +
                             " cannot reach a final state",
                         Span(Q), "run compactReachable()");
          }
        }
      }
    }
  }

  return Diags.numErrors() == Before;
}

bool mfsa::verifyMfsa(const Mfsa &Z, DiagnosticEngine &Diags) {
  const size_t Before = Diags.numErrors();
  const uint32_t N = Z.numStates();
  const uint32_t R = Z.numRules();
  const std::vector<MfsaTransition> &Ts = Z.transitions();

  // Element-indexed structural checks. Index validity feeds the later
  // connectivity pass, which skips arcs already reported broken.
  std::vector<bool> ArcOk(Ts.size(), true);
  for (size_t I = 0; I < Ts.size(); ++I) {
    const MfsaTransition &T = Ts[I];
    if (T.From >= N) {
      Diags.report(Severity::Error, "verify.mfsa.transition-source",
                   "transition source state " + std::to_string(T.From) +
                       " out of range (automaton has " + std::to_string(N) +
                       " states)",
                   SourceSpan::forElement(I));
      ArcOk[I] = false;
    }
    if (T.To >= N) {
      Diags.report(Severity::Error, "verify.mfsa.transition-target",
                   "transition target state " + std::to_string(T.To) +
                       " out of range (dangling arc)",
                   SourceSpan::forElement(I));
      ArcOk[I] = false;
    }
    if (T.Label.empty())
      Diags.report(Severity::Error, "verify.mfsa.epsilon-label",
                   "MFSA transition carries an empty (ε) label",
                   SourceSpan::forElement(I));
    if (T.Bel.size() != R) {
      Diags.report(Severity::Error, "verify.mfsa.bel-width",
                   "belonging set is " + std::to_string(T.Bel.size()) +
                       " bits wide, expected " + std::to_string(R) +
                       " (one per registered rule)",
                   SourceSpan::forElement(I),
                   "belonging sets must be sized with Mfsa::makeBel()");
      ArcOk[I] = false; // Bel lookups on this arc are unsafe.
    } else if (T.Bel.none()) {
      Diags.report(Severity::Error, "verify.mfsa.bel-empty",
                   "transition belongs to no rule", SourceSpan::forElement(I),
                   "merging must drop arcs with empty belonging sets");
    }
  }

  // Coalescing: duplicate parallel arcs double-count activations (Eq. 4-6).
  {
    std::vector<size_t> Order(Ts.size());
    for (size_t I = 0; I < Order.size(); ++I)
      Order[I] = I;
    std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
      const MfsaTransition &X = Ts[A], &Y = Ts[B];
      if (X.From != Y.From)
        return X.From < Y.From;
      if (X.To != Y.To)
        return X.To < Y.To;
      return X.Label < Y.Label;
    });
    for (size_t I = 1; I < Order.size(); ++I) {
      const MfsaTransition &X = Ts[Order[I - 1]], &Y = Ts[Order[I]];
      if (X.From == Y.From && X.To == Y.To && X.Label == Y.Label)
        Diags.report(Severity::Error, "verify.mfsa.duplicate-arc",
                     "parallel transitions with identical (from, to, label) "
                     "were not coalesced",
                     SourceSpan::forElement(Order[I]),
                     "merge their belonging sets into one arc");
    }
  }

  // Per-rule metadata (I, F, provenance).
  std::vector<bool> RuleOk(R, true);
  for (RuleId Id = 0; Id < R; ++Id) {
    const Mfsa::RuleInfo &Info = Z.rule(Id);
    if (Info.Initial >= N) {
      Diags.report(Severity::Error, "verify.mfsa.rule-initial-range",
                   "rule " + std::to_string(Id) + " initial state " +
                       std::to_string(Info.Initial) + " out of range",
                   SourceSpan::forRule(Id));
      RuleOk[Id] = false;
    }
    for (StateId F : Info.Finals)
      if (F >= N) {
        Diags.report(Severity::Error, "verify.mfsa.rule-final-range",
                     "rule " + std::to_string(Id) + " final state " +
                         std::to_string(F) + " out of range",
                     SourceSpan::forRule(Id));
        RuleOk[Id] = false;
      }
  }

  // Match attribution: two rules sharing a GlobalId would merge their match
  // counters downstream.
  {
    std::vector<std::pair<uint32_t, RuleId>> Ids;
    Ids.reserve(R);
    for (RuleId Id = 0; Id < R; ++Id)
      Ids.emplace_back(Z.rule(Id).GlobalId, Id);
    std::sort(Ids.begin(), Ids.end());
    for (size_t I = 1; I < Ids.size(); ++I)
      if (Ids[I].first == Ids[I - 1].first)
        Diags.report(Severity::Error, "verify.mfsa.global-id-collision",
                     "rules " + std::to_string(Ids[I - 1].second) + " and " +
                         std::to_string(Ids[I].second) +
                         " share global id " + std::to_string(Ids[I].first),
                     SourceSpan::forRule(Ids[I].second));
  }

  // Per-rule connectivity: BFS from the rule's initial state over the arcs
  // whose belonging set contains the rule; every such arc must be reached.
  // An unreached arc means the Merge relabeling lost injectivity (or the
  // belonging set was corrupted), which silently changes the rule's language.
  for (RuleId Id = 0; Id < R; ++Id) {
    if (!RuleOk[Id])
      continue;
    std::vector<std::vector<StateId>> Out(N);
    bool Owns = false;
    for (size_t I = 0; I < Ts.size(); ++I)
      if (ArcOk[I] && Ts[I].Bel.test(Id)) {
        Out[Ts[I].From].push_back(Ts[I].To);
        Owns = true;
      }
    if (!Owns)
      continue; // Transition-less rule (empty language); legal.
    std::vector<bool> Seen(N, false);
    std::queue<StateId> Work;
    Work.push(Z.rule(Id).Initial);
    Seen[Z.rule(Id).Initial] = true;
    while (!Work.empty()) {
      StateId Q = Work.front();
      Work.pop();
      for (StateId S : Out[Q])
        if (!Seen[S]) {
          Seen[S] = true;
          Work.push(S);
        }
    }
    for (size_t I = 0; I < Ts.size(); ++I)
      if (ArcOk[I] && Ts[I].Bel.test(Id) && !Seen[Ts[I].From]) {
        SourceSpan Span = SourceSpan::forElement(I);
        Span.Rule = Id; // position on both the rule and the offending arc
        Diags.report(Severity::Error, "verify.mfsa.rule-disconnected",
                     "transition owned by rule " + std::to_string(Id) +
                         " is unreachable from the rule's initial state " +
                         std::to_string(Z.rule(Id).Initial),
                     Span,
                     "the merge relabeling corrupted this rule's "
                     "sub-automaton");
        break; // One finding per rule keeps reports readable.
      }
  }

  return Diags.numErrors() == Before;
}

std::string mfsa::verifyNfaError(const Nfa &A, IrLevel Level) {
  DiagnosticEngine Diags;
  if (verifyNfa(A, Level, Diags))
    return {};
  for (const Finding &F : Diags.findings())
    if (F.Sev == Severity::Error) {
      std::string Where = F.Span.render();
      return (Where.empty() ? "" : Where + ": ") + F.Message + " [" +
             F.CheckId + "]";
    }
  return "verification failed";
}

std::string mfsa::verifyMfsaError(const Mfsa &Z) {
  DiagnosticEngine Diags;
  if (verifyMfsa(Z, Diags))
    return {};
  for (const Finding &F : Diags.findings())
    if (F.Sev == Severity::Error) {
      std::string Where = F.Span.render();
      return (Where.empty() ? "" : Where + ": ") + F.Message + " [" +
             F.CheckId + "]";
    }
  return "verification failed";
}
