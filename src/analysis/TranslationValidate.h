//===- TranslationValidate.h - per-pass equivalence proofs ------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares translation validation for the compile pipeline: instead of
/// trusting each optimization pass and the Algorithm-1 merge, *prove* after
/// the fact that the transformation preserved the language, using the
/// antichain inclusion checker (Inclusion.h). Two entry points:
///
///   - validatePassEquivalence: L(Before) == L(After) for one single-FSA
///     pass application (ε-removal, multiplicity folding, bisimulation
///     merging, compaction, atom splitting). Anchor flags must also agree —
///     passes never touch them, so a flip is a pass bug.
///   - validateMergeProjection: the paper's central claim (§III-B, Eq. 10),
///     per rule r: L(project(MFSA, bel_r)) == L(FSA_r), with the projection
///     materialized by Mfsa::extractRule.
///
/// A failed proof produces a Finding carrying the (shortest) counterexample
/// word. Before reporting, the word is replayed through the independent
/// whole-word oracle (acceptsWord) on both automata; agreement between
/// prover and oracle means the failure self-confirms as a real miscompile.
/// If the oracle *disagrees* with the prover, the finding is downgraded to
/// `validate.replay.diverged` — the checker itself is buggy, which must
/// never be silently reported as a miscompile (or vice versa).
///
/// Check catalog (docs/static-analysis.md has the user-facing docs):
///
///   validate.pass.language-changed    a pass changed the language (error)
///   validate.pass.anchor-changed      a pass flipped an anchor flag (error)
///   validate.pass.inconclusive        proof hit the macrostate cutoff (note)
///   validate.merge.projection-changed the merged MFSA's bel-projection of a
///                                     rule differs from the rule's input
///                                     FSA (error)
///   validate.merge.anchor-changed     merge lost a rule's anchors (error)
///   validate.merge.inconclusive       projection proof hit the cutoff (note)
///   validate.replay.diverged          prover and replay oracle disagree on
///                                     the counterexample — a checker bug,
///                                     not a miscompile (error)
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_ANALYSIS_TRANSLATIONVALIDATE_H
#define MFSA_ANALYSIS_TRANSLATIONVALIDATE_H

#include "analysis/Diagnostics.h"
#include "analysis/Inclusion.h"
#include "fsa/Nfa.h"
#include "mfsa/Mfsa.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mfsa {

/// Knobs for one validation run.
struct ValidateOptions {
  /// Per-proof resource cap (see InclusionOptions).
  InclusionOptions Inclusion;

  /// Automata larger than this many states (on either side) are not proven;
  /// the proof is counted as skipped rather than attempted, since the
  /// antichain bound is worst-case exponential. 0 means no cutoff.
  uint32_t MaxProofStates = 4096;

  /// Replay counterexamples through the independent acceptsWord oracle
  /// before reporting (cheap; only runs on failed proofs).
  bool ReplayCounterexamples = true;
};

/// Aggregate cost/outcome accounting for a validation run, published as
/// `analysis.inclusion.*` metrics by the pipeline.
struct ValidateStats {
  uint64_t Proofs = 0;       ///< Equivalences proven.
  uint64_t Failures = 0;     ///< Refuted proofs (real miscompiles).
  uint64_t Inconclusive = 0; ///< Proofs that hit the macrostate cutoff.
  uint64_t Skipped = 0;      ///< Automata over MaxProofStates.
  uint64_t MacrostatesExplored = 0;
  uint64_t AntichainPeak = 0; ///< Max over individual proofs.
  double WallMs = 0.0;

  void absorb(const InclusionStats &S) {
    MacrostatesExplored += S.MacrostatesExplored;
    AntichainPeak = AntichainPeak > S.AntichainPeak ? AntichainPeak
                                                    : S.AntichainPeak;
    WallMs += S.WallMs;
  }
};

/// Renders \p Word for embedding in a diagnostic message: printable ASCII
/// kept, everything else as \xNN, the whole word quoted; ε renders as "".
std::string renderWord(const std::string &Word);

/// Proves L(Before) == L(After) (and anchor agreement) for one application
/// of pass \p PassName on rule \p RuleIndex (SourceSpan::kNoRule when the
/// rule is unknown). Failures and inconclusive proofs are reported to
/// \p Diags per the catalog above. \returns false iff the proof was refuted
/// (an inconclusive or skipped proof returns true: not proven wrong).
bool validatePassEquivalence(const Nfa &Before, const Nfa &After,
                             const char *PassName, uint32_t RuleIndex,
                             const ValidateOptions &Options,
                             DiagnosticEngine &Diags,
                             ValidateStats *Stats = nullptr);

/// validatePassEquivalence with the string-error calling convention the
/// pipeline's quarantine path uses (mirrors verifyNfaError): \returns the
/// first error finding's text, or an empty string when nothing was refuted.
std::string validatePassEquivalenceError(const Nfa &Before, const Nfa &After,
                                         const char *PassName,
                                         const ValidateOptions &Options,
                                         ValidateStats *Stats = nullptr);

/// Proves, for every rule r of \p Z, that the belonging-set projection
/// extractRule(r) accepts exactly L(\p Inputs[r]) (Eq. 10). \p Inputs is
/// parallel to Z's rule ids (the same vector mergeFsas consumed). Findings
/// reference the rules' GlobalIds. \returns false iff some projection proof
/// was refuted.
bool validateMergeProjection(const Mfsa &Z, const std::vector<Nfa> &Inputs,
                             const ValidateOptions &Options,
                             DiagnosticEngine &Diags,
                             ValidateStats *Stats = nullptr);

/// String-error wrapper of validateMergeProjection (see above).
std::string validateMergeProjectionError(const Mfsa &Z,
                                         const std::vector<Nfa> &Inputs,
                                         const ValidateOptions &Options,
                                         ValidateStats *Stats = nullptr);

} // namespace mfsa

#endif // MFSA_ANALYSIS_TRANSLATIONVALIDATE_H
