//===- Planner.cpp - Engine::Auto selection planner -----------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/Planner.h"

#include "obs/Metrics.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace mfsa {

const char *engineName(Engine E) {
  switch (E) {
  case Engine::Auto:
    return "auto";
  case Engine::ImfantDense:
    return "dense";
  case Engine::ImfantSparse:
    return "sparse";
  case Engine::Dfa:
    return "dfa";
  case Engine::StridedDfa:
    return "stride2";
  case Engine::Prefilter:
    return "prefilter";
  }
  return "auto";
}

bool engineFromName(std::string_view Name, Engine &Out) {
  for (Engine E : {Engine::Auto, Engine::ImfantDense, Engine::ImfantSparse,
                   Engine::Dfa, Engine::StridedDfa, Engine::Prefilter})
    if (Name == engineName(E)) {
      Out = E;
      return true;
    }
  return false;
}

namespace {

/// Bytes of the dense per-symbol table: ~12 bytes per (transition, symbol)
/// entry plus the belonging pool.
double denseFootprint(const CostReport &R) {
  return R.Shape.AvgTableRow * 256.0 * 12.0 +
         static_cast<double>(R.Shape.NumTransitions) * R.Shape.BelWords * 8.0;
}

double spillFactor(double Bytes, const CostCoefficients &C) {
  return Bytes > C.CacheBytes ? C.CacheSpillFactor : 1.0;
}

/// Evaluates every engine for one candidate configuration (a fixed set of
/// merged groups). Costs are summed over groups because execution is
/// group-sequential: each group's engine scans the whole input.
void estimateEngines(CandidatePlan &Cand, const LiteralProfile &Literals,
                     bool AllowPrefilter, const CostCoefficients &C) {
  double DenseNs = 0.0, SparseNs = 0.0, DfaNs = 0.0, Stride2Ns = 0.0;
  double DenseBytes = 0.0, DfaBytes = 0.0, Stride2Bytes = 0.0, RowSum = 0.0;
  bool DfaOk = true, Stride2Ok = true, WidthExact = true;
  for (const CostReport &G : Cand.Groups) {
    const double PerEntry =
        C.DenseNsPerEntry + G.Shape.BelWords * C.BitsetNsPerWord;
    RowSum += G.Shape.AvgTableRow;
    DenseNs += G.Shape.AvgTableRow * PerEntry;
    DenseBytes += denseFootprint(G);
    // The sparse walk only touches active states; its worst case is the
    // sound width bound (pessimistic: the observed average is lower, so
    // this biases toward dense — the safe direction on the baselines).
    const double Width = G.Width.Exact
                             ? static_cast<double>(G.Width.MaxActiveStates)
                             : static_cast<double>(G.Shape.NumStates);
    WidthExact = WidthExact && G.Width.Exact;
    SparseNs += Width * G.Shape.AvgOutDegree *
                (C.SparseNsPerEdge + G.Shape.BelWords * C.BitsetNsPerWord);
    DfaOk = DfaOk && G.Dfa.Completed;
    DfaNs += C.DfaNsPerByte;
    DfaBytes +=
        static_cast<double>(G.Dfa.DfaStates) * G.Dfa.NumAtoms * 4.0;
    Stride2Ok = Stride2Ok && G.Dfa.Stride2Feasible;
    Stride2Ns += C.Stride2NsPerStep / 2.0;
    Stride2Bytes += static_cast<double>(G.Dfa.Stride2Entries) * 4.0;
  }
  // When only a sample of the groups was analyzed (PlannerOptions::
  // MaxAnalyzedGroups), extrapolate every summed term to the real group
  // count. The sample is evenly spaced, so group-size skew averages out.
  const double Scale =
      Cand.Groups.empty() ? 1.0
                          : static_cast<double>(Cand.NumGroups) /
                                static_cast<double>(Cand.Groups.size());
  DenseNs *= Scale;
  SparseNs *= Scale;
  DfaNs *= Scale;
  Stride2Ns *= Scale;
  DenseBytes *= Scale;
  DfaBytes *= Scale;
  Stride2Bytes *= Scale;
  RowSum *= Scale;
  DenseNs *= spillFactor(DenseBytes, C);
  DfaNs *= spillFactor(DfaBytes, C);
  Stride2Ns *= spillFactor(Stride2Bytes, C);

  auto Add = [&](Engine E, double Ns, bool Feasible, std::string Why) {
    EngineCostEstimate Est;
    Est.E = E;
    Est.NsPerByte = Ns;
    Est.Feasible = Feasible;
    Est.Why = std::move(Why);
    Cand.Engines.push_back(std::move(Est));
  };

  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "avg table row %.1f entries/byte over %u group(s)", RowSum,
                Cand.NumGroups);
  Add(Engine::ImfantDense, DenseNs, true, Buf);
  Add(Engine::ImfantSparse, SparseNs, true,
      WidthExact ? "worst-case width bound is exact"
                 : "width bound budgeted: trivial all-states bound used");
  if (DfaOk)
    Add(Engine::Dfa, DfaNs, true, "subset construction completed in budget");
  else
    Add(Engine::Dfa, 0.0, false, "blowup before budget: DFA probe exceeded "
                                 "its state cap");
  if (DfaOk && Stride2Ok)
    Add(Engine::StridedDfa, Stride2Ns, true, "stride-2 table fits its cap");
  else
    Add(Engine::StridedDfa, 0.0, false,
        DfaOk ? "stride-2 table exceeds its entry cap"
              : "blowup before budget: DFA probe exceeded its state cap");

  if (!AllowPrefilter || Literals.TotalRules == 0) {
    Add(Engine::Prefilter, 0.0, false, "source patterns unavailable");
  } else if (Literals.PrefilterableRules == 0) {
    Add(Engine::Prefilter, 0.0, false, "no rule has a usable mandatory "
                                       "literal");
  } else {
    // Literal scan over every byte plus a dense scan of the residual
    // (non-prefilterable) rules; confirm windows are rare on non-adversarial
    // input, so the residual term dominates when literal density is low.
    double Pre = C.PrefilterNsPerByte * (Literals.RootSkipViable ? 1.0 : 1.5);
    Pre += (1.0 - Literals.PrefilterableFraction) * C.ResidualPenalty *
           DenseNs;
    // Confirm-window reruns: charged inversely to the average mandatory
    // literal length, since shorter literals hit far more often.
    if (Literals.AvgLiteralLength > 0.0)
      Pre += C.ConfirmPenalty * Literals.PrefilterableFraction * DenseNs /
             Literals.AvgLiteralLength;
    std::snprintf(Buf, sizeof(Buf),
                  "%u/%u rules literal-gated, avg literal %.1fB",
                  Literals.PrefilterableRules, Literals.TotalRules,
                  Literals.AvgLiteralLength);
    Add(Engine::Prefilter, Pre, true, Buf);
  }

  Cand.Best = Engine::ImfantDense;
  Cand.BestNsPerByte = std::numeric_limits<double>::infinity();
  for (const EngineCostEstimate &Est : Cand.Engines)
    if (Est.Feasible && Est.NsPerByte < Cand.BestNsPerByte) {
      Cand.Best = Est.E;
      Cand.BestNsPerByte = Est.NsPerByte;
    }
}

CandidatePlan evaluateGroups(const std::vector<Mfsa> &Groups,
                             uint32_t MergingFactor,
                             const std::vector<std::string> &Patterns,
                             const PlannerOptions &Options) {
  CandidatePlan Cand;
  Cand.MergingFactor = MergingFactor;
  Cand.NumGroups = static_cast<uint32_t>(Groups.size());
  // A K=300 candidate would otherwise pay 300 width searches and DFA probes
  // per plan: beyond the budget, analyze an evenly spaced sample and let
  // estimateEngines extrapolate the summed cost terms.
  std::vector<size_t> Sampled;
  const size_t Limit =
      Options.MaxAnalyzedGroups ? Options.MaxAnalyzedGroups : Groups.size();
  if (Groups.size() <= Limit)
    for (size_t I = 0; I < Groups.size(); ++I)
      Sampled.push_back(I);
  else
    for (size_t I = 0; I < Limit; ++I)
      Sampled.push_back(I * Groups.size() / Limit);
  LiteralProfile Aggregate;
  double LiteralLenSum = 0.0;
  for (size_t Idx : Sampled) {
    const Mfsa &Z = Groups[Idx];
    Cand.Groups.push_back(analyzeCost(Z, Patterns, Options.Cost));
    const LiteralProfile &L = Cand.Groups.back().Literals;
    Aggregate.TotalRules += L.TotalRules;
    Aggregate.PrefilterableRules += L.PrefilterableRules;
    LiteralLenSum += L.AvgLiteralLength * L.PrefilterableRules;
    Aggregate.DistinctFirstBytes =
        std::max(Aggregate.DistinctFirstBytes, L.DistinctFirstBytes);
  }
  if (Aggregate.TotalRules)
    Aggregate.PrefilterableFraction =
        static_cast<double>(Aggregate.PrefilterableRules) /
        static_cast<double>(Aggregate.TotalRules);
  if (Aggregate.PrefilterableRules)
    Aggregate.AvgLiteralLength =
        LiteralLenSum / static_cast<double>(Aggregate.PrefilterableRules);
  Aggregate.RootSkipViable = Aggregate.DistinctFirstBytes >= 1 &&
                             Aggregate.DistinctFirstBytes <= 8;
  const bool HavePatterns = !Patterns.empty();
  estimateEngines(Cand, Aggregate, Options.AllowPrefilter && HavePatterns,
                  Options.Coefficients);
  return Cand;
}

/// Picks the plan's (engine, K) from the evaluated candidates, honoring a
/// forced engine by minimizing over that engine's feasible estimates.
void choose(EnginePlan &Plan, const PlannerOptions &Options) {
  const CandidatePlan *Winner = nullptr;
  double WinnerNs = std::numeric_limits<double>::infinity();
  Engine WinnerEngine = Engine::ImfantDense;
  for (const CandidatePlan &Cand : Plan.Candidates) {
    if (Options.Force == Engine::Auto) {
      if (!Cand.Engines.empty() && Cand.BestNsPerByte < WinnerNs) {
        Winner = &Cand;
        WinnerNs = Cand.BestNsPerByte;
        WinnerEngine = Cand.Best;
      }
      continue;
    }
    for (const EngineCostEstimate &Est : Cand.Engines)
      if (Est.E == Options.Force && Est.Feasible && Est.NsPerByte < WinnerNs) {
        Winner = &Cand;
        WinnerNs = Est.NsPerByte;
        WinnerEngine = Est.E;
      }
  }
  if (!Winner && !Plan.Candidates.empty()) {
    // Forced engine infeasible everywhere (or nothing evaluated): fall back
    // to the overall best so the plan is always executable.
    for (const CandidatePlan &Cand : Plan.Candidates)
      if (!Winner || Cand.BestNsPerByte < WinnerNs) {
        Winner = &Cand;
        WinnerNs = Cand.BestNsPerByte;
        WinnerEngine = Cand.Best;
      }
  }
  if (Winner) {
    Plan.Choice = WinnerEngine;
    Plan.MergingFactor = Winner->MergingFactor;
  }
  Plan.Stride = Plan.Choice == Engine::StridedDfa ? 2 : 1;
}

/// Decides the plan's input-parallel dimension (EnginePlan::InputThreads /
/// ParallelInput) for the already-chosen engine. The speculation fan-out —
/// how many start states a non-leading chunk must consider — is priced
/// from the static width facts: the DFA family's fan-out collapses via the
/// state map, while the dense engine's is the population of the width
/// bound's reachable-state union, which is only a trustworthy (bounded)
/// figure when the antichain search completed exactly.
void decideParallelInput(EnginePlan &Plan, const PlannerOptions &Options) {
  Plan.InputThreads = std::max(1u, Options.InputThreads);
  Plan.ParallelInput = false;
  if (Plan.InputThreads <= 1) {
    Plan.ParallelInputWhy = "single input thread requested";
    return;
  }
  switch (Plan.Choice) {
  case Engine::Dfa:
  case Engine::StridedDfa:
    // Per-start state maps collapse regardless of ruleset shape, and the
    // executor's class-count guard bounds the worst case at run time.
    Plan.ParallelInput = true;
    Plan.ParallelInputWhy = "dfa state-map speculation with class collapse";
    return;
  case Engine::ImfantDense: {
    uint32_t FanOut = 0;
    bool Exact = true;
    if (const CandidatePlan *Cand = Plan.chosen())
      for (const CostReport &G : Cand->Groups) {
        Exact = Exact && G.Width.Exact;
        FanOut = std::max(FanOut, G.Width.ReachableStates.count());
      }
    if (!Exact) {
      Plan.ParallelInputWhy =
          "width bound budgeted: speculation fan-out unbounded";
      return;
    }
    // Beyond this the per-start outcome tables are priced out and the
    // union death probe is the only speculation left — too weak a bet to
    // recommend statically (the executor still accepts if forced).
    constexpr uint32_t MaxPlannedFanOut = 64;
    if (FanOut > MaxPlannedFanOut) {
      Plan.ParallelInputWhy = "speculation fan-out " + std::to_string(FanOut) +
                              " start states exceeds " +
                              std::to_string(MaxPlannedFanOut);
      return;
    }
    Plan.ParallelInput = true;
    Plan.ParallelInputWhy = "speculation fan-out " + std::to_string(FanOut) +
                            " start states within bound";
    return;
  }
  case Engine::Auto:
  case Engine::ImfantSparse:
  case Engine::Prefilter:
    Plan.ParallelInputWhy = "engine has no input-parallel executor";
    return;
  }
}

void jsonEscapeTo(std::string &Out, std::string_view S) {
  for (char Ch : S) {
    unsigned char U = static_cast<unsigned char>(Ch);
    if (Ch == '"' || Ch == '\\') {
      Out += '\\';
      Out += Ch;
    } else if (U < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", U);
      Out += Buf;
    } else {
      Out += Ch;
    }
  }
}

void appendNumber(std::string &Out, double V) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.4g", V);
  Out += Buf;
}

} // namespace

const CandidatePlan *EnginePlan::chosen() const {
  for (const CandidatePlan &Cand : Candidates)
    if (Cand.MergingFactor == MergingFactor)
      return &Cand;
  return Candidates.empty() ? nullptr : &Candidates.front();
}

std::string EnginePlan::explainJson() const {
  std::string J;
  J += "{\n  \"engine\": \"";
  J += engineName(Choice);
  J += "\",\n  \"merging_factor\": ";
  J += std::to_string(MergingFactor);
  J += ",\n  \"stride\": ";
  J += std::to_string(Stride);
  J += ",\n  \"plan_wall_ms\": ";
  appendNumber(J, PlanWallMs);
  J += ",\n  \"parallel_input\": {\"threads\": ";
  J += std::to_string(InputThreads);
  J += ", \"enabled\": ";
  J += ParallelInput ? "true" : "false";
  J += ", \"why\": \"";
  jsonEscapeTo(J, ParallelInputWhy);
  J += "\"},\n  \"candidates\": [";
  for (size_t I = 0; I < Candidates.size(); ++I) {
    const CandidatePlan &Cand = Candidates[I];
    J += I ? ",\n    {" : "\n    {";
    J += "\"merging_factor\": " + std::to_string(Cand.MergingFactor);
    J += ", \"num_groups\": " + std::to_string(Cand.NumGroups);
    J += ", \"analyzed_groups\": " + std::to_string(Cand.Groups.size());

    // Aggregate the cost-model facts over the candidate's analyzed groups:
    // peak width, total table pressure, the probe verdicts. Summed terms
    // are extrapolated to the real group count when only a sample was
    // analyzed, mirroring estimateEngines.
    uint32_t WidthStates = 0, WidthRules = 0;
    bool WidthExact = true, DfaCompleted = true, Stride2Ok = true;
    uint64_t DfaStates = 0;
    double Row = 0.0;
    uint32_t Prefilterable = 0, TotalRules = 0;
    for (const CostReport &G : Cand.Groups) {
      WidthStates = std::max(WidthStates, G.Width.MaxActiveStates);
      WidthRules = std::max(WidthRules, G.Width.MaxActiveRules);
      WidthExact = WidthExact && G.Width.Exact;
      DfaCompleted = DfaCompleted && G.Dfa.Completed;
      Stride2Ok = Stride2Ok && G.Dfa.Stride2Feasible;
      DfaStates += G.Dfa.DfaStates;
      Row += G.Shape.AvgTableRow;
      Prefilterable += G.Literals.PrefilterableRules;
      TotalRules += G.Literals.TotalRules;
    }
    const double Scale =
        Cand.Groups.empty() ? 1.0
                            : static_cast<double>(Cand.NumGroups) /
                                  static_cast<double>(Cand.Groups.size());
    DfaStates = static_cast<uint64_t>(static_cast<double>(DfaStates) * Scale);
    Row *= Scale;
    J += ",\n     \"width\": {\"states_bound\": " + std::to_string(WidthStates);
    J += ", \"rules_bound\": " + std::to_string(WidthRules);
    J += ", \"exact\": ";
    J += WidthExact ? "true" : "false";
    J += "},\n     \"dfa\": {\"completed\": ";
    J += DfaCompleted ? "true" : "false";
    J += ", \"states\": " + std::to_string(DfaStates);
    J += ", \"stride2_feasible\": ";
    J += Stride2Ok ? "true" : "false";
    J += "},\n     \"table\": {\"avg_row_entries\": ";
    appendNumber(J, Row);
    J += "},\n     \"literals\": {\"prefilterable\": " +
         std::to_string(Prefilterable);
    J += ", \"total\": " + std::to_string(TotalRules);
    J += "},\n     \"engines\": [";
    for (size_t K = 0; K < Cand.Engines.size(); ++K) {
      const EngineCostEstimate &Est = Cand.Engines[K];
      J += K ? ",\n       {" : "\n       {";
      J += "\"engine\": \"";
      J += engineName(Est.E);
      J += "\", \"ns_per_byte\": ";
      appendNumber(J, Est.NsPerByte);
      J += ", \"feasible\": ";
      J += Est.Feasible ? "true" : "false";
      J += ", \"why\": \"";
      jsonEscapeTo(J, Est.Why);
      J += "\"}";
    }
    J += "\n     ],\n     \"best\": \"";
    J += engineName(Cand.Best);
    J += "\", \"best_ns_per_byte\": ";
    appendNumber(J, Cand.BestNsPerByte);
    J += "}";
  }
  J += "\n  ]\n}";
  return J;
}

void EnginePlan::recordTo(obs::MetricsRegistry &Registry) const {
  Registry.counter("analysis.cost.plans").add(1);
  Registry.gauge("analysis.cost.chosen_engine")
      .set(static_cast<int64_t>(Choice));
  Registry.gauge("analysis.cost.chosen_merging_factor")
      .set(static_cast<int64_t>(MergingFactor));
  Registry.gauge("analysis.cost.plan_wall_ms")
      .set(static_cast<int64_t>(PlanWallMs));
  // 0 = declined/disabled; otherwise the recommended chunk count.
  Registry.gauge("analysis.cost.parallel_input")
      .set(ParallelInput ? static_cast<int64_t>(InputThreads) : 0);
  if (const CandidatePlan *Cand = chosen()) {
    // Publish the widest group's report: the bottleneck the plan hinges on.
    const CostReport *Widest = nullptr;
    for (const CostReport &G : Cand->Groups)
      if (!Widest || G.Width.MaxActiveStates > Widest->Width.MaxActiveStates)
        Widest = &G;
    if (Widest)
      Widest->recordTo(Registry);
  }
}

EnginePlan planMfsas(const std::vector<Mfsa> &Mfsas,
                     const std::vector<std::string> &Patterns,
                     uint32_t MergingFactor, const PlannerOptions &Options) {
  Timer Clock;
  EnginePlan Plan;
  Plan.Candidates.push_back(
      evaluateGroups(Mfsas, MergingFactor, Patterns, Options));
  choose(Plan, Options);
  decideParallelInput(Plan, Options);
  Plan.PlanWallMs = Clock.elapsedMs();
  return Plan;
}

EnginePlan planRuleset(const std::vector<Nfa> &OptimizedFsas,
                       const std::vector<uint32_t> &GlobalIds,
                       const std::vector<std::string> &Patterns,
                       const PlannerOptions &Options) {
  Timer Clock;
  EnginePlan Plan;
  std::vector<uint32_t> Factors = Options.CandidateFactors;
  std::sort(Factors.begin(), Factors.end());
  Factors.erase(std::unique(Factors.begin(), Factors.end()), Factors.end());
  const uint32_t N = static_cast<uint32_t>(OptimizedFsas.size());
  for (uint32_t M : Factors) {
    // Trial-merge the candidate grouping, preserving dataset global ids.
    const uint32_t GroupSize = M == 0 ? std::max(N, 1u) : M;
    std::vector<Mfsa> Groups;
    for (uint32_t Begin = 0; Begin < N; Begin += GroupSize) {
      const uint32_t End = std::min(N, Begin + GroupSize);
      std::vector<Nfa> Slice(OptimizedFsas.begin() + Begin,
                             OptimizedFsas.begin() + End);
      std::vector<uint32_t> Ids(GlobalIds.begin() + Begin,
                                GlobalIds.begin() + End);
      Groups.push_back(mergeFsas(Slice, Ids, Options.Merge));
    }
    Plan.Candidates.push_back(evaluateGroups(Groups, M, Patterns, Options));
  }
  choose(Plan, Options);
  decideParallelInput(Plan, Options);
  Plan.PlanWallMs = Clock.elapsedMs();
  return Plan;
}

} // namespace mfsa
