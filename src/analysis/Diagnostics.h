//===- Diagnostics.h - shared static-analysis diagnostics -------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines the diagnostics engine shared by the IR verifier (Verifier.h) and
/// the ruleset linter (Lint.h): a Finding carries a severity, a stable check
/// identifier (e.g. "verify.mfsa.bel-width" or "lint.redos.nested-quantifier"),
/// a human message, a source span locating the problem (rule index plus a
/// byte offset into the pattern, or an element index into an automaton), and
/// an optional fix hint. DiagnosticEngine collects findings and renders them
/// as human-readable text or as a stable JSON document (`--format=json`).
///
/// Check identifiers are contractual: tests and CI grep for them, and the
/// rule catalog in docs/static-analysis.md documents each one. Renaming a
/// check id is an API break.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_ANALYSIS_DIAGNOSTICS_H
#define MFSA_ANALYSIS_DIAGNOSTICS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mfsa {

/// Severity ladder shared by verifier and linter findings.
enum class Severity : uint8_t {
  Note,    ///< Informational; never affects exit codes.
  Warning, ///< Suspicious but not definitely wrong (lint heuristics).
  Error,   ///< Invariant violation or definite defect.
};

/// Human-readable severity name ("note", "warning", "error").
const char *severityName(Severity Sev);

/// Where a finding points. Every field is optional; kNone/npos mean "not
/// applicable". Rule indices refer to the original ruleset order (the same
/// ids CompileArtifacts::CompiledRuleIds and QuarantinedRule use), Offset is
/// a byte offset into that rule's pattern text for lint findings, and
/// Element is an index into an automaton's transition (or state) vector for
/// verifier findings.
struct SourceSpan {
  static constexpr uint32_t kNoRule = UINT32_MAX;
  static constexpr size_t kNoPos = static_cast<size_t>(-1);

  uint32_t Rule = kNoRule; ///< Rule index in the ruleset, if any.
  size_t Offset = kNoPos;  ///< Byte offset into the rule's pattern.
  size_t Element = kNoPos; ///< Transition/state index inside an automaton.

  bool hasRule() const { return Rule != kNoRule; }
  bool hasOffset() const { return Offset != kNoPos; }
  bool hasElement() const { return Element != kNoPos; }

  static SourceSpan forRule(uint32_t Rule) {
    SourceSpan S;
    S.Rule = Rule;
    return S;
  }
  static SourceSpan forPattern(uint32_t Rule, size_t Offset) {
    SourceSpan S;
    S.Rule = Rule;
    S.Offset = Offset;
    return S;
  }
  static SourceSpan forElement(size_t Element) {
    SourceSpan S;
    S.Element = Element;
    return S;
  }

  /// Renders "rule 3, offset 7" / "element 12" / "" for messages.
  std::string render() const;
};

/// One diagnostic produced by a checker.
struct Finding {
  Severity Sev = Severity::Error;
  std::string CheckId; ///< Stable dotted identifier, e.g. "verify.nfa.target".
  std::string Message; ///< Human-readable description of the defect.
  SourceSpan Span;     ///< Where it was found.
  std::string FixHint; ///< Optional remediation suggestion; may be empty.

  /// How the finding was established: "exact" (a proof — structural
  /// identity or the antichain inclusion checker) or "heuristic" (sampled
  /// probes). Empty for checks where the distinction is meaningless;
  /// rendered as the JSON "method" field when set.
  std::string Method;

  /// Witness word for translation-validation failures: a word accepted by
  /// exactly one side of a failed equivalence proof. May contain arbitrary
  /// bytes (it is escaped on rendering); distinct from "unset" via
  /// HasCounterexample, since ε — the empty word — is a legal witness.
  std::string Counterexample;
  bool HasCounterexample = false;
};

/// Collects findings from any number of checkers and renders reports. The
/// engine is a plain accumulator — checkers call report(), callers inspect
/// counters or render. Findings keep insertion order, which checkers keep
/// deterministic so golden-output tests stay stable.
class DiagnosticEngine {
public:
  void report(Finding F);

  /// Convenience for the common case.
  void report(Severity Sev, std::string CheckId, std::string Message,
              SourceSpan Span = {}, std::string FixHint = {});

  const std::vector<Finding> &findings() const { return Findings; }
  size_t numErrors() const { return NumErrors; }
  size_t numWarnings() const { return NumWarnings; }
  bool hasErrors() const { return NumErrors != 0; }
  bool empty() const { return Findings.empty(); }
  void clear();

  /// Renders one finding per line:
  ///   error: rule 2, offset 4: nested unbounded quantifiers ... [check-id]
  std::string renderText() const;

  /// Renders a stable JSON document:
  ///   {"findings":[{"severity":"error","check":"...","message":"...",
  ///                 "rule":2,"offset":4,"hint":"..."}, ...],
  ///    "errors":1,"warnings":0}
  /// Span fields and the hint are omitted when absent, so the output is
  /// golden-testable without placeholder noise.
  std::string renderJson() const;

private:
  std::vector<Finding> Findings;
  size_t NumErrors = 0;
  size_t NumWarnings = 0;
};

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
std::string jsonEscape(const std::string &Text);

} // namespace mfsa

#endif // MFSA_ANALYSIS_DIAGNOSTICS_H
