//===- CostModel.cpp - static cost & activation-width analyzer ------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/CostModel.h"

#include "fsa/Determinize.h"
#include "fsa/LiteralAnalysis.h"
#include "obs/Metrics.h"
#include "regex/Parser.h"
#include "support/SymbolSet.h"
#include "support/Timer.h"

#include <algorithm>
#include <array>
#include <deque>
#include <unordered_set>
#include <vector>

namespace mfsa {

namespace {

/// True iff every bit of \p A is also set in \p B (widths must match).
bool isSubsetOf(const DynamicBitset &A, const DynamicBitset &B) {
  const std::vector<uint64_t> &AW = A.words();
  const std::vector<uint64_t> &BW = B.words();
  for (size_t I = 0, E = AW.size(); I != E; ++I)
    if (AW[I] & ~BW[I])
      return false;
  return true;
}

/// A \ B over the fixed-width symbol alphabet.
SymbolSet symbolDifference(const SymbolSet &A, const SymbolSet &B) {
  std::array<uint64_t, SymbolSet::NumWords> W = A.words();
  const std::array<uint64_t, SymbolSet::NumWords> &BW = B.words();
  for (unsigned I = 0; I < SymbolSet::NumWords; ++I)
    W[I] &= ~BW[I];
  return SymbolSet::fromWords(W);
}

/// The coarsest partition of the union of \p Labels such that every label
/// is a union of atoms. Same construction as fsa/AlphabetPartition.h, but
/// over Mfsa transition labels (no residual atom: bytes outside every label
/// kill the frontier, which the width search models as the empty start
/// macrostate it already explored).
std::vector<SymbolSet> atomsOfLabels(const std::vector<SymbolSet> &Labels) {
  std::vector<SymbolSet> Atoms;
  for (const SymbolSet &L : Labels) {
    if (L.empty())
      continue;
    std::vector<SymbolSet> Next;
    SymbolSet Rest = L;
    for (const SymbolSet &A : Atoms) {
      SymbolSet Common = A & L;
      if (Common.empty()) {
        Next.push_back(A);
        continue;
      }
      SymbolSet OnlyA = symbolDifference(A, Common);
      if (!OnlyA.empty())
        Next.push_back(OnlyA);
      Next.push_back(Common);
      Rest = symbolDifference(Rest, Common);
    }
    if (!Rest.empty())
      Next.push_back(Rest);
    Atoms = std::move(Next);
  }
  return Atoms;
}

} // namespace

WidthBound boundActivationWidth(const Mfsa &Z, const WidthOptions &Options) {
  Timer Clock;
  WidthBound Bound;
  const uint32_t NumStates = Z.numStates();
  const uint32_t NumRules = Z.numRules();
  Bound.ReachableStates = DynamicBitset(NumStates);
  if (NumStates == 0 || Z.numTransitions() == 0) {
    Bound.Exact = true;
    Bound.WallMs = Clock.elapsedMs();
    return Bound;
  }

  // Deterministic alphabet atoms over the distinct transition labels, so
  // the branching factor is the number of symbol classes, not 256.
  std::vector<SymbolSet> Distinct;
  {
    std::unordered_set<SymbolSet, SymbolSetHash> Seen;
    for (const MfsaTransition &T : Z.transitions())
      if (Seen.insert(T.Label).second)
        Distinct.push_back(T.Label);
  }
  const std::vector<SymbolSet> Atoms = atomsOfLabels(Distinct);
  const uint32_t NumAtoms = static_cast<uint32_t>(Atoms.size());

  // Per-atom successor edges and initial-state injection sets. A label that
  // intersects an atom contains it (atoms refine labels), so intersection
  // is the membership test. Injection over-approximates the engine: every
  // rule's initial state injects at every offset, anchored or not.
  std::vector<std::vector<std::pair<StateId, StateId>>> Edges(NumAtoms);
  std::vector<DynamicBitset> Inject(NumAtoms, DynamicBitset(NumStates));
  DynamicBitset IsInitial(NumStates);
  for (uint32_t R = 0; R < NumRules; ++R)
    IsInitial.set(Z.rule(R).Initial);
  for (const MfsaTransition &T : Z.transitions())
    for (uint32_t A = 0; A < NumAtoms; ++A) {
      if (!T.Label.intersects(Atoms[A]))
        continue;
      Edges[A].emplace_back(T.From, T.To);
      if (IsInitial.test(T.From))
        Inject[A].set(T.To);
    }

  // Per-state possible-rule sets: J(q) is always ⊆ the union of bel over
  // q's incoming arcs, because J only ever propagates through ∩ bel.
  std::vector<DynamicBitset> PossRules(NumStates, DynamicBitset(NumRules));
  for (const MfsaTransition &T : Z.transitions())
    PossRules[T.To] |= T.Bel;

  // Antichain-pruned reachability over ⊆-maximal frontiers, seeded with the
  // empty pre-scan frontier (see the soundness argument in CostModel.h).
  std::vector<DynamicBitset> Antichain;
  std::deque<DynamicBitset> Worklist;
  Worklist.emplace_back(NumStates); // ∅
  DynamicBitset RuleUnion(NumRules);
  bool Budgeted = false;

  while (!Worklist.empty()) {
    if (Options.MaxMacrostates &&
        Bound.MacrostatesExplored >= Options.MaxMacrostates) {
      Budgeted = true;
      break;
    }
    DynamicBitset S = std::move(Worklist.front());
    Worklist.pop_front();
    ++Bound.MacrostatesExplored;

    uint32_t Width = static_cast<uint32_t>(S.count());
    Bound.MaxActiveStates = std::max(Bound.MaxActiveStates, Width);
    if (Width) {
      RuleUnion.clear();
      S.forEach([&](unsigned Q) { RuleUnion |= PossRules[Q]; });
      Bound.MaxActiveRules = std::max(
          Bound.MaxActiveRules, static_cast<uint32_t>(RuleUnion.count()));
    }

    for (uint32_t A = 0; A < NumAtoms; ++A) {
      DynamicBitset Succ = Inject[A];
      for (const auto &[From, To] : Edges[A])
        if (S.test(From))
          Succ.set(To);

      bool Dominated = false;
      for (const DynamicBitset &T : Antichain)
        if (isSubsetOf(Succ, T)) {
          Dominated = true;
          break;
        }
      if (Dominated)
        continue;
      Antichain.erase(std::remove_if(Antichain.begin(), Antichain.end(),
                                     [&](const DynamicBitset &T) {
                                       return isSubsetOf(T, Succ);
                                     }),
                      Antichain.end());
      // Every reachable frontier is ⊆ some kept (pushed) one, so the union
      // over pushed frontiers covers every state that can ever be active.
      Bound.ReachableStates |= Succ;
      Antichain.push_back(Succ);
      Bound.AntichainPeak = std::max(Bound.AntichainPeak,
                                     static_cast<uint64_t>(Antichain.size()));
      Worklist.push_back(std::move(Succ));
    }
  }

  if (Budgeted) {
    // Budget exhausted: substitute the trivial (still sound) bound.
    Bound.MaxActiveStates = NumStates;
    Bound.MaxActiveRules = NumRules;
    for (uint32_t S = 0; S < NumStates; ++S)
      Bound.ReachableStates.set(S);
    Bound.Exact = false;
  } else {
    Bound.Exact = true;
  }
  Bound.WallMs = Clock.elapsedMs();
  return Bound;
}

DfaEstimate probeDfaBlowup(const Mfsa &Z, const DfaProbeOptions &Options) {
  Timer Clock;
  DfaEstimate Est;
  std::vector<Nfa> Fsas;
  std::vector<uint32_t> GlobalIds;
  Fsas.reserve(Z.numRules());
  GlobalIds.reserve(Z.numRules());
  for (RuleId R = 0; R < Z.numRules(); ++R) {
    Fsas.push_back(Z.extractRule(R));
    GlobalIds.push_back(Z.rule(R).GlobalId);
  }

  DeterminizeOptions DetOpts;
  DetOpts.MaxStates = Options.MaxStates;
  Result<Dfa> Probe = determinize(Fsas, GlobalIds, DetOpts);
  if (Probe) {
    Est.Completed = true;
    Est.DfaStates = Probe->NumStates;
    Est.NumAtoms = Probe->NumAtoms;
    Est.Stride2Entries = static_cast<uint64_t>(Est.DfaStates) * Est.NumAtoms *
                         Est.NumAtoms;
    Est.Stride2Feasible =
        Est.NumAtoms > 0 && Est.Stride2Entries <= Options.MaxStride2Entries;
  } else {
    // The proven blowup-before-budget fact: the real DFA has at least
    // MaxStates states.
    Est.Completed = false;
    Est.DfaStates = Options.MaxStates;
    Est.Stride2Feasible = false;
  }
  Est.WallMs = Clock.elapsedMs();
  return Est;
}

LiteralProfile profileLiterals(const Mfsa &Z,
                               const std::vector<std::string> &Patterns,
                               uint32_t MinLiteralLength) {
  LiteralProfile Profile;
  Profile.TotalRules = Z.numRules();
  if (Patterns.empty() || Z.numRules() == 0)
    return Profile;

  Profile.RulePrefilterable.assign(Z.numRules(), 0);
  double LiteralLengthSum = 0.0;
  bool FirstByteSeen[256] = {};
  for (RuleId R = 0; R < Z.numRules(); ++R) {
    const uint32_t GlobalId = Z.rule(R).GlobalId;
    if (GlobalId >= Patterns.size())
      continue;
    Result<Regex> Re = parseRegex(Patterns[GlobalId]);
    if (!Re)
      continue;
    PrefilterInfo Info =
        analyzeForPrefilter(*Re, Z.extractRule(R), MinLiteralLength);
    if (!Info.Prefilterable)
      continue;
    Profile.RulePrefilterable[R] = 1;
    ++Profile.PrefilterableRules;
    LiteralLengthSum += static_cast<double>(Info.Literal.size());
    FirstByteSeen[static_cast<unsigned char>(Info.Literal[0])] = true;
  }

  Profile.PrefilterableFraction =
      static_cast<double>(Profile.PrefilterableRules) /
      static_cast<double>(Profile.TotalRules);
  if (Profile.PrefilterableRules)
    Profile.AvgLiteralLength =
        LiteralLengthSum / static_cast<double>(Profile.PrefilterableRules);
  for (bool Seen : FirstByteSeen)
    Profile.DistinctFirstBytes += Seen ? 1 : 0;
  Profile.RootSkipViable =
      Profile.DistinctFirstBytes >= 1 && Profile.DistinctFirstBytes <= 8;
  return Profile;
}

MfsaShape computeShape(const Mfsa &Z) {
  MfsaShape Shape;
  Shape.NumStates = Z.numStates();
  Shape.NumRules = Z.numRules();
  Shape.NumTransitions = Z.numTransitions();
  Shape.BelWords = (Z.numRules() + 63) / 64;
  uint64_t LabelBytes = 0;
  for (const MfsaTransition &T : Z.transitions())
    LabelBytes += T.Label.count();
  Shape.AvgTableRow = static_cast<double>(LabelBytes) / 256.0;
  if (Shape.NumStates)
    Shape.AvgOutDegree = static_cast<double>(Shape.NumTransitions) /
                         static_cast<double>(Shape.NumStates);
  return Shape;
}

void CostReport::recordTo(obs::MetricsRegistry &Registry) const {
  Registry.gauge("analysis.cost.width_states_bound")
      .set(static_cast<int64_t>(Width.MaxActiveStates));
  Registry.gauge("analysis.cost.width_rules_bound")
      .set(static_cast<int64_t>(Width.MaxActiveRules));
  Registry.gauge("analysis.cost.width_exact").set(Width.Exact ? 1 : 0);
  Registry.counter("analysis.cost.width_macrostates")
      .add(Width.MacrostatesExplored);
  Registry.gauge("analysis.cost.width_wall_ms")
      .set(static_cast<int64_t>(Width.WallMs));
  Registry.gauge("analysis.cost.dfa_probe_states")
      .set(static_cast<int64_t>(Dfa.DfaStates));
  Registry.gauge("analysis.cost.dfa_probe_completed").set(Dfa.Completed ? 1
                                                                        : 0);
  Registry.gauge("analysis.cost.prefilterable_rules")
      .set(static_cast<int64_t>(Literals.PrefilterableRules));
  Registry.gauge("analysis.cost.distinct_first_bytes")
      .set(static_cast<int64_t>(Literals.DistinctFirstBytes));
}

CostReport analyzeCost(const Mfsa &Z, const std::vector<std::string> &Patterns,
                       const CostOptions &Options) {
  CostReport Report;
  Report.Shape = computeShape(Z);
  Report.Width = boundActivationWidth(Z, Options.Width);
  Report.Dfa = probeDfaBlowup(Z, Options.Probe);
  Report.Literals = profileLiterals(Z, Patterns, Options.MinLiteralLength);
  return Report;
}

} // namespace mfsa
