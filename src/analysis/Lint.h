//===- Lint.h - mfsalint ruleset analyzer -----------------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares the ruleset linter behind the `mfsalint` CLI: static analyses
/// that flag rules which will compile fine but behave pathologically at
/// match time or waste the merger's work. TDFA-style static ambiguity
/// analysis (Borsotti & Trafimovich 2022) motivates catching these before
/// execution; the CompileBudget (Pipeline.h) only catches them after the
/// blowup has already been attempted.
///
/// Rule catalog (docs/static-analysis.md documents each with examples):
///
///   lint.parse-error              the pattern does not parse (error)
///   lint.build-error              the pattern parses but FSA construction
///                                 fails, e.g. a repeat bound over the
///                                 builder limit (error)
///   lint.redos.nested-quantifier  an unbounded quantifier wraps a
///                                 variable-iteration quantifier, e.g.
///                                 `(a+)+` — ambiguity grows the active
///                                 state set and is catastrophic in
///                                 backtracking consumers (warning)
///   lint.redos.ambiguous-loop     the rule's ε-free NFA has a state with
///                                 two looping out-transitions over
///                                 overlapping symbols — the NFA-level
///                                 ambiguity witness of the same defect
///                                 (warning)
///   lint.expansion.state-blowup   bounded-repeat expansion (§IV-C (2))
///                                 will allocate ~N states, above the lint
///                                 threshold — it would hit (or dwarf) the
///                                 CompileBudget; the rule is excluded from
///                                 the NFA/language/pairwise layers so the
///                                 linter doesn't pay the blowup it just
///                                 reported (warning)
///   lint.language.empty           the rule can never report a match: no
///                                 final state survives optimization, or
///                                 its language is ⊆ {ε} and zero-length
///                                 matches are never reported (warning)
///   lint.language.universal       every single-byte input matches, so the
///                                 rule fires at every offset (warning)
///   lint.duplicate-rule           two rules have identical optimized
///                                 automata, proven-equal languages
///                                 (antichain inclusion checker, tagged
///                                 "exact"), or agree on every probe input
///                                 of the brute-force Reference oracle
///                                 (tagged "heuristic") (warning)
///   lint.subsumed-rule            rule A's language is proven included in
///                                 rule B's ("exact"), or A's matches are a
///                                 subset of B's on every probe input
///                                 ("heuristic") (note)
///
/// Post-merge passes over an Mfsa (belonging-set analysis):
///
///   lint.merge.identical-rules    two rules map to the same merged
///                                 sub-automaton: same initial, same finals,
///                                 same belonging on every arc (warning)
///   lint.merge.subsumed-rule      every arc of rule A is shared with rule
///                                 B, same initial, finals ⊆ (note)
///   lint.merge.unreachable-state  a merged state no rule can reach (dead
///                                 weight in the transition table) (warning)
///
/// Cost-model passes over an Mfsa (analysis/CostModel.h; run by `mfsalint
/// --cost`, which compiles the surviving rules and merges them first):
///
///   lint.cost.width-hotspot       the sound activation-width bound proves
///                                 at least CostWidthWarnRules rules can be
///                                 simultaneously active — the dense engine
///                                 pays the full belonging-union on every
///                                 step; tagged "exact" when the antichain
///                                 search finished inside its macrostate
///                                 budget, "heuristic" when it fell back to
///                                 the trivial all-rules bound (warning)
///   lint.cost.dfa-blowup          budgeted subset-construction probing of a
///                                 rule exceeded the probe's state cap, so
///                                 DFA/strided compilation of this ruleset
///                                 would blow up before its budget; "exact"
///                                 — the blowup is demonstrated, not
///                                 estimated (warning)
///   lint.cost.prefilter-defeated  the ruleset is literal-heavy (at least
///                                 half the rules carry an extractable
///                                 required literal) but this rule has none,
///                                 so choosing the Hyperscan-style prefilter
///                                 path forces a full residual scan on its
///                                 behalf; "exact" (note)
///
/// All passes append to a DiagnosticEngine (Diagnostics.h) in deterministic
/// order so `--format=json` output is golden-testable.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_ANALYSIS_LINT_H
#define MFSA_ANALYSIS_LINT_H

#include "analysis/Diagnostics.h"
#include "mfsa/Mfsa.h"
#include "regex/Parser.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mfsa {

/// Linter knobs. Defaults are tuned so the example rulesets lint clean and
/// the classic pathologies all fire.
struct LintOptions {
  /// Front-end options used when the linter parses patterns itself.
  ParseOptions Parse;

  /// Warn when the estimated structural expansion of bounded repeats
  /// exceeds this many states (compare CompileBudget::MaxFsaStates, whose
  /// default is far higher — lint warns well before the budget kills).
  uint64_t ExpansionWarnStates = 1u << 14;

  /// Duplicate/subsumption oracle caps: automata above this many optimized
  /// states are never cross-checked (the oracle is brute force)...
  uint32_t OracleMaxStates = 64;
  /// ...probe strings are enumerated up to this length...
  uint32_t OracleMaxLength = 4;
  /// ...over at most this many representative symbols.
  uint32_t OracleMaxAlphabet = 4;

  /// Exact pairwise checking: pairs where both optimized automata have at
  /// most this many states are decided by the antichain language-inclusion
  /// prover (analysis/Inclusion.h) — findings become proofs, tagged
  /// `"method":"exact"` in JSON — before any oracle probing. Pairs above
  /// the cutoff (or whose proof hits ExactCheckMaxMacrostates) fall back to
  /// the brute-force oracle, tagged `"method":"heuristic"`. 0 disables the
  /// exact path entirely.
  uint32_t ExactCheckMaxStates = 512;
  /// Macrostate cap per exact pairwise proof (see InclusionOptions).
  uint64_t ExactCheckMaxMacrostates = 1u << 14;

  /// Master switches for the pairwise passes (quadratic in ruleset size).
  bool CheckDuplicates = true;
  bool CheckSubsumption = true;

  /// Cost-model pass knobs (lintCost; `mfsalint --cost`).
  /// Warn when the sound simultaneous-active-rules bound reaches this many
  /// rules.
  uint32_t CostWidthWarnRules = 32;
  /// Macrostate budget for the antichain width search; exhausting it
  /// degrades the finding's method tag to "heuristic" (the trivial
  /// all-rules bound is still sound).
  uint64_t CostWidthMaxMacrostates = 1u << 12;
  /// State cap for the subset-construction blowup probe.
  uint32_t CostDfaProbeMaxStates = 1u << 14;
  /// Minimum extractable-literal length for the prefilterability profile.
  uint32_t CostMinLiteralLength = 3;
};

/// Per-ruleset lint summary.
struct LintSummary {
  uint32_t RulesAnalyzed = 0; ///< Patterns that parsed and built.
  uint32_t RulesBroken = 0;   ///< Patterns rejected by the front-end.
};

/// Lints \p Patterns (the standalone, pre-compilation pass): parses and
/// builds each rule itself, appending findings to \p Diags in rule order
/// (pairwise findings follow, ordered by the lower rule index). Returns a
/// summary; inspect \p Diags for the findings.
LintSummary lintRuleset(const std::vector<std::string> &Patterns,
                        const LintOptions &Options, DiagnosticEngine &Diags);

/// Post-merge belonging-set analysis over one MFSA (see catalog above).
/// Rule indices in findings are the rules' GlobalIds, matching the input
/// ruleset the MFSA was compiled from.
void lintMfsa(const Mfsa &Z, const LintOptions &Options,
              DiagnosticEngine &Diags);

/// Cost-model analysis over one MFSA (see the lint.cost.* catalog above).
/// \p Patterns is the original ruleset indexed by the rules' GlobalIds and
/// is needed only by the prefilter pass — pass an empty vector to skip it.
/// Findings are appended in pass order (width, blowup, then per-rule
/// prefilter notes by GlobalId), keeping JSON output golden-testable.
void lintCost(const Mfsa &Z, const std::vector<std::string> &Patterns,
              const LintOptions &Options, DiagnosticEngine &Diags);

} // namespace mfsa

#endif // MFSA_ANALYSIS_LINT_H
