//===- Inclusion.cpp - antichain language-inclusion prover -------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Implementation notes.
//
// Alphabet reduction: every transition label of A and B is a union of the
// partition atoms computed over both automata, so for any atom with
// representative byte c, label ∩ atom ≠ ∅ ⟺ c ∈ label. The search therefore
// steps on one representative byte per atom and tests membership with a
// single contains() — no set intersections in the inner loop — while still
// covering every symbol class exactly once.
//
// ε-arcs are folded into the step relation up front: A-side successors are
// taken from the ε-closure of the current spoiler state, B-side macrostates
// are kept ε-closed, and acceptance tests use closure-aware final flags.
// This lets raw Thompson automata (stage 2) be compared directly against
// their optimized forms (stage 3).
//
// The search is breadth-first over an append-only node arena; each node
// stores its parent index and incoming byte, so a violating node's path
// spells a shortest counterexample word.
//
//===----------------------------------------------------------------------===//

#include "analysis/Inclusion.h"

#include "fsa/AlphabetPartition.h"
#include "support/DynamicBitset.h"
#include "support/Timer.h"

#include <algorithm>
#include <deque>
#include <queue>
#include <vector>

using namespace mfsa;

namespace {

/// ε-closure of every state, BFS over ε-arcs (same construction as the
/// ε-removal pass, local here to keep the prover self-contained).
std::vector<std::vector<StateId>> epsilonClosures(const Nfa &A) {
  std::vector<std::vector<StateId>> EpsOut(A.numStates());
  for (const Transition &T : A.transitions())
    if (T.isEpsilon())
      EpsOut[T.From].push_back(T.To);

  std::vector<std::vector<StateId>> Closures(A.numStates());
  std::vector<bool> Seen(A.numStates());
  for (StateId Q = 0; Q < A.numStates(); ++Q) {
    std::fill(Seen.begin(), Seen.end(), false);
    std::queue<StateId> Work;
    Work.push(Q);
    Seen[Q] = true;
    while (!Work.empty()) {
      StateId R = Work.front();
      Work.pop();
      Closures[Q].push_back(R);
      for (StateId S : EpsOut[R])
        if (!Seen[S]) {
          Seen[S] = true;
          Work.push(S);
        }
    }
  }
  return Closures;
}

/// X ⊆ Y over equal-width bitsets.
bool isSubsetOf(const DynamicBitset &X, const DynamicBitset &Y) {
  const std::vector<uint64_t> &XW = X.words();
  const std::vector<uint64_t> &YW = Y.words();
  for (size_t I = 0, E = XW.size(); I != E; ++I)
    if (XW[I] & ~YW[I])
      return false;
  return true;
}

/// One (spoiler state, B-macrostate) pair in the product search.
struct SearchNode {
  StateId P = 0;                       ///< Spoiler position in A.
  uint32_t Parent = UINT32_MAX;        ///< Arena index of the predecessor.
  int16_t Byte = -1;                   ///< Incoming byte; -1 at the root.
  bool Dead = false;                   ///< Evicted from the antichain.
  DynamicBitset S;                     ///< ε-closed macrostate of B.
};

} // namespace

InclusionResult mfsa::checkInclusion(const Nfa &A, const Nfa &B,
                                     const InclusionOptions &Options) {
  Timer Wall;
  InclusionResult Result;

  // A with no states recognizes ∅, which is included in anything.
  if (A.numStates() == 0) {
    Result.Stats.WallMs = Wall.elapsedMs();
    return Result;
  }

  // Alphabet atoms over both automata; one representative byte per atom is
  // a complete set of step symbols (see file header). The residual atom of
  // unused symbols steps nowhere on either side and dies immediately.
  const std::vector<SymbolSet> Atoms =
      computeAlphabetAtoms(std::vector<Nfa>{A, B});
  std::vector<unsigned char> Reps;
  Reps.reserve(Atoms.size());
  for (const SymbolSet &Atom : Atoms)
    Reps.push_back(Atom.min());

  // A side: ε-closures, closure-aware final flags, per-state non-ε arcs.
  const std::vector<std::vector<StateId>> AClosure = epsilonClosures(A);
  std::vector<bool> AFinal(A.numStates(), false);
  for (StateId F : A.finals())
    AFinal[F] = true;
  std::vector<bool> AAccepting(A.numStates(), false);
  for (StateId Q = 0; Q < A.numStates(); ++Q)
    for (StateId R : AClosure[Q])
      if (AFinal[R])
        AAccepting[Q] = true;
  std::vector<std::vector<const Transition *>> AOut(A.numStates());
  for (const Transition &T : A.transitions())
    if (!T.isEpsilon())
      AOut[T.From].push_back(&T);

  // B side: ε-successor lists (to keep macrostates closed), final bitset,
  // per-state non-ε arcs.
  const uint32_t NB = B.numStates();
  std::vector<std::vector<StateId>> BEps(NB);
  std::vector<std::vector<const Transition *>> BOut(NB);
  for (const Transition &T : B.transitions()) {
    if (T.isEpsilon())
      BEps[T.From].push_back(T.To);
    else
      BOut[T.From].push_back(&T);
  }
  DynamicBitset BFinals(NB);
  for (StateId F : B.finals())
    BFinals.set(F);

  // ε-closes \p Set in place.
  std::vector<StateId> CloseWork;
  auto CloseOverEps = [&](DynamicBitset &Set) {
    CloseWork.clear();
    Set.forEach([&](unsigned Q) { CloseWork.push_back(Q); });
    for (size_t I = 0; I < CloseWork.size(); ++I)
      for (StateId Q : BEps[CloseWork[I]])
        if (!Set.test(Q)) {
          Set.set(Q);
          CloseWork.push_back(Q);
        }
  };

  std::vector<SearchNode> Arena;
  std::deque<uint32_t> Frontier; // BFS ⇒ shortest counterexample.
  std::vector<std::vector<uint32_t>> Antichain(A.numStates());
  uint64_t Alive = 0;

  // True when the node is a violation witness: the spoiler accepts (via
  // ε-closure) but no B state in the macrostate does.
  auto Violates = [&](const SearchNode &Node) {
    return AAccepting[Node.P] &&
           (NB == 0 || !Node.S.intersects(BFinals));
  };

  auto ExtractWord = [&](uint32_t Index) {
    std::string Word;
    for (uint32_t I = Index; Arena[I].Byte >= 0; I = Arena[I].Parent)
      Word.push_back(static_cast<char>(Arena[I].Byte));
    std::reverse(Word.begin(), Word.end());
    return Word;
  };

  // Admits (P, S) unless an antichain entry already dominates it; evicts
  // entries the new pair dominates. \returns the violating node's index or
  // UINT32_MAX.
  auto Admit = [&](StateId P, DynamicBitset S, uint32_t Parent,
                   int16_t Byte) -> uint32_t {
    std::vector<uint32_t> &Chain = Antichain[P];
    for (uint32_t Index : Chain)
      if (!Arena[Index].Dead && isSubsetOf(Arena[Index].S, S))
        return UINT32_MAX; // Dominated: a stronger pair is already stored.
    size_t Keep = 0;
    for (uint32_t Index : Chain) {
      if (!Arena[Index].Dead && isSubsetOf(S, Arena[Index].S)) {
        Arena[Index].Dead = true; // New pair is stronger.
        --Alive;
      } else {
        Chain[Keep++] = Index;
      }
    }
    Chain.resize(Keep);

    const uint32_t Index = static_cast<uint32_t>(Arena.size());
    Arena.push_back(SearchNode{P, Parent, Byte, false, std::move(S)});
    Chain.push_back(Index);
    ++Alive;
    Result.Stats.AntichainPeak =
        std::max(Result.Stats.AntichainPeak, Alive);
    ++Result.Stats.MacrostatesExplored;
    if (Violates(Arena[Index]))
      return Index;
    Frontier.push_back(Index);
    return UINT32_MAX;
  };

  // Root: spoiler at A's initial, macrostate = ε-closure of B's initial.
  DynamicBitset S0(NB);
  if (NB != 0) {
    S0.set(B.initial());
    CloseOverEps(S0);
  }
  uint32_t Violation = Admit(A.initial(), std::move(S0), UINT32_MAX, -1);

  while (Violation == UINT32_MAX && !Frontier.empty()) {
    if (Options.MaxMacrostates != 0 &&
        Result.Stats.MacrostatesExplored >= Options.MaxMacrostates) {
      Result.Status = InclusionStatus::ResourceLimit;
      Result.Stats.WallMs = Wall.elapsedMs();
      return Result;
    }
    const uint32_t Index = Frontier.front();
    Frontier.pop_front();
    if (Arena[Index].Dead)
      continue;
    const StateId P = Arena[Index].P;

    for (size_t AtomIdx = 0; AtomIdx < Reps.size() && Violation == UINT32_MAX;
         ++AtomIdx) {
      const unsigned char Rep = Reps[AtomIdx];

      // Spoiler successors on this atom, through the ε-closure of P.
      bool AnySpoiler = false;
      for (StateId Q : AClosure[P]) {
        for (const Transition *T : AOut[Q])
          if (T->Label.contains(Rep)) {
            AnySpoiler = true;
            break;
          }
        if (AnySpoiler)
          break;
      }
      if (!AnySpoiler)
        continue; // The atom extends no word of L(A) from here.

      // Duplicator macrostate successor, ε-closed. Computed once per atom
      // and shared by every spoiler successor.
      DynamicBitset Next(NB);
      Arena[Index].S.forEach([&](unsigned Q) {
        for (const Transition *T : BOut[Q])
          if (T->Label.contains(Rep))
            Next.set(T->To);
      });
      CloseOverEps(Next);

      for (StateId Q : AClosure[P]) {
        for (const Transition *T : AOut[Q]) {
          if (!T->Label.contains(Rep))
            continue;
          Violation = Admit(T->To, Next, Index,
                            static_cast<int16_t>(Rep));
          if (Violation != UINT32_MAX)
            break;
        }
        if (Violation != UINT32_MAX)
          break;
      }
    }
  }

  if (Violation != UINT32_MAX) {
    Result.Status = InclusionStatus::NotIncluded;
    Result.Counterexample = ExtractWord(Violation);
  }
  Result.Stats.WallMs = Wall.elapsedMs();
  return Result;
}

EquivalenceResult mfsa::checkEquivalence(const Nfa &A, const Nfa &B,
                                         const InclusionOptions &Options) {
  EquivalenceResult Result;
  Result.AInB = checkInclusion(A, B, Options);
  Result.BInA = checkInclusion(B, A, Options);
  if (Result.AInB.included() && Result.BInA.included())
    Result.Status = EquivalenceStatus::Equal;
  else if (Result.AInB.Status == InclusionStatus::NotIncluded ||
           Result.BInA.Status == InclusionStatus::NotIncluded)
    Result.Status = EquivalenceStatus::NotEqual;
  else
    Result.Status = EquivalenceStatus::ResourceLimit;
  return Result;
}

bool mfsa::acceptsWord(const Nfa &A, std::string_view Word) {
  if (A.numStates() == 0)
    return false;
  const std::vector<std::vector<StateId>> Closures = epsilonClosures(A);
  std::vector<std::vector<const Transition *>> Out(A.numStates());
  for (const Transition &T : A.transitions())
    if (!T.isEpsilon())
      Out[T.From].push_back(&T);

  std::vector<bool> Current(A.numStates(), false);
  std::vector<bool> Next(A.numStates(), false);
  for (StateId Q : Closures[A.initial()])
    Current[Q] = true;
  for (char C : Word) {
    const unsigned char Byte = static_cast<unsigned char>(C);
    std::fill(Next.begin(), Next.end(), false);
    for (StateId Q = 0; Q < A.numStates(); ++Q) {
      if (!Current[Q])
        continue;
      for (const Transition *T : Out[Q])
        if (T->Label.contains(Byte))
          for (StateId R : Closures[T->To])
            Next[R] = true;
    }
    std::swap(Current, Next);
  }
  for (StateId F : A.finals())
    if (Current[F])
      return true;
  return false;
}
