//===- Lint.cpp - mfsalint ruleset analyzer ---------------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Pass structure. lintRuleset runs three layers per rule, cheapest first:
//
//   AST layer      nested-quantifier walk + expansion-size estimate; needs
//                  only the parse tree, so it fires even for rules whose
//                  construction would bust the budget.
//   NFA layer      ambiguity witness: SCC decomposition of the ε-free NFA,
//                  looking for a state with two looping out-arcs over
//                  overlapping symbols (the structural core of ReDoS).
//   Language layer empty/universal checks on the optimized FSA via the
//                  Reference simulator.
//
// The pairwise layer (duplicates/subsumption) decides small pairs exactly
// with the antichain language-inclusion prover (analysis/Inclusion.h),
// tagging those findings "exact"; pairs above the exact cutoff (or whose
// proof hits the macrostate cap) fall back to the brute-force oracle —
// enumerate every string up to a bounded length over the rules' joint
// representative alphabet and compare match-end sets — tagged "heuristic".
// Pairs are gated by cheap signatures (anchors; label union for the oracle)
// so the quadratic pass stays affordable on real rulesets.
//
// lintMfsa is independent: it reads only the merged automaton's belonging
// sets. Sub[i] = ∩ { bel(t) : rule i owns t } is computed in one sweep; any
// j ∈ Sub[i] shares every arc of i, which with initial/final agreement is
// exactly merged-level subsumption (and mutual subsumption, duplication).
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"

#include "analysis/CostModel.h"
#include "analysis/Inclusion.h"
#include "fsa/Builder.h"
#include "fsa/Passes.h"
#include "fsa/Reference.h"

#include <algorithm>
#include <map>
#include <queue>

using namespace mfsa;

//===----------------------------------------------------------------------===//
// AST layer
//===----------------------------------------------------------------------===//

namespace {

/// Calls \p Fn on every direct child of \p N.
template <typename CallableT>
void forEachChild(const AstNode &N, CallableT Fn) {
  switch (N.kind()) {
  case AstKind::Empty:
  case AstKind::Symbols:
    break;
  case AstKind::Concat:
    for (const auto &C : static_cast<const ConcatNode &>(N).children())
      Fn(*C);
    break;
  case AstKind::Alternate:
    for (const auto &C : static_cast<const AlternateNode &>(N).children())
      Fn(*C);
    break;
  case AstKind::Repeat:
    Fn(static_cast<const RepeatNode &>(N).child());
    break;
  }
}

/// True if the repeat can iterate a variable number of times — the
/// ingredient that makes an enclosing unbounded repeat ambiguous.
bool isVariableRepeat(const RepeatNode &R) {
  return R.isUnbounded() || R.max() > R.min();
}

/// True if \p N contains (at any depth) a variable-iteration repeat.
bool containsVariableRepeat(const AstNode &N) {
  if (N.kind() == AstKind::Repeat &&
      isVariableRepeat(static_cast<const RepeatNode &>(N)))
    return true;
  bool Found = false;
  forEachChild(N, [&](const AstNode &C) {
    if (!Found)
      Found = containsVariableRepeat(C);
  });
  return Found;
}

/// Reports every unbounded repeat whose body contains a variable repeat
/// (`(a+)+`, `(a{1,3})*`, ...). One finding per rule keeps output stable.
bool hasNestedQuantifier(const AstNode &N) {
  if (N.kind() == AstKind::Repeat) {
    const auto &R = static_cast<const RepeatNode &>(N);
    if (R.isUnbounded() && containsVariableRepeat(R.child()))
      return true;
  }
  bool Found = false;
  forEachChild(N, [&](const AstNode &C) {
    if (!Found)
      Found = hasNestedQuantifier(C);
  });
  return Found;
}

constexpr uint64_t kEstimateCap = uint64_t(1) << 40;

uint64_t saturatingMul(uint64_t A, uint64_t B) {
  if (A != 0 && B > kEstimateCap / A)
    return kEstimateCap;
  return A * B;
}

/// Estimates the states Thompson construction with loop expansion (§IV-C
/// (2)) allocates for \p N — the same arithmetic the builder performs, run
/// before any allocation happens. Saturates at kEstimateCap.
uint64_t estimateExpandedStates(const AstNode &N) {
  switch (N.kind()) {
  case AstKind::Empty:
    return 2;
  case AstKind::Symbols:
    return 2;
  case AstKind::Concat: {
    uint64_t Sum = 0;
    forEachChild(N, [&](const AstNode &C) {
      Sum = std::min(Sum + estimateExpandedStates(C), kEstimateCap);
    });
    return std::max<uint64_t>(Sum, 2);
  }
  case AstKind::Alternate: {
    uint64_t Sum = 2;
    forEachChild(N, [&](const AstNode &C) {
      Sum = std::min(Sum + estimateExpandedStates(C), kEstimateCap);
    });
    return Sum;
  }
  case AstKind::Repeat: {
    const auto &R = static_cast<const RepeatNode &>(N);
    uint64_t Child = estimateExpandedStates(R.child());
    // m mandatory plus (n - m) optional copies; an unbounded tail adds one
    // cyclic copy after the m mandatory ones.
    uint64_t Copies =
        R.isUnbounded() ? uint64_t(R.min()) + 1 : uint64_t(R.max());
    return std::min(saturatingMul(Child, std::max<uint64_t>(Copies, 1)) + 2,
                    kEstimateCap);
  }
  }
  return 2;
}

//===----------------------------------------------------------------------===//
// NFA layer: ambiguity witness
//===----------------------------------------------------------------------===//

/// Iterative Kosaraju SCC decomposition; returns the component id per state.
std::vector<uint32_t> computeSccs(uint32_t NumStates,
                                  const std::vector<Transition> &Ts) {
  std::vector<std::vector<StateId>> Out(NumStates), In(NumStates);
  for (const Transition &T : Ts) {
    Out[T.From].push_back(T.To);
    In[T.To].push_back(T.From);
  }

  // Pass 1: post-order over the forward graph.
  std::vector<StateId> Order;
  Order.reserve(NumStates);
  std::vector<uint8_t> Seen(NumStates, 0);
  for (StateId Root = 0; Root < NumStates; ++Root) {
    if (Seen[Root])
      continue;
    // Explicit stack of (state, next-child-index).
    std::vector<std::pair<StateId, size_t>> Stack{{Root, 0}};
    Seen[Root] = 1;
    while (!Stack.empty()) {
      auto &[Q, Next] = Stack.back();
      if (Next < Out[Q].size()) {
        StateId S = Out[Q][Next++];
        if (!Seen[S]) {
          Seen[S] = 1;
          Stack.emplace_back(S, 0);
        }
      } else {
        Order.push_back(Q);
        Stack.pop_back();
      }
    }
  }

  // Pass 2: reverse graph, reverse post-order.
  std::vector<uint32_t> Comp(NumStates, UINT32_MAX);
  uint32_t NumComps = 0;
  for (auto It = Order.rbegin(); It != Order.rend(); ++It) {
    if (Comp[*It] != UINT32_MAX)
      continue;
    uint32_t Id = NumComps++;
    std::queue<StateId> Work;
    Work.push(*It);
    Comp[*It] = Id;
    while (!Work.empty()) {
      StateId Q = Work.front();
      Work.pop();
      for (StateId S : In[Q])
        if (Comp[S] == UINT32_MAX) {
          Comp[S] = Id;
          Work.push(S);
        }
    }
  }
  return Comp;
}

/// Looks for a state with two looping out-transitions (both staying in the
/// state's SCC) over overlapping symbols but different targets: two distinct
/// ways to consume the same symbol without leaving the loop, the NFA-level
/// witness of quantifier ambiguity.
bool findAmbiguousLoop(const Nfa &A) {
  std::vector<uint32_t> Comp = computeSccs(A.numStates(), A.transitions());

  // An SCC is cyclic if it has ≥ 2 members or a self-loop.
  std::vector<uint32_t> CompSize(A.numStates(), 0);
  for (uint32_t C : Comp)
    ++CompSize[C];
  std::vector<uint8_t> SelfLoop(A.numStates(), 0);
  for (const Transition &T : A.transitions())
    if (T.From == T.To)
      SelfLoop[Comp[T.From]] = 1;

  std::vector<std::vector<const Transition *>> LoopOut(A.numStates());
  for (const Transition &T : A.transitions()) {
    if (Comp[T.From] != Comp[T.To])
      continue;
    if (CompSize[Comp[T.From]] < 2 && !SelfLoop[Comp[T.From]])
      continue;
    LoopOut[T.From].push_back(&T);
  }
  for (StateId Q = 0; Q < A.numStates(); ++Q) {
    const auto &Arcs = LoopOut[Q];
    for (size_t I = 0; I < Arcs.size(); ++I)
      for (size_t J = I + 1; J < Arcs.size(); ++J)
        if (Arcs[I]->To != Arcs[J]->To &&
            Arcs[I]->Label.intersects(Arcs[J]->Label))
          return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Pairwise layer: brute-force oracle
//===----------------------------------------------------------------------===//

/// Union of every transition label (the rule's effective alphabet).
SymbolSet labelUnion(const Nfa &A) {
  SymbolSet U;
  for (const Transition &T : A.transitions())
    U |= T.Label;
  return U;
}

/// Picks up to \p MaxSymbols representative bytes from \p Alphabet (one per
/// distinct transition label would be ideal; the smallest members spread
/// over the set are a practical stand-in), plus one byte outside it when one
/// exists, so probes also exercise non-matching symbols.
std::vector<unsigned char> representativeSymbols(const SymbolSet &Alphabet,
                                                 uint32_t MaxSymbols) {
  std::vector<unsigned char> Symbols;
  Alphabet.forEach([&](unsigned char C) {
    if (Symbols.size() < MaxSymbols)
      Symbols.push_back(C);
  });
  SymbolSet Outside = Alphabet.complement();
  if (!Outside.empty())
    Symbols.push_back(Outside.min());
  return Symbols;
}

/// Probe-set comparison outcome.
struct OracleVerdict {
  bool Equal = true;
  bool ASubB = true; ///< ends(A) ⊆ ends(B) on every probe.
  bool BSubA = true;
  uint32_t Probes = 0;
};

/// Enumerates every string of length 1..MaxLength over \p Symbols and
/// compares the two automata's match-end sets on each.
OracleVerdict runOracle(const Nfa &A, const Nfa &B,
                        const std::vector<unsigned char> &Symbols,
                        uint32_t MaxLength) {
  OracleVerdict V;
  std::string Probe;
  // Iterative odometer over Symbols^Length for each length.
  for (uint32_t Length = 1;
       Length <= MaxLength && (V.Equal || V.ASubB || V.BSubA); ++Length) {
    std::vector<uint32_t> Digits(Length, 0);
    for (;;) {
      Probe.clear();
      for (uint32_t D : Digits)
        Probe.push_back(static_cast<char>(Symbols[D]));
      std::set<size_t> EndsA = simulateNfa(A, Probe);
      std::set<size_t> EndsB = simulateNfa(B, Probe);
      ++V.Probes;
      if (EndsA != EndsB)
        V.Equal = false;
      if (!std::includes(EndsB.begin(), EndsB.end(), EndsA.begin(),
                         EndsA.end()))
        V.ASubB = false;
      if (!std::includes(EndsA.begin(), EndsA.end(), EndsB.begin(),
                         EndsB.end()))
        V.BSubA = false;
      if (!V.Equal && !V.ASubB && !V.BSubA)
        break;
      // Advance the odometer.
      uint32_t Pos = 0;
      while (Pos < Length && ++Digits[Pos] == Symbols.size()) {
        Digits[Pos] = 0;
        ++Pos;
      }
      if (Pos == Length)
        break;
    }
  }
  return V;
}

} // namespace

//===----------------------------------------------------------------------===//
// lintRuleset
//===----------------------------------------------------------------------===//

LintSummary mfsa::lintRuleset(const std::vector<std::string> &Patterns,
                              const LintOptions &Options,
                              DiagnosticEngine &Diags) {
  LintSummary Summary;

  struct RuleArtifacts {
    bool Built = false;
    Regex Re;
    Nfa Optimized;
    SymbolSet Alphabet;
  };
  std::vector<RuleArtifacts> Rules(Patterns.size());

  for (uint32_t I = 0; I < Patterns.size(); ++I) {
    RuleArtifacts &R = Rules[I];

    // Front-end.
    Result<Regex> Re = parseRegex(Patterns[I], Options.Parse);
    if (!Re.ok()) {
      ++Summary.RulesBroken;
      Diags.report(Severity::Error, "lint.parse-error", Re.diag().Message,
                   SourceSpan::forPattern(I, Re.diag().Offset));
      continue;
    }
    R.Re = Re.take();

    // AST layer.
    if (hasNestedQuantifier(*R.Re.Root))
      Diags.report(
          Severity::Warning, "lint.redos.nested-quantifier",
          "unbounded quantifier wraps a variable-iteration quantifier "
          "(catastrophic-ambiguity shape, e.g. (a+)+)",
          SourceSpan::forRule(I),
          "make the inner repetition fixed-count or unroll the outer one");
    uint64_t Estimate = estimateExpandedStates(*R.Re.Root);
    if (Estimate > Options.ExpansionWarnStates) {
      Diags.report(Severity::Warning, "lint.expansion.state-blowup",
                   "bounded-repeat expansion allocates ~" +
                       std::to_string(Estimate) +
                       " states (lint threshold " +
                       std::to_string(Options.ExpansionWarnStates) + ")",
                   SourceSpan::forRule(I),
                   "lower the repeat bounds or raise the compile budget "
                   "knowingly");
      // Don't build what we just flagged: the NFA/language/pairwise layers
      // on a blowup automaton would cost exactly the time the warning tells
      // the user to avoid spending.
      continue;
    }

    // Middle-end. Cap construction so the linter itself stays bounded on
    // the very blowups it just warned about.
    BuildOptions Build;
    Build.MaxStates = 1u << 18;
    Result<Nfa> Raw = buildNfa(R.Re, Build);
    if (!Raw.ok()) {
      ++Summary.RulesBroken;
      Diags.report(Severity::Error, "lint.build-error", Raw.diag().Message,
                   SourceSpan::forRule(I));
      continue;
    }
    ++Summary.RulesAnalyzed;

    // NFA layer: ambiguity on the ε-free (but unfolded) automaton, where
    // every Thompson branch still has its own states.
    Nfa EpsFree = removeEpsilons(*Raw);
    if (findAmbiguousLoop(EpsFree))
      Diags.report(Severity::Warning, "lint.redos.ambiguous-loop",
                   "a state has two looping transitions over overlapping "
                   "symbols: the same input can cycle along distinct paths",
                   SourceSpan::forRule(I),
                   "disambiguate the alternation/quantifier so loop symbols "
                   "are disjoint");

    // Language layer.
    R.Optimized = optimizeForMerging(*Raw);
    R.Alphabet = labelUnion(R.Optimized);
    R.Built = true;

    if (R.Optimized.finals().empty() ||
        R.Optimized.numTransitions() == 0) {
      Diags.report(Severity::Warning, "lint.language.empty",
                   "rule can never report a match (language empty or "
                   "zero-length only)",
                   SourceSpan::forRule(I),
                   "zero-length matches are never reported; drop or fix the "
                   "rule");
    } else {
      bool Universal = true;
      for (unsigned C = 0; C < 256 && Universal; ++C) {
        if (C == '\n')
          continue; // `.` conventionally excludes newline; a `.*` rule is
                    // still universal for every realistic input.
        const char Byte = static_cast<char>(C);
        Universal = !simulateNfa(R.Optimized,
                                 std::string_view(&Byte, 1))
                         .empty();
      }
      if (Universal)
        Diags.report(Severity::Warning, "lint.language.universal",
                     "every single-byte input matches: the rule fires at "
                     "every offset",
                     SourceSpan::forRule(I),
                     "anchor or constrain the rule; universal rules drown "
                     "the match stream");
    }
  }

  // Pairwise layer. Pairs small enough for the antichain prover are
  // *decided* — duplicate/subsumption findings become language proofs
  // (method "exact") and non-findings mean the languages really are
  // incomparable. The brute-force probe oracle survives as the fallback
  // for pairs over the exact cutoff or whose proof hits the macrostate cap
  // (method "heuristic").
  if (!Options.CheckDuplicates && !Options.CheckSubsumption)
    return Summary;
  // Rendered as a (method-tagged) finding; the convenience report() has no
  // Method parameter on purpose — only pairwise findings carry one.
  auto Report = [&](Severity Sev, const char *CheckId, std::string Message,
                    uint32_t Rule, std::string FixHint, const char *Method) {
    Finding F;
    F.Sev = Sev;
    F.CheckId = CheckId;
    F.Message = std::move(Message);
    F.Span = SourceSpan::forRule(Rule);
    F.FixHint = std::move(FixHint);
    F.Method = Method;
    Diags.report(std::move(F));
  };
  // Subsumption notes on a rule whose whole language is empty (or ε-only)
  // are vacuous — lint.language.empty already covers it.
  auto Trivial = [](const RuleArtifacts &R) {
    return R.Optimized.finals().empty() || R.Optimized.numTransitions() == 0;
  };
  for (uint32_t I = 0; I < Rules.size(); ++I) {
    const RuleArtifacts &A = Rules[I];
    if (!A.Built)
      continue;
    for (uint32_t J = I + 1; J < Rules.size(); ++J) {
      const RuleArtifacts &B = Rules[J];
      if (!B.Built)
        continue;
      const bool ExactEligible =
          Options.ExactCheckMaxStates != 0 &&
          A.Optimized.numStates() <= Options.ExactCheckMaxStates &&
          B.Optimized.numStates() <= Options.ExactCheckMaxStates;
      const bool OracleEligible =
          A.Optimized.numStates() <= Options.OracleMaxStates &&
          B.Optimized.numStates() <= Options.OracleMaxStates;
      if (!ExactEligible && !OracleEligible)
        continue;
      if (A.Optimized.anchoredStart() != B.Optimized.anchoredStart() ||
          A.Optimized.anchoredEnd() != B.Optimized.anchoredEnd())
        continue;

      // Fast path: canonical automata are structurally comparable, and
      // structural identity is an exact proof for free.
      if (Options.CheckDuplicates && A.Optimized == B.Optimized) {
        Report(Severity::Warning, "lint.duplicate-rule",
               "duplicate of rule " + std::to_string(I) +
                   ": identical optimized automaton",
               J, "remove one of the two rules", "exact");
        continue;
      }

      if (ExactEligible) {
        InclusionOptions Exact;
        Exact.MaxMacrostates = Options.ExactCheckMaxMacrostates;
        const EquivalenceResult E =
            checkEquivalence(A.Optimized, B.Optimized, Exact);
        const bool AInB = E.AInB.included();
        const bool BInA = E.BInA.included();
        if (AInB && BInA) {
          if (Options.CheckDuplicates)
            Report(Severity::Warning, "lint.duplicate-rule",
                   "duplicate of rule " + std::to_string(I) +
                       ": languages proven equal",
                   J, "the rules accept exactly the same words; remove one",
                   "exact");
          else if (Options.CheckSubsumption && !Trivial(A))
            Report(Severity::Note, "lint.subsumed-rule",
                   "rule " + std::to_string(I) + " subsumed by rule " +
                       std::to_string(J) + " (language inclusion proven)",
                   I, {}, "exact");
          continue;
        }
        if (AInB || BInA) {
          // One-sided inclusion holds even if the other direction hit the
          // macrostate cap — a proof is a proof.
          const uint32_t Sub = AInB ? I : J;
          const uint32_t Super = AInB ? J : I;
          if (Options.CheckSubsumption && !Trivial(AInB ? A : B))
            Report(Severity::Note, "lint.subsumed-rule",
                   "rule " + std::to_string(Sub) + " subsumed by rule " +
                       std::to_string(Super) +
                       " (language inclusion proven)",
                   Sub, {}, "exact");
          continue;
        }
        if (E.AInB.conclusive() && E.BInA.conclusive())
          continue; // Proven incomparable; nothing to report.
        // Both directions undecided (macrostate cap): fall back to probes.
      }

      // Oracle path, gated on identical effective alphabets so the
      // quadratic pass only probes plausible pairs.
      if (!OracleEligible || A.Alphabet != B.Alphabet)
        continue;
      std::vector<unsigned char> Symbols =
          representativeSymbols(A.Alphabet, Options.OracleMaxAlphabet);
      if (Symbols.empty())
        continue;
      OracleVerdict V = runOracle(A.Optimized, B.Optimized, Symbols,
                                  Options.OracleMaxLength);
      if (Options.CheckDuplicates && V.Equal) {
        Report(Severity::Warning, "lint.duplicate-rule",
               "likely duplicate of rule " + std::to_string(I) +
                   ": identical matches on all " + std::to_string(V.Probes) +
                   " probe inputs",
               J,
               "the rules report the same (rule, end) matches; remove one",
               "heuristic");
      } else if (Options.CheckSubsumption && V.ASubB) {
        Report(Severity::Note, "lint.subsumed-rule",
               "rule " + std::to_string(I) + " appears subsumed by rule " +
                   std::to_string(J) + " (matches ⊆ on " +
                   std::to_string(V.Probes) + " probe inputs)",
               I, {}, "heuristic");
      } else if (Options.CheckSubsumption && V.BSubA) {
        Report(Severity::Note, "lint.subsumed-rule",
               "rule " + std::to_string(J) + " appears subsumed by rule " +
                   std::to_string(I) + " (matches ⊆ on " +
                   std::to_string(V.Probes) + " probe inputs)",
               J, {}, "heuristic");
      }
    }
  }
  return Summary;
}

//===----------------------------------------------------------------------===//
// lintMfsa: post-merge belonging-set analysis
//===----------------------------------------------------------------------===//

void mfsa::lintMfsa(const Mfsa &Z, const LintOptions &Options,
                    DiagnosticEngine &Diags) {
  const uint32_t R = Z.numRules();
  const uint32_t N = Z.numStates();
  const std::vector<MfsaTransition> &Ts = Z.transitions();

  // Sub[i] = ∩ { bel(t) : rule i owns t }: the rules sharing *every* arc of
  // rule i. One sweep over the transitions computes all R intersections.
  std::vector<DynamicBitset> Sub(R);
  std::vector<uint8_t> Owns(R, 0);
  for (const MfsaTransition &T : Ts) {
    if (T.Bel.size() != R)
      continue; // Corrupt arc; the verifier reports it.
    T.Bel.forEach([&](unsigned I) {
      if (!Owns[I]) {
        Sub[I] = T.Bel;
        Owns[I] = 1;
      } else {
        Sub[I] &= T.Bel;
      }
    });
  }

  auto SortedFinals = [&](RuleId Id) {
    std::vector<StateId> F = Z.rule(Id).Finals;
    std::sort(F.begin(), F.end());
    F.erase(std::unique(F.begin(), F.end()), F.end());
    return F;
  };

  for (RuleId I = 0; I < R; ++I) {
    if (!Owns[I])
      continue;
    for (RuleId J = 0; J < R; ++J) {
      if (I == J || !Owns[J] || !Sub[I].test(J))
        continue;
      if (Z.rule(I).Initial != Z.rule(J).Initial)
        continue;
      const bool Mutual = Sub[J].test(I);
      std::vector<StateId> FinalsI = SortedFinals(I), FinalsJ = SortedFinals(J);
      if (Mutual && J > I && FinalsI == FinalsJ) {
        if (Options.CheckDuplicates)
          Diags.report(Severity::Warning, "lint.merge.identical-rules",
                       "rules with global ids " +
                           std::to_string(Z.rule(I).GlobalId) + " and " +
                           std::to_string(Z.rule(J).GlobalId) +
                           " map to the same merged sub-automaton",
                       SourceSpan::forRule(Z.rule(J).GlobalId),
                       "the rules are duplicates; remove one");
      } else if (!Mutual && Options.CheckSubsumption &&
                 std::includes(FinalsJ.begin(), FinalsJ.end(),
                               FinalsI.begin(), FinalsI.end())) {
        Diags.report(Severity::Note, "lint.merge.subsumed-rule",
                     "every arc of rule with global id " +
                         std::to_string(Z.rule(I).GlobalId) +
                         " is shared with rule " +
                         std::to_string(Z.rule(J).GlobalId),
                     SourceSpan::forRule(Z.rule(I).GlobalId));
      }
    }
  }

  // Dead weight: states no rule reaches from its initial state. They cost
  // transition-table width in every engine yet can never influence a match.
  if (N > 0) {
    std::vector<uint8_t> Seen(N, 0);
    std::queue<StateId> Work;
    for (RuleId I = 0; I < R; ++I)
      if (Z.rule(I).Initial < N && !Seen[Z.rule(I).Initial]) {
        Seen[Z.rule(I).Initial] = 1;
        Work.push(Z.rule(I).Initial);
      }
    std::vector<std::vector<StateId>> Out(N);
    for (const MfsaTransition &T : Ts)
      if (T.From < N && T.To < N)
        Out[T.From].push_back(T.To);
    while (!Work.empty()) {
      StateId Q = Work.front();
      Work.pop();
      for (StateId S : Out[Q])
        if (!Seen[S]) {
          Seen[S] = 1;
          Work.push(S);
        }
    }
    uint32_t Unreached = 0;
    StateId First = 0;
    for (StateId Q = 0; Q < N; ++Q)
      if (!Seen[Q]) {
        if (!Unreached)
          First = Q;
        ++Unreached;
      }
    if (Unreached)
      Diags.report(Severity::Warning, "lint.merge.unreachable-state",
                   std::to_string(Unreached) +
                       " merged state(s) unreachable from every rule's "
                       "initial state (first: " +
                       std::to_string(First) + ")",
                   SourceSpan::forElement(First),
                   "re-run compaction or report a merge bug");
  }
}

//===----------------------------------------------------------------------===//
// lintCost: cost-model analysis (analysis/CostModel.h)
//===----------------------------------------------------------------------===//

void mfsa::lintCost(const Mfsa &Z, const std::vector<std::string> &Patterns,
                    const LintOptions &Options, DiagnosticEngine &Diags) {
  const uint32_t R = Z.numRules();
  if (R == 0)
    return;

  // Width pass. The bound is sound either way; the method tag records
  // whether the antichain search finished ("exact") or fell back to the
  // trivial all-rules bound after exhausting its budget ("heuristic").
  WidthOptions WO;
  WO.MaxMacrostates = Options.CostWidthMaxMacrostates;
  const WidthBound W = boundActivationWidth(Z, WO);
  if (W.MaxActiveRules >= Options.CostWidthWarnRules) {
    Finding F;
    F.Sev = Severity::Warning;
    F.CheckId = "lint.cost.width-hotspot";
    F.Message = "activation width bound: up to " +
                std::to_string(W.MaxActiveRules) + " of " + std::to_string(R) +
                " rules simultaneously active (" +
                std::to_string(W.MaxActiveStates) +
                " states); every engine step pays the full belonging union";
    F.FixHint = "split hot rules into their own merge group or lower the "
                "merging factor";
    F.Method = W.Exact ? "exact" : "heuristic";
    Diags.report(std::move(F));
  }

  // Blowup pass. A probe that hits its cap has *constructed* that many
  // subset states, so the finding is a demonstration, not an estimate.
  DfaProbeOptions PO;
  PO.MaxStates = Options.CostDfaProbeMaxStates;
  const DfaEstimate D = probeDfaBlowup(Z, PO);
  if (!D.Completed) {
    Finding F;
    F.Sev = Severity::Warning;
    F.CheckId = "lint.cost.dfa-blowup";
    F.Message = "subset construction exceeded the probe budget of " +
                std::to_string(PO.MaxStates) +
                " states; DFA and strided engines would blow up on this "
                "ruleset";
    F.FixHint = "keep this ruleset on the iMFAnt or prefilter paths";
    F.Method = "exact";
    Diags.report(std::move(F));
  }

  // Prefilter pass: in a literal-heavy ruleset, each literal-free rule
  // forces the residual full-scan path on the whole input. Only meaningful
  // when the original patterns are available.
  if (!Patterns.empty()) {
    const LiteralProfile L =
        profileLiterals(Z, Patterns, Options.CostMinLiteralLength);
    if (L.TotalRules >= 4 && L.PrefilterableFraction >= 0.5 &&
        L.PrefilterableRules < L.TotalRules) {
      for (RuleId I = 0; I < R; ++I) {
        if (I < L.RulePrefilterable.size() && L.RulePrefilterable[I])
          continue;
        Finding F;
        F.Sev = Severity::Note;
        F.CheckId = "lint.cost.prefilter-defeated";
        F.Message = "rule has no required literal of length >= " +
                    std::to_string(Options.CostMinLiteralLength) +
                    " in a literal-heavy ruleset (" +
                    std::to_string(L.PrefilterableRules) + "/" +
                    std::to_string(L.TotalRules) +
                    " prefilterable); it forces the residual full scan";
        F.Span = SourceSpan::forRule(Z.rule(I).GlobalId);
        F.FixHint = "anchor the rule on a distinctive literal, or exclude "
                    "it from the prefiltered group";
        F.Method = "exact";
        Diags.report(std::move(F));
      }
    }
  }
}
