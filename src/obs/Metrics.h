//===- Metrics.h - counters, gauges, and histograms -------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares MetricsRegistry, the process-wide observability hub: named
/// counters (monotonic), gauges (last-value), and fixed-bucket histograms,
/// exported as JSON or human-readable text. The registry answers the
/// questions the paper's evaluation is built on — active-set occupancy
/// (Table II), transitions examined per byte, per-stage compile cost
/// (Fig. 8), prefilter hit rates — without any engine keeping private
/// bookkeeping structures.
///
/// Cost model (see docs/observability.md):
///
///   - Registration (counter()/gauge()/histogram()) takes a mutex and may
///     allocate; engines resolve their handles once, at setMetrics() time.
///   - Updates on resolved handles are single relaxed atomic RMWs — safe
///     from any thread, never blocking, and cheap enough for sampled use on
///     scan hot paths.
///   - The per-byte scan instrumentation is additionally compiled out
///     entirely (MFSA_METRICS_ENABLED == 0) in NDEBUG builds unless the
///     build was configured with -DMFSA_METRICS=1, so a Release engine
///     pays literally nothing when observability is off.
///
/// Naming convention: lowercase dotted paths (`imfant.frontier_size`).
/// Metrics holding wall time end in `_ms` or `_ns`; the golden-JSON tests
/// rely on that suffix to mask the nondeterministic fields.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_OBS_METRICS_H
#define MFSA_OBS_METRICS_H

#include "support/Sync.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

/// Nonzero when the per-byte scan instrumentation is compiled into the
/// engines: always in !NDEBUG builds, and in any build configured with
/// -DMFSA_METRICS=1 (the CMake MFSA_METRICS option). The registry itself is
/// always available — only the hot-loop sampling is gated.
#if defined(MFSA_METRICS) || !defined(NDEBUG)
#define MFSA_METRICS_ENABLED 1
#else
#define MFSA_METRICS_ENABLED 0
#endif

namespace mfsa::obs {

/// Compile-time gate as a testable constant (tests skip scan-path golden
/// checks when the engines were built without instrumentation).
inline constexpr bool kScanMetricsCompiledIn = MFSA_METRICS_ENABLED != 0;

/// Monotonically increasing event count.
///
/// Memory order: all relaxed — each metric cell is an independent statistic;
/// nothing is published through it and cross-metric consistency is not
/// promised (an export may observe counter A's bump before counter B's).
class Counter {
public:
  void add(uint64_t N = 1) { Value.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Value{0};
};

/// Last-written value (engine sizes, configuration echoes).
///
/// Memory order: relaxed — last-writer-wins is the whole contract; no other
/// data is ordered against a gauge write.
class Gauge {
public:
  void set(int64_t V) { Value.store(V, std::memory_order_relaxed); }
  int64_t value() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0, std::memory_order_relaxed); }

private:
  std::atomic<int64_t> Value{0};
};

/// Fixed-bucket histogram over uint64 observations. Buckets are defined by
/// inclusive upper bounds; an observation lands in the first bucket whose
/// bound is >= the value, or in the implicit overflow bucket past the last
/// bound. Count, sum, and max ride along so means and peaks (the Table II
/// avg/max pair) need no separate metric.
///
/// Memory order: relaxed throughout (see Counter) — buckets, Total, Sum,
/// and Max are each independently monotone; a concurrent export may see a
/// bucket bump before the matching Total bump, which the JSON schema
/// tolerates (no cross-field invariant is exported).
class Histogram {
public:
  explicit Histogram(std::vector<uint64_t> UpperBounds);

  void observe(uint64_t V);

  const std::vector<uint64_t> &bounds() const { return Bounds; }
  uint64_t bucketCount(size_t I) const {
    return Counts[I].load(std::memory_order_relaxed);
  }
  size_t numBuckets() const { return Counts.size(); } ///< bounds + overflow.
  uint64_t count() const { return Total.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  double mean() const {
    uint64_t N = count();
    return N ? static_cast<double>(sum()) / static_cast<double>(N) : 0.0;
  }
  void reset();

private:
  std::vector<uint64_t> Bounds; ///< Sorted, strictly increasing.
  std::vector<std::atomic<uint64_t>> Counts; ///< Bounds.size() + 1 slots.
  std::atomic<uint64_t> Total{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Max{0};
};

/// Power-of-two bucket bounds {1, 2, 4, ..., 2^MaxExp}, the default shape
/// for occupancy and transitions-per-byte distributions.
std::vector<uint64_t> pow2Buckets(unsigned MaxExp);

/// Named-metric registry. Registration is mutex-guarded and idempotent
/// (same name returns the same object); returned references stay valid for
/// the registry's lifetime, so callers cache them and update lock-free.
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  Counter &counter(std::string_view Name) MFSA_EXCLUDES(RegistryMutex);
  Gauge &gauge(std::string_view Name) MFSA_EXCLUDES(RegistryMutex);
  /// \p UpperBounds is consulted only on first registration; later calls
  /// with the same name return the existing histogram unchanged.
  Histogram &histogram(std::string_view Name,
                       std::vector<uint64_t> UpperBounds)
      MFSA_EXCLUDES(RegistryMutex);

  /// Zeroes every metric, keeping registrations (and cached handles) alive.
  void reset() MFSA_EXCLUDES(RegistryMutex);

  /// One JSON object with "counters", "gauges", and "histograms" members,
  /// each metric on its own line sorted by name — stable output for golden
  /// tests, greppable for humans.
  std::string toJson() const MFSA_EXCLUDES(RegistryMutex);

  /// Aligned human-readable dump (for --metrics on a terminal).
  std::string toText() const MFSA_EXCLUDES(RegistryMutex);

private:
  /// Rank 80 (see the Sync.h table): a leaf — registration never calls out
  /// while holding it. Acquired under SessionsMutex/QueueMutex/CacheMutex/
  /// SlotMutex on the service paths that count events inside those locks.
  mutable sync::Mutex RegistryMutex MFSA_LOCK_RANK(80);
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> Counters
      MFSA_GUARDED_BY(RegistryMutex);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> Gauges
      MFSA_GUARDED_BY(RegistryMutex);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> Histograms
      MFSA_GUARDED_BY(RegistryMutex);
};

/// The process-wide registry the CLIs and benches dump. Library code only
/// touches it when explicitly pointed at it (setMetrics / recordTo).
MetricsRegistry &globalRegistry();

/// Scan-path sampling period: instrumented engines record distribution
/// samples every Nth consumed byte (counters stay exact). Initialized from
/// the MFSA_METRICS_SAMPLE environment variable (default 64, minimum 1).
uint32_t scanSampleEvery();

/// Test hook overriding the sampling period for deterministic goldens.
void setScanSampleEvery(uint32_t N);

} // namespace mfsa::obs

#endif // MFSA_OBS_METRICS_H
