//===- Metrics.cpp - counters, gauges, and histograms --------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace mfsa;
using namespace mfsa::obs;

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

Histogram::Histogram(std::vector<uint64_t> UpperBounds)
    : Bounds(std::move(UpperBounds)), Counts(Bounds.size() + 1) {
  assert(std::is_sorted(Bounds.begin(), Bounds.end()) &&
         std::adjacent_find(Bounds.begin(), Bounds.end()) == Bounds.end() &&
         "histogram bounds must be strictly increasing");
}

void Histogram::observe(uint64_t V) {
  size_t Slot = std::lower_bound(Bounds.begin(), Bounds.end(), V) -
                Bounds.begin();
  Counts[Slot].fetch_add(1, std::memory_order_relaxed);
  Total.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(V, std::memory_order_relaxed);
  // Relaxed CAS max: Max only ever grows, and no data is published through
  // it; on CAS failure Prev is refreshed, so the loop terminates as soon as
  // Max >= V regardless of contention.
  uint64_t Prev = Max.load(std::memory_order_relaxed);
  while (V > Prev &&
         !Max.compare_exchange_weak(Prev, V, std::memory_order_relaxed))
    ;
}

void Histogram::reset() {
  for (auto &C : Counts)
    C.store(0, std::memory_order_relaxed);
  Total.store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
  Max.store(0, std::memory_order_relaxed);
}

std::vector<uint64_t> mfsa::obs::pow2Buckets(unsigned MaxExp) {
  std::vector<uint64_t> Bounds;
  Bounds.reserve(MaxExp + 1);
  for (unsigned E = 0; E <= MaxExp; ++E)
    Bounds.push_back(uint64_t(1) << E);
  return Bounds;
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

Counter &MetricsRegistry::counter(std::string_view Name) {
  sync::MutexLock Lock(RegistryMutex);
  auto It = Counters.find(Name);
  if (It == Counters.end())
    It = Counters.emplace(std::string(Name), std::make_unique<Counter>())
             .first;
  return *It->second;
}

Gauge &MetricsRegistry::gauge(std::string_view Name) {
  sync::MutexLock Lock(RegistryMutex);
  auto It = Gauges.find(Name);
  if (It == Gauges.end())
    It = Gauges.emplace(std::string(Name), std::make_unique<Gauge>()).first;
  return *It->second;
}

Histogram &MetricsRegistry::histogram(std::string_view Name,
                                      std::vector<uint64_t> UpperBounds) {
  sync::MutexLock Lock(RegistryMutex);
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    It = Histograms
             .emplace(std::string(Name),
                      std::make_unique<Histogram>(std::move(UpperBounds)))
             .first;
  return *It->second;
}

void MetricsRegistry::reset() {
  sync::MutexLock Lock(RegistryMutex);
  for (auto &[Name, C] : Counters)
    C->reset();
  for (auto &[Name, G] : Gauges)
    G->reset();
  for (auto &[Name, H] : Histograms)
    H->reset();
}

namespace {

void appendJsonNumber(std::string &Out, double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  Out += Buf;
}

} // namespace

std::string MetricsRegistry::toJson() const {
  sync::MutexLock Lock(RegistryMutex);
  std::string Out = "{\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, C] : Counters) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    \"" + Name + "\": " + std::to_string(C->value());
  }
  Out += First ? "},\n" : "\n  },\n";
  Out += "  \"gauges\": {";
  First = true;
  for (const auto &[Name, G] : Gauges) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    \"" + Name + "\": " + std::to_string(G->value());
  }
  Out += First ? "},\n" : "\n  },\n";
  Out += "  \"histograms\": {";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    \"" + Name + "\": {\"bounds\": [";
    for (size_t I = 0; I < H->bounds().size(); ++I) {
      if (I)
        Out += ",";
      Out += std::to_string(H->bounds()[I]);
    }
    Out += "], \"counts\": [";
    for (size_t I = 0; I < H->numBuckets(); ++I) {
      if (I)
        Out += ",";
      Out += std::to_string(H->bucketCount(I));
    }
    Out += "], \"count\": " + std::to_string(H->count()) +
           ", \"sum\": " + std::to_string(H->sum()) +
           ", \"max\": " + std::to_string(H->max()) + ", \"mean\": ";
    appendJsonNumber(Out, H->mean());
    Out += "}";
  }
  Out += First ? "}\n" : "\n  }\n";
  Out += "}\n";
  return Out;
}

std::string MetricsRegistry::toText() const {
  sync::MutexLock Lock(RegistryMutex);
  std::string Out;
  char Buf[160];
  for (const auto &[Name, C] : Counters) {
    std::snprintf(Buf, sizeof(Buf), "%-40s %20llu\n", Name.c_str(),
                  static_cast<unsigned long long>(C->value()));
    Out += Buf;
  }
  for (const auto &[Name, G] : Gauges) {
    std::snprintf(Buf, sizeof(Buf), "%-40s %20lld\n", Name.c_str(),
                  static_cast<long long>(G->value()));
    Out += Buf;
  }
  for (const auto &[Name, H] : Histograms) {
    std::snprintf(Buf, sizeof(Buf),
                  "%-40s count=%llu mean=%.2f max=%llu\n", Name.c_str(),
                  static_cast<unsigned long long>(H->count()), H->mean(),
                  static_cast<unsigned long long>(H->max()));
    Out += Buf;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Process-wide plumbing
//===----------------------------------------------------------------------===//

MetricsRegistry &mfsa::obs::globalRegistry() {
  static MetricsRegistry Registry;
  return Registry;
}

namespace {

// Relaxed: the override is a standalone test knob read at scan-loop entry;
// a sampler observing the old period for one extra scan is harmless.
std::atomic<uint32_t> SampleEveryOverride{0};

uint32_t sampleEveryFromEnv() {
  const char *Env = std::getenv("MFSA_METRICS_SAMPLE");
  if (!Env || !*Env)
    return 64;
  unsigned long V = std::strtoul(Env, nullptr, 10);
  return V < 1 ? 1 : static_cast<uint32_t>(V);
}

} // namespace

uint32_t mfsa::obs::scanSampleEvery() {
  uint32_t Override = SampleEveryOverride.load(std::memory_order_relaxed);
  if (Override != 0)
    return Override;
  static const uint32_t FromEnv = sampleEveryFromEnv();
  return FromEnv;
}

void mfsa::obs::setScanSampleEvery(uint32_t N) {
  SampleEveryOverride.store(N < 1 ? 1 : N, std::memory_order_relaxed);
}
