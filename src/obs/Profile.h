//===- Profile.h - RAII scoped-timer profiling hooks ------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares ScopedTimer and the MFSA_PROFILE_SCOPE macro: RAII wall-clock
/// probes that feed the same MetricsRegistry as the counters, so one JSON
/// dump carries both event counts and where the time went. A scope named
/// "merge.group" produces the histogram `merge.group_ns` (nanosecond
/// observations; the `_ns` suffix marks it as timing for the golden-test
/// masking convention in Metrics.h).
///
/// The macro compiles to nothing when MFSA_METRICS_ENABLED is 0, matching
/// the scan-instrumentation gate; ScopedTimer itself is always available
/// for call sites that want explicit control.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_OBS_PROFILE_H
#define MFSA_OBS_PROFILE_H

#include "obs/Metrics.h"
#include "support/Timer.h"

namespace mfsa::obs {

/// Observes the scope's elapsed nanoseconds into \p Target on destruction.
/// Target may be null (probe disabled) so call sites can gate at runtime
/// without branching around the declaration.
class ScopedTimer {
public:
  explicit ScopedTimer(Histogram *Target) : Target(Target) {}
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;
  ~ScopedTimer() {
    if (Target)
      Target->observe(Clock.elapsedNs());
  }

private:
  Histogram *Target;
  Timer Clock;
};

/// Default bucket bounds for `_ns` scope histograms: 1 µs .. ~4 s.
inline std::vector<uint64_t> profileBuckets() {
  std::vector<uint64_t> Bounds;
  for (uint64_t B = 1000; B <= 4'000'000'000ULL; B *= 4)
    Bounds.push_back(B);
  return Bounds;
}

/// Registers (once) and returns the `<Name>_ns` histogram in \p Registry.
inline Histogram &profileScope(MetricsRegistry &Registry,
                               std::string_view Name) {
  return Registry.histogram(std::string(Name) + "_ns", profileBuckets());
}

} // namespace mfsa::obs

#define MFSA_OBS_CAT2(A, B) A##B
#define MFSA_OBS_CAT(A, B) MFSA_OBS_CAT2(A, B)

#if MFSA_METRICS_ENABLED
/// Times the rest of the enclosing scope into `<NAME>_ns` of REGISTRY.
#define MFSA_PROFILE_SCOPE(REGISTRY, NAME)                                   \
  ::mfsa::obs::ScopedTimer MFSA_OBS_CAT(MfsaProfileScope, __LINE__)(         \
      &::mfsa::obs::profileScope((REGISTRY), (NAME)))
#else
#define MFSA_PROFILE_SCOPE(REGISTRY, NAME)                                   \
  do {                                                                       \
  } while (false)
#endif

#endif // MFSA_OBS_PROFILE_H
