//===- Determinize.cpp - scanning subset construction --------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "fsa/Determinize.h"

#include "fsa/AlphabetPartition.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <queue>

using namespace mfsa;

size_t Dfa::footprintBytes() const {
  size_t Bytes = Next.size() * 4 + AtomOfByte.size() + GlobalIds.size() * 4;
  for (const DynamicBitset &B : Accept)
    Bytes += B.words().size() * 8;
  for (const DynamicBitset &B : AcceptAtEnd)
    Bytes += B.words().size() * 8;
  return Bytes;
}

namespace {

/// A subset of union-NFA states, kept sorted for canonical identity. States
/// are globally renumbered across the input automata.
using Subset = std::vector<uint32_t>;

} // namespace

Result<Dfa> mfsa::determinize(const std::vector<Nfa> &Fsas,
                              const std::vector<uint32_t> &GlobalIds,
                              const DeterminizeOptions &Options) {
  assert(Fsas.size() == GlobalIds.size() && "one global id per rule");
  const uint32_t NumRules = static_cast<uint32_t>(Fsas.size());

  // Clone each rule's initial state into a fresh non-final entry state.
  // Restart injection uses the clone, so a final initial state (an RE whose
  // language contains ε) never reports a zero-length match — matching the
  // engine/oracle semantics of fsa/Reference.h.
  std::vector<Nfa> Prepared;
  Prepared.reserve(NumRules);
  for (const Nfa &Original : Fsas) {
    for (const Transition &T : Original.transitions())
      if (T.isEpsilon())
        return Result<Dfa>::error("determinize requires ε-free automata");
    Nfa A = Original;
    StateId Entry = A.addState();
    StateId OldInitial = A.initial();
    for (uint32_t I = 0, E = A.numTransitions(); I != E; ++I) {
      const Transition T = A.transitions()[I];
      if (T.From == OldInitial)
        A.addTransition(Entry, T.To, T.Label);
    }
    A.setInitial(Entry);
    A.canonicalize();
    Prepared.push_back(std::move(A));
  }
  const std::vector<Nfa> &Rules = Prepared;

  // Globally renumber: rule R's state s becomes Offset[R] + s.
  std::vector<uint32_t> Offset(NumRules + 1, 0);
  for (uint32_t R = 0; R < NumRules; ++R)
    Offset[R + 1] = Offset[R] + Rules[R].numStates();
  const uint32_t TotalStates = Offset[NumRules];

  // Alphabet atoms over the whole union.
  std::vector<SymbolSet> Atoms = computeAlphabetAtoms(Rules);
  const uint32_t NumAtoms = static_cast<uint32_t>(Atoms.size());

  // Per-state, per-atom successor lists of the union NFA.
  std::vector<std::vector<std::vector<uint32_t>>> Moves(
      TotalStates, std::vector<std::vector<uint32_t>>(NumAtoms));
  for (uint32_t R = 0; R < NumRules; ++R) {
    for (const Transition &T : Rules[R].transitions()) {
      for (uint32_t AtomIdx = 0; AtomIdx < NumAtoms; ++AtomIdx) {
        if (!T.Label.intersects(Atoms[AtomIdx]))
          continue;
        Moves[Offset[R] + T.From][AtomIdx].push_back(Offset[R] + T.To);
      }
    }
  }

  // Per-state metadata: rule, finality, anchored-end finality.
  std::vector<uint32_t> RuleOf(TotalStates);
  std::vector<bool> FinalFlag(TotalStates, false);
  for (uint32_t R = 0; R < NumRules; ++R) {
    for (uint32_t S = 0; S < Rules[R].numStates(); ++S)
      RuleOf[Offset[R] + S] = R;
    for (StateId F : Rules[R].finals())
      FinalFlag[Offset[R] + F] = true;
  }

  // Restart set: unanchored rules' initial states, injected after every
  // consumed symbol.
  Subset Restart;
  Subset StartSubset;
  for (uint32_t R = 0; R < NumRules; ++R) {
    uint32_t Initial = Offset[R] + Rules[R].initial();
    StartSubset.push_back(Initial);
    if (!Rules[R].anchoredStart())
      Restart.push_back(Initial);
  }
  std::sort(StartSubset.begin(), StartSubset.end());
  std::sort(Restart.begin(), Restart.end());

  // Subset construction.
  Dfa Out;
  Out.NumAtoms = NumAtoms;
  Out.NumRules = NumRules;
  Out.GlobalIds = GlobalIds;
  Out.AtomOfByte.assign(256, 0);
  for (uint32_t AtomIdx = 0; AtomIdx < NumAtoms; ++AtomIdx)
    Atoms[AtomIdx].forEach(
        [&](unsigned char C) { Out.AtomOfByte[C] = static_cast<uint8_t>(AtomIdx); });

  std::map<Subset, uint32_t> SubsetIds;
  std::vector<Subset> Subsets;
  auto Intern = [&](Subset S) -> uint32_t {
    auto [It, Inserted] =
        SubsetIds.emplace(std::move(S), static_cast<uint32_t>(Subsets.size()));
    if (Inserted)
      Subsets.push_back(It->first);
    return It->second;
  };

  uint32_t StartId = Intern(StartSubset);
  (void)StartId;
  assert(StartId == 0 && "start subset must be state 0");

  std::queue<uint32_t> Work;
  Work.push(0);
  std::vector<bool> Processed;

  while (!Work.empty()) {
    uint32_t Id = Work.front();
    Work.pop();
    if (Id < Processed.size() && Processed[Id])
      continue;
    if (Processed.size() <= Id)
      Processed.resize(Id + 1, false);
    Processed[Id] = true;

    if (Subsets.size() > Options.MaxStates)
      return Result<Dfa>::error(
          "DFA state explosion: more than " +
          std::to_string(Options.MaxStates) + " subsets");

    // Reserve the row now; Next may reallocate as new states appear.
    if (Out.Next.size() < (static_cast<size_t>(Id) + 1) * NumAtoms)
      Out.Next.resize((static_cast<size_t>(Id) + 1) * NumAtoms, 0);

    const Subset Current = Subsets[Id]; // copy: Subsets may grow below
    for (uint32_t AtomIdx = 0; AtomIdx < NumAtoms; ++AtomIdx) {
      Subset Target = Restart;
      for (uint32_t S : Current)
        for (uint32_t To : Moves[S][AtomIdx])
          Target.push_back(To);
      std::sort(Target.begin(), Target.end());
      Target.erase(std::unique(Target.begin(), Target.end()), Target.end());
      uint32_t TargetId = Intern(std::move(Target));
      if (Out.Next.size() < (static_cast<size_t>(Id) + 1) * NumAtoms)
        Out.Next.resize((static_cast<size_t>(Id) + 1) * NumAtoms, 0);
      Out.Next[static_cast<size_t>(Id) * NumAtoms + AtomIdx] = TargetId;
      if (TargetId >= Processed.size() || !Processed[TargetId])
        Work.push(TargetId);
    }
  }

  Out.NumStates = static_cast<uint32_t>(Subsets.size());
  Out.Next.resize(static_cast<size_t>(Out.NumStates) * NumAtoms, 0);

  // Accept sets.
  Out.Accept.assign(Out.NumStates, DynamicBitset(NumRules));
  Out.AcceptAtEnd.assign(Out.NumStates, DynamicBitset(NumRules));
  for (uint32_t Id = 0; Id < Out.NumStates; ++Id) {
    for (uint32_t S : Subsets[Id]) {
      if (!FinalFlag[S])
        continue;
      uint32_t Rule = RuleOf[S];
      if (Rules[Rule].anchoredEnd())
        Out.AcceptAtEnd[Id].set(Rule);
      else
        Out.Accept[Id].set(Rule);
    }
  }
  return Out;
}
