//===- Builder.h - Thompson-like AST-to-NFA construction --------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares the AST-to-FSA conversion stage (paper §IV-B): a depth-first
/// Thompson-like construction that encodes leaves as atomic sub-FSAs and
/// wires them per the parent operators, producing a lightweight
/// nondeterministic automaton with ε-arcs.
///
/// Bounded repetitions are handled by the loop-expansion optimization the
/// paper describes in §IV-C/Fig. 5a: `X{m,n}` expands into m mandatory plus
/// (n-m) optional copies, maximizing linear sub-paths the merger can share.
/// With expansion disabled (ablation A) a compact cyclic loop is emitted
/// instead, which over-approximates the bounded language exactly like
/// counter-less IDS engines do when they saturate a repetition counter; the
/// ablation measures the compression cost of expansion, not semantics.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_FSA_BUILDER_H
#define MFSA_FSA_BUILDER_H

#include "fsa/Nfa.h"
#include "regex/Ast.h"
#include "support/Result.h"

namespace mfsa {

/// Knobs for the AST-to-FSA conversion.
struct BuildOptions {
  /// Expand `{m,n}` structurally (paper default). When false, bounded loops
  /// are kept compact as cyclic over-approximations (ablation A only).
  bool ExpandBoundedRepeats = true;

  /// Hard cap on m and n in `{m,n}` to bound state growth; exceeding it is a
  /// diagnostic, mirroring the limits production matchers place on bounded
  /// repetitions.
  uint32_t MaxRepeatBound = 1024;

  /// Hard cap on the number of states the construction may allocate for one
  /// rule; 0 means unlimited. MaxRepeatBound alone does not prevent
  /// expansion bombs — nested bounded repeats like `a{1000}{1000}`
  /// multiply — so the builder re-checks this budget after every expanded
  /// copy and fails with a diagnostic instead of exhausting memory.
  uint32_t MaxStates = 0;
};

/// Converts a parsed RE into an ε-NFA with a single final state.
/// The result intentionally contains ε-arcs; run removeEpsilons() (§IV-C)
/// before merging or execution.
Result<Nfa> buildNfa(const Regex &Re, const BuildOptions &Options = {});

} // namespace mfsa

#endif // MFSA_FSA_BUILDER_H
