//===- Passes.h - single-FSA optimization passes ----------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares the per-FSA transformations the middle-end applies before
/// merging (paper §IV-C):
///
///   1. ε-arc removal — merging and ANML generation require non-empty
///      transitions only.
///   2. multiplicity folding — parallel single-character alternations between
///      the same state pair become one character-class transition, which
///      prevents incorrect merges (Fig. 5b).
///   3. compaction — drops unreachable and dead states and renumbers the
///      remainder deterministically.
///
/// Loop expansion, the third optimization of §IV-C, lives in the AST-to-FSA
/// builder (see Builder.h) because structural expansion happens naturally at
/// construction time.
///
/// Each pass is a pure function Nfa -> Nfa so tests can compose them freely;
/// optimizeForMerging() is the pipeline-standard composition.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_FSA_PASSES_H
#define MFSA_FSA_PASSES_H

#include "fsa/Nfa.h"
#include "support/Result.h"

#include <functional>
#include <string>

namespace mfsa {

/// Removes every ε-arc: δ'(q, c) = ∪ { δ(r, c) : r ∈ ε-closure(q) }, and a
/// state becomes final if its closure intersects the final set. The language
/// is preserved; unreachable states are NOT dropped here (see
/// compactReachable).
Nfa removeEpsilons(const Nfa &A);

/// Folds transitions with multiplicity > 1 (several arcs between one state
/// pair) into a single character-class arc (paper §IV-C (3), Fig. 5b).
/// Requires an ε-free automaton.
Nfa foldMultiplicity(const Nfa &A);

/// Keeps only states both reachable from the initial state and co-reachable
/// to some final state, renumbering survivors in BFS discovery order. An
/// automaton with the empty language collapses to a single initial state.
Nfa compactReachable(const Nfa &A);

/// Merges bisimilar states (coarsest partition stable under the signature
/// (finality, {(label, class(target))})). Thompson construction gives every
/// alternation branch its own exit state, so the single-character
/// alternations of §IV-C (3) only become parallel arcs — and thus foldable
/// into one character class — after the equivalent exits are merged.
/// Requires an ε-free automaton; preserves the language (bisimilar states
/// have identical right languages).
Nfa mergeBisimilarStates(const Nfa &A);

/// The standard pre-merge pipeline: removeEpsilons, then alternating
/// foldMultiplicity / mergeBisimilarStates to a fixpoint (each enables the
/// other), then compactReachable.
Nfa optimizeForMerging(const Nfa &A);

/// optimizeForMerging with resource budgets: ε-removal can grow the
/// transition set quadratically (every closure member's arcs are copied to
/// every predecessor), so the pass chain re-checks \p MaxStates and
/// \p MaxTransitions after each step and surfaces an overrun as a
/// diagnostic instead of unbounded growth. 0 means unlimited for either cap.
Result<Nfa> optimizeForMergingBudgeted(const Nfa &A, uint64_t MaxStates,
                                       uint64_t MaxTransitions);

/// Translation-validation hook for the budgeted pass chain: called after
/// each individual pass application with the pass name ("remove-epsilons",
/// "fold-multiplicity", "merge-bisimilar-states", "compact-reachable") and
/// the automaton before/after. A non-empty return string aborts the chain
/// with that message as the diagnostic. Declared here (not in analysis/) so
/// the fsa layer stays free of an analysis dependency — the pipeline binds
/// it to analysis/TranslationValidate.h.
using PassValidator =
    std::function<std::string(const char *PassName, const Nfa &Before,
                              const Nfa &After)>;

/// optimizeForMergingBudgeted with a per-pass validation hook; a null
/// \p Validate behaves exactly like the three-argument overload.
Result<Nfa> optimizeForMergingBudgeted(const Nfa &A, uint64_t MaxStates,
                                       uint64_t MaxTransitions,
                                       const PassValidator &Validate);

} // namespace mfsa

#endif // MFSA_FSA_PASSES_H
