//===- Nfa.cpp - edge-labeled nondeterministic automaton -------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "fsa/Nfa.h"

#include <algorithm>
#include <cassert>

using namespace mfsa;

void Nfa::addTransition(StateId From, StateId To, const SymbolSet &Label) {
  assert(From < NumStatesValue && "transition from unknown state");
  assert(To < NumStatesValue && "transition to unknown state");
  Transitions.push_back(Transition{From, To, Label});
}

void Nfa::addFinal(StateId S) {
  assert(S < NumStatesValue && "final marking of unknown state");
  if (!isFinal(S))
    FinalStates.push_back(S);
}

bool Nfa::isFinal(StateId S) const {
  return std::find(FinalStates.begin(), FinalStates.end(), S) !=
         FinalStates.end();
}

bool Nfa::hasEpsilons() const {
  for (const Transition &T : Transitions)
    if (T.isEpsilon())
      return true;
  return false;
}

void Nfa::canonicalize() {
  std::sort(Transitions.begin(), Transitions.end());
  Transitions.erase(std::unique(Transitions.begin(), Transitions.end()),
                    Transitions.end());
  std::sort(FinalStates.begin(), FinalStates.end());
  FinalStates.erase(std::unique(FinalStates.begin(), FinalStates.end()),
                    FinalStates.end());
}

std::vector<std::vector<uint32_t>> Nfa::buildOutgoingIndex() const {
  std::vector<std::vector<uint32_t>> Index(NumStatesValue);
  for (uint32_t I = 0, E = numTransitions(); I != E; ++I)
    Index[Transitions[I].From].push_back(I);
  return Index;
}

bool mfsa::operator==(const Nfa &A, const Nfa &B) {
  return A.NumStatesValue == B.NumStatesValue &&
         A.InitialState == B.InitialState && A.Transitions == B.Transitions &&
         A.FinalStates == B.FinalStates &&
         A.AnchoredStart == B.AnchoredStart && A.AnchoredEnd == B.AnchoredEnd;
}

NfaStats mfsa::computeStats(const Nfa &A) {
  NfaStats S;
  S.NumStates = A.numStates();
  S.NumTransitions = A.numTransitions();
  for (const Transition &T : A.transitions()) {
    unsigned Count = T.Label.count();
    if (Count > 1) {
      ++S.NumCcTransitions;
      S.TotalCcLength += Count;
    }
  }
  return S;
}

std::string mfsa::writeDot(const Nfa &A, const std::string &Name) {
  std::string Out = "digraph \"" + Name + "\" {\n  rankdir=LR;\n";
  Out += "  node [shape=circle];\n";
  for (StateId F : A.finals())
    Out += "  " + std::to_string(F) + " [shape=doublecircle];\n";
  Out += "  __start [shape=point];\n  __start -> " +
         std::to_string(A.initial()) + ";\n";
  for (const Transition &T : A.transitions()) {
    std::string Label = T.isEpsilon() ? "eps" : T.Label.toString();
    // Escape label quotes for DOT.
    std::string Escaped;
    for (char C : Label) {
      if (C == '"' || C == '\\')
        Escaped.push_back('\\');
      Escaped.push_back(C);
    }
    Out += "  " + std::to_string(T.From) + " -> " + std::to_string(T.To) +
           " [label=\"" + Escaped + "\"];\n";
  }
  Out += "}\n";
  return Out;
}
