//===- Nfa.h - edge-labeled nondeterministic automaton ----------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines Nfa, the middle-end automaton model (paper §II): a tuple
/// (Q, Σ, δ, q0, F) with edge labels generalized to SymbolSets so a single
/// transition can carry a character class (Fig. 2's `idx` entries). During
/// Thompson construction transitions may carry the empty set, which encodes
/// an ε-arc; the ε-removal pass (§IV-C) guarantees executable automata have
/// non-empty labels only.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_FSA_NFA_H
#define MFSA_FSA_NFA_H

#include "support/SymbolSet.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mfsa {

/// Dense automaton state index.
using StateId = uint32_t;

/// One automaton transition From --Label--> To. An empty Label is an ε-arc
/// (only present between construction and ε-removal).
struct Transition {
  StateId From = 0;
  StateId To = 0;
  SymbolSet Label;

  bool isEpsilon() const { return Label.empty(); }

  friend bool operator==(const Transition &A, const Transition &B) {
    return A.From == B.From && A.To == B.To && A.Label == B.Label;
  }
  /// Deterministic (From, To, Label) order used to canonicalize automata.
  friend bool operator<(const Transition &A, const Transition &B) {
    if (A.From != B.From)
      return A.From < B.From;
    if (A.To != B.To)
      return A.To < B.To;
    return A.Label < B.Label;
  }
};

/// An edge-labeled NFA with one initial state and a final-state set, plus
/// the pattern-level anchor flags the engine honours at match time.
class Nfa {
public:
  /// Appends a fresh state and returns its id.
  StateId addState() { return NumStatesValue++; }

  void addTransition(StateId From, StateId To, const SymbolSet &Label);

  uint32_t numStates() const { return NumStatesValue; }
  uint32_t numTransitions() const {
    return static_cast<uint32_t>(Transitions.size());
  }

  StateId initial() const { return InitialState; }
  void setInitial(StateId S) { InitialState = S; }

  const std::vector<StateId> &finals() const { return FinalStates; }
  /// Mutable access, mirroring transitions(): passes (and the verifier's
  /// corrupted-corpus tests) edit final states in place; callers are
  /// responsible for re-establishing canonical form.
  std::vector<StateId> &finals() { return FinalStates; }
  void addFinal(StateId S);
  bool isFinal(StateId S) const;
  void clearFinals() { FinalStates.clear(); }

  const std::vector<Transition> &transitions() const { return Transitions; }
  std::vector<Transition> &transitions() { return Transitions; }

  bool anchoredStart() const { return AnchoredStart; }
  bool anchoredEnd() const { return AnchoredEnd; }
  void setAnchors(bool Start, bool End) {
    AnchoredStart = Start;
    AnchoredEnd = End;
  }

  /// \returns true if any transition is an ε-arc.
  bool hasEpsilons() const;

  /// Sorts transitions into canonical (From, To, Label) order and removes
  /// duplicates; final states are sorted and deduplicated too.
  void canonicalize();

  /// Builds a per-state index of outgoing-transition positions, valid until
  /// the transition vector is next mutated.
  std::vector<std::vector<uint32_t>> buildOutgoingIndex() const;

  /// Structural equality after canonicalization (same states, transitions,
  /// initial, finals, anchors). Used by round-trip tests.
  friend bool operator==(const Nfa &A, const Nfa &B);

private:
  uint32_t NumStatesValue = 0;
  std::vector<Transition> Transitions;
  StateId InitialState = 0;
  std::vector<StateId> FinalStates;
  bool AnchoredStart = false;
  bool AnchoredEnd = false;
};

/// Summary counters for one automaton, feeding Table I.
struct NfaStats {
  uint32_t NumStates = 0;
  uint32_t NumTransitions = 0;
  uint32_t NumCcTransitions = 0; ///< Transitions labeled by a multi-symbol set.
  uint64_t TotalCcLength = 0;    ///< Sum of |label| over CC transitions.
};

/// Computes NfaStats over \p A.
NfaStats computeStats(const Nfa &A);

/// Renders \p A in Graphviz DOT format (debugging aid; labels use
/// SymbolSet::toString()).
std::string writeDot(const Nfa &A, const std::string &Name);

} // namespace mfsa

#endif // MFSA_FSA_NFA_H
