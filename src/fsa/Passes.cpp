//===- Passes.cpp - single-FSA optimization passes --------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "fsa/Passes.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <queue>

using namespace mfsa;

/// Computes the ε-closure of every state by BFS over ε-arcs.
static std::vector<std::vector<StateId>>
computeEpsilonClosures(const Nfa &A) {
  std::vector<std::vector<StateId>> EpsOut(A.numStates());
  for (const Transition &T : A.transitions())
    if (T.isEpsilon())
      EpsOut[T.From].push_back(T.To);

  std::vector<std::vector<StateId>> Closures(A.numStates());
  std::vector<bool> Seen(A.numStates());
  for (StateId Q = 0; Q < A.numStates(); ++Q) {
    std::fill(Seen.begin(), Seen.end(), false);
    std::queue<StateId> Work;
    Work.push(Q);
    Seen[Q] = true;
    while (!Work.empty()) {
      StateId R = Work.front();
      Work.pop();
      Closures[Q].push_back(R);
      for (StateId S : EpsOut[R])
        if (!Seen[S]) {
          Seen[S] = true;
          Work.push(S);
        }
    }
    std::sort(Closures[Q].begin(), Closures[Q].end());
  }
  return Closures;
}

Nfa mfsa::removeEpsilons(const Nfa &A) {
  std::vector<std::vector<StateId>> Closures = computeEpsilonClosures(A);

  // Group non-ε transitions by source for the closure expansion.
  std::vector<std::vector<uint32_t>> SymbolicOut(A.numStates());
  for (uint32_t I = 0, E = A.numTransitions(); I != E; ++I)
    if (!A.transitions()[I].isEpsilon())
      SymbolicOut[A.transitions()[I].From].push_back(I);

  std::vector<bool> FinalFlag(A.numStates(), false);
  for (StateId F : A.finals())
    FinalFlag[F] = true;

  Nfa Out;
  for (StateId Q = 0; Q < A.numStates(); ++Q)
    Out.addState();
  Out.setInitial(A.initial());
  Out.setAnchors(A.anchoredStart(), A.anchoredEnd());

  for (StateId Q = 0; Q < A.numStates(); ++Q) {
    bool IsFinal = false;
    for (StateId R : Closures[Q]) {
      IsFinal = IsFinal || FinalFlag[R];
      for (uint32_t TIdx : SymbolicOut[R]) {
        const Transition &T = A.transitions()[TIdx];
        Out.addTransition(Q, T.To, T.Label);
      }
    }
    if (IsFinal)
      Out.addFinal(Q);
  }
  Out.canonicalize();
  return Out;
}

Nfa mfsa::foldMultiplicity(const Nfa &A) {
  assert(!A.hasEpsilons() && "foldMultiplicity requires an ε-free automaton");
  // Union the labels of all arcs sharing (From, To). std::map keeps the
  // output order deterministic.
  std::map<std::pair<StateId, StateId>, SymbolSet> Folded;
  for (const Transition &T : A.transitions())
    Folded[{T.From, T.To}] |= T.Label;

  Nfa Out;
  for (StateId Q = 0; Q < A.numStates(); ++Q)
    Out.addState();
  Out.setInitial(A.initial());
  Out.setAnchors(A.anchoredStart(), A.anchoredEnd());
  for (StateId F : A.finals())
    Out.addFinal(F);
  for (const auto &[Pair, Label] : Folded)
    Out.addTransition(Pair.first, Pair.second, Label);
  Out.canonicalize();
  return Out;
}

Nfa mfsa::compactReachable(const Nfa &A) {
  std::vector<std::vector<uint32_t>> OutIdx = A.buildOutgoingIndex();
  std::vector<std::vector<StateId>> InAdj(A.numStates());
  for (const Transition &T : A.transitions())
    InAdj[T.To].push_back(T.From);

  // Forward reachability from the initial state.
  std::vector<bool> Fwd(A.numStates(), false);
  {
    std::queue<StateId> Work;
    Work.push(A.initial());
    Fwd[A.initial()] = true;
    while (!Work.empty()) {
      StateId Q = Work.front();
      Work.pop();
      for (uint32_t TIdx : OutIdx[Q]) {
        StateId To = A.transitions()[TIdx].To;
        if (!Fwd[To]) {
          Fwd[To] = true;
          Work.push(To);
        }
      }
    }
  }

  // Backward co-reachability from the finals.
  std::vector<bool> Bwd(A.numStates(), false);
  {
    std::queue<StateId> Work;
    for (StateId F : A.finals())
      if (!Bwd[F]) {
        Bwd[F] = true;
        Work.push(F);
      }
    while (!Work.empty()) {
      StateId Q = Work.front();
      Work.pop();
      for (StateId P : InAdj[Q])
        if (!Bwd[P]) {
          Bwd[P] = true;
          Work.push(P);
        }
    }
  }

  // Keep live states; the initial state always survives so that even an
  // empty-language automaton stays well-formed.
  std::vector<bool> Keep(A.numStates(), false);
  for (StateId Q = 0; Q < A.numStates(); ++Q)
    Keep[Q] = Fwd[Q] && Bwd[Q];
  Keep[A.initial()] = true;

  // Renumber survivors in BFS discovery order from the initial state for a
  // deterministic, locality-friendly layout.
  constexpr StateId Unmapped = UINT32_MAX;
  std::vector<StateId> NewId(A.numStates(), Unmapped);
  Nfa Out;
  {
    std::queue<StateId> Work;
    NewId[A.initial()] = Out.addState();
    Work.push(A.initial());
    while (!Work.empty()) {
      StateId Q = Work.front();
      Work.pop();
      for (uint32_t TIdx : OutIdx[Q]) {
        StateId To = A.transitions()[TIdx].To;
        if (Keep[To] && NewId[To] == Unmapped) {
          NewId[To] = Out.addState();
          Work.push(To);
        }
      }
    }
  }

  Out.setInitial(NewId[A.initial()]);
  Out.setAnchors(A.anchoredStart(), A.anchoredEnd());
  for (StateId F : A.finals())
    if (NewId[F] != Unmapped)
      Out.addFinal(NewId[F]);
  for (const Transition &T : A.transitions())
    if (NewId[T.From] != Unmapped && NewId[T.To] != Unmapped)
      Out.addTransition(NewId[T.From], NewId[T.To], T.Label);
  Out.canonicalize();
  return Out;
}

Nfa mfsa::mergeBisimilarStates(const Nfa &A) {
  assert(!A.hasEpsilons() &&
         "mergeBisimilarStates requires an ε-free automaton");
  std::vector<std::vector<uint32_t>> OutIdx = A.buildOutgoingIndex();

  // Partition refinement: start from finality, refine by outgoing
  // signatures until stable.
  std::vector<uint32_t> ClassOf(A.numStates(), 0);
  for (StateId F : A.finals())
    ClassOf[F] = 1;
  size_t NumClasses = A.finals().empty() ? 1 : 2;

  using Signature =
      std::pair<uint32_t, std::vector<std::pair<SymbolSet, uint32_t>>>;
  for (;;) {
    std::map<Signature, uint32_t> NewClassIds;
    std::vector<uint32_t> NewClassOf(A.numStates());
    for (StateId Q = 0; Q < A.numStates(); ++Q) {
      Signature Sig;
      Sig.first = ClassOf[Q];
      for (uint32_t TIdx : OutIdx[Q]) {
        const Transition &T = A.transitions()[TIdx];
        Sig.second.emplace_back(T.Label, ClassOf[T.To]);
      }
      std::sort(Sig.second.begin(), Sig.second.end());
      Sig.second.erase(std::unique(Sig.second.begin(), Sig.second.end()),
                       Sig.second.end());
      auto [It, Inserted] = NewClassIds.emplace(
          std::move(Sig), static_cast<uint32_t>(NewClassIds.size()));
      NewClassOf[Q] = It->second;
    }
    size_t NewCount = NewClassIds.size();
    ClassOf = std::move(NewClassOf);
    if (NewCount == NumClasses)
      break;
    NumClasses = NewCount;
  }

  // Rebuild with one state per class, renumbered by first occurrence for
  // determinism.
  constexpr uint32_t Unset = UINT32_MAX;
  std::vector<StateId> ClassState(NumClasses, Unset);
  Nfa Out;
  for (StateId Q = 0; Q < A.numStates(); ++Q)
    if (ClassState[ClassOf[Q]] == Unset)
      ClassState[ClassOf[Q]] = Out.addState();
  Out.setInitial(ClassState[ClassOf[A.initial()]]);
  Out.setAnchors(A.anchoredStart(), A.anchoredEnd());
  for (StateId F : A.finals())
    Out.addFinal(ClassState[ClassOf[F]]);
  for (const Transition &T : A.transitions())
    Out.addTransition(ClassState[ClassOf[T.From]], ClassState[ClassOf[T.To]],
                      T.Label);
  Out.canonicalize();
  return Out;
}

Nfa mfsa::optimizeForMerging(const Nfa &A) {
  Result<Nfa> Out = optimizeForMergingBudgeted(A, 0, 0);
  assert(Out.ok() && "unlimited budget cannot overrun");
  return Out.take();
}

Result<Nfa> mfsa::optimizeForMergingBudgeted(const Nfa &A, uint64_t MaxStates,
                                             uint64_t MaxTransitions) {
  return optimizeForMergingBudgeted(A, MaxStates, MaxTransitions,
                                    PassValidator());
}

Result<Nfa> mfsa::optimizeForMergingBudgeted(const Nfa &A, uint64_t MaxStates,
                                             uint64_t MaxTransitions,
                                             const PassValidator &Validate) {
  auto OverBudget = [&](const Nfa &Current) -> bool {
    return (MaxStates != 0 && Current.numStates() > MaxStates) ||
           (MaxTransitions != 0 && Current.numTransitions() > MaxTransitions);
  };
  auto BudgetError = [&](const Nfa &Current) {
    return Result<Nfa>::error(
        "optimization budget exceeded (" +
        std::to_string(Current.numStates()) + " states / " +
        std::to_string(Current.numTransitions()) + " transitions, budget " +
        std::to_string(MaxStates) + " / " + std::to_string(MaxTransitions) +
        ")");
  };
  // Runs one pass, handing the before/after pair to the validation hook.
  // The first hook failure wins; later passes still run (cheap, and the
  // chain's shape stays identical with and without validation).
  std::string ValidationError;
  auto Step = [&](Nfa (*Pass)(const Nfa &), const char *Name,
                  const Nfa &Input) -> Nfa {
    Nfa Output = Pass(Input);
    if (Validate && ValidationError.empty())
      ValidationError = Validate(Name, Input, Output);
    return Output;
  };

  Nfa Current = Step(removeEpsilons, "remove-epsilons", A);
  if (!ValidationError.empty())
    return Result<Nfa>::error(ValidationError);
  if (OverBudget(Current))
    return BudgetError(Current);
  // Folding and bisimulation merging enable each other: folding normalizes
  // parallel arcs into classes so more signatures coincide; merging aligns
  // targets so more arcs become parallel. Iterate to a fixpoint (bounded —
  // each round strictly shrinks the automaton).
  for (;;) {
    uint32_t StatesBefore = Current.numStates();
    uint32_t TransBefore = Current.numTransitions();
    Current = Step(mergeBisimilarStates, "merge-bisimilar-states",
                   Step(foldMultiplicity, "fold-multiplicity", Current));
    if (!ValidationError.empty())
      return Result<Nfa>::error(ValidationError);
    if (Current.numStates() == StatesBefore &&
        Current.numTransitions() == TransBefore)
      break;
  }
  Current = Step(compactReachable, "compact-reachable",
                 Step(foldMultiplicity, "fold-multiplicity", Current));
  if (!ValidationError.empty())
    return Result<Nfa>::error(ValidationError);
  if (OverBudget(Current))
    return BudgetError(Current);
  return Current;
}
