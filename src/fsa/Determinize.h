//===- Determinize.h - scanning subset construction -------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares the DFA baseline of the paper's §II discussion: determinization
/// trades the NFA's multiple active states for single-transition traversal
/// at the price of (potentially exponential) state explosion. The bench
/// suite uses it both as a per-rule execution baseline and to demonstrate
/// the explosion that motivates MFSAs for whole rulesets.
///
/// The construction is a *scanning* subset construction over a multi-rule
/// union NFA:
///
///   - the start subset holds every rule's initial state;
///   - unanchored rules' initial states are re-injected into every successor
///     subset, realizing match attempts at every input offset (anchored-
///     start rules only live in subsets reached without restart);
///   - transitions are computed per alphabet-partition atom
///     (AlphabetPartition.h), keeping the table narrow;
///   - each DFA state carries two per-rule accept sets: reported at every
///     offset, or only at end-of-input (for `$`-anchored rules).
///
/// determinize() fails gracefully with a diagnostic when the subset count
/// exceeds MaxStates — the explosion itself is a measured result, not a
/// crash.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_FSA_DETERMINIZE_H
#define MFSA_FSA_DETERMINIZE_H

#include "fsa/Nfa.h"
#include "support/DynamicBitset.h"
#include "support/Result.h"

#include <cstdint>
#include <vector>

namespace mfsa {

/// A dense scanning DFA over a multi-rule union automaton.
struct Dfa {
  uint32_t NumStates = 0;
  uint32_t NumAtoms = 0;
  uint32_t NumRules = 0;

  /// Row-major transition table: Next[State * NumAtoms + Atom].
  std::vector<uint32_t> Next;
  /// Byte -> atom index.
  std::vector<uint8_t> AtomOfByte;
  /// Per-state rule-accept sets (width NumRules).
  std::vector<DynamicBitset> Accept;      ///< Report at any offset.
  std::vector<DynamicBitset> AcceptAtEnd; ///< Report at end-of-input only.
  /// Local rule -> dataset rule id.
  std::vector<uint32_t> GlobalIds;

  uint32_t start() const { return 0; }

  /// Approximate memory footprint of the matching structure in bytes.
  size_t footprintBytes() const;
};

/// Options for determinize().
struct DeterminizeOptions {
  /// Abort with a diagnostic beyond this many DFA states.
  uint32_t MaxStates = 1u << 17;
};

/// Builds the scanning DFA for \p Fsas (ε-free; one rule per automaton,
/// global ids parallel to it). Fails when the subset construction exceeds
/// Options.MaxStates.
Result<Dfa> determinize(const std::vector<Nfa> &Fsas,
                        const std::vector<uint32_t> &GlobalIds,
                        const DeterminizeOptions &Options = {});

} // namespace mfsa

#endif // MFSA_FSA_DETERMINIZE_H
