//===- Builder.cpp - Thompson-like AST-to-NFA construction -----------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "fsa/Builder.h"

#include <cassert>

using namespace mfsa;

namespace {

/// A sub-automaton under construction, with unique entry and exit states.
struct Fragment {
  StateId Entry = 0;
  StateId Exit = 0;
};

/// Depth-first Thompson builder appending into a single Nfa.
class Builder {
public:
  Builder(Nfa &Out, const BuildOptions &Options)
      : Out(Out), Options(Options) {}

  Result<Fragment> build(const AstNode &Node);

private:
  Result<Fragment> buildRepeat(const RepeatNode &Node);

  void addEpsilon(StateId From, StateId To) {
    Out.addTransition(From, To, SymbolSet());
  }

  /// State-budget overrun diagnostic; build() checks on every entry, so each
  /// expanded repeat copy and each recursion step re-validates the cap.
  Result<Fragment> budgetError() const {
    return Result<Fragment>::error(
        "state budget exceeded during construction (" +
        std::to_string(Out.numStates()) + " states, budget " +
        std::to_string(Options.MaxStates) + ")");
  }

  bool overBudget() const {
    return Options.MaxStates != 0 && Out.numStates() > Options.MaxStates;
  }

  Nfa &Out;
  const BuildOptions &Options;
};

} // namespace

Result<Fragment> Builder::build(const AstNode &Node) {
  if (overBudget())
    return budgetError();
  switch (Node.kind()) {
  case AstKind::Empty: {
    Fragment F;
    F.Entry = Out.addState();
    F.Exit = Out.addState();
    addEpsilon(F.Entry, F.Exit);
    return F;
  }
  case AstKind::Symbols: {
    Fragment F;
    F.Entry = Out.addState();
    F.Exit = Out.addState();
    Out.addTransition(F.Entry, F.Exit,
                      static_cast<const SymbolsNode &>(Node).symbols());
    return F;
  }
  case AstKind::Concat: {
    const auto &Children = static_cast<const ConcatNode &>(Node).children();
    assert(!Children.empty() && "parser never emits empty Concat");
    Fragment Whole;
    bool First = true;
    for (const auto &Child : Children) {
      Result<Fragment> Part = build(*Child);
      if (!Part)
        return Part;
      if (First) {
        Whole = *Part;
        First = false;
        continue;
      }
      addEpsilon(Whole.Exit, Part->Entry);
      Whole.Exit = Part->Exit;
    }
    return Whole;
  }
  case AstKind::Alternate: {
    const auto &Children =
        static_cast<const AlternateNode &>(Node).children();
    Fragment F;
    F.Entry = Out.addState();
    F.Exit = Out.addState();
    for (const auto &Child : Children) {
      Result<Fragment> Branch = build(*Child);
      if (!Branch)
        return Branch;
      addEpsilon(F.Entry, Branch->Entry);
      addEpsilon(Branch->Exit, F.Exit);
    }
    return F;
  }
  case AstKind::Repeat:
    return buildRepeat(static_cast<const RepeatNode &>(Node));
  }
  return Result<Fragment>::error("corrupt AST node");
}

Result<Fragment> Builder::buildRepeat(const RepeatNode &Node) {
  uint32_t Min = Node.min();
  uint32_t Max = Node.max();

  // Classic Kleene constructions for the unbounded cases reachable without
  // cloning: X* and X+.
  if (Node.isUnbounded() && Min <= 1) {
    Result<Fragment> Child = build(Node.child());
    if (!Child)
      return Child;
    Fragment F;
    F.Entry = Out.addState();
    F.Exit = Out.addState();
    addEpsilon(F.Entry, Child->Entry);
    addEpsilon(Child->Exit, F.Exit);
    addEpsilon(Child->Exit, Child->Entry); // loop back
    if (Min == 0)
      addEpsilon(F.Entry, F.Exit); // skip
    return F;
  }

  if (Min > Options.MaxRepeatBound ||
      (!Node.isUnbounded() && Max > Options.MaxRepeatBound))
    return Result<Fragment>::error(
        "repetition bound exceeds MaxRepeatBound (" +
        std::to_string(Options.MaxRepeatBound) + ")");

  // Ablation mode: keep the loop compact. `X{m,n}` (m >= 1) degrades to the
  // cyclic over-approximation X+, and `X{0,n}` to X*. See Builder.h.
  if (!Options.ExpandBoundedRepeats && !Node.isUnbounded()) {
    Result<Fragment> Child = build(Node.child());
    if (!Child)
      return Child;
    Fragment F;
    F.Entry = Out.addState();
    F.Exit = Out.addState();
    addEpsilon(F.Entry, Child->Entry);
    addEpsilon(Child->Exit, F.Exit);
    if (Max > 1)
      addEpsilon(Child->Exit, Child->Entry);
    if (Min == 0)
      addEpsilon(F.Entry, F.Exit);
    return F;
  }

  // Loop expansion (paper §IV-C (2), Fig. 5a): X{m,n} becomes a linear spine
  // of m mandatory copies followed by (n-m) optional copies, each junction at
  // depth >= m short-circuiting to the common exit. X{m,} ends in X+ instead
  // of the optional tail.
  Fragment F;
  F.Entry = Out.addState();
  F.Exit = Out.addState();
  StateId Junction = F.Entry;
  if (Min == 0)
    addEpsilon(F.Entry, F.Exit);

  for (uint32_t I = 0; I < Min; ++I) {
    Result<Fragment> Copy = build(Node.child());
    if (!Copy)
      return Copy;
    addEpsilon(Junction, Copy->Entry);
    Junction = Copy->Exit;
  }

  if (Node.isUnbounded()) {
    // Tail is X+ unless Min copies already exist, in which case X*.
    Result<Fragment> Loop = build(Node.child());
    if (!Loop)
      return Loop;
    addEpsilon(Junction, Loop->Entry);
    addEpsilon(Loop->Exit, Loop->Entry);
    addEpsilon(Loop->Exit, F.Exit);
    addEpsilon(Junction, F.Exit); // Min copies alone suffice
    return F;
  }

  for (uint32_t I = Min; I < Max; ++I) {
    Result<Fragment> Copy = build(Node.child());
    if (!Copy)
      return Copy;
    addEpsilon(Junction, Copy->Entry);
    if (I > 0 || Min > 0)
      addEpsilon(Junction, F.Exit); // stopping after I copies is allowed
    Junction = Copy->Exit;
  }
  addEpsilon(Junction, F.Exit);
  return F;
}

Result<Nfa> mfsa::buildNfa(const Regex &Re, const BuildOptions &Options) {
  assert(Re.Root && "Regex without a root AST");
  Nfa Out;
  Builder B(Out, Options);
  Result<Fragment> Root = B.build(*Re.Root);
  if (!Root)
    return Root.diag();
  Out.setInitial(Root->Entry);
  Out.addFinal(Root->Exit);
  Out.setAnchors(Re.AnchoredStart, Re.AnchoredEnd);
  return Out;
}
