//===- AlphabetPartition.h - symbol-equivalence atoms -----------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the paper's proposed character-class improvement (§VI-A): "we
/// currently merge CCs that describe the same exact set of characters, while
/// it could be possible to partially merge two CCs based on the characters
/// belonging to both. For instance, in CCs [abce] and [bcd] it could be
/// possible to merge the common characters [bc] only."
///
/// The realization: compute the *alphabet partition* induced by every
/// distinct transition label in a ruleset — the coarsest partition of the
/// 256-symbol alphabet such that each label is a union of partition atoms
/// (the classical symbol-equivalence construction behind alphabet
/// reduction [Becchi & Crowley 2007]). Splitting every transition into its
/// atoms makes two classes share exactly their common atoms under the
/// merger's exact-equality rule: [abce] and [bcd] both contain the atom
/// [bc], which merges; the residual atoms [ae] and [d] stay per-rule.
///
/// The trade-off the ablation bench measures: splitting multiplies
/// transitions (hurting the transition count and the engine's per-symbol
/// table) in exchange for finer state sharing.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_FSA_ALPHABETPARTITION_H
#define MFSA_FSA_ALPHABETPARTITION_H

#include "fsa/Nfa.h"

#include <vector>

namespace mfsa {

/// Computes the coarsest partition of the alphabet such that every
/// transition label of every automaton in \p Fsas is a union of atoms.
/// Symbols not used by any label are grouped into one residual atom (or
/// dropped if none). Atoms are returned in deterministic order.
std::vector<SymbolSet> computeAlphabetAtoms(const std::vector<Nfa> &Fsas);

/// Splits every transition of \p A into one parallel transition per atom it
/// intersects. Labels must be unions of atoms for exact splitting, which
/// computeAlphabetAtoms guarantees; the language is unchanged.
Nfa splitByAtoms(const Nfa &A, const std::vector<SymbolSet> &Atoms);

/// Convenience: atoms over \p Fsas, then split every automaton.
std::vector<Nfa> splitAllByAtoms(const std::vector<Nfa> &Fsas);

} // namespace mfsa

#endif // MFSA_FSA_ALPHABETPARTITION_H
