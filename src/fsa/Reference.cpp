//===- Reference.cpp - semantic oracles for testing -------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "fsa/Reference.h"

#include <algorithm>
#include <queue>

using namespace mfsa;

namespace {

/// Positional-set evaluator: maps a set of input positions to the set of
/// positions reachable after matching one AST node. Exact for regular
/// languages and terminates on ε-matching repeat bodies by fixpoint.
std::set<size_t> evalNode(const AstNode &Node, std::string_view Input,
                          const std::set<size_t> &Starts) {
  switch (Node.kind()) {
  case AstKind::Empty:
    return Starts;
  case AstKind::Symbols: {
    const SymbolSet &Set = static_cast<const SymbolsNode &>(Node).symbols();
    std::set<size_t> Out;
    for (size_t P : Starts)
      if (P < Input.size() &&
          Set.contains(static_cast<unsigned char>(Input[P])))
        Out.insert(P + 1);
    return Out;
  }
  case AstKind::Concat: {
    std::set<size_t> Current = Starts;
    for (const auto &Child :
         static_cast<const ConcatNode &>(Node).children()) {
      Current = evalNode(*Child, Input, Current);
      if (Current.empty())
        break;
    }
    return Current;
  }
  case AstKind::Alternate: {
    std::set<size_t> Out;
    for (const auto &Child :
         static_cast<const AlternateNode &>(Node).children()) {
      std::set<size_t> Branch = evalNode(*Child, Input, Starts);
      Out.insert(Branch.begin(), Branch.end());
    }
    return Out;
  }
  case AstKind::Repeat: {
    const auto &R = static_cast<const RepeatNode &>(Node);
    std::set<size_t> Result;
    if (R.min() == 0)
      Result = Starts; // zero repetitions

    // Frontier = positions reachable after exactly Min repetitions.
    std::set<size_t> Frontier = Starts;
    for (uint32_t I = 1; I <= R.min() && !Frontier.empty(); ++I)
      Frontier = evalNode(R.child(), Input, Frontier);

    if (R.isUnbounded()) {
      // ∪_{i>=Min} eval^i(Starts) = lfp(W := Frontier ∪ eval(W)), valid
      // because evalNode distributes over set union; the fixpoint converges
      // in at most |Input|+2 rounds.
      std::set<size_t> W = Frontier;
      for (;;) {
        std::set<size_t> Next = evalNode(R.child(), Input, W);
        size_t Before = W.size();
        W.insert(Next.begin(), Next.end());
        if (W.size() == Before)
          break;
      }
      Result.insert(W.begin(), W.end());
      return Result;
    }

    if (R.min() > 0)
      Result.insert(Frontier.begin(), Frontier.end()); // exactly Min
    for (uint32_t I = R.min() + 1; I <= R.max() && !Frontier.empty(); ++I) {
      Frontier = evalNode(R.child(), Input, Frontier);
      Result.insert(Frontier.begin(), Frontier.end());
    }
    return Result;
  }
  }
  return {};
}

} // namespace

std::set<size_t> mfsa::astMatchEnds(const Regex &Re, std::string_view Input) {
  std::set<size_t> Ends;
  size_t LastStart = Re.AnchoredStart ? 0 : Input.size();
  for (size_t Start = 0; Start <= LastStart && Start <= Input.size();
       ++Start) {
    std::set<size_t> Reached = evalNode(*Re.Root, Input, {Start});
    for (size_t End : Reached) {
      if (End == Start)
        continue; // zero-length matches are not reported
      if (Re.AnchoredEnd && End != Input.size())
        continue;
      Ends.insert(End);
    }
  }
  return Ends;
}

std::set<size_t> mfsa::simulateNfa(const Nfa &A, std::string_view Input) {
  // Precompute ε-adjacency and per-state symbolic transitions.
  std::vector<std::vector<StateId>> EpsOut(A.numStates());
  std::vector<std::vector<uint32_t>> SymbolicOut(A.numStates());
  for (uint32_t I = 0, E = A.numTransitions(); I != E; ++I) {
    const Transition &T = A.transitions()[I];
    if (T.isEpsilon())
      EpsOut[T.From].push_back(T.To);
    else
      SymbolicOut[T.From].push_back(I);
  }
  std::vector<bool> FinalFlag(A.numStates(), false);
  for (StateId F : A.finals())
    FinalFlag[F] = true;

  // Expands Active in place to its ε-closure.
  auto Close = [&](std::vector<bool> &Active) {
    std::queue<StateId> Work;
    for (StateId Q = 0; Q < A.numStates(); ++Q)
      if (Active[Q])
        Work.push(Q);
    while (!Work.empty()) {
      StateId Q = Work.front();
      Work.pop();
      for (StateId R : EpsOut[Q])
        if (!Active[R]) {
          Active[R] = true;
          Work.push(R);
        }
    }
  };

  std::set<size_t> Ends;
  std::vector<bool> Active(A.numStates(), false);
  std::vector<bool> Next(A.numStates(), false);
  for (size_t P = 0; P < Input.size(); ++P) {
    // Unanchored matching injects a fresh attempt at every offset;
    // start-anchored automata inject at offset 0 only.
    if (!A.anchoredStart() || P == 0) {
      Active[A.initial()] = true;
    }
    Close(Active);
    std::fill(Next.begin(), Next.end(), false);
    unsigned char C = static_cast<unsigned char>(Input[P]);
    for (StateId Q = 0; Q < A.numStates(); ++Q) {
      if (!Active[Q])
        continue;
      for (uint32_t TIdx : SymbolicOut[Q]) {
        const Transition &T = A.transitions()[TIdx];
        if (T.Label.contains(C))
          Next[T.To] = true;
      }
    }
    Close(Next);
    // Report arrival in a final state after consuming Input[P].
    bool AtEnd = (P + 1 == Input.size());
    if (!A.anchoredEnd() || AtEnd)
      for (StateId Q = 0; Q < A.numStates(); ++Q)
        if (Next[Q] && FinalFlag[Q]) {
          Ends.insert(P + 1);
          break;
        }
    std::swap(Active, Next);
  }
  return Ends;
}
