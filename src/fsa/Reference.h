//===- Reference.h - semantic oracles for testing ---------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares two independent reference matchers that define the library's
/// match semantics and anchor the correctness test pyramid (DESIGN.md §5):
///
///   - astMatchEnds: a positional-set evaluator walking the AST directly.
///     Independent of every automaton component; the ground truth on small
///     inputs.
///   - simulateNfa: a textbook ε-closure sweep over any (possibly ε-full)
///     Nfa. Independent of ε-removal, folding, merging, and the iNFAnt/
///     iMFAnt engines; fast enough for medium streams.
///
/// Match semantics (library-wide): a match is a pair (rule, end offset) such
/// that some non-empty substring ending at `end` belongs to the rule's
/// language; a start-anchored rule additionally requires the substring to
/// begin at offset 0, and an end-anchored rule requires end == input size.
/// Zero-length matches are never reported (automata report on transition
/// traversal, so they cannot observe ε matches).
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_FSA_REFERENCE_H
#define MFSA_FSA_REFERENCE_H

#include "fsa/Nfa.h"
#include "regex/Ast.h"

#include <set>
#include <string_view>

namespace mfsa {

/// \returns every offset at which a non-empty match of \p Re ends in
/// \p Input, per the AST evaluator. Quadratic in |Input|; tests only.
std::set<size_t> astMatchEnds(const Regex &Re, std::string_view Input);

/// \returns every offset at which a non-empty match of \p A ends in
/// \p Input, by direct NFA simulation with ε-closures. Linear sweep with a
/// per-symbol cost of O(transitions).
std::set<size_t> simulateNfa(const Nfa &A, std::string_view Input);

} // namespace mfsa

#endif // MFSA_FSA_REFERENCE_H
