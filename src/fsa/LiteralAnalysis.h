//===- LiteralAnalysis.h - mandatory-literal extraction ---------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares the analysis half of the Hyperscan-style decomposition baseline
/// (paper §I/§VII, Wang et al.): find a *mandatory literal* of an RE — a
/// string every match is guaranteed to contain — and a bound on the match
/// length. Rules with both can be matched lazily: a fast multi-literal scan
/// (AhoCorasick.h) locates candidate regions and the full automaton runs
/// only inside a bounded window around each hit (Prefilter.h).
///
/// The extraction is conservative: returning the empty string ("no literal
/// found") is always sound; a returned literal must genuinely occur in
/// every match.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_FSA_LITERALANALYSIS_H
#define MFSA_FSA_LITERALANALYSIS_H

#include "fsa/Nfa.h"
#include "regex/Ast.h"

#include <cstdint>
#include <string>

namespace mfsa {

/// \returns the longest mandatory literal the analysis can prove for
/// \p Node, or "" when none is found. Conservative: alternations only
/// contribute when every branch shares the same literal.
std::string mandatoryLiteral(const AstNode &Node);

/// \returns the maximum number of symbols any match of \p A consumes, or 0
/// when the automaton is cyclic (unbounded matches). Requires an ε-free
/// automaton.
uint32_t boundedMatchLength(const Nfa &A);

/// The per-rule prefilter decision.
struct PrefilterInfo {
  bool Prefilterable = false;
  std::string Literal;          ///< Mandatory literal (when prefilterable).
  uint32_t MaxMatchLength = 0;  ///< Window bound (when prefilterable).
};

/// Decides whether a rule can be literal-prefiltered: it must be unanchored,
/// have a mandatory literal of at least \p MinLiteralLength bytes, and a
/// bounded match length.
PrefilterInfo analyzeForPrefilter(const Regex &Re, const Nfa &OptimizedFsa,
                                  uint32_t MinLiteralLength = 3);

} // namespace mfsa

#endif // MFSA_FSA_LITERALANALYSIS_H
