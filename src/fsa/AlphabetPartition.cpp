//===- AlphabetPartition.cpp - symbol-equivalence atoms ------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "fsa/AlphabetPartition.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace mfsa;

std::vector<SymbolSet>
mfsa::computeAlphabetAtoms(const std::vector<Nfa> &Fsas) {
  // Two symbols are equivalent iff they appear in exactly the same set of
  // labels. Assign each symbol a signature: the sorted list of distinct
  // labels containing it — compactly, refine a partition label by label.
  //
  // Partition refinement over 256 symbols: represent each symbol's class by
  // an integer; each label splits every class into in-label / out-of-label
  // halves.
  std::vector<uint16_t> ClassOf(SymbolSet::NumSymbols, 0);
  uint16_t NextClass = 1;

  // Deduplicate labels first; refinement is order-independent.
  std::vector<SymbolSet> Labels;
  for (const Nfa &A : Fsas)
    for (const Transition &T : A.transitions())
      if (!T.Label.empty())
        Labels.push_back(T.Label);
  std::sort(Labels.begin(), Labels.end());
  Labels.erase(std::unique(Labels.begin(), Labels.end()), Labels.end());

  for (const SymbolSet &Label : Labels) {
    // Map old class -> new class for the in-label members.
    std::map<uint16_t, uint16_t> SplitClass;
    for (unsigned C = 0; C < SymbolSet::NumSymbols; ++C) {
      if (!Label.contains(static_cast<unsigned char>(C)))
        continue;
      uint16_t Old = ClassOf[C];
      auto [It, Inserted] = SplitClass.emplace(Old, NextClass);
      if (Inserted)
        ++NextClass;
      ClassOf[C] = It->second;
    }
  }

  // Collect classes into atoms, ordered by their smallest symbol.
  std::map<uint16_t, SymbolSet> AtomOf;
  for (unsigned C = 0; C < SymbolSet::NumSymbols; ++C)
    AtomOf[ClassOf[C]].insert(static_cast<unsigned char>(C));
  std::vector<SymbolSet> Atoms;
  Atoms.reserve(AtomOf.size());
  for (auto &[Class, Atom] : AtomOf)
    Atoms.push_back(Atom);
  std::sort(Atoms.begin(), Atoms.end(),
            [](const SymbolSet &A, const SymbolSet &B) {
              return A.min() < B.min();
            });
  return Atoms;
}

Nfa mfsa::splitByAtoms(const Nfa &A, const std::vector<SymbolSet> &Atoms) {
  Nfa Out;
  for (StateId Q = 0; Q < A.numStates(); ++Q)
    Out.addState();
  Out.setInitial(A.initial());
  Out.setAnchors(A.anchoredStart(), A.anchoredEnd());
  for (StateId F : A.finals())
    Out.addFinal(F);

  for (const Transition &T : A.transitions()) {
    assert(!T.Label.empty() && "splitByAtoms requires an ε-free automaton");
    SymbolSet Remaining = T.Label;
    for (const SymbolSet &Atom : Atoms) {
      if (!Remaining.intersects(Atom))
        continue;
      SymbolSet Piece = Remaining & Atom;
      assert(Piece == (T.Label & Atom) &&
             "atom partially consumed twice — atoms not disjoint?");
      Out.addTransition(T.From, T.To, Piece);
      Remaining &= Atom.complement();
      if (Remaining.empty())
        break;
    }
    assert(Remaining.empty() && "label not covered by the atom partition");
  }
  Out.canonicalize();
  return Out;
}

std::vector<Nfa> mfsa::splitAllByAtoms(const std::vector<Nfa> &Fsas) {
  std::vector<SymbolSet> Atoms = computeAlphabetAtoms(Fsas);
  std::vector<Nfa> Out;
  Out.reserve(Fsas.size());
  for (const Nfa &A : Fsas)
    Out.push_back(splitByAtoms(A, Atoms));
  return Out;
}
