//===- LiteralAnalysis.cpp - mandatory-literal extraction ----------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "fsa/LiteralAnalysis.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace mfsa;

namespace {

/// Linearized view of a concatenation: either one fixed character or an
/// opaque sub-expression (whose own mandatory literal may still be a
/// candidate, but cannot be joined into a surrounding run).
struct SequenceItem {
  bool IsChar = false;
  char Char = 0;
  const AstNode *Opaque = nullptr;
};

/// Flattens nested concatenations into character/opaque items. A Repeat
/// with min >= 1 whose body is a single fixed character contributes that
/// character `min` times followed by an opaque break when max > min.
void linearize(const AstNode &Node, std::vector<SequenceItem> &Out) {
  switch (Node.kind()) {
  case AstKind::Empty:
    return;
  case AstKind::Symbols: {
    const SymbolSet &Set = static_cast<const SymbolsNode &>(Node).symbols();
    SequenceItem Item;
    if (Set.isSingleton()) {
      Item.IsChar = true;
      Item.Char = static_cast<char>(Set.min());
    } else {
      Item.Opaque = &Node;
    }
    Out.push_back(Item);
    return;
  }
  case AstKind::Concat:
    for (const auto &Child : static_cast<const ConcatNode &>(Node).children())
      linearize(*Child, Out);
    return;
  case AstKind::Repeat: {
    const auto &R = static_cast<const RepeatNode &>(Node);
    if (R.min() >= 1 && R.child().kind() == AstKind::Symbols) {
      const SymbolSet &Set =
          static_cast<const SymbolsNode &>(R.child()).symbols();
      if (Set.isSingleton()) {
        SequenceItem Item;
        Item.IsChar = true;
        Item.Char = static_cast<char>(Set.min());
        for (uint32_t I = 0; I < R.min(); ++I)
          Out.push_back(Item);
        if (R.max() != R.min()) {
          SequenceItem Break;
          Break.Opaque = &Node; // the optional tail breaks the run
          Out.push_back(Break);
        }
        return;
      }
    }
    SequenceItem Item;
    Item.Opaque = &Node;
    Out.push_back(Item);
    return;
  }
  case AstKind::Alternate: {
    SequenceItem Item;
    Item.Opaque = &Node;
    Out.push_back(Item);
    return;
  }
  }
}

} // namespace

std::string mfsa::mandatoryLiteral(const AstNode &Node) {
  switch (Node.kind()) {
  case AstKind::Empty:
    return {};
  case AstKind::Symbols: {
    const SymbolSet &Set = static_cast<const SymbolsNode &>(Node).symbols();
    if (Set.isSingleton())
      return std::string(1, static_cast<char>(Set.min()));
    return {};
  }
  case AstKind::Repeat: {
    const auto &R = static_cast<const RepeatNode &>(Node);
    if (R.min() == 0)
      return {}; // the body may be skipped entirely
    return mandatoryLiteral(R.child());
  }
  case AstKind::Alternate: {
    // Sound only when every branch provably contains the same literal.
    const auto &Children =
        static_cast<const AlternateNode &>(Node).children();
    std::string Common = mandatoryLiteral(*Children.front());
    if (Common.empty())
      return {};
    for (size_t I = 1; I < Children.size(); ++I)
      if (mandatoryLiteral(*Children[I]) != Common)
        return {};
    return Common;
  }
  case AstKind::Concat: {
    std::vector<SequenceItem> Sequence;
    linearize(Node, Sequence);
    std::string Best;
    std::string Run;
    auto Consider = [&](const std::string &Candidate) {
      if (Candidate.size() > Best.size())
        Best = Candidate;
    };
    for (const SequenceItem &Item : Sequence) {
      if (Item.IsChar) {
        Run.push_back(Item.Char);
        continue;
      }
      Consider(Run);
      Run.clear();
      if (Item.Opaque)
        Consider(mandatoryLiteral(*Item.Opaque));
    }
    Consider(Run);
    return Best;
  }
  }
  return {};
}

uint32_t mfsa::boundedMatchLength(const Nfa &A) {
  assert(!A.hasEpsilons() && "boundedMatchLength requires ε-free automata");
  const uint32_t N = A.numStates();
  std::vector<std::vector<StateId>> Adj(N);
  std::vector<uint32_t> InDegree(N, 0);
  for (const Transition &T : A.transitions()) {
    Adj[T.From].push_back(T.To);
    ++InDegree[T.To];
  }

  // Kahn topological order; leftovers mean a cycle (unbounded matches).
  std::vector<StateId> Order;
  Order.reserve(N);
  std::vector<uint32_t> Degree = InDegree;
  for (StateId Q = 0; Q < N; ++Q)
    if (Degree[Q] == 0)
      Order.push_back(Q);
  for (size_t Head = 0; Head < Order.size(); ++Head)
    for (StateId To : Adj[Order[Head]])
      if (--Degree[To] == 0)
        Order.push_back(To);
  if (Order.size() != N)
    return 0;

  // Longest path from the initial state to any final state.
  constexpr int64_t Unreachable = -1;
  std::vector<int64_t> Longest(N, Unreachable);
  Longest[A.initial()] = 0;
  for (StateId Q : Order) {
    if (Longest[Q] == Unreachable)
      continue;
    for (StateId To : Adj[Q])
      Longest[To] = std::max(Longest[To], Longest[Q] + 1);
  }
  int64_t Bound = 0;
  for (StateId F : A.finals())
    Bound = std::max(Bound, Longest[F]);
  return static_cast<uint32_t>(Bound);
}

PrefilterInfo mfsa::analyzeForPrefilter(const Regex &Re,
                                        const Nfa &OptimizedFsa,
                                        uint32_t MinLiteralLength) {
  PrefilterInfo Info;
  if (Re.AnchoredStart || Re.AnchoredEnd)
    return Info; // windowed rescanning would break anchor semantics
  Info.Literal = mandatoryLiteral(*Re.Root);
  if (Info.Literal.size() < MinLiteralLength)
    return Info;
  Info.MaxMatchLength = boundedMatchLength(OptimizedFsa);
  if (Info.MaxMatchLength == 0)
    return Info; // cyclic: windows would be unbounded
  Info.Prefilterable = true;
  return Info;
}
