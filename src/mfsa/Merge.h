//===- Merge.h - Algorithm 1: merging FSAs into an MFSA ---------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares the merging-based optimization (paper §III-A, Algorithm 1). A
/// set of M optimized, ε-free FSAs is merged in a cascaded fashion into one
/// MFSA: the first automaton is copied as-is; each incoming FSA is compared
/// against the evolving MFSA, common sub-paths (transitions with identical
/// SymbolSet labels connected with the same morphology) are collected into
/// Merging Structures, the incoming FSA's states are relabeled onto the
/// MFSA's (shared states) or onto fresh ids (disjoint states), and its
/// transitions either coalesce with existing arcs — extending their
/// belonging set — or are appended.
///
/// Correctness invariant: relabeling is a partial *injective* map, and no
/// transition is removed or changed, so every rule's extractRule() image is
/// isomorphic to its input FSA; the activation function (engine-side) then
/// guarantees per-rule language preservation regardless of which sub-paths
/// were shared. The search is a greedy heuristic affecting only compression.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_MFSA_MERGE_H
#define MFSA_MFSA_MERGE_H

#include "fsa/Nfa.h"
#include "mfsa/Mfsa.h"
#include "support/Result.h"

#include <cstdint>
#include <vector>

namespace mfsa {

/// Knobs for the merging search.
struct MergeOptions {
  /// Master switch for the common-sub-path search; when false every incoming
  /// FSA is copied disjointly (outcome (a) of §III-A for all inputs), which
  /// is the no-sharing baseline of the compression benches.
  bool EnableSubpathSearch = true;

  /// When false, only singleton labels may seed or extend merges, i.e.
  /// character-class transitions are never shared (set Y of §III-A is
  /// dropped). Exposed for the ablation benches.
  bool MergeCharClasses = true;

  /// Minimum number of label-identical consecutive transitions a
  /// singleton-label seed must match before its bindings commit. The paper
  /// merges *sub-paths* — with length-1 commits, single characters from a
  /// small alphabet stitch unrelated rules together and the MFSA collapses
  /// toward the alphabet-limited minimum, far beyond the paper's measured
  /// compression. Character-class seeds are exempt (an exact 256-bit label
  /// match is already highly selective, §III-A set Y), as are seeds adjacent
  /// to an already-merged region (they extend an existing sub-path). Set
  /// to 1 to allow single-character merges (ablation).
  uint32_t MinSubpathLength = 3;
};

/// Counters describing how much sharing one merge achieved.
struct MergeReport {
  uint64_t SeedsAccepted = 0;       ///< Seed transition pairs adopted.
  uint64_t StatesShared = 0;        ///< Incoming states relabeled onto MFSA states.
  uint64_t TransitionsShared = 0;   ///< Incoming arcs coalesced with MFSA arcs.
  uint64_t CandidatePairsTried = 0; ///< Label-equal transition pairs examined.

  MergeReport &operator+=(const MergeReport &O) {
    SeedsAccepted += O.SeedsAccepted;
    StatesShared += O.StatesShared;
    TransitionsShared += O.TransitionsShared;
    CandidatePairsTried += O.CandidatePairsTried;
    return *this;
  }
};

/// Resource budget for one merge. Merging never shrinks the MFSA — every
/// incoming FSA adds at most its own states and transitions — so overruns
/// are detected right after each automaton's incorporation and reported with
/// that automaton's index, letting callers quarantine the offender and retry
/// without it. 0 means unlimited for every field.
struct MergeBudget {
  uint64_t MaxStates = 0;      ///< Cap on the merged MFSA's state count.
  uint64_t MaxTransitions = 0; ///< Cap on the merged MFSA's transition count.
  double DeadlineMs = 0;       ///< Wall-clock cap for one mergeFsas call.
};

/// Merges \p Fsas (all ε-free) into a single MFSA. \p GlobalIds gives each
/// rule's index in the source dataset (used in match reporting); it must
/// have the same length as \p Fsas. \p Report, when non-null, accumulates
/// sharing counters.
Mfsa mergeFsas(const std::vector<Nfa> &Fsas,
               const std::vector<uint32_t> &GlobalIds,
               const MergeOptions &Options = {},
               MergeReport *Report = nullptr);

/// mergeFsas under a resource budget. On a size overrun the returned
/// diagnostic's Offset carries the index (into \p Fsas) of the automaton
/// whose incorporation breached the cap, so fault-isolating callers can drop
/// exactly that rule and re-merge the rest. On a deadline overrun Offset is
/// the index of the first automaton left unmerged (no single rule is at
/// fault); callers typically abandon the tail [Offset, end) instead.
Result<Mfsa> mergeFsasWithBudget(const std::vector<Nfa> &Fsas,
                                 const std::vector<uint32_t> &GlobalIds,
                                 const MergeOptions &Options,
                                 const MergeBudget &Budget,
                                 MergeReport *Report = nullptr);

/// Partitions \p Fsas into ⌈N/M⌉ sequential groups of size \p MergingFactor
/// (paper §VI: "sampling the input M REs sequentially from the dataset") and
/// merges each group. MergingFactor == 0 means "all" (one group).
std::vector<Mfsa> mergeInGroups(const std::vector<Nfa> &Fsas,
                                uint32_t MergingFactor,
                                const MergeOptions &Options = {},
                                MergeReport *Report = nullptr);

/// Merges along an explicit grouping: Groups[k] lists the indices (into
/// \p Fsas, which double as the rules' global ids) merged into the k-th
/// MFSA. Every index must appear exactly once across groups; empty groups
/// are rejected. Pairs with clusterBySimilarity() (workload/Clustering.h)
/// to realize the paper's proposed similarity-clustered grouping (§VIII
/// future work).
std::vector<Mfsa>
mergeWithGrouping(const std::vector<Nfa> &Fsas,
                  const std::vector<std::vector<uint32_t>> &Groups,
                  const MergeOptions &Options = {},
                  MergeReport *Report = nullptr);

} // namespace mfsa

#endif // MFSA_MFSA_MERGE_H
