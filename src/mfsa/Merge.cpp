//===- Merge.cpp - Algorithm 1: merging FSAs into an MFSA -------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Implementation notes.
//
// The paper's Algorithm 1 walks the COO representation of the evolving MFSA
// z and the incoming FSA a, collecting label-identical transition pairs into
// Merging Structures (MS) and extending each pair along subsequent
// transitions while the sub-paths stay identical; the MS entries then drive
// the relabeling of a's states onto z's.
//
// We implement the same search as a seeded graph matching: every
// label-identical transition pair (i ∈ z, j ∈ a) is a seed (the paper's
// lines 6-10); accepting a seed binds a's endpoints to z's endpoints in a
// partial injective relabeling map (the MS), and a BFS extends the binding
// along outgoing transitions whose labels match (the paper's lines 11-16
// path walk, generalized from linear COO chains to the full out-neighborhood
// so branching sub-paths are shared too). Bindings are never rolled back:
// any consistent injective binding is semantically safe (see Merge.h), so
// conflicts simply stop the extension, exactly like the algorithm's
// "stops at the first difference".
//
//===----------------------------------------------------------------------===//

#include "mfsa/Merge.h"

#include "support/Timer.h"

#include <cassert>
#include <queue>
#include <unordered_map>

using namespace mfsa;

namespace {

constexpr StateId Unmapped = UINT32_MAX;

/// The partial injective relabeling map between the incoming FSA `a` and the
/// evolving MFSA `z` — the algorithm's Merging Structures, folded into
/// bidirectional state-binding form.
struct RelabelMap {
  std::vector<StateId> AToZ; ///< a-state -> z-state or Unmapped.
  std::vector<StateId> ZToA; ///< z-state -> a-state or Unmapped.

  RelabelMap(uint32_t NumAStates, uint32_t NumZStates)
      : AToZ(NumAStates, Unmapped), ZToA(NumZStates, Unmapped) {}

  /// \returns true if binding As -> Zs is already present or insertable
  /// without breaking injectivity.
  bool compatible(StateId As, StateId Zs) const {
    if (AToZ[As] != Unmapped)
      return AToZ[As] == Zs;
    return ZToA[Zs] == Unmapped;
  }

  bool bound(StateId As) const { return AToZ[As] != Unmapped; }

  /// Binds As -> Zs; requires compatible(As, Zs). \returns true if the
  /// binding is new. New bindings are recorded on Trail for rollback.
  bool bind(StateId As, StateId Zs) {
    assert(compatible(As, Zs) && "inconsistent relabel binding");
    if (AToZ[As] == Zs)
      return false;
    AToZ[As] = Zs;
    ZToA[Zs] = As;
    Trail.emplace_back(As, Zs);
    return true;
  }

  size_t trailMark() const { return Trail.size(); }

  /// Undoes every binding made after \p Mark (tentative seed rejected).
  void rollbackTo(size_t Mark) {
    while (Trail.size() > Mark) {
      auto [As, Zs] = Trail.back();
      Trail.pop_back();
      AToZ[As] = Unmapped;
      ZToA[Zs] = Unmapped;
    }
  }

private:
  std::vector<std::pair<StateId, StateId>> Trail;
};

/// Searches common sub-paths between \p Z and \p A and accumulates the
/// relabeling bindings into \p Map (paper lines 5-19).
class SubpathSearch {
public:
  SubpathSearch(const Mfsa &Z, const Nfa &A, const MergeOptions &Options,
                RelabelMap &Map, MergeReport *Report)
      : Z(Z), A(A), Options(Options), Map(Map), Report(Report),
        ZOut(Z.numStates()), AOut(A.buildOutgoingIndex()) {
    for (uint32_t I = 0, E = Z.numTransitions(); I != E; ++I) {
      const MfsaTransition &T = Z.transitions()[I];
      ZOut[T.From].push_back(I);
      if (mergeableLabel(T.Label))
        ZByLabel[T.Label].push_back(I);
    }
  }

  void run() {
    // Paper lines 6-10: every label-identical (z, a) transition pair seeds a
    // merge attempt, in deterministic transition order.
    for (const Transition &TA : A.transitions()) {
      if (!mergeableLabel(TA.Label))
        continue;
      auto It = ZByLabel.find(TA.Label);
      if (It == ZByLabel.end())
        continue;
      for (uint32_t ZIdx : It->second) {
        // Once this incoming transition is fully relabeled there is nothing
        // further to gain from more seed candidates.
        if (Map.bound(TA.From) && Map.bound(TA.To))
          break;
        trySeed(Z.transitions()[ZIdx], TA);
      }
    }
  }

private:
  bool mergeableLabel(const SymbolSet &Label) const {
    return Options.MergeCharClasses || Label.isSingleton();
  }

  void trySeed(const MfsaTransition &TZ, const Transition &TA) {
    if (Report)
      ++Report->CandidatePairsTried;
    // Self-loop shape must agree, and both endpoint bindings must be
    // insertable together.
    if ((TA.From == TA.To) != (TZ.From == TZ.To))
      return;
    if (!Map.compatible(TA.From, TZ.From))
      return;
    if (TA.From != TA.To) {
      if (!Map.compatible(TA.To, TZ.To))
        return;
      // Binding two distinct a-states onto one z-state would collapse a's
      // morphology; reject (injectivity). TZ.From == TZ.To was already
      // excluded by the shape check, but From/To of z may still collide
      // with an existing binding, which compatible() covered above.
    }

    // Bind tentatively; singleton-label seeds must grow into a sub-path of
    // at least MinSubpathLength matched transitions or they roll back
    // (Merge.h rationale). A seed whose endpoint is already bound extends
    // an existing merged sub-path and is committed regardless of length.
    const bool AttachesToMergedRegion =
        Map.bound(TA.From) || Map.bound(TA.To);
    const size_t Mark = Map.trailMark();
    uint32_t MatchedTransitions = 1;

    std::queue<StateId> Frontier;
    if (Map.bind(TA.From, TZ.From))
      Frontier.push(TA.From);
    if (TA.From != TA.To && Map.bind(TA.To, TZ.To))
      Frontier.push(TA.To);

    // Paper lines 11-16: extend along subsequent transitions while the
    // sub-paths describe identical labels, stopping at the first difference.
    while (!Frontier.empty()) {
      StateId As = Frontier.front();
      Frontier.pop();
      StateId Zs = Map.AToZ[As];
      for (uint32_t AIdx : AOut[As]) {
        const Transition &Next = A.transitions()[AIdx];
        if (!mergeableLabel(Next.Label) || Map.bound(Next.To))
          continue;
        for (uint32_t ZIdx : ZOut[Zs]) {
          const MfsaTransition &Cand = Z.transitions()[ZIdx];
          if (Cand.Label != Next.Label)
            continue;
          // Keep loop shapes aligned: a self-loop may only bind to a
          // self-loop (Next.To == As requires Cand.To == Zs, and the
          // bound(Next.To) guard above already skipped that case).
          if (!Map.compatible(Next.To, Cand.To))
            continue;
          ++MatchedTransitions;
          if (Map.bind(Next.To, Cand.To))
            Frontier.push(Next.To);
          break;
        }
      }
    }

    const bool Selective = !TA.Label.isSingleton() || AttachesToMergedRegion;
    if (!Selective && MatchedTransitions < Options.MinSubpathLength) {
      Map.rollbackTo(Mark);
      return;
    }
    if (Report)
      ++Report->SeedsAccepted;
  }

  const Mfsa &Z;
  const Nfa &A;
  const MergeOptions &Options;
  RelabelMap &Map;
  MergeReport *Report;

  std::vector<std::vector<uint32_t>> ZOut;
  std::vector<std::vector<uint32_t>> AOut;
  std::unordered_map<SymbolSet, std::vector<uint32_t>, SymbolSetHash>
      ZByLabel;
};

/// Hashable key identifying an arc for coalescing.
struct ArcKey {
  StateId From;
  StateId To;
  SymbolSet Label;

  friend bool operator==(const ArcKey &A, const ArcKey &B) {
    return A.From == B.From && A.To == B.To && A.Label == B.Label;
  }
};

struct ArcKeyHash {
  size_t operator()(const ArcKey &K) const {
    uint64_t H = K.Label.hash();
    H ^= (static_cast<uint64_t>(K.From) << 32 | K.To) + 0x9e3779b97f4a7c15ULL +
         (H << 6) + (H >> 2);
    return static_cast<size_t>(H);
  }
};

} // namespace

Mfsa mfsa::mergeFsas(const std::vector<Nfa> &Fsas,
                     const std::vector<uint32_t> &GlobalIds,
                     const MergeOptions &Options, MergeReport *Report) {
  Result<Mfsa> Z = mergeFsasWithBudget(Fsas, GlobalIds, Options,
                                       MergeBudget(), Report);
  assert(Z.ok() && "unlimited budget cannot overrun");
  return Z.take();
}

Result<Mfsa> mfsa::mergeFsasWithBudget(const std::vector<Nfa> &Fsas,
                                       const std::vector<uint32_t> &GlobalIds,
                                       const MergeOptions &Options,
                                       const MergeBudget &Budget,
                                       MergeReport *Report) {
  assert(!Fsas.empty() && "mergeFsas requires at least one automaton");
  assert(Fsas.size() == GlobalIds.size() &&
         "one global id per merged automaton");

  Timer Wall;
  const uint32_t NumRules = static_cast<uint32_t>(Fsas.size());
  Mfsa Z(NumRules);

  // Arc index for belonging coalescing, kept in sync as Z grows.
  std::unordered_map<ArcKey, uint32_t, ArcKeyHash> ArcIndex;

  for (RuleId Rule = 0; Rule < NumRules; ++Rule) {
    const Nfa &A = Fsas[Rule];
    assert(!A.hasEpsilons() && "merge inputs must be ε-free (run "
                               "optimizeForMerging first)");

    // Paper line 3 (first automaton copied as-is) is the degenerate case of
    // the general step with an empty relabeling map.
    RelabelMap Map(A.numStates(), Z.numStates());
    if (Options.EnableSubpathSearch && Rule > 0) {
      SubpathSearch Search(Z, A, Options, Map, Report);
      Search.run();
    }

    // Relabel (paper line 20): bound states keep their MFSA label, the rest
    // get fresh non-overlapping labels.
    std::vector<StateId> NewId(A.numStates(), Unmapped);
    for (StateId S = 0; S < A.numStates(); ++S) {
      if (Map.AToZ[S] != Unmapped) {
        NewId[S] = Map.AToZ[S];
        if (Report && Rule > 0)
          ++Report->StatesShared;
      } else {
        NewId[S] = Z.addState();
      }
    }

    // Update the MFSA (paper line 21): coalesce arcs that already exist —
    // extending their belonging — and append the rest.
    for (const Transition &T : A.transitions()) {
      ArcKey Key{NewId[T.From], NewId[T.To], T.Label};
      auto It = ArcIndex.find(Key);
      if (It != ArcIndex.end()) {
        Z.transitions()[It->second].Bel.set(Rule);
        if (Report && Rule > 0)
          ++Report->TransitionsShared;
        continue;
      }
      Z.addTransition(Key.From, Key.To, Key.Label, Z.makeBel(Rule));
      ArcIndex.emplace(Key, Z.numTransitions() - 1);
    }

    Mfsa::RuleInfo &Info = Z.rule(Rule);
    Info.Initial = NewId[A.initial()];
    Info.Finals.reserve(A.finals().size());
    for (StateId F : A.finals())
      Info.Finals.push_back(NewId[F]);
    Info.AnchoredStart = A.anchoredStart();
    Info.AnchoredEnd = A.anchoredEnd();
    Info.GlobalId = GlobalIds[Rule];

    // Budget checkpoint (fault-isolation layer): merging only ever adds, so
    // the first rule whose incorporation pushes the MFSA over a cap is the
    // offender to report. The Offset is the rule's index within Fsas.
    if ((Budget.MaxStates != 0 && Z.numStates() > Budget.MaxStates) ||
        (Budget.MaxTransitions != 0 &&
         Z.numTransitions() > Budget.MaxTransitions))
      return Diag("merge budget exceeded (" + std::to_string(Z.numStates()) +
                      " states / " + std::to_string(Z.numTransitions()) +
                      " transitions, budget " +
                      std::to_string(Budget.MaxStates) + " / " +
                      std::to_string(Budget.MaxTransitions) + ")",
                  Rule);
    if (Budget.DeadlineMs > 0 && Rule + 1 < NumRules &&
        Wall.elapsedMs() > Budget.DeadlineMs)
      return Diag("merge deadline exceeded after " +
                      std::to_string(Rule + 1) + " of " +
                      std::to_string(NumRules) + " automata",
                  Rule + 1);
  }
  return Z;
}

std::vector<Mfsa>
mfsa::mergeWithGrouping(const std::vector<Nfa> &Fsas,
                        const std::vector<std::vector<uint32_t>> &Groups,
                        const MergeOptions &Options, MergeReport *Report) {
  // Validate the grouping is a partition of [0, N).
  std::vector<bool> Seen(Fsas.size(), false);
  size_t Covered = 0;
  for (const std::vector<uint32_t> &Group : Groups) {
    assert(!Group.empty() && "empty merge group");
    for (uint32_t Index : Group) {
      assert(Index < Fsas.size() && "group index out of range");
      assert(!Seen[Index] && "rule assigned to two groups");
      Seen[Index] = true;
      ++Covered;
    }
  }
  assert(Covered == Fsas.size() && "grouping does not cover every rule");
  (void)Covered;

  std::vector<Mfsa> Result;
  Result.reserve(Groups.size());
  for (const std::vector<uint32_t> &Group : Groups) {
    std::vector<Nfa> Members;
    Members.reserve(Group.size());
    for (uint32_t Index : Group)
      Members.push_back(Fsas[Index]);
    Result.push_back(mergeFsas(Members, Group, Options, Report));
  }
  return Result;
}

std::vector<Mfsa> mfsa::mergeInGroups(const std::vector<Nfa> &Fsas,
                                      uint32_t MergingFactor,
                                      const MergeOptions &Options,
                                      MergeReport *Report) {
  const uint32_t N = static_cast<uint32_t>(Fsas.size());
  if (MergingFactor == 0 || MergingFactor > N)
    MergingFactor = N;

  std::vector<Mfsa> Result;
  for (uint32_t Begin = 0; Begin < N; Begin += MergingFactor) {
    uint32_t End = std::min(Begin + MergingFactor, N);
    std::vector<Nfa> Group(Fsas.begin() + Begin, Fsas.begin() + End);
    std::vector<uint32_t> Ids;
    Ids.reserve(End - Begin);
    for (uint32_t I = Begin; I < End; ++I)
      Ids.push_back(I);
    Result.push_back(mergeFsas(Group, Ids, Options, Report));
  }
  return Result;
}
