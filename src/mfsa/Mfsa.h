//===- Mfsa.h - Multi-RE finite state automaton -----------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines Mfsa, the paper's central model (§III-B, Eq. 10):
///
///   z = (Q, Σ, Δ, I, F, J, R)
///
/// a single automaton recognizing and *distinguishing* the languages of a
/// set of merged FSAs. Each transition carries a belonging set `bel` (the
/// merged-rule identifiers it derives from, Fig. 2); the activation function
/// J is not stored — it is maintained at traversal time by the iMFAnt engine
/// according to rules (4)-(6), using the per-rule initial and final state
/// sets stored here.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_MFSA_MFSA_H
#define MFSA_MFSA_MFSA_H

#include "fsa/Nfa.h"
#include "support/DynamicBitset.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mfsa {

/// Index of a merged rule (the paper's FSA identifier j ∈ R), local to one
/// Mfsa: 0 .. numRules()-1.
using RuleId = uint32_t;

/// One MFSA transition: a labeled arc plus the set of merged rules it
/// belongs to.
struct MfsaTransition {
  StateId From = 0;
  StateId To = 0;
  SymbolSet Label;
  DynamicBitset Bel; ///< Width == Mfsa::numRules().
};

/// A Multi-RE FSA. Built by mergeFsas() (Algorithm 1) or the trivial
/// single-rule constructor; executed by the iMFAnt engine; serialized by the
/// ANML back-end.
class Mfsa {
public:
  /// Creates an empty MFSA prepared for \p NumRules merged rules.
  explicit Mfsa(uint32_t NumRules = 0) : Rules(NumRules) {}

  //===------------------------------------------------------------------===//
  // Structure
  //===------------------------------------------------------------------===//

  StateId addState() { return NumStatesValue++; }
  uint32_t numStates() const { return NumStatesValue; }

  void addTransition(StateId From, StateId To, const SymbolSet &Label,
                     DynamicBitset Bel);
  const std::vector<MfsaTransition> &transitions() const {
    return Transitions;
  }
  std::vector<MfsaTransition> &transitions() { return Transitions; }
  uint32_t numTransitions() const {
    return static_cast<uint32_t>(Transitions.size());
  }

  //===------------------------------------------------------------------===//
  // Per-rule metadata (I, F, anchors, provenance)
  //===------------------------------------------------------------------===//

  /// Per-rule bookkeeping: where the rule starts and accepts inside the
  /// merged graph, its anchor flags, and its identity in the source dataset.
  struct RuleInfo {
    StateId Initial = 0;
    std::vector<StateId> Finals;
    bool AnchoredStart = false;
    bool AnchoredEnd = false;
    uint32_t GlobalId = 0; ///< Rule index in the original dataset.
  };

  uint32_t numRules() const { return static_cast<uint32_t>(Rules.size()); }
  RuleInfo &rule(RuleId Id) { return Rules[Id]; }
  const RuleInfo &rule(RuleId Id) const { return Rules[Id]; }

  /// Makes a belonging set of the right width with \p Id set.
  DynamicBitset makeBel(RuleId Id) const {
    DynamicBitset B(numRules());
    B.set(Id);
    return B;
  }

  //===------------------------------------------------------------------===//
  // Queries
  //===------------------------------------------------------------------===//

  /// Extracts rule \p Id's own sub-automaton: the transitions whose `bel`
  /// contains Id, compacted and renumbered. By construction (no transition
  /// is removed nor changed, §III-A) this is isomorphic to the merged input
  /// FSA — the property verifyAgainstInputs() checks, and translation
  /// validation (analysis/TranslationValidate.h) strengthens to a language
  /// equivalence proof against the pre-merge FSA (Eq. 10).
  Nfa extractRule(RuleId Id) const;

  /// Generalized belonging-set projection: materializes the sub-automaton
  /// of the transitions whose `bel` intersects \p Mask (width numRules()),
  /// renumbered compactly with \p Initial mapped first; \p Finals lists
  /// final states in merged-graph ids (unreached ones are dropped). The
  /// result carries no anchor flags — a multi-rule mask has no single
  /// anchor semantics; extractRule(Id) restores the rule's own.
  Nfa projectBelonging(const DynamicBitset &Mask, StateId Initial,
                       const std::vector<StateId> &Finals) const;

  /// Checks that every rule's extractRule() image has exactly the state and
  /// transition counts of the corresponding input FSA (\p Inputs parallel
  /// to rule ids) — the cheap witness of the merge-preserves-morphology
  /// invariant. \returns an empty string on success.
  std::string verifyAgainstInputs(const std::vector<Nfa> &Inputs) const;

  /// Validates internal invariants (index ranges, bel widths, non-empty
  /// labels, every rule owning a consistent sub-automaton). \returns an
  /// empty string on success, else a description of the violation.
  std::string verify() const;

  /// Renders the MFSA in Graphviz DOT with belonging annotations.
  std::string writeDot(const std::string &Name) const;

private:
  uint32_t NumStatesValue = 0;
  std::vector<MfsaTransition> Transitions;
  std::vector<RuleInfo> Rules;
};

/// Aggregate size counters for compression studies (Fig. 7).
struct MfsaSetStats {
  uint64_t TotalStates = 0;
  uint64_t TotalTransitions = 0;
};

/// Sums states and transitions over a set of MFSAs.
MfsaSetStats computeSetStats(const std::vector<Mfsa> &Set);

/// Percentage reduction of \p Merged relative to \p Baseline
/// (paper §VI-A: %comp = (base - merged) / base * 100).
double compressionPercent(uint64_t Baseline, uint64_t Merged);

} // namespace mfsa

#endif // MFSA_MFSA_MFSA_H
