//===- Mfsa.cpp - Multi-RE finite state automaton ---------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "mfsa/Mfsa.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <queue>

using namespace mfsa;

void Mfsa::addTransition(StateId From, StateId To, const SymbolSet &Label,
                         DynamicBitset Bel) {
  assert(From < NumStatesValue && "transition from unknown state");
  assert(To < NumStatesValue && "transition to unknown state");
  assert(Bel.size() == numRules() && "belonging set width mismatch");
  assert(!Label.empty() && "MFSA transitions must be non-empty (no ε)");
  Transitions.push_back(MfsaTransition{From, To, Label, std::move(Bel)});
}

Nfa Mfsa::projectBelonging(const DynamicBitset &Mask, StateId Initial,
                           const std::vector<StateId> &Finals) const {
  assert(Mask.size() == numRules() && "mask width mismatch");

  // Gather the masked transitions and the states they touch.
  constexpr StateId Unmapped = UINT32_MAX;
  std::vector<StateId> NewId(NumStatesValue, Unmapped);
  Nfa Out;
  auto MapState = [&](StateId S) {
    if (NewId[S] == Unmapped)
      NewId[S] = Out.addState();
    return NewId[S];
  };

  // Map the initial state first so it exists even for a transition-less
  // projection.
  Out.setInitial(MapState(Initial));
  for (const MfsaTransition &T : Transitions)
    if (T.Bel.intersects(Mask))
      Out.addTransition(MapState(T.From), MapState(T.To), T.Label);
  for (StateId F : Finals)
    if (NewId[F] != Unmapped)
      Out.addFinal(NewId[F]);
  Out.canonicalize();
  return Out;
}

Nfa Mfsa::extractRule(RuleId Id) const {
  assert(Id < numRules() && "unknown rule");
  const RuleInfo &Info = Rules[Id];
  Nfa Out = projectBelonging(makeBel(Id), Info.Initial, Info.Finals);
  Out.setAnchors(Info.AnchoredStart, Info.AnchoredEnd);
  return Out;
}

std::string Mfsa::verifyAgainstInputs(const std::vector<Nfa> &Inputs) const {
  if (Inputs.size() != numRules())
    return "input count does not match rule count";
  for (RuleId Id = 0; Id < numRules(); ++Id) {
    Nfa Sub = extractRule(Id);
    if (Sub.numStates() != Inputs[Id].numStates())
      return "rule " + std::to_string(Id) + ": state count diverged";
    if (Sub.numTransitions() != Inputs[Id].numTransitions())
      return "rule " + std::to_string(Id) + ": transition count diverged";
  }
  return {};
}

std::string Mfsa::verify() const {
  for (const MfsaTransition &T : Transitions) {
    if (T.From >= NumStatesValue || T.To >= NumStatesValue)
      return "transition references an unknown state";
    if (T.Label.empty())
      return "transition with empty (ε) label";
    if (T.Bel.size() != numRules())
      return "belonging set width mismatch";
    if (T.Bel.none())
      return "transition belonging to no rule";
  }
  for (RuleId Id = 0; Id < numRules(); ++Id) {
    const RuleInfo &Info = Rules[Id];
    if (Info.Initial >= NumStatesValue && NumStatesValue > 0)
      return "rule initial state out of range";
    for (StateId F : Info.Finals)
      if (F >= NumStatesValue)
        return "rule final state out of range";
  }
  // Parallel duplicate (From, To, Label) arcs must have been coalesced into
  // one arc with a merged belonging set; duplicates would double-count
  // matches in the engine.
  std::map<std::tuple<StateId, StateId, SymbolSet>, unsigned> SeenArcs;
  for (const MfsaTransition &T : Transitions)
    if (++SeenArcs[{T.From, T.To, T.Label}] > 1)
      return "duplicate parallel transition (same from/to/label)";
  return {};
}

std::string Mfsa::writeDot(const std::string &Name) const {
  std::string Out = "digraph \"" + Name + "\" {\n  rankdir=LR;\n";
  for (RuleId Id = 0; Id < numRules(); ++Id) {
    const RuleInfo &Info = Rules[Id];
    Out += "  // rule " + std::to_string(Id) + ": initial " +
           std::to_string(Info.Initial) + "\n";
    for (StateId F : Info.Finals)
      Out += "  " + std::to_string(F) + " [shape=doublecircle];\n";
  }
  for (const MfsaTransition &T : Transitions) {
    std::string Bel;
    T.Bel.forEach([&](unsigned Rule) {
      if (!Bel.empty())
        Bel += ",";
      Bel += std::to_string(Rule);
    });
    std::string Label = T.Label.toString() + " {" + Bel + "}";
    std::string Escaped;
    for (char C : Label) {
      if (C == '"' || C == '\\')
        Escaped.push_back('\\');
      Escaped.push_back(C);
    }
    Out += "  " + std::to_string(T.From) + " -> " + std::to_string(T.To) +
           " [label=\"" + Escaped + "\"];\n";
  }
  Out += "}\n";
  return Out;
}

MfsaSetStats mfsa::computeSetStats(const std::vector<Mfsa> &Set) {
  MfsaSetStats S;
  for (const Mfsa &Z : Set) {
    S.TotalStates += Z.numStates();
    S.TotalTransitions += Z.numTransitions();
  }
  return S;
}

double mfsa::compressionPercent(uint64_t Baseline, uint64_t Merged) {
  if (Baseline == 0)
    return 0.0;
  return (static_cast<double>(Baseline) - static_cast<double>(Merged)) /
         static_cast<double>(Baseline) * 100.0;
}
