//===- Timer.h - wall-clock stage timing ------------------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines Timer and StageTimes for the compilation-stage breakdown of
/// Fig. 8 (front-end, AST-to-FSA, ME-single, ME-merging, BE) and for the
/// engine's execution-time measurements (Figs. 9-10).
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_SUPPORT_TIMER_H
#define MFSA_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>

namespace mfsa {

/// Monotonic wall-clock stopwatch measuring elapsed nanoseconds.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// \returns nanoseconds elapsed since construction or the last reset().
  uint64_t elapsedNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             Start)
            .count());
  }

  /// \returns elapsed time in milliseconds as a double.
  double elapsedMs() const { return static_cast<double>(elapsedNs()) * 1e-6; }

  /// \returns elapsed time in seconds as a double.
  double elapsedSec() const { return static_cast<double>(elapsedNs()) * 1e-9; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Accumulated per-stage wall times for one run of the compilation pipeline,
/// mirroring the five stages of the paper's Fig. 8.
struct StageTimes {
  double FrontEndMs = 0;   ///< Lexical + syntactic analysis (FE).
  double AstToFsaMs = 0;   ///< Thompson-like construction (AST to FSA).
  double SingleOptMs = 0;  ///< Per-FSA optimization (ME-single).
  double MergingMs = 0;    ///< MFSA merging (ME-merging).
  double BackEndMs = 0;    ///< ANML generation (BE).

  double totalMs() const {
    return FrontEndMs + AstToFsaMs + SingleOptMs + MergingMs + BackEndMs;
  }

  StageTimes &operator+=(const StageTimes &O) {
    FrontEndMs += O.FrontEndMs;
    AstToFsaMs += O.AstToFsaMs;
    SingleOptMs += O.SingleOptMs;
    MergingMs += O.MergingMs;
    BackEndMs += O.BackEndMs;
    return *this;
  }

  /// Divides every stage by \p N; used to average repeated compilations.
  StageTimes scaledBy(double Factor) const {
    StageTimes S = *this;
    S.FrontEndMs *= Factor;
    S.AstToFsaMs *= Factor;
    S.SingleOptMs *= Factor;
    S.MergingMs *= Factor;
    S.BackEndMs *= Factor;
    return S;
  }
};

} // namespace mfsa

#endif // MFSA_SUPPORT_TIMER_H
