//===- SimdKernelsSse42.cpp - 128-bit kernel table -----------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
//
// SSE4.2-level implementations of the KernelTable contract: 128-bit lanes
// (two bitset words per operation) with scalar tails, PTEST (SSE4.1) for
// the any/intersect reductions, hardware POPCNT for counting, and PCMPEQB
// for the byte-class search. This TU is compiled with -msse4.2 only; no
// other file may call into it except through the table pointer, which the
// dispatcher hands out only after CPUID confirms support.
//
//===----------------------------------------------------------------------===//

#include "support/SimdKernels.h"

#include <nmmintrin.h>

using namespace mfsa::simd;

namespace {

void sseOrWords(uint64_t *Dst, const uint64_t *Src, size_t W) {
  size_t I = 0;
  for (; I + 2 <= W; I += 2) {
    __m128i D = _mm_loadu_si128(reinterpret_cast<const __m128i *>(Dst + I));
    __m128i S = _mm_loadu_si128(reinterpret_cast<const __m128i *>(Src + I));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(Dst + I),
                     _mm_or_si128(D, S));
  }
  for (; I < W; ++I)
    Dst[I] |= Src[I];
}

void sseAndWords(uint64_t *Dst, const uint64_t *Src, size_t W) {
  size_t I = 0;
  for (; I + 2 <= W; I += 2) {
    __m128i D = _mm_loadu_si128(reinterpret_cast<const __m128i *>(Dst + I));
    __m128i S = _mm_loadu_si128(reinterpret_cast<const __m128i *>(Src + I));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(Dst + I),
                     _mm_and_si128(D, S));
  }
  for (; I < W; ++I)
    Dst[I] &= Src[I];
}

void sseAndNotWords(uint64_t *Dst, const uint64_t *Src, size_t W) {
  size_t I = 0;
  for (; I + 2 <= W; I += 2) {
    __m128i D = _mm_loadu_si128(reinterpret_cast<const __m128i *>(Dst + I));
    __m128i S = _mm_loadu_si128(reinterpret_cast<const __m128i *>(Src + I));
    // andnot computes ~first & second.
    _mm_storeu_si128(reinterpret_cast<__m128i *>(Dst + I),
                     _mm_andnot_si128(S, D));
  }
  for (; I < W; ++I)
    Dst[I] &= ~Src[I];
}

bool sseAnyWords(const uint64_t *Src, size_t W) {
  size_t I = 0;
  __m128i Acc = _mm_setzero_si128();
  for (; I + 2 <= W; I += 2)
    Acc = _mm_or_si128(
        Acc, _mm_loadu_si128(reinterpret_cast<const __m128i *>(Src + I)));
  if (!_mm_testz_si128(Acc, Acc))
    return true;
  for (; I < W; ++I)
    if (Src[I])
      return true;
  return false;
}

bool sseIntersectsWords(const uint64_t *A, const uint64_t *B, size_t W) {
  size_t I = 0;
  for (; I + 2 <= W; I += 2) {
    __m128i VA = _mm_loadu_si128(reinterpret_cast<const __m128i *>(A + I));
    __m128i VB = _mm_loadu_si128(reinterpret_cast<const __m128i *>(B + I));
    if (!_mm_testz_si128(VA, VB))
      return true;
  }
  for (; I < W; ++I)
    if (A[I] & B[I])
      return true;
  return false;
}

uint64_t sseCountWords(const uint64_t *Src, size_t W) {
  // -msse4.2 implies hardware POPCNT; four-way unrolled scalar popcount
  // saturates the two popcnt ports without a lookup table.
  uint64_t N0 = 0, N1 = 0, N2 = 0, N3 = 0;
  size_t I = 0;
  for (; I + 4 <= W; I += 4) {
    N0 += static_cast<uint64_t>(_mm_popcnt_u64(Src[I]));
    N1 += static_cast<uint64_t>(_mm_popcnt_u64(Src[I + 1]));
    N2 += static_cast<uint64_t>(_mm_popcnt_u64(Src[I + 2]));
    N3 += static_cast<uint64_t>(_mm_popcnt_u64(Src[I + 3]));
  }
  for (; I < W; ++I)
    N0 += static_cast<uint64_t>(_mm_popcnt_u64(Src[I]));
  return N0 + N1 + N2 + N3;
}

bool sseAndInto(uint64_t *A, const uint64_t *Src, const uint64_t *Bel,
                size_t W) {
  size_t I = 0;
  __m128i Acc = _mm_setzero_si128();
  for (; I + 2 <= W; I += 2) {
    __m128i S = _mm_loadu_si128(reinterpret_cast<const __m128i *>(Src + I));
    __m128i B = _mm_loadu_si128(reinterpret_cast<const __m128i *>(Bel + I));
    __m128i R = _mm_and_si128(S, B);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(A + I), R);
    Acc = _mm_or_si128(Acc, R);
  }
  uint64_t Tail = 0;
  for (; I < W; ++I) {
    A[I] = Src[I] & Bel[I];
    Tail |= A[I];
  }
  return !_mm_testz_si128(Acc, Acc) || Tail != 0;
}

bool sseOrAndInto(uint64_t *A, const uint64_t *Src, const uint64_t *Bel,
                  const uint64_t *Mask, size_t W) {
  size_t I = 0;
  __m128i Acc = _mm_setzero_si128();
  for (; I + 2 <= W; I += 2) {
    __m128i S = _mm_loadu_si128(reinterpret_cast<const __m128i *>(Src + I));
    __m128i B = _mm_loadu_si128(reinterpret_cast<const __m128i *>(Bel + I));
    __m128i R = _mm_and_si128(S, B);
    if (Mask)
      R = _mm_and_si128(
          R, _mm_loadu_si128(reinterpret_cast<const __m128i *>(Mask + I)));
    R = _mm_or_si128(
        R, _mm_loadu_si128(reinterpret_cast<const __m128i *>(A + I)));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(A + I), R);
    Acc = _mm_or_si128(Acc, R);
  }
  uint64_t Tail = 0;
  for (; I < W; ++I) {
    uint64_t Inject = Src[I] & Bel[I];
    if (Mask)
      Inject &= Mask[I];
    A[I] |= Inject;
    Tail |= A[I];
  }
  return !_mm_testz_si128(Acc, Acc) || Tail != 0;
}

size_t sseFindByteInSet(const uint8_t *Data, size_t Len,
                        const uint8_t *Needles, uint32_t NumNeedles,
                        const uint64_t Bitmap[4]) {
  __m128i NeedleVecs[8];
  const uint32_t N = NumNeedles > 8 ? 8 : NumNeedles;
  for (uint32_t J = 0; J < N; ++J)
    NeedleVecs[J] = _mm_set1_epi8(static_cast<char>(Needles[J]));

  size_t I = 0;
  for (; I + 16 <= Len; I += 16) {
    __m128i Block =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(Data + I));
    __m128i Hit = _mm_setzero_si128();
    for (uint32_t J = 0; J < N; ++J)
      Hit = _mm_or_si128(Hit, _mm_cmpeq_epi8(Block, NeedleVecs[J]));
    int MaskBits = _mm_movemask_epi8(Hit);
    if (MaskBits)
      return I + static_cast<size_t>(__builtin_ctz(
                     static_cast<unsigned>(MaskBits)));
  }
  for (; I < Len; ++I)
    if (Bitmap[Data[I] >> 6] >> (Data[I] & 63) & 1)
      return I;
  return Len;
}

constexpr KernelTable Sse42Table = {
    "sse42",         sseOrWords,          sseAndWords,
    sseAndNotWords,  sseAnyWords,         sseIntersectsWords,
    sseCountWords,   sseAndInto,          sseOrAndInto,
    sseFindByteInSet,
};

} // namespace

const KernelTable *mfsa::simd::sse42Kernels() { return &Sse42Table; }
