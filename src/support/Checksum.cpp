//===- Checksum.cpp - CRC32C integrity checksums -----------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Checksum.h"

#include <array>

namespace {

/// 256-entry lookup table for the reflected CRC32C polynomial, built once on
/// first use (cheap, deterministic, no static-init ordering hazards).
const std::array<uint32_t, 256> &crcTable() {
  static const std::array<uint32_t, 256> Table = [] {
    std::array<uint32_t, 256> T{};
    constexpr uint32_t Poly = 0x82F63B78u; // CRC32C, reflected.
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t Crc = I;
      for (int Bit = 0; Bit < 8; ++Bit)
        Crc = (Crc >> 1) ^ ((Crc & 1) ? Poly : 0);
      T[I] = Crc;
    }
    return T;
  }();
  return Table;
}

} // namespace

uint32_t mfsa::crc32c(const void *Data, size_t Bytes, uint32_t Seed) {
  const std::array<uint32_t, 256> &Table = crcTable();
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  uint32_t Crc = ~Seed;
  for (size_t I = 0; I < Bytes; ++I)
    Crc = (Crc >> 8) ^ Table[(Crc ^ P[I]) & 0xFF];
  return ~Crc;
}
