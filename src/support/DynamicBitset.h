//===- DynamicBitset.h - variable-width bitset ------------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines DynamicBitset, a heap-backed bitset sized at runtime. It backs two
/// MFSA concepts from the paper: the per-transition belonging set `bel`
/// (which merged FSAs a transition derives from, Fig. 2) and the activation
/// set J(q) tracked by iMFAnt during traversal (Eq. 4-6).
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_SUPPORT_DYNAMICBITSET_H
#define MFSA_SUPPORT_DYNAMICBITSET_H

#include "support/SimdDispatch.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mfsa {

/// A runtime-sized bitset with the set-algebra operations the activation
/// function needs: union, intersection, any/none tests, and iteration.
class DynamicBitset {
public:
  DynamicBitset() = default;

  /// Creates a bitset able to hold bits [0, NumBits), all clear.
  explicit DynamicBitset(unsigned NumBits)
      : NumBits(NumBits), Words((NumBits + 63) / 64, 0) {}

  unsigned size() const { return NumBits; }

  // The single-bit accessors assert in checked builds and degrade to a
  // no-op / false in builds that define NDEBUG: an out-of-range index must
  // never scribble past Words (belonging sets index live engine state).

  void set(unsigned Bit) {
    assert(Bit < NumBits && "bit index out of range");
    if (Bit >= NumBits)
      return;
    Words[Bit >> 6] |= 1ULL << (Bit & 63);
  }

  void reset(unsigned Bit) {
    assert(Bit < NumBits && "bit index out of range");
    if (Bit >= NumBits)
      return;
    Words[Bit >> 6] &= ~(1ULL << (Bit & 63));
  }

  bool test(unsigned Bit) const {
    assert(Bit < NumBits && "bit index out of range");
    if (Bit >= NumBits)
      return false;
    return (Words[Bit >> 6] >> (Bit & 63)) & 1;
  }

  /// Clears every bit without changing capacity.
  void clear() {
    for (uint64_t &W : Words)
      W = 0;
  }

  // The bulk queries and set-algebra operators below dispatch through the
  // runtime-selected SIMD kernel table (support/SimdDispatch.h); the scalar
  // table is the reference the vector paths are property-tested against.

  bool any() const {
    return simd::ops().AnyWords(Words.data(), Words.size());
  }

  bool none() const { return !any(); }

  unsigned count() const {
    return static_cast<unsigned>(
        simd::ops().CountWords(Words.data(), Words.size()));
  }

  // The set-algebra operators likewise assert on width mismatch but never
  // read or write past the shorter operand.

  DynamicBitset &operator|=(const DynamicBitset &Other) {
    assert(NumBits == Other.NumBits && "bitset width mismatch");
    simd::ops().OrWords(Words.data(), Other.Words.data(),
                        std::min(Words.size(), Other.Words.size()));
    return *this;
  }

  DynamicBitset &operator&=(const DynamicBitset &Other) {
    assert(NumBits == Other.NumBits && "bitset width mismatch");
    simd::ops().AndWords(Words.data(), Other.Words.data(),
                         std::min(Words.size(), Other.Words.size()));
    return *this;
  }

  /// Removes every bit of \p Other from this set (this &= ~Other).
  DynamicBitset &subtract(const DynamicBitset &Other) {
    assert(NumBits == Other.NumBits && "bitset width mismatch");
    simd::ops().AndNotWords(Words.data(), Other.Words.data(),
                            std::min(Words.size(), Other.Words.size()));
    return *this;
  }

  friend DynamicBitset operator|(DynamicBitset A, const DynamicBitset &B) {
    return A |= B;
  }
  friend DynamicBitset operator&(DynamicBitset A, const DynamicBitset &B) {
    return A &= B;
  }

  /// \returns true if this set and \p Other share at least one bit.
  bool intersects(const DynamicBitset &Other) const {
    assert(NumBits == Other.NumBits && "bitset width mismatch");
    return simd::ops().IntersectsWords(
        Words.data(), Other.Words.data(),
        std::min(Words.size(), Other.Words.size()));
  }

  friend bool operator==(const DynamicBitset &A, const DynamicBitset &B) {
    return A.NumBits == B.NumBits && A.Words == B.Words;
  }
  friend bool operator!=(const DynamicBitset &A, const DynamicBitset &B) {
    return !(A == B);
  }

  /// Calls \p Fn for every set bit, in increasing order.
  template <typename CallableT> void forEach(CallableT Fn) const {
    for (size_t W = 0, E = Words.size(); W != E; ++W) {
      uint64_t Bits = Words[W];
      while (Bits) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(Bits));
        Fn(static_cast<unsigned>(W * 64 + Bit));
        Bits &= Bits - 1;
      }
    }
  }

  /// Direct word access for the engine's hot loop.
  const std::vector<uint64_t> &words() const { return Words; }
  std::vector<uint64_t> &words() { return Words; }

private:
  unsigned NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace mfsa

#endif // MFSA_SUPPORT_DYNAMICBITSET_H
