//===- SimdKernelsAvx2.cpp - 256-bit kernel table ------------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
//
// AVX2-level implementations of the KernelTable contract: 256-bit lanes
// (four bitset words per operation) with scalar tails, VPTEST for the
// any/intersect reductions, the in-register nibble-lookup population count
// (Mula's algorithm) for counting, and VPCMPEQB for the byte-class search.
// Compiled with -mavx2 only; reached exclusively through the dispatch
// table after CPUID confirms AVX2.
//
//===----------------------------------------------------------------------===//

#include "support/SimdKernels.h"

#include <immintrin.h>

using namespace mfsa::simd;

namespace {

void avxOrWords(uint64_t *Dst, const uint64_t *Src, size_t W) {
  size_t I = 0;
  for (; I + 4 <= W; I += 4) {
    __m256i D = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Dst + I));
    __m256i S = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Src + I));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Dst + I),
                        _mm256_or_si256(D, S));
  }
  for (; I < W; ++I)
    Dst[I] |= Src[I];
}

void avxAndWords(uint64_t *Dst, const uint64_t *Src, size_t W) {
  size_t I = 0;
  for (; I + 4 <= W; I += 4) {
    __m256i D = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Dst + I));
    __m256i S = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Src + I));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Dst + I),
                        _mm256_and_si256(D, S));
  }
  for (; I < W; ++I)
    Dst[I] &= Src[I];
}

void avxAndNotWords(uint64_t *Dst, const uint64_t *Src, size_t W) {
  size_t I = 0;
  for (; I + 4 <= W; I += 4) {
    __m256i D = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Dst + I));
    __m256i S = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Src + I));
    // andnot computes ~first & second.
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Dst + I),
                        _mm256_andnot_si256(S, D));
  }
  for (; I < W; ++I)
    Dst[I] &= ~Src[I];
}

bool avxAnyWords(const uint64_t *Src, size_t W) {
  size_t I = 0;
  __m256i Acc = _mm256_setzero_si256();
  for (; I + 4 <= W; I += 4)
    Acc = _mm256_or_si256(
        Acc, _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Src + I)));
  if (!_mm256_testz_si256(Acc, Acc))
    return true;
  for (; I < W; ++I)
    if (Src[I])
      return true;
  return false;
}

bool avxIntersectsWords(const uint64_t *A, const uint64_t *B, size_t W) {
  size_t I = 0;
  for (; I + 4 <= W; I += 4) {
    __m256i VA = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(A + I));
    __m256i VB = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(B + I));
    if (!_mm256_testz_si256(VA, VB))
      return true;
  }
  for (; I < W; ++I)
    if (A[I] & B[I])
      return true;
  return false;
}

/// Per-64-bit-lane population count via two 16-entry nibble lookups
/// (Mula's algorithm): shuffle each nibble through a 0..4 bit-count table,
/// then horizontally sum bytes per lane with SAD against zero.
__m256i popcountEpi64(__m256i V) {
  const __m256i Lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i LowMask = _mm256_set1_epi8(0x0f);
  __m256i Lo = _mm256_and_si256(V, LowMask);
  __m256i Hi = _mm256_and_si256(_mm256_srli_epi16(V, 4), LowMask);
  __m256i Counts = _mm256_add_epi8(_mm256_shuffle_epi8(Lookup, Lo),
                                   _mm256_shuffle_epi8(Lookup, Hi));
  return _mm256_sad_epu8(Counts, _mm256_setzero_si256());
}

uint64_t avxCountWords(const uint64_t *Src, size_t W) {
  size_t I = 0;
  __m256i Acc = _mm256_setzero_si256();
  for (; I + 4 <= W; I += 4)
    Acc = _mm256_add_epi64(
        Acc, popcountEpi64(_mm256_loadu_si256(
                 reinterpret_cast<const __m256i *>(Src + I))));
  uint64_t Lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i *>(Lanes), Acc);
  uint64_t N = Lanes[0] + Lanes[1] + Lanes[2] + Lanes[3];
  for (; I < W; ++I)
    N += static_cast<uint64_t>(__builtin_popcountll(Src[I]));
  return N;
}

bool avxAndInto(uint64_t *A, const uint64_t *Src, const uint64_t *Bel,
                size_t W) {
  size_t I = 0;
  __m256i Acc = _mm256_setzero_si256();
  for (; I + 4 <= W; I += 4) {
    __m256i S = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Src + I));
    __m256i B = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Bel + I));
    __m256i R = _mm256_and_si256(S, B);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(A + I), R);
    Acc = _mm256_or_si256(Acc, R);
  }
  uint64_t Tail = 0;
  for (; I < W; ++I) {
    A[I] = Src[I] & Bel[I];
    Tail |= A[I];
  }
  return !_mm256_testz_si256(Acc, Acc) || Tail != 0;
}

bool avxOrAndInto(uint64_t *A, const uint64_t *Src, const uint64_t *Bel,
                  const uint64_t *Mask, size_t W) {
  size_t I = 0;
  __m256i Acc = _mm256_setzero_si256();
  for (; I + 4 <= W; I += 4) {
    __m256i S = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Src + I));
    __m256i B = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Bel + I));
    __m256i R = _mm256_and_si256(S, B);
    if (Mask)
      R = _mm256_and_si256(R, _mm256_loadu_si256(
                                  reinterpret_cast<const __m256i *>(Mask + I)));
    R = _mm256_or_si256(
        R, _mm256_loadu_si256(reinterpret_cast<const __m256i *>(A + I)));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(A + I), R);
    Acc = _mm256_or_si256(Acc, R);
  }
  uint64_t Tail = 0;
  for (; I < W; ++I) {
    uint64_t Inject = Src[I] & Bel[I];
    if (Mask)
      Inject &= Mask[I];
    A[I] |= Inject;
    Tail |= A[I];
  }
  return !_mm256_testz_si256(Acc, Acc) || Tail != 0;
}

size_t avxFindByteInSet(const uint8_t *Data, size_t Len,
                        const uint8_t *Needles, uint32_t NumNeedles,
                        const uint64_t Bitmap[4]) {
  __m256i NeedleVecs[8];
  const uint32_t N = NumNeedles > 8 ? 8 : NumNeedles;
  for (uint32_t J = 0; J < N; ++J)
    NeedleVecs[J] = _mm256_set1_epi8(static_cast<char>(Needles[J]));

  size_t I = 0;
  for (; I + 32 <= Len; I += 32) {
    __m256i Block =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Data + I));
    __m256i Hit = _mm256_setzero_si256();
    for (uint32_t J = 0; J < N; ++J)
      Hit = _mm256_or_si256(Hit, _mm256_cmpeq_epi8(Block, NeedleVecs[J]));
    unsigned MaskBits = static_cast<unsigned>(_mm256_movemask_epi8(Hit));
    if (MaskBits)
      return I + static_cast<size_t>(__builtin_ctz(MaskBits));
  }
  for (; I < Len; ++I)
    if (Bitmap[Data[I] >> 6] >> (Data[I] & 63) & 1)
      return I;
  return Len;
}

constexpr KernelTable Avx2Table = {
    "avx2",          avxOrWords,          avxAndWords,
    avxAndNotWords,  avxAnyWords,         avxIntersectsWords,
    avxCountWords,   avxAndInto,          avxOrAndInto,
    avxFindByteInSet,
};

} // namespace

const KernelTable *mfsa::simd::avx2Kernels() { return &Avx2Table; }
