//===- StringUtil.cpp - small string helpers ------------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtil.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace mfsa;

std::string mfsa::xmlEscape(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '&':
      Out += "&amp;";
      break;
    case '<':
      Out += "&lt;";
      break;
    case '>':
      Out += "&gt;";
      break;
    case '"':
      Out += "&quot;";
      break;
    case '\'':
      Out += "&apos;";
      break;
    default:
      Out.push_back(C);
    }
  }
  return Out;
}

std::string mfsa::xmlUnescape(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (size_t I = 0; I < Text.size();) {
    if (Text[I] != '&') {
      Out.push_back(Text[I++]);
      continue;
    }
    size_t End = Text.find(';', I);
    if (End == std::string::npos) {
      Out.push_back(Text[I++]);
      continue;
    }
    std::string Entity = Text.substr(I, End - I + 1);
    if (Entity == "&amp;")
      Out.push_back('&');
    else if (Entity == "&lt;")
      Out.push_back('<');
    else if (Entity == "&gt;")
      Out.push_back('>');
    else if (Entity == "&quot;")
      Out.push_back('"');
    else if (Entity == "&apos;")
      Out.push_back('\'');
    else if (Entity.size() > 3 && Entity[1] == '#') {
      // Numeric character reference, decimal or hex.
      int Base = 10;
      size_t Digits = 2;
      if (Entity[2] == 'x' || Entity[2] == 'X') {
        Base = 16;
        Digits = 3;
      }
      const char *DigitsBegin = Entity.c_str() + Digits;
      char *DigitsEnd = nullptr;
      long Code = std::strtol(DigitsBegin, &DigitsEnd, Base);
      // A digit-less reference like "&#x;" parses to 0 with no digits
      // consumed; keep it verbatim rather than emitting a NUL byte.
      if (DigitsEnd != DigitsBegin && Code >= 0 && Code < 256)
        Out.push_back(static_cast<char>(Code));
      else
        Out += Entity;
    } else {
      Out += Entity;
    }
    I = End + 1;
  }
  return Out;
}

std::vector<std::string> mfsa::splitString(const std::string &Text,
                                           char Separator) {
  std::vector<std::string> Fields;
  size_t Start = 0;
  for (;;) {
    size_t Pos = Text.find(Separator, Start);
    if (Pos == std::string::npos) {
      Fields.push_back(Text.substr(Start));
      return Fields;
    }
    Fields.push_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string mfsa::trimString(const std::string &Text) {
  size_t Begin = 0;
  size_t End = Text.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  while (End > Begin &&
         std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

std::string mfsa::formatDouble(double Value, int Decimals) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Decimals, Value);
  return Buffer;
}

bool mfsa::startsWith(const std::string &Text, const std::string &Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.compare(0, Prefix.size(), Prefix) == 0;
}

namespace {

// strerror_r comes in two shapes: XSI returns int and fills Buf; the GNU
// variant returns a char* that may or may not be Buf. Overload dispatch on
// the actual return type picks the right interpretation without #ifdef'ing
// on feature-test macros that glibc and musl set inconsistently.
[[maybe_unused]] std::string strerrorResult(int Rc, const char *Buf,
                                            int Err) {
  if (Rc == 0)
    return Buf;
  return "errno " + std::to_string(Err);
}

[[maybe_unused]] std::string strerrorResult(const char *Msg, const char *,
                                            int Err) {
  if (Msg)
    return Msg;
  return "errno " + std::to_string(Err);
}

} // namespace

std::string mfsa::errnoString(int Err) {
  char Buf[256] = {0};
  return strerrorResult(::strerror_r(Err, Buf, sizeof(Buf)), Buf, Err);
}
