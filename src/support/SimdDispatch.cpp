//===- SimdDispatch.cpp - runtime SIMD level selection -------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Scalar reference kernels plus the level-resolution state machine. The
// scalar table is the semantics contract: every vector table must produce
// bit-identical results on every input (tests/SimdTest.cpp enforces this on
// randomized widths, and the differential harness re-runs the full engine
// corpus per level).
//
//===----------------------------------------------------------------------===//

#include "support/SimdDispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace mfsa;
using namespace mfsa::simd;

//===----------------------------------------------------------------------===//
// Scalar reference kernels
//===----------------------------------------------------------------------===//

namespace {

void scalarOrWords(uint64_t *Dst, const uint64_t *Src, size_t W) {
  for (size_t I = 0; I < W; ++I)
    Dst[I] |= Src[I];
}

void scalarAndWords(uint64_t *Dst, const uint64_t *Src, size_t W) {
  for (size_t I = 0; I < W; ++I)
    Dst[I] &= Src[I];
}

void scalarAndNotWords(uint64_t *Dst, const uint64_t *Src, size_t W) {
  for (size_t I = 0; I < W; ++I)
    Dst[I] &= ~Src[I];
}

bool scalarAnyWords(const uint64_t *Src, size_t W) {
  for (size_t I = 0; I < W; ++I)
    if (Src[I])
      return true;
  return false;
}

bool scalarIntersectsWords(const uint64_t *A, const uint64_t *B, size_t W) {
  for (size_t I = 0; I < W; ++I)
    if (A[I] & B[I])
      return true;
  return false;
}

uint64_t scalarCountWords(const uint64_t *Src, size_t W) {
  uint64_t N = 0;
  for (size_t I = 0; I < W; ++I)
    N += static_cast<uint64_t>(__builtin_popcountll(Src[I]));
  return N;
}

bool scalarAndInto(uint64_t *A, const uint64_t *Src, const uint64_t *Bel,
                   size_t W) {
  uint64_t Any = 0;
  for (size_t I = 0; I < W; ++I) {
    A[I] = Src[I] & Bel[I];
    Any |= A[I];
  }
  return Any != 0;
}

bool scalarOrAndInto(uint64_t *A, const uint64_t *Src, const uint64_t *Bel,
                     const uint64_t *Mask, size_t W) {
  uint64_t Any = 0;
  if (Mask) {
    for (size_t I = 0; I < W; ++I) {
      A[I] |= Src[I] & Bel[I] & Mask[I];
      Any |= A[I];
    }
  } else {
    for (size_t I = 0; I < W; ++I) {
      A[I] |= Src[I] & Bel[I];
      Any |= A[I];
    }
  }
  return Any != 0;
}

size_t scalarFindByteInSet(const uint8_t *Data, size_t Len,
                           const uint8_t *Needles, uint32_t NumNeedles,
                           const uint64_t Bitmap[4]) {
  (void)Needles;
  (void)NumNeedles;
  for (size_t I = 0; I < Len; ++I)
    if (Bitmap[Data[I] >> 6] >> (Data[I] & 63) & 1)
      return I;
  return Len;
}

constexpr KernelTable ScalarTable = {
    "scalar",        scalarOrWords,         scalarAndWords,
    scalarAndNotWords, scalarAnyWords,      scalarIntersectsWords,
    scalarCountWords, scalarAndInto,        scalarOrAndInto,
    scalarFindByteInSet,
};

} // namespace

const KernelTable &mfsa::simd::scalarKernels() { return ScalarTable; }

// When a vector translation unit is excluded from the build (non-x86
// target, compiler without the flag, or -DMFSA_SIMD capped the build), the
// getter resolves to this null stub instead; MFSA_HAVE_*_KERNELS is defined
// on the mfsa_support target exactly when the TU is compiled.
#ifndef MFSA_HAVE_SSE42_KERNELS
const KernelTable *mfsa::simd::sse42Kernels() { return nullptr; }
#endif
#ifndef MFSA_HAVE_AVX2_KERNELS
const KernelTable *mfsa::simd::avx2Kernels() { return nullptr; }
#endif

//===----------------------------------------------------------------------===//
// Level resolution
//===----------------------------------------------------------------------===//

namespace {

bool cpuSupports(Level L) {
#if defined(__x86_64__) || defined(__i386__)
  switch (L) {
  case Level::Scalar:
    return true;
  case Level::Sse42:
    return __builtin_cpu_supports("sse4.2") && __builtin_cpu_supports("popcnt");
  case Level::Avx2:
    return __builtin_cpu_supports("avx2");
  }
  return false;
#else
  return L == Level::Scalar;
#endif
}

const KernelTable *compiledTable(Level L) {
  switch (L) {
  case Level::Scalar:
    return &ScalarTable;
  case Level::Sse42:
    return sse42Kernels();
  case Level::Avx2:
    return avx2Kernels();
  }
  return nullptr;
}

// Publication pair. activate() stores the level byte first (relaxed), then
// the table pointer with release; readers acquire-load the table, so any
// reader that sees the new table also sees the matching level byte — the
// byte alone never needs its own ordering. Concurrent first-time activation
// is a benign race: both writers publish the identical (level, table) pair.
std::atomic<const KernelTable *> ActiveTable{nullptr};
std::atomic<uint8_t> ActiveLevelByte{0};

/// Resolves MFSA_SIMD (or auto) to an available level, clamping downward
/// with a one-shot warning when the request cannot be honored.
Level resolveFromEnv() {
  Level Best = bestLevel();
  const char *Env = std::getenv("MFSA_SIMD");
  if (!Env || !*Env || std::strcmp(Env, "auto") == 0)
    return Best;

  Level Requested;
  if (!parseLevel(Env, Requested)) {
    std::fprintf(stderr,
                 "mfsa: MFSA_SIMD=%s is not auto/avx2/sse42/scalar; "
                 "using %s\n",
                 Env, levelName(Best));
    return Best;
  }
  if (levelAvailable(Requested))
    return Requested;
  // Clamp to the best available level at or below the request.
  Level Clamped = Level::Scalar;
  for (Level L : availableLevels())
    if (static_cast<uint8_t>(L) <= static_cast<uint8_t>(Requested))
      Clamped = L;
  std::fprintf(stderr,
               "mfsa: MFSA_SIMD=%s not available in this build/CPU; "
               "using %s\n",
               Env, levelName(Clamped));
  return Clamped;
}

void activate(Level L) {
  ActiveLevelByte.store(static_cast<uint8_t>(L), std::memory_order_relaxed);
  ActiveTable.store(compiledTable(L), std::memory_order_release);
}

const KernelTable &resolveOnce() {
  // Benign race: concurrent first calls resolve to the same table.
  activate(resolveFromEnv());
  return *ActiveTable.load(std::memory_order_acquire);
}

} // namespace

const char *mfsa::simd::levelName(Level L) {
  switch (L) {
  case Level::Scalar:
    return "scalar";
  case Level::Sse42:
    return "sse42";
  case Level::Avx2:
    return "avx2";
  }
  return "unknown";
}

bool mfsa::simd::parseLevel(const char *Text, Level &Out) {
  if (std::strcmp(Text, "scalar") == 0)
    Out = Level::Scalar;
  else if (std::strcmp(Text, "sse42") == 0)
    Out = Level::Sse42;
  else if (std::strcmp(Text, "avx2") == 0)
    Out = Level::Avx2;
  else
    return false;
  return true;
}

bool mfsa::simd::levelAvailable(Level L) {
  return compiledTable(L) != nullptr && cpuSupports(L);
}

std::vector<Level> mfsa::simd::availableLevels() {
  std::vector<Level> Levels;
  for (Level L : {Level::Scalar, Level::Sse42, Level::Avx2})
    if (levelAvailable(L))
      Levels.push_back(L);
  return Levels;
}

Level mfsa::simd::bestLevel() {
  Level Best = Level::Scalar;
  for (Level L : availableLevels())
    Best = L;
  return Best;
}

Level mfsa::simd::activeLevel() {
  if (!ActiveTable.load(std::memory_order_acquire))
    resolveOnce();
  return static_cast<Level>(ActiveLevelByte.load(std::memory_order_relaxed));
}

const KernelTable &mfsa::simd::ops() {
  const KernelTable *T = ActiveTable.load(std::memory_order_acquire);
  if (T)
    return *T;
  return resolveOnce();
}

bool mfsa::simd::setLevel(Level L) {
  if (!levelAvailable(L))
    return false;
  activate(L);
  return true;
}

void mfsa::simd::resetToEnv() { activate(resolveFromEnv()); }
