//===- Sync.h - annotated synchronization primitives ------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The project's one synchronization layer: capability-annotated wrappers
/// over the std primitives (Abseil-style), so Clang's thread-safety analysis
/// proves the locking protocol at compile time instead of leaving it to
/// comments and whatever interleavings TSan happens to exercise.
///
/// Usage rules (enforced by tools/check_sync_annotations.py and, on Clang,
/// by -Werror=thread-safety -Werror=thread-safety-beta):
///
///   - No raw std::mutex / std::condition_variable / std::lock_guard /
///     std::unique_lock anywhere in src/ outside this header. Use
///     sync::Mutex, sync::MutexLock, sync::CondVar.
///   - Every shared field is MFSA_GUARDED_BY its mutex; every method that
///     assumes a held lock is MFSA_REQUIRES it (the `*Locked()` naming
///     convention stays, the attribute makes it checked).
///   - Every sync::Mutex declaration carries MFSA_LOCK_RANK(N) (a lint-only
///     marker, compiled to nothing) and a unique field name; nested
///     acquisitions must go strictly upward in rank.
///   - Same-class nesting is additionally declared with
///     MFSA_ACQUIRED_BEFORE so Clang's -Wthread-safety-beta checks it;
///     cross-class nesting is declared in the LOCK-ORDER table below, which
///     the lint checks for rank monotonicity and acyclicity.
///   - Condition waits are written as explicit `while (!predicate)` loops
///     in the annotated function body (not predicate lambdas), so the
///     guarded reads stay visible to the analysis.
///
/// Global lock-rank table — every mutex in the tree, lowest rank acquired
/// first. A thread may only acquire a mutex of strictly higher rank than
/// any it already holds; therefore the acquisition graph is acyclic and no
/// cycle-deadlock is possible. The deadlock lint parses the MFSA_LOCK_RANK
/// markers at the declarations and the LOCK-ORDER edges below.
///
///   rank  mutex (unique field name)                  guards
///   ----  -----------------------------------------  ----------------------
///    10   service::ScanServer::Impl::ConnMutex       live-connection list
///    20   service::...::Connection::SessionsMutex    per-tenant session map
///    30   service::...::Session::QueueMutex          chunk queue + sched flags
///    40   service::RulesetCache::CacheMutex          slot map + LRU order
///    50   service::RulesetCache::Slot::SlotMutex     memoized compile result
///    60   service::...::Connection::WriteMutex       reply framing on the fd
///    70   ThreadPool::PoolMutex                      task queue + idle count
///    80   obs::MetricsRegistry::RegistryMutex        metric registration maps
///    90   service::ScanServer::Impl::StoppedMutex    shutdown-complete flag
///
/// Observed cross-class acquisition edges (holder -> acquired). Each must go
/// strictly upward in rank; the lint builds the full graph from these lines
/// plus every MFSA_ACQUIRED_BEFORE/AFTER attribute in src/ and fails CI on a
/// non-monotone edge or a cycle. Add a line here whenever code acquires a
/// mutex while holding one of a different class.
///
// LOCK-ORDER: SessionsMutex -> WriteMutex     (stream-open rejects reply under the session map lock)
// LOCK-ORDER: SessionsMutex -> RegistryMutex  (budget-reject counters under the session map lock)
// LOCK-ORDER: QueueMutex -> PoolMutex         (scheduleLocked submits the drain task under the queue lock)
// LOCK-ORDER: QueueMutex -> WriteMutex        (closing-stream rejects reply under the queue lock)
// LOCK-ORDER: QueueMutex -> RegistryMutex     (teardown abort counters under the queue lock)
// LOCK-ORDER: CacheMutex -> RegistryMutex     (eviction counters under the cache map lock)
// LOCK-ORDER: SlotMutex -> RegistryMutex      (compile telemetry recorded under the slot lock)
///
/// Liveness notes the rank table cannot express (reviewed invariants):
///   - reapFinishedConnections() joins reader threads while holding
///     ConnMutex (rank 10); safe because no reader-thread path ever
///     acquires ConnMutex.
///   - Slot::SlotMutex (50) is deliberately held across a whole compile;
///     CacheMutex (40) is released first, so the cache map stays available
///     to other keys while a thundering herd collapses onto one compile.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_SUPPORT_SYNC_H
#define MFSA_SUPPORT_SYNC_H

#include <condition_variable>
#include <mutex>

//===----------------------------------------------------------------------===//
// Annotation macros (no-ops on non-Clang compilers)
//===----------------------------------------------------------------------===//

#if defined(__clang__)
#define MFSA_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define MFSA_THREAD_ANNOTATION__(x) // GCC et al.: plain std wrappers.
#endif

/// Declares a type to be a capability (lockable) the analysis tracks.
#define MFSA_CAPABILITY(x) MFSA_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII type that acquires in its ctor and releases in its dtor.
#define MFSA_SCOPED_CAPABILITY MFSA_THREAD_ANNOTATION__(scoped_lockable)

/// Field may only be read/written while holding \p x.
#define MFSA_GUARDED_BY(x) MFSA_THREAD_ANNOTATION__(guarded_by(x))

/// Pointee may only be dereferenced while holding \p x.
#define MFSA_PT_GUARDED_BY(x) MFSA_THREAD_ANNOTATION__(pt_guarded_by(x))

/// This mutex must be acquired before the listed ones (rank edge, checked
/// by -Wthread-safety-beta when both ends are attribute-visible).
#define MFSA_ACQUIRED_BEFORE(...)                                             \
  MFSA_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))

/// This mutex must be acquired after the listed ones.
#define MFSA_ACQUIRED_AFTER(...)                                              \
  MFSA_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Caller must already hold the listed capabilities (the `*Locked()`
/// convention, made checkable).
#define MFSA_REQUIRES(...)                                                    \
  MFSA_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function acquires the capability and does not release it before return.
#define MFSA_ACQUIRE(...)                                                     \
  MFSA_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define MFSA_RELEASE(...)                                                     \
  MFSA_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define MFSA_TRY_ACQUIRE(...)                                                 \
  MFSA_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (documents non-reentrancy
/// and self-deadlock freedom on the public API).
#define MFSA_EXCLUDES(...) MFSA_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Asserts (at analysis level) that the capability is held here.
#define MFSA_ASSERT_CAPABILITY(x) MFSA_THREAD_ANNOTATION__(assert_capability(x))

/// Function returns a reference to the given capability.
#define MFSA_RETURN_CAPABILITY(x) MFSA_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch; every use needs a comment justifying it. Currently unused.
#define MFSA_NO_THREAD_SAFETY_ANALYSIS                                        \
  MFSA_THREAD_ANNOTATION__(no_thread_safety_analysis)

/// Lint-only lock-rank marker (see the table above): compiled to nothing on
/// every compiler; tools/check_sync_annotations.py requires one on every
/// sync::Mutex declaration and checks every acquisition edge climbs ranks.
#define MFSA_LOCK_RANK(N)

namespace mfsa::sync {

class CondVar;
class MutexLock;

/// A std::mutex the analysis can track. Lock it with the scoped MutexLock;
/// the raw lock()/unlock() exist for completeness (and std::lock_guard
/// compatibility in tests) but tree code uses the RAII form exclusively.
class MFSA_CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex &) = delete;
  Mutex &operator=(const Mutex &) = delete;

  void lock() MFSA_ACQUIRE() { Impl.lock(); }
  void unlock() MFSA_RELEASE() { Impl.unlock(); }
  bool try_lock() MFSA_TRY_ACQUIRE(true) { return Impl.try_lock(); }

private:
  friend class MutexLock;
  std::mutex Impl;
};

/// Scoped lock: acquires in the constructor, releases in the destructor.
/// The only blessed way to hold a sync::Mutex; the analysis verifies every
/// guarded access happens inside such a scope.
class MFSA_SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex &M) MFSA_ACQUIRE(M) : Inner(M.Impl) {}
  ~MutexLock() MFSA_RELEASE() {}

  MutexLock(const MutexLock &) = delete;
  MutexLock &operator=(const MutexLock &) = delete;

private:
  friend class CondVar;
  std::unique_lock<std::mutex> Inner;
};

/// Condition variable bound to MutexLock. wait() atomically releases and
/// reacquires the lock; to the analysis the capability is held throughout,
/// which is exactly the caller-visible contract. Spurious wakeups are
/// possible — always wait in a `while (!predicate)` loop written directly
/// in the annotated function so the predicate's guarded reads are checked.
class CondVar {
public:
  CondVar() = default;
  CondVar(const CondVar &) = delete;
  CondVar &operator=(const CondVar &) = delete;

  void wait(MutexLock &Lock) { Impl.wait(Lock.Inner); }
  void notifyOne() { Impl.notify_one(); }
  void notifyAll() { Impl.notify_all(); }

private:
  std::condition_variable Impl;
};

} // namespace mfsa::sync

#endif // MFSA_SUPPORT_SYNC_H
