//===- FaultInject.cpp - deterministic test fault injection ------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInject.h"

#include <cstdlib>
#include <string>

using namespace mfsa;

const char *mfsa::faultPointName(FaultPoint Point) {
  switch (Point) {
  case FaultPoint::Parse:
    return "parse";
  case FaultPoint::Build:
    return "build";
  case FaultPoint::Opt:
    return "opt";
  case FaultPoint::Merge:
    return "merge";
  case FaultPoint::Serialize:
    return "serialize";
  case FaultPoint::Load:
    return "load";
  }
  return "unknown";
}

FaultSpec mfsa::readFaultSpec() {
  FaultSpec Spec;
  const char *Env = std::getenv("MFSA_FAULT_STAGE");
  if (!Env || !*Env)
    return Spec;
  const std::string Text(Env);
  const size_t Colon = Text.find(':');
  if (Colon == std::string::npos)
    return Spec;
  const std::string Stage = Text.substr(0, Colon);
  if (Stage == "parse")
    Spec.Point = FaultPoint::Parse;
  else if (Stage == "build")
    Spec.Point = FaultPoint::Build;
  else if (Stage == "opt")
    Spec.Point = FaultPoint::Opt;
  else if (Stage == "merge")
    Spec.Point = FaultPoint::Merge;
  else if (Stage == "serialize")
    Spec.Point = FaultPoint::Serialize;
  else if (Stage == "load")
    Spec.Point = FaultPoint::Load;
  else
    return Spec;
  uint64_t Index = 0;
  for (size_t I = Colon + 1; I < Text.size(); ++I) {
    if (Text[I] < '0' || Text[I] > '9')
      return Spec;
    Index = Index * 10 + static_cast<uint64_t>(Text[I] - '0');
    if (Index > UINT32_MAX)
      return Spec;
  }
  if (Colon + 1 == Text.size())
    return Spec;
  Spec.Index = static_cast<uint32_t>(Index);
  Spec.Active = true;
  return Spec;
}

Diag mfsa::injectedFault() {
  return Diag("injected fault (MFSA_FAULT_STAGE)", static_cast<size_t>(-1));
}
