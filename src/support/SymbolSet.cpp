//===- SymbolSet.cpp - 256-symbol character class -------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/SymbolSet.h"

#include <cassert>

using namespace mfsa;

unsigned SymbolSet::count() const {
  unsigned N = 0;
  for (unsigned I = 0; I < NumWords; ++I)
    N += static_cast<unsigned>(__builtin_popcountll(Words[I]));
  return N;
}

unsigned char SymbolSet::min() const {
  assert(!empty() && "min() of an empty SymbolSet");
  for (unsigned I = 0; I < NumWords; ++I)
    if (Words[I])
      return static_cast<unsigned char>(I * 64 + __builtin_ctzll(Words[I]));
  return 0;
}

SymbolSet SymbolSet::caseFolded() const {
  SymbolSet Folded = *this;
  for (unsigned C = 'a'; C <= 'z'; ++C)
    if (contains(static_cast<unsigned char>(C)))
      Folded.insert(static_cast<unsigned char>(C - 'a' + 'A'));
  for (unsigned C = 'A'; C <= 'Z'; ++C)
    if (contains(static_cast<unsigned char>(C)))
      Folded.insert(static_cast<unsigned char>(C - 'A' + 'a'));
  return Folded;
}

uint64_t SymbolSet::hash() const {
  // A simple multiply-xorshift mix over the four words; quality is plenty
  // for hash-bucketing transition labels.
  uint64_t H = 0x9e3779b97f4a7c15ULL;
  for (unsigned I = 0; I < NumWords; ++I) {
    H ^= Words[I] + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
    H *= 0xbf58476d1ce4e5b9ULL;
    H ^= H >> 31;
  }
  return H;
}

/// Escapes one symbol for display inside a class or as a bare label. Every
/// ERE metacharacter is escaped so printed patterns re-parse to the same
/// AST whether the symbol appears bare or inside a bracket expression
/// (escaping is harmless inside classes; the lexer maps any escaped
/// character to itself).
static void appendEscaped(std::string &Out, unsigned char C) {
  if (C >= 0x20 && C < 0x7f) {
    static const char Metacharacters[] = "[]\\-^(){}|*+?.$/";
    for (const char *M = Metacharacters; *M; ++M)
      if (C == static_cast<unsigned char>(*M)) {
        Out.push_back('\\');
        break;
      }
    Out.push_back(static_cast<char>(C));
    return;
  }
  static const char Hex[] = "0123456789abcdef";
  Out += "\\x";
  Out.push_back(Hex[C >> 4]);
  Out.push_back(Hex[C & 15]);
}

std::string SymbolSet::toString() const {
  if (empty())
    return "[]";
  if (isSingleton()) {
    std::string Out;
    appendEscaped(Out, min());
    return Out;
  }
  std::string Out = "[";
  unsigned C = 0;
  while (C < NumSymbols) {
    if (!contains(static_cast<unsigned char>(C))) {
      ++C;
      continue;
    }
    unsigned Hi = C;
    while (Hi + 1 < NumSymbols && contains(static_cast<unsigned char>(Hi + 1)))
      ++Hi;
    appendEscaped(Out, static_cast<unsigned char>(C));
    if (Hi > C + 1) {
      Out.push_back('-');
      appendEscaped(Out, static_cast<unsigned char>(Hi));
    } else if (Hi == C + 1) {
      appendEscaped(Out, static_cast<unsigned char>(Hi));
    }
    C = Hi + 1;
  }
  Out.push_back(']');
  return Out;
}
