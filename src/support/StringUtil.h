//===- StringUtil.h - small string helpers ----------------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string helpers shared by the ANML back-end (XML escaping), the DOT
/// exporter, and the benchmark harnesses (number formatting).
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_SUPPORT_STRINGUTIL_H
#define MFSA_SUPPORT_STRINGUTIL_H

#include <string>
#include <vector>

namespace mfsa {

/// Escapes the five XML special characters (& < > " ') in \p Text.
std::string xmlEscape(const std::string &Text);

/// Inverse of xmlEscape for the ANML reader; unknown entities are kept
/// verbatim.
std::string xmlUnescape(const std::string &Text);

/// Splits \p Text on \p Separator; empty fields are preserved.
std::vector<std::string> splitString(const std::string &Text, char Separator);

/// Strips leading and trailing ASCII whitespace.
std::string trimString(const std::string &Text);

/// Formats \p Value with \p Decimals fractional digits (printf "%.*f").
std::string formatDouble(double Value, int Decimals);

/// \returns true if \p Text begins with \p Prefix.
bool startsWith(const std::string &Text, const std::string &Prefix);

/// Thread-safe strerror: renders \p Err (an errno value) into an owned
/// string via strerror_r, so concurrent callers never share the static
/// buffer std::strerror may return (clang-tidy concurrency-mt-unsafe).
std::string errnoString(int Err);

} // namespace mfsa

#endif // MFSA_SUPPORT_STRINGUTIL_H
