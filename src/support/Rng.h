//===- Rng.h - deterministic pseudo-random generator ------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines Rng, a small xoshiro256** generator. The synthetic ruleset and
/// stream generators (DESIGN.md §2) must be reproducible across runs and
/// platforms, so we avoid std::mt19937's distribution portability caveats and
/// keep everything seeded and self-contained.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_SUPPORT_RNG_H
#define MFSA_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace mfsa {

/// xoshiro256** with splitmix64 seeding; deterministic for a given seed.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x853c49e6748fea9bULL) {
    // splitmix64 expansion of the seed into the four-word state.
    uint64_t X = Seed;
    for (uint64_t &W : State) {
      X += 0x9e3779b97f4a7c15ULL;
      uint64_t Z = X;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
      W = Z ^ (Z >> 31);
    }
  }

  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// \returns a uniform integer in [0, Bound). Requires Bound > 0.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow(0)");
    // Rejection sampling to avoid modulo bias.
    uint64_t Threshold = -Bound % Bound;
    for (;;) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// \returns a uniform integer in the inclusive range [Lo, Hi].
  uint64_t nextInRange(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + nextBelow(Hi - Lo + 1);
  }

  /// \returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// \returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P) { return nextDouble() < P; }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace mfsa

#endif // MFSA_SUPPORT_RNG_H
