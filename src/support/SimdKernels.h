//===- SimdKernels.h - vector kernel table ----------------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares KernelTable, the set of data-parallel primitives the scan
/// engines and DynamicBitset dispatch through at runtime. Each entry
/// operates on unaligned arrays of 64-bit words (the bitset storage the
/// whole library shares); implementations exist at three levels:
///
///   - scalar  : portable word-at-a-time loops, always compiled, the
///               correctness reference every other level is tested against;
///   - sse42   : 128-bit lanes (SSE2 ops + SSE4.1 ptest + POPCNT), built
///               from SimdKernelsSse42.cpp with -msse4.2;
///   - avx2    : 256-bit lanes, built from SimdKernelsAvx2.cpp with -mavx2.
///
/// Level selection lives in SimdDispatch.h; nothing in this header depends
/// on target intrinsics, so it is safe to include anywhere.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_SUPPORT_SIMDKERNELS_H
#define MFSA_SUPPORT_SIMDKERNELS_H

#include <cstddef>
#include <cstdint>

namespace mfsa::simd {

/// One resolved set of kernel implementations. All word kernels tolerate
/// W == 0 and impose no alignment beyond uint64_t's natural alignment.
/// Operand arrays must not partially overlap (exact aliasing of Dst with
/// itself is the in-place update case and is fine).
struct KernelTable {
  const char *Name; ///< "scalar", "sse42", or "avx2".

  /// Dst[i] |= Src[i].
  void (*OrWords)(uint64_t *Dst, const uint64_t *Src, size_t W);
  /// Dst[i] &= Src[i].
  void (*AndWords)(uint64_t *Dst, const uint64_t *Src, size_t W);
  /// Dst[i] &= ~Src[i].
  void (*AndNotWords)(uint64_t *Dst, const uint64_t *Src, size_t W);
  /// \returns true iff any word is nonzero.
  bool (*AnyWords)(const uint64_t *Src, size_t W);
  /// \returns true iff A[i] & B[i] is nonzero for some i.
  bool (*IntersectsWords)(const uint64_t *A, const uint64_t *B, size_t W);
  /// \returns total population count across the W words.
  uint64_t (*CountWords)(const uint64_t *Src, size_t W);

  /// Fused activation-propagation kernel (Eq. 6's J ∩ bel):
  /// A[i] = Src[i] & Bel[i]; \returns true iff any result word is nonzero.
  bool (*AndInto)(uint64_t *A, const uint64_t *Src, const uint64_t *Bel,
                  size_t W);
  /// Fused activation-injection kernel (Eq. 4 with start-anchor masking):
  /// A[i] |= Src[i] & Bel[i] [& Mask[i] when Mask != nullptr];
  /// \returns true iff any word of A is nonzero afterwards.
  bool (*OrAndInto)(uint64_t *A, const uint64_t *Src, const uint64_t *Bel,
                    const uint64_t *Mask, size_t W);

  /// Byte-class search powering the literal-prefilter root skip: \returns
  /// the index of the first byte of Data[0, Len) contained in the set, or
  /// Len if none is. The set is given twice: as an explicit needle list
  /// (NumNeedles <= 8, what the compare-based vector paths use) and as a
  /// 256-bit membership bitmap (what the scalar path uses); both describe
  /// the same set.
  size_t (*FindByteInSet)(const uint8_t *Data, size_t Len,
                          const uint8_t *Needles, uint32_t NumNeedles,
                          const uint64_t Bitmap[4]);
};

/// The always-available portable reference table.
const KernelTable &scalarKernels();

/// The vector tables; null when the build did not compile the level in
/// (non-x86 target, compiler without the flag, or -DMFSA_SIMD capped it).
const KernelTable *sse42Kernels();
const KernelTable *avx2Kernels();

} // namespace mfsa::simd

#endif // MFSA_SUPPORT_SIMDKERNELS_H
