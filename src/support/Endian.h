//===- Endian.h - explicit little-endian accessors --------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-order-explicit load/store helpers for on-disk structures. The MFSA
/// artifact format (src/artifact/Format.h) fixes every multi-byte field to
/// little-endian; these helpers make that contract independent of the host:
/// they assemble values byte-by-byte through memcpy, so they are safe on any
/// alignment and compile to single moves on little-endian targets.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_SUPPORT_ENDIAN_H
#define MFSA_SUPPORT_ENDIAN_H

#include <cstdint>
#include <cstring>

namespace mfsa {

inline uint16_t loadLE16(const void *P) {
  const uint8_t *B = static_cast<const uint8_t *>(P);
  return static_cast<uint16_t>(B[0] | (uint16_t(B[1]) << 8));
}

inline uint32_t loadLE32(const void *P) {
  const uint8_t *B = static_cast<const uint8_t *>(P);
  return uint32_t(B[0]) | (uint32_t(B[1]) << 8) | (uint32_t(B[2]) << 16) |
         (uint32_t(B[3]) << 24);
}

inline uint64_t loadLE64(const void *P) {
  const uint8_t *B = static_cast<const uint8_t *>(P);
  return uint64_t(loadLE32(B)) | (uint64_t(loadLE32(B + 4)) << 32);
}

inline void storeLE16(void *P, uint16_t V) {
  uint8_t *B = static_cast<uint8_t *>(P);
  B[0] = static_cast<uint8_t>(V);
  B[1] = static_cast<uint8_t>(V >> 8);
}

inline void storeLE32(void *P, uint32_t V) {
  uint8_t *B = static_cast<uint8_t *>(P);
  B[0] = static_cast<uint8_t>(V);
  B[1] = static_cast<uint8_t>(V >> 8);
  B[2] = static_cast<uint8_t>(V >> 16);
  B[3] = static_cast<uint8_t>(V >> 24);
}

inline void storeLE64(void *P, uint64_t V) {
  uint8_t *B = static_cast<uint8_t *>(P);
  storeLE32(B, static_cast<uint32_t>(V));
  storeLE32(B + 4, static_cast<uint32_t>(V >> 32));
}

/// True when the executing host is little-endian — i.e. the artifact's
/// on-disk order matches memory order and flat arrays of fixed-width records
/// can be read through typed views without conversion.
inline bool hostIsLittleEndian() {
  const uint32_t Probe = 0x01020304;
  uint8_t First;
  std::memcpy(&First, &Probe, 1);
  return First == 0x04;
}

} // namespace mfsa

#endif // MFSA_SUPPORT_ENDIAN_H
