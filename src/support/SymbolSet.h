//===- SymbolSet.h - 256-symbol character class -----------------*- C++ -*-===//
//
// Part of the mfsa project, an implementation of the CGO 2024 paper
// "One Automaton to Rule Them All". MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines SymbolSet, a fixed 256-bit set over the byte alphabet used to
/// label automaton transitions. A singleton set models a plain character
/// transition; a larger set models a POSIX character class such as [a-f0-9].
/// Merging (paper §III-A) compares transition labels by exact set equality,
/// so SymbolSet provides cheap equality, hashing, and deterministic ordering.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_SUPPORT_SYMBOLSET_H
#define MFSA_SUPPORT_SYMBOLSET_H

#include <array>
#include <cstdint>
#include <cstddef>
#include <string>

namespace mfsa {

/// A set of byte symbols (0..255) stored as four 64-bit words.
///
/// SymbolSet is the transition-label type throughout the library. It is a
/// regular value type: cheap to copy, totally ordered, and hashable so it can
/// seed the merging algorithm's label index.
class SymbolSet {
public:
  static constexpr unsigned NumSymbols = 256;
  static constexpr unsigned NumWords = NumSymbols / 64;

  /// Creates the empty set.
  constexpr SymbolSet() : Words{0, 0, 0, 0} {}

  /// Creates a singleton set holding \p Symbol.
  static SymbolSet singleton(unsigned char Symbol) {
    SymbolSet S;
    S.insert(Symbol);
    return S;
  }

  /// Creates the set holding every symbol in the inclusive range
  /// [\p Lo, \p Hi]. Returns the empty set if Lo > Hi.
  static SymbolSet range(unsigned char Lo, unsigned char Hi) {
    SymbolSet S;
    for (unsigned C = Lo; C <= Hi; ++C)
      S.insert(static_cast<unsigned char>(C));
    return S;
  }

  /// Creates the full 256-symbol set (the `.` metacharacter, POSIX
  /// semantics aside, is modeled as all symbols except '\n' by the parser).
  static SymbolSet all() {
    SymbolSet S;
    S.Words = {~0ULL, ~0ULL, ~0ULL, ~0ULL};
    return S;
  }

  /// Reconstructs a set from its four raw words (artifact deserialization;
  /// inverse of words()).
  static SymbolSet fromWords(const std::array<uint64_t, NumWords> &W) {
    SymbolSet S;
    S.Words = W;
    return S;
  }

  /// Creates a set from every byte of \p Chars.
  static SymbolSet of(const std::string &Chars) {
    SymbolSet S;
    for (char C : Chars)
      S.insert(static_cast<unsigned char>(C));
    return S;
  }

  void insert(unsigned char Symbol) {
    Words[Symbol >> 6] |= 1ULL << (Symbol & 63);
  }

  void erase(unsigned char Symbol) {
    Words[Symbol >> 6] &= ~(1ULL << (Symbol & 63));
  }

  bool contains(unsigned char Symbol) const {
    return (Words[Symbol >> 6] >> (Symbol & 63)) & 1;
  }

  bool empty() const {
    return (Words[0] | Words[1] | Words[2] | Words[3]) == 0;
  }

  /// \returns the number of symbols in the set.
  unsigned count() const;

  /// \returns true if the set holds exactly one symbol.
  bool isSingleton() const { return count() == 1; }

  /// \returns the smallest symbol in the set; requires a non-empty set.
  unsigned char min() const;

  /// In-place union with \p Other.
  SymbolSet &operator|=(const SymbolSet &Other) {
    for (unsigned I = 0; I < NumWords; ++I)
      Words[I] |= Other.Words[I];
    return *this;
  }

  /// In-place intersection with \p Other.
  SymbolSet &operator&=(const SymbolSet &Other) {
    for (unsigned I = 0; I < NumWords; ++I)
      Words[I] &= Other.Words[I];
    return *this;
  }

  friend SymbolSet operator|(SymbolSet A, const SymbolSet &B) {
    return A |= B;
  }
  friend SymbolSet operator&(SymbolSet A, const SymbolSet &B) {
    return A &= B;
  }

  /// \returns this set widened so every ASCII letter also admits its
  /// other-case counterpart (case-insensitive matching support).
  SymbolSet caseFolded() const;

  /// \returns the complement set over the full 256-symbol alphabet.
  SymbolSet complement() const {
    SymbolSet S;
    for (unsigned I = 0; I < NumWords; ++I)
      S.Words[I] = ~Words[I];
    return S;
  }

  /// \returns true if this set and \p Other share at least one symbol.
  bool intersects(const SymbolSet &Other) const {
    for (unsigned I = 0; I < NumWords; ++I)
      if (Words[I] & Other.Words[I])
        return true;
    return false;
  }

  friend bool operator==(const SymbolSet &A, const SymbolSet &B) {
    return A.Words == B.Words;
  }
  friend bool operator!=(const SymbolSet &A, const SymbolSet &B) {
    return !(A == B);
  }
  /// Deterministic lexicographic order on the underlying words, used to keep
  /// merging and serialization output stable across runs.
  friend bool operator<(const SymbolSet &A, const SymbolSet &B) {
    return A.Words < B.Words;
  }

  /// Stable 64-bit hash suitable for unordered containers.
  uint64_t hash() const;

  /// Calls \p Fn for every symbol in the set, in increasing order.
  template <typename CallableT> void forEach(CallableT Fn) const {
    for (unsigned W = 0; W < NumWords; ++W) {
      uint64_t Bits = Words[W];
      while (Bits) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(Bits));
        Fn(static_cast<unsigned char>(W * 64 + Bit));
        Bits &= Bits - 1;
      }
    }
  }

  /// Renders the set as a human-readable label: a bare escaped character for
  /// singletons, or a bracketed class with ranges (e.g. `[a-f0-9]`).
  std::string toString() const;

  /// Raw word access for flat serialization (artifact label pool).
  const std::array<uint64_t, NumWords> &words() const { return Words; }

private:
  std::array<uint64_t, NumWords> Words;
};

/// Hash functor so SymbolSet can key std::unordered_map.
struct SymbolSetHash {
  size_t operator()(const SymbolSet &S) const {
    return static_cast<size_t>(S.hash());
  }
};

} // namespace mfsa

#endif // MFSA_SUPPORT_SYMBOLSET_H
