//===- FaultInject.h - deterministic test fault injection -------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MFSA_FAULT_STAGE test hook, shared by the compiler pipeline and the
/// artifact serializer/loader. Setting the environment variable
///
///   MFSA_FAULT_STAGE="<stage>:<index>"
///
/// with stage one of parse|build|opt|merge|serialize|load makes the matching
/// operation fail deterministically, as if its input were malformed, so
/// every isolation and fallback path is exercisable without crafting
/// pathological inputs:
///
///   - parse/build/opt/merge: <index> is the original rule index the
///     compiler pipeline fails at that stage (see compiler/Pipeline.h).
///   - serialize: <index> is the MFSA index whose artifact encoding fails
///     (serialize:0 fails any non-empty emission).
///   - load: artifact loading fails right after the image is mapped;
///     use load:0 (the index is reserved for future per-section targeting).
///
/// The variable is re-read on every operation so tests can toggle it
/// between calls without process restarts.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_SUPPORT_FAULTINJECT_H
#define MFSA_SUPPORT_FAULTINJECT_H

#include "support/Result.h"

#include <cstdint>

namespace mfsa {

/// Where an injected fault fires.
enum class FaultPoint : uint8_t {
  Parse,     ///< Pipeline stage 1 (front-end).
  Build,     ///< Pipeline stage 2 (Thompson construction).
  Opt,       ///< Pipeline stage 3 (single-FSA optimization).
  Merge,     ///< Pipeline stage 4 (Algorithm-1 merging).
  Serialize, ///< Artifact emission (artifact/Writer.h).
  Load,      ///< Artifact loading (artifact/Reader.h).
};

/// The spelling used in MFSA_FAULT_STAGE ("parse", ..., "serialize", "load").
const char *faultPointName(FaultPoint Point);

/// A parsed MFSA_FAULT_STAGE request. Inactive (Active == false) when the
/// variable is unset, empty, or malformed — a malformed spec never injects.
struct FaultSpec {
  bool Active = false;
  FaultPoint Point = FaultPoint::Parse;
  uint32_t Index = 0;

  /// True when this spec requests a fault at \p P for \p I.
  bool at(FaultPoint P, uint32_t I) const {
    return Active && Point == P && Index == I;
  }
};

/// Parses MFSA_FAULT_STAGE from the environment (re-read every call).
FaultSpec readFaultSpec();

/// The canonical diagnostic an injected fault reports.
Diag injectedFault();

} // namespace mfsa

#endif // MFSA_SUPPORT_FAULTINJECT_H
