//===- Result.h - lightweight error-or-value type ---------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines Diag (a positioned diagnostic) and Result<T>, a minimal
/// expected-like carrier used by the front-end and the ANML reader. The
/// library is exception-free; recoverable errors (malformed REs, malformed
/// ANML) travel back to callers as values.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_SUPPORT_RESULT_H
#define MFSA_SUPPORT_RESULT_H

#include <cassert>
#include <cstddef>
#include <string>
#include <utility>
#include <variant>

namespace mfsa {

/// A diagnostic with the byte offset in the offending input. Offset is
/// SIZE_MAX when no position applies.
struct Diag {
  std::string Message;
  size_t Offset = static_cast<size_t>(-1);

  Diag() = default;
  Diag(std::string Message, size_t Offset)
      : Message(std::move(Message)), Offset(Offset) {}

  /// Renders "offset N: message" (or just the message without a position).
  std::string render() const {
    if (Offset == static_cast<size_t>(-1))
      return Message;
    return "offset " + std::to_string(Offset) + ": " + Message;
  }
};

/// Either a T or a Diag. Callers must test ok() before dereferencing.
template <typename T> class Result {
public:
  Result(T Value) : Storage(std::in_place_index<0>, std::move(Value)) {}
  Result(Diag Error) : Storage(std::in_place_index<1>, std::move(Error)) {}

  /// Convenience factory mirroring createStringError.
  static Result error(std::string Message,
                      size_t Offset = static_cast<size_t>(-1)) {
    return Result(Diag(std::move(Message), Offset));
  }

  bool ok() const { return Storage.index() == 0; }
  explicit operator bool() const { return ok(); }

  T &operator*() {
    assert(ok() && "dereferencing an error Result");
    return std::get<0>(Storage);
  }
  const T &operator*() const {
    assert(ok() && "dereferencing an error Result");
    return std::get<0>(Storage);
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  /// Moves the value out; requires ok().
  T take() {
    assert(ok() && "taking from an error Result");
    return std::move(std::get<0>(Storage));
  }

  const Diag &diag() const {
    assert(!ok() && "no diagnostic on a success Result");
    return std::get<1>(Storage);
  }

  /// Moves the diagnostic out; requires !ok(). Lets callers forward an error
  /// into a Result of a different T without copying the message.
  Diag takeDiag() {
    assert(!ok() && "taking a diagnostic from a success Result");
    return std::move(std::get<1>(Storage));
  }

  /// Chains positional context onto the diagnostic in place, rendering as
  /// "prefix: message" (no-op on success). \returns *this so pipeline stages
  /// can write `return Re.withContext(...).takeDiag();`.
  Result &withContext(const std::string &Prefix) {
    if (!ok()) {
      Diag &D = std::get<1>(Storage);
      D.Message = Prefix + ": " + D.Message;
    }
    return *this;
  }

private:
  std::variant<T, Diag> Storage;
};

} // namespace mfsa

#endif // MFSA_SUPPORT_RESULT_H
