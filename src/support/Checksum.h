//===- Checksum.h - CRC32C integrity checksums ------------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares crc32c(), the integrity checksum guarding the MFSA artifact
/// format (src/artifact/). CRC32C (Castagnoli, reflected polynomial
/// 0x82F63B78) is the iSCSI/ext4/RocksDB checksum: strong enough to catch
/// every single-bit flip and short burst error a storage or transport layer
/// can introduce, and cheap enough to verify on every load. The
/// implementation is a portable slice-by-one table walk — artifact loads
/// checksum megabytes, not gigabytes, so the simple loop keeps the support
/// layer free of ISA-specific code (the SSE4.2 CRC32 instruction would go
/// through support/SimdDispatch.h if load bandwidth ever matters).
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_SUPPORT_CHECKSUM_H
#define MFSA_SUPPORT_CHECKSUM_H

#include <cstddef>
#include <cstdint>

namespace mfsa {

/// CRC32C of \p Bytes bytes at \p Data. \p Seed chains multi-buffer
/// checksums: pass the previous call's result to continue a running CRC
/// (0 starts a fresh one).
uint32_t crc32c(const void *Data, size_t Bytes, uint32_t Seed = 0);

} // namespace mfsa

#endif // MFSA_SUPPORT_CHECKSUM_H
