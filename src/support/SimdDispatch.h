//===- SimdDispatch.h - runtime SIMD level selection ------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime CPU dispatch for the vector kernels of SimdKernels.h. The active
/// level is resolved once, lazily, from (in priority order):
///
///   1. the MFSA_SIMD environment variable: auto | avx2 | sse42 | scalar;
///   2. what the build compiled in (the -DMFSA_SIMD CMake cache variable
///      caps which kernel translation units exist at all);
///   3. what the executing CPU actually supports (CPUID).
///
/// A level requested above what is compiled in or supported is clamped
/// downward with a one-time stderr warning, so a binary built with AVX2
/// kernels still runs — at full correctness — on an SSE-only machine.
/// Tests may override the level at runtime with setLevel() to execute the
/// same corpus under every implementation; ops() re-reads the active table
/// on every call site that caches it per scan, so a switch takes effect on
/// the next run.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_SUPPORT_SIMDDISPATCH_H
#define MFSA_SUPPORT_SIMDDISPATCH_H

#include "support/SimdKernels.h"

#include <vector>

namespace mfsa::simd {

/// Dispatch levels, ordered so that a higher value is a superset of the
/// hardware the lower ones need.
enum class Level : uint8_t { Scalar = 0, Sse42 = 1, Avx2 = 2 };

/// \returns the canonical lowercase name ("scalar", "sse42", "avx2").
const char *levelName(Level L);

/// Parses "scalar" / "sse42" / "avx2" (exact, lowercase). \returns false on
/// anything else, leaving \p Out untouched ("auto" is not a Level — it is
/// the absence of a pin).
bool parseLevel(const char *Text, Level &Out);

/// \returns true when \p L is both compiled into this binary and supported
/// by the executing CPU — i.e. setLevel(L) would succeed.
bool levelAvailable(Level L);

/// Every available level in ascending order; always contains Scalar. This
/// is what the differential tests iterate to correctness-gate each path.
std::vector<Level> availableLevels();

/// \returns the best available level (what "auto" resolves to).
Level bestLevel();

/// The level the next ops() call resolves to (forcing env resolution if it
/// has not happened yet).
Level activeLevel();

/// The active kernel table. Cache the reference at most per scan; a
/// concurrent setLevel() is visible to the next ops() call.
const KernelTable &ops();

/// Forces the active level. \returns false (and changes nothing) when the
/// level is not compiled in or the CPU lacks it.
bool setLevel(Level L);

/// Drops any forced level and re-resolves from MFSA_SIMD / auto.
void resetToEnv();

} // namespace mfsa::simd

#endif // MFSA_SUPPORT_SIMDDISPATCH_H
