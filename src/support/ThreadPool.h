//===- ThreadPool.h - fixed-size worker pool --------------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines ThreadPool, the worker pool behind the paper's multi-threaded
/// evaluation (§VI-C2): "each thread manages different automata
/// asynchronously, selecting an MFSA at a time from the remaining ones until
/// all are executed". Tasks are drained from a shared queue by T workers.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_SUPPORT_THREADPOOL_H
#define MFSA_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mfsa {

/// A fixed-size pool executing queued tasks; wait() blocks until the queue is
/// drained and all workers are idle. The pool is reusable across batches.
class ThreadPool {
public:
  /// Spawns \p NumThreads workers. NumThreads may exceed the hardware
  /// concurrency (the paper scales T to 128 on an 8-thread CPU).
  explicit ThreadPool(unsigned NumThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task for execution by any worker.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished.
  void wait();

  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::queue<std::function<void()>> Tasks;
  std::mutex Mutex;
  std::condition_variable TaskAvailable;
  std::condition_variable AllDone;
  unsigned ActiveTasks = 0;
  bool ShuttingDown = false;
};

} // namespace mfsa

#endif // MFSA_SUPPORT_THREADPOOL_H
