//===- ThreadPool.h - fixed-size worker pool --------------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines ThreadPool, the worker pool behind the paper's multi-threaded
/// evaluation (§VI-C2): "each thread manages different automata
/// asynchronously, selecting an MFSA at a time from the remaining ones until
/// all are executed". Tasks are drained from a shared queue by T workers.
///
/// Locking protocol (verified by the Sync.h capability annotations): every
/// queue/bookkeeping field is guarded by PoolMutex (rank 70); the mutex is
/// never held while a task body runs, so tasks may freely acquire
/// higher-rank locks (metrics, reply framing) or submit follow-up work.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_SUPPORT_THREADPOOL_H
#define MFSA_SUPPORT_THREADPOOL_H

#include "support/Sync.h"

#include <functional>
#include <queue>
#include <thread>
#include <vector>

namespace mfsa {

/// A fixed-size pool executing queued tasks; wait() blocks until the queue is
/// drained and all workers are idle. The pool is reusable across batches.
class ThreadPool {
public:
  /// Spawns \p NumThreads workers. NumThreads may exceed the hardware
  /// concurrency (the paper scales T to 128 on an 8-thread CPU).
  explicit ThreadPool(unsigned NumThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task for execution by any worker. Safe to call from task
  /// bodies: PoolMutex is never held while a task runs.
  void submit(std::function<void()> Task) MFSA_EXCLUDES(PoolMutex);

  /// Blocks until every submitted task has finished.
  void wait() MFSA_EXCLUDES(PoolMutex);

  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

private:
  void workerLoop() MFSA_EXCLUDES(PoolMutex);

  std::vector<std::thread> Workers;

  /// Rank 70 (see the Sync.h table): acquired by task bodies holding a
  /// Session::QueueMutex (30); never held while running a task.
  sync::Mutex PoolMutex MFSA_LOCK_RANK(70);
  std::queue<std::function<void()>> Tasks MFSA_GUARDED_BY(PoolMutex);
  sync::CondVar TaskAvailable;
  sync::CondVar AllDone;
  unsigned ActiveTasks MFSA_GUARDED_BY(PoolMutex) = 0;
  bool ShuttingDown MFSA_GUARDED_BY(PoolMutex) = false;
};

} // namespace mfsa

#endif // MFSA_SUPPORT_THREADPOOL_H
