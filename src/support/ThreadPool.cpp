//===- ThreadPool.cpp - fixed-size worker pool ----------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

using namespace mfsa;

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = 1;
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    sync::MutexLock Lock(PoolMutex);
    ShuttingDown = true;
  }
  TaskAvailable.notifyAll();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    sync::MutexLock Lock(PoolMutex);
    Tasks.push(std::move(Task));
  }
  TaskAvailable.notifyOne();
}

void ThreadPool::wait() {
  sync::MutexLock Lock(PoolMutex);
  // Explicit predicate loop (not a lambda) so the guarded reads of Tasks and
  // ActiveTasks stay visible to the thread-safety analysis.
  while (!Tasks.empty() || ActiveTasks != 0)
    AllDone.wait(Lock);
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      sync::MutexLock Lock(PoolMutex);
      while (!ShuttingDown && Tasks.empty())
        TaskAvailable.wait(Lock);
      if (ShuttingDown && Tasks.empty())
        return;
      Task = std::move(Tasks.front());
      Tasks.pop();
      ++ActiveTasks;
    }
    Task(); // PoolMutex released: the task may submit() or take any lock.
    {
      sync::MutexLock Lock(PoolMutex);
      --ActiveTasks;
      if (Tasks.empty() && ActiveTasks == 0)
        AllDone.notifyAll();
    }
  }
}
