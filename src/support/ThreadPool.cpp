//===- ThreadPool.cpp - fixed-size worker pool ----------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

using namespace mfsa;

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = 1;
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  TaskAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Tasks.push(std::move(Task));
  }
  TaskAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return Tasks.empty() && ActiveTasks == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      TaskAvailable.wait(Lock,
                         [this] { return ShuttingDown || !Tasks.empty(); });
      if (ShuttingDown && Tasks.empty())
        return;
      Task = std::move(Tasks.front());
      Tasks.pop();
      ++ActiveTasks;
    }
    Task();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --ActiveTasks;
      if (Tasks.empty() && ActiveTasks == 0)
        AllDone.notify_all();
    }
  }
}
