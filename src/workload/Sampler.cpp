//===- Sampler.cpp - random matching-string sampler ---------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "workload/Sampler.h"

#include <cassert>

using namespace mfsa;

/// Picks the K-th (0-based) member of \p Set.
static unsigned char pickSymbol(const SymbolSet &Set, Rng &Random) {
  unsigned Count = Set.count();
  assert(Count > 0 && "sampling from an empty symbol set");
  unsigned Target = static_cast<unsigned>(Random.nextBelow(Count));
  unsigned char Picked = 0;
  unsigned Index = 0;
  Set.forEach([&](unsigned char C) {
    if (Index++ == Target)
      Picked = C;
  });
  return Picked;
}

void mfsa::sampleInto(const AstNode &Node, Rng &Random, std::string &Out,
                      uint32_t MaxExtraRepeats) {
  switch (Node.kind()) {
  case AstKind::Empty:
    return;
  case AstKind::Symbols:
    Out.push_back(static_cast<char>(
        pickSymbol(static_cast<const SymbolsNode &>(Node).symbols(), Random)));
    return;
  case AstKind::Concat:
    for (const auto &Child : static_cast<const ConcatNode &>(Node).children())
      sampleInto(*Child, Random, Out, MaxExtraRepeats);
    return;
  case AstKind::Alternate: {
    const auto &Children =
        static_cast<const AlternateNode &>(Node).children();
    sampleInto(*Children[Random.nextBelow(Children.size())], Random, Out,
               MaxExtraRepeats);
    return;
  }
  case AstKind::Repeat: {
    const auto &R = static_cast<const RepeatNode &>(Node);
    uint64_t Hi = R.isUnbounded()
                      ? static_cast<uint64_t>(R.min()) + MaxExtraRepeats
                      : std::min<uint64_t>(
                            R.max(),
                            static_cast<uint64_t>(R.min()) + MaxExtraRepeats);
    uint64_t Count = Random.nextInRange(R.min(), Hi);
    for (uint64_t I = 0; I < Count; ++I)
      sampleInto(R.child(), Random, Out, MaxExtraRepeats);
    return;
  }
  }
}

std::string mfsa::sampleMatch(const Regex &Re, Rng &Random,
                              uint32_t MaxExtraRepeats) {
  std::string Out;
  sampleInto(*Re.Root, Random, Out, MaxExtraRepeats);
  return Out;
}
