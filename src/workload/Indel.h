//===- Indel.h - insertion-deletion similarity ------------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares the normalized INDEL similarity of the paper's Fig. 1: for two
/// strings s1, s2 the INDEL (insertion-deletion-only Levenshtein) distance
/// equals |s1| + |s2| - 2·LCS(s1, s2); the normalized similarity is
/// 1 - INDEL / (|s1| + |s2|). The paper's worked example (lewenstein vs
/// levenshtein -> 0.8572) is a unit test.
///
/// Two kernels are provided: a textbook O(nm) DP (the testing oracle) and a
/// Hyyrö-style bit-parallel LCS in O(nm/64) used for whole-dataset sweeps.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_WORKLOAD_INDEL_H
#define MFSA_WORKLOAD_INDEL_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mfsa {

/// O(nm) DP computing the insertion-deletion distance directly.
unsigned indelDistanceDp(std::string_view A, std::string_view B);

/// Bit-parallel LCS length (Hyyrö's column-wise recurrence).
unsigned lcsLengthBitParallel(std::string_view A, std::string_view B);

/// Normalized similarity 1 - INDEL/(|A|+|B|), in [0, 1]; defined as 1 when
/// both strings are empty. Uses the bit-parallel kernel.
double normalizedIndelSimilarity(std::string_view A, std::string_view B);

/// Averages normalizedIndelSimilarity over every unordered pair of
/// \p Strings (the Fig. 1 statistic). \p MaxPairs caps the work by sampling
/// pairs deterministically with \p Seed when the full count exceeds it;
/// 0 means exhaustive.
double averagePairSimilarity(const std::vector<std::string> &Strings,
                             uint64_t MaxPairs = 0, uint64_t Seed = 1);

} // namespace mfsa

#endif // MFSA_WORKLOAD_INDEL_H
