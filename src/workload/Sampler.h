//===- Sampler.h - random matching-string sampler ---------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares sampleMatch(), which draws a random string from a parsed RE's
/// language by walking the AST: alternations pick a uniform branch,
/// repetitions pick a count within bounds (capped for unbounded quantifiers),
/// symbol sets pick a uniform member. The stream generator plants these
/// samples so executed automata exhibit realistic active-set pressure
/// (Table II), and property tests use them as guaranteed-positive inputs.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_WORKLOAD_SAMPLER_H
#define MFSA_WORKLOAD_SAMPLER_H

#include "regex/Ast.h"
#include "support/Rng.h"

#include <string>

namespace mfsa {

/// Draws one string from L(Re). Unbounded repetitions draw a count in
/// [min, min + MaxExtraRepeats].
std::string sampleMatch(const Regex &Re, Rng &Random,
                        uint32_t MaxExtraRepeats = 4);

/// AST-node flavour used internally and by tests.
void sampleInto(const AstNode &Node, Rng &Random, std::string &Out,
                uint32_t MaxExtraRepeats);

} // namespace mfsa

#endif // MFSA_WORKLOAD_SAMPLER_H
