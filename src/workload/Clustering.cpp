//===- Clustering.cpp - similarity-driven rule grouping ------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "workload/Clustering.h"

#include "support/Rng.h"
#include "workload/Indel.h"

#include <algorithm>
#include <cassert>

using namespace mfsa;

std::vector<std::vector<uint32_t>>
mfsa::clusterBySimilarity(const std::vector<std::string> &Patterns,
                          uint32_t GroupSize) {
  const uint32_t N = static_cast<uint32_t>(Patterns.size());
  if (GroupSize == 0 || GroupSize >= N) {
    std::vector<uint32_t> All(N);
    for (uint32_t I = 0; I < N; ++I)
      All[I] = I;
    return {All};
  }

  std::vector<bool> Assigned(N, false);
  std::vector<std::vector<uint32_t>> Groups;
  uint32_t NextSeed = 0;

  while (true) {
    while (NextSeed < N && Assigned[NextSeed])
      ++NextSeed;
    if (NextSeed == N)
      break;

    uint32_t Seed = NextSeed;
    Assigned[Seed] = true;
    std::vector<uint32_t> Group = {Seed};

    // Rank the remaining rules by similarity to the seed; ties broken by
    // index for determinism.
    std::vector<std::pair<double, uint32_t>> Ranked;
    for (uint32_t I = 0; I < N; ++I)
      if (!Assigned[I])
        Ranked.emplace_back(
            normalizedIndelSimilarity(Patterns[Seed], Patterns[I]), I);
    std::sort(Ranked.begin(), Ranked.end(),
              [](const auto &A, const auto &B) {
                if (A.first != B.first)
                  return A.first > B.first;
                return A.second < B.second;
              });
    for (const auto &[Similarity, Index] : Ranked) {
      if (Group.size() >= GroupSize)
        break;
      Assigned[Index] = true;
      Group.push_back(Index);
    }
    Groups.push_back(std::move(Group));
  }
  return Groups;
}

std::vector<std::vector<uint32_t>>
mfsa::randomGrouping(size_t NumPatterns, uint32_t GroupSize, uint64_t Seed) {
  std::vector<uint32_t> Order(NumPatterns);
  for (size_t I = 0; I < NumPatterns; ++I)
    Order[I] = static_cast<uint32_t>(I);
  Rng Random(Seed);
  // Fisher-Yates shuffle.
  for (size_t I = NumPatterns; I > 1; --I)
    std::swap(Order[I - 1], Order[Random.nextBelow(I)]);

  if (GroupSize == 0 || GroupSize >= NumPatterns)
    return {Order};
  std::vector<std::vector<uint32_t>> Groups;
  for (size_t Begin = 0; Begin < NumPatterns; Begin += GroupSize) {
    size_t End = std::min(Begin + GroupSize, NumPatterns);
    Groups.emplace_back(Order.begin() + Begin, Order.begin() + End);
  }
  return Groups;
}
