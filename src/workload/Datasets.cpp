//===- Datasets.cpp - calibrated synthetic rulesets ---------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "workload/Datasets.h"

#include "regex/Parser.h"
#include "support/Rng.h"
#include "workload/Sampler.h"

#include <cassert>

using namespace mfsa;

//===----------------------------------------------------------------------===//
// Fragment generation
//===----------------------------------------------------------------------===//

namespace {

/// Generates the RE snippets rules are assembled from.
class FragmentFactory {
public:
  FragmentFactory(const DatasetSpec &Spec, Rng &Random)
      : Spec(Spec), Random(Random) {}

  /// One fragment of the spec's flavour mix.
  std::string make() {
    double Roll = Random.nextDouble();
    if (Roll < Spec.CcFragmentProb)
      return makeCharClass();
    Roll -= Spec.CcFragmentProb;
    if (Roll < Spec.AltGroupProb)
      return makeAltGroup();
    std::string Lit = makeLiteral();
    if (Random.nextBool(Spec.BoundedRepProb))
      return applyBoundedRep(Lit);
    return Lit;
  }

private:
  std::string makeLiteral() {
    uint32_t Len = static_cast<uint32_t>(
        Random.nextInRange(Spec.MinFragLen, Spec.MaxFragLen));
    std::string Out;
    Out.reserve(Len);
    for (uint32_t I = 0; I < Len; ++I)
      Out.push_back(
          Spec.LiteralAlphabet[Random.nextBelow(Spec.LiteralAlphabet.size())]);
    return Out;
  }

  std::string makeCharClass() {
    std::string Class = "[";
    if (Spec.RangeClassProb > 0 && Random.nextBool(Spec.RangeClassProb)) {
      // Contiguous "x-y" range (Ranges1 flavour). ERE ranges are ASCII
      // ranges, so the span must stay inside one ASCII-contiguous run of
      // the class alphabet (e.g. not cross from 'z' to '0').
      std::vector<std::pair<size_t, size_t>> Runs; // [begin, end) indices
      size_t Begin = 0;
      for (size_t I = 1; I <= Spec.CcAlphabet.size(); ++I) {
        if (I == Spec.CcAlphabet.size() ||
            Spec.CcAlphabet[I] != Spec.CcAlphabet[I - 1] + 1) {
          Runs.emplace_back(Begin, I);
          Begin = I;
        }
      }
      // Prefer runs long enough for a real range; a 1-char run degrades to
      // a singleton class.
      std::vector<size_t> Wide;
      for (size_t I = 0; I < Runs.size(); ++I)
        if (Runs[I].second - Runs[I].first >= 2)
          Wide.push_back(I);
      const auto &[RunBegin, RunEnd] =
          Wide.empty() ? Runs[Random.nextBelow(Runs.size())]
                       : Runs[Wide[Random.nextBelow(Wide.size())]];
      size_t RunLen = RunEnd - RunBegin;
      uint32_t Span = static_cast<uint32_t>(
          Random.nextInRange(Spec.CcPickMin, Spec.CcPickMax));
      Span = std::max<uint32_t>(std::min<uint32_t>(
                                    Span, static_cast<uint32_t>(RunLen)),
                                std::min<uint32_t>(
                                    2, static_cast<uint32_t>(RunLen)));
      size_t Start = RunBegin + Random.nextBelow(RunLen - Span + 1);
      Class.push_back(Spec.CcAlphabet[Start]);
      if (Span > 1) {
        Class.push_back('-');
        Class.push_back(Spec.CcAlphabet[Start + Span - 1]);
      }
    } else {
      // Distinct symbols drawn from the class alphabet, kept sorted so
      // equal classes print identically (helps CC merging, §III-A set Y).
      uint32_t Pick = static_cast<uint32_t>(
          Random.nextInRange(Spec.CcPickMin, Spec.CcPickMax));
      std::vector<bool> Used(Spec.CcAlphabet.size(), false);
      Pick = std::min<uint32_t>(
          Pick, static_cast<uint32_t>(Spec.CcAlphabet.size()));
      for (uint32_t I = 0; I < Pick; ++I) {
        size_t Idx;
        do {
          Idx = Random.nextBelow(Spec.CcAlphabet.size());
        } while (Used[Idx]);
        Used[Idx] = true;
      }
      for (size_t I = 0; I < Used.size(); ++I)
        if (Used[I])
          Class.push_back(Spec.CcAlphabet[I]);
    }
    Class.push_back(']');
    if (Random.nextBool(Spec.BoundedRepProb * 2))
      return applyBoundedRep(Class);
    return Class;
  }

  std::string makeAltGroup() {
    std::string A = makeLiteral();
    std::string B = makeLiteral();
    return "(" + A + "|" + B + ")";
  }

  /// Wraps a literal's last atom (or a whole class) in {m,n}.
  std::string applyBoundedRep(const std::string &Base) {
    uint64_t Lo = Random.nextInRange(1, 3);
    uint64_t Hi = Lo + Random.nextInRange(1, 3);
    std::string Bounds =
        "{" + std::to_string(Lo) + "," + std::to_string(Hi) + "}";
    if (Base.size() > 1 && Base.back() != ']') {
      // Quantify only the final character of a literal.
      return Base + Bounds;
    }
    return Base + Bounds;
  }

  const DatasetSpec &Spec;
  Rng &Random;
};

/// A rule under construction: its fragment sequence plus anchor flag.
struct RuleDraft {
  std::vector<std::string> Fragments;
  bool AnchorStart = false;
};

std::string renderRule(const RuleDraft &Draft, const DatasetSpec &Spec,
                       Rng &Random) {
  std::string Out;
  if (Draft.AnchorStart)
    Out.push_back('^');
  for (size_t I = 0; I < Draft.Fragments.size(); ++I) {
    Out += Draft.Fragments[I];
    if (I + 1 < Draft.Fragments.size() && Random.nextBool(Spec.DotStarProb))
      Out += ".*";
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Ruleset generation
//===----------------------------------------------------------------------===//

std::vector<std::string> mfsa::generateRuleset(const DatasetSpec &Spec) {
  Rng Random(Spec.Seed);
  FragmentFactory Factory(Spec, Random);

  // Dataset-wide shared pool: drives the M = all compression plateau.
  std::vector<std::string> Pool;
  Pool.reserve(Spec.PoolSize);
  for (uint32_t I = 0; I < Spec.PoolSize; ++I)
    Pool.push_back(Factory.make());
  auto PoolFragment = [&]() -> const std::string & {
    return Pool[Random.nextBelow(Pool.size())];
  };

  std::vector<std::string> Rules;
  Rules.reserve(Spec.NumRes);

  // Tweaks one character of a plain literal fragment; returns false when the
  // fragment contains RE syntax (classes, groups, quantifiers).
  auto TweakLiteral = [&](std::string &Fragment) {
    for (char C : Fragment)
      if (Spec.LiteralAlphabet.find(C) == std::string::npos)
        return false;
    size_t Pos = Random.nextBelow(Fragment.size());
    Fragment[Pos] =
        Spec.LiteralAlphabet[Random.nextBelow(Spec.LiteralAlphabet.size())];
    return true;
  };

  while (Rules.size() < Spec.NumRes) {
    // Start a family: a base fragment sequence mixing pool draws (dataset-
    // wide sharing) and fresh fragments (family-local sharing only).
    uint32_t FamilySize = static_cast<uint32_t>(
        Random.nextInRange(Spec.MinFamilySize, Spec.MaxFamilySize));
    uint32_t NumFragments = static_cast<uint32_t>(
        Random.nextInRange(Spec.MinFragments, Spec.MaxFragments));
    RuleDraft Base;
    Base.Fragments.reserve(NumFragments);
    for (uint32_t I = 0; I < NumFragments; ++I)
      Base.Fragments.push_back(Random.nextBool(Spec.FamilyFreshProb)
                                   ? Factory.make()
                                   : PoolFragment());
    Base.AnchorStart = Random.nextBool(Spec.AnchorStartProb);

    for (uint32_t Member = 0;
         Member < FamilySize && Rules.size() < Spec.NumRes; ++Member) {
      RuleDraft Draft = Base;
      if (Member > 0) {
        // Siblings diverge fragment-wise: character tweaks, substitutions,
        // one possible insertion or deletion.
        for (std::string &Fragment : Draft.Fragments) {
          if (!Random.nextBool(Spec.MutationRate))
            continue;
          if (Random.nextBool(Spec.TweakProb) && TweakLiteral(Fragment))
            continue;
          Fragment = Random.nextBool(0.5) ? PoolFragment() : Factory.make();
        }
        if (Random.nextBool(Spec.MutationRate))
          Draft.Fragments.push_back(PoolFragment());
        else if (Draft.Fragments.size() > 2 &&
                 Random.nextBool(Spec.MutationRate * 0.5))
          Draft.Fragments.pop_back();
      }
      Rules.push_back(renderRule(Draft, Spec, Random));
    }
  }
  return Rules;
}

//===----------------------------------------------------------------------===//
// Stream generation
//===----------------------------------------------------------------------===//

std::string mfsa::generateStream(const DatasetSpec &Spec,
                                 const std::vector<std::string> &Patterns,
                                 size_t Size, uint64_t SeedSalt) {
  Rng Random(Spec.Seed * 0x9e3779b97f4a7c15ULL + SeedSalt + 17);

  // Parse once; malformed patterns cannot occur for generated rulesets but
  // user-supplied ones are simply skipped for planting.
  std::vector<Regex> Parsed;
  Parsed.reserve(Patterns.size());
  for (const std::string &P : Patterns) {
    Result<Regex> Re = parseRegex(P);
    if (Re)
      Parsed.push_back(Re.take());
  }

  static const std::string Noise =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
      "0123456789 .,;:!?/-_()[]{}<>@#$%&*+='\"\n";

  std::string Stream;
  Stream.reserve(Size + 256);
  while (Stream.size() < Size) {
    if (!Parsed.empty() && Random.nextBool(Spec.PlantDensity)) {
      const Regex &Re = Parsed[Random.nextBelow(Parsed.size())];
      Stream += sampleMatch(Re, Random);
    } else {
      uint64_t Run = Random.nextInRange(8, 64);
      for (uint64_t I = 0; I < Run; ++I)
        Stream.push_back(Noise[Random.nextBelow(Noise.size())]);
    }
  }
  Stream.resize(Size);
  return Stream;
}

//===----------------------------------------------------------------------===//
// Standard dataset registry
//===----------------------------------------------------------------------===//

static std::vector<DatasetSpec> makeStandardDatasets() {
  std::vector<DatasetSpec> Specs;

  {
    // Bro217: short literal-dominated HTTP signatures; strong family
    // similarity, some anchored rules.
    DatasetSpec S;
    S.Name = "Bro217";
    S.Abbrev = "BRO";
    S.NumRes = 217;
    S.Seed = 0xB307;
    S.PoolSize = 60;
    S.MinFragments = 2;
    S.MaxFragments = 4;
    S.MinFragLen = 3;
    S.MaxFragLen = 6;
    S.CcFragmentProb = 0.06;
    S.DotStarProb = 0.05;
    S.AltGroupProb = 0.08;
    S.BoundedRepProb = 0.05;
    S.AnchorStartProb = 0.25;
    S.CcPickMin = 2;
    S.CcPickMax = 4;
    Specs.push_back(S);
  }
  {
    // Dotstar09: long patterns glued with unbounded `.*` gaps.
    DatasetSpec S;
    S.Name = "Dotstar09";
    S.Abbrev = "DS9";
    S.NumRes = 299;
    S.Seed = 0xD509;
    S.PoolSize = 150;
    S.MinFragments = 4;
    S.MaxFragments = 7;
    S.MinFragLen = 5;
    S.MaxFragLen = 9;
    S.CcFragmentProb = 0.08;
    S.DotStarProb = 0.45;
    S.AltGroupProb = 0.08;
    S.BoundedRepProb = 0.06;
    S.CcPickMin = 2;
    S.CcPickMax = 5;
    Specs.push_back(S);
  }
  {
    // PowerEN: mid-size literal patterns, very few and tiny classes.
    DatasetSpec S;
    S.Name = "PowerEN";
    S.Abbrev = "PEN";
    S.NumRes = 300;
    S.Seed = 0x9E10;
    S.PoolSize = 90;
    S.MinFragments = 2;
    S.MaxFragments = 4;
    S.MinFragLen = 4;
    S.MaxFragLen = 7;
    S.CcFragmentProb = 0.03;
    S.DotStarProb = 0.08;
    S.AltGroupProb = 0.10;
    S.BoundedRepProb = 0.06;
    S.CcPickMin = 2;
    S.CcPickMax = 3;
    Specs.push_back(S);
  }
  {
    // Protomata: short protein motifs dominated by wide amino-acid classes.
    DatasetSpec S;
    S.Name = "Protomata";
    S.Abbrev = "PRO";
    S.NumRes = 300;
    S.Seed = 0x9807;
    S.PoolSize = 70;
    S.MinFragments = 3;
    S.MaxFragments = 5;
    S.MinFragLen = 1;
    S.MaxFragLen = 3;
    S.CcFragmentProb = 0.50;
    S.DotStarProb = 0.04;
    S.AltGroupProb = 0.05;
    S.BoundedRepProb = 0.12;
    S.CcAlphabet = "ACDEFGHIKLMNPQRSTVWY";
    S.CcPickMin = 6;
    S.CcPickMax = 16;
    S.LiteralAlphabet = "ACDEFGHIKLMNPQRSTVWY";
    Specs.push_back(S);
  }
  {
    // Ranges1: long patterns with frequent contiguous-range classes.
    DatasetSpec S;
    S.Name = "Ranges1";
    S.Abbrev = "RG1";
    S.NumRes = 299;
    S.Seed = 0x4A61;
    S.PoolSize = 160;
    S.MinFragments = 4;
    S.MaxFragments = 7;
    S.MinFragLen = 5;
    S.MaxFragLen = 9;
    S.CcFragmentProb = 0.25;
    S.RangeClassProb = 0.8;
    S.DotStarProb = 0.06;
    S.AltGroupProb = 0.06;
    S.BoundedRepProb = 0.08;
    S.CcAlphabet = "abcdefghijklmnopqrstuvwxyz0123456789";
    S.CcPickMin = 3;
    S.CcPickMax = 9;
    Specs.push_back(S);
  }
  {
    // TCP-ExactMatch: mid-long literal signatures, light class usage.
    DatasetSpec S;
    S.Name = "TCP-ExactMatch";
    S.Abbrev = "TCP";
    S.NumRes = 300;
    S.Seed = 0x7C9;
    S.PoolSize = 120;
    S.MinFragments = 3;
    S.MaxFragments = 6;
    S.MinFragLen = 4;
    S.MaxFragLen = 7;
    S.CcFragmentProb = 0.08;
    S.DotStarProb = 0.05;
    S.AltGroupProb = 0.12;
    S.BoundedRepProb = 0.06;
    S.AnchorStartProb = 0.10;
    S.CcPickMin = 2;
    S.CcPickMax = 5;
    Specs.push_back(S);
  }
  return Specs;
}

const std::vector<DatasetSpec> &mfsa::standardDatasets() {
  static const std::vector<DatasetSpec> Specs = makeStandardDatasets();
  return Specs;
}

const DatasetSpec *mfsa::findDataset(const std::string &Abbrev) {
  for (const DatasetSpec &Spec : standardDatasets())
    if (Spec.Abbrev == Abbrev)
      return &Spec;
  return nullptr;
}
