//===- Clustering.h - similarity-driven rule grouping -----------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the paper's proposed future work (§VIII): "a systematic
/// similarity RE analysis for possible clustering techniques". Instead of
/// merging rules in dataset order, rules are grouped by normalized INDEL
/// similarity of their pattern strings (the Fig. 1 metric) so each group
/// maximizes shareable morphology. Feed the result to mergeWithGrouping().
///
/// The algorithm is greedy seed-and-grow: take the lowest-index unassigned
/// rule as a seed, then repeatedly pull in the unassigned rule most similar
/// to the seed until the group reaches the merging factor. Deterministic and
/// O(N²) similarity computations with the bit-parallel LCS kernel.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_WORKLOAD_CLUSTERING_H
#define MFSA_WORKLOAD_CLUSTERING_H

#include <cstdint>
#include <string>
#include <vector>

namespace mfsa {

/// Groups rule indices by pattern similarity into clusters of size
/// \p GroupSize (0 = one cluster with everything). The result is a
/// partition of [0, N) suitable for mergeWithGrouping().
std::vector<std::vector<uint32_t>>
clusterBySimilarity(const std::vector<std::string> &Patterns,
                    uint32_t GroupSize);

/// Random grouping with a deterministic seed — the control arm of the
/// clustering ablation (sequential and clustered both exploit locality;
/// random destroys it).
std::vector<std::vector<uint32_t>>
randomGrouping(size_t NumPatterns, uint32_t GroupSize, uint64_t Seed);

} // namespace mfsa

#endif // MFSA_WORKLOAD_CLUSTERING_H
