//===- Datasets.h - calibrated synthetic rulesets ---------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares the synthetic stand-ins for the paper's six benchmark rulesets
/// (Table I: Bro217, Dotstar09, PowerEN, Protomata, Ranges1,
/// TCP-ExactMatch). The original files are not redistributable here, so each
/// dataset is replaced by a seeded generator calibrated to its observable
/// characteristics — rule count, FSA size, character-class pressure — and to
/// the intra-dataset morphology that drives the paper's results: rules come
/// in sequential *families* (variants of a base pattern, like Snort
/// signature variants) mutated fragment-wise, over a dataset-wide shared
/// fragment pool. Family siblings give merging at small M something to
/// share; the bounded pool gives M = all its compression plateau (Fig. 7).
///
/// Streams are generated with planted rule matches over noise so execution
/// exhibits realistic active-set pressure (Table II).
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_WORKLOAD_DATASETS_H
#define MFSA_WORKLOAD_DATASETS_H

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace mfsa {

/// Generation parameters for one synthetic dataset.
struct DatasetSpec {
  std::string Name;   ///< Full name, e.g. "Bro217".
  std::string Abbrev; ///< Paper abbreviation, e.g. "BRO".
  uint32_t NumRes = 0;
  uint64_t Seed = 1;

  // Family structure.
  uint32_t MinFamilySize = 3; ///< Consecutive sibling rules per family.
  uint32_t MaxFamilySize = 8;
  double MutationRate = 0.35; ///< Per-fragment chance a sibling diverges.

  /// Probability a family-base fragment is freshly generated (shared within
  /// the family, unique across the dataset) instead of pool-drawn. This is
  /// the main lever bounding the M = all compression plateau.
  double FamilyFreshProb = 0.5;

  /// Probability a sibling mutation is a single-character tweak of a literal
  /// fragment — near-identical strings that nevertheless cannot merge,
  /// mirroring real signature variants.
  double TweakProb = 0.4;

  // Fragment shape.
  uint32_t PoolSize = 100; ///< Dataset-wide shared fragment pool.
  uint32_t MinFragments = 3, MaxFragments = 5; ///< Fragments per rule.
  uint32_t MinFragLen = 3, MaxFragLen = 6;     ///< Literal fragment length.

  // Operator flavour probabilities (per fragment unless noted).
  double CcFragmentProb = 0.1;  ///< Fragment is a character class.
  double RangeClassProb = 0.0;  ///< CC rendered as contiguous ranges.
  double DotStarProb = 0.05;    ///< `.*` connector after a fragment.
  double AltGroupProb = 0.1;    ///< Fragment is a (x|y) group.
  double BoundedRepProb = 0.08; ///< Fragment gets a {m,n} quantifier.
  double AnchorStartProb = 0.0; ///< Per rule: leading '^'.

  // Character-class composition.
  std::string CcAlphabet = "abcdefghijklmnopqrstuvwxyz0123456789";
  uint32_t CcPickMin = 2, CcPickMax = 5; ///< Symbols per class.

  std::string LiteralAlphabet =
      "abcdefghijklmnopqrstuvwxyz0123456789_:/=";

  // Stream planting.
  double PlantDensity = 0.25; ///< Fraction of stream bytes from rule samples.
};

/// The six paper datasets, calibrated per Table I (see DESIGN.md §2).
const std::vector<DatasetSpec> &standardDatasets();

/// Finds a standard dataset by abbreviation ("BRO"); nullptr if unknown.
const DatasetSpec *findDataset(const std::string &Abbrev);

/// Deterministically generates the dataset's RE patterns.
std::vector<std::string> generateRuleset(const DatasetSpec &Spec);

/// Deterministically generates a \p Size-byte input stream with matches of
/// \p Patterns planted at the spec's density. \p SeedSalt varies the stream
/// for repeated-trial studies.
std::string generateStream(const DatasetSpec &Spec,
                           const std::vector<std::string> &Patterns,
                           size_t Size, uint64_t SeedSalt = 0);

} // namespace mfsa

#endif // MFSA_WORKLOAD_DATASETS_H
