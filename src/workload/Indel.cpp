//===- Indel.cpp - insertion-deletion similarity ------------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "workload/Indel.h"

#include "support/Rng.h"

#include <algorithm>

using namespace mfsa;

unsigned mfsa::indelDistanceDp(std::string_view A, std::string_view B) {
  // Two-row DP; deletion/insertion cost 1, substitution not allowed (the
  // diagonal move is only taken on equal characters).
  const size_t N = A.size(), M = B.size();
  std::vector<unsigned> Prev(M + 1), Cur(M + 1);
  for (size_t J = 0; J <= M; ++J)
    Prev[J] = static_cast<unsigned>(J);
  for (size_t I = 1; I <= N; ++I) {
    Cur[0] = static_cast<unsigned>(I);
    for (size_t J = 1; J <= M; ++J) {
      unsigned Best = std::min(Prev[J], Cur[J - 1]) + 1;
      if (A[I - 1] == B[J - 1])
        Best = std::min(Best, Prev[J - 1]);
      Cur[J] = Best;
    }
    std::swap(Prev, Cur);
  }
  return Prev[M];
}

unsigned mfsa::lcsLengthBitParallel(std::string_view A, std::string_view B) {
  if (A.empty() || B.empty())
    return 0;
  const size_t NumWords = (A.size() + 63) / 64;

  // Per-symbol position masks over A.
  std::vector<uint64_t> Masks(256 * NumWords, 0);
  for (size_t I = 0; I < A.size(); ++I)
    Masks[static_cast<unsigned char>(A[I]) * NumWords + I / 64] |=
        1ULL << (I % 64);

  // Hyyrö recurrence: V starts all-ones; per B symbol,
  //   U = V & M;  V = (V + U) | (V - U)
  // LCS = number of zero bits of V inside A's window. U ⊆ V word-wise, so
  // the subtraction never borrows across words; the addition carries.
  std::vector<uint64_t> V(NumWords, ~0ULL), Sum(NumWords), Diff(NumWords);
  for (char BC : B) {
    const uint64_t *M = &Masks[static_cast<unsigned char>(BC) * NumWords];
    unsigned Carry = 0;
    for (size_t W = 0; W < NumWords; ++W) {
      uint64_t U = V[W] & M[W];
      uint64_t S = V[W] + U;
      unsigned CarryOut = (S < V[W]) ? 1 : 0;
      uint64_t S2 = S + Carry;
      CarryOut |= (S2 < S) ? 1 : 0;
      Sum[W] = S2;
      Carry = CarryOut;
      Diff[W] = V[W] - U;
    }
    for (size_t W = 0; W < NumWords; ++W)
      V[W] = Sum[W] | Diff[W];
  }

  unsigned Zeros = 0;
  for (size_t W = 0; W < NumWords; ++W) {
    uint64_t Window = ~V[W];
    if (W == NumWords - 1 && A.size() % 64 != 0)
      Window &= (1ULL << (A.size() % 64)) - 1;
    Zeros += static_cast<unsigned>(__builtin_popcountll(Window));
  }
  return Zeros;
}

double mfsa::normalizedIndelSimilarity(std::string_view A,
                                       std::string_view B) {
  const size_t Total = A.size() + B.size();
  if (Total == 0)
    return 1.0;
  unsigned Lcs = lcsLengthBitParallel(A, B);
  double Indel = static_cast<double>(Total) - 2.0 * Lcs;
  return 1.0 - Indel / static_cast<double>(Total);
}

double mfsa::averagePairSimilarity(const std::vector<std::string> &Strings,
                                   uint64_t MaxPairs, uint64_t Seed) {
  const uint64_t N = Strings.size();
  if (N < 2)
    return 1.0;
  const uint64_t AllPairs = N * (N - 1) / 2;

  double Sum = 0;
  uint64_t Count = 0;
  if (MaxPairs == 0 || AllPairs <= MaxPairs) {
    for (uint64_t I = 0; I < N; ++I)
      for (uint64_t J = I + 1; J < N; ++J) {
        Sum += normalizedIndelSimilarity(Strings[I], Strings[J]);
        ++Count;
      }
  } else {
    Rng Random(Seed);
    for (uint64_t P = 0; P < MaxPairs; ++P) {
      uint64_t I = Random.nextBelow(N);
      uint64_t J = Random.nextBelow(N - 1);
      if (J >= I)
        ++J;
      Sum += normalizedIndelSimilarity(Strings[I], Strings[J]);
      ++Count;
    }
  }
  return Sum / static_cast<double>(Count);
}
