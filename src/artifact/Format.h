//===- Format.h - compiled-MFSA artifact binary layout ----------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk layout of the compiled-MFSA artifact: one flat, versioned,
/// checksummed, page-aligned image holding every table the engines need, so
/// a compiled ruleset loads with a single mmap and zero pointer fixups (all
/// references are indices and file offsets; nothing in the image is a
/// memory address). docs/artifact-format.md is the normative spec; this
/// header is its executable form.
///
/// Image shape (every multi-byte field little-endian, support/Endian.h):
///
///   [0, 128)            ArtifactHeader
///   [128, 128 + 40*S)   section table, S = ArtifactHeader::NumSections
///   ...                 section payloads, each 64-byte aligned
///   [..., FileBytes)    zero padding to a kPageBytes multiple
///
/// Integrity is layered so corruption is caught in a cheap pass before any
/// payload is interpreted:
///
///   - HeaderChecksum: CRC32C of the header with the field itself zeroed.
///   - FileChecksum: CRC32C of [HeaderBytes, FileBytes) — section table,
///     payloads, and padding. Any bit flip anywhere in the image fails one
///     of these two.
///   - SectionEntry::Checksum: per-payload CRC32C, so a diagnostic can name
///     the damaged section.
///
/// Checksums prove the bytes are the ones written; they do not prove the
/// writer was sane. The loader therefore re-validates structure — every
/// offset, length, count, and state/label/bel index is bounds-checked
/// before use, and the materialized MFSA passes the PR 2 structural
/// verifier — before any engine sees the data.
///
/// Versioning policy: SchemaVersion is bumped on any layout change; loaders
/// reject images whose version they do not implement (no silent best-effort
/// parsing of future images). Adding a new section *kind* is also a version
/// bump: unknown kinds are rejected, because "ignore what you don't know"
/// and "reject what might matter" cannot be distinguished after the fact.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_ARTIFACT_FORMAT_H
#define MFSA_ARTIFACT_FORMAT_H

#include <cstddef>
#include <cstdint>

namespace mfsa::artifact {

/// First eight bytes of every artifact: "MFSART1\0".
inline constexpr uint8_t kMagic[8] = {'M', 'F', 'S', 'A', 'R', 'T', '1', 0};

/// Current schema version. History: 1 = initial layout.
inline constexpr uint32_t kSchemaVersion = 1;

/// Value of ArtifactHeader::EndianTag as written. A loader reading it
/// byte-swapped would see 0x04030201 and reject the image.
inline constexpr uint32_t kEndianTag = 0x01020304;

/// Serialized header size; section table starts here.
inline constexpr uint32_t kHeaderBytes = 128;

/// Serialized SectionEntry size.
inline constexpr uint32_t kSectionEntryBytes = 40;

/// Section payload alignment (cache-line) inside the image.
inline constexpr uint32_t kSectionAlign = 64;

/// The image is padded to a multiple of this (classic 4 KiB page), so
/// read-only mappings share cleanly across processes.
inline constexpr uint32_t kPageBytes = 4096;

/// MfsaIndex value marking a section as ruleset-global.
inline constexpr uint32_t kGlobalSection = 0xFFFFFFFFu;

/// RulesetFlags bits (compile provenance the loader needs to recompile or
/// spot-check against the embedded patterns).
inline constexpr uint32_t kFlagCaseInsensitive = 1u << 0;
inline constexpr uint32_t kFlagSplitCcByAtoms = 1u << 1;
inline constexpr uint32_t kKnownRulesetFlags =
    kFlagCaseInsensitive | kFlagSplitCcByAtoms;

/// Section kinds. Per-MFSA kinds appear exactly once per MFSA index;
/// global kinds at most once per image.
enum class SectionKind : uint32_t {
  MfsaMeta = 1,       ///< Global: MfsaMetaRecord[NumMfsas].
  Transitions = 2,    ///< Per MFSA: TransitionRecord[NumTransitions].
  LabelPool = 3,      ///< Per MFSA: uint64[4] per unique SymbolSet label.
  BelPool = 4,        ///< Per MFSA: uint64[BelWords] per unique belonging set.
  Rules = 5,          ///< Per MFSA: RuleRecord[NumRules].
  Finals = 6,         ///< Per MFSA: uint32 state ids, all rules concatenated.
  PatternOffsets = 7, ///< Global: uint64[NumPatterns + 1] into PatternBlob.
  PatternBlob = 8,    ///< Global: concatenated UTF-8 rule text.
};

/// Human-readable section-kind name for diagnostics ("transitions", ...).
inline const char *sectionKindName(uint32_t Kind) {
  switch (static_cast<SectionKind>(Kind)) {
  case SectionKind::MfsaMeta:
    return "mfsa-meta";
  case SectionKind::Transitions:
    return "transitions";
  case SectionKind::LabelPool:
    return "label-pool";
  case SectionKind::BelPool:
    return "bel-pool";
  case SectionKind::Rules:
    return "rules";
  case SectionKind::Finals:
    return "finals";
  case SectionKind::PatternOffsets:
    return "pattern-offsets";
  case SectionKind::PatternBlob:
    return "pattern-blob";
  }
  return "unknown";
}

/// Decoded artifact header. In-memory mirror of the 128 serialized bytes;
/// field offsets in the image are fixed by the writer/reader, not by this
/// struct's ABI.
struct ArtifactHeader {
  uint32_t SchemaVersion = kSchemaVersion;
  uint32_t SimdLevel = 0; ///< simd::Level active at write time (provenance).
  uint64_t FileBytes = 0; ///< Total image size, padding included.
  uint32_t NumMfsas = 0;
  uint32_t NumSections = 0;
  uint64_t SectionTableOffset = kHeaderBytes;
  uint32_t RulesetFlags = 0;   ///< kFlag* bits.
  uint32_t MergingFactor = 0;  ///< The compile's M (0 = all).
  uint32_t FileChecksum = 0;   ///< CRC32C of [kHeaderBytes, FileBytes).
  uint32_t HeaderChecksum = 0; ///< CRC32C of header bytes, field zeroed.
};

/// Decoded section-table entry.
struct SectionEntry {
  uint32_t Kind = 0;
  uint32_t MfsaIndex = kGlobalSection;
  uint64_t Offset = 0; ///< From file start; kSectionAlign-aligned.
  uint64_t Bytes = 0;  ///< Payload length (excludes inter-section padding).
  uint64_t Count = 0;  ///< Element count (record sections) or byte count (blobs).
  uint32_t Checksum = 0; ///< CRC32C of the payload.
};

/// Per-MFSA summary record (SectionKind::MfsaMeta payload element,
/// 32 bytes). The counts duplicate the per-MFSA sections' Count fields on
/// purpose: redundancy the loader cross-checks.
struct MfsaMetaRecord {
  uint32_t NumStates = 0;
  uint32_t NumRules = 0;
  uint32_t NumTransitions = 0;
  uint32_t BelWords = 0; ///< == ceil(NumRules / 64).
  uint32_t NumLabels = 0;
  uint32_t NumBels = 0;
  uint32_t NumFinals = 0; ///< Total final-state entries over all rules.
  uint32_t Reserved = 0;
};
inline constexpr uint32_t kMfsaMetaRecordBytes = 32;

/// One MFSA transition (SectionKind::Transitions payload element,
/// 16 bytes): endpoints plus indices into the label and belonging pools.
struct TransitionRecord {
  uint32_t From = 0;
  uint32_t To = 0;
  uint32_t LabelIdx = 0;
  uint32_t BelIdx = 0;
};
inline constexpr uint32_t kTransitionRecordBytes = 16;

/// One rule's metadata (SectionKind::Rules payload element, 24 bytes).
struct RuleRecord {
  uint32_t Initial = 0;
  uint32_t GlobalId = 0; ///< Rule index in the original dataset.
  uint32_t Flags = 0;    ///< Bit 0 anchored start, bit 1 anchored end.
  uint32_t FinalsBegin = 0; ///< Into the MFSA's Finals section.
  uint32_t FinalsCount = 0;
  uint32_t Reserved = 0;
};
inline constexpr uint32_t kRuleRecordBytes = 24;
inline constexpr uint32_t kRuleFlagAnchoredStart = 1u << 0;
inline constexpr uint32_t kRuleFlagAnchoredEnd = 1u << 1;
inline constexpr uint32_t kKnownRuleFlags =
    kRuleFlagAnchoredStart | kRuleFlagAnchoredEnd;

/// Bytes per SectionKind::LabelPool element (one 256-bit SymbolSet).
inline constexpr uint32_t kLabelRecordBytes = 32;

/// Rounds \p N up to a multiple of \p Align (a power of two).
inline uint64_t alignUp(uint64_t N, uint64_t Align) {
  return (N + Align - 1) & ~(Align - 1);
}

} // namespace mfsa::artifact

#endif // MFSA_ARTIFACT_FORMAT_H
