//===- Writer.h - crash-safe MFSA artifact serialization --------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes compiled MFSAs into the flat artifact image (Format.h) and
/// writes it crash-safely: the image is staged in a temp file in the target
/// directory, fsync'ed, and atomically rename(2)'d over the destination,
/// then the directory is fsync'ed — so a writer killed at any instant
/// leaves either the previous artifact or the new one, never a partial
/// image reachable at the destination path. (A partial image that somehow
/// *is* reached — e.g. a temp file adopted by hand — still cannot load: the
/// loader's checksums reject it.)
///
/// Emission is fault-injectable via MFSA_FAULT_STAGE="serialize:<mfsa>"
/// (support/FaultInject.h), so tests can drive every failure path.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_ARTIFACT_WRITER_H
#define MFSA_ARTIFACT_WRITER_H

#include "mfsa/Mfsa.h"
#include "support/Result.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mfsa::artifact {

/// Emission knobs plus the compile provenance recorded in the header.
struct ArtifactWriteOptions {
  /// Embed the source rule text (pattern sections). Costs bytes, buys
  /// self-describing artifacts: provenance for diagnostics and the input
  /// the loader's opt-in translation-validation spot check recompiles.
  bool IncludePatterns = true;

  /// Provenance echoed into the header so a loader can reproduce the
  /// compile: case folding, atom splitting, and the merging factor M.
  bool CaseInsensitive = false;
  bool SplitCcByAtoms = false;
  uint32_t MergingFactor = 0;
};

/// Serializes \p Mfsas (plus \p Patterns when embedding is on) into one
/// artifact image, returned as raw bytes. \p Patterns is the *original*
/// ruleset text, indexed by the rules' GlobalIds; pass {} to skip
/// embedding. Fails only on injected faults or capacity overflows — the
/// inputs are trusted compiler output.
Result<std::string> serializeArtifact(const std::vector<Mfsa> &Mfsas,
                                      const std::vector<std::string> &Patterns,
                                      const ArtifactWriteOptions &Options = {});

/// serializeArtifact + crash-safe persistence to \p Path (see file
/// comment). \returns the image size in bytes. On failure the destination
/// is untouched and the temp file is removed.
Result<uint64_t> writeArtifactFile(const std::string &Path,
                                   const std::vector<Mfsa> &Mfsas,
                                   const std::vector<std::string> &Patterns,
                                   const ArtifactWriteOptions &Options = {});

} // namespace mfsa::artifact

#endif // MFSA_ARTIFACT_WRITER_H
