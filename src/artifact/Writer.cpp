//===- Writer.cpp - crash-safe MFSA artifact serialization -------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Layout strategy: every section payload is first encoded into its own byte
// buffer (explicit little-endian stores, no struct dumping — the image must
// be identical regardless of host ABI), then the section table is laid out
// with 64-byte-aligned offsets, checksums are computed over the final
// image, and the header is written last. The belonging and label pools are
// deduplicated per MFSA in first-appearance order, which is deterministic
// for a given input, so serialization is byte-stable — equal compiles
// produce equal artifacts, which content-hash ruleset caches rely on.
//
//===----------------------------------------------------------------------===//

#include "artifact/Writer.h"

#include "artifact/Format.h"
#include "support/Checksum.h"
#include "support/Endian.h"
#include "support/FaultInject.h"
#include "support/SimdDispatch.h"
#include "support/StringUtil.h"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <map>
#include <unistd.h>

using namespace mfsa;
using namespace mfsa::artifact;

namespace {

void appendLE32(std::string &Out, uint32_t V) {
  char Buf[4];
  storeLE32(Buf, V);
  Out.append(Buf, 4);
}

void appendLE64(std::string &Out, uint64_t V) {
  char Buf[8];
  storeLE64(Buf, V);
  Out.append(Buf, 8);
}

/// One section staged for layout: the entry metadata minus the offset and
/// checksum, which are assigned once every payload size is known.
struct StagedSection {
  uint32_t Kind = 0;
  uint32_t MfsaIndex = kGlobalSection;
  uint64_t Count = 0;
  std::string Payload;
};

/// Encodes one MFSA into its five per-MFSA sections plus the meta record
/// appended to \p MetaPayload.
Result<bool> encodeMfsa(const Mfsa &Z, uint32_t Index, const FaultSpec &Fault,
                        std::string &MetaPayload,
                        std::vector<StagedSection> &Sections) {
  if (Fault.at(FaultPoint::Serialize, Index)) {
    Diag D = injectedFault();
    D.Message += " while encoding MFSA " + std::to_string(Index);
    return D;
  }

  const uint32_t NumRules = Z.numRules();
  const uint32_t BelWords = (NumRules + 63) / 64;

  StagedSection Transitions{static_cast<uint32_t>(SectionKind::Transitions),
                            Index, Z.numTransitions(), {}};
  StagedSection Labels{static_cast<uint32_t>(SectionKind::LabelPool), Index,
                       0, {}};
  StagedSection Bels{static_cast<uint32_t>(SectionKind::BelPool), Index, 0,
                     {}};
  StagedSection Rules{static_cast<uint32_t>(SectionKind::Rules), Index,
                      NumRules, {}};
  StagedSection Finals{static_cast<uint32_t>(SectionKind::Finals), Index, 0,
                       {}};

  // Deduplicate labels and belonging sets in first-appearance order. The
  // ordered map on raw words keeps lookup simple; ids follow insertion.
  std::map<std::array<uint64_t, SymbolSet::NumWords>, uint32_t> LabelIds;
  std::map<std::vector<uint64_t>, uint32_t> BelIds;

  for (const MfsaTransition &T : Z.transitions()) {
    const std::array<uint64_t, SymbolSet::NumWords> &LW = T.Label.words();
    auto [LabelIt, LabelNew] =
        LabelIds.emplace(LW, static_cast<uint32_t>(LabelIds.size()));
    if (LabelNew)
      for (uint64_t W : LW)
        appendLE64(Labels.Payload, W);

    std::vector<uint64_t> BW = T.Bel.words();
    BW.resize(BelWords, 0);
    auto [BelIt, BelNew] =
        BelIds.emplace(std::move(BW), static_cast<uint32_t>(BelIds.size()));
    if (BelNew)
      for (uint64_t W : BelIt->first)
        appendLE64(Bels.Payload, W);

    appendLE32(Transitions.Payload, T.From);
    appendLE32(Transitions.Payload, T.To);
    appendLE32(Transitions.Payload, LabelIt->second);
    appendLE32(Transitions.Payload, BelIt->second);
  }
  Labels.Count = LabelIds.size();
  Bels.Count = BelIds.size();

  uint64_t FinalsCursor = 0;
  for (RuleId R = 0; R < NumRules; ++R) {
    const Mfsa::RuleInfo &Info = Z.rule(R);
    if (FinalsCursor + Info.Finals.size() > UINT32_MAX)
      return Result<bool>::error("MFSA " + std::to_string(Index) +
                                 ": finals table exceeds format capacity");
    uint32_t Flags = 0;
    if (Info.AnchoredStart)
      Flags |= kRuleFlagAnchoredStart;
    if (Info.AnchoredEnd)
      Flags |= kRuleFlagAnchoredEnd;
    appendLE32(Rules.Payload, Info.Initial);
    appendLE32(Rules.Payload, Info.GlobalId);
    appendLE32(Rules.Payload, Flags);
    appendLE32(Rules.Payload, static_cast<uint32_t>(FinalsCursor));
    appendLE32(Rules.Payload, static_cast<uint32_t>(Info.Finals.size()));
    appendLE32(Rules.Payload, 0);
    for (StateId F : Info.Finals)
      appendLE32(Finals.Payload, F);
    FinalsCursor += Info.Finals.size();
  }
  Finals.Count = FinalsCursor;

  // Meta record, cross-checked against the section counts on load.
  appendLE32(MetaPayload, Z.numStates());
  appendLE32(MetaPayload, NumRules);
  appendLE32(MetaPayload, Z.numTransitions());
  appendLE32(MetaPayload, BelWords);
  appendLE32(MetaPayload, static_cast<uint32_t>(Labels.Count));
  appendLE32(MetaPayload, static_cast<uint32_t>(Bels.Count));
  appendLE32(MetaPayload, static_cast<uint32_t>(Finals.Count));
  appendLE32(MetaPayload, 0);

  Sections.push_back(std::move(Transitions));
  Sections.push_back(std::move(Labels));
  Sections.push_back(std::move(Bels));
  Sections.push_back(std::move(Rules));
  Sections.push_back(std::move(Finals));
  return true;
}

} // namespace

Result<std::string>
mfsa::artifact::serializeArtifact(const std::vector<Mfsa> &Mfsas,
                                  const std::vector<std::string> &Patterns,
                                  const ArtifactWriteOptions &Options) {
  const FaultSpec Fault = readFaultSpec();
  if (Mfsas.size() > UINT32_MAX)
    return Result<std::string>::error("too many MFSAs for artifact format");

  std::vector<StagedSection> Sections;
  StagedSection Meta{static_cast<uint32_t>(SectionKind::MfsaMeta),
                     kGlobalSection, Mfsas.size(), {}};
  for (size_t I = 0; I < Mfsas.size(); ++I) {
    Result<bool> Encoded = encodeMfsa(Mfsas[I], static_cast<uint32_t>(I),
                                      Fault, Meta.Payload, Sections);
    if (!Encoded.ok())
      return Encoded.takeDiag();
  }
  Sections.insert(Sections.begin(), std::move(Meta));

  if (Options.IncludePatterns && !Patterns.empty()) {
    StagedSection Offsets{static_cast<uint32_t>(SectionKind::PatternOffsets),
                          kGlobalSection, Patterns.size() + 1, {}};
    StagedSection Blob{static_cast<uint32_t>(SectionKind::PatternBlob),
                       kGlobalSection, 0, {}};
    uint64_t Cursor = 0;
    appendLE64(Offsets.Payload, 0);
    for (const std::string &P : Patterns) {
      Blob.Payload += P;
      Cursor += P.size();
      appendLE64(Offsets.Payload, Cursor);
    }
    Blob.Count = Blob.Payload.size();
    Sections.push_back(std::move(Offsets));
    Sections.push_back(std::move(Blob));
  }

  // Lay out: header, section table, aligned payloads, page padding.
  const uint32_t NumSections = static_cast<uint32_t>(Sections.size());
  uint64_t Cursor =
      kHeaderBytes + uint64_t(NumSections) * kSectionEntryBytes;
  std::vector<uint64_t> Offsets(NumSections);
  for (uint32_t I = 0; I < NumSections; ++I) {
    Offsets[I] = alignUp(Cursor, kSectionAlign);
    Cursor = Offsets[I] + Sections[I].Payload.size();
  }
  const uint64_t FileBytes = alignUp(Cursor, kPageBytes);

  std::string Image(FileBytes, '\0');
  char *Base = Image.data();

  for (uint32_t I = 0; I < NumSections; ++I)
    std::memcpy(Base + Offsets[I], Sections[I].Payload.data(),
                Sections[I].Payload.size());

  // Section table.
  for (uint32_t I = 0; I < NumSections; ++I) {
    char *E = Base + kHeaderBytes + uint64_t(I) * kSectionEntryBytes;
    storeLE32(E + 0, Sections[I].Kind);
    storeLE32(E + 4, Sections[I].MfsaIndex);
    storeLE64(E + 8, Offsets[I]);
    storeLE64(E + 16, Sections[I].Payload.size());
    storeLE64(E + 24, Sections[I].Count);
    storeLE32(E + 32, crc32c(Sections[I].Payload.data(),
                             Sections[I].Payload.size()));
    storeLE32(E + 36, 0);
  }

  // Header (offsets mirrored in the reader and docs/artifact-format.md).
  std::memcpy(Base, kMagic, sizeof(kMagic));
  storeLE32(Base + 8, kSchemaVersion);
  storeLE32(Base + 12, kEndianTag);
  storeLE32(Base + 16, kHeaderBytes);
  storeLE32(Base + 20, static_cast<uint32_t>(simd::activeLevel()));
  storeLE64(Base + 24, FileBytes);
  storeLE32(Base + 32, static_cast<uint32_t>(Mfsas.size()));
  storeLE32(Base + 36, NumSections);
  storeLE64(Base + 40, kHeaderBytes);
  uint32_t Flags = 0;
  if (Options.CaseInsensitive)
    Flags |= kFlagCaseInsensitive;
  if (Options.SplitCcByAtoms)
    Flags |= kFlagSplitCcByAtoms;
  storeLE32(Base + 48, Flags);
  storeLE32(Base + 52, Options.MergingFactor);
  storeLE32(Base + 56, crc32c(Base + kHeaderBytes, FileBytes - kHeaderBytes));
  storeLE32(Base + 60, 0); // Header checksum computed over this zero.
  storeLE32(Base + 60, crc32c(Base, kHeaderBytes));

  return Image;
}

namespace {

/// Writes all of \p Data to \p Fd, retrying on EINTR and partial writes.
bool writeAll(int Fd, const char *Data, size_t Bytes) {
  while (Bytes > 0) {
    ssize_t N = ::write(Fd, Data, Bytes);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Bytes -= static_cast<size_t>(N);
  }
  return true;
}

std::string errnoText() { return errnoString(errno); }

} // namespace

Result<uint64_t>
mfsa::artifact::writeArtifactFile(const std::string &Path,
                                  const std::vector<Mfsa> &Mfsas,
                                  const std::vector<std::string> &Patterns,
                                  const ArtifactWriteOptions &Options) {
  Result<std::string> Image = serializeArtifact(Mfsas, Patterns, Options);
  if (!Image.ok())
    return Image.takeDiag();

  // Stage in the destination directory so rename(2) stays same-filesystem
  // and therefore atomic.
  const std::string Tmp =
      Path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (Fd < 0)
    return Result<uint64_t>::error("cannot create " + Tmp + ": " +
                                   errnoText());
  auto FailAndClean = [&](const std::string &What) {
    const int Saved = errno;
    ::close(Fd);
    ::unlink(Tmp.c_str());
    errno = Saved;
    return Result<uint64_t>::error(What + " " + Tmp + ": " + errnoText());
  };
  if (!writeAll(Fd, Image->data(), Image->size()))
    return FailAndClean("cannot write");
  if (::fsync(Fd) != 0)
    return FailAndClean("cannot fsync");
  if (::close(Fd) != 0) {
    ::unlink(Tmp.c_str());
    return Result<uint64_t>::error("cannot close " + Tmp + ": " +
                                   errnoText());
  }
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    const int Saved = errno;
    ::unlink(Tmp.c_str());
    errno = Saved;
    return Result<uint64_t>::error("cannot rename " + Tmp + " to " + Path +
                                   ": " + errnoText());
  }

  // Persist the rename itself. Failure here is reported (the data may not
  // survive a power cut) but the destination is already consistent.
  const size_t Slash = Path.find_last_of('/');
  const std::string Dir = Slash == std::string::npos
                              ? std::string(".")
                              : Path.substr(0, Slash == 0 ? 1 : Slash);
  int DirFd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (DirFd >= 0) {
    ::fsync(DirFd);
    ::close(DirFd);
  }
  return static_cast<uint64_t>(Image->size());
}
