//===- Reader.cpp - corruption-hardened MFSA artifact loading ----------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
//
// Defensive-loading discipline: the image is mapped read-only and every
// decode below first proves its extent lies inside the mapping (and inside
// its section) before touching a byte, using overflow-safe comparisons of
// the form `A <= Size && B <= Size - A` — never `A + B <= Size`. Indices
// read from the image (state ids, label/bel/final indices, counts) are
// treated as hostile until bounds-checked against the cross-validated meta
// records. Only after the whole ladder passes does any engine-visible
// structure get built.
//
//===----------------------------------------------------------------------===//

#include "artifact/Reader.h"

#include "analysis/TranslationValidate.h"
#include "analysis/Verifier.h"
#include "fsa/Builder.h"
#include "fsa/Passes.h"
#include "obs/Metrics.h"
#include "regex/Parser.h"
#include "support/Checksum.h"
#include "support/Endian.h"
#include "support/FaultInject.h"
#include "support/StringUtil.h"
#include "support/Timer.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <map>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace mfsa;
using namespace mfsa::artifact;

//===----------------------------------------------------------------------===//
// MappedFile
//===----------------------------------------------------------------------===//

Result<MappedFile> MappedFile::map(const std::string &Path) {
  int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0)
    return Result<MappedFile>::error("cannot open " + Path + ": " +
                                     errnoString(errno));
  struct stat St;
  if (::fstat(Fd, &St) != 0) {
    const std::string E = errnoString(errno);
    ::close(Fd);
    return Result<MappedFile>::error("cannot stat " + Path + ": " + E);
  }
  if (!S_ISREG(St.st_mode)) {
    ::close(Fd);
    return Result<MappedFile>::error(Path + " is not a regular file");
  }
  if (St.st_size == 0) {
    ::close(Fd);
    return Result<MappedFile>::error(Path + " is empty");
  }
  void *Mem = ::mmap(nullptr, static_cast<size_t>(St.st_size), PROT_READ,
                     MAP_PRIVATE, Fd, 0);
  ::close(Fd);
  if (Mem == MAP_FAILED)
    return Result<MappedFile>::error("cannot mmap " + Path + ": " +
                                     errnoString(errno));
  MappedFile File;
  File.Data = static_cast<const uint8_t *>(Mem);
  File.Bytes = static_cast<size_t>(St.st_size);
  return File;
}

MappedFile::MappedFile(MappedFile &&Other) noexcept
    : Data(Other.Data), Bytes(Other.Bytes) {
  Other.Data = nullptr;
  Other.Bytes = 0;
}

MappedFile &MappedFile::operator=(MappedFile &&Other) noexcept {
  if (this != &Other) {
    if (Data)
      ::munmap(const_cast<uint8_t *>(Data), Bytes);
    Data = Other.Data;
    Bytes = Other.Bytes;
    Other.Data = nullptr;
    Other.Bytes = 0;
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (Data)
    ::munmap(const_cast<uint8_t *>(Data), Bytes);
}

//===----------------------------------------------------------------------===//
// MfsaView
//===----------------------------------------------------------------------===//

TransitionRecord MfsaView::transition(uint64_t I) const {
  const uint8_t *P = Transitions + I * kTransitionRecordBytes;
  return {loadLE32(P), loadLE32(P + 4), loadLE32(P + 8), loadLE32(P + 12)};
}

SymbolSet MfsaView::label(uint32_t I) const {
  const uint8_t *P = Labels + uint64_t(I) * kLabelRecordBytes;
  std::array<uint64_t, SymbolSet::NumWords> W;
  for (unsigned J = 0; J < SymbolSet::NumWords; ++J)
    W[J] = loadLE64(P + 8 * J);
  return SymbolSet::fromWords(W);
}

uint64_t MfsaView::belWord(uint32_t I, uint32_t W) const {
  return loadLE64(Bels + (uint64_t(I) * Meta.BelWords + W) * 8);
}

RuleRecord MfsaView::rule(uint32_t I) const {
  const uint8_t *P = Rules + uint64_t(I) * kRuleRecordBytes;
  return {loadLE32(P),      loadLE32(P + 4),  loadLE32(P + 8),
          loadLE32(P + 12), loadLE32(P + 16), loadLE32(P + 20)};
}

uint32_t MfsaView::finalAt(uint64_t I) const {
  return loadLE32(Finals + I * 4);
}

Mfsa MfsaView::materialize() const {
  Mfsa Z(Meta.NumRules);
  for (uint32_t S = 0; S < Meta.NumStates; ++S)
    Z.addState();
  for (uint64_t I = 0; I < Meta.NumTransitions; ++I) {
    const TransitionRecord T = transition(I);
    DynamicBitset Bel(Meta.NumRules);
    for (uint32_t W = 0; W < Meta.BelWords; ++W)
      Bel.words()[W] = belWord(T.BelIdx, W);
    Z.addTransition(T.From, T.To, label(T.LabelIdx), std::move(Bel));
  }
  for (uint32_t R = 0; R < Meta.NumRules; ++R) {
    const RuleRecord RR = rule(R);
    Mfsa::RuleInfo &Info = Z.rule(R);
    Info.Initial = RR.Initial;
    Info.GlobalId = RR.GlobalId;
    Info.AnchoredStart = (RR.Flags & kRuleFlagAnchoredStart) != 0;
    Info.AnchoredEnd = (RR.Flags & kRuleFlagAnchoredEnd) != 0;
    Info.Finals.reserve(RR.FinalsCount);
    for (uint32_t K = 0; K < RR.FinalsCount; ++K)
      Info.Finals.push_back(finalAt(uint64_t(RR.FinalsBegin) + K));
  }
  return Z;
}

std::vector<Mfsa> LoadedArtifact::materializeAll() const {
  std::vector<Mfsa> Out;
  Out.reserve(Views.size());
  for (const MfsaView &V : Views)
    Out.push_back(V.materialize());
  return Out;
}

//===----------------------------------------------------------------------===//
// Validation ladder
//===----------------------------------------------------------------------===//

namespace {

/// Per-kind fixed record size in bytes; 0 marks byte-granular blobs.
uint32_t recordBytes(SectionKind Kind) {
  switch (Kind) {
  case SectionKind::MfsaMeta:
    return kMfsaMetaRecordBytes;
  case SectionKind::Transitions:
    return kTransitionRecordBytes;
  case SectionKind::LabelPool:
    return kLabelRecordBytes;
  case SectionKind::BelPool:
    return 0; // Record size is BelWords * 8, checked per MFSA.
  case SectionKind::Rules:
    return kRuleRecordBytes;
  case SectionKind::Finals:
    return 4;
  case SectionKind::PatternOffsets:
    return 8;
  case SectionKind::PatternBlob:
    return 0; // Count is the byte count.
  }
  return 0;
}

bool isGlobalKind(SectionKind Kind) {
  return Kind == SectionKind::MfsaMeta ||
         Kind == SectionKind::PatternOffsets ||
         Kind == SectionKind::PatternBlob;
}

/// Validates the whole image and fills \p Header, \p Views, \p Patterns.
/// \p Path only labels diagnostics. Returns the first violation found;
/// checks are ordered cheap-to-expensive so truncation and bit flips are
/// rejected before any structural work.
Result<bool> validateImage(const std::string &Path, const uint8_t *D,
                           size_t Size, const LoadOptions &Options,
                           ArtifactHeader &Header,
                           std::vector<MfsaView> &Views,
                           std::vector<std::string> &Patterns) {
  auto Err = [&](const std::string &Msg,
                 size_t Offset = static_cast<size_t>(-1)) {
    return Result<bool>(Diag("artifact " + Path + ": " + Msg, Offset));
  };

  // -- Header ------------------------------------------------------------
  if (Size < kHeaderBytes)
    return Err("truncated: " + std::to_string(Size) +
               " bytes, header needs " + std::to_string(kHeaderBytes));
  if (std::memcmp(D, kMagic, sizeof(kMagic)) != 0)
    return Err("bad magic (not an MFSA artifact)", 0);
  Header.SchemaVersion = loadLE32(D + 8);
  const uint32_t Endian = loadLE32(D + 12);
  if (Endian != kEndianTag)
    return Err("endianness tag mismatch (image written on an incompatible "
               "host)",
               12);
  if (Header.SchemaVersion != kSchemaVersion)
    return Err("unsupported schema version " +
                   std::to_string(Header.SchemaVersion) +
                   " (this loader implements version " +
                   std::to_string(kSchemaVersion) + ")",
               8);
  if (loadLE32(D + 16) != kHeaderBytes)
    return Err("header size field corrupt", 16);
  Header.SimdLevel = loadLE32(D + 20);
  Header.FileBytes = loadLE64(D + 24);
  Header.NumMfsas = loadLE32(D + 32);
  Header.NumSections = loadLE32(D + 36);
  Header.SectionTableOffset = loadLE64(D + 40);
  Header.RulesetFlags = loadLE32(D + 48);
  Header.MergingFactor = loadLE32(D + 52);
  Header.FileChecksum = loadLE32(D + 56);
  Header.HeaderChecksum = loadLE32(D + 60);

  {
    uint8_t Copy[kHeaderBytes];
    std::memcpy(Copy, D, kHeaderBytes);
    storeLE32(Copy + 60, 0);
    if (crc32c(Copy, kHeaderBytes) != Header.HeaderChecksum)
      return Err("header checksum mismatch", 60);
  }
  for (size_t I = 64; I < kHeaderBytes; ++I)
    if (D[I] != 0)
      return Err("reserved header bytes not zero", I);
  if (Header.FileBytes != Size)
    return Err("size mismatch: header declares " +
                   std::to_string(Header.FileBytes) + " bytes, file has " +
                   std::to_string(Size),
               24);
  if (Header.SectionTableOffset != kHeaderBytes)
    return Err("section table offset corrupt", 40);
  if (Header.RulesetFlags & ~kKnownRulesetFlags)
    return Err("unknown ruleset flags", 48);
  if (crc32c(D + kHeaderBytes, Size - kHeaderBytes) != Header.FileChecksum)
    return Err("file checksum mismatch (image corrupted)", 56);

  // -- Section table -----------------------------------------------------
  if (Header.NumSections == 0)
    return Err("no sections", 36);
  if (Header.NumSections > 65536 || Header.NumMfsas > 65535)
    return Err("implausible section/MFSA count", 32);
  const uint64_t TableEnd =
      kHeaderBytes + uint64_t(Header.NumSections) * kSectionEntryBytes;
  if (TableEnd > Size)
    return Err("section table exceeds file", 36);

  std::vector<SectionEntry> Secs(Header.NumSections);
  for (uint32_t I = 0; I < Header.NumSections; ++I) {
    const uint8_t *E = D + kHeaderBytes + uint64_t(I) * kSectionEntryBytes;
    const size_t At = static_cast<size_t>(E - D);
    SectionEntry &S = Secs[I];
    S.Kind = loadLE32(E + 0);
    S.MfsaIndex = loadLE32(E + 4);
    S.Offset = loadLE64(E + 8);
    S.Bytes = loadLE64(E + 16);
    S.Count = loadLE64(E + 24);
    S.Checksum = loadLE32(E + 32);
    const SectionKind Kind = static_cast<SectionKind>(S.Kind);
    if (S.Kind < 1 || S.Kind > 8)
      return Err("unknown section kind " + std::to_string(S.Kind), At);
    if (loadLE32(E + 36) != 0)
      return Err("section entry reserved field not zero", At + 36);
    if (S.Offset % kSectionAlign != 0)
      return Err(std::string(sectionKindName(S.Kind)) +
                     " section misaligned",
                 At + 8);
    if (S.Offset < TableEnd || S.Offset > Size || S.Bytes > Size - S.Offset)
      return Err(std::string(sectionKindName(S.Kind)) +
                     " section extent outside file",
                 At + 8);
    const uint32_t Rec = recordBytes(Kind);
    if (Rec != 0) {
      if (S.Count > S.Bytes / Rec || S.Bytes != S.Count * Rec)
        return Err(std::string(sectionKindName(S.Kind)) +
                       " section size/count mismatch",
                   At + 16);
    } else if (Kind == SectionKind::PatternBlob) {
      if (S.Bytes != S.Count)
        return Err("pattern-blob size/count mismatch", At + 16);
    } else if (S.Bytes % 8 != 0) { // BelPool: word-granular at minimum.
      return Err("bel-pool section not word-aligned", At + 16);
    }
    if (isGlobalKind(Kind)) {
      if (S.MfsaIndex != kGlobalSection)
        return Err(std::string(sectionKindName(S.Kind)) +
                       " section must be global",
                   At + 4);
    } else if (S.MfsaIndex >= Header.NumMfsas) {
      return Err(std::string(sectionKindName(S.Kind)) +
                     " section references MFSA " +
                     std::to_string(S.MfsaIndex) + " of " +
                     std::to_string(Header.NumMfsas),
                 At + 4);
    }
    if (crc32c(D + S.Offset, S.Bytes) != S.Checksum)
      return Err(std::string(sectionKindName(S.Kind)) +
                     " section checksum mismatch",
                 static_cast<size_t>(S.Offset));
  }

  // No overlapping extents (zero-length sections may coincide).
  {
    std::vector<const SectionEntry *> ByOffset;
    ByOffset.reserve(Secs.size());
    for (const SectionEntry &S : Secs)
      ByOffset.push_back(&S);
    std::sort(ByOffset.begin(), ByOffset.end(),
              [](const SectionEntry *A, const SectionEntry *B) {
                return A->Offset < B->Offset;
              });
    for (size_t I = 1; I < ByOffset.size(); ++I)
      if (ByOffset[I - 1]->Offset + ByOffset[I - 1]->Bytes >
          ByOffset[I]->Offset)
        return Err("overlapping sections",
                   static_cast<size_t>(ByOffset[I]->Offset));
  }

  // Index sections by (kind, mfsa); duplicates are structural corruption.
  std::map<std::pair<uint32_t, uint32_t>, const SectionEntry *> Slot;
  for (const SectionEntry &S : Secs)
    if (!Slot.emplace(std::make_pair(S.Kind, S.MfsaIndex), &S).second)
      return Err("duplicate " + std::string(sectionKindName(S.Kind)) +
                 " section");
  auto Find = [&](SectionKind Kind, uint32_t Mfsa) -> const SectionEntry * {
    auto It = Slot.find({static_cast<uint32_t>(Kind), Mfsa});
    return It == Slot.end() ? nullptr : It->second;
  };

  const SectionEntry *MetaSec =
      Find(SectionKind::MfsaMeta, kGlobalSection);
  if (!MetaSec)
    return Err("missing mfsa-meta section");
  if (MetaSec->Count != Header.NumMfsas)
    return Err("mfsa-meta count disagrees with header",
               static_cast<size_t>(MetaSec->Offset));

  // -- Embedded patterns -------------------------------------------------
  const SectionEntry *PatOff =
      Find(SectionKind::PatternOffsets, kGlobalSection);
  const SectionEntry *PatBlob =
      Find(SectionKind::PatternBlob, kGlobalSection);
  if ((PatOff == nullptr) != (PatBlob == nullptr))
    return Err("pattern sections must appear together");
  if (PatOff) {
    if (PatOff->Count < 1)
      return Err("pattern-offsets section empty",
                 static_cast<size_t>(PatOff->Offset));
    const uint64_t NumPatterns = PatOff->Count - 1;
    uint64_t Prev = loadLE64(D + PatOff->Offset);
    if (Prev != 0)
      return Err("pattern offsets must start at zero",
                 static_cast<size_t>(PatOff->Offset));
    Patterns.reserve(NumPatterns);
    for (uint64_t P = 1; P <= NumPatterns; ++P) {
      const uint64_t Next = loadLE64(D + PatOff->Offset + P * 8);
      if (Next < Prev || Next > PatBlob->Bytes)
        return Err("pattern offsets not monotonic or out of range",
                   static_cast<size_t>(PatOff->Offset + P * 8));
      Patterns.emplace_back(
          reinterpret_cast<const char *>(D + PatBlob->Offset + Prev),
          static_cast<size_t>(Next - Prev));
      Prev = Next;
    }
    if (Prev != PatBlob->Bytes)
      return Err("pattern blob has trailing bytes no offset covers",
                 static_cast<size_t>(PatBlob->Offset));
  }

  // -- Per-MFSA structure ------------------------------------------------
  Views.reserve(Header.NumMfsas);
  for (uint32_t M = 0; M < Header.NumMfsas; ++M) {
    auto MErr = [&](const std::string &Msg, size_t Offset =
                                                static_cast<size_t>(-1)) {
      return Err("MFSA " + std::to_string(M) + ": " + Msg, Offset);
    };
    MfsaView V;
    const uint8_t *MetaP = D + MetaSec->Offset + uint64_t(M) * kMfsaMetaRecordBytes;
    V.Meta.NumStates = loadLE32(MetaP + 0);
    V.Meta.NumRules = loadLE32(MetaP + 4);
    V.Meta.NumTransitions = loadLE32(MetaP + 8);
    V.Meta.BelWords = loadLE32(MetaP + 12);
    V.Meta.NumLabels = loadLE32(MetaP + 16);
    V.Meta.NumBels = loadLE32(MetaP + 20);
    V.Meta.NumFinals = loadLE32(MetaP + 24);
    if (loadLE32(MetaP + 28) != 0)
      return MErr("meta record reserved field not zero");
    if (V.Meta.BelWords != (uint64_t(V.Meta.NumRules) + 63) / 64)
      return MErr("belonging-set width disagrees with rule count");
    if (Options.MaxStates && V.Meta.NumStates > Options.MaxStates)
      return MErr("declares " + std::to_string(V.Meta.NumStates) +
                  " states, over the load ceiling");
    if (Options.MaxTransitions &&
        V.Meta.NumTransitions > Options.MaxTransitions)
      return MErr("declares " + std::to_string(V.Meta.NumTransitions) +
                  " transitions, over the load ceiling");
    if (V.Meta.NumStates == 0 &&
        (V.Meta.NumRules != 0 || V.Meta.NumTransitions != 0))
      return MErr("has rules or transitions but no states");
    if (V.Meta.NumRules == 0 &&
        (V.Meta.NumTransitions != 0 || V.Meta.NumBels != 0))
      return MErr("has transitions but no rules to own them");

    const SectionEntry *Tr = Find(SectionKind::Transitions, M);
    const SectionEntry *La = Find(SectionKind::LabelPool, M);
    const SectionEntry *Be = Find(SectionKind::BelPool, M);
    const SectionEntry *Ru = Find(SectionKind::Rules, M);
    const SectionEntry *Fi = Find(SectionKind::Finals, M);
    if (!Tr || !La || !Be || !Ru || !Fi)
      return MErr("missing per-MFSA section");
    if (Tr->Count != V.Meta.NumTransitions)
      return MErr("transition count disagrees with meta",
                  static_cast<size_t>(Tr->Offset));
    if (La->Count != V.Meta.NumLabels)
      return MErr("label count disagrees with meta",
                  static_cast<size_t>(La->Offset));
    if (Be->Count != V.Meta.NumBels ||
        Be->Bytes != uint64_t(V.Meta.NumBels) * V.Meta.BelWords * 8)
      return MErr("belonging pool size disagrees with meta",
                  static_cast<size_t>(Be->Offset));
    if (Ru->Count != V.Meta.NumRules)
      return MErr("rule count disagrees with meta",
                  static_cast<size_t>(Ru->Offset));
    if (Fi->Count != V.Meta.NumFinals)
      return MErr("finals count disagrees with meta",
                  static_cast<size_t>(Fi->Offset));

    V.Transitions = D + Tr->Offset;
    V.Labels = D + La->Offset;
    V.Bels = D + Be->Offset;
    V.Rules = D + Ru->Offset;
    V.Finals = D + Fi->Offset;

    // Element-level bounds: every index an engine would ever follow.
    for (uint32_t L = 0; L < V.Meta.NumLabels; ++L)
      if (V.label(L).empty())
        return MErr("label " + std::to_string(L) + " is empty (ε is not "
                    "serializable)",
                    static_cast<size_t>(La->Offset));
    const uint32_t TailBits = V.Meta.NumRules % 64;
    for (uint32_t B = 0; B < V.Meta.NumBels; ++B) {
      uint64_t Any = 0;
      for (uint32_t W = 0; W < V.Meta.BelWords; ++W)
        Any |= V.belWord(B, W);
      if (Any == 0)
        return MErr("belonging set " + std::to_string(B) + " is empty",
                    static_cast<size_t>(Be->Offset));
      if (TailBits != 0 &&
          (V.belWord(B, V.Meta.BelWords - 1) & (~0ULL << TailBits)) != 0)
        return MErr("belonging set " + std::to_string(B) +
                        " references rules past the rule count",
                    static_cast<size_t>(Be->Offset));
    }
    for (uint64_t T = 0; T < V.Meta.NumTransitions; ++T) {
      const TransitionRecord R = V.transition(T);
      if (R.From >= V.Meta.NumStates || R.To >= V.Meta.NumStates)
        return MErr("transition " + std::to_string(T) +
                        " endpoint out of range",
                    static_cast<size_t>(Tr->Offset));
      if (R.LabelIdx >= V.Meta.NumLabels)
        return MErr("transition " + std::to_string(T) +
                        " label index out of range",
                    static_cast<size_t>(Tr->Offset));
      if (R.BelIdx >= V.Meta.NumBels)
        return MErr("transition " + std::to_string(T) +
                        " belonging index out of range",
                    static_cast<size_t>(Tr->Offset));
    }
    for (uint32_t R = 0; R < V.Meta.NumRules; ++R) {
      const RuleRecord RR = V.rule(R);
      if (RR.Initial >= V.Meta.NumStates)
        return MErr("rule " + std::to_string(R) +
                        " initial state out of range",
                    static_cast<size_t>(Ru->Offset));
      if (RR.Flags & ~kKnownRuleFlags)
        return MErr("rule " + std::to_string(R) + " has unknown flags",
                    static_cast<size_t>(Ru->Offset));
      if (RR.Reserved != 0)
        return MErr("rule " + std::to_string(R) +
                        " reserved field not zero",
                    static_cast<size_t>(Ru->Offset));
      if (RR.FinalsBegin > V.Meta.NumFinals ||
          RR.FinalsCount > V.Meta.NumFinals - RR.FinalsBegin)
        return MErr("rule " + std::to_string(R) +
                        " finals range out of bounds",
                    static_cast<size_t>(Ru->Offset));
      if (PatOff && RR.GlobalId >= Patterns.size())
        return MErr("rule " + std::to_string(R) +
                        " global id past the embedded ruleset",
                    static_cast<size_t>(Ru->Offset));
    }
    for (uint64_t F = 0; F < V.Meta.NumFinals; ++F)
      if (V.finalAt(F) >= V.Meta.NumStates)
        return MErr("final state entry " + std::to_string(F) +
                        " out of range",
                    static_cast<size_t>(Fi->Offset));

    // Semantic pass: the PR 2 verifier on the materialized automaton
    // (per-rule connectivity, duplicate-arc coalescing, id consistency).
    if (Options.VerifyStructure) {
      const std::string E = verifyMfsaError(V.materialize());
      if (!E.empty())
        return MErr("failed structural verification: " + E);
    }
    Views.push_back(V);
  }
  return true;
}

/// Opt-in Eq. 10 spot check: prove sampled extracted rule languages equal a
/// fresh compile of the embedded patterns.
Result<bool> spotCheck(const std::string &Path, const LoadedArtifact &Art,
                       const LoadOptions &Options, uint32_t RulesetFlags) {
  if (Art.patterns().empty())
    return true; // Nothing to check against; structural checks stand alone.
  ParseOptions Parse;
  Parse.CaseInsensitive = (RulesetFlags & kFlagCaseInsensitive) != 0;
  uint32_t Budget = Options.SpotCheckMaxRules;
  for (uint32_t M = 0; M < Art.numMfsas() && Budget > 0; ++M) {
    const Mfsa Z = Art.view(M).materialize();
    for (RuleId R = 0; R < Z.numRules() && Budget > 0; ++R, --Budget) {
      const uint32_t Gid = Z.rule(R).GlobalId;
      const std::string &Pattern = Art.patterns()[Gid];
      Result<Regex> Re = parseRegex(Pattern, Parse);
      if (!Re.ok())
        return Result<bool>::error(
            "artifact " + Path + ": embedded pattern " +
            std::to_string(Gid) + " no longer parses: " +
            Re.diag().Message);
      Result<Nfa> Built = buildNfa(*Re);
      if (!Built.ok())
        return Result<bool>::error("artifact " + Path +
                                   ": embedded pattern " +
                                   std::to_string(Gid) + " no longer "
                                   "compiles: " + Built.diag().Message);
      const Nfa Expected = optimizeForMerging(*Built);
      const std::string Refuted = validatePassEquivalenceError(
          Expected, Z.extractRule(R), "artifact.load.spot-check", {});
      if (!Refuted.empty())
        return Result<bool>::error(
            "artifact " + Path + ": spot check refuted rule " +
            std::to_string(Gid) + ": " + Refuted);
    }
  }
  return true;
}

} // namespace

Result<LoadedArtifact>
mfsa::artifact::loadArtifact(const std::string &Path,
                             const LoadOptions &Options,
                             obs::MetricsRegistry *Metrics) {
  Timer Clock;
  auto Fail = [&](Diag D) {
    if (Metrics)
      Metrics->counter("artifact.load.failures").add(1);
    return Result<LoadedArtifact>(std::move(D));
  };

  if (readFaultSpec().at(FaultPoint::Load, 0)) {
    Diag D = injectedFault();
    D.Message += " while loading " + Path;
    return Fail(std::move(D));
  }

  Result<MappedFile> File = MappedFile::map(Path);
  if (!File.ok())
    return Fail(File.takeDiag());

  LoadedArtifact Out;
  Out.File = File.take();
  Result<bool> Valid =
      validateImage(Path, Out.File.data(), Out.File.size(), Options,
                    Out.Header, Out.Views, Out.Patterns);
  if (!Valid.ok())
    return Fail(Valid.takeDiag());

  if (Options.SpotCheckValidate) {
    Result<bool> Checked =
        spotCheck(Path, Out, Options, Out.Header.RulesetFlags);
    if (!Checked.ok())
      return Fail(Checked.takeDiag());
  }

  if (Metrics) {
    Metrics->gauge("artifact.load.duration_ms")
        .set(static_cast<int64_t>(Clock.elapsedMs()));
    Metrics->gauge("artifact.load.bytes")
        .set(static_cast<int64_t>(Out.File.size()));
    Metrics->counter("artifact.load.count").add(1);
  }
  return Out;
}

Result<RecoveredRuleset> mfsa::artifact::loadArtifactOrRecompile(
    const std::string &Path, const std::vector<std::string> &FallbackPatterns,
    const CompileOptions &Compile, const LoadOptions &Options,
    obs::MetricsRegistry *Metrics) {
  Result<LoadedArtifact> Loaded = loadArtifact(Path, Options, Metrics);
  if (Loaded.ok()) {
    RecoveredRuleset Out;
    Out.Mfsas = Loaded->materializeAll();
    Out.FromArtifact = true;
    Out.Patterns = Loaded->patterns();
    return Out;
  }

  if (Metrics)
    Metrics->counter("artifact.fallback.count").add(1);
  const std::string Reason = Loaded.diag().render();
  if (FallbackPatterns.empty())
    return Result<RecoveredRuleset>::error(
        Reason + " (and no fallback ruleset was provided)");

  Result<CompileArtifacts> Recompiled =
      compileRuleset(FallbackPatterns, Compile);
  if (!Recompiled.ok())
    return Result<RecoveredRuleset>(
        Recompiled.withContext("fallback recompile after: " + Reason)
            .takeDiag());
  RecoveredRuleset Out;
  Out.Mfsas = std::move(Recompiled->Mfsas);
  Out.FromArtifact = false;
  Out.FallbackReason = Reason;
  Out.Patterns = FallbackPatterns;
  return Out;
}
