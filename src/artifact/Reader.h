//===- Reader.h - corruption-hardened MFSA artifact loading -----*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loads a compiled-MFSA artifact (Format.h) with one read-only mmap and
/// treats every byte of it as untrusted input. The validation ladder:
///
///   1. File sanity: exists, regular, non-empty, mappable.
///   2. Header: magic, endianness tag, schema version, reserved bytes,
///      header checksum, declared size == mapped size.
///   3. Whole-file checksum — any bit flip anywhere is caught here or in 2.
///   4. Section table: known kinds, aligned in-bounds non-overlapping
///      extents, per-kind record-size consistency, per-section checksums.
///   5. Structure: per-MFSA cross-checks against the meta records, then
///      every state/label/bel/final index bounds-validated before use —
///      nothing is dereferenced on trust.
///   6. Semantics: each materialized MFSA passes the structural Verifier
///      (analysis/Verifier.h); opt-in, a translation-validation spot check
///      (analysis/TranslationValidate.h) proves sampled rules' extracted
///      languages equal a fresh compile of the embedded patterns.
///
/// Every failure is a positioned one-line diagnostic, never a crash, and
/// loadArtifactOrRecompile() turns it into a diagnosed fallback: recompile
/// from source rules, count it in `artifact.fallback.*`, keep serving.
/// MFSA_FAULT_STAGE="load:0" injects a load failure for testing.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_ARTIFACT_READER_H
#define MFSA_ARTIFACT_READER_H

#include "artifact/Format.h"
#include "compiler/Pipeline.h"
#include "mfsa/Mfsa.h"
#include "support/Result.h"
#include "support/SymbolSet.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mfsa::obs {
class MetricsRegistry;
} // namespace mfsa::obs

namespace mfsa::artifact {

/// RAII read-only mmap of a whole file. Movable, non-copyable; unmaps on
/// destruction. The mapping address is stable across moves, so views into
/// it survive ownership transfers.
class MappedFile {
public:
  /// Maps \p Path read-only. Distinct diagnostics for missing, non-regular,
  /// empty, and unmappable files.
  static Result<MappedFile> map(const std::string &Path);

  MappedFile() = default;
  MappedFile(MappedFile &&Other) noexcept;
  MappedFile &operator=(MappedFile &&Other) noexcept;
  MappedFile(const MappedFile &) = delete;
  MappedFile &operator=(const MappedFile &) = delete;
  ~MappedFile();

  const uint8_t *data() const { return Data; }
  size_t size() const { return Bytes; }

private:
  const uint8_t *Data = nullptr;
  size_t Bytes = 0;
};

/// Zero-copy view of one MFSA inside the mapped image: raw byte pointers
/// plus little-endian decoding accessors. Valid only while the owning
/// LoadedArtifact (and its mapping) is alive. All accessor indices are
/// caller-trusted *after* load-time validation bounded them.
struct MfsaView {
  MfsaMetaRecord Meta;
  const uint8_t *Transitions = nullptr;
  const uint8_t *Labels = nullptr;
  const uint8_t *Bels = nullptr;
  const uint8_t *Rules = nullptr;
  const uint8_t *Finals = nullptr;

  TransitionRecord transition(uint64_t I) const;
  SymbolSet label(uint32_t I) const;
  /// Word \p W of belonging set \p I.
  uint64_t belWord(uint32_t I, uint32_t W) const;
  RuleRecord rule(uint32_t I) const;
  uint32_t finalAt(uint64_t I) const;

  /// Copies the view into the library's Mfsa model (the form the engines'
  /// constructors preprocess). The bounds were validated at load time.
  Mfsa materialize() const;
};

/// Loader knobs.
struct LoadOptions {
  /// Run the PR 2 structural verifier on every materialized MFSA.
  bool VerifyStructure = true;

  /// Opt-in translation-validation spot check: recompile up to
  /// SpotCheckMaxRules embedded patterns and prove each extracted rule
  /// language equals the fresh compile (Eq. 10 confidence on top of the
  /// structural checks). Requires embedded patterns; skipped silently when
  /// the artifact carries none.
  bool SpotCheckValidate = false;
  uint32_t SpotCheckMaxRules = 8;

  /// Resource ceilings on declared sizes, enforced before any allocation
  /// sized by untrusted counts (0 = unlimited). Defaults comfortably above
  /// every Table I dataset.
  uint64_t MaxStates = 1ull << 26;
  uint64_t MaxTransitions = 1ull << 27;
};

/// A successfully loaded artifact: the mapping, validated per-MFSA views,
/// and decoded global metadata.
class LoadedArtifact {
public:
  uint32_t numMfsas() const { return static_cast<uint32_t>(Views.size()); }
  const MfsaView &view(uint32_t I) const { return Views[I]; }

  /// Materializes every MFSA for engine construction.
  std::vector<Mfsa> materializeAll() const;

  /// Embedded source patterns (empty when the artifact carries none).
  const std::vector<std::string> &patterns() const { return Patterns; }

  const ArtifactHeader &header() const { return Header; }

private:
  friend Result<LoadedArtifact> loadArtifact(const std::string &,
                                             const LoadOptions &,
                                             obs::MetricsRegistry *);
  MappedFile File;
  ArtifactHeader Header;
  std::vector<MfsaView> Views;
  std::vector<std::string> Patterns;
};

/// Maps and fully validates the artifact at \p Path (see file comment for
/// the ladder). On success records `artifact.load.duration_ms`,
/// `artifact.load.bytes`, and `artifact.load.count` into \p Metrics (when
/// non-null); on failure records `artifact.load.failures` and returns the
/// diagnostic.
Result<LoadedArtifact> loadArtifact(const std::string &Path,
                                    const LoadOptions &Options = {},
                                    obs::MetricsRegistry *Metrics = nullptr);

/// What loadArtifactOrRecompile produced.
struct RecoveredRuleset {
  std::vector<Mfsa> Mfsas;
  /// True when the artifact loaded; false when the fallback recompiled.
  bool FromArtifact = false;
  /// The load diagnostic that triggered the fallback (empty on artifact
  /// success).
  std::string FallbackReason;
  /// Embedded patterns when loaded from the artifact (empty otherwise).
  std::vector<std::string> Patterns;
};

/// The graceful-degradation entry point: try the artifact; on *any*
/// validation failure fall back to compiling \p FallbackPatterns with
/// \p Compile, bumping `artifact.fallback.count`. Fails only when the
/// artifact is rejected and no (or unbuildable) fallback rules are given —
/// a diagnosed error either way, never a crash or a silently wrong table.
Result<RecoveredRuleset>
loadArtifactOrRecompile(const std::string &Path,
                        const std::vector<std::string> &FallbackPatterns,
                        const CompileOptions &Compile = {},
                        const LoadOptions &Options = {},
                        obs::MetricsRegistry *Metrics = nullptr);

} // namespace mfsa::artifact

#endif // MFSA_ARTIFACT_READER_H
