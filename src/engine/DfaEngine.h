//===- DfaEngine.h - dense DFA scanning engine ------------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares DfaEngine, the single-active-state baseline of the paper's §II:
/// one table lookup per input byte, the upper-bound-throughput counterpart
/// to the NFA engines — paid for in DFA state count (see Determinize.h).
/// Matches, semantics, and recorders are shared with ImfantEngine, so the
/// two engines cross-validate each other in the tests.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_ENGINE_DFAENGINE_H
#define MFSA_ENGINE_DFAENGINE_H

#include "engine/Imfant.h"
#include "fsa/Determinize.h"

#include <string_view>

namespace mfsa {

/// Executes a scanning Dfa over an input stream. Construction borrows the
/// Dfa (which must outlive the engine); run() is const and thread-safe.
class DfaEngine {
public:
  explicit DfaEngine(const Dfa &Automaton) : Automaton(Automaton) {}

  /// Scans \p Input, reporting (rule, end offset) matches into \p Recorder
  /// with the same semantics as ImfantEngine::run.
  void run(std::string_view Input, MatchRecorder &Recorder) const;

  /// Attaches `dfa.*` scan instrumentation. A DFA's frontier and per-byte
  /// transition count are constant 1 — the whole point of the baseline —
  /// so the occupancy histograms degenerate accordingly; keeping them makes
  /// every engine emit the same metric shape for the bench tooling.
  void setMetrics(obs::MetricsRegistry *Registry);

  uint32_t numStates() const { return Automaton.NumStates; }
  size_t footprintBytes() const { return Automaton.footprintBytes(); }

private:
  struct ScanMetricHandles {
    obs::Counter *Bytes = nullptr;
    obs::Counter *Transitions = nullptr;
    obs::Counter *Matches = nullptr;
    obs::Histogram *Frontier = nullptr;
    obs::Histogram *ActiveRules = nullptr;
    obs::Histogram *TransitionsPerByte = nullptr;
  };

  const Dfa &Automaton;
  ScanMetricHandles Metrics;
};

} // namespace mfsa

#endif // MFSA_ENGINE_DFAENGINE_H
