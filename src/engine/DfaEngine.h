//===- DfaEngine.h - dense DFA scanning engine ------------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares DfaEngine, the single-active-state baseline of the paper's §II:
/// one table lookup per input byte, the upper-bound-throughput counterpart
/// to the NFA engines — paid for in DFA state count (see Determinize.h).
/// Matches, semantics, and recorders are shared with ImfantEngine, so the
/// two engines cross-validate each other in the tests.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_ENGINE_DFAENGINE_H
#define MFSA_ENGINE_DFAENGINE_H

#include "engine/Imfant.h"
#include "fsa/Determinize.h"

#include <string_view>

namespace mfsa {

/// Executes a scanning Dfa over an input stream. Construction borrows the
/// Dfa (which must outlive the engine); run() is const and thread-safe.
class DfaEngine {
public:
  explicit DfaEngine(const Dfa &Automaton) : Automaton(Automaton) {}

  /// Scans \p Input, reporting (rule, end offset) matches into \p Recorder
  /// with the same semantics as ImfantEngine::run.
  void run(std::string_view Input, MatchRecorder &Recorder) const;

  uint32_t numStates() const { return Automaton.NumStates; }
  size_t footprintBytes() const { return Automaton.footprintBytes(); }

private:
  const Dfa &Automaton;
};

} // namespace mfsa

#endif // MFSA_ENGINE_DFAENGINE_H
