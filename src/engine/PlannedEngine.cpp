//===- PlannedEngine.cpp - uniform execution of a planned engine ----------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "engine/PlannedEngine.h"

#include "fsa/Determinize.h"

#include <utility>

namespace mfsa {

Result<PlannedEngineSet>
PlannedEngineSet::create(Engine Choice, const std::vector<Mfsa> &Mfsas,
                         const std::vector<std::string> &Patterns) {
  PlannedEngineSet Set;
  Set.Choice = Choice;
  switch (Choice) {
  case Engine::Auto:
    return Result<PlannedEngineSet>::error(
        "Engine::Auto is not buildable; resolve it through the planner");
  case Engine::ImfantDense:
    for (const Mfsa &Z : Mfsas)
      Set.Dense.emplace_back(Z);
    return Set;
  case Engine::ImfantSparse:
    for (const Mfsa &Z : Mfsas)
      Set.Sparse.emplace_back(Z);
    return Set;
  case Engine::Dfa:
  case Engine::StridedDfa:
    for (size_t G = 0; G < Mfsas.size(); ++G) {
      const Mfsa &Z = Mfsas[G];
      std::vector<Nfa> Fsas;
      std::vector<uint32_t> GlobalIds;
      for (RuleId R = 0; R < Z.numRules(); ++R) {
        Fsas.push_back(Z.extractRule(R));
        GlobalIds.push_back(Z.rule(R).GlobalId);
      }
      Result<Dfa> D = determinize(Fsas, GlobalIds);
      if (!D)
        return D.withContext("group " + std::to_string(G)).takeDiag();
      Set.Dfas.push_back(std::make_unique<Dfa>(std::move(*D)));
      if (Choice == Engine::StridedDfa) {
        Result<StridedDfa> S = makeStride2(*Set.Dfas.back());
        if (!S)
          return S.withContext("group " + std::to_string(G)).takeDiag();
        Set.Strided.push_back(std::make_unique<StridedDfa>(std::move(*S)));
      }
    }
    if (Choice == Engine::StridedDfa)
      for (const std::unique_ptr<StridedDfa> &S : Set.Strided)
        Set.StridedRunners.emplace_back(*S);
    else
      for (const std::unique_ptr<Dfa> &D : Set.Dfas)
        Set.DfaRunners.emplace_back(*D);
    return Set;
  case Engine::Prefilter: {
    if (Patterns.empty())
      return Result<PlannedEngineSet>::error(
          "prefilter engine needs the source patterns");
    Result<PrefilterEngine> P = PrefilterEngine::create(Patterns);
    if (!P)
      return P.takeDiag();
    Set.Pre.emplace(std::move(*P));
    return Set;
  }
  }
  return Result<PlannedEngineSet>::error("unknown engine choice");
}

Result<PlannedEngineSet> PlannedEngineSet::createFromRuleset(
    const EnginePlan &Plan, const std::vector<Nfa> &OptimizedFsas,
    const std::vector<uint32_t> &GlobalIds,
    const std::vector<std::string> &Patterns, const MergeOptions &Merge) {
  const uint32_t N = static_cast<uint32_t>(OptimizedFsas.size());
  const uint32_t GroupSize =
      Plan.MergingFactor == 0 ? std::max(N, 1u) : Plan.MergingFactor;
  std::vector<Mfsa> Groups;
  for (uint32_t Begin = 0; Begin < N; Begin += GroupSize) {
    const uint32_t End = std::min(N, Begin + GroupSize);
    std::vector<Nfa> Slice(OptimizedFsas.begin() + Begin,
                           OptimizedFsas.begin() + End);
    std::vector<uint32_t> Ids(GlobalIds.begin() + Begin,
                              GlobalIds.begin() + End);
    Groups.push_back(mergeFsas(Slice, Ids, Merge));
  }
  return create(Plan.Choice, Groups, Patterns);
}

namespace {

/// Accumulates one group's input-parallel stats into the caller's. Chunk i
/// of every group runs on (notional) thread i, so per-chunk seconds add
/// element-wise and modeledWallSeconds() stays the critical-path model for
/// the whole group-sequential scan.
void accumulateStats(InputParallelStats &Into,
                     const InputParallelStats &Group) {
  Into.Threads = std::max(Into.Threads, Group.Threads);
  Into.Chunks += Group.Chunks;
  Into.SpecDeadChunks += Group.SpecDeadChunks;
  Into.SpecTableChunks += Group.SpecTableChunks;
  Into.RescanFallbackChunks += Group.RescanFallbackChunks;
  Into.OverlapBytes += Group.OverlapBytes;
  Into.SpecStartRuns += Group.SpecStartRuns;
  Into.MaxSpecFrontier = std::max(Into.MaxSpecFrontier, Group.MaxSpecFrontier);
  Into.MaxAliveClasses =
      std::max(Into.MaxAliveClasses, Group.MaxAliveClasses);
  Into.IsoMatches += Group.IsoMatches;
  Into.CarryMatches += Group.CarryMatches;
  if (Into.ChunkPhase1Seconds.size() < Group.ChunkPhase1Seconds.size())
    Into.ChunkPhase1Seconds.resize(Group.ChunkPhase1Seconds.size(), 0.0);
  for (size_t I = 0; I < Group.ChunkPhase1Seconds.size(); ++I)
    Into.ChunkPhase1Seconds[I] += Group.ChunkPhase1Seconds[I];
  Into.JoinSeconds += Group.JoinSeconds;
}

} // namespace

void PlannedEngineSet::runInputParallel(std::string_view Input,
                                        MatchRecorder &Recorder,
                                        const InputParallelOptions &Options,
                                        InputParallelStats *Stats) const {
  auto RunOne = [&](const InputParallelRun &Par) {
    if (!Stats) {
      Par.run(Input, Recorder);
      return;
    }
    InputParallelStats Group;
    Par.run(Input, Recorder, &Group);
    accumulateStats(*Stats, Group);
  };
  for (const ImfantEngine &E : Dense)
    RunOne(InputParallelRun(E, Options));
  for (const std::unique_ptr<Dfa> &D : Dfas)
    if (Choice == Engine::Dfa)
      RunOne(InputParallelRun(*D, Options));
  for (const std::unique_ptr<StridedDfa> &S : Strided)
    RunOne(InputParallelRun(*S, Options));
  // No input-parallel executor for these: sequential scan, same output.
  for (const SparseImfantEngine &E : Sparse)
    E.run(Input, Recorder);
  if (Pre)
    Pre->run(Input, Recorder);
}

void PlannedEngineSet::run(std::string_view Input,
                           MatchRecorder &Recorder) const {
  for (const ImfantEngine &E : Dense)
    E.run(Input, Recorder);
  for (const SparseImfantEngine &E : Sparse)
    E.run(Input, Recorder);
  for (const DfaEngine &E : DfaRunners)
    E.run(Input, Recorder);
  for (const StridedDfaEngine &E : StridedRunners)
    E.run(Input, Recorder);
  if (Pre)
    Pre->run(Input, Recorder);
}

size_t PlannedEngineSet::numGroups() const {
  if (Pre)
    return 1;
  return Dense.size() + Sparse.size() + DfaRunners.size() +
         StridedRunners.size();
}

} // namespace mfsa
