//===- DfaEngine.cpp - dense DFA scanning engine --------------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "engine/DfaEngine.h"

using namespace mfsa;

void DfaEngine::run(std::string_view Input, MatchRecorder &Recorder) const {
  const uint32_t NumAtoms = Automaton.NumAtoms;
  const uint32_t *Next = Automaton.Next.data();
  const uint8_t *AtomOf = Automaton.AtomOfByte.data();

  uint32_t State = Automaton.start();
  for (size_t Pos = 0; Pos < Input.size(); ++Pos) {
    State = Next[static_cast<size_t>(State) * NumAtoms +
                 AtomOf[static_cast<unsigned char>(Input[Pos])]];
    const DynamicBitset &Accept = Automaton.Accept[State];
    if (Accept.any())
      Accept.forEach([&](unsigned Rule) {
        Recorder.onMatch(Automaton.GlobalIds[Rule], Pos + 1);
      });
    if (Pos + 1 == Input.size()) {
      const DynamicBitset &AtEnd = Automaton.AcceptAtEnd[State];
      if (AtEnd.any())
        AtEnd.forEach([&](unsigned Rule) {
          Recorder.onMatch(Automaton.GlobalIds[Rule], Pos + 1);
        });
    }
  }
}
