//===- DfaEngine.cpp - dense DFA scanning engine --------------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "engine/DfaEngine.h"

#include "obs/Metrics.h"
#include "support/SimdDispatch.h"

using namespace mfsa;

void DfaEngine::setMetrics(obs::MetricsRegistry *Registry) {
  if (!Registry) {
    Metrics = ScanMetricHandles{};
    return;
  }
  Metrics.Bytes = &Registry->counter("dfa.bytes_scanned");
  Metrics.Transitions = &Registry->counter("dfa.transitions_touched");
  Metrics.Matches = &Registry->counter("dfa.matches");
  Metrics.Frontier =
      &Registry->histogram("dfa.frontier_size", obs::pow2Buckets(12));
  Metrics.ActiveRules =
      &Registry->histogram("dfa.active_rules", obs::pow2Buckets(12));
  Metrics.TransitionsPerByte = &Registry->histogram(
      "dfa.transitions_per_byte", obs::pow2Buckets(14));
  Registry->gauge("dfa.states").set(Automaton.NumStates);
  Registry->gauge("dfa.rules").set(Automaton.NumRules);
}

void DfaEngine::run(std::string_view Input, MatchRecorder &Recorder) const {
  const uint32_t NumAtoms = Automaton.NumAtoms;
  const uint32_t *Next = Automaton.Next.data();
  const uint8_t *AtomOf = Automaton.AtomOfByte.data();
  // Resolve the SIMD dispatch once per scan; the per-byte accept probe then
  // calls the kernel directly instead of re-loading the table through
  // DynamicBitset::any().
  const simd::KernelTable &K = simd::ops();

#if MFSA_METRICS_ENABLED
  const bool Observed = Metrics.Bytes != nullptr;
  const uint32_t SampleEvery = Observed ? obs::scanSampleEvery() : 0;
  uint32_t MetricsTick = 0;
  uint64_t MatchesBefore = Recorder.total();
#endif

  uint32_t State = Automaton.start();
  for (size_t Pos = 0; Pos < Input.size(); ++Pos) {
    State = Next[static_cast<size_t>(State) * NumAtoms +
                 AtomOf[static_cast<unsigned char>(Input[Pos])]];
    const DynamicBitset &Accept = Automaton.Accept[State];
    if (K.AnyWords(Accept.words().data(), Accept.words().size()))
      Accept.forEach([&](unsigned Rule) {
        Recorder.onMatch(Automaton.GlobalIds[Rule], Pos + 1);
      });
    if (Pos + 1 == Input.size()) {
      const DynamicBitset &AtEnd = Automaton.AcceptAtEnd[State];
      if (K.AnyWords(AtEnd.words().data(), AtEnd.words().size()))
        AtEnd.forEach([&](unsigned Rule) {
          Recorder.onMatch(Automaton.GlobalIds[Rule], Pos + 1);
        });
    }
#if MFSA_METRICS_ENABLED
    if (Observed && ++MetricsTick >= SampleEvery) {
      MetricsTick = 0;
      Metrics.Frontier->observe(1);
      Metrics.ActiveRules->observe(1);
      Metrics.TransitionsPerByte->observe(1);
    }
#endif
  }

#if MFSA_METRICS_ENABLED
  if (Observed) {
    Metrics.Bytes->add(Input.size());
    Metrics.Transitions->add(Input.size()); // exactly one lookup per byte
    Metrics.Matches->add(Recorder.total() - MatchesBefore);
  }
#endif
}
