//===- InputParallel.cpp - input-parallel single-stream scanning -------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "engine/InputParallel.h"

#include "obs/Metrics.h"
#include "support/SimdDispatch.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <numeric>

using namespace mfsa;

namespace {

using Match = std::pair<uint32_t, uint64_t>; ///< (global rule, end offset).

/// Sorts \p Matches into sequential emission order — nondecreasing end
/// offset, rule id within an offset — drops duplicate (rule, end) pairs
/// (the iso scan and the boundary carry can realize the same match), and
/// forwards the survivors.
void forwardSortedUnique(std::vector<Match> &Matches,
                         MatchRecorder &Recorder) {
  std::sort(Matches.begin(), Matches.end(),
            [](const Match &A, const Match &B) {
              return A.second != B.second ? A.second < B.second
                                          : A.first < B.first;
            });
  Matches.erase(std::unique(Matches.begin(), Matches.end()), Matches.end());
  for (const Match &M : Matches)
    Recorder.onMatch(M.first, M.second);
}

/// Pointwise union of two activation configurations (either may be empty).
ActivationSet unionActivations(const ActivationSet &A,
                               const ActivationSet &B) {
  if (A.empty())
    return B;
  if (B.empty())
    return A;
  assert(A.Words == B.Words);
  const uint32_t W = A.Words;
  std::map<StateId, std::vector<uint64_t>> Acc;
  auto Fold = [&](const ActivationSet &Src) {
    for (size_t I = 0; I < Src.size(); ++I) {
      std::vector<uint64_t> &Blk = Acc[Src.States[I]];
      if (Blk.empty())
        Blk.assign(W, 0);
      const uint64_t *From = Src.block(I);
      for (uint32_t Wd = 0; Wd < W; ++Wd)
        Blk[Wd] |= From[Wd];
    }
  };
  Fold(A);
  Fold(B);
  ActivationSet Out;
  Out.Words = W;
  for (const auto &[S, Blk] : Acc) {
    Out.States.push_back(S);
    Out.RuleBlocks.insert(Out.RuleBlocks.end(), Blk.begin(), Blk.end());
  }
  return Out;
}

/// Runs \p Body(I) for I in [0, N): serially by default (each call timed
/// in isolation for the modeled critical path), or on a pool of
/// \p Threads workers. Bodies write only their own result slot, so the
/// pooled variant needs no locking.
template <class Fn>
void forEachChunk(bool UseThreadPool, unsigned Threads, size_t N, Fn &&Body) {
  if (UseThreadPool && N > 1 && Threads > 1) {
    ThreadPool Pool(std::min<unsigned>(Threads, static_cast<unsigned>(N)));
    for (size_t I = 0; I < N; ++I)
      Pool.submit([I, &Body] { Body(I); });
    Pool.wait();
  } else {
    for (size_t I = 0; I < N; ++I)
      Body(I);
  }
}

} // namespace

double InputParallelStats::modeledWallSeconds() const {
  double Slowest = 0.0;
  for (double S : ChunkPhase1Seconds)
    Slowest = std::max(Slowest, S);
  return Slowest + JoinSeconds;
}

void mfsa::recordInputParallelStats(const InputParallelStats &Stats,
                                    obs::MetricsRegistry &Registry) {
  Registry.counter("parallel.input.runs").add(1);
  Registry.counter("parallel.input.chunks").add(Stats.Chunks);
  Registry.counter("parallel.input.spec_dead_chunks")
      .add(Stats.SpecDeadChunks);
  Registry.counter("parallel.input.spec_table_chunks")
      .add(Stats.SpecTableChunks);
  Registry.counter("parallel.input.rescan_fallback_chunks")
      .add(Stats.RescanFallbackChunks);
  Registry.counter("parallel.input.overlap_bytes").add(Stats.OverlapBytes);
  Registry.counter("parallel.input.spec_start_runs").add(Stats.SpecStartRuns);
  Registry.counter("parallel.input.iso_matches").add(Stats.IsoMatches);
  Registry.counter("parallel.input.carry_matches").add(Stats.CarryMatches);
  Registry.gauge("parallel.input.threads")
      .set(static_cast<int64_t>(Stats.Threads));
  Registry.gauge("parallel.input.max_spec_frontier")
      .set(static_cast<int64_t>(Stats.MaxSpecFrontier));
  Registry.gauge("parallel.input.max_alive_classes")
      .set(static_cast<int64_t>(Stats.MaxAliveClasses));
  Registry.gauge("parallel.input.join_us")
      .set(static_cast<int64_t>(Stats.JoinSeconds * 1e6));
}

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

InputParallelRun::InputParallelRun(const ImfantEngine &Engine,
                                   InputParallelOptions Options)
    : Kind(Backend::Imfant), Opts(std::move(Options)), Imfant(&Engine) {
  const uint32_t W = Engine.ruleWords();
  const std::vector<uint64_t> Poss = Engine.possibleRulesByState();
  // The width bound's reachable-state set (when supplied and computed over
  // the same Mfsa) soundly prunes states that no mid-stream frontier can
  // contain; a budgeted bound has every bit set, so the pruning degrades
  // gracefully to "every state with a nonempty possible-rule mask".
  const WidthBound *Width = Opts.Width;
  const bool UseReach =
      Width && Width->ReachableStates.size() == Engine.numStates();
  SpecSeed.Words = W;
  for (StateId S = 0; S < Engine.numStates(); ++S) {
    const uint64_t *Blk = &Poss[static_cast<size_t>(S) * W];
    bool Any = false;
    for (uint32_t Wd = 0; Wd < W; ++Wd)
      Any = Any || Blk[Wd] != 0;
    if (!Any || (UseReach && !Width->ReachableStates.test(S)))
      continue;
    SpecSeed.States.push_back(S);
    SpecSeed.RuleBlocks.insert(SpecSeed.RuleBlocks.end(), Blk, Blk + W);
  }
  for (uint32_t R = 0; R < Engine.numRules(); ++R)
    GlobalToLocal.emplace(Engine.globalIds()[R], R);
}

InputParallelRun::InputParallelRun(const Dfa &Automaton,
                                   InputParallelOptions Options)
    : Kind(Backend::Dfa), Opts(std::move(Options)), Automaton(&Automaton) {}

InputParallelRun::InputParallelRun(const StridedDfa &Automaton,
                                   InputParallelOptions Options)
    : Kind(Backend::Stride2), Opts(std::move(Options)), Strided(&Automaton) {}

std::vector<uint64_t> InputParallelRun::chunkBoundaries(size_t Len) const {
  std::vector<uint64_t> Bounds;
  if (!Opts.CutOverride.empty()) {
    Bounds.push_back(0);
    for (uint64_t Cut : Opts.CutOverride)
      Bounds.push_back(std::min<uint64_t>(Cut, Len));
    std::sort(Bounds.begin(), Bounds.end());
    Bounds.push_back(Len);
    return Bounds;
  }
  size_t Chunks = std::max<unsigned>(1, Opts.Threads);
  if (Opts.MinChunkBytes)
    Chunks = std::min<size_t>(
        Chunks, std::max<size_t>(1, Len / Opts.MinChunkBytes));
  Bounds.reserve(Chunks + 1);
  Bounds.push_back(0);
  for (size_t I = 1; I < Chunks; ++I)
    Bounds.push_back(Len * I / Chunks);
  Bounds.push_back(Len);
  return Bounds;
}

//===----------------------------------------------------------------------===//
// iMFAnt backend
//===----------------------------------------------------------------------===//

namespace {

/// Everything phase 1 computes for one iMFAnt chunk.
struct ImfChunkWork {
  /// How the join resolves this chunk's incoming boundary frontier.
  enum class Mode : uint8_t {
    Leading, ///< Chunk 0 (or an empty chunk): no speculation needed.
    Dead,    ///< Probe died: the carry re-scan is bounded by DeathBytes.
    Table,   ///< Per-start outcome tables recorded: join is a lookup.
    Rescan   ///< Fan-out too large: join re-scans the carry sequentially.
  };
  Mode M = Mode::Leading;
  size_t DeathBytes = 0;

  std::vector<Match> IsoMatches; ///< Global ids, absolute offsets.
  ActivationSet IsoExit;

  /// Mode::Table per-start outcomes, parallel to the executor's SpecSeed
  /// order. Matches carry LOCAL rule ids so the join can intersect them
  /// with the true carried activation bitset (exact per rule: J-bits
  /// propagate independently through ∩ bel).
  struct StartOutcome {
    std::vector<Match> LocalMatches;
    ActivationSet Exit;
  };
  std::vector<StartOutcome> Outcomes;

  uint32_t MaxSpecFrontier = 0;
};

constexpr size_t UnlimitedCap = std::numeric_limits<size_t>::max();

} // namespace

void InputParallelRun::runImfant(std::string_view Input,
                                 const std::vector<uint64_t> &Bounds,
                                 MatchRecorder &Recorder,
                                 InputParallelStats *Stats) const {
  const ImfantEngine &Engine = *Imfant;
  const size_t NumChunks = Bounds.size() - 1;
  const uint64_t StreamEnd = Input.size();
  std::vector<ImfChunkWork> Work(NumChunks);

  // Phase 1 — per chunk, independent (parallel under UseThreadPool):
  // the iso scan, the union-frontier death probe, and (when the fan-out
  // allows) the per-start outcome tables.
  forEachChunk(Opts.UseThreadPool, Opts.Threads, NumChunks, [&](size_t I) {
    Timer Clock;
    ImfChunkWork &W = Work[I];
    const uint64_t Base = Bounds[I];
    const std::string_view Chunk =
        Input.substr(Base, Bounds[I + 1] - Base);
    // `$`-pending flush and AcceptAtEnd both belong to the chunk that
    // consumes the stream's final byte — NOT to a trailing empty chunk.
    const bool FlushesEnd = !Chunk.empty() && Base + Chunk.size() == StreamEnd;

    {
      // Iso scan: injection on, empty start, absolute offsets. Exact for
      // every match attempt that begins inside this chunk.
      MatchRecorder Iso(MatchRecorder::Mode::Collect);
      Iso.Cap = UnlimitedCap;
      ImfantEngine::Scanner Scan(Engine);
      Scan.startAt(Base);
      Scan.feed(Chunk, Iso);
      if (FlushesEnd)
        Scan.finish(Iso);
      W.IsoExit = Scan.captureActivation();
      W.IsoMatches = Iso.matches();
    }

    if (I == 0 || Chunk.empty()) {
      W.M = ImfChunkWork::Mode::Leading;
    } else {
      // Death probe: propagate the union frontier (injection off) through
      // the overlap window. Any real carry is pointwise ⊆ this seed, and
      // the propagation step is monotone, so probe death at offset D
      // bounds every possible carry re-scan by D bytes.
      ImfantEngine::Scanner Probe(Engine);
      Probe.startAt(Base);
      Probe.setInjection(false);
      Probe.seedActivation(SpecSeed);
      MatchRecorder Devnull(MatchRecorder::Mode::CountOnly);
      const size_t Window =
          Opts.MaxSpecWindowBytes
              ? std::min(Chunk.size(), Opts.MaxSpecWindowBytes)
              : Chunk.size();
      Probe.feed(Chunk.substr(0, Window), Devnull);
      if (Probe.frontierEmpty()) {
        W.M = ImfChunkWork::Mode::Dead;
        W.DeathBytes = static_cast<size_t>(Probe.offset() - Base);
      } else if (SpecSeed.size() <= Opts.MaxSpecStartStates) {
        // Record one outcome per speculative start state: the join masks
        // these against the real carried activation. Each costs a full
        // chunk propagation, hence the fan-out cap.
        W.M = ImfChunkWork::Mode::Table;
        W.Outcomes.resize(SpecSeed.size());
        ActivationSet Singleton;
        Singleton.Words = SpecSeed.Words;
        for (size_t Q = 0; Q < SpecSeed.size(); ++Q) {
          Singleton.States.assign(1, SpecSeed.States[Q]);
          Singleton.RuleBlocks.assign(SpecSeed.block(Q),
                                      SpecSeed.block(Q) + SpecSeed.Words);
          ImfantEngine::Scanner Scan(Engine);
          Scan.startAt(Base);
          Scan.setInjection(false);
          Scan.seedActivation(Singleton);
          MatchRecorder Out(MatchRecorder::Mode::Collect);
          Out.Cap = UnlimitedCap;
          RunStats SpecStats;
          Scan.feed(Chunk, Out, Stats ? &SpecStats : nullptr);
          if (FlushesEnd)
            Scan.finish(Out);
          ImfChunkWork::StartOutcome &O = W.Outcomes[Q];
          O.Exit = Scan.captureActivation();
          O.LocalMatches.reserve(Out.matches().size());
          for (const Match &M : Out.matches())
            O.LocalMatches.emplace_back(GlobalToLocal.at(M.first), M.second);
          W.MaxSpecFrontier =
              std::max(W.MaxSpecFrontier, SpecStats.MaxFrontier);
        }
      } else {
        W.M = ImfChunkWork::Mode::Rescan;
      }
    }
    if (Stats)
      Stats->ChunkPhase1Seconds[I] = Clock.elapsedMs() / 1e3;
  });

  // Phase 2 — sequential join: thread the real boundary frontier through
  // the chunks, resolving each boundary by the mode phase 1 established.
  Timer JoinClock;
  const uint32_t W = Engine.ruleWords();
  {
    std::vector<Match> Lead = std::move(Work[0].IsoMatches);
    if (Stats)
      Stats->IsoMatches += Lead.size();
    forwardSortedUnique(Lead, Recorder);
  }
  ActivationSet Carry = std::move(Work[0].IsoExit);

  for (size_t I = 1; I < NumChunks; ++I) {
    ImfChunkWork &Wk = Work[I];
    const uint64_t Base = Bounds[I];
    const std::string_view Chunk = Input.substr(Base, Bounds[I + 1] - Base);
    const bool FlushesEnd = !Chunk.empty() && Base + Chunk.size() == StreamEnd;

    ImfChunkWork::Mode M = Wk.M;
    if (M == ImfChunkWork::Mode::Table) {
      // Defensive: a carried state outside the speculative seed has no
      // table (unreachable while the possible-rule masks are sound).
      for (StateId S : Carry.States)
        if (!std::binary_search(SpecSeed.States.begin(),
                                SpecSeed.States.end(), S)) {
          M = ImfChunkWork::Mode::Rescan;
          break;
        }
    }

    std::vector<Match> CarryMatches;
    ActivationSet CarryExit;
    switch (M) {
    case ImfChunkWork::Mode::Leading:
      CarryExit = std::move(Carry); // Zero-length chunk: frontier unchanged.
      break;
    case ImfChunkWork::Mode::Dead:
    case ImfChunkWork::Mode::Rescan: {
      if (!Carry.empty()) {
        // Boundary re-scan: propagate the real carry (injection off). The
        // scanner stops at frontier death on its own, so a Dead chunk
        // consumes at most DeathBytes — the overlap window.
        ImfantEngine::Scanner Scan(Engine);
        Scan.startAt(Base);
        Scan.setInjection(false);
        Scan.seedActivation(Carry);
        MatchRecorder Out(MatchRecorder::Mode::Collect);
        Out.Cap = UnlimitedCap;
        RunStats CarryStats;
        Scan.feed(Chunk, Out, Stats ? &CarryStats : nullptr);
        if (FlushesEnd)
          Scan.finish(Out);
        CarryExit = Scan.captureActivation();
        CarryMatches = Out.matches();
        if (Stats) {
          Stats->OverlapBytes += Scan.offset() - Base;
          Stats->MaxSpecFrontier =
              std::max(Stats->MaxSpecFrontier, CarryStats.MaxFrontier);
        }
        assert((M != ImfChunkWork::Mode::Dead || Scan.frontierEmpty()) &&
               "probe death must dominate the real carry");
      }
      break;
    }
    case ImfChunkWork::Mode::Table: {
      // Masked table lookup: a speculative outcome recorded under the
      // possible-rule mask restricts exactly to the carried J bits.
      ActivationSet Acc;
      for (size_t C = 0; C < Carry.size(); ++C) {
        const StateId S = Carry.States[C];
        const uint64_t *J = Carry.block(C);
        const size_t Q = static_cast<size_t>(
            std::lower_bound(SpecSeed.States.begin(), SpecSeed.States.end(),
                             S) -
            SpecSeed.States.begin());
        const ImfChunkWork::StartOutcome &O = Wk.Outcomes[Q];
        for (const Match &LM : O.LocalMatches)
          if (J[LM.first / 64] & (1ULL << (LM.first % 64)))
            CarryMatches.emplace_back(Engine.globalIds()[LM.first],
                                      LM.second);
        ActivationSet Masked;
        Masked.Words = W;
        for (size_t E = 0; E < O.Exit.size(); ++E) {
          const uint64_t *Blk = O.Exit.block(E);
          std::vector<uint64_t> MaskedBlk(W);
          bool Any = false;
          for (uint32_t Wd = 0; Wd < W; ++Wd) {
            MaskedBlk[Wd] = Blk[Wd] & J[Wd];
            Any = Any || MaskedBlk[Wd] != 0;
          }
          if (!Any)
            continue;
          Masked.States.push_back(O.Exit.States[E]);
          Masked.RuleBlocks.insert(Masked.RuleBlocks.end(),
                                   MaskedBlk.begin(), MaskedBlk.end());
        }
        Acc = unionActivations(Acc, Masked);
      }
      CarryExit = std::move(Acc);
      break;
    }
    }

    if (Stats) {
      Stats->IsoMatches += Wk.IsoMatches.size();
      Stats->CarryMatches += CarryMatches.size();
      Stats->MaxSpecFrontier =
          std::max(Stats->MaxSpecFrontier, Wk.MaxSpecFrontier);
      Stats->SpecStartRuns +=
          Wk.M == ImfChunkWork::Mode::Table ? Wk.Outcomes.size() : 0;
      switch (M) {
      case ImfChunkWork::Mode::Leading:
        break;
      case ImfChunkWork::Mode::Dead:
        ++Stats->SpecDeadChunks;
        break;
      case ImfChunkWork::Mode::Table:
        ++Stats->SpecTableChunks;
        break;
      case ImfChunkWork::Mode::Rescan:
        ++Stats->RescanFallbackChunks;
        break;
      }
    }

    // Per-chunk (rule, end) dedup across the iso scan and the carry —
    // the sequential engine's per-step dedup, reconstructed at the join.
    std::vector<Match> Joined = std::move(Wk.IsoMatches);
    Joined.insert(Joined.end(), CarryMatches.begin(), CarryMatches.end());
    forwardSortedUnique(Joined, Recorder);

    Carry = unionActivations(Wk.IsoExit, CarryExit);
  }
  if (Stats)
    Stats->JoinSeconds = JoinClock.elapsedMs() / 1e3;
}

//===----------------------------------------------------------------------===//
// DFA-family backend
//===----------------------------------------------------------------------===//

namespace {

/// Single-byte stepping over a scanning Dfa with DfaEngine's exact accept
/// semantics (Accept probed after every byte; AcceptAtEnd only after the
/// stream's final byte, via emitAtEnd).
struct DfaPolicy {
  const Dfa &D;
  const simd::KernelTable &K;

  uint32_t numStates() const { return D.NumStates; }
  size_t stepLen(uint64_t, size_t) const { return 1; }

  template <class EmitT>
  uint32_t step(uint32_t State, std::string_view Chunk, size_t Pos,
                uint64_t Base, EmitT &&Emit) const {
    const uint32_t Next =
        D.Next[static_cast<size_t>(State) * D.NumAtoms +
               D.AtomOfByte[static_cast<unsigned char>(Chunk[Pos])]];
    const DynamicBitset &Accept = D.Accept[Next];
    if (K.AnyWords(Accept.words().data(), Accept.words().size()))
      Accept.forEach([&](unsigned Rule) {
        Emit(D.GlobalIds[Rule], Base + Pos + 1);
      });
    return Next;
  }

  template <class EmitT>
  void emitAtEnd(uint32_t State, uint64_t EndOffset, EmitT &&Emit) const {
    const DynamicBitset &AtEnd = D.AcceptAtEnd[State];
    if (K.AnyWords(AtEnd.words().data(), AtEnd.words().size()))
      AtEnd.forEach(
          [&](unsigned Rule) { Emit(D.GlobalIds[Rule], EndOffset); });
  }
};

/// Stride-2 stepping aligned to ABSOLUTE pair parity: pairs start at even
/// stream offsets, so a chunk whose base (or tail) splits a pair takes
/// single Mid half-steps at the ragged edges — Mid is the stride-1 table,
/// so the output stays byte-identical to the sequential strided engine
/// under arbitrary adversarial cuts.
struct StridedPolicy {
  const StridedDfa &D;
  const simd::KernelTable &K;

  uint32_t numStates() const { return D.NumStates; }
  size_t stepLen(uint64_t AbsPos, size_t Remaining) const {
    return (AbsPos % 2 == 0 && Remaining >= 2) ? 2 : 1;
  }

  template <class EmitT>
  void probeAccept(uint32_t State, uint64_t EndOffset, EmitT &&Emit) const {
    const DynamicBitset &Accept = D.Accept[State];
    if (K.AnyWords(Accept.words().data(), Accept.words().size()))
      Accept.forEach(
          [&](unsigned Rule) { Emit(D.GlobalIds[Rule], EndOffset); });
  }

  template <class EmitT>
  uint32_t step(uint32_t State, std::string_view Chunk, size_t Pos,
                uint64_t Base, EmitT &&Emit) const {
    const uint32_t A = D.NumAtoms;
    const uint32_t A1 =
        D.AtomOfByte[static_cast<unsigned char>(Chunk[Pos])];
    const uint64_t Abs = Base + Pos;
    if (Abs % 2 == 0 && Pos + 1 < Chunk.size()) {
      // Full stride: mid-stride accept (odd offset) only when the flag
      // says the half-step state accepts at all.
      if (D.MidAcceptAny[static_cast<size_t>(State) * A + A1])
        probeAccept(D.Mid[static_cast<size_t>(State) * A + A1], Abs + 1,
                    Emit);
      const uint32_t A2 =
          D.AtomOfByte[static_cast<unsigned char>(Chunk[Pos + 1])];
      const uint32_t Next =
          D.Next2[(static_cast<size_t>(State) * A + A1) * A + A2];
      probeAccept(Next, Abs + 2, Emit);
      return Next;
    }
    const uint32_t Next = D.Mid[static_cast<size_t>(State) * A + A1];
    probeAccept(Next, Abs + 1, Emit);
    return Next;
  }

  template <class EmitT>
  void emitAtEnd(uint32_t State, uint64_t EndOffset, EmitT &&Emit) const {
    const DynamicBitset &AtEnd = D.AcceptAtEnd[State];
    if (K.AnyWords(AtEnd.words().data(), AtEnd.words().size()))
      AtEnd.forEach(
          [&](unsigned Rule) { Emit(D.GlobalIds[Rule], EndOffset); });
  }
};

/// Sequential scan of one chunk from a known state; AcceptAtEnd fires only
/// when the chunk consumes the stream's final byte.
template <class Policy, class EmitT>
uint32_t scanChunkFrom(const Policy &P, uint32_t State,
                       std::string_view Chunk, uint64_t Base,
                       uint64_t StreamEnd, EmitT &&Emit) {
  size_t Pos = 0;
  while (Pos < Chunk.size()) {
    const size_t Len = P.stepLen(Base + Pos, Chunk.size() - Pos);
    State = P.step(State, Chunk, Pos, Base, Emit);
    Pos += Len;
  }
  if (!Chunk.empty() && Base + Chunk.size() == StreamEnd)
    P.emitAtEnd(State, StreamEnd, Emit);
  return State;
}

constexpr uint32_t NoClass = std::numeric_limits<uint32_t>::max();

/// PaREM-style per-start outcome map for one chunk, with class collapse:
/// classes that land on the same DFA state merge, the dead class keeping a
/// pointer into its surviving parent's accept log so every start state's
/// full match sequence stays reconstructible in order.
struct ChunkStateMap {
  struct Cls {
    std::vector<Match> Log; ///< Time-ordered (global rule, end) accepts.
    uint32_t MergedInto = NoClass;
    size_t MergedAtParentSize = 0;
    uint32_t Exit = 0; ///< Valid for never-merged (terminal) classes.
  };
  bool Ok = false; ///< False: collapse stalled; join re-scans sequentially.
  std::vector<Cls> Classes; ///< Index == start state.
  uint32_t MaxAlive = 0;
};

template <class Policy>
void buildChunkStateMap(const Policy &P, std::string_view Chunk,
                        uint64_t Base, uint64_t StreamEnd, uint32_t ClassCap,
                        size_t GuardBytes, ChunkStateMap &M) {
  const uint32_t N = P.numStates();
  M.Classes.assign(N, {});
  std::vector<uint32_t> Cur(N), Alive(N), NewAlive;
  std::iota(Cur.begin(), Cur.end(), 0u);
  std::iota(Alive.begin(), Alive.end(), 0u);
  NewAlive.reserve(N);
  // Epoch-marked ownership: Owner[S] is the class that reached S this
  // step, valid only when OwnerEpoch[S] matches.
  std::vector<uint32_t> Owner(N, 0);
  std::vector<uint64_t> OwnerEpoch(N, 0);
  uint64_t Epoch = 0;

  size_t Pos = 0;
  while (Pos < Chunk.size()) {
    // Collapse-to-one fast path: a single surviving class is a known DFA
    // state, so the rest of the chunk is the ordinary sequential scan —
    // this is what makes the map's amortized cost approach the sequential
    // engine's and the modeled speedup approach T (bench/fig_input_parallel).
    if (Alive.size() == 1) {
      const uint32_t C = Alive[0];
      Cur[C] = scanChunkFrom(P, Cur[C], Chunk.substr(Pos), Base + Pos,
                             StreamEnd, [&](uint32_t Rule, uint64_t End) {
                               M.Classes[C].Log.emplace_back(Rule, End);
                             });
      M.Classes[C].Exit = Cur[C];
      M.Ok = true;
      return;
    }
    const size_t Len = P.stepLen(Base + Pos, Chunk.size() - Pos);
    ++Epoch;
    for (uint32_t C : Alive)
      Cur[C] = P.step(Cur[C], Chunk, Pos, Base,
                      [&](uint32_t Rule, uint64_t End) {
                        M.Classes[C].Log.emplace_back(Rule, End);
                      });
    Pos += Len;

    // Collapse classes that converged. Both a dying class and its parent
    // logged this step's accepts before the merge, and the recorded parent
    // size already includes them — the chain walk emits each exactly once.
    NewAlive.clear();
    for (uint32_t C : Alive) {
      const uint32_t S = Cur[C];
      if (OwnerEpoch[S] != Epoch) {
        OwnerEpoch[S] = Epoch;
        Owner[S] = C;
        NewAlive.push_back(C);
      } else {
        const uint32_t Parent = Owner[S];
        M.Classes[C].MergedInto = Parent;
        M.Classes[C].MergedAtParentSize = M.Classes[Parent].Log.size();
      }
    }
    Alive.swap(NewAlive);
    M.MaxAlive = std::max(M.MaxAlive, static_cast<uint32_t>(Alive.size()));

    // Collapse guard: past the overlap window a still-wide map costs more
    // than the sequential re-scan it replaces. Alive only shrinks, so one
    // live comparison suffices.
    if (Pos >= GuardBytes && Alive.size() > ClassCap) {
      M.Ok = false;
      return;
    }
  }

  if (!Chunk.empty() && Base + Chunk.size() == StreamEnd)
    for (uint32_t C : Alive)
      P.emitAtEnd(Cur[C], StreamEnd, [&](uint32_t Rule, uint64_t End) {
        M.Classes[C].Log.emplace_back(Rule, End);
      });
  for (uint32_t C : Alive)
    M.Classes[C].Exit = Cur[C];
  M.Ok = true;
}

} // namespace

void InputParallelRun::run(std::string_view Input, MatchRecorder &Recorder,
                           InputParallelStats *Stats) const {
  const std::vector<uint64_t> Bounds = chunkBoundaries(Input.size());
  if (Stats) {
    Stats->Threads = static_cast<unsigned>(Bounds.size() - 1);
    Stats->Chunks = Bounds.size() - 1;
    Stats->ChunkPhase1Seconds.assign(Bounds.size() - 1, 0.0);
  }
  switch (Kind) {
  case Backend::Imfant:
    runImfant(Input, Bounds, Recorder, Stats);
    break;
  case Backend::Dfa:
    runDfaFamily(DfaPolicy{*Automaton, simd::ops()}, Input, Bounds, Recorder,
                 Stats);
    break;
  case Backend::Stride2:
    runDfaFamily(StridedPolicy{*Strided, simd::ops()}, Input, Bounds,
                 Recorder, Stats);
    break;
  }
}

template <class Policy>
void InputParallelRun::runDfaFamily(const Policy &P, std::string_view Input,
                                    const std::vector<uint64_t> &Bounds,
                                    MatchRecorder &Recorder,
                                    InputParallelStats *Stats) const {
  const size_t NumChunks = Bounds.size() - 1;
  const uint64_t StreamEnd = Input.size();

  // Phase 1: chunk 0 scans normally from the start state; chunks 1..T-1
  // build per-start state maps (all results buffered — the user recorder
  // is only touched by the sequential join).
  std::vector<Match> LeadMatches;
  uint32_t LeadExit = 0;
  std::vector<ChunkStateMap> Maps(NumChunks);
  forEachChunk(Opts.UseThreadPool, Opts.Threads, NumChunks, [&](size_t I) {
    Timer Clock;
    const uint64_t Base = Bounds[I];
    const std::string_view Chunk = Input.substr(Base, Bounds[I + 1] - Base);
    if (I == 0) {
      LeadExit = scanChunkFrom(P, 0, Chunk, Base, StreamEnd,
                               [&](uint32_t Rule, uint64_t End) {
                                 LeadMatches.emplace_back(Rule, End);
                               });
    } else {
      const size_t Guard =
          Opts.MaxSpecWindowBytes
              ? std::min(Chunk.size(), Opts.MaxSpecWindowBytes)
              : Chunk.size();
      buildChunkStateMap(P, Chunk, Base, StreamEnd, Opts.MaxMapClasses,
                         std::min<size_t>(Guard, 4096), Maps[I]);
    }
    if (Stats)
      Stats->ChunkPhase1Seconds[I] = Clock.elapsedMs() / 1e3;
  });

  // Phase 2: thread the single live DFA state through the maps, emitting
  // each chunk's log chain — exactly the sequential match sequence.
  Timer JoinClock;
  for (const Match &M : LeadMatches)
    Recorder.onMatch(M.first, M.second);
  if (Stats)
    Stats->IsoMatches += LeadMatches.size();
  uint32_t State = LeadExit;
  for (size_t I = 1; I < NumChunks; ++I) {
    const ChunkStateMap &Map = Maps[I];
    const uint64_t Base = Bounds[I];
    const std::string_view Chunk = Input.substr(Base, Bounds[I + 1] - Base);
    if (Map.Ok) {
      uint32_t C = State;
      size_t From = 0;
      uint64_t Emitted = 0;
      while (true) {
        const ChunkStateMap::Cls &Cls = Map.Classes[C];
        for (size_t L = From; L < Cls.Log.size(); ++L)
          Recorder.onMatch(Cls.Log[L].first, Cls.Log[L].second);
        Emitted += Cls.Log.size() - From;
        if (Cls.MergedInto == NoClass) {
          State = Cls.Exit;
          break;
        }
        From = Cls.MergedAtParentSize;
        C = Cls.MergedInto;
      }
      if (Stats) {
        Stats->CarryMatches += Emitted;
        Stats->MaxAliveClasses =
            std::max(Stats->MaxAliveClasses, Map.MaxAlive);
        ++Stats->SpecTableChunks;
      }
    } else {
      // Collapse stalled: correct-but-serial re-scan of this chunk.
      uint64_t Emitted = 0;
      State = scanChunkFrom(P, State, Chunk, Base, StreamEnd,
                            [&](uint32_t Rule, uint64_t End) {
                              ++Emitted;
                              Recorder.onMatch(Rule, End);
                            });
      if (Stats) {
        Stats->CarryMatches += Emitted;
        ++Stats->RescanFallbackChunks;
        Stats->OverlapBytes += Chunk.size();
        Stats->MaxAliveClasses =
            std::max(Stats->MaxAliveClasses, Map.MaxAlive);
      }
    }
  }
  if (Stats)
    Stats->JoinSeconds = JoinClock.elapsedMs() / 1e3;
}
