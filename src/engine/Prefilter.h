//===- Prefilter.h - literal-prefiltered ruleset matcher --------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares PrefilterEngine, the Hyperscan-style decomposition baseline the
/// paper positions itself against (§I/§VII, Wang et al. NSDI'19): rules with
/// a mandatory literal and a bounded match length are matched lazily — an
/// Aho-Corasick pass over the stream finds literal hits, and each rule's own
/// automaton runs only inside a bounded window around its hits. Rules the
/// analysis cannot prefilter (anchored, literal-poor, or unbounded) fall
/// back to one merged MFSA scanned in full.
///
/// Match output is identical to running every rule everywhere: every match
/// of a prefiltered rule contains its mandatory literal, every literal
/// occurrence spawns a window wide enough (± MaxMatchLength) to contain all
/// matches through it, and overlapping windows are coalesced so no (rule,
/// end) pair reports twice.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_ENGINE_PREFILTER_H
#define MFSA_ENGINE_PREFILTER_H

#include "engine/AhoCorasick.h"
#include "engine/Imfant.h"
#include "support/Result.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mfsa {

/// Ruleset matcher combining literal prefiltering with MFSA fallback.
class PrefilterEngine {
public:
  /// Compiles \p Patterns (global ids = indices). Fails on malformed rules.
  /// \p MinLiteralLength tunes the analysis (shorter literals hit more
  /// often, widening the slow path).
  static Result<PrefilterEngine>
  create(const std::vector<std::string> &Patterns,
         uint32_t MinLiteralLength = 3);

  /// Scans \p Input with the same (rule, end offset) semantics as
  /// ImfantEngine over the full ruleset.
  void run(std::string_view Input, MatchRecorder &Recorder) const;

  size_t numPrefiltered() const { return PrefilteredRules.size(); }
  size_t numResidual() const { return NumResidualRules; }

  /// Attaches `prefilter.*` instrumentation: literal hits, confirm-window
  /// construction (count, coalesced length, bytes rescanned) and pass/drop
  /// outcomes, plus the prefiltered/residual rule split as gauges. The
  /// nested confirm and residual engines keep their own hooks detached;
  /// only aggregate prefilter behaviour is reported here.
  void setMetrics(obs::MetricsRegistry *Registry);

private:
  PrefilterEngine() = default;

  /// One literal-gated rule: its confirmation engine and window bound.
  struct PrefilteredRule {
    std::unique_ptr<ImfantEngine> Confirm;
    uint32_t MaxMatchLength = 0;
  };

  struct ScanMetricHandles {
    obs::Counter *Bytes = nullptr;
    obs::Counter *LiteralHits = nullptr;
    obs::Counter *Windows = nullptr;
    obs::Counter *WindowBytes = nullptr;
    obs::Counter *WindowsConfirmed = nullptr;
    obs::Counter *WindowsDropped = nullptr;
    obs::Counter *Matches = nullptr;
    obs::Histogram *WindowLen = nullptr;
  };

  std::vector<PrefilteredRule> PrefilteredRules;
  std::unique_ptr<AhoCorasick> Literals; ///< Index-aligned with the rules.
  std::unique_ptr<ImfantEngine> Residual;
  size_t NumResidualRules = 0;
  ScanMetricHandles Metrics;
};

} // namespace mfsa

#endif // MFSA_ENGINE_PREFILTER_H
