//===- Imfant.h - iMFAnt execution engine -----------------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares ImfantEngine, the execution engine of the paper's §V: an
/// extension of the iNFAnt NFA-matching algorithm that supports MFSAs.
///
/// Like iNFAnt, the engine pre-processes the automaton into a data structure
/// "linking each symbol in a standard 256-characters alphabet to the
/// transitions it enables" and keeps a state vector of active states; all
/// transitions enabled by the current symbol are evaluated per input
/// character. The iMFAnt extension stores, for each active state, "the
/// result of the activation function upon reaching it": a per-state rule
/// bitset J maintained according to the paper's rules (4)-(6):
///
///   (4) crossing a transition out of rule j's initial state activates j;
///   (5) arriving in a final state of an active rule j reports a match;
///   (6) rules whose automaton lacks the crossed transition are deactivated
///       — implemented as J(q1) ∩ bel(t), since `bel` records exactly which
///       rules own each transition.
///
/// Running a single-rule MFSA (merging factor M = 1) degenerates to the
/// original iNFAnt algorithm and serves as the paper's baseline.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_ENGINE_IMFANT_H
#define MFSA_ENGINE_IMFANT_H

#include "mfsa/Mfsa.h"

#include <cstdint>
#include <string_view>
#include <vector>

namespace mfsa {

namespace obs {
class Counter;
class Histogram;
class MetricsRegistry;
} // namespace obs

/// Collects matches emitted by an engine run. A match is a (rule, end
/// offset) pair; the engine already deduplicates pairs arising from multiple
/// simultaneous paths.
class MatchRecorder {
public:
  enum class Mode : uint8_t {
    CountOnly, ///< Only per-rule and total counters (benchmark default).
    Collect    ///< Also keep (global rule id, end offset) pairs, up to Cap.
  };

  explicit MatchRecorder(Mode Mode = Mode::CountOnly) : RecordMode(Mode) {}

  void onMatch(uint32_t GlobalRuleId, uint64_t EndOffset) {
    ++Total;
    if (GlobalRuleId >= PerRule.size())
      PerRule.resize(GlobalRuleId + 1, 0);
    ++PerRule[GlobalRuleId];
    if (RecordMode == Mode::Collect && Matches.size() < Cap)
      Matches.emplace_back(GlobalRuleId, EndOffset);
  }

  uint64_t total() const { return Total; }
  const std::vector<uint64_t> &perRule() const { return PerRule; }
  const std::vector<std::pair<uint32_t, uint64_t>> &matches() const {
    return Matches;
  }

  /// Maximum number of retained pairs in Collect mode.
  size_t Cap = size_t(1) << 22;

private:
  Mode RecordMode;
  uint64_t Total = 0;
  std::vector<uint64_t> PerRule;
  std::vector<std::pair<uint32_t, uint64_t>> Matches;
};

/// A sparse snapshot of a Scanner's activation configuration: the active
/// states paired with their rule bitsets, stored as one flat array of
/// Words-wide blocks. The input-parallel executor (engine/InputParallel.h)
/// uses these to hand the boundary frontier of one chunk to the scan of the
/// next and to seed speculative chunk scans from possible-rule masks.
struct ActivationSet {
  std::vector<StateId> States;
  std::vector<uint64_t> RuleBlocks; ///< States.size() × Words words.
  uint32_t Words = 0;

  bool empty() const { return States.empty(); }
  size_t size() const { return States.size(); }
  const uint64_t *block(size_t I) const { return &RuleBlocks[I * Words]; }
};

/// Per-run traversal statistics backing Table II (active-rule pressure).
struct RunStats {
  uint64_t Steps = 0;           ///< Input symbols consumed.
  double AvgActiveRules = 0.0;  ///< Mean |∪ J(q)| over steps.
  uint32_t MaxActiveRules = 0;  ///< Peak |∪ J(q)| over steps.
  uint32_t MaxFrontier = 0;     ///< Peak simultaneously-active states.
  uint64_t TransitionsEvaluated = 0; ///< Total per-symbol table entries seen.
};

/// The iMFAnt engine. Construction performs the algorithm's pre-processing
/// (symbol-indexed transition table, belonging pool, per-state activation
/// metadata); run() is const and allocates only per-run scratch, so one
/// engine may be shared across threads.
class ImfantEngine {
public:
  explicit ImfantEngine(const Mfsa &Z);

  /// Scans \p Input, reporting every (rule, end-offset) match into
  /// \p Recorder. When \p Stats is non-null, traversal statistics are
  /// collected (slightly slower; use a separate run for timing).
  void run(std::string_view Input, MatchRecorder &Recorder,
           RunStats *Stats = nullptr) const;

  /// Incremental scanning over a stream that arrives in chunks (network
  /// payloads, file blocks): the activation state carries across feed()
  /// calls, matches spanning chunk boundaries are found, and offsets are
  /// absolute. finish() flushes the `$`-anchored matches pending at the
  /// final offset. A Scanner borrows its engine, which must outlive it.
  ///
  /// \code
  ///   ImfantEngine::Scanner Scan(Engine);
  ///   while (auto Chunk = nextChunk())
  ///     Scan.feed(*Chunk, Recorder);
  ///   Scan.finish(Recorder);
  /// \endcode
  class Scanner {
  public:
    explicit Scanner(const ImfantEngine &Engine);

    /// Consumes \p Chunk; reports all matches ending inside it (except
    /// `$`-anchored ones, which wait for finish()).
    void feed(std::string_view Chunk, MatchRecorder &Recorder,
              RunStats *Stats = nullptr);

    /// Marks end-of-stream: reports `$`-anchored matches at the final
    /// offset. The scanner must not be fed afterwards.
    void finish(MatchRecorder &Recorder);

    /// Absolute offset consumed so far.
    uint64_t offset() const { return AbsoluteOffset; }

    /// Repositions the stream's absolute offset before the first feed():
    /// an input-parallel chunk scan starting at byte B must see non-zero
    /// offsets so `^`-anchored injection stays suppressed (the anchor gate
    /// keys off offset 0). Only valid on a scanner that has consumed
    /// nothing.
    void startAt(uint64_t Offset);

    /// Enables/disables rule injection (Eq. 4). With injection off the
    /// scanner is a pure propagator of the seeded configuration — no new
    /// match attempt begins — and feed() returns early once the frontier
    /// dies, since nothing can revive it; offset() then reports the death
    /// position rather than the full fed length.
    void setInjection(bool Enabled);

    /// Merges \p Config into the current activation configuration.
    void seedActivation(const ActivationSet &Config);

    /// Snapshots the live activation configuration (states carrying at
    /// least one active rule).
    ActivationSet captureActivation() const;

    /// True when no state is active. With injection disabled this is
    /// permanent: propagation can only shrink the frontier.
    bool frontierEmpty() const { return CurTouched.empty(); }

  private:
    /// The scan loop, compiled twice: SingleWord folds the per-rule-bitset
    /// loops to scalar ops for MFSAs of up to 64 rules — which covers every
    /// M = 1 baseline engine, keeping the Fig. 9 comparison fair.
    template <bool SingleWord>
    void feedLoop(std::string_view Chunk, MatchRecorder &Recorder,
                  RunStats *Stats);

    const ImfantEngine &Engine;
    uint64_t AbsoluteOffset = 0;
    bool Finished = false;
    bool InjectionEnabled = true;

    // Double-buffered state vector plus per-step scratch (see Imfant.cpp).
    std::vector<uint8_t> CurActive, NextActive;
    std::vector<uint64_t> CurJ, NextJ;
    std::vector<StateId> CurTouched, NextTouched;
    std::vector<uint64_t> MatchedThisStep;
    std::vector<uint32_t> MatchedDirtyWords;
    std::vector<uint64_t> ActivationScratch;
    std::vector<uint64_t> PendingAtEnd; ///< `$` rules matched at offset().

    // Scan-instrumentation state (only touched when the engine has metrics
    // attached and MFSA_METRICS_ENABLED builds the hooks in).
    uint32_t MetricsTick = 0;
    std::vector<uint64_t> MetricsUnionScratch;
  };

  uint32_t numStates() const { return NumStates; }
  uint32_t numRules() const { return NumRules; }
  /// 64-bit words per rule bitset (ActivationSet::Words for this engine).
  uint32_t ruleWords() const { return Words; }
  /// Local rule id -> dataset global rule id (the ids onMatch reports).
  const std::vector<uint32_t> &globalIds() const { return GlobalIds; }

  /// Per-state possible-rule masks: numStates() flat ruleWords()-wide
  /// blocks, each the union of bel over the state's incoming transitions.
  /// Any reachable activation J(q) is a subset of state q's mask — both
  /// propagation (Eq. 6's ∩ bel) and injection (Eq. 4's init ∩ bel) filter
  /// through an incoming transition's belonging set — so the input-parallel
  /// executor can seed speculative frontiers from these masks and later
  /// intersect recorded speculative outcomes with the true carried
  /// activation.
  std::vector<uint64_t> possibleRulesByState() const;

  /// Points scan instrumentation at \p Registry (nullptr detaches). The
  /// engine resolves its `imfant.*` metric handles here, once, so the scan
  /// loop only performs relaxed atomic adds — and only in builds with
  /// MFSA_METRICS_ENABLED (see obs/Metrics.h); elsewhere the hooks are
  /// compiled out and this call merely caches pointers. Not thread-safe
  /// against concurrent run() calls: attach before sharing the engine.
  void setMetrics(obs::MetricsRegistry *Registry);

  /// Bytes of the pre-processed matching structure (transition table plus
  /// activation metadata), a memory-footprint proxy for the benches.
  size_t footprintBytes() const;

private:
  friend class Scanner;

  /// Resolved metric handles; all null when detached. Distribution metrics
  /// (frontier size, active-set occupancy, transitions per byte) are
  /// sampled every obs::scanSampleEvery() bytes; counters stay exact.
  struct ScanMetricHandles {
    obs::Counter *Bytes = nullptr;
    obs::Counter *Transitions = nullptr;
    obs::Counter *Matches = nullptr;
    obs::Histogram *Frontier = nullptr;
    obs::Histogram *ActiveRules = nullptr;
    obs::Histogram *TransitionsPerByte = nullptr;
  };

  /// One entry of the per-symbol transition table.
  struct TableEntry {
    StateId From;
    StateId To;
    uint32_t BelIdx; ///< Index into BelPool (words offset = BelIdx * Words).
  };

  uint32_t NumStates = 0;
  uint32_t NumRules = 0;
  uint32_t Words = 0; ///< 64-bit words per rule bitset.

  /// Symbol-indexed table: Table[c] spans [Offsets[c], Offsets[c+1]).
  std::vector<TableEntry> Entries;
  std::vector<uint32_t> Offsets; ///< 257 entries.

  std::vector<uint64_t> BelPool; ///< Deduplicated belonging bitsets.

  /// Per-state activation metadata, flat Words-wide blocks.
  std::vector<uint64_t> InitialRules; ///< Rules whose initial state is q.
  std::vector<uint64_t> FinalRules;   ///< Rules for which q is final.
  std::vector<uint8_t> InitialAny;
  std::vector<uint8_t> FinalAny;

  /// Masks excluding anchored rules away from their anchor position.
  std::vector<uint64_t> NotAnchoredStartMask;
  std::vector<uint64_t> NotAnchoredEndMask;

  std::vector<uint32_t> GlobalIds; ///< Local rule -> dataset rule id.

  ScanMetricHandles Metrics;
};

} // namespace mfsa

#endif // MFSA_ENGINE_IMFANT_H
