//===- SparseImfant.h - state-major iMFAnt variant --------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares SparseImfantEngine, an alternative execution layout for MFSAs.
/// iNFAnt (and ImfantEngine) is *symbol-major*: per input character it scans
/// every transition that character enables — the GPU-friendly layout of the
/// original algorithm. This variant is *state-major*: it keeps an explicit
/// list of active states and walks only their outgoing transitions (CSR
/// adjacency), the layout a CPU engine would naturally choose when few
/// states are active. The ablation bench `abl_engine_variants` measures
/// where each layout wins as active-set pressure changes; the test suite
/// checks the two engines report identical matches.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_ENGINE_SPARSEIMFANT_H
#define MFSA_ENGINE_SPARSEIMFANT_H

#include "engine/Imfant.h"
#include "mfsa/Mfsa.h"

#include <cstdint>
#include <string_view>
#include <vector>

namespace mfsa {

/// State-major MFSA engine; match semantics identical to ImfantEngine.
class SparseImfantEngine {
public:
  explicit SparseImfantEngine(const Mfsa &Z);

  /// Scans \p Input, reporting (rule, end-offset) matches.
  void run(std::string_view Input, MatchRecorder &Recorder) const;

private:
  /// The scan loop, compiled twice like ImfantEngine's: SingleWord folds
  /// the rule-bitset work to scalar ops for MFSAs of up to 64 rules; wider
  /// MFSAs dispatch through the runtime-selected SIMD kernels.
  template <bool SingleWord>
  void runImpl(std::string_view Input, MatchRecorder &Recorder) const;

public:

  /// Attaches `sparse.*` scan instrumentation (see ImfantEngine::setMetrics
  /// for the contract; hooks compile out without MFSA_METRICS_ENABLED).
  void setMetrics(obs::MetricsRegistry *Registry);

  uint32_t numStates() const { return NumStates; }
  uint32_t numRules() const { return NumRules; }

private:
  struct ScanMetricHandles {
    obs::Counter *Bytes = nullptr;
    obs::Counter *Transitions = nullptr;
    obs::Counter *Matches = nullptr;
    obs::Histogram *Frontier = nullptr;
    obs::Histogram *ActiveRules = nullptr;
    obs::Histogram *TransitionsPerByte = nullptr;
  };

  /// One CSR adjacency entry.
  struct OutEdge {
    SymbolSet Label;
    StateId To;
    uint32_t BelIdx;
  };

  uint32_t NumStates = 0;
  uint32_t NumRules = 0;
  uint32_t Words = 0;

  std::vector<OutEdge> Edges;        ///< CSR payload.
  std::vector<uint32_t> EdgeOffsets; ///< NumStates + 1 row starts.
  std::vector<uint64_t> BelPool;

  std::vector<uint64_t> InitialRules;
  std::vector<uint64_t> FinalRules;
  std::vector<uint8_t> FinalAny;
  std::vector<StateId> InitialStates; ///< Unique states hosting some initial.
  std::vector<uint64_t> NotAnchoredStartMask;
  std::vector<uint64_t> NotAnchoredEndMask;
  std::vector<uint32_t> GlobalIds;

  ScanMetricHandles Metrics;
};

} // namespace mfsa

#endif // MFSA_ENGINE_SPARSEIMFANT_H
