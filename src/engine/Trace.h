//===- Trace.h - activation-function execution tracing ----------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares traceActivation(), a clarity-first re-execution of the iMFAnt
/// algorithm that records, per consumed symbol, every active state with its
/// activation set J and every match — the information the paper's Fig. 3
/// and Fig. 6 walkthroughs display. Intended for debugging merged rulesets
/// and for teaching the activation-function rules; the optimized engine is
/// ImfantEngine.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_ENGINE_TRACE_H
#define MFSA_ENGINE_TRACE_H

#include "mfsa/Mfsa.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mfsa {

/// The activation snapshot after consuming one input symbol.
struct TraceStep {
  uint64_t Offset = 0;    ///< Offset *after* consuming Symbol.
  unsigned char Symbol = 0;

  /// One active state with the rules J(q) active on it.
  struct ActiveEntry {
    StateId State = 0;
    std::vector<RuleId> ActiveRules;
  };
  std::vector<ActiveEntry> Active; ///< Sorted by state id.

  /// Matches reported at this offset: (local rule, global id).
  std::vector<std::pair<RuleId, uint32_t>> Matches;
};

/// Executes \p Z over \p Input with full bookkeeping. Match semantics are
/// identical to ImfantEngine (including `$` rules reporting only at the
/// final offset).
std::vector<TraceStep> traceActivation(const Mfsa &Z, std::string_view Input);

namespace obs {
class Counter;
class Histogram;
class MetricsRegistry;
} // namespace obs

/// Event consumer for a replayed activation trace. replayTrace() turns the
/// per-step snapshots of traceActivation() into a deterministic event
/// stream; per consumed symbol the order is fixed:
///
///   1. onRuleDeactivated — rules pruned by rule (6), ascending rule id;
///   2. onRuleActivated   — rules injected by rule (4), ascending rule id;
///   3. onMatch           — rule (5) matches at this offset, ascending;
///   4. onStep            — the step summary (offset, symbol, occupancy).
///
/// A rule is "active" at a step when it appears in any state's J set. All
/// callbacks default to no-ops so sinks override only what they consume.
class TraceSink {
public:
  virtual ~TraceSink() = default;

  virtual void onRuleDeactivated(RuleId /*Rule*/, uint64_t /*Offset*/) {}
  virtual void onRuleActivated(RuleId /*Rule*/, uint64_t /*Offset*/) {}
  virtual void onMatch(RuleId /*Rule*/, uint32_t /*GlobalId*/,
                       uint64_t /*Offset*/) {}
  virtual void onStep(uint64_t /*Offset*/, unsigned char /*Symbol*/,
                      uint32_t /*ActiveStates*/, uint32_t /*ActiveRules*/) {}
};

/// Replays \p Z over \p Input through \p Sink in the event order documented
/// on TraceSink. Built on traceActivation(), so it shares its exact match
/// semantics — and its clarity-over-speed cost model.
void replayTrace(const Mfsa &Z, std::string_view Input, TraceSink &Sink);

/// TraceSink that folds the event stream into `trace.*` metrics of a
/// MetricsRegistry: activation/deactivation/match/step counters plus the
/// per-step active-rule occupancy histogram. Unlike the engines' scan
/// hooks, tracing is a debugging path and is never compiled out.
class MetricsTraceSink : public TraceSink {
public:
  explicit MetricsTraceSink(obs::MetricsRegistry &Registry);

  void onRuleDeactivated(RuleId Rule, uint64_t Offset) override;
  void onRuleActivated(RuleId Rule, uint64_t Offset) override;
  void onMatch(RuleId Rule, uint32_t GlobalId, uint64_t Offset) override;
  void onStep(uint64_t Offset, unsigned char Symbol, uint32_t ActiveStates,
              uint32_t ActiveRules) override;

private:
  obs::Counter *Activations = nullptr;
  obs::Counter *Deactivations = nullptr;
  obs::Counter *Matches = nullptr;
  obs::Counter *Steps = nullptr;
  obs::Histogram *ActiveRulesHist = nullptr;
  obs::Histogram *ActiveStatesHist = nullptr;
};

/// Renders a trace in the style of the paper's Fig. 6 narration:
///
///   1) 'a' -> {3: J={0}}, {5: J={1}}   match: rule 1
///
std::string formatTrace(const Mfsa &Z, std::string_view Input);

} // namespace mfsa

#endif // MFSA_ENGINE_TRACE_H
