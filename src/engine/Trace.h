//===- Trace.h - activation-function execution tracing ----------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares traceActivation(), a clarity-first re-execution of the iMFAnt
/// algorithm that records, per consumed symbol, every active state with its
/// activation set J and every match — the information the paper's Fig. 3
/// and Fig. 6 walkthroughs display. Intended for debugging merged rulesets
/// and for teaching the activation-function rules; the optimized engine is
/// ImfantEngine.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_ENGINE_TRACE_H
#define MFSA_ENGINE_TRACE_H

#include "mfsa/Mfsa.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mfsa {

/// The activation snapshot after consuming one input symbol.
struct TraceStep {
  uint64_t Offset = 0;    ///< Offset *after* consuming Symbol.
  unsigned char Symbol = 0;

  /// One active state with the rules J(q) active on it.
  struct ActiveEntry {
    StateId State = 0;
    std::vector<RuleId> ActiveRules;
  };
  std::vector<ActiveEntry> Active; ///< Sorted by state id.

  /// Matches reported at this offset: (local rule, global id).
  std::vector<std::pair<RuleId, uint32_t>> Matches;
};

/// Executes \p Z over \p Input with full bookkeeping. Match semantics are
/// identical to ImfantEngine (including `$` rules reporting only at the
/// final offset).
std::vector<TraceStep> traceActivation(const Mfsa &Z, std::string_view Input);

/// Renders a trace in the style of the paper's Fig. 6 narration:
///
///   1) 'a' -> {3: J={0}}, {5: J={1}}   match: rule 1
///
std::string formatTrace(const Mfsa &Z, std::string_view Input);

} // namespace mfsa

#endif // MFSA_ENGINE_TRACE_H
