//===- Parallel.h - multi-threaded ruleset execution ------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares the multi-threaded executor of the paper's §VI-C2: the MFSAs (or
/// single FSAs, the naive baseline) of a benchmark are distributed "over a
/// pool of a fixed number of available threads. Each thread manages
/// different automata asynchronously, selecting an MFSA at a time from the
/// remaining ones until all are executed. The measured execution time
/// represents the latency to compute all the REs of a benchmark."
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_ENGINE_PARALLEL_H
#define MFSA_ENGINE_PARALLEL_H

#include "engine/Imfant.h"

#include <string_view>
#include <vector>

namespace mfsa {

/// Result of one parallel batch execution.
struct ParallelRunResult {
  double WallSeconds = 0.0;     ///< Latency to finish every automaton.
  uint64_t TotalMatches = 0;    ///< Sum over all automata.
};

/// Runs every engine in \p Engines over \p Input using \p NumThreads
/// workers pulling automata from a shared queue. \p Recorders, when
/// non-null, must have one entry per engine and receives that engine's
/// matches (counters only unless configured otherwise).
ParallelRunResult runParallel(const std::vector<ImfantEngine> &Engines,
                              std::string_view Input, unsigned NumThreads,
                              std::vector<MatchRecorder> *Recorders = nullptr);

} // namespace mfsa

#endif // MFSA_ENGINE_PARALLEL_H
