//===- Parallel.h - multi-threaded ruleset execution ------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares the multi-threaded executor of the paper's §VI-C2: the MFSAs (or
/// single FSAs, the naive baseline) of a benchmark are distributed "over a
/// pool of a fixed number of available threads. Each thread manages
/// different automata asynchronously, selecting an MFSA at a time from the
/// remaining ones until all are executed. The measured execution time
/// represents the latency to compute all the REs of a benchmark."
///
/// On top of the paper's executor this header adds the graceful-degradation
/// contract a latency-bound service needs: a wall-clock deadline and an
/// external cancellation token. A worker past the deadline abandons its
/// current automaton (at chunk granularity) and claims no further ones; the
/// batch then returns a *partial* ParallelRunResult — Degraded set, with a
/// per-engine completion bitmap — instead of stalling the whole batch on one
/// stuck automaton. See DESIGN.md "Degraded-mode semantics".
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_ENGINE_PARALLEL_H
#define MFSA_ENGINE_PARALLEL_H

#include "engine/Imfant.h"
#include "support/DynamicBitset.h"

#include <atomic>
#include <cstddef>
#include <string_view>
#include <vector>

namespace mfsa {

/// Degradation knobs for one parallel batch execution.
struct ParallelRunOptions {
  /// Wall-clock budget for the whole batch in milliseconds; 0 = none.
  /// Checked before claiming each automaton and between input chunks, so an
  /// expired deadline is honoured within one chunk's worth of scanning.
  double DeadlineMs = 0.0;

  /// Optional external cancellation token; when it becomes true workers
  /// stop exactly like an expired deadline. The flag is only read, with
  /// relaxed order: cancellation is advisory (workers may finish the chunk
  /// in flight), so no data is acquired through the load.
  const std::atomic<bool> *CancelToken = nullptr;

  /// Input-scan granularity of deadline/cancellation checks. Only used when
  /// a deadline or token is present; otherwise engines run the whole input
  /// in one pass with zero overhead.
  size_t ChunkBytes = size_t(1) << 16;
};

/// Result of one parallel batch execution. When Degraded is false the batch
/// is complete and the result is exactly the historical contract; when true,
/// TotalMatches covers completed engines only (an abandoned engine's
/// recorder may hold a partial prefix of its matches).
struct ParallelRunResult {
  double WallSeconds = 0.0;  ///< Latency to finish (or abandon) the batch.
  uint64_t TotalMatches = 0; ///< Sum over completed automata.
  bool Degraded = false;     ///< Deadline or cancellation cut the batch short.
  uint32_t NumCompleted = 0; ///< Engines that ran to completion.
  DynamicBitset Completed;   ///< Per-engine completion bitmap (size = #engines).
};

/// Runs every engine in \p Engines over \p Input using \p NumThreads
/// workers pulling automata from a shared queue. \p Recorders, when
/// non-null, must have one entry per engine and receives that engine's
/// matches (counters only unless configured otherwise). \p Options bounds
/// the batch; the default is unbounded, preserving historical behavior.
ParallelRunResult runParallel(const std::vector<ImfantEngine> &Engines,
                              std::string_view Input, unsigned NumThreads,
                              std::vector<MatchRecorder> *Recorders = nullptr,
                              const ParallelRunOptions &Options = {});

} // namespace mfsa

#endif // MFSA_ENGINE_PARALLEL_H
