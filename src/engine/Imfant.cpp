//===- Imfant.cpp - iMFAnt execution engine ----------------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "engine/Imfant.h"

#include "analysis/Verifier.h"
#include "obs/Metrics.h"
#include "support/SimdDispatch.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

using namespace mfsa;

namespace {

/// Hash for a Words-wide bitset block, used to deduplicate belonging sets.
struct BlockHash {
  size_t operator()(const std::vector<uint64_t> &Block) const {
    uint64_t H = 0x9e3779b97f4a7c15ULL;
    for (uint64_t W : Block) {
      H ^= W + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
      H *= 0xbf58476d1ce4e5b9ULL;
    }
    return static_cast<size_t>(H);
  }
};

} // namespace

ImfantEngine::ImfantEngine(const Mfsa &Z)
    : NumStates(Z.numStates()), NumRules(Z.numRules()),
      Words((Z.numRules() + 63) / 64) {
  assert(NumRules > 0 && "engine over an MFSA with no rules");

  // Verifier hook (LLVM-style): the pre-processing below indexes states and
  // copies belonging words without per-element checks, so a corrupt MFSA
  // must be rejected here, not silently turned into out-of-bounds reads.
  // Debug configurations run the full verifier; all builds run the cheap
  // structural subset the table construction actually relies on.
#ifdef MFSA_VERIFY_EACH_DEFAULT
  {
    std::string Violation = verifyMfsaError(Z);
    if (!Violation.empty()) {
      std::fprintf(stderr, "mfsa: ImfantEngine rejected MFSA: %s\n",
                   Violation.c_str());
      std::abort();
    }
  }
#else
  for (const MfsaTransition &T : Z.transitions())
    if (T.From >= NumStates || T.To >= NumStates ||
        T.Bel.size() != NumRules) {
      std::fprintf(stderr,
                   "mfsa: ImfantEngine rejected MFSA: %s\n",
                   verifyMfsaError(Z).c_str());
      std::abort();
    }
#endif

  // Deduplicate belonging sets into BelPool; MFSAs built from similar rules
  // reuse few distinct sets, so the pool stays small.
  std::unordered_map<std::vector<uint64_t>, uint32_t, BlockHash> PoolIndex;
  auto InternBel = [&](const DynamicBitset &Bel) -> uint32_t {
    std::vector<uint64_t> Block(Words, 0);
    std::copy(Bel.words().begin(), Bel.words().end(), Block.begin());
    auto It = PoolIndex.find(Block);
    if (It != PoolIndex.end())
      return It->second;
    uint32_t Idx = static_cast<uint32_t>(PoolIndex.size());
    PoolIndex.emplace(Block, Idx);
    BelPool.insert(BelPool.end(), Block.begin(), Block.end());
    return Idx;
  };

  // Bucket transitions per enabling symbol (the iNFAnt layout): first count,
  // then fill, keeping entries contiguous per symbol.
  std::vector<uint32_t> Counts(257, 0);
  for (const MfsaTransition &T : Z.transitions())
    T.Label.forEach([&](unsigned char C) { ++Counts[C]; });
  Offsets.assign(257, 0);
  for (unsigned C = 0; C < 256; ++C)
    Offsets[C + 1] = Offsets[C] + Counts[C];
  Entries.resize(Offsets[256]);
  std::vector<uint32_t> Fill(Offsets.begin(), Offsets.end() - 1);
  for (const MfsaTransition &T : Z.transitions()) {
    uint32_t BelIdx = InternBel(T.Bel);
    T.Label.forEach([&](unsigned char C) {
      Entries[Fill[C]++] = TableEntry{T.From, T.To, BelIdx};
    });
  }

  // Per-state activation metadata.
  InitialRules.assign(static_cast<size_t>(NumStates) * Words, 0);
  FinalRules.assign(static_cast<size_t>(NumStates) * Words, 0);
  InitialAny.assign(NumStates, 0);
  FinalAny.assign(NumStates, 0);
  NotAnchoredStartMask.assign(Words, ~0ULL);
  NotAnchoredEndMask.assign(Words, ~0ULL);
  GlobalIds.resize(NumRules);

  for (RuleId Rule = 0; Rule < NumRules; ++Rule) {
    const Mfsa::RuleInfo &Info = Z.rule(Rule);
    GlobalIds[Rule] = Info.GlobalId;
    InitialRules[static_cast<size_t>(Info.Initial) * Words + Rule / 64] |=
        1ULL << (Rule % 64);
    InitialAny[Info.Initial] = 1;
    for (StateId F : Info.Finals) {
      FinalRules[static_cast<size_t>(F) * Words + Rule / 64] |=
          1ULL << (Rule % 64);
      FinalAny[F] = 1;
    }
    if (Info.AnchoredStart)
      NotAnchoredStartMask[Rule / 64] &= ~(1ULL << (Rule % 64));
    if (Info.AnchoredEnd)
      NotAnchoredEndMask[Rule / 64] &= ~(1ULL << (Rule % 64));
  }
}

void ImfantEngine::setMetrics(obs::MetricsRegistry *Registry) {
  if (!Registry) {
    Metrics = ScanMetricHandles{};
    return;
  }
  Metrics.Bytes = &Registry->counter("imfant.bytes_scanned");
  Metrics.Transitions = &Registry->counter("imfant.transitions_touched");
  Metrics.Matches = &Registry->counter("imfant.matches");
  Metrics.Frontier =
      &Registry->histogram("imfant.frontier_size", obs::pow2Buckets(12));
  Metrics.ActiveRules =
      &Registry->histogram("imfant.active_rules", obs::pow2Buckets(12));
  Metrics.TransitionsPerByte =
      &Registry->histogram("imfant.transitions_per_byte",
                           obs::pow2Buckets(14));
  Registry->gauge("imfant.states").set(NumStates);
  Registry->gauge("imfant.rules").set(NumRules);
}

std::vector<uint64_t> ImfantEngine::possibleRulesByState() const {
  std::vector<uint64_t> Out(static_cast<size_t>(NumStates) * Words, 0);
  // Entries repeat each transition once per enabled symbol; the union is
  // idempotent, so no dedup pass is needed.
  for (const TableEntry &Entry : Entries) {
    uint64_t *Dst = &Out[static_cast<size_t>(Entry.To) * Words];
    const uint64_t *Bel = &BelPool[static_cast<size_t>(Entry.BelIdx) * Words];
    for (uint32_t I = 0; I < Words; ++I)
      Dst[I] |= Bel[I];
  }
  return Out;
}

size_t ImfantEngine::footprintBytes() const {
  return Entries.size() * sizeof(TableEntry) + Offsets.size() * 4 +
         (BelPool.size() + InitialRules.size() + FinalRules.size() +
          NotAnchoredStartMask.size() + NotAnchoredEndMask.size()) *
             8 +
         InitialAny.size() + FinalAny.size() + GlobalIds.size() * 4;
}

void ImfantEngine::run(std::string_view Input, MatchRecorder &Recorder,
                       RunStats *Stats) const {
  Scanner Scan(*this);
  Scan.feed(Input, Recorder, Stats);
  Scan.finish(Recorder);
}

//===----------------------------------------------------------------------===//
// Scanner
//===----------------------------------------------------------------------===//

ImfantEngine::Scanner::Scanner(const ImfantEngine &Engine)
    : Engine(Engine), CurActive(Engine.NumStates, 0),
      NextActive(Engine.NumStates, 0),
      CurJ(static_cast<size_t>(Engine.NumStates) * Engine.Words, 0),
      NextJ(static_cast<size_t>(Engine.NumStates) * Engine.Words, 0),
      MatchedThisStep(Engine.Words, 0), ActivationScratch(Engine.Words, 0),
      PendingAtEnd(Engine.Words, 0) {
  CurTouched.reserve(64);
  NextTouched.reserve(64);
}

void ImfantEngine::Scanner::startAt(uint64_t Offset) {
  assert(!Finished && AbsoluteOffset == 0 && CurTouched.empty() &&
         "startAt() on a scanner that already consumed input");
  AbsoluteOffset = Offset;
}

void ImfantEngine::Scanner::setInjection(bool Enabled) {
  InjectionEnabled = Enabled;
}

void ImfantEngine::Scanner::seedActivation(const ActivationSet &Config) {
  assert(Config.empty() || Config.Words == Engine.Words);
  const uint32_t W = Engine.Words;
  for (size_t I = 0; I < Config.States.size(); ++I) {
    const StateId S = Config.States[I];
    assert(S < Engine.NumStates && "activation state out of range");
    const uint64_t *Src = Config.block(I);
    bool Any = false;
    uint64_t *Dst = &CurJ[static_cast<size_t>(S) * W];
    for (uint32_t Wd = 0; Wd < W; ++Wd) {
      Dst[Wd] |= Src[Wd];
      Any = Any || Src[Wd] != 0;
    }
    if (Any && !CurActive[S]) {
      CurActive[S] = 1;
      CurTouched.push_back(S);
    }
  }
}

ActivationSet ImfantEngine::Scanner::captureActivation() const {
  ActivationSet Out;
  const uint32_t W = Engine.Words;
  Out.Words = W;
  for (StateId S : CurTouched) {
    const uint64_t *J = &CurJ[static_cast<size_t>(S) * W];
    bool Any = false;
    for (uint32_t Wd = 0; Wd < W; ++Wd)
      Any = Any || J[Wd] != 0;
    if (!Any)
      continue;
    Out.States.push_back(S);
    Out.RuleBlocks.insert(Out.RuleBlocks.end(), J, J + W);
  }
  return Out;
}

void ImfantEngine::Scanner::feed(std::string_view Chunk,
                                 MatchRecorder &Recorder, RunStats *Stats) {
  assert(!Finished && "feed() after finish()");
  if (!InjectionEnabled && CurTouched.empty())
    return; // A dead frontier with injection off can never revive.
#if MFSA_METRICS_ENABLED
  const uint64_t MatchesBefore = Recorder.total();
  const uint64_t OffsetBefore = AbsoluteOffset;
#endif
  if (Engine.Words == 1)
    feedLoop<true>(Chunk, Recorder, Stats);
  else
    feedLoop<false>(Chunk, Recorder, Stats);
#if MFSA_METRICS_ENABLED
  if (Engine.Metrics.Bytes) {
    // The injection-off early exit can consume less than the whole chunk.
    Engine.Metrics.Bytes->add(AbsoluteOffset - OffsetBefore);
    Engine.Metrics.Matches->add(Recorder.total() - MatchesBefore);
  }
#endif
}

template <bool SingleWord>
void ImfantEngine::Scanner::feedLoop(std::string_view Chunk,
                                     MatchRecorder &Recorder,
                                     RunStats *Stats) {
  const ImfantEngine &E = Engine;
  // With SingleWord the compiler folds every bitset loop to one scalar op;
  // wider MFSAs go through the runtime-dispatched SIMD kernels instead.
  // The table is resolved once per chunk so a test switching levels between
  // runs always scans with a consistent implementation.
  const uint32_t W = SingleWord ? 1u : E.Words;
  assert(W == E.Words && "dispatch mismatch");
  const simd::KernelTable &K = simd::ops();
  const bool Inject = InjectionEnabled;
  uint64_t *A = ActivationScratch.data();
  size_t Consumed = Chunk.size();

  uint64_t ActiveRuleSum = 0;
  uint32_t ActiveRuleMax = 0;
  uint32_t FrontierMax = 0;
  uint64_t TransitionsEvaluated = 0;
  std::vector<uint64_t> UnionJ;
  if (Stats)
    UnionJ.assign(W, 0);

#if MFSA_METRICS_ENABLED
  // Sampled distribution metrics: counters are exact, histograms observe
  // every SampleEvery-th byte (MetricsTick persists across chunks so the
  // cadence survives streaming feeds).
  const bool Observed = E.Metrics.Bytes != nullptr;
  const uint32_t SampleEvery = Observed ? obs::scanSampleEvery() : 0;
  uint64_t ChunkTransitions = 0;
  if (Observed && MetricsUnionScratch.size() != W)
    MetricsUnionScratch.assign(W, 0);
#endif

  for (size_t Pos = 0; Pos < Chunk.size(); ++Pos) {
    const unsigned char C = static_cast<unsigned char>(Chunk[Pos]);
    const bool AtStart = (AbsoluteOffset == 0);
    ++AbsoluteOffset;

    const uint32_t Begin = E.Offsets[C];
    const uint32_t End = E.Offsets[C + 1];
    if (Stats) {
      TransitionsEvaluated += End - Begin;
      std::fill(UnionJ.begin(), UnionJ.end(), 0);
    }

    // `$`-anchored matches only survive if this symbol turns out to be the
    // stream's last; restart the pending set for this offset.
    std::fill(PendingAtEnd.begin(), PendingAtEnd.end(), 0);

    for (uint32_t EIdx = Begin; EIdx < End; ++EIdx) {
      const TableEntry &Entry = E.Entries[EIdx];
      const bool FromActive = CurActive[Entry.From];
      const bool FromInitial = Inject && E.InitialAny[Entry.From];
      // iNFAnt enables a transition when it starts in an active or initial
      // state; everything else is skipped outright.
      if (!FromActive && !FromInitial)
        continue;

      const uint64_t *Bel = &E.BelPool[static_cast<size_t>(Entry.BelIdx) * W];
      bool Any = false;

      // Activation set crossing this transition: propagate J from the
      // source (rule pruning per Eq. 6 is the ∩ bel) and inject rules whose
      // match may begin here (Eq. 4), respecting start anchors away from
      // offset 0.
      if (FromActive) {
        const uint64_t *SrcJ = &CurJ[static_cast<size_t>(Entry.From) * W];
        if constexpr (SingleWord) {
          A[0] = SrcJ[0] & Bel[0];
          Any = A[0] != 0;
        } else {
          Any = K.AndInto(A, SrcJ, Bel, W);
        }
      } else {
        std::fill(ActivationScratch.begin(), ActivationScratch.end(), 0);
      }
      if (FromInitial) {
        const uint64_t *Init =
            &E.InitialRules[static_cast<size_t>(Entry.From) * W];
        if constexpr (SingleWord) {
          uint64_t Inject = Init[0] & Bel[0];
          if (!AtStart)
            Inject &= E.NotAnchoredStartMask[0];
          A[0] |= Inject;
          Any = Any || A[0];
        } else {
          Any = K.OrAndInto(A, Init, Bel,
                            AtStart ? nullptr : E.NotAnchoredStartMask.data(),
                            W);
        }
      }
      if (!Any)
        continue;

      // Arrival: merge the activation set into the destination state.
      uint64_t *DstJ = &NextJ[static_cast<size_t>(Entry.To) * W];
      if (!NextActive[Entry.To]) {
        NextActive[Entry.To] = 1;
        NextTouched.push_back(Entry.To);
      }
      if constexpr (SingleWord)
        DstJ[0] |= A[0];
      else
        K.OrWords(DstJ, A, W);

      // Match reporting (Eq. 5): active rules for which the destination is
      // final. Unanchored-end rules report immediately (minus pairs already
      // reported this step); `$`-anchored ones park in PendingAtEnd.
      if (E.FinalAny[Entry.To]) {
        const uint64_t *Fin = &E.FinalRules[static_cast<size_t>(Entry.To) * W];
        for (uint32_t I = 0; I < W; ++I) {
          uint64_t Arrived = A[I] & Fin[I];
          if (!Arrived)
            continue;
          PendingAtEnd[I] |= Arrived & ~E.NotAnchoredEndMask[I];
          uint64_t Hits =
              Arrived & E.NotAnchoredEndMask[I] & ~MatchedThisStep[I];
          if (!Hits)
            continue;
          if (!MatchedThisStep[I])
            MatchedDirtyWords.push_back(I);
          MatchedThisStep[I] |= Hits;
          while (Hits) {
            unsigned Bit = static_cast<unsigned>(__builtin_ctzll(Hits));
            Hits &= Hits - 1;
            Recorder.onMatch(E.GlobalIds[I * 64 + Bit], AbsoluteOffset);
          }
        }
      }
    }

    if (Stats) {
      for (StateId S : NextTouched)
        K.OrWords(UnionJ.data(), &NextJ[static_cast<size_t>(S) * W], W);
      uint32_t ActiveRules =
          static_cast<uint32_t>(K.CountWords(UnionJ.data(), W));
      ActiveRuleSum += ActiveRules;
      ActiveRuleMax = std::max(ActiveRuleMax, ActiveRules);
      FrontierMax =
          std::max(FrontierMax, static_cast<uint32_t>(NextTouched.size()));
    }

#if MFSA_METRICS_ENABLED
    if (Observed) {
      ChunkTransitions += End - Begin;
      if (++MetricsTick >= SampleEvery) {
        MetricsTick = 0;
        E.Metrics.Frontier->observe(NextTouched.size());
        E.Metrics.TransitionsPerByte->observe(End - Begin);
        // Active-set occupancy |∪ J(q)| — the paper's Table II quantity.
        std::fill(MetricsUnionScratch.begin(), MetricsUnionScratch.end(), 0);
        for (StateId S : NextTouched)
          K.OrWords(MetricsUnionScratch.data(),
                    &NextJ[static_cast<size_t>(S) * W], W);
        E.Metrics.ActiveRules->observe(
            K.CountWords(MetricsUnionScratch.data(), W));
      }
    }
#endif

    // Swap buffers; scrub only what the finished step touched.
    for (StateId S : CurTouched) {
      CurActive[S] = 0;
      std::memset(&CurJ[static_cast<size_t>(S) * W], 0, W * 8);
    }
    CurTouched.clear();
    std::swap(CurActive, NextActive);
    std::swap(CurJ, NextJ);
    std::swap(CurTouched, NextTouched);
    for (uint32_t I : MatchedDirtyWords)
      MatchedThisStep[I] = 0;
    MatchedDirtyWords.clear();

    // Pure-propagation mode: once the frontier dies nothing revives it, so
    // stop consuming (PendingAtEnd is necessarily empty — no arrivals
    // happened this step). offset() reports the death position.
    if (!Inject && CurTouched.empty()) {
      Consumed = Pos + 1;
      break;
    }
  }

#if MFSA_METRICS_ENABLED
  if (Observed)
    E.Metrics.Transitions->add(ChunkTransitions);
#endif

  if (Stats) {
    Stats->Steps += Consumed;
    Stats->TransitionsEvaluated += TransitionsEvaluated;
    Stats->MaxActiveRules = std::max(Stats->MaxActiveRules, ActiveRuleMax);
    Stats->MaxFrontier = std::max(Stats->MaxFrontier, FrontierMax);
    // Fold this chunk's mean into the running mean by weight.
    if (Stats->Steps > 0) {
      double PriorWeight = static_cast<double>(Stats->Steps - Consumed);
      Stats->AvgActiveRules =
          (Stats->AvgActiveRules * PriorWeight +
           static_cast<double>(ActiveRuleSum)) /
          static_cast<double>(Stats->Steps);
    }
  }
}

void ImfantEngine::Scanner::finish(MatchRecorder &Recorder) {
  assert(!Finished && "finish() called twice");
  Finished = true;
  for (uint32_t I = 0; I < Engine.Words; ++I) {
    uint64_t Hits = PendingAtEnd[I];
    while (Hits) {
      unsigned Bit = static_cast<unsigned>(__builtin_ctzll(Hits));
      Hits &= Hits - 1;
      Recorder.onMatch(Engine.GlobalIds[I * 64 + Bit], AbsoluteOffset);
    }
  }
}
