//===- Prefilter.cpp - literal-prefiltered ruleset matcher ---------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "engine/Prefilter.h"

#include "fsa/Builder.h"
#include "fsa/LiteralAnalysis.h"
#include "fsa/Passes.h"
#include "mfsa/Merge.h"
#include "obs/Metrics.h"
#include "regex/Parser.h"

#include <algorithm>

using namespace mfsa;

Result<PrefilterEngine>
PrefilterEngine::create(const std::vector<std::string> &Patterns,
                        uint32_t MinLiteralLength) {
  PrefilterEngine Engine;

  std::vector<std::string> LiteralList;
  std::vector<Nfa> ResidualFsas;
  std::vector<uint32_t> ResidualIds;

  for (size_t I = 0; I < Patterns.size(); ++I) {
    Result<Regex> Re = parseRegex(Patterns[I]);
    if (!Re)
      return Diag("rule " + std::to_string(I) + ": " + Re.diag().Message,
                  Re.diag().Offset);
    Result<Nfa> Built = buildNfa(*Re);
    if (!Built)
      return Diag("rule " + std::to_string(I) + ": " + Built.diag().Message,
                  Built.diag().Offset);
    Nfa Optimized = optimizeForMerging(*Built);

    PrefilterInfo Info = analyzeForPrefilter(*Re, Optimized,
                                             MinLiteralLength);
    if (!Info.Prefilterable) {
      ResidualFsas.push_back(std::move(Optimized));
      ResidualIds.push_back(static_cast<uint32_t>(I));
      continue;
    }

    PrefilteredRule Rule;
    Rule.MaxMatchLength = Info.MaxMatchLength;
    Mfsa Single = mergeFsas({Optimized}, {static_cast<uint32_t>(I)});
    Rule.Confirm = std::make_unique<ImfantEngine>(Single);
    Engine.PrefilteredRules.push_back(std::move(Rule));
    LiteralList.push_back(Info.Literal);
  }

  if (!LiteralList.empty())
    Engine.Literals = std::make_unique<AhoCorasick>(LiteralList);
  if (!ResidualFsas.empty()) {
    Mfsa Merged = mergeFsas(ResidualFsas, ResidualIds);
    Engine.Residual = std::make_unique<ImfantEngine>(Merged);
    Engine.NumResidualRules = ResidualFsas.size();
  }
  return Engine;
}

void PrefilterEngine::setMetrics(obs::MetricsRegistry *Registry) {
  if (!Registry) {
    Metrics = ScanMetricHandles{};
    return;
  }
  Metrics.Bytes = &Registry->counter("prefilter.bytes_scanned");
  Metrics.LiteralHits = &Registry->counter("prefilter.literal_hits");
  Metrics.Windows = &Registry->counter("prefilter.windows");
  Metrics.WindowBytes = &Registry->counter("prefilter.window_bytes");
  Metrics.WindowsConfirmed = &Registry->counter("prefilter.windows_confirmed");
  Metrics.WindowsDropped = &Registry->counter("prefilter.windows_dropped");
  Metrics.Matches = &Registry->counter("prefilter.matches");
  Metrics.WindowLen =
      &Registry->histogram("prefilter.window_len", obs::pow2Buckets(20));
  Registry->gauge("prefilter.prefiltered_rules")
      .set(static_cast<int64_t>(PrefilteredRules.size()));
  Registry->gauge("prefilter.residual_rules")
      .set(static_cast<int64_t>(NumResidualRules));
  // 1 when the literal stage's vectorized root-skip fast path is active
  // (few distinct literal start bytes; see AhoCorasick::scan).
  Registry->gauge("prefilter.literal_root_skip")
      .set(Literals && Literals->rootSkipEnabled() ? 1 : 0);
}

void PrefilterEngine::run(std::string_view Input,
                          MatchRecorder &Recorder) const {
#if MFSA_METRICS_ENABLED
  const bool Observed = Metrics.Bytes != nullptr;
  uint64_t MatchesBefore = Recorder.total();
  uint64_t LiteralHits = 0, Windows = 0, WindowBytes = 0;
  uint64_t WindowsConfirmed = 0, WindowsDropped = 0;
#endif

  // Residual rules scan the whole stream the ordinary way.
  if (Residual)
    Residual->run(Input, Recorder);

  if (!Literals || Input.empty()) {
#if MFSA_METRICS_ENABLED
    if (Observed) {
      Metrics.Bytes->add(Input.size());
      Metrics.Matches->add(Recorder.total() - MatchesBefore);
    }
#endif
    return;
  }

  // Phase 1: literal scan, collecting hit end-offsets per prefiltered rule.
  std::vector<std::vector<size_t>> Hits(PrefilteredRules.size());
  Literals->scan(Input, [&](uint32_t RuleIdx, size_t EndOffset) {
    Hits[RuleIdx].push_back(EndOffset);
  });
#if MFSA_METRICS_ENABLED
  if (Observed)
    for (const std::vector<size_t> &RuleHits : Hits)
      LiteralHits += RuleHits.size();
#endif

  // Phase 2: per rule, widen hits into ±MaxMatchLength windows, coalesce
  // overlaps (hits arrive already sorted), and confirm with the rule's own
  // automaton. Coalescing keeps windows disjoint, so no (rule, end) pair is
  // reported twice.
  for (size_t RuleIdx = 0; RuleIdx < PrefilteredRules.size(); ++RuleIdx) {
    const PrefilteredRule &Rule = PrefilteredRules[RuleIdx];
    const std::vector<size_t> &RuleHits = Hits[RuleIdx];
    if (RuleHits.empty())
      continue;
    const size_t Reach = Rule.MaxMatchLength;

    size_t Cursor = 0;
    while (Cursor < RuleHits.size()) {
      size_t Begin = RuleHits[Cursor] > Reach ? RuleHits[Cursor] - Reach : 0;
      size_t End = std::min(Input.size(), RuleHits[Cursor] + Reach);
      ++Cursor;
      while (Cursor < RuleHits.size() &&
             (RuleHits[Cursor] > Reach ? RuleHits[Cursor] - Reach : 0) <=
                 End) {
        End = std::min(Input.size(), RuleHits[Cursor] + Reach);
        ++Cursor;
      }

      MatchRecorder Window(MatchRecorder::Mode::Collect);
      Rule.Confirm->run(Input.substr(Begin, End - Begin), Window);
      for (const auto &[GlobalId, Offset] : Window.matches())
        Recorder.onMatch(GlobalId, Begin + Offset);
#if MFSA_METRICS_ENABLED
      if (Observed) {
        ++Windows;
        WindowBytes += End - Begin;
        Metrics.WindowLen->observe(End - Begin);
        if (Window.total() > 0)
          ++WindowsConfirmed;
        else
          ++WindowsDropped;
      }
#endif
    }
  }

#if MFSA_METRICS_ENABLED
  if (Observed) {
    Metrics.Bytes->add(Input.size());
    Metrics.LiteralHits->add(LiteralHits);
    Metrics.Windows->add(Windows);
    Metrics.WindowBytes->add(WindowBytes);
    Metrics.WindowsConfirmed->add(WindowsConfirmed);
    Metrics.WindowsDropped->add(WindowsDropped);
    Metrics.Matches->add(Recorder.total() - MatchesBefore);
  }
#endif
}
