//===- PlannedEngine.h - uniform execution of a planned engine --*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bridges the planner's decision (analysis/Planner.h) to the five concrete
/// engines: PlannedEngineSet builds whichever engine an EnginePlan chose and
/// exposes one uniform run() with ImfantEngine's (rule, end offset) match
/// semantics, so `imfant_run --engine auto`, the planner ablation bench, and
/// the differential harness can execute any plan through a single driver.
///
/// Construction can fail the way the underlying builders fail (DFA blowup,
/// stride-2 table cap, malformed prefilter patterns); callers get the
/// builder's diagnostic and typically fall back to the always-feasible dense
/// engine — the planner only proposes candidates its probes found feasible,
/// so a failure here means the probe budget and the real budget disagreed.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_ENGINE_PLANNEDENGINE_H
#define MFSA_ENGINE_PLANNEDENGINE_H

#include "analysis/Planner.h"
#include "engine/DfaEngine.h"
#include "engine/Imfant.h"
#include "engine/InputParallel.h"
#include "engine/MultiStride.h"
#include "engine/Prefilter.h"
#include "engine/SparseImfant.h"
#include "support/Result.h"

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

namespace mfsa {

/// The engines realizing one plan over one merged ruleset.
class PlannedEngineSet {
public:
  /// Builds \p Choice over the merged \p Mfsas. \p Patterns (the original
  /// dataset ruleset indexed by GlobalIds) is required only by
  /// Engine::Prefilter; Engine::Auto is not a buildable choice — resolve
  /// through the planner first.
  static Result<PlannedEngineSet>
  create(Engine Choice, const std::vector<Mfsa> &Mfsas,
         const std::vector<std::string> &Patterns = {});

  /// Convenience for plan consumers holding merge-ready per-rule FSAs:
  /// merges at the plan's factor (preserving \p GlobalIds) and builds the
  /// plan's engine.
  static Result<PlannedEngineSet>
  createFromRuleset(const EnginePlan &Plan,
                    const std::vector<Nfa> &OptimizedFsas,
                    const std::vector<uint32_t> &GlobalIds,
                    const std::vector<std::string> &Patterns = {},
                    const MergeOptions &Merge = {});

  /// Scans \p Input group-sequentially with ImfantEngine's match semantics.
  void run(std::string_view Input, MatchRecorder &Recorder) const;

  /// Input-parallel scan (engine/InputParallel.h): each group's input is
  /// split into \p Options.Threads chunks with frontier-set boundary
  /// stitching — byte-identical to run(). Engines without an input-parallel
  /// executor (sparse iMFAnt, prefilter) fall back to the sequential run().
  /// \p Stats, when non-null, accumulates chunk/speculation counters across
  /// groups (per-chunk timings are the LAST group's, the one the modeled
  /// wall should use when groups are timed individually).
  void runInputParallel(std::string_view Input, MatchRecorder &Recorder,
                        const InputParallelOptions &Options,
                        InputParallelStats *Stats = nullptr) const;

  Engine engine() const { return Choice; }
  size_t numGroups() const;

private:
  PlannedEngineSet() = default;

  Engine Choice = Engine::ImfantDense;
  std::vector<ImfantEngine> Dense;
  std::vector<SparseImfantEngine> Sparse;
  /// DfaEngine/StridedDfaEngine borrow their automata; unique_ptr keeps the
  /// referents address-stable across vector growth.
  std::vector<std::unique_ptr<Dfa>> Dfas;
  std::vector<DfaEngine> DfaRunners;
  std::vector<std::unique_ptr<StridedDfa>> Strided;
  std::vector<StridedDfaEngine> StridedRunners;
  std::optional<PrefilterEngine> Pre;
};

} // namespace mfsa

#endif // MFSA_ENGINE_PLANNEDENGINE_H
