//===- AhoCorasick.h - multi-literal string matcher -------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares AhoCorasick, the classic multi-pattern string matcher used as
/// the literal-prefilter substrate (see Prefilter.h). The paper's §I/§VII
/// discuss the decomposition approach of Hyperscan [Wang et al., NSDI'19]:
/// "exploits regex decomposition to split complex patterns into disjoint
/// sets of string and FSA components, thus alleviating the computation load
/// by delaying FSA execution until the string matching analysis is
/// required". This class is the string-matching half of that baseline.
///
/// The automaton is built goto/fail-style and then flattened into a dense
/// per-byte next table (one lookup per input byte); outputs are flattened
/// through the suffix links at build time, so scanning reports every
/// occurrence of every literal, including overlapping and nested ones.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_ENGINE_AHOCORASICK_H
#define MFSA_ENGINE_AHOCORASICK_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mfsa {

/// Dense Aho-Corasick automaton over byte strings.
class AhoCorasick {
public:
  /// Builds the automaton for \p Literals (empty literals are rejected by
  /// assertion; duplicates are allowed and each reports separately).
  explicit AhoCorasick(const std::vector<std::string> &Literals);

  /// Scans \p Input, invoking Fn(LiteralIndex, EndOffset) for every
  /// occurrence (end-exclusive offset, matching the library's match
  /// convention).
  template <typename CallableT>
  void scan(std::string_view Input, CallableT Fn) const {
    uint32_t State = 0;
    for (size_t Pos = 0; Pos < Input.size(); ++Pos) {
      State = Next[static_cast<size_t>(State) * 256 +
                   static_cast<unsigned char>(Input[Pos])];
      for (uint32_t OutIdx = OutputOffsets[State],
                    OutEnd = OutputOffsets[State + 1];
           OutIdx != OutEnd; ++OutIdx)
        Fn(Outputs[OutIdx], Pos + 1);
    }
  }

  uint32_t numNodes() const { return NumNodes; }
  size_t numLiterals() const { return NumLiterals; }

private:
  uint32_t NumNodes = 0;
  size_t NumLiterals = 0;
  std::vector<uint32_t> Next;          ///< NumNodes x 256 dense table.
  std::vector<uint32_t> Outputs;       ///< Flattened literal indices.
  std::vector<uint32_t> OutputOffsets; ///< NumNodes + 1 row starts.
};

} // namespace mfsa

#endif // MFSA_ENGINE_AHOCORASICK_H
