//===- AhoCorasick.h - multi-literal string matcher -------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares AhoCorasick, the classic multi-pattern string matcher used as
/// the literal-prefilter substrate (see Prefilter.h). The paper's §I/§VII
/// discuss the decomposition approach of Hyperscan [Wang et al., NSDI'19]:
/// "exploits regex decomposition to split complex patterns into disjoint
/// sets of string and FSA components, thus alleviating the computation load
/// by delaying FSA execution until the string matching analysis is
/// required". This class is the string-matching half of that baseline.
///
/// The automaton is built goto/fail-style and then flattened into a dense
/// per-byte next table (one lookup per input byte); outputs are flattened
/// through the suffix links at build time, so scanning reports every
/// occurrence of every literal, including overlapping and nested ones.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_ENGINE_AHOCORASICK_H
#define MFSA_ENGINE_AHOCORASICK_H

#include "support/SimdDispatch.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mfsa {

/// Dense Aho-Corasick automaton over byte strings.
class AhoCorasick {
public:
  /// Builds the automaton for \p Literals (empty literals are rejected by
  /// assertion; duplicates are allowed and each reports separately).
  explicit AhoCorasick(const std::vector<std::string> &Literals);

  /// Scans \p Input, invoking Fn(LiteralIndex, EndOffset) for every
  /// occurrence (end-exclusive offset, matching the library's match
  /// convention).
  ///
  /// While the automaton sits in the root state — the common case for a
  /// selective prefilter — no output is possible (literals are non-empty)
  /// and only bytes that begin some literal leave the root. When those
  /// start bytes are few (<= kMaxRootNeedles distinct values), the scan
  /// skips ahead to the next such byte with the dispatch table's
  /// vectorized byte-class search instead of walking the dense table
  /// byte-at-a-time.
  template <typename CallableT>
  void scan(std::string_view Input, CallableT Fn) const {
    const simd::KernelTable &K = simd::ops();
    const uint8_t *Data = reinterpret_cast<const uint8_t *>(Input.data());
    uint32_t State = 0;
    size_t Pos = 0;
    while (Pos < Input.size()) {
      if (State == 0 && RootSkipEnabled) {
        Pos += K.FindByteInSet(Data + Pos, Input.size() - Pos,
                               RootNeedles.data(),
                               static_cast<uint32_t>(RootNeedles.size()),
                               RootBitmap);
        if (Pos >= Input.size())
          break;
      }
      State = Next[static_cast<size_t>(State) * 256 + Data[Pos]];
      for (uint32_t OutIdx = OutputOffsets[State],
                    OutEnd = OutputOffsets[State + 1];
           OutIdx != OutEnd; ++OutIdx)
        Fn(Outputs[OutIdx], Pos + 1);
      ++Pos;
    }
  }

  uint32_t numNodes() const { return NumNodes; }
  size_t numLiterals() const { return NumLiterals; }

  /// True when the root-skip fast path is active (few distinct literal
  /// start bytes); exposed for tests and bench provenance.
  bool rootSkipEnabled() const { return RootSkipEnabled; }

  /// Vector paths compare against each needle; beyond this the skip loop
  /// would cost more than the dense table walk it replaces.
  static constexpr size_t kMaxRootNeedles = 8;

private:
  uint32_t NumNodes = 0;
  size_t NumLiterals = 0;
  std::vector<uint32_t> Next;          ///< NumNodes x 256 dense table.
  std::vector<uint32_t> Outputs;       ///< Flattened literal indices.
  std::vector<uint32_t> OutputOffsets; ///< NumNodes + 1 row starts.

  /// Root-skip acceleration state: the distinct bytes with a root
  /// transition, as a needle list for the vector kernels and as a 256-bit
  /// membership bitmap for the scalar tail.
  std::vector<uint8_t> RootNeedles;
  uint64_t RootBitmap[4] = {0, 0, 0, 0};
  bool RootSkipEnabled = false;
};

} // namespace mfsa

#endif // MFSA_ENGINE_AHOCORASICK_H
