//===- SparseImfant.cpp - state-major iMFAnt variant ----------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "engine/SparseImfant.h"

#include "analysis/Verifier.h"
#include "obs/Metrics.h"
#include "support/SimdDispatch.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

using namespace mfsa;

namespace {

struct BlockHash {
  size_t operator()(const std::vector<uint64_t> &Block) const {
    uint64_t H = 0x9e3779b97f4a7c15ULL;
    for (uint64_t W : Block) {
      H ^= W + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
      H *= 0xbf58476d1ce4e5b9ULL;
    }
    return static_cast<size_t>(H);
  }
};

} // namespace

SparseImfantEngine::SparseImfantEngine(const Mfsa &Z)
    : NumStates(Z.numStates()), NumRules(Z.numRules()),
      Words((Z.numRules() + 63) / 64) {
  assert(NumRules > 0 && "engine over an MFSA with no rules");

  // Verifier hook, mirroring ImfantEngine: the CSR construction indexes
  // states and copies belonging words unchecked (see Verifier.h).
#ifdef MFSA_VERIFY_EACH_DEFAULT
  {
    std::string Violation = verifyMfsaError(Z);
    if (!Violation.empty()) {
      std::fprintf(stderr, "mfsa: SparseImfantEngine rejected MFSA: %s\n",
                   Violation.c_str());
      std::abort();
    }
  }
#else
  for (const MfsaTransition &T : Z.transitions())
    if (T.From >= NumStates || T.To >= NumStates ||
        T.Bel.size() != NumRules) {
      std::fprintf(stderr,
                   "mfsa: SparseImfantEngine rejected MFSA: %s\n",
                   verifyMfsaError(Z).c_str());
      std::abort();
    }
#endif

  std::unordered_map<std::vector<uint64_t>, uint32_t, BlockHash> PoolIndex;
  auto InternBel = [&](const DynamicBitset &Bel) -> uint32_t {
    std::vector<uint64_t> Block(Words, 0);
    std::copy(Bel.words().begin(), Bel.words().end(), Block.begin());
    auto It = PoolIndex.find(Block);
    if (It != PoolIndex.end())
      return It->second;
    uint32_t Idx = static_cast<uint32_t>(PoolIndex.size());
    PoolIndex.emplace(Block, Idx);
    BelPool.insert(BelPool.end(), Block.begin(), Block.end());
    return Idx;
  };

  // CSR adjacency by source state.
  std::vector<uint32_t> Counts(NumStates + 1, 0);
  for (const MfsaTransition &T : Z.transitions())
    ++Counts[T.From + 1];
  EdgeOffsets.assign(NumStates + 1, 0);
  for (uint32_t S = 0; S < NumStates; ++S)
    EdgeOffsets[S + 1] = EdgeOffsets[S] + Counts[S + 1];
  Edges.resize(EdgeOffsets[NumStates]);
  std::vector<uint32_t> Fill(EdgeOffsets.begin(), EdgeOffsets.end() - 1);
  for (const MfsaTransition &T : Z.transitions())
    Edges[Fill[T.From]++] = OutEdge{T.Label, T.To, InternBel(T.Bel)};

  InitialRules.assign(static_cast<size_t>(NumStates) * Words, 0);
  FinalRules.assign(static_cast<size_t>(NumStates) * Words, 0);
  FinalAny.assign(NumStates, 0);
  NotAnchoredStartMask.assign(Words, ~0ULL);
  NotAnchoredEndMask.assign(Words, ~0ULL);
  GlobalIds.resize(NumRules);

  for (RuleId Rule = 0; Rule < NumRules; ++Rule) {
    const Mfsa::RuleInfo &Info = Z.rule(Rule);
    GlobalIds[Rule] = Info.GlobalId;
    uint64_t *Init = &InitialRules[static_cast<size_t>(Info.Initial) * Words];
    if (!(Init[Rule / 64] >> (Rule % 64) & 1) &&
        std::find(InitialStates.begin(), InitialStates.end(), Info.Initial) ==
            InitialStates.end())
      InitialStates.push_back(Info.Initial);
    Init[Rule / 64] |= 1ULL << (Rule % 64);
    for (StateId F : Info.Finals) {
      FinalRules[static_cast<size_t>(F) * Words + Rule / 64] |=
          1ULL << (Rule % 64);
      FinalAny[F] = 1;
    }
    if (Info.AnchoredStart)
      NotAnchoredStartMask[Rule / 64] &= ~(1ULL << (Rule % 64));
    if (Info.AnchoredEnd)
      NotAnchoredEndMask[Rule / 64] &= ~(1ULL << (Rule % 64));
  }
  std::sort(InitialStates.begin(), InitialStates.end());
  InitialStates.erase(
      std::unique(InitialStates.begin(), InitialStates.end()),
      InitialStates.end());
}

void SparseImfantEngine::setMetrics(obs::MetricsRegistry *Registry) {
  if (!Registry) {
    Metrics = ScanMetricHandles{};
    return;
  }
  Metrics.Bytes = &Registry->counter("sparse.bytes_scanned");
  Metrics.Transitions = &Registry->counter("sparse.transitions_touched");
  Metrics.Matches = &Registry->counter("sparse.matches");
  Metrics.Frontier =
      &Registry->histogram("sparse.frontier_size", obs::pow2Buckets(12));
  Metrics.ActiveRules =
      &Registry->histogram("sparse.active_rules", obs::pow2Buckets(12));
  Metrics.TransitionsPerByte =
      &Registry->histogram("sparse.transitions_per_byte",
                           obs::pow2Buckets(14));
  Registry->gauge("sparse.states").set(NumStates);
  Registry->gauge("sparse.rules").set(NumRules);
}

void SparseImfantEngine::run(std::string_view Input,
                             MatchRecorder &Recorder) const {
  if (Words == 1)
    runImpl<true>(Input, Recorder);
  else
    runImpl<false>(Input, Recorder);
}

template <bool SingleWord>
void SparseImfantEngine::runImpl(std::string_view Input,
                                 MatchRecorder &Recorder) const {
  // SingleWord lets the compiler fold the bitset loops to one scalar op
  // each; the wide path goes through the runtime-dispatched SIMD kernels.
  const uint32_t W = SingleWord ? 1u : Words;
  assert(W == Words && "dispatch mismatch");
  [[maybe_unused]] const simd::KernelTable &K = simd::ops();
  const size_t N = NumStates;

  std::vector<uint8_t> CurActive(N, 0), NextActive(N, 0);
  std::vector<uint64_t> CurJ(N * W, 0), NextJ(N * W, 0);
  std::vector<StateId> CurTouched, NextTouched;
  std::vector<uint64_t> MatchedThisStep(W, 0);
  std::vector<uint32_t> MatchedDirtyWords;
  std::vector<uint64_t> A(W, 0);

#if MFSA_METRICS_ENABLED
  const bool Observed = Metrics.Bytes != nullptr;
  const uint32_t SampleEvery = Observed ? obs::scanSampleEvery() : 0;
  uint32_t MetricsTick = 0;
  uint64_t TotalEdges = 0;
  uint64_t EdgesThisByte = 0;
  uint64_t MatchesBefore = Recorder.total();
  std::vector<uint64_t> UnionScratch(Observed ? W : 0, 0);
#endif

  // Walks one source state's out-edges for symbol C with activation-source
  // words SrcJ (already masked to the rules that may cross).
  auto Expand = [&](StateId From, const uint64_t *SrcJ, size_t Pos,
                    bool AtEnd) {
    const unsigned char C = static_cast<unsigned char>(Input[Pos]);
#if MFSA_METRICS_ENABLED
    if (Observed)
      EdgesThisByte += EdgeOffsets[From + 1] - EdgeOffsets[From];
#endif
    for (uint32_t EIdx = EdgeOffsets[From], EEnd = EdgeOffsets[From + 1];
         EIdx != EEnd; ++EIdx) {
      const OutEdge &Edge = Edges[EIdx];
      if (!Edge.Label.contains(C))
        continue;
      const uint64_t *Bel = &BelPool[static_cast<size_t>(Edge.BelIdx) * W];
      bool Any;
      if constexpr (SingleWord) {
        A[0] = SrcJ[0] & Bel[0];
        Any = A[0] != 0;
      } else {
        Any = K.AndInto(A.data(), SrcJ, Bel, W);
      }
      if (!Any)
        continue;
      uint64_t *DstJ = &NextJ[static_cast<size_t>(Edge.To) * W];
      if (!NextActive[Edge.To]) {
        NextActive[Edge.To] = 1;
        NextTouched.push_back(Edge.To);
      }
      if constexpr (SingleWord)
        DstJ[0] |= A[0];
      else
        K.OrWords(DstJ, A.data(), W);
      if (FinalAny[Edge.To]) {
        const uint64_t *Fin = &FinalRules[static_cast<size_t>(Edge.To) * W];
        for (uint32_t I = 0; I < W; ++I) {
          uint64_t Hits = A[I] & Fin[I] & ~MatchedThisStep[I];
          if (!AtEnd)
            Hits &= NotAnchoredEndMask[I];
          if (!Hits)
            continue;
          if (!MatchedThisStep[I])
            MatchedDirtyWords.push_back(I);
          MatchedThisStep[I] |= Hits;
          while (Hits) {
            unsigned Bit = static_cast<unsigned>(__builtin_ctzll(Hits));
            Hits &= Hits - 1;
            Recorder.onMatch(GlobalIds[I * 64 + Bit], Pos + 1);
          }
        }
      }
    }
  };

  std::vector<uint64_t> Scratch(W, 0);
  for (size_t Pos = 0; Pos < Input.size(); ++Pos) {
    const bool AtStart = (Pos == 0);
    const bool AtEnd = (Pos + 1 == Input.size());

    // Active states propagate their J...
    for (StateId S : CurTouched)
      Expand(S, &CurJ[static_cast<size_t>(S) * W], Pos, AtEnd);

    // ...and initial-bearing states inject fresh attempts (Eq. 4). A state
    // that is both active and initial is visited twice; the per-destination
    // OR and the per-step match dedup keep that sound.
    for (StateId S : InitialStates) {
      const uint64_t *Init = &InitialRules[static_cast<size_t>(S) * W];
      bool Any;
      if constexpr (SingleWord) {
        Scratch[0] = AtStart ? Init[0] : (Init[0] & NotAnchoredStartMask[0]);
        Any = Scratch[0] != 0;
      } else if (AtStart) {
        std::memcpy(Scratch.data(), Init, W * 8);
        Any = K.AnyWords(Scratch.data(), W);
      } else {
        Any = K.AndInto(Scratch.data(), Init, NotAnchoredStartMask.data(), W);
      }
      if (Any)
        Expand(S, Scratch.data(), Pos, AtEnd);
    }

#if MFSA_METRICS_ENABLED
    if (Observed) {
      TotalEdges += EdgesThisByte;
      if (++MetricsTick >= SampleEvery) {
        MetricsTick = 0;
        Metrics.Frontier->observe(NextTouched.size());
        Metrics.TransitionsPerByte->observe(EdgesThisByte);
        std::fill(UnionScratch.begin(), UnionScratch.end(), 0);
        for (StateId S : NextTouched)
          K.OrWords(UnionScratch.data(), &NextJ[static_cast<size_t>(S) * W],
                    W);
        Metrics.ActiveRules->observe(K.CountWords(UnionScratch.data(), W));
      }
      EdgesThisByte = 0;
    }
#endif

    for (StateId S : CurTouched) {
      CurActive[S] = 0;
      std::memset(&CurJ[static_cast<size_t>(S) * W], 0, W * 8);
    }
    CurTouched.clear();
    std::swap(CurActive, NextActive);
    std::swap(CurJ, NextJ);
    std::swap(CurTouched, NextTouched);
    for (uint32_t I : MatchedDirtyWords)
      MatchedThisStep[I] = 0;
    MatchedDirtyWords.clear();
  }

#if MFSA_METRICS_ENABLED
  if (Observed) {
    Metrics.Bytes->add(Input.size());
    Metrics.Transitions->add(TotalEdges);
    Metrics.Matches->add(Recorder.total() - MatchesBefore);
  }
#endif
}
