//===- InputParallel.h - input-parallel single-stream scanning --*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares InputParallelRun, the input-parallel execution axis the ROADMAP
/// pairs with the paper's automata-parallel §VI-C2 pool: split ONE input
/// into T chunks, scan the chunks independently, and stitch the results at
/// the cut points so the output is byte-identical to a sequential scan.
/// PaREM and *Simultaneous Finite Automata* (PAPERS.md) are the lineage;
/// the MFSA twist is that the speculative start set of a non-initial chunk
/// is an activation-set object the CostModel already bounds.
///
/// The stitching problem: a chunk i > 0 starts mid-stream, so the scanner
/// state at its first byte — the *boundary frontier* — is only known once
/// chunk i-1 finished. Each backend removes that serial dependency
/// differently:
///
///  - **iMFAnt** (dense activation bitsets). The per-byte step is affine in
///    the activation configuration: step(C) = inject ∪ post(C), and J-bits
///    propagate per rule independently through Eq. 6's ∩ bel. So a chunk's
///    full scan decomposes into (a) an *iso scan* — empty start, injection
///    on, which is exact for every match attempt beginning inside the chunk
///    — plus (b) the propagation of the incoming boundary frontier with
///    injection off. Phase 1 runs (a) per chunk in parallel, and bounds (b)
///    speculatively: a *death probe* propagates the union frontier (every
///    CostModel-reachable state seeded with its possible-rule mask) through
///    an overlap window; if it dies at offset D, monotonicity guarantees
///    any real carry dies by D, so the join only re-scans ≤ D boundary
///    bytes. If the probe survives and the fan-out is small, phase 1
///    records *per-start-state outcome tables* (matches + exit activation
///    per speculative start state, exact per rule by the affine argument),
///    making the join a masked table lookup. Otherwise the join falls back
///    to a sequential carry re-scan of that chunk — always correct, no
///    speedup for that boundary.
///
///  - **DFA / stride-2 DFA** (single live state). Chunks i > 0 run a
///    *state-map* scan: one class per possible start state, stepped in
///    lockstep, with classes that land on the same DFA state merged — each
///    class keeps an accept log plus a pointer into its surviving parent's
///    log, so every start state's full outcome remains reconstructible
///    (PaREM's per-start transition function, made cheap by collapse). The
///    join threads the real boundary state through the maps: walk the
///    class's merge chain emitting log segments — exactly the sequential
///    matches — and chain the exit state into the next chunk.
///
/// Offsets are absolute from construction (`Scanner::startAt`), rule ids
/// are the dataset global ids, per-chunk (rule, end) dedup mirrors the
/// sequential engine's per-step dedup, and `$`-anchored accepts fire only
/// at the true stream end — hence byte-identical output, which
/// tests/InputParallelTest.cpp asserts under adversarial chunkings.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_ENGINE_INPUTPARALLEL_H
#define MFSA_ENGINE_INPUTPARALLEL_H

#include "analysis/CostModel.h"
#include "engine/Imfant.h"
#include "engine/MultiStride.h"
#include "fsa/Determinize.h"

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mfsa {

namespace obs {
class MetricsRegistry;
} // namespace obs

/// Knobs for an input-parallel run.
struct InputParallelOptions {
  /// Target chunk count T. Chunk 0 runs the normal engine; chunks 1..T-1
  /// start speculatively. Values ≤ 1 degrade to a plain sequential scan.
  unsigned Threads = 2;
  /// Inputs shorter than Threads × MinChunkBytes use fewer chunks: below
  /// this size the per-boundary stitching overhead outweighs the split.
  size_t MinChunkBytes = 1 << 12;
  /// iMFAnt speculation: how many bytes the union-frontier death probe may
  /// consume before the chunk is declared speculation-hostile (0 = the
  /// whole chunk). This is the maximum boundary overlap window the join
  /// will re-scan when the probe dies.
  size_t MaxSpecWindowBytes = 1 << 16;
  /// iMFAnt speculation: per-start outcome tables are recorded only when
  /// the speculative frontier has at most this many start states — each
  /// start state costs one full chunk propagation in phase 1, so a large
  /// fan-out is priced out (the planner uses the static width bound for
  /// the same decision ahead of time).
  uint32_t MaxSpecStartStates = 8;
  /// DFA state-map guard: abandon a chunk's map (join re-scans it
  /// sequentially) if the live class count still exceeds this after the
  /// overlap window — collapse normally reaches ~1 class within bytes.
  uint32_t MaxMapClasses = 64;
  /// Test hook: explicit interior cut offsets (ascending, duplicates give
  /// empty chunks). Overrides Threads/MinChunkBytes chunking when set.
  std::vector<uint64_t> CutOverride;
  /// Optional static width facts for the engine's source Mfsa (iMFAnt
  /// backend only): restricts the speculative frontier to the
  /// antichain-reachable states and lets callers assert observed
  /// speculative frontiers against the bound. Must outlive the run.
  const WidthBound *Width = nullptr;
  /// Run phase 1 on a ThreadPool of Threads workers. Off by default: the
  /// scaling bench times each chunk in isolation on one core and reports
  /// the modeled (critical-path) wall, which is deterministic on any
  /// machine (docs/performance.md).
  bool UseThreadPool = false;
};

/// Per-run observability for the `parallel.input.*` metrics and the
/// scaling bench's modeled-speedup computation.
struct InputParallelStats {
  unsigned Threads = 0; ///< Chunk count actually used.
  uint64_t Chunks = 0;
  uint64_t SpecDeadChunks = 0;  ///< Probe died: bounded overlap re-scan.
  uint64_t SpecTableChunks = 0; ///< Join resolved by table lookup.
  uint64_t RescanFallbackChunks = 0; ///< Sequential carry re-scan.
  uint64_t OverlapBytes = 0;  ///< Boundary bytes re-scanned at joins.
  uint64_t SpecStartRuns = 0; ///< Per-start-state speculative scans.
  /// Peak frontier over speculative per-start runs and carry re-scans
  /// (iMFAnt): each starts inside a reachable configuration with injection
  /// off, so WidthBound::MaxActiveStates soundly dominates it — the
  /// differential harness asserts exactly that.
  uint32_t MaxSpecFrontier = 0;
  uint32_t MaxAliveClasses = 0; ///< Peak DFA state-map classes.
  uint64_t IsoMatches = 0;   ///< Matches found by in-chunk scans.
  uint64_t CarryMatches = 0; ///< Matches contributed by boundary carries.
  /// Per-chunk phase-1 seconds (index = chunk). With UseThreadPool off the
  /// chunks run serially but are timed independently, so
  /// max + JoinSeconds models the T-thread critical path.
  std::vector<double> ChunkPhase1Seconds;
  double JoinSeconds = 0.0; ///< Sequential stitching time.

  /// Critical-path wall model: slowest chunk plus the sequential join.
  double modeledWallSeconds() const;
};

/// Publishes \p Stats as `parallel.input.*` counters/gauges.
void recordInputParallelStats(const InputParallelStats &Stats,
                              obs::MetricsRegistry &Registry);

/// One input-parallel executor bound to a sequential engine. Construction
/// precomputes the speculative frontier (iMFAnt) or validates the automaton
/// (DFA family); run() is const and allocates only per-run scratch, so one
/// executor may be shared across threads. The referenced engine/automaton
/// must outlive the executor.
class InputParallelRun {
public:
  InputParallelRun(const ImfantEngine &Engine,
                   InputParallelOptions Options = {});
  InputParallelRun(const Dfa &Automaton, InputParallelOptions Options = {});
  InputParallelRun(const StridedDfa &Automaton,
                   InputParallelOptions Options = {});

  /// Scans \p Input, reporting every (global rule, end offset) match into
  /// \p Recorder — byte-identical to the bound sequential engine, in
  /// nondecreasing end-offset order. \p Stats, when non-null, additionally
  /// collects per-chunk traversal statistics (slightly slower on the
  /// iMFAnt backend; use a separate run for timing sequential baselines).
  void run(std::string_view Input, MatchRecorder &Recorder,
           InputParallelStats *Stats = nullptr) const;

  const InputParallelOptions &options() const { return Opts; }

private:
  enum class Backend : uint8_t { Imfant, Dfa, Stride2 };

  /// Cut positions (chunk boundaries including 0 and len) for \p Len bytes.
  std::vector<uint64_t> chunkBoundaries(size_t Len) const;

  void runImfant(std::string_view Input,
                 const std::vector<uint64_t> &Bounds, MatchRecorder &Recorder,
                 InputParallelStats *Stats) const;
  template <class Policy>
  void runDfaFamily(const Policy &P, std::string_view Input,
                    const std::vector<uint64_t> &Bounds,
                    MatchRecorder &Recorder, InputParallelStats *Stats) const;

  Backend Kind;
  InputParallelOptions Opts;

  // iMFAnt backend.
  const ImfantEngine *Imfant = nullptr;
  /// Speculative union frontier: every state the CostModel says can be
  /// active mid-stream, seeded with its possible-rule mask (a sound
  /// superset of any real boundary activation).
  ActivationSet SpecSeed;
  /// Dataset global id -> engine-local rule, for masking per-start outcome
  /// tables (recorded in global ids) against local activation bitsets.
  std::unordered_map<uint32_t, uint32_t> GlobalToLocal;

  // DFA-family backend.
  const Dfa *Automaton = nullptr;
  const StridedDfa *Strided = nullptr;
};

} // namespace mfsa

#endif // MFSA_ENGINE_INPUTPARALLEL_H
