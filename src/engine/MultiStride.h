//===- MultiStride.h - 2-stride DFA transformation --------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the multi-stride baseline the paper's related work discusses
/// (§VII, [11][28][40]): a k-stride automaton consumes k symbols per
/// state-traversal, trading table size for fewer memory touches per byte.
/// This module squares a scanning Dfa into stride 2:
///
///   Next2[s][a1, a2] = Next[Next[s][a1]][a2]
///
/// with the mid-stride accept set recorded per (state, first atom) so
/// matches ending at odd offsets are still reported exactly. The stride-2
/// table is NumStates x NumAtoms^2 — the quadratic label-combination blowup
/// the paper cites as the approach's limiting factor, measured by
/// bench/abl_multistride.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_ENGINE_MULTISTRIDE_H
#define MFSA_ENGINE_MULTISTRIDE_H

#include "engine/Imfant.h"
#include "fsa/Determinize.h"
#include "support/Result.h"
#include "support/SimdDispatch.h"

#include <cstdint>
#include <string_view>
#include <vector>

namespace mfsa {

/// A stride-2 scanning DFA derived from a Dfa.
struct StridedDfa {
  uint32_t NumStates = 0;
  uint32_t NumAtoms = 0; ///< Single-symbol atoms; pairs index as a1*NumAtoms+a2.
  uint32_t NumRules = 0;

  /// Next2[State * NumAtoms^2 + a1 * NumAtoms + a2].
  std::vector<uint32_t> Next2;
  std::vector<uint8_t> AtomOfByte;

  /// Mid[State * NumAtoms + a1] = state after the first half-step, used for
  /// mid-stride accept lookup and for the odd trailing byte.
  std::vector<uint32_t> Mid;

  /// MidAcceptAny[State * NumAtoms + a1] — nonzero when the half-step state
  /// accepts something, so the hot loop touches Mid only on real mid-stride
  /// matches (the trick that preserves the stride advantage).
  std::vector<uint8_t> MidAcceptAny;

  std::vector<DynamicBitset> Accept;
  std::vector<DynamicBitset> AcceptAtEnd;
  std::vector<uint32_t> GlobalIds;

  size_t footprintBytes() const {
    return Next2.size() * 4 + Mid.size() * 4 + AtomOfByte.size() +
           GlobalIds.size() * 4 +
           (Accept.empty()
                ? 0
                : Accept.size() * Accept.front().words().size() * 8 * 2);
  }
};

/// Options guarding the quadratic table growth.
struct StrideOptions {
  /// Reject when NumStates * NumAtoms^2 exceeds this many table entries.
  uint64_t MaxTableEntries = 1ull << 26;
};

/// Squares \p Automaton into stride 2; fails when the pair table would
/// exceed Options.MaxTableEntries (the blowup is the measured result).
Result<StridedDfa> makeStride2(const Dfa &Automaton,
                               const StrideOptions &Options = {});

/// Executes a stride-2 DFA with the library's (rule, end-offset) match
/// semantics; equivalent to DfaEngine over the original automaton.
class StridedDfaEngine {
public:
  explicit StridedDfaEngine(const StridedDfa &Automaton)
      : Automaton(Automaton) {}

  void run(std::string_view Input, MatchRecorder &Recorder) const;

  /// Attaches `stride2.*` scan instrumentation: exact stride / table-touch
  /// counters (including mid-stride accept probes, the stride tax) plus the
  /// degenerate occupancy histograms every engine shares.
  void setMetrics(obs::MetricsRegistry *Registry);

private:
  struct ScanMetricHandles {
    obs::Counter *Bytes = nullptr;
    obs::Counter *Strides = nullptr;
    obs::Counter *Transitions = nullptr;
    obs::Counter *MidProbes = nullptr;
    obs::Counter *Matches = nullptr;
    obs::Histogram *Frontier = nullptr;
    obs::Histogram *ActiveRules = nullptr;
    obs::Histogram *TransitionsPerByte = nullptr;
  };

  /// \p K is the per-scan resolved SIMD kernel table (the accept probes
  /// run once per stride, so the caller hoists the dispatch load).
  void reportAt(const simd::KernelTable &K, uint32_t State, size_t EndOffset,
                bool AtEnd, MatchRecorder &Recorder) const;

  const StridedDfa &Automaton;
  ScanMetricHandles Metrics;
};

} // namespace mfsa

#endif // MFSA_ENGINE_MULTISTRIDE_H
