//===- AhoCorasick.cpp - multi-literal string matcher ---------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "engine/AhoCorasick.h"

#include <cassert>
#include <map>
#include <queue>

using namespace mfsa;

AhoCorasick::AhoCorasick(const std::vector<std::string> &Literals)
    : NumLiterals(Literals.size()) {
  // Build the trie with sparse child maps first; densify afterwards.
  struct TrieNode {
    std::map<unsigned char, uint32_t> Children;
    std::vector<uint32_t> Ends; ///< Literals terminating here.
    uint32_t Fail = 0;
  };
  std::vector<TrieNode> Trie(1);

  for (size_t L = 0; L < Literals.size(); ++L) {
    const std::string &Literal = Literals[L];
    assert(!Literal.empty() && "empty prefilter literal");
    uint32_t Node = 0;
    for (char C : Literal) {
      unsigned char Byte = static_cast<unsigned char>(C);
      auto It = Trie[Node].Children.find(Byte);
      if (It == Trie[Node].Children.end()) {
        uint32_t Fresh = static_cast<uint32_t>(Trie.size());
        Trie[Node].Children.emplace(Byte, Fresh);
        Trie.emplace_back();
        Node = Fresh;
      } else {
        Node = It->second;
      }
    }
    Trie[Node].Ends.push_back(static_cast<uint32_t>(L));
  }

  NumNodes = static_cast<uint32_t>(Trie.size());
  Next.assign(static_cast<size_t>(NumNodes) * 256, 0);

  // BFS: fail links, flattened outputs (own ends plus the fail target's
  // already-flattened outputs), and the dense next table (goto where a
  // child exists, fail-resolved transition otherwise).
  std::vector<std::vector<uint32_t>> Flattened(NumNodes);
  std::queue<uint32_t> Work;

  Flattened[0] = Trie[0].Ends;
  for (unsigned Byte = 0; Byte < 256; ++Byte) {
    auto It = Trie[0].Children.find(static_cast<unsigned char>(Byte));
    if (It != Trie[0].Children.end()) {
      Trie[It->second].Fail = 0;
      Next[Byte] = It->second;
      Work.push(It->second);
    } else {
      Next[Byte] = 0;
    }
  }

  while (!Work.empty()) {
    uint32_t Node = Work.front();
    Work.pop();
    uint32_t Fail = Trie[Node].Fail;
    Flattened[Node] = Trie[Node].Ends;
    Flattened[Node].insert(Flattened[Node].end(), Flattened[Fail].begin(),
                           Flattened[Fail].end());
    for (unsigned Byte = 0; Byte < 256; ++Byte) {
      size_t Row = static_cast<size_t>(Node) * 256 + Byte;
      auto It = Trie[Node].Children.find(static_cast<unsigned char>(Byte));
      if (It != Trie[Node].Children.end()) {
        Trie[It->second].Fail =
            Next[static_cast<size_t>(Fail) * 256 + Byte];
        Next[Row] = It->second;
        Work.push(It->second);
      } else {
        Next[Row] = Next[static_cast<size_t>(Fail) * 256 + Byte];
      }
    }
  }

  OutputOffsets.assign(NumNodes + 1, 0);
  for (uint32_t Node = 0; Node < NumNodes; ++Node)
    OutputOffsets[Node + 1] =
        OutputOffsets[Node] + static_cast<uint32_t>(Flattened[Node].size());
  Outputs.resize(OutputOffsets[NumNodes]);
  for (uint32_t Node = 0; Node < NumNodes; ++Node)
    std::copy(Flattened[Node].begin(), Flattened[Node].end(),
              Outputs.begin() + OutputOffsets[Node]);

  // Root-skip acceleration: collect the bytes that leave the root. While
  // scanning from the root every other byte provably stays there with no
  // output, so the scan loop may jump straight to the next start byte.
  for (unsigned Byte = 0; Byte < 256; ++Byte)
    if (Next[Byte] != 0) {
      RootNeedles.push_back(static_cast<uint8_t>(Byte));
      RootBitmap[Byte >> 6] |= 1ULL << (Byte & 63);
    }
  RootSkipEnabled =
      !RootNeedles.empty() && RootNeedles.size() <= kMaxRootNeedles;
}
