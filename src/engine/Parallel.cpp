//===- Parallel.cpp - multi-threaded ruleset execution -----------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "engine/Parallel.h"

#include "support/Timer.h"

#include <atomic>
#include <cassert>
#include <cstdio>
#include <thread>

using namespace mfsa;

ParallelRunResult mfsa::runParallel(const std::vector<ImfantEngine> &Engines,
                                    std::string_view Input,
                                    unsigned NumThreads,
                                    std::vector<MatchRecorder> *Recorders,
                                    const ParallelRunOptions &Options) {
  assert((!Recorders || Recorders->size() == Engines.size()) &&
         "one recorder per engine");
  // Release-safe twin of the assert above (every engine was already
  // verified at construction; the recorder vector is the one input this
  // batch-level hook can still get wrong): refuse the batch instead of
  // indexing recorders out of range from worker threads.
  if (Recorders && Recorders->size() != Engines.size()) {
    std::fprintf(stderr,
                 "mfsa: runParallel rejected batch: %zu recorder(s) for %zu "
                 "engine(s)\n",
                 Recorders->size(), Engines.size());
    return {};
  }
  if (NumThreads == 0)
    NumThreads = 1;

  const bool Bounded = Options.DeadlineMs > 0 || Options.CancelToken;
  const size_t ChunkBytes = Options.ChunkBytes ? Options.ChunkBytes
                                               : size_t(1) << 16;

  Timer Wall;
  auto Expired = [&] {
    if (Options.DeadlineMs > 0 && Wall.elapsedMs() > Options.DeadlineMs)
      return true;
    return Options.CancelToken &&
           Options.CancelToken->load(std::memory_order_relaxed);
  };

  // Work-stealing by atomic index: each worker claims the next unexecuted
  // automaton until the queue drains (§VI-C2) — or, in bounded runs, until
  // the deadline/cancellation token fires. Completion is tracked per worker
  // and folded into one bitmap after the join, keeping the hot path free of
  // shared writes.
  //
  // Both atomics are relaxed: NextEngine only hands out indices into the
  // immutable Engines array (nothing is published through the claim), and
  // TotalMatches is a pure tally read only after the join below — the
  // thread join is the synchronization point, not the atomic.
  std::atomic<size_t> NextEngine{0};
  std::atomic<uint64_t> TotalMatches{0};
  std::vector<std::vector<size_t>> CompletedPerWorker(NumThreads);

  // Runs one engine; \returns false if abandoned mid-input on expiry.
  auto RunOne = [&](size_t Index, MatchRecorder &Recorder) {
    if (!Bounded) {
      Engines[Index].run(Input, Recorder);
      return true;
    }
    // Bounded: feed the scanner chunk by chunk so expiry is honoured inside
    // long inputs, not just between automata. run() is exactly feed+finish,
    // so a completed chunked scan reports the same matches.
    ImfantEngine::Scanner Scan(Engines[Index]);
    for (size_t Pos = 0; Pos < Input.size(); Pos += ChunkBytes) {
      if (Pos != 0 && Expired())
        return false;
      Scan.feed(Input.substr(Pos, ChunkBytes), Recorder);
    }
    Scan.finish(Recorder);
    return true;
  };

  auto Worker = [&](unsigned WorkerId) {
    for (;;) {
      if (Bounded && Expired())
        return;
      size_t Index = NextEngine.fetch_add(1, std::memory_order_relaxed);
      if (Index >= Engines.size())
        return;
      bool Finished;
      uint64_t Matches;
      if (Recorders) {
        Finished = RunOne(Index, (*Recorders)[Index]);
        Matches = (*Recorders)[Index].total();
      } else {
        MatchRecorder Local;
        Finished = RunOne(Index, Local);
        Matches = Local.total();
      }
      if (!Finished)
        return;
      TotalMatches.fetch_add(Matches, std::memory_order_relaxed);
      CompletedPerWorker[WorkerId].push_back(Index);
    }
  };

  std::vector<std::thread> Threads;
  Threads.reserve(NumThreads);
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back(Worker, T);
  for (std::thread &T : Threads)
    T.join();

  ParallelRunResult Result;
  Result.WallSeconds = Wall.elapsedSec();
  Result.TotalMatches = TotalMatches.load();
  Result.Completed = DynamicBitset(static_cast<unsigned>(Engines.size()));
  for (const std::vector<size_t> &Done : CompletedPerWorker)
    for (size_t Index : Done) {
      Result.Completed.set(static_cast<unsigned>(Index));
      ++Result.NumCompleted;
    }
  Result.Degraded = Result.NumCompleted < Engines.size();
  return Result;
}
