//===- Parallel.cpp - multi-threaded ruleset execution -----------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "engine/Parallel.h"

#include "support/Timer.h"

#include <atomic>
#include <cassert>
#include <thread>

using namespace mfsa;

ParallelRunResult mfsa::runParallel(const std::vector<ImfantEngine> &Engines,
                                    std::string_view Input,
                                    unsigned NumThreads,
                                    std::vector<MatchRecorder> *Recorders) {
  assert((!Recorders || Recorders->size() == Engines.size()) &&
         "one recorder per engine");
  if (NumThreads == 0)
    NumThreads = 1;

  // Work-stealing by atomic index: each worker claims the next unexecuted
  // automaton until the queue drains (§VI-C2).
  std::atomic<size_t> NextEngine{0};
  std::atomic<uint64_t> TotalMatches{0};

  auto Worker = [&] {
    for (;;) {
      size_t Index = NextEngine.fetch_add(1, std::memory_order_relaxed);
      if (Index >= Engines.size())
        return;
      if (Recorders) {
        Engines[Index].run(Input, (*Recorders)[Index]);
        TotalMatches.fetch_add((*Recorders)[Index].total(),
                               std::memory_order_relaxed);
      } else {
        MatchRecorder Local;
        Engines[Index].run(Input, Local);
        TotalMatches.fetch_add(Local.total(), std::memory_order_relaxed);
      }
    }
  };

  Timer Wall;
  std::vector<std::thread> Threads;
  Threads.reserve(NumThreads);
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back(Worker);
  for (std::thread &T : Threads)
    T.join();

  ParallelRunResult Result;
  Result.WallSeconds = Wall.elapsedSec();
  Result.TotalMatches = TotalMatches.load();
  return Result;
}
