//===- Trace.cpp - activation-function execution tracing -----------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "engine/Trace.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <map>

using namespace mfsa;

std::vector<TraceStep> mfsa::traceActivation(const Mfsa &Z,
                                             std::string_view Input) {
  const uint32_t NumRules = Z.numRules();

  // Per-rule metadata.
  std::vector<DynamicBitset> InitialAt(Z.numStates(),
                                       DynamicBitset(NumRules));
  std::vector<DynamicBitset> FinalAt(Z.numStates(), DynamicBitset(NumRules));
  DynamicBitset NotAnchoredStart(NumRules), NotAnchoredEnd(NumRules);
  for (RuleId Rule = 0; Rule < NumRules; ++Rule) {
    const Mfsa::RuleInfo &Info = Z.rule(Rule);
    InitialAt[Info.Initial].set(Rule);
    for (StateId F : Info.Finals)
      FinalAt[F].set(Rule);
    if (!Info.AnchoredStart)
      NotAnchoredStart.set(Rule);
    if (!Info.AnchoredEnd)
      NotAnchoredEnd.set(Rule);
  }

  std::map<StateId, DynamicBitset> Current;
  std::vector<TraceStep> Trace;
  Trace.reserve(Input.size());

  for (size_t Pos = 0; Pos < Input.size(); ++Pos) {
    const unsigned char C = static_cast<unsigned char>(Input[Pos]);
    const bool AtStart = (Pos == 0);
    const bool AtEnd = (Pos + 1 == Input.size());

    std::map<StateId, DynamicBitset> Next;
    DynamicBitset Matched(NumRules);

    for (const MfsaTransition &T : Z.transitions()) {
      if (!T.Label.contains(C))
        continue;
      // Rule (6): propagation prunes rules not owning this transition.
      DynamicBitset Crossing(NumRules);
      auto It = Current.find(T.From);
      if (It != Current.end())
        Crossing = It->second & T.Bel;
      // Rule (4): rules whose initial state is the source inject here.
      DynamicBitset Inject = InitialAt[T.From] & T.Bel;
      if (!AtStart)
        Inject &= NotAnchoredStart;
      Crossing |= Inject;
      if (Crossing.none())
        continue;

      auto [Slot, Inserted] = Next.emplace(T.To, Crossing);
      if (!Inserted)
        Slot->second |= Crossing;

      // Rule (5): arrival in a final state of an active rule is a match.
      DynamicBitset Hits = Crossing & FinalAt[T.To];
      if (!AtEnd)
        Hits &= NotAnchoredEnd;
      Matched |= Hits;
    }

    TraceStep Step;
    Step.Offset = Pos + 1;
    Step.Symbol = C;
    for (const auto &[State, Rules] : Next) {
      TraceStep::ActiveEntry Entry;
      Entry.State = State;
      Rules.forEach([&](unsigned Rule) {
        Entry.ActiveRules.push_back(static_cast<RuleId>(Rule));
      });
      Step.Active.push_back(std::move(Entry));
    }
    Matched.forEach([&](unsigned Rule) {
      Step.Matches.emplace_back(static_cast<RuleId>(Rule),
                                Z.rule(Rule).GlobalId);
    });
    Trace.push_back(std::move(Step));
    Current = std::move(Next);
  }
  return Trace;
}

void mfsa::replayTrace(const Mfsa &Z, std::string_view Input,
                       TraceSink &Sink) {
  const uint32_t NumRules = Z.numRules();
  std::vector<TraceStep> Trace = traceActivation(Z, Input);

  DynamicBitset Prev(NumRules);
  for (const TraceStep &Step : Trace) {
    DynamicBitset Cur(NumRules);
    for (const TraceStep::ActiveEntry &Entry : Step.Active)
      for (RuleId Rule : Entry.ActiveRules)
        Cur.set(Rule);

    DynamicBitset Deactivated = Prev, Activated = Cur;
    for (size_t I = 0, E = Deactivated.words().size(); I != E; ++I) {
      Deactivated.words()[I] &= ~Cur.words()[I];
      Activated.words()[I] &= ~Prev.words()[I];
    }
    Deactivated.forEach([&](unsigned Rule) {
      Sink.onRuleDeactivated(static_cast<RuleId>(Rule), Step.Offset);
    });
    Activated.forEach([&](unsigned Rule) {
      Sink.onRuleActivated(static_cast<RuleId>(Rule), Step.Offset);
    });
    for (const auto &[Rule, GlobalId] : Step.Matches)
      Sink.onMatch(Rule, GlobalId, Step.Offset);
    Sink.onStep(Step.Offset, Step.Symbol,
                static_cast<uint32_t>(Step.Active.size()),
                static_cast<uint32_t>(Cur.count()));
    Prev = std::move(Cur);
  }
}

MetricsTraceSink::MetricsTraceSink(obs::MetricsRegistry &Registry) {
  Activations = &Registry.counter("trace.activations");
  Deactivations = &Registry.counter("trace.deactivations");
  Matches = &Registry.counter("trace.matches");
  Steps = &Registry.counter("trace.steps");
  ActiveRulesHist =
      &Registry.histogram("trace.active_rules", obs::pow2Buckets(12));
  ActiveStatesHist =
      &Registry.histogram("trace.active_states", obs::pow2Buckets(12));
}

void MetricsTraceSink::onRuleDeactivated(RuleId, uint64_t) {
  Deactivations->add(1);
}

void MetricsTraceSink::onRuleActivated(RuleId, uint64_t) {
  Activations->add(1);
}

void MetricsTraceSink::onMatch(RuleId, uint32_t, uint64_t) {
  Matches->add(1);
}

void MetricsTraceSink::onStep(uint64_t, unsigned char, uint32_t ActiveStates,
                              uint32_t ActiveRules) {
  Steps->add(1);
  ActiveStatesHist->observe(ActiveStates);
  ActiveRulesHist->observe(ActiveRules);
}

std::string mfsa::formatTrace(const Mfsa &Z, std::string_view Input) {
  std::vector<TraceStep> Trace = traceActivation(Z, Input);
  std::string Out;
  for (const TraceStep &Step : Trace) {
    Out += std::to_string(Step.Offset) + ") '";
    if (Step.Symbol >= 0x20 && Step.Symbol < 0x7f)
      Out.push_back(static_cast<char>(Step.Symbol));
    else
      Out += "\\x" + std::to_string(Step.Symbol);
    Out += "' ->";
    if (Step.Active.empty())
      Out += " (no active states)";
    for (const TraceStep::ActiveEntry &Entry : Step.Active) {
      Out += " {" + std::to_string(Entry.State) + ": J={";
      for (size_t I = 0; I < Entry.ActiveRules.size(); ++I) {
        if (I)
          Out += ",";
        Out += std::to_string(Entry.ActiveRules[I]);
      }
      Out += "}}";
    }
    if (!Step.Matches.empty()) {
      Out += "   match:";
      for (const auto &[Rule, GlobalId] : Step.Matches)
        Out += " rule " + std::to_string(GlobalId);
    }
    Out += "\n";
  }
  return Out;
}
