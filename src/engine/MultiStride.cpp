//===- MultiStride.cpp - 2-stride DFA transformation ----------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "engine/MultiStride.h"

#include "obs/Metrics.h"

using namespace mfsa;

Result<StridedDfa> mfsa::makeStride2(const Dfa &Automaton,
                                     const StrideOptions &Options) {
  const uint64_t Entries = static_cast<uint64_t>(Automaton.NumStates) *
                           Automaton.NumAtoms * Automaton.NumAtoms;
  if (Entries > Options.MaxTableEntries)
    return Result<StridedDfa>::error(
        "stride-2 table blowup: " + std::to_string(Entries) +
        " entries exceed the cap of " +
        std::to_string(Options.MaxTableEntries));

  StridedDfa Out;
  Out.NumStates = Automaton.NumStates;
  Out.NumAtoms = Automaton.NumAtoms;
  Out.NumRules = Automaton.NumRules;
  Out.AtomOfByte = Automaton.AtomOfByte;
  Out.Accept = Automaton.Accept;
  Out.AcceptAtEnd = Automaton.AcceptAtEnd;
  Out.GlobalIds = Automaton.GlobalIds;

  const uint32_t A = Automaton.NumAtoms;
  Out.Mid = Automaton.Next; // identical layout: state x atom
  Out.MidAcceptAny.resize(Out.Mid.size());
  Out.Next2.resize(Entries);
  for (uint32_t S = 0; S < Automaton.NumStates; ++S)
    for (uint32_t A1 = 0; A1 < A; ++A1) {
      uint32_t MidState = Automaton.Next[static_cast<size_t>(S) * A + A1];
      Out.MidAcceptAny[static_cast<size_t>(S) * A + A1] =
          Automaton.Accept[MidState].any() ||
          Automaton.AcceptAtEnd[MidState].any();
      const uint32_t *MidRow = &Automaton.Next[static_cast<size_t>(MidState) * A];
      uint32_t *OutRow =
          &Out.Next2[(static_cast<size_t>(S) * A + A1) * A];
      for (uint32_t A2 = 0; A2 < A; ++A2)
        OutRow[A2] = MidRow[A2];
    }
  return Out;
}

void StridedDfaEngine::reportAt(const simd::KernelTable &K, uint32_t State,
                                size_t EndOffset, bool AtEnd,
                                MatchRecorder &Recorder) const {
  const DynamicBitset &Accept = Automaton.Accept[State];
  if (K.AnyWords(Accept.words().data(), Accept.words().size()))
    Accept.forEach([&](unsigned Rule) {
      Recorder.onMatch(Automaton.GlobalIds[Rule], EndOffset);
    });
  if (AtEnd) {
    const DynamicBitset &AtEndSet = Automaton.AcceptAtEnd[State];
    if (K.AnyWords(AtEndSet.words().data(), AtEndSet.words().size()))
      AtEndSet.forEach([&](unsigned Rule) {
        Recorder.onMatch(Automaton.GlobalIds[Rule], EndOffset);
      });
  }
}

void StridedDfaEngine::setMetrics(obs::MetricsRegistry *Registry) {
  if (!Registry) {
    Metrics = ScanMetricHandles{};
    return;
  }
  Metrics.Bytes = &Registry->counter("stride2.bytes_scanned");
  Metrics.Strides = &Registry->counter("stride2.strides");
  Metrics.Transitions = &Registry->counter("stride2.transitions_touched");
  Metrics.MidProbes = &Registry->counter("stride2.mid_accept_probes");
  Metrics.Matches = &Registry->counter("stride2.matches");
  Metrics.Frontier =
      &Registry->histogram("stride2.frontier_size", obs::pow2Buckets(12));
  Metrics.ActiveRules =
      &Registry->histogram("stride2.active_rules", obs::pow2Buckets(12));
  Metrics.TransitionsPerByte = &Registry->histogram(
      "stride2.transitions_per_byte", obs::pow2Buckets(14));
  Registry->gauge("stride2.states").set(Automaton.NumStates);
  Registry->gauge("stride2.rules").set(Automaton.NumRules);
}

void StridedDfaEngine::run(std::string_view Input,
                           MatchRecorder &Recorder) const {
  const uint32_t A = Automaton.NumAtoms;
  const uint8_t *AtomOf = Automaton.AtomOfByte.data();
  const simd::KernelTable &K = simd::ops();

#if MFSA_METRICS_ENABLED
  const bool Observed = Metrics.Bytes != nullptr;
  const uint32_t SampleEvery = Observed ? obs::scanSampleEvery() : 0;
  uint32_t MetricsTick = 0;
  uint64_t MidProbes = 0;
  uint64_t MatchesBefore = Recorder.total();
#endif

  uint32_t State = 0;
  size_t Pos = 0;
  const size_t PairedEnd = Input.size() & ~size_t(1);
  for (; Pos < PairedEnd; Pos += 2) {
    uint32_t A1 = AtomOf[static_cast<unsigned char>(Input[Pos])];
    uint32_t A2 = AtomOf[static_cast<unsigned char>(Input[Pos + 1])];
    // Mid-stride accept: matches ending at the odd offset Pos+1. The flag
    // keeps the half-step state untouched unless something accepts there.
    if (Automaton.MidAcceptAny[static_cast<size_t>(State) * A + A1]) {
#if MFSA_METRICS_ENABLED
      ++MidProbes;
#endif
      uint32_t MidState = Automaton.Mid[static_cast<size_t>(State) * A + A1];
      reportAt(K, MidState, Pos + 1, false, Recorder);
    }
    State = Automaton.Next2[(static_cast<size_t>(State) * A + A1) * A + A2];
    reportAt(K, State, Pos + 2, Pos + 2 == Input.size(), Recorder);
#if MFSA_METRICS_ENABLED
    if (Observed && ++MetricsTick >= SampleEvery) {
      MetricsTick = 0;
      Metrics.Frontier->observe(1);
      Metrics.ActiveRules->observe(1);
      // One pair-table touch covers two bytes; report the per-byte cost
      // the stride buys (integer histogram: 1 rounds the true 0.5 up).
      Metrics.TransitionsPerByte->observe(1);
    }
#endif
  }
  if (Pos < Input.size()) { // odd trailing byte
    uint32_t A1 = AtomOf[static_cast<unsigned char>(Input[Pos])];
    State = Automaton.Mid[static_cast<size_t>(State) * A + A1];
    reportAt(K, State, Pos + 1, /*AtEnd=*/true, Recorder);
  }

#if MFSA_METRICS_ENABLED
  if (Observed) {
    const uint64_t FullStrides = PairedEnd / 2;
    const uint64_t Tail = Input.size() - PairedEnd;
    Metrics.Bytes->add(Input.size());
    Metrics.Strides->add(FullStrides + Tail);
    Metrics.Transitions->add(FullStrides + Tail + MidProbes);
    Metrics.MidProbes->add(MidProbes);
    Metrics.Matches->add(Recorder.total() - MatchesBefore);
  }
#endif
}
