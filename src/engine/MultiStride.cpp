//===- MultiStride.cpp - 2-stride DFA transformation ----------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "engine/MultiStride.h"

using namespace mfsa;

Result<StridedDfa> mfsa::makeStride2(const Dfa &Automaton,
                                     const StrideOptions &Options) {
  const uint64_t Entries = static_cast<uint64_t>(Automaton.NumStates) *
                           Automaton.NumAtoms * Automaton.NumAtoms;
  if (Entries > Options.MaxTableEntries)
    return Result<StridedDfa>::error(
        "stride-2 table blowup: " + std::to_string(Entries) +
        " entries exceed the cap of " +
        std::to_string(Options.MaxTableEntries));

  StridedDfa Out;
  Out.NumStates = Automaton.NumStates;
  Out.NumAtoms = Automaton.NumAtoms;
  Out.NumRules = Automaton.NumRules;
  Out.AtomOfByte = Automaton.AtomOfByte;
  Out.Accept = Automaton.Accept;
  Out.AcceptAtEnd = Automaton.AcceptAtEnd;
  Out.GlobalIds = Automaton.GlobalIds;

  const uint32_t A = Automaton.NumAtoms;
  Out.Mid = Automaton.Next; // identical layout: state x atom
  Out.MidAcceptAny.resize(Out.Mid.size());
  Out.Next2.resize(Entries);
  for (uint32_t S = 0; S < Automaton.NumStates; ++S)
    for (uint32_t A1 = 0; A1 < A; ++A1) {
      uint32_t MidState = Automaton.Next[static_cast<size_t>(S) * A + A1];
      Out.MidAcceptAny[static_cast<size_t>(S) * A + A1] =
          Automaton.Accept[MidState].any() ||
          Automaton.AcceptAtEnd[MidState].any();
      const uint32_t *MidRow = &Automaton.Next[static_cast<size_t>(MidState) * A];
      uint32_t *OutRow =
          &Out.Next2[(static_cast<size_t>(S) * A + A1) * A];
      for (uint32_t A2 = 0; A2 < A; ++A2)
        OutRow[A2] = MidRow[A2];
    }
  return Out;
}

void StridedDfaEngine::reportAt(uint32_t State, size_t EndOffset, bool AtEnd,
                                MatchRecorder &Recorder) const {
  const DynamicBitset &Accept = Automaton.Accept[State];
  if (Accept.any())
    Accept.forEach([&](unsigned Rule) {
      Recorder.onMatch(Automaton.GlobalIds[Rule], EndOffset);
    });
  if (AtEnd) {
    const DynamicBitset &AtEndSet = Automaton.AcceptAtEnd[State];
    if (AtEndSet.any())
      AtEndSet.forEach([&](unsigned Rule) {
        Recorder.onMatch(Automaton.GlobalIds[Rule], EndOffset);
      });
  }
}

void StridedDfaEngine::run(std::string_view Input,
                           MatchRecorder &Recorder) const {
  const uint32_t A = Automaton.NumAtoms;
  const uint8_t *AtomOf = Automaton.AtomOfByte.data();

  uint32_t State = 0;
  size_t Pos = 0;
  const size_t PairedEnd = Input.size() & ~size_t(1);
  for (; Pos < PairedEnd; Pos += 2) {
    uint32_t A1 = AtomOf[static_cast<unsigned char>(Input[Pos])];
    uint32_t A2 = AtomOf[static_cast<unsigned char>(Input[Pos + 1])];
    // Mid-stride accept: matches ending at the odd offset Pos+1. The flag
    // keeps the half-step state untouched unless something accepts there.
    if (Automaton.MidAcceptAny[static_cast<size_t>(State) * A + A1]) {
      uint32_t MidState = Automaton.Mid[static_cast<size_t>(State) * A + A1];
      reportAt(MidState, Pos + 1, false, Recorder);
    }
    State = Automaton.Next2[(static_cast<size_t>(State) * A + A1) * A + A2];
    reportAt(State, Pos + 2, Pos + 2 == Input.size(), Recorder);
  }
  if (Pos < Input.size()) { // odd trailing byte
    uint32_t A1 = AtomOf[static_cast<unsigned char>(Input[Pos])];
    State = Automaton.Mid[static_cast<size_t>(State) * A + A1];
    reportAt(State, Pos + 1, /*AtEnd=*/true, Recorder);
  }
}
