//===- RulesetCache.h - content-addressed compiled-ruleset cache -*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scan service's compiled-ruleset cache: tenants announcing the same
/// ruleset (same rule text, same merging factor) share one set of
/// preprocessed ImfantEngine tables instead of recompiling per connection —
/// the service-shaped form of the paper's amortization argument.
///
/// Keying is by content hash of (merging factor, rule text); the stored
/// entry keeps the full rule text, and a lookup whose rules differ under an
/// equal hash is diverted to a salted key, so a hash collision costs one
/// extra compile, never a wrong ruleset.
///
/// Entries are handed out as shared_ptr<const CompiledRuleset> — RCU-style
/// refcounted eviction: evicting drops the cache's reference only, and
/// sessions mid-scan keep their tables alive until the last one unpins.
/// Concurrent first requests for one key collapse onto a single compile
/// (per-slot mutex), so a thundering herd of identical tenants costs one
/// compilation.
///
/// When a cache directory is configured, compiled rulesets are persisted as
/// PR 6 artifact images named <key>.mfsa (crash-safe write, corruption-
/// hardened load), giving two extra properties: a server restart warm-starts
/// from disk instead of recompiling, and multiple server processes sharing
/// the directory mmap the same read-only images, sharing page-cache pages.
/// A rejected on-disk image is never trusted: it counts
/// `service.cache.artifact_rejected` and falls back to a fresh compile that
/// overwrites it.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_SERVICE_RULESETCACHE_H
#define MFSA_SERVICE_RULESETCACHE_H

#include "compiler/Pipeline.h"
#include "engine/Imfant.h"
#include "support/Result.h"
#include "support/Sync.h"

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mfsa::obs {
class MetricsRegistry;
} // namespace mfsa::obs

namespace mfsa::service {

/// Where an acquired ruleset came from.
enum class CacheSource : uint8_t {
  Compiled = 0, ///< Cache miss: compiled from the rule text.
  Memory = 1,   ///< Resident entry reused (the amortization win).
  Artifact = 2, ///< Loaded from the on-disk artifact image.
};

/// One compiled, engine-ready ruleset. Immutable after construction;
/// ImfantEngine::run/Scanner are const over it, so any number of sessions
/// across any number of threads share one instance.
struct CompiledRuleset {
  std::string Key;                 ///< Content-hash cache key (hex).
  uint32_t MergingFactor = 0;      ///< The compile's M (0 = all).
  std::vector<std::string> Rules;  ///< Source text, for collision checks.
  std::vector<ImfantEngine> Engines; ///< One per merged MFSA group.
  uint32_t NumRules = 0;           ///< Surviving (non-quarantined) rules.
  std::string ArtifactPath;        ///< On-disk image, "" when memory-only.
};

/// Cache configuration.
struct CacheOptions {
  /// Directory for <key>.mfsa artifact images; "" disables disk backing.
  /// Must exist and be writable (the cache never creates it).
  std::string CacheDir;

  /// Resident-entry ceiling; least-recently-used entries beyond it are
  /// evicted (sessions holding them keep them alive — see file comment).
  size_t Capacity = 8;

  /// Compile settings for misses. The service parity contract (results
  /// byte-identical to offline `imfant_run`) holds because this is the same
  /// compileRuleset() the offline tools call.
  CompileOptions Compile;
};

/// Thread-safe content-addressed cache of CompiledRulesets.
class RulesetCache {
public:
  explicit RulesetCache(CacheOptions Options,
                        obs::MetricsRegistry *Metrics = nullptr);

  /// Returns the compiled form of \p Rules at merging factor \p M, reusing
  /// a resident or on-disk copy when one exists. \p Source (when non-null)
  /// reports which path served the request. Compile failures are negative-
  /// cached per key, so a bad ruleset diagnoses instantly on repeat.
  Result<std::shared_ptr<const CompiledRuleset>>
  acquire(const std::vector<std::string> &Rules, uint32_t M,
          CacheSource *Source = nullptr) MFSA_EXCLUDES(CacheMutex);

  /// Resident entries right now (post-eviction).
  size_t residentEntries() const MFSA_EXCLUDES(CacheMutex);

  /// Content key for (\p Rules, \p M): 32 hex chars, stable across runs and
  /// processes — it names the on-disk artifact. Exposed for tests and
  /// operational tooling (cache-directory hygiene).
  static std::string contentKey(const std::vector<std::string> &Rules,
                                uint32_t M);

private:
  struct Slot;

  std::shared_ptr<const CompiledRuleset>
  buildOrLoad(const std::string &Key, const std::vector<std::string> &Rules,
              uint32_t M, CacheSource *Source, Diag &Error);
  void touchLocked(const std::string &Key) MFSA_REQUIRES(CacheMutex);
  void evictOverCapacityLocked() MFSA_REQUIRES(CacheMutex);

  CacheOptions Options;
  obs::MetricsRegistry *Metrics;

  /// Rank 40 (see the Sync.h table): guards Slots + LruOrder, never held
  /// while compiling (the per-slot mutexes, rank 50, serialize that); the
  /// eviction counters give it the CacheMutex -> RegistryMutex edge.
  mutable sync::Mutex CacheMutex MFSA_LOCK_RANK(40);
  std::map<std::string, std::shared_ptr<Slot>> Slots
      MFSA_GUARDED_BY(CacheMutex);
  /// Front = most recently used.
  std::list<std::string> LruOrder MFSA_GUARDED_BY(CacheMutex);
};

} // namespace mfsa::service

#endif // MFSA_SERVICE_RULESETCACHE_H
