//===- Client.h - blocking scan-service client ------------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ScanClient, the blocking reference client for the scan service: connect,
/// Hello with a ruleset, open streams, feed chunks, close. One request is
/// outstanding at a time per connection, so server replies can never
/// interleave across this client's streams; concurrency across tenants is
/// achieved by running one client per thread (see bench/scan_load.cpp).
///
/// The transport layer (vanished server, short writes) reports through
/// Result; protocol-level rejections (Overloaded, TooManyStreams, ...) are
/// *data*, returned in the outcome structs, because budget sheds are an
/// expected part of normal operation that callers retry or count.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_SERVICE_CLIENT_H
#define MFSA_SERVICE_CLIENT_H

#include "service/Protocol.h"
#include "service/RulesetCache.h"
#include "support/Result.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mfsa::service {

/// One reported match: the global rule id and the absolute end offset —
/// the same pair MatchRecorder collects offline, enabling byte-for-byte
/// differential checks against imfant_run.
struct ClientMatch {
  uint32_t Rule = 0;
  uint64_t End = 0;

  bool operator==(const ClientMatch &O) const {
    return Rule == O.Rule && End == O.End;
  }
  bool operator<(const ClientMatch &O) const {
    return End != O.End ? End < O.End : Rule < O.Rule;
  }
};

/// Server's answer to Hello.
struct HelloInfo {
  std::string CacheKey;    ///< Content-hash key of the compiled ruleset.
  CacheSource Source = CacheSource::Compiled; ///< How the server got it.
  uint32_t NumRules = 0;   ///< Surviving rules in the compiled set.
  uint32_t NumGroups = 0;  ///< Merged MFSA groups (engines).
};

/// Outcome of one Chunk round trip. Status == Ok means the chunk was
/// scanned; Overloaded means it was shed unconsumed (retry later); other
/// codes are terminal for the stream.
struct ChunkOutcome {
  StatusCode Status = StatusCode::Ok;
  std::vector<ClientMatch> Matches; ///< Matches ending in this chunk.
  uint64_t Offset = 0;              ///< Absolute offset after the chunk.
  uint64_t TotalMatches = 0;        ///< Exact match count in the chunk.
  bool Truncated = false; ///< Matches holds fewer pairs than TotalMatches
                          ///< (the server's recorder cap was hit).
  std::string Message;    ///< Status text on non-Ok.
};

/// Outcome of CloseStream: the end-of-stream flush.
struct StreamEnd {
  StatusCode Status = StatusCode::Ok;
  std::vector<ClientMatch> Matches; ///< `$`-anchored matches at the end.
  uint64_t TotalBytes = 0;
  uint64_t TotalMatches = 0;
  std::string Message;
};

/// Blocking client over one connection (= one tenant). Move-only; closes
/// the socket on destruction.
class ScanClient {
public:
  static Result<ScanClient> connectUds(const std::string &Path);
  static Result<ScanClient> connectTcp(uint16_t Port);

  ScanClient(ScanClient &&Other) noexcept;
  ScanClient &operator=(ScanClient &&Other) noexcept;
  ScanClient(const ScanClient &) = delete;
  ScanClient &operator=(const ScanClient &) = delete;
  ~ScanClient();

  /// Announces the tenant and its ruleset; the server compiles or reuses a
  /// cached compilation. A Status reply (e.g. CompileFailed) is returned as
  /// an error carrying the server's diagnostic.
  Result<HelloInfo> hello(const std::string &Tenant,
                          const std::vector<std::string> &Rules, uint32_t M);

  /// Opens stream \p Id. \returns the Status the server answered —
  /// StatusCode::Ok on success, the rejection code otherwise (with the
  /// server's text in \p Message when non-null).
  Result<StatusCode> openStream(uint64_t Id, std::string *Message = nullptr);

  /// Feeds one chunk and waits for its result (Matches* + ChunkDone, or a
  /// Status rejection).
  Result<ChunkOutcome> sendChunk(uint64_t Id, std::string_view Data);

  /// Ends stream \p Id, collecting the final flush.
  Result<StreamEnd> closeStream(uint64_t Id);

  /// Fetches the server's metrics JSON (MetricsRegistry::toJson form).
  Result<std::string> stats();

  /// Asks the server to stop (honored only when the server allows it).
  Result<StatusCode> shutdownServer(std::string *Message = nullptr);

  int fd() const { return Fd; } ///< For fault-injection tests.

private:
  explicit ScanClient(int Fd) : Fd(Fd) {}

  /// Reads one frame; transport errors become diagnosed Results.
  Result<std::pair<uint8_t, std::string>> readReply();

  int Fd = -1;
};

} // namespace mfsa::service

#endif // MFSA_SERVICE_CLIENT_H
