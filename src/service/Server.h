//===- Server.h - multi-tenant streaming scan server ------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declares ScanServer, the long-lived scan service: it listens on a
/// Unix-domain socket and/or loopback TCP, speaks the length-prefixed
/// protocol of service/Protocol.h, and multiplexes every connected tenant's
/// input streams over shared compiled-ruleset tables (service/RulesetCache.h)
/// and the shared ThreadPool.
///
/// Execution model — designed so per-stream state stays tiny and scheduling,
/// not automaton stepping, is the service's bottleneck regime:
///
///   - One reader thread per connection parses frames and *never* scans; a
///     Chunk frame is appended to its session's queue and the session is
///     scheduled onto the ThreadPool at most once (a scheduled flag), so a
///     burst of chunks becomes one batched drain, not N pool tasks.
///   - A drain task owns its session exclusively while running (chunks of
///     one stream are scanned strictly in arrival order; the carried
///     ImfantEngine::Scanner activation state makes cross-chunk matches
///     exact), but different sessions drain concurrently on the pool.
///   - Matches are replied per chunk (Matches + ChunkDone frames); offsets
///     are absolute, and the stream's results are byte-identical to an
///     offline one-shot scan of the concatenated chunks — the differential
///     suites and the CI soak job enforce exactly that.
///
/// Backpressure and budgets (per tenant = per connection, reusing the PR 1
/// budget idioms): a bounded count of open streams (TooManyStreams), a
/// bounded sum of queued-but-unscanned bytes (Overloaded — the shed path;
/// the chunk is NOT consumed and may be retried; a chunk that alone exceeds
/// the whole queue budget is refused with the terminal ChunkTooLarge
/// instead, since no amount of draining could ever admit it), a
/// ruleset-size cap, and a per-stage compile deadline applied to cache-miss
/// compiles. Every rejection is a diagnosed Status frame; one tenant
/// hitting its budget never perturbs another tenant's streams.
///
/// Shutdown: requestStop() is async-signal-safe (a self-pipe write), so a
/// SIGTERM handler may call it directly. The server then stops accepting,
/// wakes every reader, drains in-flight scan work, joins all threads, and
/// waitStopped() returns — clean by construction, verified under TSan.
/// Reply writes can never wedge shutdown: connection fds stay valid for the
/// connection's whole lifetime (closed only after its reader joins), so the
/// stop path shutdown(2)s them without touching the write lock, and
/// WriteTimeoutMs bounds how long a non-reading peer can stall a writer.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_SERVICE_SERVER_H
#define MFSA_SERVICE_SERVER_H

#include "service/Protocol.h"
#include "service/RulesetCache.h"
#include "support/Result.h"

#include <cstdint>
#include <memory>
#include <string>

namespace mfsa::obs {
class MetricsRegistry;
} // namespace mfsa::obs

namespace mfsa::service {

/// Per-tenant resource budgets (a tenant is one connection).
struct TenantBudget {
  /// Concurrently open streams per connection.
  uint32_t MaxStreams = 64;

  /// Queued-but-unscanned bytes per connection; a Chunk that would exceed
  /// it is shed with StatusCode::Overloaded (retryable, not consumed).
  uint64_t MaxQueuedBytes = 8ull << 20;

  /// Hello ruleset text ceiling.
  uint64_t MaxRulesBytes = 1ull << 20;

  /// Per-stage wall-clock deadline for cache-miss compiles, forwarded into
  /// CompileBudget::StageDeadlineMs (0 = none).
  double CompileDeadlineMs = 0.0;
};

/// Server configuration.
struct ServerOptions {
  /// Unix-domain socket path; non-empty enables the UDS listener. An
  /// existing socket file at the path is replaced.
  std::string UdsPath;

  /// Listen on loopback TCP when true; Port 0 binds an ephemeral port
  /// (query the bound port via ScanServer::tcpPort()).
  bool Tcp = false;
  uint16_t TcpPort = 0;

  /// Scan worker threads (0 = hardware concurrency, at least 2).
  unsigned Workers = 0;

  /// Frame payload ceiling enforced before allocation.
  uint32_t MaxFrameBytes = kDefaultMaxFrameBytes;

  /// SO_SNDTIMEO applied to every accepted connection (0 = none). A peer
  /// that stops reading its replies can stall a write for at most this
  /// long; on timeout the connection is marked dead and its fd shut down,
  /// so a stuck writer can never pin a pool worker — or block shutdown —
  /// indefinitely.
  uint32_t WriteTimeoutMs = 10000;

  TenantBudget Budget;
  CacheOptions Cache;

  /// Honor the protocol's Shutdown frame (operationally you want this off
  /// on TCP and on for test/CI UDS servers).
  bool AllowShutdownFrame = true;

  /// Metrics sink; when null the server owns a private registry (GetStats
  /// works either way).
  obs::MetricsRegistry *Metrics = nullptr;

  /// Test hook: sleep this long before scanning each queued chunk, making
  /// queue-budget shed deterministic in the robustness tests. Zero in any
  /// real deployment.
  uint32_t DrainDelayUsForTest = 0;
};

/// The running server. Construction via start() binds the listeners and
/// launches the accept thread; destruction stops and joins everything.
class ScanServer {
public:
  /// Binds listeners and starts serving. Fails with a diagnosed error when
  /// no listener is configured or a bind/listen call is refused.
  static Result<std::unique_ptr<ScanServer>> start(const ServerOptions &Opts);

  ~ScanServer();
  ScanServer(const ScanServer &) = delete;
  ScanServer &operator=(const ScanServer &) = delete;

  /// Begins shutdown: stop accepting, wake readers, drain scans. Async-
  /// signal-safe (one write(2) to a self-pipe); callable from any thread or
  /// signal handler, idempotent.
  void requestStop();

  /// Blocks until shutdown completes (all connections closed, scan queue
  /// drained, threads joined). Does not itself initiate shutdown.
  void waitStopped();

  /// True once waitStopped() would return immediately.
  bool stopped() const;

  /// The bound TCP port (0 when TCP is disabled).
  uint16_t tcpPort() const;

  /// The metrics registry in use (the caller's, or the private one).
  obs::MetricsRegistry &metrics();

  ScanServer(); // Internal; use start().

private:
  struct Impl;
  std::unique_ptr<Impl> PImpl;
};

} // namespace mfsa::service

#endif // MFSA_SERVICE_SERVER_H
