//===- RulesetCache.cpp - content-addressed compiled-ruleset cache --------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "service/RulesetCache.h"

#include "artifact/Reader.h"
#include "artifact/Writer.h"
#include "obs/Metrics.h"

#include <cstdio>
#include <sys/stat.h>

namespace mfsa::service {

namespace {

/// Two independent 64-bit FNV-1a lanes over the keyed content give a 128-bit
/// key. FNV is not collision-proof, so the cache additionally compares the
/// stored rule text on every hit and salts the key on mismatch (see
/// acquire()); the hash only has to make collisions rare, correctness never
/// rests on it.
struct Fnv2 {
  uint64_t A = 0xcbf29ce484222325ull;
  uint64_t B = 0x9dc5ad0c5ab1c9a5ull;

  void bytes(const void *Data, size_t N) {
    const auto *P = static_cast<const uint8_t *>(Data);
    for (size_t I = 0; I < N; ++I) {
      A = (A ^ P[I]) * 0x100000001b3ull;
      B = (B ^ P[I]) * 0x100000001b3ull;
      B ^= B >> 29;
    }
  }
  void u32(uint32_t V) { bytes(&V, sizeof(V)); }
};

std::string hex128(uint64_t A, uint64_t B) {
  char Buf[33];
  std::snprintf(Buf, sizeof(Buf), "%016llx%016llx",
                static_cast<unsigned long long>(A),
                static_cast<unsigned long long>(B));
  return Buf;
}

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 && S_ISREG(St.st_mode);
}

} // namespace

/// One cache line: the per-key mutex serializes the first build so
/// concurrent identical tenants collapse onto a single compile; Ready /
/// Error memoize the outcome either way.
struct RulesetCache::Slot {
  /// Rank 50 (see the Sync.h table): acquired after CacheMutex is released,
  /// deliberately held across a whole compile so a thundering herd of
  /// identical tenants collapses onto one build; the compile-telemetry
  /// recording gives it the SlotMutex -> RegistryMutex edge.
  sync::Mutex SlotMutex MFSA_LOCK_RANK(50);
  std::shared_ptr<const CompiledRuleset> Ready MFSA_GUARDED_BY(SlotMutex);
  bool Failed MFSA_GUARDED_BY(SlotMutex) = false;
  Diag Error MFSA_GUARDED_BY(SlotMutex);
  // The content the memoized failure belongs to: like the Ready path, a
  // negative hit must compare rule text so a hash-colliding different
  // ruleset salt-diverts instead of inheriting a foreign CompileFailed.
  std::vector<std::string> FailedRules MFSA_GUARDED_BY(SlotMutex);
  uint32_t FailedM MFSA_GUARDED_BY(SlotMutex) = 0;
};

std::string RulesetCache::contentKey(const std::vector<std::string> &Rules,
                                     uint32_t M) {
  Fnv2 H;
  H.u32(M);
  H.u32(static_cast<uint32_t>(Rules.size()));
  for (const std::string &R : Rules) {
    H.u32(static_cast<uint32_t>(R.size()));
    H.bytes(R.data(), R.size());
  }
  return hex128(H.A, H.B);
}

RulesetCache::RulesetCache(CacheOptions Opts, obs::MetricsRegistry *Registry)
    : Options(std::move(Opts)), Metrics(Registry) {
  if (Options.Capacity == 0)
    Options.Capacity = 1;
}

size_t RulesetCache::residentEntries() const {
  sync::MutexLock Lock(CacheMutex);
  return Slots.size();
}

void RulesetCache::touchLocked(const std::string &Key) {
  LruOrder.remove(Key);
  LruOrder.push_front(Key);
}

void RulesetCache::evictOverCapacityLocked() {
  while (Slots.size() > Options.Capacity && !LruOrder.empty()) {
    std::string Victim = LruOrder.back();
    LruOrder.pop_back();
    if (Slots.erase(Victim) && Metrics)
      Metrics->counter("service.cache.evictions").add();
  }
  if (Metrics)
    Metrics->gauge("service.cache.entries")
        .set(static_cast<int64_t>(Slots.size()));
}

std::shared_ptr<const CompiledRuleset>
RulesetCache::buildOrLoad(const std::string &Key,
                          const std::vector<std::string> &Rules, uint32_t M,
                          CacheSource *Source, Diag &Error) {
  auto Entry = std::make_shared<CompiledRuleset>();
  Entry->Key = Key;
  Entry->MergingFactor = M;
  Entry->Rules = Rules;
  if (!Options.CacheDir.empty())
    Entry->ArtifactPath = Options.CacheDir + "/" + Key + ".mfsa";

  // Disk first: a prior process (or this one, pre-eviction) may have left a
  // validated artifact image. Provenance must match exactly — embedded
  // patterns equal to the requested rules and the same merging factor — or
  // the image is treated as foreign and recompiled over.
  if (!Entry->ArtifactPath.empty() && fileExists(Entry->ArtifactPath)) {
    Result<artifact::LoadedArtifact> Loaded =
        artifact::loadArtifact(Entry->ArtifactPath, {}, Metrics);
    if (Loaded.ok() && Loaded->patterns() == Rules &&
        Loaded->header().MergingFactor == M) {
      std::vector<Mfsa> Mfsas = Loaded->materializeAll();
      Entry->NumRules = static_cast<uint32_t>(Loaded->patterns().size());
      Entry->Engines.reserve(Mfsas.size());
      for (const Mfsa &Z : Mfsas)
        Entry->Engines.emplace_back(Z);
      if (Metrics)
        Metrics->counter("service.cache.artifact_hits").add();
      if (Source)
        *Source = CacheSource::Artifact;
      return Entry;
    }
    if (Metrics)
      Metrics->counter("service.cache.artifact_rejected").add();
  }

  CompileOptions Opts = Options.Compile;
  Opts.MergingFactor = M;
  Opts.EmitAnml = false;
  Result<CompileArtifacts> Artifacts = compileRuleset(Rules, Opts);
  if (!Artifacts.ok()) {
    if (Metrics)
      Metrics->counter("service.cache.compile_failures").add();
    Error = Artifacts.takeDiag();
    return nullptr;
  }
  if (Metrics)
    Artifacts->Telemetry.recordTo(*Metrics);
  Entry->NumRules = static_cast<uint32_t>(Artifacts->CompiledRuleIds.size());
  Entry->Engines.reserve(Artifacts->Mfsas.size());
  for (const Mfsa &Z : Artifacts->Mfsas)
    Entry->Engines.emplace_back(Z);

  // Persist for the next process; best-effort — a read-only cache directory
  // degrades to memory-only caching, it never fails the request.
  if (!Entry->ArtifactPath.empty()) {
    artifact::ArtifactWriteOptions WriteOpts;
    WriteOpts.MergingFactor = M;
    Result<uint64_t> Wrote = artifact::writeArtifactFile(
        Entry->ArtifactPath, Artifacts->Mfsas, Rules, WriteOpts);
    if (!Wrote.ok()) {
      if (Metrics)
        Metrics->counter("service.cache.artifact_write_failures").add();
      Entry->ArtifactPath.clear();
    }
  }
  if (Metrics)
    Metrics->counter("service.cache.misses").add();
  if (Source)
    *Source = CacheSource::Compiled;
  return Entry;
}

Result<std::shared_ptr<const CompiledRuleset>>
RulesetCache::acquire(const std::vector<std::string> &Rules, uint32_t M,
                      CacheSource *Source) {
  // Salted-key loop: almost always exits on the first iteration; a true
  // 128-bit collision diverts to "<key>-1", "<key>-2", ...
  std::string Key = contentKey(Rules, M);
  for (uint32_t Salt = 0;; ++Salt) {
    std::string SaltedKey =
        Salt == 0 ? Key : Key + "-" + std::to_string(Salt);
    std::shared_ptr<Slot> Line;
    {
      sync::MutexLock Lock(CacheMutex);
      auto It = Slots.find(SaltedKey);
      if (It == Slots.end())
        It = Slots.emplace(SaltedKey, std::make_shared<Slot>()).first;
      Line = It->second;
      touchLocked(SaltedKey);
      evictOverCapacityLocked();
    }

    // CacheMutex (40) released before SlotMutex (50): the map stays
    // available to other keys while this key compiles under its slot lock.
    sync::MutexLock SlotLock(Line->SlotMutex);
    if (Line->Ready) {
      if (Line->Ready->Rules != Rules || Line->Ready->MergingFactor != M)
        continue; // Hash collision; try the next salted key.
      if (Metrics)
        Metrics->counter("service.cache.hits").add();
      if (Source)
        *Source = CacheSource::Memory;
      return Line->Ready;
    }
    if (Line->Failed) {
      if (Line->FailedRules != Rules || Line->FailedM != M)
        continue; // Hash collision; try the next salted key.
      return Diag(Line->Error);
    }

    Diag Error;
    std::shared_ptr<const CompiledRuleset> Built =
        buildOrLoad(SaltedKey, Rules, M, Source, Error);
    if (!Built) {
      Line->Failed = true;
      Line->Error = Error;
      Line->FailedRules = Rules;
      Line->FailedM = M;
      return Error;
    }
    Line->Ready = Built;
    return Built;
  }
}

} // namespace mfsa::service
