//===- Client.cpp - blocking scan-service client --------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include "support/StringUtil.h"

#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace mfsa::service {

namespace {

std::string sysError(const std::string &What) {
  return What + ": " + errnoString(errno);
}

} // namespace

Result<ScanClient> ScanClient::connectUds(const std::string &Path) {
  sockaddr_un Addr{};
  if (Path.size() >= sizeof(Addr.sun_path))
    return Result<ScanClient>::error("UDS path too long: " + Path);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Result<ScanClient>::error(sysError("socket"));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    std::string Err = sysError("connect " + Path);
    ::close(Fd);
    return Result<ScanClient>::error(std::move(Err));
  }
  return ScanClient(Fd);
}

Result<ScanClient> ScanClient::connectTcp(uint16_t Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return Result<ScanClient>::error(sysError("socket"));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    std::string Err =
        sysError("connect 127.0.0.1:" + std::to_string(Port));
    ::close(Fd);
    return Result<ScanClient>::error(std::move(Err));
  }
  return ScanClient(Fd);
}

ScanClient::ScanClient(ScanClient &&Other) noexcept : Fd(Other.Fd) {
  Other.Fd = -1;
}

ScanClient &ScanClient::operator=(ScanClient &&Other) noexcept {
  if (this != &Other) {
    if (Fd >= 0)
      ::close(Fd);
    Fd = Other.Fd;
    Other.Fd = -1;
  }
  return *this;
}

ScanClient::~ScanClient() {
  if (Fd >= 0)
    ::close(Fd);
}

Result<std::pair<uint8_t, std::string>> ScanClient::readReply() {
  uint8_t Type = 0;
  std::string Body;
  switch (readFrame(Fd, kDefaultMaxFrameBytes, Type, Body)) {
  case ReadStatus::Frame:
    return std::make_pair(Type, std::move(Body));
  case ReadStatus::Eof:
  case ReadStatus::Truncated:
    return Result<std::pair<uint8_t, std::string>>::error(
        "server closed the connection");
  case ReadStatus::TooLarge:
  case ReadStatus::BadLength:
    return Result<std::pair<uint8_t, std::string>>::error(
        "malformed frame from server");
  case ReadStatus::IoError:
    break;
  }
  return Result<std::pair<uint8_t, std::string>>::error(
      sysError("read"));
}

namespace {

/// Decodes a Status body; false on malformed.
bool decodeStatus(std::string_view Body, StatusCode &Code, uint64_t &Stream,
                  std::string &Message) {
  FrameCursor Cur(Body);
  uint8_t Raw = 0;
  if (!Cur.u8(Raw) || !Cur.u64(Stream) || !Cur.str(Message) || !Cur.atEnd())
    return false;
  Code = static_cast<StatusCode>(Raw);
  return true;
}

/// Appends a Matches body's pairs; false on malformed or id mismatch.
bool decodeMatches(std::string_view Body, uint64_t WantStream,
                   std::vector<ClientMatch> &Out) {
  FrameCursor Cur(Body);
  uint64_t Stream = 0;
  uint32_t Count = 0;
  if (!Cur.u64(Stream) || !Cur.u32(Count) || Stream != WantStream)
    return false;
  for (uint32_t I = 0; I < Count; ++I) {
    ClientMatch M;
    if (!Cur.u32(M.Rule) || !Cur.u64(M.End))
      return false;
    Out.push_back(M);
  }
  return Cur.atEnd();
}

} // namespace

Result<HelloInfo> ScanClient::hello(const std::string &Tenant,
                                    const std::vector<std::string> &Rules,
                                    uint32_t M) {
  std::string Text;
  for (const std::string &R : Rules) {
    Text += R;
    Text += '\n';
  }
  FrameWriter F;
  F.u32(kProtocolVersion);
  F.str(Tenant);
  F.u32(M);
  F.str(Text);
  if (!writeFrame(Fd, MsgType::Hello, F.body()))
    return Result<HelloInfo>::error(sysError("send Hello"));

  Result<std::pair<uint8_t, std::string>> Reply = readReply();
  if (!Reply.ok())
    return Reply.takeDiag();
  auto [Type, Body] = Reply.take();
  if (static_cast<MsgType>(Type) == MsgType::Status) {
    StatusCode Code;
    uint64_t Stream;
    std::string Message;
    if (!decodeStatus(Body, Code, Stream, Message))
      return Result<HelloInfo>::error("malformed Status from server");
    return Result<HelloInfo>::error(std::string(statusName(Code)) + ": " +
                                    Message);
  }
  if (static_cast<MsgType>(Type) != MsgType::HelloOk)
    return Result<HelloInfo>::error("unexpected reply to Hello (type " +
                                    std::to_string(Type) + ")");
  FrameCursor Cur(Body);
  HelloInfo Info;
  uint8_t Source = 0;
  if (!Cur.str(Info.CacheKey) || !Cur.u8(Source) ||
      !Cur.u32(Info.NumRules) || !Cur.u32(Info.NumGroups) || !Cur.atEnd())
    return Result<HelloInfo>::error("malformed HelloOk from server");
  Info.Source = static_cast<CacheSource>(Source);
  return Info;
}

Result<StatusCode> ScanClient::openStream(uint64_t Id, std::string *Message) {
  FrameWriter F;
  F.u64(Id);
  if (!writeFrame(Fd, MsgType::OpenStream, F.body()))
    return Result<StatusCode>::error(sysError("send OpenStream"));
  Result<std::pair<uint8_t, std::string>> Reply = readReply();
  if (!Reply.ok())
    return Reply.takeDiag();
  auto [Type, Body] = Reply.take();
  if (static_cast<MsgType>(Type) == MsgType::StreamOpen)
    return StatusCode::Ok;
  if (static_cast<MsgType>(Type) == MsgType::Status) {
    StatusCode Code;
    uint64_t Stream;
    std::string Text;
    if (!decodeStatus(Body, Code, Stream, Text))
      return Result<StatusCode>::error("malformed Status from server");
    if (Message)
      *Message = std::move(Text);
    return Code;
  }
  return Result<StatusCode>::error("unexpected reply to OpenStream");
}

Result<ChunkOutcome> ScanClient::sendChunk(uint64_t Id,
                                           std::string_view Data) {
  FrameWriter F;
  F.u64(Id);
  F.raw(Data);
  if (!writeFrame(Fd, MsgType::Chunk, F.body()))
    return Result<ChunkOutcome>::error(sysError("send Chunk"));

  ChunkOutcome Out;
  for (;;) {
    Result<std::pair<uint8_t, std::string>> Reply = readReply();
    if (!Reply.ok())
      return Reply.takeDiag();
    auto [Type, Body] = Reply.take();
    switch (static_cast<MsgType>(Type)) {
    case MsgType::Matches:
      if (!decodeMatches(Body, Id, Out.Matches))
        return Result<ChunkOutcome>::error("malformed Matches from server");
      continue;
    case MsgType::ChunkDone: {
      FrameCursor Cur(Body);
      uint64_t Stream = 0, Delivered = 0;
      if (!Cur.u64(Stream) || !Cur.u64(Out.Offset) ||
          !Cur.u64(Out.TotalMatches) || !Cur.u64(Delivered) ||
          !Cur.atEnd() || Stream != Id)
        return Result<ChunkOutcome>::error("malformed ChunkDone");
      Out.Truncated = Delivered < Out.TotalMatches;
      return Out;
    }
    case MsgType::Status: {
      uint64_t Stream;
      if (!decodeStatus(Body, Out.Status, Stream, Out.Message))
        return Result<ChunkOutcome>::error("malformed Status from server");
      return Out;
    }
    default:
      return Result<ChunkOutcome>::error("unexpected reply to Chunk (type " +
                                         std::to_string(Type) + ")");
    }
  }
}

Result<StreamEnd> ScanClient::closeStream(uint64_t Id) {
  FrameWriter F;
  F.u64(Id);
  if (!writeFrame(Fd, MsgType::CloseStream, F.body()))
    return Result<StreamEnd>::error(sysError("send CloseStream"));

  StreamEnd Out;
  for (;;) {
    Result<std::pair<uint8_t, std::string>> Reply = readReply();
    if (!Reply.ok())
      return Reply.takeDiag();
    auto [Type, Body] = Reply.take();
    switch (static_cast<MsgType>(Type)) {
    case MsgType::Matches:
      if (!decodeMatches(Body, Id, Out.Matches))
        return Result<StreamEnd>::error("malformed Matches from server");
      continue;
    case MsgType::StreamDone: {
      FrameCursor Cur(Body);
      uint64_t Stream = 0;
      if (!Cur.u64(Stream) || !Cur.u64(Out.TotalBytes) ||
          !Cur.u64(Out.TotalMatches) || !Cur.atEnd() || Stream != Id)
        return Result<StreamEnd>::error("malformed StreamDone");
      return Out;
    }
    case MsgType::Status: {
      uint64_t Stream;
      if (!decodeStatus(Body, Out.Status, Stream, Out.Message))
        return Result<StreamEnd>::error("malformed Status from server");
      return Out;
    }
    default:
      return Result<StreamEnd>::error("unexpected reply to CloseStream");
    }
  }
}

Result<std::string> ScanClient::stats() {
  FrameWriter F;
  if (!writeFrame(Fd, MsgType::GetStats, F.body()))
    return Result<std::string>::error(sysError("send GetStats"));
  Result<std::pair<uint8_t, std::string>> Reply = readReply();
  if (!Reply.ok())
    return Reply.takeDiag();
  auto [Type, Body] = Reply.take();
  if (static_cast<MsgType>(Type) != MsgType::Stats)
    return Result<std::string>::error("unexpected reply to GetStats");
  FrameCursor Cur(Body);
  std::string Json;
  if (!Cur.str(Json) || !Cur.atEnd())
    return Result<std::string>::error("malformed Stats from server");
  return Json;
}

Result<StatusCode> ScanClient::shutdownServer(std::string *Message) {
  FrameWriter F;
  if (!writeFrame(Fd, MsgType::Shutdown, F.body()))
    return Result<StatusCode>::error(sysError("send Shutdown"));
  Result<std::pair<uint8_t, std::string>> Reply = readReply();
  if (!Reply.ok())
    return Reply.takeDiag();
  auto [Type, Body] = Reply.take();
  if (static_cast<MsgType>(Type) != MsgType::Status)
    return Result<StatusCode>::error("unexpected reply to Shutdown");
  StatusCode Code;
  uint64_t Stream;
  std::string Text;
  if (!decodeStatus(Body, Code, Stream, Text))
    return Result<StatusCode>::error("malformed Status from server");
  if (Message)
    *Message = std::move(Text);
  return Code;
}

} // namespace mfsa::service
