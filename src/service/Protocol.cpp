//===- Protocol.cpp - scan-service wire protocol -------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

namespace mfsa::service {

const char *statusName(StatusCode Code) {
  switch (Code) {
  case StatusCode::Ok:
    return "ok";
  case StatusCode::ProtocolError:
    return "protocol-error";
  case StatusCode::NeedHello:
    return "need-hello";
  case StatusCode::CompileFailed:
    return "compile-failed";
  case StatusCode::DuplicateStream:
    return "duplicate-stream";
  case StatusCode::UnknownStream:
    return "unknown-stream";
  case StatusCode::TooManyStreams:
    return "too-many-streams";
  case StatusCode::Overloaded:
    return "overloaded";
  case StatusCode::FrameTooLarge:
    return "frame-too-large";
  case StatusCode::ShuttingDown:
    return "shutting-down";
  case StatusCode::Internal:
    return "internal";
  case StatusCode::ChunkTooLarge:
    return "chunk-too-large";
  }
  return "unknown";
}

void FrameWriter::u32(uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Body.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void FrameWriter::u64(uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Body.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void FrameWriter::str(std::string_view S) {
  u32(static_cast<uint32_t>(S.size()));
  Body.append(S.data(), S.size());
}

bool FrameCursor::take(size_t N, const char *&P) {
  if (Failed || Data.size() - Pos < N) {
    Failed = true;
    return false;
  }
  P = Data.data() + Pos;
  Pos += N;
  return true;
}

bool FrameCursor::u8(uint8_t &V) {
  const char *P;
  if (!take(1, P))
    return false;
  V = static_cast<uint8_t>(*P);
  return true;
}

bool FrameCursor::u32(uint32_t &V) {
  const char *P;
  if (!take(4, P))
    return false;
  V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(static_cast<uint8_t>(P[I])) << (8 * I);
  return true;
}

bool FrameCursor::u64(uint64_t &V) {
  const char *P;
  if (!take(8, P))
    return false;
  V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(static_cast<uint8_t>(P[I])) << (8 * I);
  return true;
}

bool FrameCursor::str(std::string &V) {
  uint32_t Len;
  if (!u32(Len))
    return false;
  const char *P;
  if (!take(Len, P))
    return false;
  V.assign(P, Len);
  return true;
}

bool FrameCursor::rest(std::string_view &V) {
  if (Failed)
    return false;
  V = Data.substr(Pos);
  Pos = Data.size();
  return true;
}

namespace {

/// Reads exactly \p N bytes. \returns N on success, 0 on clean EOF before
/// the first byte, the partial count on mid-read EOF, and SIZE_MAX on error.
size_t readAll(int Fd, char *Buf, size_t N) {
  size_t Got = 0;
  while (Got < N) {
    ssize_t Rc = ::read(Fd, Buf + Got, N - Got);
    if (Rc > 0) {
      Got += static_cast<size_t>(Rc);
      continue;
    }
    if (Rc == 0)
      return Got;
    if (errno == EINTR)
      continue;
    return static_cast<size_t>(-1);
  }
  return Got;
}

} // namespace

ReadStatus readFrame(int Fd, uint32_t MaxFrameBytes, uint8_t &Type,
                     std::string &Body) {
  char Prefix[4];
  size_t Got = readAll(Fd, Prefix, sizeof(Prefix));
  if (Got == 0)
    return ReadStatus::Eof;
  if (Got == static_cast<size_t>(-1))
    return ReadStatus::IoError;
  if (Got < sizeof(Prefix))
    return ReadStatus::Truncated;
  uint32_t Len = 0;
  for (int I = 0; I < 4; ++I)
    Len |= static_cast<uint32_t>(static_cast<uint8_t>(Prefix[I])) << (8 * I);
  if (Len == 0)
    return ReadStatus::BadLength;
  if (Len > MaxFrameBytes)
    return ReadStatus::TooLarge;
  std::string Payload(Len, '\0');
  Got = readAll(Fd, Payload.data(), Len);
  if (Got == static_cast<size_t>(-1))
    return ReadStatus::IoError;
  if (Got < Len)
    return ReadStatus::Truncated;
  Type = static_cast<uint8_t>(Payload[0]);
  Body.assign(Payload, 1, Len - 1);
  return ReadStatus::Frame;
}

bool writeFrame(int Fd, MsgType Type, std::string_view Body) {
  uint32_t Len = static_cast<uint32_t>(Body.size() + 1);
  std::string Wire;
  Wire.reserve(4 + Len);
  for (int I = 0; I < 4; ++I)
    Wire.push_back(static_cast<char>((Len >> (8 * I)) & 0xff));
  Wire.push_back(static_cast<char>(Type));
  Wire.append(Body.data(), Body.size());
  size_t Sent = 0;
  while (Sent < Wire.size()) {
    ssize_t Rc = ::send(Fd, Wire.data() + Sent, Wire.size() - Sent,
                        MSG_NOSIGNAL);
    if (Rc < 0) {
      if (errno == EINTR)
        continue;
      // Not a socket (tests may hand a pipe): fall back to write(2).
      if (errno == ENOTSOCK) {
        Rc = ::write(Fd, Wire.data() + Sent, Wire.size() - Sent);
        if (Rc < 0) {
          if (errno == EINTR)
            continue;
          return false;
        }
        Sent += static_cast<size_t>(Rc);
        continue;
      }
      return false;
    }
    Sent += static_cast<size_t>(Rc);
  }
  return true;
}

} // namespace mfsa::service
