//===- Protocol.h - scan-service wire protocol ------------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The length-prefixed framing the scan service (service/Server.h) and its
/// clients speak over TCP or a Unix-domain socket. One frame is
///
///   [u32 LE payload length N][u8 message type][N-1 body bytes]
///
/// where N counts the type byte plus the body, 1 <= N <= MaxFrameBytes.
/// Multi-byte integers are little-endian; strings are a u32 length followed
/// by raw bytes. The full message catalog and the status-code semantics are
/// specified normatively in docs/service.md.
///
/// Every inbound byte is untrusted: bodies are decoded through a
/// bounds-checked cursor that fails closed (a truncated or trailing-garbage
/// body is a protocol error, never an out-of-bounds read), and the length
/// prefix is validated against the frame ceiling *before* any allocation —
/// an adversarial 4 GiB prefix costs the server four bytes of reading, not
/// four gigabytes of memory.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_SERVICE_PROTOCOL_H
#define MFSA_SERVICE_PROTOCOL_H

#include <cstdint>
#include <string>
#include <string_view>

namespace mfsa::service {

/// Protocol revision carried in Hello; the server rejects others.
/// v2: ChunkDone grew u64 total-match and delivered-pair counts so
/// recorder-cap truncation is visible to clients instead of silent.
inline constexpr uint32_t kProtocolVersion = 2;

/// Default ceiling on one frame's payload (type byte + body). Connections
/// announcing a larger length prefix are answered with
/// StatusCode::FrameTooLarge and closed.
inline constexpr uint32_t kDefaultMaxFrameBytes = 16u << 20;

/// Wire message types. Client-to-server types live below 64, server-to-
/// client types at or above it, so a direction mix-up is itself a protocol
/// error rather than a silent misparse.
enum class MsgType : uint8_t {
  // Client -> server.
  Hello = 1,       ///< version, tenant, merging factor M, ruleset text.
  OpenStream = 2,  ///< u64 stream id, fresh per connection.
  Chunk = 3,       ///< u64 stream id + raw payload bytes.
  CloseStream = 4, ///< u64 stream id: flush $-anchored matches, finish.
  GetStats = 5,    ///< empty; answered with Stats (metrics JSON).
  Shutdown = 6,    ///< empty; asks the server to stop (when allowed).

  // Server -> client.
  HelloOk = 64,    ///< cache key, cache source, rule/group counts.
  StreamOpen = 65, ///< u64 stream id ack.
  Matches = 66,    ///< u64 stream id, u32 count, count x (u32 rule, u64 end).
  ChunkDone = 67,  ///< u64 stream id, u64 absolute offset, u64 total chunk
                   ///< matches, u64 match pairs delivered in Matches frames
                   ///< (delivered < total flags recorder-cap truncation).
  StreamDone = 68, ///< u64 stream id, u64 total bytes, u64 total matches.
  Stats = 69,      ///< string: MetricsRegistry JSON export.
  Status = 70,     ///< u8 code, u64 stream id (0 = connection), string text.
};

/// Diagnosed status codes (Status frames). Overloaded is the only
/// *retryable* code: the chunk was not consumed and may be resent once the
/// tenant's queue drains; every other non-Ok code is terminal for the
/// stream or connection it names.
enum class StatusCode : uint8_t {
  Ok = 0,
  ProtocolError = 1,   ///< Malformed frame or body; connection closes.
  NeedHello = 2,       ///< Stream/chunk traffic before a successful Hello.
  CompileFailed = 3,   ///< Ruleset rejected (diagnostic in the text).
  DuplicateStream = 4, ///< OpenStream id already open on this connection.
  UnknownStream = 5,   ///< Chunk/CloseStream for an id never opened.
  TooManyStreams = 6,  ///< Tenant's MaxStreams budget exhausted.
  Overloaded = 7,      ///< Tenant's queued-bytes budget full; retry later.
  FrameTooLarge = 8,   ///< Length prefix above the frame ceiling.
  ShuttingDown = 9,    ///< Server is draining; no new work accepted.
  Internal = 10,       ///< Server-side failure (diagnostic in the text).
  ChunkTooLarge = 11,  ///< Chunk exceeds the tenant's whole queue budget:
                       ///< it can never be accepted, so retrying verbatim
                       ///< is futile — split it. Terminal for the chunk,
                       ///< not the stream.
};

/// Human-readable status-code name ("overloaded", ...).
const char *statusName(StatusCode Code);

/// Appends little-endian scalars / length-prefixed strings to a frame body
/// under construction.
class FrameWriter {
public:
  void u8(uint8_t V) { Body.push_back(static_cast<char>(V)); }
  void u32(uint32_t V);
  void u64(uint64_t V);
  void str(std::string_view S);
  /// Raw trailing bytes (a Chunk payload), no length prefix.
  void raw(std::string_view S) { Body.append(S.data(), S.size()); }

  const std::string &body() const { return Body; }

private:
  std::string Body;
};

/// Bounds-checked decoder over one received frame body. Every accessor
/// returns false (and poisons the cursor) on underrun; after the last field
/// callers assert atEnd() so trailing garbage is also rejected.
class FrameCursor {
public:
  explicit FrameCursor(std::string_view Body) : Data(Body) {}

  bool u8(uint8_t &V);
  bool u32(uint32_t &V);
  bool u64(uint64_t &V);
  /// String with a u32 length prefix, capped at the remaining bytes.
  bool str(std::string &V);
  /// All remaining bytes (a Chunk payload); always succeeds unless poisoned.
  bool rest(std::string_view &V);

  bool ok() const { return !Failed; }
  bool atEnd() const { return !Failed && Pos == Data.size(); }

private:
  bool take(size_t N, const char *&P);

  std::string_view Data;
  size_t Pos = 0;
  bool Failed = false;
};

/// Outcome of readFrame(): exactly one of these per call.
enum class ReadStatus : uint8_t {
  Frame,     ///< A whole frame was read into Type/Body.
  Eof,       ///< Clean end of stream on a frame boundary.
  Truncated, ///< Peer vanished mid-prefix or mid-frame.
  TooLarge,  ///< Length prefix exceeded \p MaxFrameBytes (nothing consumed
             ///< past the prefix; the connection must close).
  BadLength, ///< Zero-length payload (no room for the type byte).
  IoError,   ///< read(2) failed.
};

/// Blocking read of one frame from \p Fd. On ReadStatus::Frame, \p Type and
/// \p Body carry the message. Never allocates more than \p MaxFrameBytes.
ReadStatus readFrame(int Fd, uint32_t MaxFrameBytes, uint8_t &Type,
                     std::string &Body);

/// Blocking write of one frame (length prefix + type + \p Body) to \p Fd.
/// Uses MSG_NOSIGNAL on sockets so a vanished peer surfaces as false, not
/// SIGPIPE. \returns true when every byte was written.
bool writeFrame(int Fd, MsgType Type, std::string_view Body);

} // namespace mfsa::service

#endif // MFSA_SERVICE_PROTOCOL_H
