//===- Server.cpp - multi-tenant streaming scan server --------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "obs/Metrics.h"
#include "support/StringUtil.h"
#include "support/Sync.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

namespace mfsa::service {

namespace {

using Clock = std::chrono::steady_clock;

struct PendingChunk {
  std::string Data;
  Clock::time_point Enqueued;
};

} // namespace

struct ScanServer::Impl {
  struct Connection;

  /// One open stream: the carried activation state (Scanners) plus the
  /// arrival-ordered chunk queue. The Scheduled flag guarantees at most one
  /// drain task owns the session at a time, so chunk order — and therefore
  /// byte-identity with an offline scan — is preserved without holding any
  /// lock across the actual automaton stepping.
  struct Session {
    uint64_t Id = 0;
    std::weak_ptr<Connection> Conn;
    std::shared_ptr<const CompiledRuleset> Ruleset; ///< Pins shared tables.
    std::vector<std::unique_ptr<ImfantEngine::Scanner>> Scanners;

    /// Rank 30 (see the Sync.h table): guards the queue and the scheduling
    /// flags; held only for queue surgery, never across automaton stepping.
    sync::Mutex QueueMutex MFSA_LOCK_RANK(30);
    std::deque<PendingChunk> Queue MFSA_GUARDED_BY(QueueMutex);
    bool Scheduled MFSA_GUARDED_BY(QueueMutex) = false;
    bool CloseRequested MFSA_GUARDED_BY(QueueMutex) = false;
    bool Aborted MFSA_GUARDED_BY(QueueMutex) = false;
    bool Finished MFSA_GUARDED_BY(QueueMutex) = false;
    // Deliberately NOT guarded: owned by the single drain task at a time.
    // The Scheduled flag hand-off under QueueMutex is the happens-before
    // edge between consecutive drain tasks, so these plain fields never
    // race even though successive drains may run on different pool threads.
    uint64_t TotalMatches = 0;
    uint64_t Consumed = 0; ///< Offset fallback for engine-less rulesets.
  };

  /// One tenant: a connection, its reader thread, and its budgets.
  ///
  /// Fd lifetime: the descriptor stays open (and the number stays ours, so
  /// it cannot be recycled under a concurrent shutdown(2)) until the
  /// Connection is destroyed — which happens only after its reader thread
  /// has been joined and the connection left the server's list. Teardown
  /// and the stop path therefore only ever shutdown(2) the fd, never
  /// close it; that lets shutdownSequence() interrupt a writer blocked in
  /// send(2) WITHOUT acquiring WriteMutex (which that writer holds).
  struct Connection : std::enable_shared_from_this<Connection> {
    // Relaxed suffices: the value is written once (accept, before the reader
    // thread is created — thread creation is the release) and the number
    // stays valid until ~Connection, so readers only need the value, never
    // an ordering edge through it.
    std::atomic<int> Fd{-1};
    std::thread Reader;
    // Release/acquire pair: the reader's store(release) is the last thing it
    // does, and reapFinishedConnections' load(acquire) must see the whole
    // teardown (session aborts, Closed = true) before it joins and drops
    // the Connection.
    std::atomic<bool> ReaderDone{false};

    /// Rank 60 (see the Sync.h table): held across writeFrame(2); a leaf
    /// except for the metric counters (WriteMutex is never held when the
    /// registry registers, only resolved handles are touched under it).
    sync::Mutex WriteMutex MFSA_LOCK_RANK(60);
    bool Closed MFSA_GUARDED_BY(WriteMutex) = false;

    // Reader-thread state (only the reader mutates these).
    bool HaveHello = false;
    std::string Tenant;
    std::shared_ptr<const CompiledRuleset> Ruleset;

    /// Rank 20 (see the Sync.h table): guards the stream-id map. finish /
    /// teardown paths release it before replying, giving the declared
    /// SessionsMutex -> WriteMutex order its only (indirect) use; the
    /// attribute documents and enforces the intended nesting direction.
    sync::Mutex SessionsMutex MFSA_LOCK_RANK(20)
        MFSA_ACQUIRED_BEFORE(WriteMutex);
    std::map<uint64_t, std::shared_ptr<Session>> Sessions
        MFSA_GUARDED_BY(SessionsMutex);
    // Relaxed: a shared budget meter, not a publication channel. The add in
    // handleChunk and the sub in drainSession/handleChunk order only the
    // counter itself; admission decisions tolerate momentary staleness (a
    // racing chunk is shed one frame later, never lost).
    std::atomic<uint64_t> QueuedBytes{0};

    ~Connection() {
      int RawFd = Fd.load(std::memory_order_relaxed);
      if (RawFd >= 0)
        ::close(RawFd);
    }
  };

  ServerOptions Opts;
  std::unique_ptr<obs::MetricsRegistry> OwnRegistry;
  obs::MetricsRegistry *Registry = nullptr;
  std::unique_ptr<RulesetCache> Cache;
  std::unique_ptr<ThreadPool> Pool;

  int UdsFd = -1;
  int TcpFd = -1;
  uint16_t BoundTcpPort = 0;
  int StopPipe[2] = {-1, -1};
  // Relaxed: advisory fast-reject flag. The authoritative stop signal is the
  // self-pipe byte (requestStopImpl), whose write(2)/poll(2) pair carries
  // the ordering; Stopping only lets hot paths refuse new work early.
  std::atomic<bool> Stopping{false};

  std::thread AcceptThread;
  /// Rank 10 (see the Sync.h table): guards the connection list. The lowest
  /// rank because reapFinishedConnections() joins reader threads while
  /// holding it, and a reader may take any session/write lock on its way
  /// out — so ConnMutex must never be acquired inside those.
  sync::Mutex ConnMutex MFSA_LOCK_RANK(10);
  std::vector<std::shared_ptr<Connection>> Connections
      MFSA_GUARDED_BY(ConnMutex);

  /// Rank 90 (see the Sync.h table): a leaf, taken only to flip/read the
  /// terminal flag. Mutable so stopped() stays const.
  mutable sync::Mutex StoppedMutex MFSA_LOCK_RANK(90);
  sync::CondVar StoppedCv;
  bool StoppedFlag MFSA_GUARDED_BY(StoppedMutex) = false;

  // Relaxed: UI gauges. Each fetch_add/fetch_sub returns the exact new value
  // for its own gauge set(); interleaved sets may publish momentarily stale
  // totals, which the gauge contract (last-writer-wins) already allows.
  std::atomic<int64_t> ActiveSessions{0};
  std::atomic<int64_t> ActiveConnections{0};

  // Hot-path metric handles, resolved once (obs/Metrics.h cost model).
  obs::Counter *ChunksCounter = nullptr;
  obs::Counter *BytesCounter = nullptr;
  obs::Counter *MatchesCounter = nullptr;
  obs::Counter *ShedCounter = nullptr;
  obs::Histogram *LatencyUs = nullptr;
  obs::Histogram *ChunkBytes = nullptr;
  obs::Histogram *QueueDepth = nullptr;

  ~Impl() { closeListeners(); }

  void closeListeners() {
    if (UdsFd >= 0) {
      ::close(UdsFd);
      UdsFd = -1;
      if (!Opts.UdsPath.empty())
        ::unlink(Opts.UdsPath.c_str());
    }
    if (TcpFd >= 0) {
      ::close(TcpFd);
      TcpFd = -1;
    }
    for (int &Fd : StopPipe)
      if (Fd >= 0) {
        ::close(Fd);
        Fd = -1;
      }
  }

  void resolveMetrics() {
    ChunksCounter = &Registry->counter("service.chunks");
    BytesCounter = &Registry->counter("service.bytes");
    MatchesCounter = &Registry->counter("service.matches");
    ShedCounter = &Registry->counter("service.shed.count");
    LatencyUs =
        &Registry->histogram("service.scan.latency_us", obs::pow2Buckets(21));
    ChunkBytes =
        &Registry->histogram("service.chunk.bytes", obs::pow2Buckets(24));
    QueueDepth =
        &Registry->histogram("service.queue.depth", obs::pow2Buckets(12));
  }

  // --- replies ----------------------------------------------------------

  void send(const std::shared_ptr<Connection> &Conn, MsgType Type,
            const FrameWriter &Frame) {
    sync::MutexLock Lock(Conn->WriteMutex);
    if (Conn->Closed)
      return;
    int Fd = Conn->Fd.load(std::memory_order_relaxed);
    if (!writeFrame(Fd, Type, Frame.body())) {
      // Dead or non-reading peer (SO_SNDTIMEO expiry included). Declare the
      // connection dead and shutdown(2) the fd so the reader unblocks and
      // tears the tenant down promptly instead of lingering.
      Conn->Closed = true;
      ::shutdown(Fd, SHUT_RDWR);
    }
  }

  void sendStatus(const std::shared_ptr<Connection> &Conn, StatusCode Code,
                  uint64_t StreamId, std::string_view Message) {
    FrameWriter F;
    F.u8(static_cast<uint8_t>(Code));
    F.u64(StreamId);
    F.str(Message);
    send(Conn, MsgType::Status, F);
  }

  void sendMatchesAndTally(const std::shared_ptr<Connection> &Conn,
                           uint64_t StreamId, const MatchRecorder &Rec) {
    // Batched so a match-dense chunk can never produce a Matches frame
    // above the frame ceiling; the client accumulates until ChunkDone.
    constexpr size_t kPairsPerFrame = 64 * 1024;
    const auto &Pairs = Rec.matches();
    for (size_t Begin = 0; Begin < Pairs.size(); Begin += kPairsPerFrame) {
      size_t End = std::min(Begin + kPairsPerFrame, Pairs.size());
      FrameWriter F;
      F.u64(StreamId);
      F.u32(static_cast<uint32_t>(End - Begin));
      for (size_t I = Begin; I < End; ++I) {
        F.u32(Pairs[I].first);
        F.u64(Pairs[I].second);
      }
      send(Conn, MsgType::Matches, F);
    }
  }

  // --- scanning ---------------------------------------------------------

  void scheduleLocked(const std::shared_ptr<Session> &S)
      MFSA_REQUIRES(S->QueueMutex) {
    if (S->Scheduled)
      return;
    S->Scheduled = true;
    Pool->submit([this, S] { drainSession(S); });
  }

  void drainSession(const std::shared_ptr<Session> &S) {
    for (;;) {
      PendingChunk Chunk;
      bool DoFinish = false;
      {
        sync::MutexLock Lock(S->QueueMutex);
        if (S->Aborted) {
          S->Queue.clear();
          S->Scheduled = false;
          return;
        }
        if (S->Queue.empty()) {
          if (S->CloseRequested && !S->Finished) {
            S->Finished = true;
            DoFinish = true;
          } else {
            S->Scheduled = false;
            return;
          }
        } else {
          Chunk = std::move(S->Queue.front());
          S->Queue.pop_front();
        }
      }
      if (DoFinish) {
        finishSession(S);
        sync::MutexLock Lock(S->QueueMutex);
        S->Scheduled = false;
        return;
      }
      if (Opts.DrainDelayUsForTest)
        std::this_thread::sleep_for(
            std::chrono::microseconds(Opts.DrainDelayUsForTest));

      MatchRecorder Rec(MatchRecorder::Mode::Collect);
      for (auto &Scanner : S->Scanners)
        Scanner->feed(Chunk.Data, Rec);
      S->Consumed += Chunk.Data.size();
      uint64_t Offset = S->Scanners.empty()
                            ? S->Consumed
                            : S->Scanners.front()->offset();

      std::shared_ptr<Connection> Conn = S->Conn.lock();
      if (Conn) {
        Conn->QueuedBytes.fetch_sub(Chunk.Data.size(),
                                    std::memory_order_relaxed);
        sendMatchesAndTally(Conn, S->Id, Rec);
        FrameWriter Done;
        Done.u64(S->Id);
        Done.u64(Offset);
        Done.u64(Rec.total());
        // Delivered < total flags recorder-cap truncation to the client
        // (a match-dense chunk can exceed MatchRecorder::Cap pairs).
        Done.u64(Rec.matches().size());
        send(Conn, MsgType::ChunkDone, Done);
      }
      S->TotalMatches += Rec.total();
      MatchesCounter->add(Rec.total());
      LatencyUs->observe(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now() - Chunk.Enqueued)
              .count()));
    }
  }

  void finishSession(const std::shared_ptr<Session> &S) {
    MatchRecorder Rec(MatchRecorder::Mode::Collect);
    uint64_t Offset = S->Consumed;
    for (auto &Scanner : S->Scanners) {
      Offset = Scanner->offset();
      Scanner->finish(Rec);
    }
    S->TotalMatches += Rec.total();
    MatchesCounter->add(Rec.total());
    if (std::shared_ptr<Connection> Conn = S->Conn.lock()) {
      // Erase BEFORE StreamDone goes on the wire: a client that reuses the
      // stream id the moment it sees StreamDone must find the slot free,
      // never race the erase into a spurious DuplicateStream.
      {
        sync::MutexLock Lock(Conn->SessionsMutex);
        Conn->Sessions.erase(S->Id);
      }
      sendMatchesAndTally(Conn, S->Id, Rec);
      FrameWriter F;
      F.u64(S->Id);
      F.u64(Offset);
      F.u64(S->TotalMatches);
      send(Conn, MsgType::StreamDone, F);
    }
    Registry->counter("service.streams.closed").add();
    Registry->gauge("service.sessions.active")
        .set(ActiveSessions.fetch_sub(1, std::memory_order_relaxed) - 1);
  }

  // --- frame handling (reader thread) -----------------------------------

  bool handleHello(const std::shared_ptr<Connection> &Conn,
                   FrameCursor &Cur) {
    uint32_t Version = 0, M = 0;
    std::string Tenant, RulesText;
    if (!Cur.u32(Version) || !Cur.str(Tenant) || !Cur.u32(M) ||
        !Cur.str(RulesText) || !Cur.atEnd()) {
      sendStatus(Conn, StatusCode::ProtocolError, 0, "malformed Hello");
      return false;
    }
    if (Version != kProtocolVersion) {
      sendStatus(Conn, StatusCode::ProtocolError, 0,
                 "unsupported protocol version " + std::to_string(Version));
      return false;
    }
    {
      sync::MutexLock Lock(Conn->SessionsMutex);
      if (!Conn->Sessions.empty()) {
        sendStatus(Conn, StatusCode::ProtocolError, 0,
                   "Hello with streams open");
        return false;
      }
    }
    if (RulesText.size() > Opts.Budget.MaxRulesBytes) {
      Registry->counter("service.rejects.count").add();
      sendStatus(Conn, StatusCode::CompileFailed, 0,
                 "ruleset exceeds tenant budget of " +
                     std::to_string(Opts.Budget.MaxRulesBytes) + " bytes");
      return true;
    }
    std::vector<std::string> Rules;
    std::string Line;
    for (size_t Pos = 0; Pos <= RulesText.size();) {
      size_t Nl = RulesText.find('\n', Pos);
      if (Nl == std::string::npos)
        Nl = RulesText.size();
      Line = RulesText.substr(Pos, Nl - Pos);
      Pos = Nl + 1;
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (!Line.empty() && Line[0] != '#')
        Rules.push_back(Line);
      if (Nl == RulesText.size())
        break;
    }
    if (Rules.empty()) {
      Registry->counter("service.hello.failures").add();
      sendStatus(Conn, StatusCode::CompileFailed, 0, "empty ruleset");
      return true;
    }
    CacheSource Source = CacheSource::Compiled;
    Result<std::shared_ptr<const CompiledRuleset>> Acquired =
        Cache->acquire(Rules, M, &Source);
    if (!Acquired.ok()) {
      Registry->counter("service.hello.failures").add();
      sendStatus(Conn, StatusCode::CompileFailed, 0,
                 Acquired.diag().render());
      return true;
    }
    Conn->Tenant = Tenant;
    Conn->Ruleset = *Acquired;
    Conn->HaveHello = true;
    Registry->counter("service.hello.count").add();

    FrameWriter F;
    F.str((*Acquired)->Key);
    F.u8(static_cast<uint8_t>(Source));
    F.u32((*Acquired)->NumRules);
    F.u32(static_cast<uint32_t>((*Acquired)->Engines.size()));
    send(Conn, MsgType::HelloOk, F);
    return true;
  }

  bool handleOpenStream(const std::shared_ptr<Connection> &Conn,
                        FrameCursor &Cur) {
    uint64_t Id = 0;
    if (!Cur.u64(Id) || !Cur.atEnd()) {
      sendStatus(Conn, StatusCode::ProtocolError, 0, "malformed OpenStream");
      return false;
    }
    if (Stopping.load(std::memory_order_relaxed)) {
      sendStatus(Conn, StatusCode::ShuttingDown, Id, "server stopping");
      return true;
    }
    auto S = std::make_shared<Session>();
    S->Id = Id;
    S->Conn = Conn;
    S->Ruleset = Conn->Ruleset;
    S->Scanners.reserve(Conn->Ruleset->Engines.size());
    for (const ImfantEngine &Engine : Conn->Ruleset->Engines)
      S->Scanners.push_back(std::make_unique<ImfantEngine::Scanner>(Engine));
    {
      sync::MutexLock Lock(Conn->SessionsMutex);
      if (Conn->Sessions.count(Id)) {
        sendStatus(Conn, StatusCode::DuplicateStream, Id,
                   "stream id already open");
        return true;
      }
      if (Conn->Sessions.size() >= Opts.Budget.MaxStreams) {
        Registry->counter("service.rejects.count").add();
        sendStatus(Conn, StatusCode::TooManyStreams, Id,
                   "tenant budget: " +
                       std::to_string(Opts.Budget.MaxStreams) +
                       " concurrent streams");
        return true;
      }
      Conn->Sessions.emplace(Id, std::move(S));
    }
    Registry->counter("service.streams.opened").add();
    Registry->gauge("service.sessions.active")
        .set(ActiveSessions.fetch_add(1, std::memory_order_relaxed) + 1);
    FrameWriter F;
    F.u64(Id);
    send(Conn, MsgType::StreamOpen, F);
    return true;
  }

  bool handleChunk(const std::shared_ptr<Connection> &Conn,
                   FrameCursor &Cur) {
    uint64_t Id = 0;
    std::string_view Payload;
    if (!Cur.u64(Id) || !Cur.rest(Payload)) {
      sendStatus(Conn, StatusCode::ProtocolError, 0, "malformed Chunk");
      return false;
    }
    std::shared_ptr<Session> S;
    {
      sync::MutexLock Lock(Conn->SessionsMutex);
      auto It = Conn->Sessions.find(Id);
      if (It != Conn->Sessions.end())
        S = It->second;
    }
    if (!S) {
      sendStatus(Conn, StatusCode::UnknownStream, Id, "no such stream");
      return true;
    }
    // A chunk bigger than the whole queue budget could never be admitted
    // even by an empty queue, so Overloaded's "retry once drained" promise
    // would loop a compliant client forever — refuse it terminally instead.
    if (Payload.size() > Opts.Budget.MaxQueuedBytes) {
      Registry->counter("service.rejects.count").add();
      sendStatus(Conn, StatusCode::ChunkTooLarge, Id,
                 "chunk of " + std::to_string(Payload.size()) +
                     " bytes exceeds the tenant queue budget of " +
                     std::to_string(Opts.Budget.MaxQueuedBytes) +
                     " bytes and can never be accepted; split it");
      return true;
    }
    uint64_t Queued = Conn->QueuedBytes.load(std::memory_order_relaxed);
    if (Queued + Payload.size() > Opts.Budget.MaxQueuedBytes) {
      ShedCounter->add();
      sendStatus(Conn, StatusCode::Overloaded, Id,
                 "tenant queue budget full (" + std::to_string(Queued) +
                     " of " + std::to_string(Opts.Budget.MaxQueuedBytes) +
                     " bytes queued); retry");
      return true;
    }
    Conn->QueuedBytes.fetch_add(Payload.size(), std::memory_order_relaxed);
    ChunksCounter->add();
    BytesCounter->add(Payload.size());
    ChunkBytes->observe(Payload.size());
    {
      sync::MutexLock Lock(S->QueueMutex);
      if (S->CloseRequested || S->Finished) {
        Conn->QueuedBytes.fetch_sub(Payload.size(),
                                    std::memory_order_relaxed);
        sendStatus(Conn, StatusCode::UnknownStream, Id, "stream is closing");
        return true;
      }
      S->Queue.push_back(PendingChunk{std::string(Payload), Clock::now()});
      QueueDepth->observe(S->Queue.size());
      scheduleLocked(S);
    }
    return true;
  }

  bool handleCloseStream(const std::shared_ptr<Connection> &Conn,
                         FrameCursor &Cur) {
    uint64_t Id = 0;
    if (!Cur.u64(Id) || !Cur.atEnd()) {
      sendStatus(Conn, StatusCode::ProtocolError, 0,
                 "malformed CloseStream");
      return false;
    }
    std::shared_ptr<Session> S;
    {
      sync::MutexLock Lock(Conn->SessionsMutex);
      auto It = Conn->Sessions.find(Id);
      if (It != Conn->Sessions.end())
        S = It->second;
    }
    if (!S) {
      sendStatus(Conn, StatusCode::UnknownStream, Id, "no such stream");
      return true;
    }
    sync::MutexLock Lock(S->QueueMutex);
    if (S->CloseRequested) {
      sendStatus(Conn, StatusCode::UnknownStream, Id, "already closing");
      return true;
    }
    S->CloseRequested = true;
    scheduleLocked(S);
    return true;
  }

  /// \returns false when the connection must close.
  bool handleFrame(const std::shared_ptr<Connection> &Conn, uint8_t RawType,
                   std::string_view Body) {
    FrameCursor Cur(Body);
    auto Type = static_cast<MsgType>(RawType);
    if (Type != MsgType::Hello && Type != MsgType::GetStats &&
        Type != MsgType::Shutdown && !Conn->HaveHello) {
      sendStatus(Conn, StatusCode::NeedHello, 0,
                 "send Hello before stream traffic");
      return true;
    }
    switch (Type) {
    case MsgType::Hello:
      return handleHello(Conn, Cur);
    case MsgType::OpenStream:
      return handleOpenStream(Conn, Cur);
    case MsgType::Chunk:
      return handleChunk(Conn, Cur);
    case MsgType::CloseStream:
      return handleCloseStream(Conn, Cur);
    case MsgType::GetStats: {
      FrameWriter F;
      F.str(Registry->toJson());
      send(Conn, MsgType::Stats, F);
      return true;
    }
    case MsgType::Shutdown:
      if (!Opts.AllowShutdownFrame) {
        sendStatus(Conn, StatusCode::ProtocolError, 0,
                   "Shutdown frame disabled");
        return false;
      }
      sendStatus(Conn, StatusCode::Ok, 0, "stopping");
      requestStopImpl();
      return false;
    default:
      Registry->counter("service.protocol.errors").add();
      sendStatus(Conn, StatusCode::ProtocolError, 0,
                 "unknown message type " + std::to_string(RawType));
      return false;
    }
  }

  void readerLoop(const std::shared_ptr<Connection> &Conn) {
    for (;;) {
      uint8_t Type = 0;
      std::string Body;
      ReadStatus Rs =
          readFrame(Conn->Fd.load(std::memory_order_relaxed),
                    Opts.MaxFrameBytes, Type, Body);
      if (Rs == ReadStatus::Frame) {
        if (!handleFrame(Conn, Type, Body))
          break;
        continue;
      }
      if (Rs == ReadStatus::TooLarge) {
        Registry->counter("service.protocol.errors").add();
        sendStatus(Conn, StatusCode::FrameTooLarge, 0,
                   "frame exceeds " + std::to_string(Opts.MaxFrameBytes) +
                       " bytes");
      } else if (Rs == ReadStatus::Truncated || Rs == ReadStatus::BadLength) {
        Registry->counter("service.protocol.errors").add();
      }
      break; // Eof / IoError / any of the above: tear down.
    }
    teardownConnection(Conn);
    Conn->ReaderDone.store(true, std::memory_order_release);
  }

  void teardownConnection(const std::shared_ptr<Connection> &Conn) {
    // Abort live sessions: drain tasks drop the queue and stop replying.
    std::map<uint64_t, std::shared_ptr<Session>> Orphans;
    {
      sync::MutexLock Lock(Conn->SessionsMutex);
      Orphans.swap(Conn->Sessions);
    }
    for (auto &[Id, S] : Orphans) {
      (void)Id;
      sync::MutexLock Lock(S->QueueMutex);
      if (!S->Finished) {
        S->Aborted = true;
        Registry->counter("service.streams.aborted").add();
        Registry->gauge("service.sessions.active")
            .set(ActiveSessions.fetch_sub(1, std::memory_order_relaxed) - 1);
      }
    }
    {
      sync::MutexLock Lock(Conn->WriteMutex);
      Conn->Closed = true;
    }
    // Only shutdown(2) here — the fd is closed by ~Connection after the
    // reader joins, so a concurrent shutdownSequence() can never hit a
    // recycled descriptor.
    int Fd = Conn->Fd.load(std::memory_order_relaxed);
    if (Fd >= 0)
      ::shutdown(Fd, SHUT_RDWR);
    Conn->Ruleset.reset(); // Unpin the cache entry (RCU-style release).
    Registry->counter("service.connections.closed").add();
    Registry->gauge("service.tenants.active")
        .set(ActiveConnections.fetch_sub(1, std::memory_order_relaxed) - 1);
  }

  // --- accept / lifecycle ----------------------------------------------

  void reapFinishedConnections() {
    sync::MutexLock Lock(ConnMutex);
    for (auto It = Connections.begin(); It != Connections.end();) {
      if ((*It)->ReaderDone.load(std::memory_order_acquire)) {
        if ((*It)->Reader.joinable())
          (*It)->Reader.join();
        It = Connections.erase(It);
      } else {
        ++It;
      }
    }
  }

  void acceptOne(int ListenFd) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      return;
    if (Stopping.load(std::memory_order_relaxed)) {
      ::close(Fd);
      return;
    }
    if (Opts.WriteTimeoutMs > 0) {
      timeval Tv{};
      Tv.tv_sec = Opts.WriteTimeoutMs / 1000;
      Tv.tv_usec = static_cast<suseconds_t>(Opts.WriteTimeoutMs % 1000) * 1000;
      ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv));
    }
    auto Conn = std::make_shared<Connection>();
    Conn->Fd.store(Fd, std::memory_order_relaxed);
    Registry->counter("service.connections.opened").add();
    Registry->gauge("service.tenants.active")
        .set(ActiveConnections.fetch_add(1, std::memory_order_relaxed) + 1);
    {
      sync::MutexLock Lock(ConnMutex);
      Connections.push_back(Conn);
    }
    Conn->Reader = std::thread([this, Conn] { readerLoop(Conn); });
  }

  void acceptLoop() {
    for (;;) {
      pollfd Fds[3];
      nfds_t N = 0;
      int UdsIdx = -1, TcpIdx = -1;
      if (UdsFd >= 0) {
        UdsIdx = static_cast<int>(N);
        Fds[N++] = {UdsFd, POLLIN, 0};
      }
      if (TcpFd >= 0) {
        TcpIdx = static_cast<int>(N);
        Fds[N++] = {TcpFd, POLLIN, 0};
      }
      int StopIdx = static_cast<int>(N);
      Fds[N++] = {StopPipe[0], POLLIN, 0};

      if (::poll(Fds, N, -1) < 0) {
        if (errno == EINTR)
          continue;
        break;
      }
      if (Fds[StopIdx].revents & POLLIN)
        break;
      if (UdsIdx >= 0 && (Fds[UdsIdx].revents & POLLIN))
        acceptOne(UdsFd);
      if (TcpIdx >= 0 && (Fds[TcpIdx].revents & POLLIN))
        acceptOne(TcpFd);
      reapFinishedConnections();
    }
    shutdownSequence();
  }

  void shutdownSequence() {
    Stopping.store(true, std::memory_order_relaxed);
    // Stop accepting; wake every reader blocked in readFrame.
    if (UdsFd >= 0) {
      ::close(UdsFd);
      UdsFd = -1;
      ::unlink(Opts.UdsPath.c_str());
    }
    if (TcpFd >= 0) {
      ::close(TcpFd);
      TcpFd = -1;
    }
    {
      sync::MutexLock Lock(ConnMutex);
      for (const auto &Conn : Connections) {
        // Deliberately NOT under WriteMutex: a writer stalled in send(2) on
        // a non-reading peer holds that mutex, and this shutdown(2) is
        // exactly what unblocks it (EPIPE). The fd cannot be recycled —
        // it is closed only by ~Connection, after the reader join below.
        int Fd = Conn->Fd.load(std::memory_order_relaxed);
        if (Fd >= 0)
          ::shutdown(Fd, SHUT_RDWR);
      }
    }
    // Join all readers (no new ones can appear: listeners are closed).
    for (;;) {
      std::shared_ptr<Connection> Conn;
      {
        sync::MutexLock Lock(ConnMutex);
        if (Connections.empty())
          break;
        Conn = Connections.back();
        Connections.pop_back();
      }
      if (Conn->Reader.joinable())
        Conn->Reader.join();
    }
    // Drain every queued scan task; readers are gone, so nothing resubmits.
    Pool->wait();
    Registry->counter("service.shutdown.clean").add();
    {
      sync::MutexLock Lock(StoppedMutex);
      StoppedFlag = true;
    }
    StoppedCv.notifyAll();
  }

  void requestStopImpl() {
    bool Expected = false;
    if (!Stopping.compare_exchange_strong(Expected, true,
                                          std::memory_order_relaxed) &&
        Expected)
      return; // Already stopping; the pipe byte below would be redundant.
    // Async-signal-safe: one write to the self-pipe.
    if (StopPipe[1] >= 0) {
      char Byte = 's';
      [[maybe_unused]] ssize_t Rc = ::write(StopPipe[1], &Byte, 1);
    }
  }
};

ScanServer::ScanServer() : PImpl(std::make_unique<Impl>()) {}

ScanServer::~ScanServer() {
  // A start() that failed before launching the accept thread has nothing to
  // stop — waitStopped() would block forever on a flag nobody sets.
  if (PImpl->AcceptThread.joinable()) {
    requestStop();
    waitStopped();
    PImpl->AcceptThread.join();
  }
}

void ScanServer::requestStop() { PImpl->requestStopImpl(); }

void ScanServer::waitStopped() {
  sync::MutexLock Lock(PImpl->StoppedMutex);
  // Explicit predicate loop (not a lambda) so the guarded read of
  // StoppedFlag stays visible to the thread-safety analysis.
  while (!PImpl->StoppedFlag)
    PImpl->StoppedCv.wait(Lock);
}

bool ScanServer::stopped() const {
  sync::MutexLock Lock(PImpl->StoppedMutex);
  return PImpl->StoppedFlag;
}

uint16_t ScanServer::tcpPort() const { return PImpl->BoundTcpPort; }

obs::MetricsRegistry &ScanServer::metrics() { return *PImpl->Registry; }

namespace {

Result<int> listenUds(const std::string &Path) {
  sockaddr_un Addr{};
  if (Path.size() >= sizeof(Addr.sun_path))
    return Result<int>::error("UDS path too long: " + Path);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Result<int>::error(std::string("socket: ") + errnoString(errno));
  ::unlink(Path.c_str());
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Fd, 128) < 0) {
    std::string Err = errnoString(errno);
    ::close(Fd);
    return Result<int>::error("bind/listen " + Path + ": " + Err);
  }
  return Fd;
}

Result<int> listenTcp(uint16_t Port, uint16_t &BoundPort) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return Result<int>::error(std::string("socket: ") + errnoString(errno));
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Fd, 128) < 0) {
    std::string Err = errnoString(errno);
    ::close(Fd);
    return Result<int>::error("bind/listen 127.0.0.1:" +
                              std::to_string(Port) + ": " + Err);
  }
  socklen_t Len = sizeof(Addr);
  ::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len);
  BoundPort = ntohs(Addr.sin_port);
  return Fd;
}

} // namespace

Result<std::unique_ptr<ScanServer>>
ScanServer::start(const ServerOptions &Opts) {
  if (Opts.UdsPath.empty() && !Opts.Tcp)
    return Result<std::unique_ptr<ScanServer>>::error(
        "no listener configured (need a UDS path or TCP)");

  auto Server = std::make_unique<ScanServer>();
  Impl &I = *Server->PImpl;
  I.Opts = Opts;
  if (Opts.Metrics) {
    I.Registry = Opts.Metrics;
  } else {
    I.OwnRegistry = std::make_unique<obs::MetricsRegistry>();
    I.Registry = I.OwnRegistry.get();
  }
  I.resolveMetrics();

  CacheOptions CacheOpts = Opts.Cache;
  if (Opts.Budget.CompileDeadlineMs > 0)
    CacheOpts.Compile.Budget.StageDeadlineMs = Opts.Budget.CompileDeadlineMs;
  I.Cache = std::make_unique<RulesetCache>(CacheOpts, I.Registry);

  unsigned Workers = Opts.Workers;
  if (Workers == 0) {
    Workers = std::thread::hardware_concurrency();
    if (Workers < 2)
      Workers = 2;
  }
  I.Pool = std::make_unique<ThreadPool>(Workers);
  I.Registry->gauge("service.workers").set(Workers);

  if (::pipe(I.StopPipe) != 0)
    return Result<std::unique_ptr<ScanServer>>::error(
        std::string("pipe: ") + errnoString(errno));

  if (!Opts.UdsPath.empty()) {
    Result<int> Fd = listenUds(Opts.UdsPath);
    if (!Fd.ok())
      return Fd.takeDiag();
    I.UdsFd = *Fd;
  }
  if (Opts.Tcp) {
    Result<int> Fd = listenTcp(Opts.TcpPort, I.BoundTcpPort);
    if (!Fd.ok())
      return Fd.takeDiag();
    I.TcpFd = *Fd;
  }

  I.AcceptThread = std::thread([PI = Server->PImpl.get()] {
    PI->acceptLoop();
  });
  return Server;
}

} // namespace mfsa::service
