//===- Parser.cpp - POSIX ERE recursive-descent parser ---------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "regex/Parser.h"

#include "regex/Lexer.h"

#include <cassert>

using namespace mfsa;

namespace {

/// Recursive-descent parser over the lexer's token vector.
class Parser {
public:
  explicit Parser(std::vector<Token> Tokens) : Tokens(std::move(Tokens)) {}

  Result<std::unique_ptr<AstNode>> parseAlternation();

  const Token &current() const { return Tokens[Cursor]; }
  void advance() {
    assert(current().Kind != TokenKind::End && "advancing past End");
    ++Cursor;
  }

private:
  Result<std::unique_ptr<AstNode>> parseConcat();
  Result<std::unique_ptr<AstNode>> parseRepeated();
  Result<std::unique_ptr<AstNode>> parseAtom();

  std::vector<Token> Tokens;
  size_t Cursor = 0;
};

} // namespace

Result<std::unique_ptr<AstNode>> Parser::parseAlternation() {
  std::vector<std::unique_ptr<AstNode>> Branches;
  Result<std::unique_ptr<AstNode>> First = parseConcat();
  if (!First)
    return First;
  Branches.push_back(First.take());
  while (current().Kind == TokenKind::Pipe) {
    advance();
    Result<std::unique_ptr<AstNode>> Branch = parseConcat();
    if (!Branch)
      return Branch;
    Branches.push_back(Branch.take());
  }
  if (Branches.size() == 1)
    return std::move(Branches.front());
  return std::unique_ptr<AstNode>(
      std::make_unique<AlternateNode>(std::move(Branches)));
}

Result<std::unique_ptr<AstNode>> Parser::parseConcat() {
  std::vector<std::unique_ptr<AstNode>> Parts;
  for (;;) {
    TokenKind K = current().Kind;
    if (K == TokenKind::Pipe || K == TokenKind::RParen ||
        K == TokenKind::End || K == TokenKind::Dollar)
      break;
    Result<std::unique_ptr<AstNode>> Part = parseRepeated();
    if (!Part)
      return Part;
    Parts.push_back(Part.take());
  }
  if (Parts.empty())
    return std::unique_ptr<AstNode>(std::make_unique<EmptyNode>());
  if (Parts.size() == 1)
    return std::move(Parts.front());
  return std::unique_ptr<AstNode>(
      std::make_unique<ConcatNode>(std::move(Parts)));
}

Result<std::unique_ptr<AstNode>> Parser::parseRepeated() {
  Result<std::unique_ptr<AstNode>> Atom = parseAtom();
  if (!Atom)
    return Atom;
  std::unique_ptr<AstNode> Node = Atom.take();
  for (;;) {
    const Token &T = current();
    uint32_t Min, Max;
    switch (T.Kind) {
    case TokenKind::Star:
      Min = 0;
      Max = RepeatUnbounded;
      break;
    case TokenKind::Plus:
      Min = 1;
      Max = RepeatUnbounded;
      break;
    case TokenKind::Question:
      Min = 0;
      Max = 1;
      break;
    case TokenKind::Repeat:
      Min = T.RepeatMin;
      Max = T.RepeatMax;
      break;
    default:
      return Node;
    }
    advance();
    if (Node->kind() == AstKind::Empty)
      return Result<std::unique_ptr<AstNode>>::error(
          "quantifier applies to nothing", T.Offset);
    Node = std::make_unique<RepeatNode>(std::move(Node), Min, Max);
  }
}

Result<std::unique_ptr<AstNode>> Parser::parseAtom() {
  const Token &T = current();
  switch (T.Kind) {
  case TokenKind::Symbols: {
    SymbolSet Set = T.Symbols;
    advance();
    return std::unique_ptr<AstNode>(std::make_unique<SymbolsNode>(Set));
  }
  case TokenKind::LParen: {
    advance();
    Result<std::unique_ptr<AstNode>> Inner = parseAlternation();
    if (!Inner)
      return Inner;
    if (current().Kind != TokenKind::RParen)
      return Result<std::unique_ptr<AstNode>>::error("expected ')'",
                                                     current().Offset);
    advance();
    return Inner;
  }
  case TokenKind::Star:
  case TokenKind::Plus:
  case TokenKind::Question:
  case TokenKind::Repeat:
    return Result<std::unique_ptr<AstNode>>::error(
        std::string("quantifier ") + tokenKindName(T.Kind) +
            " with no preceding expression",
        T.Offset);
  case TokenKind::Caret:
    return Result<std::unique_ptr<AstNode>>::error(
        "'^' is only supported at the start of the pattern", T.Offset);
  default:
    return Result<std::unique_ptr<AstNode>>::error(
        std::string("unexpected ") + tokenKindName(T.Kind), T.Offset);
  }
}

Result<Regex> mfsa::parseRegex(const std::string &Pattern,
                               const ParseOptions &Options) {
  Lexer Lex(Pattern);
  Result<std::vector<Token>> Tokens = Lex.tokenize();
  if (!Tokens)
    return Tokens.diag();

  Regex Re;
  Re.Source = Pattern;

  std::vector<Token> Toks = Tokens.take();
  if (Options.CaseInsensitive)
    for (Token &T : Toks)
      if (T.Kind == TokenKind::Symbols)
        T.Symbols = T.Symbols.caseFolded();
  // Strip a leading '^' anchor.
  if (Toks.front().Kind == TokenKind::Caret) {
    Re.AnchoredStart = true;
    Toks.erase(Toks.begin());
  }
  // Strip a trailing '$' anchor (the token before End).
  if (Toks.size() >= 2 &&
      Toks[Toks.size() - 2].Kind == TokenKind::Dollar) {
    Re.AnchoredEnd = true;
    Toks.erase(Toks.end() - 2);
  }

  Parser P(std::move(Toks));
  Result<std::unique_ptr<AstNode>> Root = P.parseAlternation();
  if (!Root)
    return Root.diag();
  if (P.current().Kind != TokenKind::End) {
    if (P.current().Kind == TokenKind::RParen)
      return Result<Regex>::error("unmatched ')'", P.current().Offset);
    if (P.current().Kind == TokenKind::Dollar)
      return Result<Regex>::error(
          "'$' is only supported at the end of the pattern",
          P.current().Offset);
    return Result<Regex>::error("trailing input after pattern",
                                P.current().Offset);
  }
  Re.Root = Root.take();
  return Re;
}
