//===- Ast.cpp - regular-expression AST helpers ----------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "regex/Ast.h"

using namespace mfsa;

/// Recursive printer; \p ParentPrecedence decides parenthesization
/// (alternate=0 < concat=1 < repeat=2).
static void printNode(const AstNode &Node, unsigned ParentPrecedence,
                      std::string &Out) {
  switch (Node.kind()) {
  case AstKind::Empty:
    // An empty branch prints as `()`; reparses as empty group.
    Out += "()";
    return;
  case AstKind::Symbols:
    Out += static_cast<const SymbolsNode &>(Node).symbols().toString();
    return;
  case AstKind::Concat: {
    const auto &Children = static_cast<const ConcatNode &>(Node).children();
    bool Paren = ParentPrecedence > 1;
    if (Paren)
      Out.push_back('(');
    for (const auto &C : Children)
      printNode(*C, 1, Out);
    if (Paren)
      Out.push_back(')');
    return;
  }
  case AstKind::Alternate: {
    const auto &Children =
        static_cast<const AlternateNode &>(Node).children();
    bool Paren = ParentPrecedence > 0;
    if (Paren)
      Out.push_back('(');
    for (size_t I = 0; I < Children.size(); ++I) {
      if (I)
        Out.push_back('|');
      printNode(*Children[I], 0, Out);
    }
    if (Paren)
      Out.push_back(')');
    return;
  }
  case AstKind::Repeat: {
    const auto &R = static_cast<const RepeatNode &>(Node);
    printNode(R.child(), 2, Out);
    if (R.min() == 0 && R.isUnbounded())
      Out.push_back('*');
    else if (R.min() == 1 && R.isUnbounded())
      Out.push_back('+');
    else if (R.min() == 0 && R.max() == 1)
      Out.push_back('?');
    else {
      Out.push_back('{');
      Out += std::to_string(R.min());
      if (R.max() != R.min()) {
        Out.push_back(',');
        if (!R.isUnbounded())
          Out += std::to_string(R.max());
      }
      Out.push_back('}');
    }
    return;
  }
  }
}

std::string mfsa::printAst(const AstNode &Node) {
  std::string Out;
  printNode(Node, 0, Out);
  return Out;
}

unsigned mfsa::countAstNodes(const AstNode &Node) {
  switch (Node.kind()) {
  case AstKind::Empty:
  case AstKind::Symbols:
    return 1;
  case AstKind::Concat: {
    unsigned N = 1;
    for (const auto &C : static_cast<const ConcatNode &>(Node).children())
      N += countAstNodes(*C);
    return N;
  }
  case AstKind::Alternate: {
    unsigned N = 1;
    for (const auto &C : static_cast<const AlternateNode &>(Node).children())
      N += countAstNodes(*C);
    return N;
  }
  case AstKind::Repeat:
    return 1 + countAstNodes(static_cast<const RepeatNode &>(Node).child());
  }
  return 0;
}
