//===- Parser.h - POSIX ERE recursive-descent parser ------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines the syntactic-analysis half of the front-end (paper §IV-A; the
/// paper uses Bison, we hand-write a recursive-descent parser for the same
/// POSIX ERE grammar):
///
/// \code
///   pattern     := '^'? alternation '$'?
///   alternation := concat ('|' concat)*
///   concat      := repeated*
///   repeated    := atom ('*' | '+' | '?' | '{m[,[n]]}')*
///   atom        := SYMBOLS | '(' alternation ')'
/// \endcode
///
/// Anchors are only accepted at the pattern boundaries and surface as Regex
/// flags; mid-pattern anchors are rejected with a diagnostic since the
/// automata model (and the paper's rulesets) use unanchored stream matching.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_REGEX_PARSER_H
#define MFSA_REGEX_PARSER_H

#include "regex/Ast.h"
#include "support/Result.h"

#include <string>

namespace mfsa {

/// Front-end knobs.
struct ParseOptions {
  /// Widen every symbol set so ASCII letters match either case, the
  /// equivalent of Snort's `nocase` / PCRE's `/i` applied rule-wide.
  bool CaseInsensitive = false;
};

/// Parses \p Pattern as a POSIX ERE; returns the AST or a positioned
/// diagnostic. This is the front-end entry point used by the compiler
/// pipeline.
Result<Regex> parseRegex(const std::string &Pattern,
                         const ParseOptions &Options = {});

} // namespace mfsa

#endif // MFSA_REGEX_PARSER_H
