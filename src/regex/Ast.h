//===- Ast.h - regular-expression abstract syntax tree ----------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines the AST produced by the front-end (paper §IV-A): "an Abstract
/// Syntax Tree for each input RE, containing all the tokenized elements in a
/// high-level syntactic structure". The middle-end walks this tree with a
/// depth-first Thompson-like construction (§IV-B). Nodes form a small closed
/// hierarchy discriminated by AstKind (no RTTI).
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_REGEX_AST_H
#define MFSA_REGEX_AST_H

#include "regex/Token.h"
#include "support/SymbolSet.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mfsa {

/// Discriminator for the closed AstNode hierarchy.
enum class AstKind : uint8_t {
  Empty,     ///< Matches the empty string (an empty alternation branch).
  Symbols,   ///< One symbol drawn from a SymbolSet (char, class, or `.`).
  Concat,    ///< Sequence of sub-expressions.
  Alternate, ///< `a|b|...` choice among sub-expressions.
  Repeat     ///< Quantified sub-expression: `*` `+` `?` `{m,n}`.
};

/// Base of every AST node. Children own their sub-trees via unique_ptr; the
/// tree is immutable after parsing.
class AstNode {
public:
  explicit AstNode(AstKind Kind) : Kind(Kind) {}
  virtual ~AstNode() = default;

  AstNode(const AstNode &) = delete;
  AstNode &operator=(const AstNode &) = delete;

  AstKind kind() const { return Kind; }

  /// Deep structural copy.
  virtual std::unique_ptr<AstNode> clone() const = 0;

private:
  AstKind Kind;
};

/// Matches the empty string.
class EmptyNode : public AstNode {
public:
  EmptyNode() : AstNode(AstKind::Empty) {}
  std::unique_ptr<AstNode> clone() const override {
    return std::make_unique<EmptyNode>();
  }
};

/// Matches exactly one symbol from Set.
class SymbolsNode : public AstNode {
public:
  explicit SymbolsNode(SymbolSet Set)
      : AstNode(AstKind::Symbols), Set(Set) {}

  const SymbolSet &symbols() const { return Set; }

  std::unique_ptr<AstNode> clone() const override {
    return std::make_unique<SymbolsNode>(Set);
  }

private:
  SymbolSet Set;
};

/// Matches its children in sequence.
class ConcatNode : public AstNode {
public:
  explicit ConcatNode(std::vector<std::unique_ptr<AstNode>> Children)
      : AstNode(AstKind::Concat), Children(std::move(Children)) {}

  const std::vector<std::unique_ptr<AstNode>> &children() const {
    return Children;
  }

  std::unique_ptr<AstNode> clone() const override {
    std::vector<std::unique_ptr<AstNode>> Copy;
    Copy.reserve(Children.size());
    for (const auto &C : Children)
      Copy.push_back(C->clone());
    return std::make_unique<ConcatNode>(std::move(Copy));
  }

private:
  std::vector<std::unique_ptr<AstNode>> Children;
};

/// Matches any one of its children.
class AlternateNode : public AstNode {
public:
  explicit AlternateNode(std::vector<std::unique_ptr<AstNode>> Children)
      : AstNode(AstKind::Alternate), Children(std::move(Children)) {}

  const std::vector<std::unique_ptr<AstNode>> &children() const {
    return Children;
  }

  std::unique_ptr<AstNode> clone() const override {
    std::vector<std::unique_ptr<AstNode>> Copy;
    Copy.reserve(Children.size());
    for (const auto &C : Children)
      Copy.push_back(C->clone());
    return std::make_unique<AlternateNode>(std::move(Copy));
  }

private:
  std::vector<std::unique_ptr<AstNode>> Children;
};

/// Matches Child repeated between Min and Max times; Max == RepeatUnbounded
/// encodes `{m,}`, `*` (0,inf) and `+` (1,inf).
class RepeatNode : public AstNode {
public:
  RepeatNode(std::unique_ptr<AstNode> Child, uint32_t Min, uint32_t Max)
      : AstNode(AstKind::Repeat), Child(std::move(Child)), Min(Min),
        Max(Max) {
    assert(Min <= Max && "inverted repeat bounds");
  }

  const AstNode &child() const { return *Child; }
  uint32_t min() const { return Min; }
  uint32_t max() const { return Max; }
  bool isUnbounded() const { return Max == RepeatUnbounded; }

  std::unique_ptr<AstNode> clone() const override {
    return std::make_unique<RepeatNode>(Child->clone(), Min, Max);
  }

private:
  std::unique_ptr<AstNode> Child;
  uint32_t Min;
  uint32_t Max;
};

/// A parsed regular expression: the AST root plus the pattern-level anchor
/// flags and the original source text (kept for reporting and round-trips).
struct Regex {
  std::unique_ptr<AstNode> Root;
  bool AnchoredStart = false; ///< Pattern began with `^`.
  bool AnchoredEnd = false;   ///< Pattern ended with `$`.
  std::string Source;

  Regex clone() const {
    Regex R;
    R.Root = Root->clone();
    R.AnchoredStart = AnchoredStart;
    R.AnchoredEnd = AnchoredEnd;
    R.Source = Source;
    return R;
  }
};

/// Renders the AST back to a normalized pattern string (for debugging and
/// golden tests). The output reparses to an equivalent tree.
std::string printAst(const AstNode &Node);

/// \returns the number of nodes in the tree, used by tests and stats.
unsigned countAstNodes(const AstNode &Node);

} // namespace mfsa

#endif // MFSA_REGEX_AST_H
