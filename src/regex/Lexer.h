//===- Lexer.h - POSIX ERE lexer --------------------------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines Lexer, the lexical-analysis half of the front-end (paper §IV-A;
/// the paper uses Flex, we hand-write the equivalent). The lexer validates
/// escape sequences, bracket expressions (including ranges, negation, and
/// POSIX named classes such as [:digit:]) and `{m,n}` bounds, reporting
/// malformed input with byte-accurate diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_REGEX_LEXER_H
#define MFSA_REGEX_LEXER_H

#include "regex/Token.h"
#include "support/Result.h"

#include <string>
#include <vector>

namespace mfsa {

/// Lexes a whole pattern into a token vector ending with TokenKind::End.
class Lexer {
public:
  explicit Lexer(std::string Pattern) : Pattern(std::move(Pattern)) {}

  /// Tokenizes the pattern; fails on malformed escapes, classes, or bounds.
  Result<std::vector<Token>> tokenize();

private:
  bool atEnd() const { return Cursor >= Pattern.size(); }
  char peek() const { return Pattern[Cursor]; }

  Result<Token> lexOne();
  Result<SymbolSet> lexEscape();
  Result<SymbolSet> lexBracketExpression();
  Result<Token> lexRepeatBounds();

  /// Parses a POSIX named class body (the `alpha` in `[:alpha:]`).
  static bool namedClass(const std::string &Name, SymbolSet &Out);

  std::string Pattern;
  size_t Cursor = 0;
};

} // namespace mfsa

#endif // MFSA_REGEX_LEXER_H
