//===- Token.h - POSIX ERE token stream -------------------------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines the token vocabulary produced by the front-end lexer (paper
/// §IV-A). Character classes are lexed whole: a `[...]` expression, an
/// escape, `.` and a plain character all surface as a single Symbols token
/// carrying the SymbolSet the parser will attach to the AST leaf.
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_REGEX_TOKEN_H
#define MFSA_REGEX_TOKEN_H

#include "support/SymbolSet.h"

#include <cstdint>
#include <cstddef>
#include <string>

namespace mfsa {

/// Token kinds of the POSIX-ERE lexical grammar.
enum class TokenKind : uint8_t {
  Symbols,  ///< A character, escape, `.`, or bracket expression.
  Star,     ///< `*`
  Plus,     ///< `+`
  Question, ///< `?`
  Repeat,   ///< `{m}`, `{m,}` or `{m,n}`
  Pipe,     ///< `|`
  LParen,   ///< `(`
  RParen,   ///< `)`
  Caret,    ///< `^` (start anchor)
  Dollar,   ///< `$` (end anchor)
  End       ///< end of pattern
};

/// \returns a stable spelling for diagnostics ("'*'", "character class"...).
const char *tokenKindName(TokenKind Kind);

/// Sentinel for an unbounded repetition upper bound, i.e. `{m,}`.
inline constexpr uint32_t RepeatUnbounded = UINT32_MAX;

/// One lexed token; Symbols/Repeat payloads are only meaningful for the
/// corresponding kinds.
struct Token {
  TokenKind Kind = TokenKind::End;
  size_t Offset = 0;        ///< Byte offset of the token in the pattern.
  SymbolSet Symbols;        ///< Payload for TokenKind::Symbols.
  uint32_t RepeatMin = 0;   ///< Payload for TokenKind::Repeat.
  uint32_t RepeatMax = 0;   ///< Payload for TokenKind::Repeat.
};

} // namespace mfsa

#endif // MFSA_REGEX_TOKEN_H
