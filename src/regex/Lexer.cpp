//===- Lexer.cpp - POSIX ERE lexer -----------------------------------------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//

#include "regex/Lexer.h"

#include <cctype>

using namespace mfsa;

const char *mfsa::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Symbols:
    return "character";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Question:
    return "'?'";
  case TokenKind::Repeat:
    return "repetition bounds";
  case TokenKind::Pipe:
    return "'|'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::Caret:
    return "'^'";
  case TokenKind::Dollar:
    return "'$'";
  case TokenKind::End:
    return "end of pattern";
  }
  return "unknown token";
}

/// Builds the symbol set for a Perl-style shorthand class. \returns false if
/// \p C is not a shorthand.
static bool shorthandClass(char C, SymbolSet &Out) {
  switch (C) {
  case 'd':
    Out = SymbolSet::range('0', '9');
    return true;
  case 'D':
    Out = SymbolSet::range('0', '9').complement();
    return true;
  case 'w':
    Out = SymbolSet::range('a', 'z') | SymbolSet::range('A', 'Z') |
          SymbolSet::range('0', '9') | SymbolSet::singleton('_');
    return true;
  case 'W': {
    SymbolSet W;
    shorthandClass('w', W);
    Out = W.complement();
    return true;
  }
  case 's':
    Out = SymbolSet::of(" \t\n\r\f\v");
    return true;
  case 'S':
    Out = SymbolSet::of(" \t\n\r\f\v").complement();
    return true;
  default:
    return false;
  }
}

bool Lexer::namedClass(const std::string &Name, SymbolSet &Out) {
  if (Name == "alpha")
    Out = SymbolSet::range('a', 'z') | SymbolSet::range('A', 'Z');
  else if (Name == "digit")
    Out = SymbolSet::range('0', '9');
  else if (Name == "alnum")
    Out = SymbolSet::range('a', 'z') | SymbolSet::range('A', 'Z') |
          SymbolSet::range('0', '9');
  else if (Name == "upper")
    Out = SymbolSet::range('A', 'Z');
  else if (Name == "lower")
    Out = SymbolSet::range('a', 'z');
  else if (Name == "space")
    Out = SymbolSet::of(" \t\n\r\f\v");
  else if (Name == "blank")
    Out = SymbolSet::of(" \t");
  else if (Name == "punct") {
    Out = SymbolSet();
    for (unsigned C = 0x21; C < 0x7f; ++C)
      if (std::ispunct(C))
        Out.insert(static_cast<unsigned char>(C));
  } else if (Name == "xdigit")
    Out = SymbolSet::range('0', '9') | SymbolSet::range('a', 'f') |
          SymbolSet::range('A', 'F');
  else if (Name == "print")
    Out = SymbolSet::range(0x20, 0x7e);
  else if (Name == "graph")
    Out = SymbolSet::range(0x21, 0x7e);
  else if (Name == "cntrl") {
    Out = SymbolSet::range(0x00, 0x1f) | SymbolSet::singleton(0x7f);
  } else
    return false;
  return true;
}

Result<SymbolSet> Lexer::lexEscape() {
  // The leading backslash has been consumed; Cursor points at the escape
  // body.
  if (atEnd())
    return Result<SymbolSet>::error("trailing backslash", Cursor - 1);
  char C = Pattern[Cursor++];
  SymbolSet Short;
  if (shorthandClass(C, Short))
    return Short;
  switch (C) {
  case 'n':
    return SymbolSet::singleton('\n');
  case 't':
    return SymbolSet::singleton('\t');
  case 'r':
    return SymbolSet::singleton('\r');
  case 'f':
    return SymbolSet::singleton('\f');
  case 'v':
    return SymbolSet::singleton('\v');
  case 'a':
    return SymbolSet::singleton('\a');
  case '0':
    return SymbolSet::singleton('\0');
  case 'x': {
    // \xHH with exactly one or two hex digits.
    unsigned Value = 0;
    unsigned Digits = 0;
    while (Digits < 2 && !atEnd() &&
           std::isxdigit(static_cast<unsigned char>(peek()))) {
      char D = Pattern[Cursor++];
      unsigned Nibble = std::isdigit(static_cast<unsigned char>(D))
                            ? static_cast<unsigned>(D - '0')
                            : static_cast<unsigned>(
                                  std::tolower(static_cast<unsigned char>(D)) -
                                  'a' + 10);
      Value = Value * 16 + Nibble;
      ++Digits;
    }
    if (Digits == 0)
      return Result<SymbolSet>::error("\\x requires hex digits", Cursor);
    return SymbolSet::singleton(static_cast<unsigned char>(Value));
  }
  default:
    // Any other escaped character stands for itself (covers the ERE
    // metacharacters \. \* \[ \\ ... and, permissively, ordinary letters).
    return SymbolSet::singleton(static_cast<unsigned char>(C));
  }
}

Result<SymbolSet> Lexer::lexBracketExpression() {
  // The opening '[' has been consumed.
  size_t OpenOffset = Cursor - 1;
  bool Negated = false;
  if (!atEnd() && peek() == '^') {
    Negated = true;
    ++Cursor;
  }
  SymbolSet Set;
  bool First = true;
  for (;;) {
    if (atEnd())
      return Result<SymbolSet>::error("unterminated bracket expression",
                                      OpenOffset);
    char C = Pattern[Cursor];
    if (C == ']' && !First) {
      ++Cursor;
      break;
    }
    First = false;

    // POSIX named class [:name:].
    if (C == '[' && Cursor + 1 < Pattern.size() &&
        Pattern[Cursor + 1] == ':') {
      size_t NameBegin = Cursor + 2;
      size_t NameEnd = Pattern.find(":]", NameBegin);
      if (NameEnd == std::string::npos)
        return Result<SymbolSet>::error("unterminated [:class:]", Cursor);
      std::string Name = Pattern.substr(NameBegin, NameEnd - NameBegin);
      SymbolSet Named;
      if (!namedClass(Name, Named))
        return Result<SymbolSet>::error("unknown class [:" + Name + ":]",
                                        Cursor);
      Set |= Named;
      Cursor = NameEnd + 2;
      continue;
    }

    // A range endpoint: either an escape or a plain character.
    SymbolSet Lo;
    if (C == '\\') {
      ++Cursor;
      Result<SymbolSet> Esc = lexEscape();
      if (!Esc)
        return Esc;
      Lo = *Esc;
    } else {
      Lo = SymbolSet::singleton(static_cast<unsigned char>(C));
      ++Cursor;
    }

    // `X-Y` range (but `-` just before `]` is a literal dash, and a
    // multi-symbol escape such as \d cannot open a range).
    if (!atEnd() && peek() == '-' && Cursor + 1 < Pattern.size() &&
        Pattern[Cursor + 1] != ']' && Lo.isSingleton()) {
      ++Cursor; // consume '-'
      char HiChar = Pattern[Cursor];
      SymbolSet Hi;
      if (HiChar == '\\') {
        ++Cursor;
        Result<SymbolSet> Esc = lexEscape();
        if (!Esc)
          return Esc;
        Hi = *Esc;
      } else {
        Hi = SymbolSet::singleton(static_cast<unsigned char>(HiChar));
        ++Cursor;
      }
      if (!Hi.isSingleton() || Hi.min() < Lo.min())
        return Result<SymbolSet>::error("invalid character range", Cursor);
      Set |= SymbolSet::range(Lo.min(), Hi.min());
      continue;
    }
    Set |= Lo;
  }
  if (Negated)
    Set = Set.complement();
  if (Set.empty())
    return Result<SymbolSet>::error("empty bracket expression", OpenOffset);
  return Set;
}

Result<Token> Lexer::lexRepeatBounds() {
  // The opening '{' has been consumed.
  size_t OpenOffset = Cursor - 1;
  Token T;
  T.Kind = TokenKind::Repeat;
  T.Offset = OpenOffset;

  auto LexNumber = [&](uint32_t &Out) -> bool {
    if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
      return false;
    uint64_t Value = 0;
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) {
      Value = Value * 10 + static_cast<uint64_t>(Pattern[Cursor++] - '0');
      if (Value > 100000) // reject absurd bounds early
        return false;
    }
    Out = static_cast<uint32_t>(Value);
    return true;
  };

  if (!LexNumber(T.RepeatMin))
    return Result<Token>::error("expected number after '{'", Cursor);
  if (!atEnd() && peek() == '}') {
    ++Cursor;
    T.RepeatMax = T.RepeatMin;
    return T;
  }
  if (atEnd() || peek() != ',')
    return Result<Token>::error("expected ',' or '}' in bounds", Cursor);
  ++Cursor; // consume ','
  if (!atEnd() && peek() == '}') {
    ++Cursor;
    T.RepeatMax = RepeatUnbounded;
    return T;
  }
  if (!LexNumber(T.RepeatMax))
    return Result<Token>::error("expected number after ',' in bounds", Cursor);
  if (atEnd() || peek() != '}')
    return Result<Token>::error("expected '}' closing bounds", Cursor);
  ++Cursor;
  if (T.RepeatMax < T.RepeatMin)
    return Result<Token>::error("bounds {m,n} require m <= n", OpenOffset);
  return T;
}

Result<Token> Lexer::lexOne() {
  Token T;
  T.Offset = Cursor;
  char C = Pattern[Cursor++];
  switch (C) {
  case '*':
    T.Kind = TokenKind::Star;
    return T;
  case '+':
    T.Kind = TokenKind::Plus;
    return T;
  case '?':
    T.Kind = TokenKind::Question;
    return T;
  case '|':
    T.Kind = TokenKind::Pipe;
    return T;
  case '(':
    T.Kind = TokenKind::LParen;
    return T;
  case ')':
    T.Kind = TokenKind::RParen;
    return T;
  case '^':
    T.Kind = TokenKind::Caret;
    return T;
  case '$':
    T.Kind = TokenKind::Dollar;
    return T;
  case '{':
    return lexRepeatBounds();
  case '}':
    // POSIX treats a stray '}' as a literal; we follow suit.
    T.Kind = TokenKind::Symbols;
    T.Symbols = SymbolSet::singleton('}');
    return T;
  case ']':
    return Result<Token>::error("unmatched ']'", T.Offset);
  case '[': {
    Result<SymbolSet> Class = lexBracketExpression();
    if (!Class)
      return Class.diag();
    T.Kind = TokenKind::Symbols;
    T.Symbols = *Class;
    return T;
  }
  case '.':
    T.Kind = TokenKind::Symbols;
    // Match any symbol except newline, the conventional `.` semantics for
    // line-oriented rulesets such as Snort's.
    T.Symbols = SymbolSet::singleton('\n').complement();
    return T;
  case '\\': {
    Result<SymbolSet> Esc = lexEscape();
    if (!Esc)
      return Esc.diag();
    T.Kind = TokenKind::Symbols;
    T.Symbols = *Esc;
    return T;
  }
  default:
    T.Kind = TokenKind::Symbols;
    T.Symbols = SymbolSet::singleton(static_cast<unsigned char>(C));
    return T;
  }
}

Result<std::vector<Token>> Lexer::tokenize() {
  std::vector<Token> Tokens;
  while (!atEnd()) {
    Result<Token> T = lexOne();
    if (!T)
      return T.diag();
    Tokens.push_back(*T);
  }
  Token EndToken;
  EndToken.Kind = TokenKind::End;
  EndToken.Offset = Pattern.size();
  Tokens.push_back(EndToken);
  return Tokens;
}
