//===- abl_planner.cpp - planner ablation (Engine::Auto vs fixed) ------------===//
//
// Part of the mfsa project. MIT License.
//
// Does the static cost planner (analysis/Planner.h) earn its keep? Every
// Table I dataset is scanned by each fixed engine — dense/sparse iMFAnt at
// their best merging factor out of {1, 50, all}, the union DFA and stride-2
// DFA at the fewest feasible groups, and the literal prefilter — and by the
// engine + merging factor the planner picked from the same candidates. The
// headline per dataset is auto_s vs best_fixed_s: a planner that predicts
// well matches the best fixed engine without being told which one it is.
//
// Engine construction is excluded from the timed region (the planner's
// value proposition is picking the right engine, not building it faster);
// the plan's own wall time is reported separately as plan_ms. Every engine's
// match total is cross-checked, and the bench fails outright if Auto is more
// than 20% *and* more than 50 ms behind the best fixed engine — the same
// shape of noise band tools/compare_bench_json.py applies in CI.
//
// Each dataset's full decision trace (EnginePlan::explainJson()) is embedded
// in the report's "plans" object so a regression in the *choice* is visible
// in the JSON diff, not just in the timing drift it causes.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "analysis/Planner.h"
#include "engine/PlannedEngine.h"
#include "support/Timer.h"

#include "CliInput.h"

#include <cstring>
#include <numeric>

using namespace mfsa;
using namespace mfsa::bench;

namespace {

struct EngineTiming {
  bool Feasible = false;
  double Sec = 0.0;
  uint64_t Matches = 0;
  uint32_t Factor = 0;
};

/// Builds \p Choice at merging factor \p M over the dataset and times the
/// scan, best of repetitions(). Infeasible builds (DFA blowup, stride table
/// cap) return Feasible=false instead of dying: the planner is supposed to
/// know about those, the fixed-engine sweep just skips them.
EngineTiming timeEngine(Engine Choice, const CompiledDataset &Dataset,
                        uint32_t M) {
  EnginePlan Fixed;
  Fixed.Choice = Choice;
  Fixed.MergingFactor = M;
  std::vector<uint32_t> Ids(Dataset.OptimizedFsas.size());
  std::iota(Ids.begin(), Ids.end(), 0u);
  Result<PlannedEngineSet> Set = PlannedEngineSet::createFromRuleset(
      Fixed, Dataset.OptimizedFsas, Ids, Dataset.Rules);
  if (!Set.ok())
    return {};
  EngineTiming T;
  T.Feasible = true;
  T.Factor = M;
  for (unsigned Rep = 0; Rep < repetitions(); ++Rep) {
    MatchRecorder Recorder;
    Timer Wall;
    Set->run(Dataset.Stream, Recorder);
    double Sec = Wall.elapsedSec();
    if (Rep == 0 || Sec < T.Sec)
      T.Sec = Sec;
    T.Matches = Recorder.total();
  }
  return T;
}

/// Best feasible timing for \p Choice over the candidate factors, cheapest
/// group counts first so the DFA family stops at its first feasible build.
EngineTiming bestOver(Engine Choice, const CompiledDataset &Dataset,
                      const std::vector<uint32_t> &Factors) {
  EngineTiming Best;
  for (uint32_t M : Factors) {
    EngineTiming T = timeEngine(Choice, Dataset, M);
    if (T.Feasible && (!Best.Feasible || T.Sec < Best.Sec))
      Best = T;
    // The DFA family's cost scales with group count, not group size: the
    // first feasible (fewest-groups) build is also the predicted-best one.
    if (T.Feasible &&
        (Choice == Engine::Dfa || Choice == Engine::StridedDfa))
      break;
  }
  return Best;
}

} // namespace

int main(int argc, char **argv) {
  // What-if mode: `abl_planner --engine dfa` pins the planner's choice so a
  // single fixed engine can be studied against the sweep. Shares the
  // examples' flag parser (and its exit-code-2 usage contract).
  Engine Forced = Engine::Auto;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--engine") && I + 1 < argc) {
      if (int Rc = cli::parseEngineFlag(argv[++I], Forced))
        return Rc;
    } else {
      std::fprintf(stderr, "usage: %s [--engine "
                           "auto|dense|sparse|dfa|stride2|prefilter]\n",
                   argv[0]);
      return cli::kExitUsage;
    }
  }

  printHeader("Planner ablation - Engine::Auto vs every fixed engine",
              "§V engine choice; static cost & activation-width analyzer");
  BenchReport Report("abl_planner",
                     "§V engine choice; static cost & activation-width "
                     "analyzer");

  bool SelfGateFailed = false;
  std::printf("%-8s %9s %9s %9s %9s %9s | %9s %-14s %9s\n", "dataset",
              "dense", "sparse", "dfa", "stride2", "prefilt", "auto",
              "(choice)", "best-fix");
  for (const DatasetSpec &Spec : standardDatasets()) {
    CompiledDataset Dataset = compileDataset(Spec, streamBytes());

    // The planner sees the same candidate factors the fixed sweep uses.
    PlannerOptions PO;
    PO.Force = Forced;
    Timer PlanWall;
    std::vector<uint32_t> Ids(Dataset.OptimizedFsas.size());
    std::iota(Ids.begin(), Ids.end(), 0u);
    EnginePlan Plan =
        planRuleset(Dataset.OptimizedFsas, Ids, Dataset.Rules, PO);
    double PlanMs = PlanWall.elapsedMs();
    Report.plan(Spec.Abbrev, Plan.explainJson());
    Plan.recordTo(Report.registry());

    const std::vector<uint32_t> ImfantFactors = {0, 50, 1};
    const std::vector<uint32_t> DfaFactors = {0, 50};
    EngineTiming Dense = bestOver(Engine::ImfantDense, Dataset, ImfantFactors);
    EngineTiming Sparse =
        bestOver(Engine::ImfantSparse, Dataset, ImfantFactors);
    EngineTiming Dfa = bestOver(Engine::Dfa, Dataset, DfaFactors);
    EngineTiming Stride2 = bestOver(Engine::StridedDfa, Dataset, DfaFactors);
    EngineTiming Prefilter = timeEngine(Engine::Prefilter, Dataset, 0);

    EngineTiming Auto;
    {
      Result<PlannedEngineSet> Set = PlannedEngineSet::createFromRuleset(
          Plan, Dataset.OptimizedFsas, Ids, Dataset.Rules);
      if (!Set.ok()) {
        // The probe and the real builder disagreed on feasibility; fall
        // back to dense at the plan's factor, as runtime consumers do.
        std::fprintf(stderr, "warning: %s: planned %s engine failed (%s); "
                             "falling back to dense\n",
                     Spec.Abbrev.c_str(), engineName(Plan.Choice),
                     Set.diag().render().c_str());
        Auto = timeEngine(Engine::ImfantDense, Dataset, Plan.MergingFactor);
      } else {
        Auto.Feasible = true;
        Auto.Factor = Plan.MergingFactor;
        for (unsigned Rep = 0; Rep < repetitions(); ++Rep) {
          MatchRecorder Recorder;
          Timer Wall;
          Set->run(Dataset.Stream, Recorder);
          double Sec = Wall.elapsedSec();
          if (Rep == 0 || Sec < Auto.Sec)
            Auto.Sec = Sec;
          Auto.Matches = Recorder.total();
        }
      }
    }

    // Every engine that ran must agree on the match total.
    const EngineTiming *All[] = {&Dense,   &Sparse,    &Dfa,
                                 &Stride2, &Prefilter, &Auto};
    const char *Names[] = {"dense", "sparse", "dfa", "stride2", "prefilter",
                           "auto"};
    for (size_t I = 0; I < 6; ++I)
      if (All[I]->Feasible && All[I]->Matches != Dense.Matches) {
        std::fprintf(stderr, "MISMATCH on %s: %s found %lu matches, dense "
                             "found %lu\n",
                     Spec.Abbrev.c_str(), Names[I],
                     static_cast<unsigned long>(All[I]->Matches),
                     static_cast<unsigned long>(Dense.Matches));
        return 1;
      }

    double BestFixed = Dense.Sec;
    for (size_t I = 1; I < 5; ++I)
      if (All[I]->Feasible && All[I]->Sec < BestFixed)
        BestFixed = All[I]->Sec;

    auto Cell = [](const EngineTiming &T) -> std::string {
      if (!T.Feasible)
        return "-";
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.4fs", T.Sec);
      return Buf;
    };
    std::string Choice = std::string(engineName(Plan.Choice)) + "@" +
                         mergingFactorName(Plan.MergingFactor);
    std::printf("%-8s %9s %9s %9s %9s %9s | %8.4fs %-14s %8.4fs\n",
                Spec.Abbrev.c_str(), Cell(Dense).c_str(), Cell(Sparse).c_str(),
                Cell(Dfa).c_str(), Cell(Stride2).c_str(),
                Cell(Prefilter).c_str(), Auto.Sec, Choice.c_str(), BestFixed);

    Report.result(Spec.Abbrev + ".dense_s", Dense.Sec, "s");
    Report.result(Spec.Abbrev + ".sparse_s", Sparse.Sec, "s");
    if (Dfa.Feasible)
      Report.result(Spec.Abbrev + ".dfa_s", Dfa.Sec, "s");
    if (Stride2.Feasible)
      Report.result(Spec.Abbrev + ".stride2_s", Stride2.Sec, "s");
    if (Prefilter.Feasible)
      Report.result(Spec.Abbrev + ".prefilter_s", Prefilter.Sec, "s");
    Report.result(Spec.Abbrev + ".auto_s", Auto.Sec, "s");
    Report.result(Spec.Abbrev + ".best_fixed_s", BestFixed, "s");
    // Unit "ms/plan" keeps this row out of compare_bench_json.py's gated
    // set: planning wall time is informational, not a throughput headline.
    Report.result(Spec.Abbrev + ".plan_ms", PlanMs, "ms/plan");

    // Self-gate, mirroring the CI noise band: Auto may trail the best fixed
    // engine by measurement noise, never by a wrong choice.
    if (Auto.Sec > BestFixed * 1.20 && Auto.Sec - BestFixed > 0.05) {
      std::fprintf(stderr, "PLANNER REGRESSION on %s: auto %.4fs vs best "
                           "fixed %.4fs (chose %s)\n",
                   Spec.Abbrev.c_str(), Auto.Sec, BestFixed, Choice.c_str());
      SelfGateFailed = true;
    }
  }

  std::printf("\nauto within the noise band of best-fixed on every dataset "
              "= the planner never picks a losing engine; '-' = engine "
              "infeasible (DFA blowup / stride table cap)\n");
  return SelfGateFailed ? 1 : 0;
}
