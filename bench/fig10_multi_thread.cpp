//===- fig10_multi_thread.cpp - reproduce Fig. 10 (thread scaling) -----------===//
//
// Part of the mfsa project. MIT License.
//
// Paper Fig. 10: execution time when the K = ceil(N/M) automata of a
// benchmark are distributed over T threads, T in [1, 128], for every merging
// factor. Reported markers: the best-performing M = 1 configuration, the
// best-performing M > 1 configuration (paper: geomean 4.05x speedup between
// them), and the MFSA configuration reaching the best single-FSA time with
// the fewest threads (paper: 1-2 threads suffice).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "engine/Parallel.h"

using namespace mfsa;
using namespace mfsa::bench;

int main() {
  printHeader("Fig. 10 - multi-threaded execution scaling",
              "Fig. 10 (time vs threads per M; speedup and thread-utilization "
              "markers)");
  BenchReport Report("fig10_multi_thread",
                     "Fig. 10 (time vs threads per M; speedup markers)");

  const unsigned Reps = repetitions();
  std::vector<unsigned> Threads;
  for (unsigned T = 1; T <= maxThreads(); T *= 2)
    Threads.push_back(T);
  const std::vector<uint32_t> Factors = {1, 10, 50, 0};

  std::vector<double> Speedups;
  std::vector<double> ThreadSavings;

  for (const DatasetSpec &Spec : standardDatasets()) {
    CompiledDataset Dataset = compileDataset(Spec, streamBytes());
    std::printf("%s (execution time [s])\n%-6s", Spec.Abbrev.c_str(), "M\\T");
    for (unsigned T : Threads)
      std::printf(" %8u", T);
    std::printf("\n");

    double BestSingle = 0;   // best M=1 time over all T
    double BestMerged = 0;   // best M>1 time over all T
    unsigned BestSingleT = 1;
    unsigned FewestThreadsBeatingSingle = 0;
    uint32_t FewestThreadsM = 0;

    for (uint32_t M : Factors) {
      std::vector<ImfantEngine> Engines = buildEngines(Dataset, M);
      std::printf("%-6s", mergingFactorName(M).c_str());
      for (unsigned T : Threads) {
        double Best = 0;
        for (unsigned Rep = 0; Rep < Reps; ++Rep) {
          ParallelRunResult Result = runParallel(Engines, Dataset.Stream, T);
          if (Rep == 0 || Result.WallSeconds < Best)
            Best = Result.WallSeconds;
        }
        std::printf(" %8.3f", Best);
        if (M == 1) {
          if (BestSingle == 0 || Best < BestSingle) {
            BestSingle = Best;
            BestSingleT = T;
          }
        } else if (BestMerged == 0 || Best < BestMerged) {
          BestMerged = Best;
        }
      }
      std::printf("\n");
    }

    // Thread-utilization marker: the fewest threads at which some M > 1
    // configuration meets the best single-FSA time.
    for (unsigned T : Threads) {
      bool Found = false;
      for (uint32_t M : Factors) {
        if (M == 1)
          continue;
        std::vector<ImfantEngine> Engines = buildEngines(Dataset, M);
        ParallelRunResult Result = runParallel(Engines, Dataset.Stream, T);
        if (Result.WallSeconds <= BestSingle) {
          FewestThreadsBeatingSingle = T;
          FewestThreadsM = M;
          Found = true;
          break;
        }
      }
      if (Found)
        break;
    }

    double Speedup = BestSingle / BestMerged;
    Speedups.push_back(Speedup);
    Report.result(Spec.Abbrev + ".best_single_s", BestSingle, "s");
    Report.result(Spec.Abbrev + ".best_merged_s", BestMerged, "s");
    Report.result(Spec.Abbrev + ".speedup", Speedup, "x");
    if (FewestThreadsBeatingSingle > 0)
      ThreadSavings.push_back(static_cast<double>(BestSingleT) /
                              FewestThreadsBeatingSingle);
    std::printf("  best M=1: %.3fs @%uT | best M>1: %.3fs | speedup %.2fx | "
                "matches best M=1 with %u thread(s) at M=%s\n\n",
                BestSingle, BestSingleT, BestMerged, Speedup,
                FewestThreadsBeatingSingle,
                mergingFactorName(FewestThreadsM).c_str());
  }

  std::printf("geomean best-MFSA speedup over best parallel single-FSAs: "
              "%.2fx (paper: 4.05x, range 2.52x-6.18x)\n",
              geomean(Speedups));
  Report.result("geomean.speedup", geomean(Speedups), "x");
  if (!ThreadSavings.empty()) {
    std::printf("geomean thread-count saving at equal performance: %.2fx "
                "(paper: MFSAs need 1-2 threads to match single-FSA best)\n",
                geomean(ThreadSavings));
    Report.result("geomean.thread_saving", geomean(ThreadSavings), "x");
  }
  return 0;
}
