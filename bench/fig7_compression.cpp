//===- fig7_compression.cpp - reproduce Fig. 7 (automata compression) --------===//
//
// Part of the mfsa project. MIT License.
//
// Paper Fig. 7: state and transition compression percentage of the MFSA set
// versus the unmerged FSAs, for merging factors M = 2, 5, 10, 20, 50, 100,
// all. Paper headline at M = all: 71.95% states, 38.88% transitions on
// average, with a plateau as the alphabet saturates.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "mfsa/Merge.h"

using namespace mfsa;
using namespace mfsa::bench;

int main() {
  printHeader("Fig. 7 - MFSA compression vs merging factor",
              "Fig. 7 (state/transition compression percentages)");
  BenchReport Report("fig7_compression",
                     "Fig. 7 (state/transition compression percentages)");

  std::vector<uint32_t> Factors = {2, 5, 10, 20, 50, 100, 0};

  std::printf("state compression %% (higher is better)\n%-8s", "dataset");
  for (uint32_t M : Factors)
    std::printf(" %7s", ("M=" + mergingFactorName(M)).c_str());
  std::printf("\n");

  // Collect both tables in one pass over the datasets.
  std::vector<std::vector<double>> TransRows;
  std::vector<std::string> Names;
  std::vector<double> AllStates, AllTrans;
  for (const DatasetSpec &Spec : standardDatasets()) {
    CompiledDataset Dataset = compileDataset(Spec, /*StreamSize=*/0);
    uint64_t BaseStates = 0, BaseTrans = 0;
    for (const Nfa &A : Dataset.OptimizedFsas) {
      BaseStates += A.numStates();
      BaseTrans += A.numTransitions();
    }
    std::printf("%-8s", Spec.Abbrev.c_str());
    std::vector<double> TransRow;
    for (uint32_t M : Factors) {
      std::vector<Mfsa> Groups = mergeInGroups(Dataset.OptimizedFsas, M);
      MfsaSetStats Stats = computeSetStats(Groups);
      double StatePct = compressionPercent(BaseStates, Stats.TotalStates);
      double TransPct = compressionPercent(BaseTrans, Stats.TotalTransitions);
      std::printf(" %7.2f", StatePct);
      TransRow.push_back(TransPct);
      if (M == 0) {
        AllStates.push_back(StatePct);
        AllTrans.push_back(TransPct);
        Report.result(Spec.Abbrev + ".state_compression_m_all", StatePct,
                      "percent");
        Report.result(Spec.Abbrev + ".transition_compression_m_all",
                      TransPct, "percent");
      }
    }
    std::printf("\n");
    TransRows.push_back(std::move(TransRow));
    Names.push_back(Spec.Abbrev);
  }

  std::printf("\ntransition compression %% (higher is better)\n%-8s",
              "dataset");
  for (uint32_t M : Factors)
    std::printf(" %7s", ("M=" + mergingFactorName(M)).c_str());
  std::printf("\n");
  for (size_t I = 0; I < TransRows.size(); ++I) {
    std::printf("%-8s", Names[I].c_str());
    for (double V : TransRows[I])
      std::printf(" %7.2f", V);
    std::printf("\n");
  }

  double StateAvg = 0, TransAvg = 0;
  for (size_t I = 0; I < AllStates.size(); ++I) {
    StateAvg += AllStates[I];
    TransAvg += AllTrans[I];
  }
  StateAvg /= static_cast<double>(AllStates.size());
  TransAvg /= static_cast<double>(AllTrans.size());
  std::printf("\nM=all averages: states %.2f%% (paper 71.95%%), transitions "
              "%.2f%% (paper 38.88%%)\n",
              StateAvg, TransAvg);
  Report.result("avg.state_compression_m_all", StateAvg, "percent");
  Report.result("avg.transition_compression_m_all", TransAvg, "percent");
  std::printf("expected shape: monotone growth in M with a plateau toward "
              "M=all; states compress more than transitions\n");
  return 0;
}
