//===- scan_load.cpp - multi-tenant scan-service load generator -----------===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the scan service with N tenants x M streams under adversarial
/// chunk sizes and mid-run connect/disconnect churn, and checks the service
/// against the offline oracle: every completed stream's (rule, end-offset)
/// match set must be byte-identical to a one-shot offline scan of the same
/// bytes. Emits BENCH_fig_service.json (client-side p50/p99 chunk latency,
/// aggregate throughput, divergence and cache-reuse accounting) — the file
/// CI's service-soak and perf-regression jobs gate on.
///
/// By default the server runs in-process on a temporary Unix-domain socket
/// with its metrics wired into the report registry, so the JSON carries the
/// full service.* catalog; --uds drives an externally launched scan_service
/// instead (the soak job's mode) and fetches its metrics over GetStats.
///
/// Exit codes: 0 clean, 1 divergence or missing cache reuse, 2 usage,
/// 3 connect/start failure.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "service/Client.h"
#include "service/Server.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace mfsa;
using namespace mfsa::bench;
using namespace mfsa::service;

namespace {

struct LoadConfig {
  unsigned Tenants = 3;
  unsigned Streams = 2;
  double Seconds = 3.0;
  uint32_t Merge = 0;      ///< Merging factor M (0 = all rules in one MFSA).
  unsigned AbandonEvery = 3; ///< Every Kth round disconnects mid-stream.
  std::string Dataset = "BRO";
  std::string ExternalUds;  ///< Non-empty: drive a server someone else ran.
  std::string CacheDir;     ///< In-process server's artifact cache dir.
};

/// Chunk-size cycle covering the adversarial shapes: single bytes straddling
/// every boundary, tiny primes, and page-plus sizes.
constexpr size_t kChunkSizes[] = {1,  2,   3,    5,    7,    16,
                                  64, 256, 1024, 4096, 65521, 65536};

/// Per-tenant-thread accounting, merged after join.
struct TenantStats {
  std::vector<uint64_t> LatenciesUs;
  uint64_t Bytes = 0;
  uint64_t Chunks = 0;
  uint64_t Rounds = 0;
  uint64_t StreamsCompleted = 0;
  uint64_t DivergentStreams = 0;
  uint64_t ShedRetries = 0;
  uint64_t HelloMemory = 0;   ///< Hellos served from the resident cache.
  uint64_t HelloArtifact = 0; ///< Hellos served from the on-disk artifact.
  uint64_t Errors = 0;
  std::string FirstError;
};

void noteError(TenantStats &S, const std::string &Message) {
  ++S.Errors;
  if (S.FirstError.empty())
    S.FirstError = Message;
}

/// One tenant: rounds of connect -> Hello -> scan M streams (round-robin,
/// adversarial chunking) -> close, until the wall budget expires. Every
/// AbandonEvery-th round drops the connection mid-stream instead, so the
/// soak also exercises the server's orphaned-session cleanup under load.
void tenantLoop(unsigned TenantId, const LoadConfig &Cfg,
                const std::string &UdsPath,
                const std::vector<std::string> &Rules,
                const std::vector<std::string> &Streams,
                const std::vector<std::vector<ClientMatch>> &Oracle,
                TenantStats &Stats) {
  Timer Wall;
  for (uint64_t Round = 0;; ++Round) {
    if (Round > 0 && Wall.elapsedSec() >= Cfg.Seconds)
      break;
    bool Abandon =
        Cfg.AbandonEvery > 0 && (Round % Cfg.AbandonEvery) == Cfg.AbandonEvery - 1;

    Result<ScanClient> Client = ScanClient::connectUds(UdsPath);
    if (!Client.ok()) {
      noteError(Stats, Client.diag().render());
      return;
    }
    Result<HelloInfo> Hello =
        Client->hello("tenant-" + std::to_string(TenantId), Rules, Cfg.Merge);
    if (!Hello.ok()) {
      noteError(Stats, Hello.diag().render());
      return;
    }
    if (Hello->Source == CacheSource::Memory)
      ++Stats.HelloMemory;
    else if (Hello->Source == CacheSource::Artifact)
      ++Stats.HelloArtifact;

    struct StreamState {
      uint64_t Id = 0;
      size_t Pos = 0;       ///< Next unsent byte.
      size_t ChunkIdx = 0;  ///< Cursor into kChunkSizes.
      bool Done = false;
      std::vector<ClientMatch> Matches;
    };
    std::vector<StreamState> Open(Streams.size());
    for (size_t Slot = 0; Slot < Streams.size(); ++Slot) {
      Open[Slot].Id = Slot + 1;
      // Offset the chunk-size cycle per tenant/round/slot so boundaries
      // land differently every time while content stays oracle-checked.
      Open[Slot].ChunkIdx =
          (TenantId * 131 + static_cast<size_t>(Round) * 17 + Slot * 7) %
          std::size(kChunkSizes);
      std::string Message;
      Result<StatusCode> Opened = Client->openStream(Open[Slot].Id, &Message);
      if (!Opened.ok() || *Opened != StatusCode::Ok) {
        noteError(Stats, !Opened.ok() ? Opened.diag().render() : Message);
        return;
      }
    }

    bool AnyPending = true;
    while (AnyPending) {
      AnyPending = false;
      for (size_t Slot = 0; Slot < Open.size(); ++Slot) {
        StreamState &St = Open[Slot];
        if (St.Done)
          continue;
        const std::string &Data = Streams[Slot];
        // Abandon rounds stop half-way and drop the connection below.
        size_t Limit = Abandon ? Data.size() / 2 : Data.size();
        if (St.Pos >= Limit) {
          St.Done = true;
          continue;
        }
        AnyPending = true;
        size_t Len =
            std::min(kChunkSizes[St.ChunkIdx % std::size(kChunkSizes)],
                     Limit - St.Pos);
        ++St.ChunkIdx;
        std::string_view Chunk(Data.data() + St.Pos, Len);
        for (;;) {
          Timer T;
          Result<ChunkOutcome> Out = Client->sendChunk(St.Id, Chunk);
          if (!Out.ok()) {
            noteError(Stats, Out.diag().render());
            return;
          }
          Stats.LatenciesUs.push_back(T.elapsedNs() / 1000);
          if (Out->Status == StatusCode::Overloaded) {
            // The shed chunk was not consumed; retry is the contract.
            ++Stats.ShedRetries;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            continue;
          }
          if (Out->Status != StatusCode::Ok) {
            noteError(Stats, std::string("chunk rejected: ") +
                                 statusName(Out->Status));
            return;
          }
          St.Matches.insert(St.Matches.end(), Out->Matches.begin(),
                            Out->Matches.end());
          Stats.Bytes += Len;
          ++Stats.Chunks;
          break;
        }
        St.Pos += Len;
      }
    }

    if (!Abandon) {
      for (size_t Slot = 0; Slot < Open.size(); ++Slot) {
        StreamState &St = Open[Slot];
        Result<StreamEnd> End = Client->closeStream(St.Id);
        if (!End.ok() || End->Status != StatusCode::Ok) {
          noteError(Stats, !End.ok() ? End.diag().render()
                                     : std::string("close rejected: ") +
                                           statusName(End->Status));
          return;
        }
        St.Matches.insert(St.Matches.end(), End->Matches.begin(),
                          End->Matches.end());
        // The differential check: sort both sides and demand equality.
        std::sort(St.Matches.begin(), St.Matches.end());
        if (St.Matches != Oracle[Slot] ||
            End->TotalBytes != Streams[Slot].size()) {
          ++Stats.DivergentStreams;
          if (Stats.FirstError.empty())
            Stats.FirstError =
                "stream " + std::to_string(Slot) + ": service " +
                std::to_string(St.Matches.size()) + " matches / " +
                std::to_string(End->TotalBytes) + " bytes vs oracle " +
                std::to_string(Oracle[Slot].size()) + " matches / " +
                std::to_string(Streams[Slot].size()) + " bytes";
        } else {
          ++Stats.StreamsCompleted;
        }
      }
    }
    ++Stats.Rounds;
    // Client destructor disconnects — on abandon rounds with streams open.
  }
}

/// Pulls one counter out of a MetricsRegistry::toJson() dump; 0 if absent.
uint64_t jsonCounter(const std::string &Json, const std::string &Name) {
  std::string Needle = "\"" + Name + "\": ";
  size_t Pos = Json.find(Needle);
  if (Pos == std::string::npos)
    return 0;
  return std::strtoull(Json.c_str() + Pos + Needle.size(), nullptr, 10);
}

uint64_t percentile(std::vector<uint64_t> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Idx = static_cast<size_t>(P * static_cast<double>(Sorted.size()));
  if (Idx >= Sorted.size())
    Idx = Sorted.size() - 1;
  return Sorted[Idx];
}

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--tenants N] [--streams M] [--seconds S] [--merge M]\n"
      "          [--dataset ABBREV] [--abandon-every K] [--cache-dir DIR]\n"
      "          [--uds PATH]\n"
      "\n"
      "Load-drives the scan service and differentially checks every\n"
      "completed stream against the offline oracle. Without --uds a server\n"
      "runs in-process; with it, an external scan_service is driven (the CI\n"
      "soak mode). Stream size comes from MFSA_STREAM_BYTES.\n",
      Argv0);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  LoadConfig Cfg;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto NextValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Flag);
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--tenants")
      Cfg.Tenants = static_cast<unsigned>(
          std::strtoul(NextValue("--tenants"), nullptr, 10));
    else if (Arg == "--streams")
      Cfg.Streams = static_cast<unsigned>(
          std::strtoul(NextValue("--streams"), nullptr, 10));
    else if (Arg == "--seconds")
      Cfg.Seconds = std::strtod(NextValue("--seconds"), nullptr);
    else if (Arg == "--merge")
      Cfg.Merge = static_cast<uint32_t>(
          std::strtoul(NextValue("--merge"), nullptr, 10));
    else if (Arg == "--dataset")
      Cfg.Dataset = NextValue("--dataset");
    else if (Arg == "--abandon-every")
      Cfg.AbandonEvery = static_cast<unsigned>(
          std::strtoul(NextValue("--abandon-every"), nullptr, 10));
    else if (Arg == "--cache-dir")
      Cfg.CacheDir = NextValue("--cache-dir");
    else if (Arg == "--uds")
      Cfg.ExternalUds = NextValue("--uds");
    else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", Arg.c_str());
      return usage(Argv[0]);
    }
  }
  if (Cfg.Tenants == 0 || Cfg.Streams == 0)
    return usage(Argv[0]);

  const DatasetSpec *Spec = findDataset(Cfg.Dataset);
  if (!Spec) {
    std::fprintf(stderr, "error: unknown dataset '%s'\n",
                 Cfg.Dataset.c_str());
    return 2;
  }

  BenchReport Report("fig_service", "service-mode amortization of compiled "
                                    "rulesets (docs/service.md)");
  Report.config("tenants", Cfg.Tenants);
  Report.config("streams_per_tenant", Cfg.Streams);
  Report.config("seconds", static_cast<uint64_t>(Cfg.Seconds));
  Report.config("merging_factor", Cfg.Merge);
  Report.config("dataset", Spec->Abbrev);
  Report.config("abandon_every", Cfg.AbandonEvery);
  Report.config("mode", Cfg.ExternalUds.empty() ? "in-process" : "external");

  std::printf("=== scan-service load/soak ===\n");
  std::printf("config: %u tenants x %u streams, %.1fs, M=%s, dataset=%s, "
              "%zu-byte streams, mode=%s\n\n",
              Cfg.Tenants, Cfg.Streams, Cfg.Seconds,
              mergingFactorName(Cfg.Merge).c_str(), Spec->Abbrev.c_str(),
              streamBytes(), Cfg.ExternalUds.empty() ? "in-process"
                                                     : Cfg.ExternalUds.c_str());

  // The shared ruleset every tenant announces — cache reuse is the point.
  std::vector<std::string> Rules = generateRuleset(*Spec);

  // Offline oracle: same compile the server performs, one-shot scans.
  CompileOptions OracleOpts;
  OracleOpts.MergingFactor = Cfg.Merge;
  OracleOpts.EmitAnml = false;
  Result<CompileArtifacts> Oracle = compileRuleset(Rules, OracleOpts);
  if (!Oracle.ok()) {
    std::fprintf(stderr, "error: oracle compile failed: %s\n",
                 Oracle.diag().render().c_str());
    return 3;
  }
  std::vector<ImfantEngine> OracleEngines;
  OracleEngines.reserve(Oracle->Mfsas.size());
  for (const Mfsa &Z : Oracle->Mfsas)
    OracleEngines.emplace_back(Z);

  // Stream contents are keyed by slot only, so all tenants and all rounds
  // re-scan identical bytes under different chunkings and the oracle is
  // computed once per slot.
  std::vector<std::string> Streams(Cfg.Streams);
  std::vector<std::vector<ClientMatch>> OracleMatches(Cfg.Streams);
  for (unsigned Slot = 0; Slot < Cfg.Streams; ++Slot) {
    Streams[Slot] = generateStream(*Spec, Rules, streamBytes(), Slot);
    MatchRecorder Rec(MatchRecorder::Mode::Collect);
    for (const ImfantEngine &Engine : OracleEngines)
      Engine.run(Streams[Slot], Rec);
    for (const auto &[Rule, End] : Rec.matches())
      OracleMatches[Slot].push_back(ClientMatch{Rule, End});
    std::sort(OracleMatches[Slot].begin(), OracleMatches[Slot].end());
  }

  // Server: in-process on a temp socket unless --uds points elsewhere.
  std::unique_ptr<ScanServer> Local;
  std::string UdsPath = Cfg.ExternalUds;
  if (UdsPath.empty()) {
    UdsPath = "/tmp/mfsa_scan_load_" + std::to_string(::getpid()) + ".sock";
    ServerOptions SrvOpts;
    SrvOpts.UdsPath = UdsPath;
    SrvOpts.Cache.CacheDir = Cfg.CacheDir;
    SrvOpts.Metrics = &Report.registry();
    Result<std::unique_ptr<ScanServer>> Started = ScanServer::start(SrvOpts);
    if (!Started.ok()) {
      std::fprintf(stderr, "error: server start failed: %s\n",
                   Started.diag().render().c_str());
      return 3;
    }
    Local = Started.take();
  }

  std::vector<TenantStats> Stats(Cfg.Tenants);
  std::vector<std::thread> Threads;
  Timer Wall;
  for (unsigned T = 0; T < Cfg.Tenants; ++T)
    Threads.emplace_back([&, T] {
      tenantLoop(T, Cfg, UdsPath, Rules, Streams, OracleMatches, Stats[T]);
    });
  for (std::thread &Th : Threads)
    Th.join();
  double WallSec = Wall.elapsedSec();

  // External mode: pull the server-side counters over the wire.
  uint64_t CacheHits = 0, CacheMisses = 0;
  if (Local) {
    CacheHits = Report.registry().counter("service.cache.hits").value();
    CacheMisses = Report.registry().counter("service.cache.misses").value();
  } else {
    Result<ScanClient> Client = ScanClient::connectUds(UdsPath);
    if (Client.ok()) {
      Result<std::string> Json = Client->stats();
      if (Json.ok()) {
        CacheHits = jsonCounter(*Json, "service.cache.hits");
        CacheMisses = jsonCounter(*Json, "service.cache.misses");
      }
    }
  }

  // Merge per-tenant accounting.
  std::vector<uint64_t> Latencies;
  uint64_t Bytes = 0, Chunks = 0, Rounds = 0, Completed = 0, Divergent = 0,
           Shed = 0, HelloMemory = 0, HelloArtifact = 0, Errors = 0;
  std::string FirstError;
  for (const TenantStats &S : Stats) {
    Latencies.insert(Latencies.end(), S.LatenciesUs.begin(),
                     S.LatenciesUs.end());
    Bytes += S.Bytes;
    Chunks += S.Chunks;
    Rounds += S.Rounds;
    Completed += S.StreamsCompleted;
    Divergent += S.DivergentStreams;
    Shed += S.ShedRetries;
    HelloMemory += S.HelloMemory;
    HelloArtifact += S.HelloArtifact;
    Errors += S.Errors;
    if (FirstError.empty())
      FirstError = S.FirstError;
  }
  std::sort(Latencies.begin(), Latencies.end());
  uint64_t P50 = percentile(Latencies, 0.50);
  uint64_t P99 = percentile(Latencies, 0.99);
  double MbPerSec =
      WallSec > 0 ? static_cast<double>(Bytes) / (1e6 * WallSec) : 0;
  uint64_t Lookups = CacheHits + CacheMisses;
  double HitRatio =
      Lookups ? static_cast<double>(CacheHits) / static_cast<double>(Lookups)
              : 0;

  std::printf("rounds %llu, chunks %llu, %.1f MB scanned in %.2fs "
              "(%.1f MB/s aggregate)\n",
              static_cast<unsigned long long>(Rounds),
              static_cast<unsigned long long>(Chunks),
              static_cast<double>(Bytes) / 1e6, WallSec, MbPerSec);
  std::printf("chunk latency p50 %llu us, p99 %llu us over %zu chunks\n",
              static_cast<unsigned long long>(P50),
              static_cast<unsigned long long>(P99), Latencies.size());
  std::printf("streams: %llu completed, %llu divergent; shed retries %llu\n",
              static_cast<unsigned long long>(Completed),
              static_cast<unsigned long long>(Divergent),
              static_cast<unsigned long long>(Shed));
  std::printf("ruleset cache: %llu hits / %llu lookups (%.0f%%), "
              "hello sources: memory %llu, artifact %llu\n",
              static_cast<unsigned long long>(CacheHits),
              static_cast<unsigned long long>(Lookups), 100 * HitRatio,
              static_cast<unsigned long long>(HelloMemory),
              static_cast<unsigned long long>(HelloArtifact));

  Report.result("service.aggregate_mb_s", MbPerSec, "MB/s");
  Report.result("service.p50_chunk_latency_us", static_cast<double>(P50),
                "us");
  Report.result("service.p99_chunk_latency_us", static_cast<double>(P99),
                "us");
  Report.result("service.streams_completed", static_cast<double>(Completed),
                "streams");
  Report.result("service.divergent_streams", static_cast<double>(Divergent),
                "streams");
  Report.result("service.shed_retries", static_cast<double>(Shed),
                "retries");
  Report.result("service.cache_hit_ratio", HitRatio, "ratio");
  Report.result("service.hello_memory_hits",
                static_cast<double>(HelloMemory), "hellos");

  Local.reset(); // Clean server shutdown before the verdict.

  if (Errors || Divergent) {
    std::fprintf(stderr, "FAIL: %llu errors, %llu divergent streams (%s)\n",
                 static_cast<unsigned long long>(Errors),
                 static_cast<unsigned long long>(Divergent),
                 FirstError.c_str());
    return 1;
  }
  // With >= 2 hellos total, the content-addressed cache must have been
  // reused at least once — that IS the tentpole's amortization claim.
  if (Rounds >= 2 && HelloMemory + HelloArtifact + CacheHits == 0) {
    std::fprintf(stderr, "FAIL: no compiled-ruleset reuse across %llu "
                         "hellos — cache is not amortizing\n",
                 static_cast<unsigned long long>(Rounds));
    return 1;
  }
  std::printf("OK: zero divergence, cache reuse proven\n");
  return 0;
}
