//===- abl_loop_expansion.cpp - ablation A (loop expansion, Fig. 5a) ---------===//
//
// Part of the mfsa project. MIT License.
//
// Paper §IV-C (2) / Fig. 5a claims loop expansion "maximizes possibly
// mergeable states by providing additional merging paths". This ablation
// compiles every dataset with expansion on (default) and off (compact
// cyclic over-approximation, see fsa/Builder.h) and compares single-FSA
// sizes and the M = all compression. Expansion costs states per FSA but
// wins them back — and more — at merge time.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace mfsa;
using namespace mfsa::bench;

namespace {

struct Row {
  uint64_t SingleStates = 0;
  uint64_t MergedStates = 0;
  double CompressionPct = 0;
};

Row measure(const std::vector<std::string> &Rules, bool Expand) {
  CompileOptions Options;
  Options.MergingFactor = 0;
  Options.EmitAnml = false;
  Options.Build.ExpandBoundedRepeats = Expand;
  Result<CompileArtifacts> Artifacts = compileRuleset(Rules, Options);
  if (!Artifacts.ok()) {
    std::fprintf(stderr, "fatal: %s\n", Artifacts.diag().render().c_str());
    std::exit(1);
  }
  Row Out;
  for (const Nfa &A : Artifacts->OptimizedFsas)
    Out.SingleStates += A.numStates();
  Out.MergedStates = computeSetStats(Artifacts->Mfsas).TotalStates;
  Out.CompressionPct =
      compressionPercent(Out.SingleStates, Out.MergedStates);
  return Out;
}

} // namespace

int main() {
  printHeader("Ablation A - loop expansion on/off",
              "Fig. 5a (expanded loops maximize mergeable transitions)");
  BenchReport Report("abl_loop_expansion",
                     "Fig. 5a (expanded loops maximize mergeable "
                     "transitions)");

  std::printf("%-8s | %10s %10s %8s | %10s %10s %8s\n", "dataset",
              "exp:FSA-st", "MFSA-st", "comp%", "cmp:FSA-st", "MFSA-st",
              "comp%");
  for (const DatasetSpec &Spec : standardDatasets()) {
    std::vector<std::string> Rules = generateRuleset(Spec);
    Row Expanded = measure(Rules, /*Expand=*/true);
    Row Compact = measure(Rules, /*Expand=*/false);
    std::printf("%-8s | %10lu %10lu %8.2f | %10lu %10lu %8.2f\n",
                Spec.Abbrev.c_str(),
                static_cast<unsigned long>(Expanded.SingleStates),
                static_cast<unsigned long>(Expanded.MergedStates),
                Expanded.CompressionPct,
                static_cast<unsigned long>(Compact.SingleStates),
                static_cast<unsigned long>(Compact.MergedStates),
                Compact.CompressionPct);
    Report.result(Spec.Abbrev + ".expanded_compression",
                  Expanded.CompressionPct, "percent");
    Report.result(Spec.Abbrev + ".compact_compression",
                  Compact.CompressionPct, "percent");
  }
  std::printf("\nnote: 'cmp' (expansion off) over-approximates bounded "
              "repetitions (ablation-only mode); compare compression "
              "columns, not semantics\n");
  return 0;
}
