//===- table1_datasets.cpp - reproduce Table I (dataset characteristics) -----===//
//
// Part of the mfsa project. MIT License.
//
// Paper Table I: per dataset, the number of REs and the total/average number
// of states and transitions of the optimized single FSAs, plus the total
// character-class length. Our rulesets are calibrated synthetics (DESIGN.md
// §2), so the row shapes — not the exact figures — are the comparison target.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace mfsa;
using namespace mfsa::bench;

int main() {
  printHeader("Table I - dataset characteristics",
              "Table I (rule counts, FSA sizes, CC pressure)");
  BenchReport Report("table1_datasets",
                     "Table I (rule counts, FSA sizes, CC pressure)");

  std::printf("%-8s %8s %10s %10s %10s %10s %10s\n", "dataset", "#REs",
              "totStates", "totTrans", "totCCLen", "avgStates", "avgTrans");
  for (const DatasetSpec &Spec : standardDatasets()) {
    CompiledDataset Dataset =
        compileDataset(Spec, /*StreamSize=*/0, &Report.registry());
    uint64_t States = 0, Trans = 0, CcLen = 0;
    for (const Nfa &A : Dataset.OptimizedFsas) {
      NfaStats Stats = computeStats(A);
      States += Stats.NumStates;
      Trans += Stats.NumTransitions;
      CcLen += Stats.TotalCcLength;
    }
    double N = static_cast<double>(Dataset.OptimizedFsas.size());
    std::printf("%-8s %8zu %10lu %10lu %10lu %10.2f %10.2f\n",
                Spec.Abbrev.c_str(), Dataset.Rules.size(),
                static_cast<unsigned long>(States),
                static_cast<unsigned long>(Trans),
                static_cast<unsigned long>(CcLen),
                static_cast<double>(States) / N,
                static_cast<double>(Trans) / N);
    Report.result(Spec.Abbrev + ".total_states",
                  static_cast<double>(States), "states");
    Report.result(Spec.Abbrev + ".total_transitions",
                  static_cast<double>(Trans), "transitions");
    Report.result(Spec.Abbrev + ".total_cc_length",
                  static_cast<double>(CcLen), "chars");
  }
  std::printf("\npaper reference rows (Table I): BRO 217/2863/2645, DS9 "
              "299/12883/12614, PEN 300/4726/4554,\n  PRO 300/3704/3400, RG1 "
              "299/12913/12644, TCP 300/9105/8906 (REs/states/transitions)\n");
  return 0;
}
