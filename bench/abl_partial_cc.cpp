//===- abl_partial_cc.cpp - ablation D (partial character-class merging) -----===//
//
// Part of the mfsa project. MIT License.
//
// Paper §VI-A names the improvement: "it could be possible to partially
// merge two CCs based on the characters belonging to both". This bench
// compares the default exact-CC merging with the alphabet-partition
// splitting that realizes partial merging (fsa/AlphabetPartition.h), at
// M = all: state compression improves (finer sharing), transition counts
// grow (classes split into atoms).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "fsa/AlphabetPartition.h"
#include "mfsa/Merge.h"

using namespace mfsa;
using namespace mfsa::bench;

int main() {
  printHeader("Ablation D - partial CC merging via alphabet atoms",
              "§VI-A proposed CC-merging improvement");
  BenchReport Report("abl_partial_cc",
                     "§VI-A proposed CC-merging improvement");

  std::printf("%-8s %6s | %9s %9s %8s | %9s %9s %8s\n", "dataset", "atoms",
              "ex:states", "trans", "st-comp%", "at:states", "trans",
              "st-comp%");
  for (const DatasetSpec &Spec : standardDatasets()) {
    CompiledDataset Dataset = compileDataset(Spec, /*StreamSize=*/0);
    uint64_t BaseStates = 0;
    for (const Nfa &A : Dataset.OptimizedFsas)
      BaseStates += A.numStates();

    std::vector<SymbolSet> Atoms =
        computeAlphabetAtoms(Dataset.OptimizedFsas);
    std::vector<Nfa> Split = splitAllByAtoms(Dataset.OptimizedFsas);

    MfsaSetStats Exact =
        computeSetStats(mergeInGroups(Dataset.OptimizedFsas, 0));
    MfsaSetStats Atomized = computeSetStats(mergeInGroups(Split, 0));

    std::printf("%-8s %6zu | %9lu %9lu %8.2f | %9lu %9lu %8.2f\n",
                Spec.Abbrev.c_str(), Atoms.size(),
                static_cast<unsigned long>(Exact.TotalStates),
                static_cast<unsigned long>(Exact.TotalTransitions),
                compressionPercent(BaseStates, Exact.TotalStates),
                static_cast<unsigned long>(Atomized.TotalStates),
                static_cast<unsigned long>(Atomized.TotalTransitions),
                compressionPercent(BaseStates, Atomized.TotalStates));
    Report.result(Spec.Abbrev + ".exact_compression",
                  compressionPercent(BaseStates, Exact.TotalStates),
                  "percent");
    Report.result(Spec.Abbrev + ".atomized_compression",
                  compressionPercent(BaseStates, Atomized.TotalStates),
                  "percent");
  }
  std::printf("\nexpected shape: atom splitting buys extra state compression "
              "on CC-heavy datasets (PRO, RG1) at the price of more "
              "transitions in the matching table\n");
  return 0;
}
