//===- fig1_indel.cpp - reproduce Fig. 1 (INDEL similarity) -------------------===//
//
// Part of the mfsa project. MIT License.
//
// Paper Fig. 1: average normalized INDEL similarity over every pair of REs
// within each dataset — the proxy motivating the merging approach (paper
// reports an average of ~0.34 across datasets).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "workload/Indel.h"

using namespace mfsa;
using namespace mfsa::bench;

int main() {
  printHeader("Fig. 1 - normalized INDEL similarity per dataset",
              "Fig. 1 (average pairwise RE similarity)");
  BenchReport Report("fig1_indel", "Fig. 1 (average pairwise RE similarity)");

  std::printf("%-8s %8s %12s\n", "dataset", "#REs", "similarity");
  std::vector<double> All;
  for (const DatasetSpec &Spec : standardDatasets()) {
    std::vector<std::string> Rules = generateRuleset(Spec);
    double Similarity = averagePairSimilarity(Rules, /*MaxPairs=*/100000,
                                              /*Seed=*/Spec.Seed);
    All.push_back(Similarity);
    std::printf("%-8s %8zu %12.4f\n", Spec.Abbrev.c_str(), Rules.size(),
                Similarity);
    Report.result(Spec.Abbrev + ".similarity", Similarity, "ratio");
  }
  double Mean = 0;
  for (double V : All)
    Mean += V;
  Mean /= static_cast<double>(All.size());
  std::printf("%-8s %8s %12.4f   (paper: ~0.34)\n", "AVG", "", Mean);
  Report.result("avg.similarity", Mean, "ratio");
  return 0;
}
