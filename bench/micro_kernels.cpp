//===- micro_kernels.cpp - google-benchmark microbenchmarks ------------------===//
//
// Part of the mfsa project. MIT License.
//
// Microbenchmarks for the hot kernels underlying the paper-level numbers:
// front-end parsing, Thompson construction + optimization, merging, engine
// scanning at several merging factors, and the INDEL kernels. These are the
// pieces a performance regression would hide in.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "fsa/Passes.h"
#include "workload/Indel.h"

#include <benchmark/benchmark.h>

using namespace mfsa;
using namespace mfsa::bench;

namespace {

/// Shared fixture state, built once.
struct Fixture {
  CompiledDataset Bro = compileDataset(*findDataset("BRO"), 1 << 16);
  std::vector<ImfantEngine> EnginesM1 = buildEngines(Bro, 1);
  std::vector<ImfantEngine> EnginesM50 = buildEngines(Bro, 50);
  std::vector<ImfantEngine> EnginesAll = buildEngines(Bro, 0);
};

Fixture &fixture() {
  static Fixture F;
  return F;
}

void BM_ParseRuleset(benchmark::State &State) {
  const std::vector<std::string> &Rules = fixture().Bro.Rules;
  for (auto _ : State) {
    for (const std::string &Rule : Rules) {
      Result<Regex> Re = parseRegex(Rule);
      benchmark::DoNotOptimize(Re.ok());
    }
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Rules.size()));
}
BENCHMARK(BM_ParseRuleset);

void BM_BuildAndOptimize(benchmark::State &State) {
  Result<Regex> Re = parseRegex("(get|post)[a-z0-9]{2,6}/(http|ftp)x*");
  for (auto _ : State) {
    Result<Nfa> A = buildNfa(*Re);
    Nfa Optimized = optimizeForMerging(*A);
    benchmark::DoNotOptimize(Optimized.numStates());
  }
}
BENCHMARK(BM_BuildAndOptimize);

void BM_MergeAll(benchmark::State &State) {
  const std::vector<Nfa> &Fsas = fixture().Bro.OptimizedFsas;
  for (auto _ : State) {
    std::vector<Mfsa> Groups = mergeInGroups(Fsas, 0);
    benchmark::DoNotOptimize(Groups.size());
  }
}
BENCHMARK(BM_MergeAll);

void scanBench(benchmark::State &State,
               const std::vector<ImfantEngine> &Engines) {
  const std::string &Stream = fixture().Bro.Stream;
  for (auto _ : State) {
    uint64_t Total = 0;
    for (const ImfantEngine &Engine : Engines) {
      MatchRecorder Recorder;
      Engine.run(Stream, Recorder);
      Total += Recorder.total();
    }
    benchmark::DoNotOptimize(Total);
  }
  State.SetBytesProcessed(State.iterations() *
                          static_cast<int64_t>(Stream.size()) *
                          static_cast<int64_t>(Engines.size()));
}

void BM_ScanM1(benchmark::State &State) {
  scanBench(State, fixture().EnginesM1);
}
BENCHMARK(BM_ScanM1);

void BM_ScanM50(benchmark::State &State) {
  scanBench(State, fixture().EnginesM50);
}
BENCHMARK(BM_ScanM50);

void BM_ScanAll(benchmark::State &State) {
  scanBench(State, fixture().EnginesAll);
}
BENCHMARK(BM_ScanAll);

void BM_IndelDp(benchmark::State &State) {
  std::string A(120, 'a'), B(130, 'b');
  for (size_t I = 0; I < A.size(); I += 3)
    A[I] = 'b';
  for (auto _ : State)
    benchmark::DoNotOptimize(indelDistanceDp(A, B));
}
BENCHMARK(BM_IndelDp);

void BM_IndelBitParallel(benchmark::State &State) {
  std::string A(120, 'a'), B(130, 'b');
  for (size_t I = 0; I < A.size(); I += 3)
    A[I] = 'b';
  for (auto _ : State)
    benchmark::DoNotOptimize(lcsLengthBitParallel(A, B));
}
BENCHMARK(BM_IndelBitParallel);

} // namespace

int main(int argc, char **argv) {
  BenchReport Report("micro_kernels",
                     "hot-kernel microbenchmarks (google-benchmark)");
  // The scan benchmarks run instrumented when the hooks are compiled in;
  // the google-benchmark numbers land on stdout, the internals in the JSON.
  for (ImfantEngine &Engine : fixture().EnginesAll)
    Engine.setMetrics(&Report.registry());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
