//===- abl_multistride.cpp - ablation I (multi-stride DFA, §VII) -------------===//
//
// Part of the mfsa project. MIT License.
//
// The related-work baseline (§VII, [11][28][40]): a 2-stride DFA consumes
// two symbols per traversal. Per dataset, per-rule DFAs are squared to
// stride 2 and scanned; reported: table growth (the "complexity ...
// comprises all the k-characters combinations" the paper cites as the
// limiting factor) and the scan-time ratio.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "engine/DfaEngine.h"
#include "engine/MultiStride.h"
#include "support/Timer.h"

using namespace mfsa;
using namespace mfsa::bench;

int main() {
  printHeader("Ablation I - stride-1 vs stride-2 DFA scanning",
              "§VII multi-stride automata discussion");
  BenchReport Report("abl_multistride",
                     "§VII multi-stride automata discussion");

  std::printf("%-8s | %10s %10s %7s | %9s %9s %7s | %8s\n", "dataset",
              "s1-KB", "s2-KB", "growth", "s1[s]", "s2[s]", "speedup",
              "matches");
  for (const DatasetSpec &Spec : standardDatasets()) {
    CompiledDataset Dataset = compileDataset(Spec, streamBytes());

    // Per-rule DFAs (the M = 1 style baseline), stride-1 and stride-2.
    std::vector<Dfa> Plain;
    std::vector<StridedDfa> Strided;
    size_t PlainBytes = 0, StridedBytes = 0;
    bool Ok = true;
    for (size_t I = 0; I < Dataset.OptimizedFsas.size() && Ok; ++I) {
      Result<Dfa> D = determinize({Dataset.OptimizedFsas[I]},
                                  {static_cast<uint32_t>(I)});
      if (!D.ok()) {
        Ok = false;
        break;
      }
      Result<StridedDfa> S2 = makeStride2(*D);
      if (!S2.ok()) {
        Ok = false;
        break;
      }
      PlainBytes += D->footprintBytes();
      StridedBytes += S2->footprintBytes();
      Plain.push_back(D.take());
      Strided.push_back(S2.take());
    }
    if (!Ok) {
      std::printf("%-8s | determinization or striding failed (explosion)\n",
                  Spec.Abbrev.c_str());
      continue;
    }

    uint64_t Matches1 = 0, Matches2 = 0;
    Timer Wall1;
    for (const Dfa &D : Plain) {
      DfaEngine Engine(D);
      Engine.setMetrics(&Report.registry());
      MatchRecorder Recorder;
      Engine.run(Dataset.Stream, Recorder);
      Matches1 += Recorder.total();
    }
    double Sec1 = Wall1.elapsedSec();

    Timer Wall2;
    for (const StridedDfa &D : Strided) {
      StridedDfaEngine Engine(D);
      Engine.setMetrics(&Report.registry());
      MatchRecorder Recorder;
      Engine.run(Dataset.Stream, Recorder);
      Matches2 += Recorder.total();
    }
    double Sec2 = Wall2.elapsedSec();

    if (Matches1 != Matches2) {
      std::fprintf(stderr, "MISMATCH on %s: %lu vs %lu\n",
                   Spec.Abbrev.c_str(),
                   static_cast<unsigned long>(Matches1),
                   static_cast<unsigned long>(Matches2));
      return 1;
    }
    std::printf("%-8s | %10zu %10zu %6.1fx | %9.3f %9.3f %6.2fx | %8lu\n",
                Spec.Abbrev.c_str(), PlainBytes / 1024, StridedBytes / 1024,
                static_cast<double>(StridedBytes) /
                    static_cast<double>(PlainBytes ? PlainBytes : 1),
                Sec1, Sec2, Sec1 / Sec2,
                static_cast<unsigned long>(Matches1));
    Report.result(Spec.Abbrev + ".stride1_time_s", Sec1, "s");
    Report.result(Spec.Abbrev + ".stride2_time_s", Sec2, "s");
    Report.result(Spec.Abbrev + ".table_growth",
                  static_cast<double>(StridedBytes) /
                      static_cast<double>(PlainBytes ? PlainBytes : 1),
                  "x");
  }
  std::printf("\nexpected shape: stride 2 roughly halves the per-byte "
              "traversals at a quadratic (atoms^2) table-size cost — the "
              "trade-off §VII attributes to multi-stride automata\n");
  return 0;
}
