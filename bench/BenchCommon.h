//===- BenchCommon.h - shared benchmark harness utilities -------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the paper-reproduction benches: dataset compilation,
/// environment-variable knobs (so the full 1 MB / 15-rep paper configuration
/// is one export away from the fast defaults), tabular printing, and the
/// geometric mean the paper summarizes with.
///
/// Knobs:
///   MFSA_STREAM_BYTES  input stream size      (default 262144; paper 2^20)
///   MFSA_REPS          timed repetitions      (default 2; paper 15/30)
///   MFSA_MAX_THREADS   top of the thread sweep (default 32; paper 128)
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_BENCH_BENCHCOMMON_H
#define MFSA_BENCH_BENCHCOMMON_H

#include "compiler/Pipeline.h"
#include "engine/Imfant.h"
#include "workload/Datasets.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace mfsa::bench {

inline uint64_t envOr(const char *Name, uint64_t Default) {
  const char *Value = std::getenv(Name);
  if (!Value || !*Value)
    return Default;
  return std::strtoull(Value, nullptr, 10);
}

inline size_t streamBytes() { return envOr("MFSA_STREAM_BYTES", 1 << 18); }
inline unsigned repetitions() {
  return static_cast<unsigned>(envOr("MFSA_REPS", 2));
}
inline unsigned maxThreads() {
  return static_cast<unsigned>(envOr("MFSA_MAX_THREADS", 32));
}

/// The paper's merging-factor sweep; 0 encodes "all".
inline std::vector<uint32_t> paperMergingFactors() {
  return {1, 2, 5, 10, 20, 50, 100, 0};
}

inline std::string mergingFactorName(uint32_t M) {
  return M == 0 ? "all" : std::to_string(M);
}

/// One compiled dataset: rules, per-rule optimized FSAs, and the stream.
struct CompiledDataset {
  const DatasetSpec *Spec = nullptr;
  std::vector<std::string> Rules;
  std::vector<Nfa> OptimizedFsas;
  std::string Stream;
};

/// Generates and compiles a dataset through stage 3 once; merging at
/// different M is then cheap via mergeInGroups.
inline CompiledDataset compileDataset(const DatasetSpec &Spec,
                                      size_t StreamSize) {
  CompiledDataset Out;
  Out.Spec = &Spec;
  Out.Rules = generateRuleset(Spec);
  CompileOptions Options;
  Options.MergingFactor = 1;
  Options.EmitAnml = false;
  Result<CompileArtifacts> Artifacts = compileRuleset(Out.Rules, Options);
  if (!Artifacts.ok()) {
    std::fprintf(stderr, "fatal: %s compile failed: %s\n",
                 Spec.Abbrev.c_str(), Artifacts.diag().render().c_str());
    std::exit(1);
  }
  Out.OptimizedFsas = std::move(Artifacts->OptimizedFsas);
  if (StreamSize > 0)
    Out.Stream = generateStream(Spec, Out.Rules, StreamSize);
  return Out;
}

/// Builds one engine per MFSA of the given merging factor.
inline std::vector<ImfantEngine>
buildEngines(const CompiledDataset &Dataset, uint32_t MergingFactor,
             const MergeOptions &Options = {}) {
  std::vector<Mfsa> Groups =
      mergeInGroups(Dataset.OptimizedFsas, MergingFactor, Options);
  std::vector<ImfantEngine> Engines;
  Engines.reserve(Groups.size());
  for (const Mfsa &Z : Groups)
    Engines.emplace_back(Z);
  return Engines;
}

inline double geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0;
  for (double V : Values)
    LogSum += std::log(V);
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

/// Prints the standard bench header with the active configuration.
inline void printHeader(const char *Title, const char *PaperRef) {
  std::printf("=== %s ===\n", Title);
  std::printf("reproduces: %s\n", PaperRef);
  std::printf("config: stream=%zu bytes, reps=%u, max-threads=%u "
              "(override via MFSA_STREAM_BYTES / MFSA_REPS / "
              "MFSA_MAX_THREADS)\n\n",
              streamBytes(), repetitions(), maxThreads());
}

} // namespace mfsa::bench

#endif // MFSA_BENCH_BENCHCOMMON_H
