//===- BenchCommon.h - shared benchmark harness utilities -------*- C++ -*-===//
//
// Part of the mfsa project. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the paper-reproduction benches: dataset compilation,
/// environment-variable knobs (so the full 1 MB / 15-rep paper configuration
/// is one export away from the fast defaults), tabular printing, and the
/// geometric mean the paper summarizes with.
///
/// Knobs:
///   MFSA_STREAM_BYTES  input stream size      (default 262144; paper 2^20)
///   MFSA_REPS          timed repetitions      (default 2; paper 15/30)
///   MFSA_MAX_THREADS   top of the thread sweep (default 32; paper 128)
///
//===----------------------------------------------------------------------===//

#ifndef MFSA_BENCH_BENCHCOMMON_H
#define MFSA_BENCH_BENCHCOMMON_H

#include "compiler/Pipeline.h"
#include "engine/Imfant.h"
#include "obs/Metrics.h"
#include "support/SimdDispatch.h"
#include "workload/Datasets.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace mfsa::bench {

inline uint64_t envOr(const char *Name, uint64_t Default) {
  const char *Value = std::getenv(Name);
  if (!Value || !*Value)
    return Default;
  return std::strtoull(Value, nullptr, 10);
}

inline size_t streamBytes() { return envOr("MFSA_STREAM_BYTES", 1 << 18); }
inline unsigned repetitions() {
  return static_cast<unsigned>(envOr("MFSA_REPS", 2));
}
inline unsigned maxThreads() {
  return static_cast<unsigned>(envOr("MFSA_MAX_THREADS", 32));
}

/// The paper's merging-factor sweep; 0 encodes "all".
inline std::vector<uint32_t> paperMergingFactors() {
  return {1, 2, 5, 10, 20, 50, 100, 0};
}

inline std::string mergingFactorName(uint32_t M) {
  return M == 0 ? "all" : std::to_string(M);
}

/// One compiled dataset: rules, per-rule optimized FSAs, and the stream.
struct CompiledDataset {
  const DatasetSpec *Spec = nullptr;
  std::vector<std::string> Rules;
  std::vector<Nfa> OptimizedFsas;
  std::string Stream;
};

/// Generates and compiles a dataset through stage 3 once; merging at
/// different M is then cheap via mergeInGroups. When \p Metrics is non-null
/// the pipeline's per-stage telemetry is recorded into it (the `compile.*`
/// metrics of the emitted BENCH_*.json).
inline CompiledDataset compileDataset(const DatasetSpec &Spec,
                                      size_t StreamSize,
                                      obs::MetricsRegistry *Metrics = nullptr) {
  CompiledDataset Out;
  Out.Spec = &Spec;
  Out.Rules = generateRuleset(Spec);
  CompileOptions Options;
  Options.MergingFactor = 1;
  Options.EmitAnml = false;
  Result<CompileArtifacts> Artifacts = compileRuleset(Out.Rules, Options);
  if (!Artifacts.ok()) {
    std::fprintf(stderr, "fatal: %s compile failed: %s\n",
                 Spec.Abbrev.c_str(), Artifacts.diag().render().c_str());
    std::exit(1);
  }
  if (Metrics)
    Artifacts->Telemetry.recordTo(*Metrics);
  Out.OptimizedFsas = std::move(Artifacts->OptimizedFsas);
  if (StreamSize > 0)
    Out.Stream = generateStream(Spec, Out.Rules, StreamSize);
  return Out;
}

/// Builds one engine per MFSA of the given merging factor.
inline std::vector<ImfantEngine>
buildEngines(const CompiledDataset &Dataset, uint32_t MergingFactor,
             const MergeOptions &Options = {}) {
  std::vector<Mfsa> Groups =
      mergeInGroups(Dataset.OptimizedFsas, MergingFactor, Options);
  std::vector<ImfantEngine> Engines;
  Engines.reserve(Groups.size());
  for (const Mfsa &Z : Groups)
    Engines.emplace_back(Z);
  return Engines;
}

/// Compiler identification baked into every report so a baseline comparison
/// can refuse to diff numbers from different toolchains.
inline const char *toolchainString() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

/// CMake build type, injected per-bench as MFSA_BUILD_TYPE by
/// bench/CMakeLists.txt; empty for single-config generators run without
/// CMAKE_BUILD_TYPE.
inline const char *buildTypeString() {
#ifdef MFSA_BUILD_TYPE
  return MFSA_BUILD_TYPE;
#else
  return "";
#endif
}

inline double geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0;
  for (double V : Values)
    LogSum += std::log(V);
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

inline std::string jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(C);
      }
    }
  }
  return Out;
}

/// Machine-readable bench output: every bench owns one BenchReport, adds its
/// headline numbers with result(), and gets `BENCH_<name>.json` written to
/// the working directory (or $MFSA_BENCH_JSON_DIR) on destruction. The
/// embedded registry collects whatever the bench attaches to it — compile
/// telemetry via compileDataset(), engine scan metrics via setMetrics() —
/// so one file carries the figure-level numbers and the internals that
/// explain them. tools/check_bench_json.py validates the schema in CI.
class BenchReport {
public:
  BenchReport(std::string BenchName, std::string PaperRef)
      : Name(std::move(BenchName)), PaperRef(std::move(PaperRef)) {
    config("stream_bytes", streamBytes());
    config("reps", repetitions());
    config("max_threads", maxThreads());
    config("metrics_compiled_in", obs::kScanMetricsCompiledIn ? 1 : 0);
  }

  BenchReport(const BenchReport &) = delete;
  BenchReport &operator=(const BenchReport &) = delete;
  ~BenchReport() { write(); }

  /// The registry this bench's metrics land in; attach engines and compile
  /// telemetry here.
  obs::MetricsRegistry &registry() { return Registry; }

  void config(const std::string &Key, uint64_t Value) {
    Config.emplace_back(Key, std::to_string(Value));
  }
  void config(const std::string &Key, const std::string &Value) {
    Config.emplace_back(Key, "\"" + jsonEscape(Value) + "\"");
  }

  /// Records one headline result row (a cell of the reproduced figure).
  void result(const std::string &RowName, double Value,
              const std::string &Unit) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.9g", Value);
    Results.emplace_back(RowName, std::string(Buf) + ", \"unit\": \"" +
                                      jsonEscape(Unit) + "\"");
  }

  /// Attaches one planner decision trace (EnginePlan::explainJson()) under
  /// the report's top-level "plans" object, keyed by \p Key. \p RawJson must
  /// be a complete JSON value; it is embedded verbatim. The object is
  /// omitted when no bench calls this, keeping older reports byte-stable.
  void plan(const std::string &Key, const std::string &RawJson) {
    Plans.emplace_back(Key, RawJson);
  }

  std::string path() const {
    const char *Dir = std::getenv("MFSA_BENCH_JSON_DIR");
    std::string Base = (Dir && *Dir) ? std::string(Dir) + "/" : std::string();
    return Base + "BENCH_" + Name + ".json";
  }

  /// Writes the JSON file; called by the destructor, idempotent.
  void write() {
    if (Written)
      return;
    Written = true;
    std::FILE *F = std::fopen(path().c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "warning: cannot write %s\n", path().c_str());
      return;
    }
    std::fprintf(F, "{\n  \"schema_version\": 2,\n");
    std::fprintf(F, "  \"bench\": \"%s\",\n", jsonEscape(Name).c_str());
    std::fprintf(F, "  \"paper_ref\": \"%s\",\n",
                 jsonEscape(PaperRef).c_str());
    // Provenance (schema v2): comparing throughput across different
    // toolchains, build types, or SIMD levels is meaningless, so each report
    // states what produced it and tools/compare_bench_json.py checks.
    std::fprintf(F, "  \"toolchain\": \"%s\",\n",
                 jsonEscape(toolchainString()).c_str());
    std::fprintf(F, "  \"build_type\": \"%s\",\n",
                 jsonEscape(buildTypeString()).c_str());
    std::fprintf(F, "  \"simd_level\": \"%s\",\n",
                 simd::levelName(simd::activeLevel()));
    std::fprintf(F, "  \"config\": {");
    for (size_t I = 0; I < Config.size(); ++I)
      std::fprintf(F, "%s\n    \"%s\": %s", I ? "," : "",
                   jsonEscape(Config[I].first).c_str(),
                   Config[I].second.c_str());
    std::fprintf(F, "\n  },\n  \"results\": [");
    for (size_t I = 0; I < Results.size(); ++I)
      std::fprintf(F, "%s\n    {\"name\": \"%s\", \"value\": %s}",
                   I ? "," : "", jsonEscape(Results[I].first).c_str(),
                   Results[I].second.c_str());
    std::fprintf(F, "\n  ],\n");
    if (!Plans.empty()) {
      std::fprintf(F, "  \"plans\": {");
      for (size_t I = 0; I < Plans.size(); ++I)
        std::fprintf(F, "%s\n    \"%s\": %s", I ? "," : "",
                     jsonEscape(Plans[I].first).c_str(),
                     Plans[I].second.c_str());
      std::fprintf(F, "\n  },\n");
    }
    std::fprintf(F, "  \"metrics\": %s\n}\n", Registry.toJson().c_str());
    std::fclose(F);
    std::printf("\nwrote %s\n", path().c_str());
  }

private:
  bool Written = false;
  std::string Name;
  std::string PaperRef;
  std::vector<std::pair<std::string, std::string>> Config;
  std::vector<std::pair<std::string, std::string>> Results;
  std::vector<std::pair<std::string, std::string>> Plans;
  obs::MetricsRegistry Registry;
};

/// Prints the standard bench header with the active configuration.
inline void printHeader(const char *Title, const char *PaperRef) {
  std::printf("=== %s ===\n", Title);
  std::printf("reproduces: %s\n", PaperRef);
  std::printf("config: stream=%zu bytes, reps=%u, max-threads=%u "
              "(override via MFSA_STREAM_BYTES / MFSA_REPS / "
              "MFSA_MAX_THREADS)\n\n",
              streamBytes(), repetitions(), maxThreads());
}

} // namespace mfsa::bench

#endif // MFSA_BENCH_BENCHCOMMON_H
