//===- abl_clustering.cpp - ablation E (similarity-clustered grouping) -------===//
//
// Part of the mfsa project. MIT License.
//
// Paper §VIII future work: "a systematic similarity RE analysis for possible
// clustering techniques". Compares the state compression of three grouping
// policies at several merging factors: the paper's sequential sampling,
// INDEL-similarity clustering (workload/Clustering.h), and random grouping
// (the locality-destroying control).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "mfsa/Merge.h"
#include "workload/Clustering.h"

using namespace mfsa;
using namespace mfsa::bench;

int main() {
  printHeader("Ablation E - grouping policy (sequential vs clustered vs "
              "random)",
              "§VIII future work (similarity clustering)");
  BenchReport Report("abl_clustering",
                     "§VIII future work (similarity clustering)");

  const std::vector<uint32_t> Factors = {5, 20, 50};
  std::printf("%-8s %4s %12s %12s %12s\n", "dataset", "M", "sequential",
              "clustered", "random");
  for (const DatasetSpec &Spec : standardDatasets()) {
    CompiledDataset Dataset = compileDataset(Spec, /*StreamSize=*/0);
    uint64_t Base = 0;
    for (const Nfa &A : Dataset.OptimizedFsas)
      Base += A.numStates();

    for (uint32_t M : Factors) {
      uint64_t Sequential =
          computeSetStats(mergeInGroups(Dataset.OptimizedFsas, M))
              .TotalStates;
      uint64_t Clustered =
          computeSetStats(mergeWithGrouping(
                              Dataset.OptimizedFsas,
                              clusterBySimilarity(Dataset.Rules, M)))
              .TotalStates;
      uint64_t Random =
          computeSetStats(mergeWithGrouping(
                              Dataset.OptimizedFsas,
                              randomGrouping(Dataset.Rules.size(), M, 99)))
              .TotalStates;
      std::printf("%-8s %4u %11.2f%% %11.2f%% %11.2f%%\n",
                  Spec.Abbrev.c_str(), M,
                  compressionPercent(Base, Sequential),
                  compressionPercent(Base, Clustered),
                  compressionPercent(Base, Random));
      if (M == 50) {
        Report.result(Spec.Abbrev + ".sequential_compression",
                      compressionPercent(Base, Sequential), "percent");
        Report.result(Spec.Abbrev + ".clustered_compression",
                      compressionPercent(Base, Clustered), "percent");
        Report.result(Spec.Abbrev + ".random_compression",
                      compressionPercent(Base, Random), "percent");
      }
    }
  }
  std::printf("\nfinding: sequential grouping already exploits the rulesets- family "
              "locality (rules ship ordered by family); greedy clustering recovers "
              "most of that locality without relying on order - compare it with the random (order-destroyed) control\n");
  return 0;
}
