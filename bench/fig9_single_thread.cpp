//===- fig9_single_thread.cpp - reproduce Fig. 9 (single-thread exec) --------===//
//
// Part of the mfsa project. MIT License.
//
// Paper Fig. 9: single-threaded iMFAnt execution time over the input stream
// for M in [1, all], and the throughput improvement against the M = 1
// configuration, computed as in §VI-C:
//
//   th = (#MFSA * M * Dsize) / Exe_time_tot
//
// where Exe_time_tot sums the individual automata execution times. Paper
// headlines: throughput improvement geomean from 1.47x (M=2) to 5.44x
// (M=100); 5.99x picking the best M per dataset; DS9/PRO peak before M=all
// because of their high active-rule pressure (Table II).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Timer.h"

using namespace mfsa;
using namespace mfsa::bench;

int main() {
  printHeader("Fig. 9 - single-thread execution time and throughput",
              "Fig. 9 (execution time per M; throughput improvement vs M=1)");
  BenchReport Report("fig9_single_thread",
                     "Fig. 9 (execution time per M; throughput vs M=1)");

  const unsigned Reps = repetitions();
  const std::vector<uint32_t> Factors = paperMergingFactors();

  std::printf("%-8s", "dataset");
  for (uint32_t M : Factors)
    std::printf(" %9s", ("M=" + mergingFactorName(M)).c_str());
  std::printf("   (execution time [s], then throughput improvement)\n");

  // Per-M improvement collections for the geomean rows.
  std::vector<std::vector<double>> PerFactor(Factors.size());
  std::vector<double> BestImprovement;

  for (const DatasetSpec &Spec : standardDatasets()) {
    CompiledDataset Dataset =
        compileDataset(Spec, streamBytes(), &Report.registry());

    std::vector<double> Seconds;
    for (uint32_t M : Factors) {
      std::vector<ImfantEngine> Engines = buildEngines(Dataset, M);
      // Attach scan metrics at M=all: zero-cost when the hooks are compiled
      // out, and the timed loop is what we want instrumented when they are
      // (MFSA_METRICS=1 runs trade timing fidelity for internals).
      if (M == 0)
        for (ImfantEngine &Engine : Engines)
          Engine.setMetrics(&Report.registry());
      double Best = 0;
      for (unsigned Rep = 0; Rep < Reps; ++Rep) {
        Timer Wall;
        uint64_t Matches = 0;
        for (const ImfantEngine &Engine : Engines) {
          MatchRecorder Recorder;
          Engine.run(Dataset.Stream, Recorder);
          Matches += Recorder.total();
        }
        double Sec = Wall.elapsedSec();
        if (Rep == 0 || Sec < Best)
          Best = Sec;
        (void)Matches;
      }
      Seconds.push_back(Best);
    }

    std::printf("%-8s", Spec.Abbrev.c_str());
    for (double S : Seconds)
      std::printf(" %9.3f", S);
    std::printf("\n%-8s", "  thrpt");
    double BestForDataset = 0;
    for (size_t I = 0; I < Factors.size(); ++I) {
      double Improvement = Seconds[0] / Seconds[I];
      PerFactor[I].push_back(Improvement);
      BestForDataset = std::max(BestForDataset, Improvement);
      std::printf(" %8.2fx", Improvement);
      Report.result(Spec.Abbrev + ".m_" + mergingFactorName(Factors[I]) +
                        ".exec_s",
                    Seconds[I], "s");
    }
    BestImprovement.push_back(BestForDataset);
    std::printf("\n");
  }

  std::printf("\n%-8s", "geomean");
  for (size_t I = 0; I < Factors.size(); ++I) {
    std::printf(" %8.2fx", geomean(PerFactor[I]));
    Report.result("geomean.m_" + mergingFactorName(Factors[I]) +
                      ".improvement",
                  geomean(PerFactor[I]), "x");
  }
  std::printf("\nbest-M geomean: %.2fx (paper: 5.99x; per-M geomean from "
              "1.47x at M=2 to 5.44x at M=100)\n",
              geomean(BestImprovement));
  Report.result("geomean.best_m.improvement", geomean(BestImprovement), "x");
  return 0;
}
