//===- table2_active_fsas.cpp - reproduce Table II (active-rule pressure) ----===//
//
// Part of the mfsa project. MIT License.
//
// Paper Table II: average and maximum number of active FSAs while the M=all
// MFSA traverses the input stream — the pressure metric explaining why DS9
// and PRO peak at M < all in Fig. 9.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace mfsa;
using namespace mfsa::bench;

int main() {
  printHeader("Table II - active rules during M=all traversal",
              "Table II (avg/max active FSAs per consumed symbol)");
  BenchReport Report("table2_active_fsas",
                     "Table II (avg/max active FSAs per consumed symbol)");

  std::printf("%-8s %12s %12s %14s\n", "dataset", "avgActive", "maxActive",
              "transitions/ch");
  for (const DatasetSpec &Spec : standardDatasets()) {
    CompiledDataset Dataset =
        compileDataset(Spec, streamBytes(), &Report.registry());
    std::vector<ImfantEngine> Engines = buildEngines(Dataset, 0);
    Engines[0].setMetrics(&Report.registry());
    RunStats Stats;
    MatchRecorder Recorder;
    Engines[0].run(Dataset.Stream, Recorder, &Stats);
    double TransPerCh = static_cast<double>(Stats.TransitionsEvaluated) /
                        static_cast<double>(Stats.Steps ? Stats.Steps : 1);
    std::printf("%-8s %12.2f %12u %14.1f\n", Spec.Abbrev.c_str(),
                Stats.AvgActiveRules, Stats.MaxActiveRules, TransPerCh);
    Report.result(Spec.Abbrev + ".avg_active_rules", Stats.AvgActiveRules,
                  "rules");
    Report.result(Spec.Abbrev + ".max_active_rules", Stats.MaxActiveRules,
                  "rules");
    Report.result(Spec.Abbrev + ".transitions_per_char", TransPerCh,
                  "transitions");
  }
  std::printf("\npaper reference (Table II, avg/max): BRO 10.73/40, DS9 "
              "38.02/90, PEN 21.27/39, PRO 10.18/652, RG1 6.55/63, TCP "
              "4.55/149\n");
  std::printf("expected shape: DS9 and PRO show the highest pressure, "
              "explaining their M<all optimum in Fig. 9\n");
  return 0;
}
