//===- abl_merge_complexity.cpp - ablation C (merge-time scaling) ------------===//
//
// Part of the mfsa project. MIT License.
//
// Paper Eq. 3 approximates the merging complexity as
// O((4M * N_TS^2 + 8 N_TS^3)(M - 1)) ~ O(M^4) when N_TS ~ M. This ablation
// measures wall time of the merging stage as the merging factor grows and
// reports the empirical growth exponent between consecutive M values.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Timer.h"

#include <cmath>

using namespace mfsa;
using namespace mfsa::bench;

int main() {
  printHeader("Ablation C - merging-time scaling vs M",
              "Eq. 3 complexity discussion (§III-A)");
  BenchReport Report("abl_merge_complexity",
                     "Eq. 3 complexity discussion (§III-A)");

  const std::vector<uint32_t> Factors = {2, 5, 10, 20, 50, 100, 0};
  std::printf("%-8s", "dataset");
  for (uint32_t M : Factors)
    std::printf(" %9s", ("M=" + mergingFactorName(M)).c_str());
  std::printf("   (merge stage [ms])\n");

  for (const DatasetSpec &Spec : standardDatasets()) {
    CompiledDataset Dataset = compileDataset(Spec, /*StreamSize=*/0);
    std::printf("%-8s", Spec.Abbrev.c_str());
    std::vector<double> Millis;
    for (uint32_t M : Factors) {
      Timer Wall;
      std::vector<Mfsa> Groups = mergeInGroups(Dataset.OptimizedFsas, M);
      double Ms = Wall.elapsedMs();
      Millis.push_back(Ms);
      std::printf(" %9.2f", Ms);
      (void)Groups;
    }
    // Empirical exponent between the two largest finite factors.
    double Exponent =
        std::log(Millis[5] / Millis[4]) / std::log(100.0 / 50.0);
    std::printf("   growth M50->M100: M^%.1f\n", Exponent);
    Report.result(Spec.Abbrev + ".merge_m_all_ms", Millis.back(), "ms");
    Report.result(Spec.Abbrev + ".growth_exponent", Exponent, "exponent");
  }
  std::printf("\nnote: total work is bounded by the dataset size, so the "
              "per-group cost grows polynomially in M while the group count "
              "shrinks; the paper reports the same qualitative blow-up of "
              "the merging stage toward M=all (6.65s of 6.66s total)\n");
  return 0;
}
