//===- abl_engine_variants.cpp - ablation G (engine layout) ------------------===//
//
// Part of the mfsa project. MIT License.
//
// iNFAnt's symbol-major layout (scan every transition the input symbol
// enables — ImfantEngine) versus a CPU-style state-major layout (walk the
// active states' out-edges — SparseImfantEngine). Which wins depends on
// active-set pressure vs per-symbol transition density (Table II).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "engine/SparseImfant.h"
#include "mfsa/Merge.h"
#include "support/Timer.h"

using namespace mfsa;
using namespace mfsa::bench;

int main() {
  printHeader("Ablation G - symbol-major vs state-major engine layout",
              "§V engine design (iNFAnt layout choice)");
  BenchReport Report("abl_engine_variants",
                     "§V engine design (iNFAnt layout choice)");

  const std::vector<uint32_t> Factors = {1, 50, 0};
  std::printf("%-8s %5s %12s %12s %9s\n", "dataset", "M", "symbol-major",
              "state-major", "ratio");
  for (const DatasetSpec &Spec : standardDatasets()) {
    CompiledDataset Dataset = compileDataset(Spec, streamBytes());
    for (uint32_t M : Factors) {
      std::vector<Mfsa> Groups = mergeInGroups(Dataset.OptimizedFsas, M);

      Timer DenseWall;
      uint64_t DenseMatches = 0;
      {
        for (const Mfsa &Z : Groups) {
          ImfantEngine Engine(Z);
          if (M == 0)
            Engine.setMetrics(&Report.registry());
          MatchRecorder Recorder;
          Engine.run(Dataset.Stream, Recorder);
          DenseMatches += Recorder.total();
        }
      }
      double DenseSec = DenseWall.elapsedSec();

      Timer SparseWall;
      uint64_t SparseMatches = 0;
      {
        for (const Mfsa &Z : Groups) {
          SparseImfantEngine Engine(Z);
          if (M == 0)
            Engine.setMetrics(&Report.registry());
          MatchRecorder Recorder;
          Engine.run(Dataset.Stream, Recorder);
          SparseMatches += Recorder.total();
        }
      }
      double SparseSec = SparseWall.elapsedSec();

      if (DenseMatches != SparseMatches) {
        std::fprintf(stderr, "MISMATCH on %s M=%u: %lu vs %lu matches\n",
                     Spec.Abbrev.c_str(), M,
                     static_cast<unsigned long>(DenseMatches),
                     static_cast<unsigned long>(SparseMatches));
        return 1;
      }
      std::printf("%-8s %5s %11.3fs %11.3fs %8.2fx\n", Spec.Abbrev.c_str(),
                  mergingFactorName(M).c_str(), DenseSec, SparseSec,
                  DenseSec / SparseSec);
      Report.result(Spec.Abbrev + ".m_" + mergingFactorName(M) +
                        ".symbol_major_s",
                    DenseSec, "s");
      Report.result(Spec.Abbrev + ".m_" + mergingFactorName(M) +
                        ".state_major_s",
                    SparseSec, "s");
    }
  }
  std::printf("\nratio > 1: state-major wins (sparse active sets); engine "
              "construction time included for both (dominated by scanning "
              "at these stream sizes)\n");
  return 0;
}
