//===- abl_dfa_baseline.cpp - ablation F (DFA baseline, §II trade-off) -------===//
//
// Part of the mfsa project. MIT License.
//
// Reproduces the background trade-off motivating the paper (§II): DFAs give
// single-transition traversal but explode in states; NFAs/MFSAs stay small
// but pay per-symbol bandwidth. Per dataset:
//   - per-rule DFAs (M = 1 baseline): total states + scan time,
//   - one union DFA over the whole ruleset (when it fits the state cap),
//   - the M = all MFSA with iMFAnt.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "engine/DfaEngine.h"
#include "fsa/Determinize.h"
#include "support/StringUtil.h"
#include "support/Timer.h"

using namespace mfsa;
using namespace mfsa::bench;

int main() {
  printHeader("Ablation F - DFA baseline vs MFSA",
              "§II DFA/NFA trade-off (state explosion vs bandwidth)");
  BenchReport Report("abl_dfa_baseline",
                     "§II DFA/NFA trade-off (state explosion vs bandwidth)");

  std::printf("%-8s | %10s %9s | %10s %9s | %10s %9s\n", "dataset",
              "perDFA-st", "time[s]", "uniDFA-st", "time[s]", "MFSA-st",
              "time[s]");
  for (const DatasetSpec &Spec : standardDatasets()) {
    CompiledDataset Dataset = compileDataset(Spec, streamBytes());

    // Per-rule DFAs.
    uint64_t PerRuleStates = 0;
    std::vector<Dfa> PerRule;
    bool PerRuleOk = true;
    for (size_t I = 0; I < Dataset.OptimizedFsas.size(); ++I) {
      Result<Dfa> D = determinize({Dataset.OptimizedFsas[I]},
                                  {static_cast<uint32_t>(I)});
      if (!D.ok()) {
        PerRuleOk = false;
        break;
      }
      PerRuleStates += D->NumStates;
      PerRule.push_back(D.take());
    }
    double PerRuleSec = -1;
    if (PerRuleOk) {
      Timer Wall;
      for (const Dfa &D : PerRule) {
        DfaEngine Engine(D);
        MatchRecorder Recorder;
        Engine.run(Dataset.Stream, Recorder);
      }
      PerRuleSec = Wall.elapsedSec();
    }

    // Union DFA over the whole ruleset (capped).
    std::vector<uint32_t> Ids(Dataset.OptimizedFsas.size());
    for (size_t I = 0; I < Ids.size(); ++I)
      Ids[I] = static_cast<uint32_t>(I);
    DeterminizeOptions Capped;
    Capped.MaxStates = 1u << 15; // explosion demonstrated quickly
    Result<Dfa> Union = determinize(Dataset.OptimizedFsas, Ids, Capped);
    double UnionSec = -1;
    uint64_t UnionStates = 0;
    if (Union.ok()) {
      UnionStates = Union->NumStates;
      DfaEngine Engine(*Union);
      Engine.setMetrics(&Report.registry());
      MatchRecorder Recorder;
      Timer Wall;
      Engine.run(Dataset.Stream, Recorder);
      UnionSec = Wall.elapsedSec();
    }

    // M = all MFSA.
    std::vector<ImfantEngine> Engines = buildEngines(Dataset, 0);
    Engines[0].setMetrics(&Report.registry());
    uint64_t MfsaStates = Engines[0].numStates();
    Timer Wall;
    MatchRecorder Recorder;
    Engines[0].run(Dataset.Stream, Recorder);
    double MfsaSec = Wall.elapsedSec();

    auto TimeStr = [](double Sec) {
      return Sec < 0 ? std::string("   n/a") : formatDouble(Sec, 3);
    };
    std::printf("%-8s | %10lu %9s | %10s %9s | %10lu %9s\n",
                Spec.Abbrev.c_str(),
                static_cast<unsigned long>(PerRuleStates),
                TimeStr(PerRuleSec).c_str(),
                Union.ok() ? std::to_string(UnionStates).c_str()
                           : "EXPLODED",
                TimeStr(UnionSec).c_str(),
                static_cast<unsigned long>(MfsaStates),
                TimeStr(MfsaSec).c_str());
    Report.result(Spec.Abbrev + ".per_rule_dfa_states",
                  static_cast<double>(PerRuleStates), "states");
    Report.result(Spec.Abbrev + ".union_dfa_states",
                  static_cast<double>(UnionStates), "states");
    Report.result(Spec.Abbrev + ".mfsa_states",
                  static_cast<double>(MfsaStates), "states");
    Report.result(Spec.Abbrev + ".mfsa_time_s", MfsaSec, "s");
  }
  std::printf("\nexpected shape: the union DFA is fastest per byte where it "
              "fits but pays orders of magnitude more states (or explodes "
              "on .*-heavy DS9); the MFSA holds the small-memory side of "
              "the trade-off at competitive speed\n");
  return 0;
}
