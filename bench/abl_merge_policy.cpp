//===- abl_merge_policy.cpp - ablation B (merge policy knobs) ----------------===//
//
// Part of the mfsa project. MIT License.
//
// Ablates the three merging-policy decisions DESIGN.md calls out, on the
// M = all state compression:
//   - exact character-class matching (paper §III-A set Y; off = classes
//     never shared),
//   - the minimum sub-path length commit rule (1 = paper's literal
//     single-transition MS entries; the default 3 prevents alphabet-driven
//     over-stitching, see mfsa/Merge.h),
//   - the search itself (off = plain disjoint union).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "mfsa/Merge.h"

using namespace mfsa;
using namespace mfsa::bench;

namespace {

double compressionFor(const CompiledDataset &Dataset,
                      const MergeOptions &Options) {
  uint64_t Base = 0;
  for (const Nfa &A : Dataset.OptimizedFsas)
    Base += A.numStates();
  std::vector<Mfsa> Groups = mergeInGroups(Dataset.OptimizedFsas, 0, Options);
  return compressionPercent(Base, computeSetStats(Groups).TotalStates);
}

} // namespace

int main() {
  printHeader("Ablation B - merging policy",
              "§III-A / Fig. 5b (CC-exact matching, sub-path length, search)");
  BenchReport Report("abl_merge_policy",
                     "§III-A / Fig. 5b (CC-exact matching, sub-path length, "
                     "search)");

  std::printf("%-8s %10s %10s %10s %10s %10s\n", "dataset", "default",
              "noCC", "len=1", "len=5", "noSearch");
  for (const DatasetSpec &Spec : standardDatasets()) {
    CompiledDataset Dataset = compileDataset(Spec, /*StreamSize=*/0);

    MergeOptions Default;
    MergeOptions NoCc = Default;
    NoCc.MergeCharClasses = false;
    MergeOptions Len1 = Default;
    Len1.MinSubpathLength = 1;
    MergeOptions Len5 = Default;
    Len5.MinSubpathLength = 5;
    MergeOptions NoSearch = Default;
    NoSearch.EnableSubpathSearch = false;

    double DefaultPct = compressionFor(Dataset, Default);
    std::printf("%-8s %9.2f%% %9.2f%% %9.2f%% %9.2f%% %9.2f%%\n",
                Spec.Abbrev.c_str(), DefaultPct,
                compressionFor(Dataset, NoCc),
                compressionFor(Dataset, Len1),
                compressionFor(Dataset, Len5),
                compressionFor(Dataset, NoSearch));
    Report.result(Spec.Abbrev + ".default_compression", DefaultPct,
                  "percent");
  }
  std::printf("\nexpected shape: noSearch = 0; noCC hurts CC-heavy datasets "
              "(PRO, RG1) most; len=1 over-merges toward the alphabet-limited "
              "minimum; len=5 under-merges\n");
  return 0;
}
